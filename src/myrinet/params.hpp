// Cost-model parameters for the simulated cluster. Two calibrated presets
// reproduce the paper's platforms:
//   sparc_fm1_cluster()  — SPARCstation + SBus + first-generation Myrinet
//                          (FM 1.x platform: 14 us latency, 17.6 MB/s peak)
//   ppro_fm2_cluster()   — 200 MHz Pentium Pro + PCI + Myrinet
//                          (FM 2.x platform: 11 us latency, 77 MB/s peak)
// Calibration rationale is documented per-constant below and summarized in
// EXPERIMENTS.md. The protocol *logic* above these numbers is exact; only
// the time constants are fitted.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/time.hpp"

namespace fmx::net {

using sim::Ps;

/// Registration (pin-down) cache for the RDMA large-message path. Pinning
/// a buffer is a syscall + driver page-table walk — tens of microseconds —
/// so registrations are cached and unpinned lazily (LRU) like FM's
/// descendants (VIA, IB verbs, pMR) all do. Costs calibrated to the
/// mlock+driver numbers contemporaries reported: ~10 us base plus ~1 us
/// per page to pin, ~0.5 us per page to unpin on eviction.
struct RegCacheParams {
  std::size_t capacity_bytes = 4 * 1024 * 1024;  ///< pinned-memory budget
  std::size_t page_bytes = 4096;
  Ps pin_base = sim::us(10);       ///< per-registration syscall cost (miss)
  Ps pin_per_page = sim::us(1);    ///< driver work per newly pinned page
  Ps unpin_per_page = sim::ns(500);///< eviction work per unpinned page
  Ps lookup = sim::ns(200);        ///< cache probe (hit or miss)
};

/// Host CPU + memory-system cost model.
struct HostParams {
  double cpu_hz = 200e6;  ///< cycles <-> time conversions

  /// memcpy cost: fixed setup plus per-byte, with a second (slower) regime
  /// past the cache threshold — the classic two-slope copy curve.
  Ps memcpy_setup = sim::ns(100);
  double memcpy_ps_per_byte = 5'000;        // 5 ns/B = 200 MB/s
  double memcpy_ps_per_byte_uncached = 10'000;
  std::size_t memcpy_cache_threshold = 64 * 1024;

  Ps call_overhead = sim::ns(100);      ///< generic library-call cost
  Ps handler_dispatch = sim::ns(150);   ///< handler table lookup + invoke
  Ps poll_gap = sim::ns(200);           ///< one empty poll of the rx ring

  RegCacheParams reg;  ///< pin-down cache (RDMA rendezvous path)
};

/// I/O bus (SBus / PCI) model: a shared, FIFO-arbitrated resource.
struct IoBusParams {
  Ps dma_setup = sim::ns(500);      ///< per-DMA-transaction setup
  double dma_ps_per_byte = 8'000;   ///< 8 ns/B = 125 MB/s (PCI-ish)
  Ps pio_setup = sim::ns(200);      ///< first programmed-I/O word
  double pio_ps_per_byte = 20'000;  ///< 20 ns/B = 50 MB/s (PIO is slow)
};

/// LANai-style network interface.
struct NicParams {
  std::size_t mtu_payload = 1024;   ///< max wire-packet payload (FM packet)
  std::size_t sram_rx_slots = 8;    ///< inbound SRAM buffering (slack)
  std::size_t sram_tx_slots = 4;    ///< outbound SRAM staging (DMA/wire overlap)
  std::size_t tx_queue_slots = 16;  ///< send descriptor queue depth
  std::size_t host_ring_slots = 64; ///< host receive-region packet slots
  Ps per_packet_tx = sim::us(1.0);  ///< control-program cost per sent packet
  Ps per_packet_rx = sim::us(1.0);  ///< control-program cost per recv packet
  bool hardware_crc = true;         ///< CRC overlapped with wire transfer
  double crc_ps_per_byte = 2'000;   ///< charged only if !hardware_crc

  /// NIC-offloaded collectives (myrinet/coll.hpp): control-program cost per
  /// collective step processed on the NIC (combine bookkeeping, fan-out
  /// descriptor build) plus the per-byte reduction arithmetic on the LANai.
  /// An arriving collective packet is also charged coll_op instead of
  /// per_packet_rx on the receive path: it is parsed and consumed entirely
  /// in NIC SRAM, so the host-DMA descriptor and receive-ring bookkeeping
  /// that per_packet_rx models never happen. (Transmit keeps the full
  /// per_packet_tx — wire injection is serial and backs the parallel
  /// engine's fresh-transmit lookahead floor.) These steps are much cheaper
  /// than a host round-trip — that asymmetry is the entire point of
  /// forwarding collectives NIC-to-NIC.
  Ps coll_op = sim::ns(400);
  double coll_ps_per_byte = 4'000;  ///< 4 ns/B reduce arithmetic (slow core)

  /// Link-level go-back-N retransmission (extension; off by default —
  /// Myrinet's bit error rate made FM treat the fabric as reliable, this
  /// makes that assumption explicit and removable).
  bool reliable_link = false;
  Ps retransmit_timeout = sim::us(200);
  int retransmit_window = 32;       ///< unacked packets per destination
  Ps ack_delay = sim::us(5);        ///< ack coalescing window
};

/// Switch interconnection pattern; geometry lives in myrinet/topo.hpp.
enum class TopologyKind : std::uint8_t {
  kChain = 0,    ///< crossbars of hosts_per_switch ports, chained
  kFatTree = 1,  ///< 3-level k-ary fat-tree/Clos (fat_tree_radix ports)
};

/// Physical link + switch fabric.
struct FabricParams {
  double link_ps_per_byte = 12'500;   ///< 12.5 ns/B = 80 MB/s per link
  Ps link_latency = sim::ns(300);     ///< cable flight + port latency
  Ps switch_latency = sim::ns(550);   ///< crossbar routing decision per hop
  std::size_t frame_overhead = 9;     ///< type+route+framing bytes per packet
  std::size_t crc_bytes = 4;
  /// Extra wire header on remote-write (RDMA) packets only: rkey + offset +
  /// length + op type. Charged in serialization time for kRdmaWrite packets;
  /// eager/data packets are byte-identical with or without the RDMA path.
  std::size_t rdma_hdr_bytes = 16;
  int hosts_per_switch = 8;           ///< larger clusters chain switches
  double bit_error_rate = 0.0;        ///< per-bit corruption probability

  TopologyKind topology = TopologyKind::kChain;
  /// Fat-tree switch radix k (even): k pods, k/2 edge + k/2 aggregation
  /// switches per pod, (k/2)^2 cores. k=16 hosts 1024 at oversubscription 1.
  int fat_tree_radix = 8;
  /// Hosts per edge-switch = (k/2) * oversubscription: o hosts contend for
  /// each edge uplink, so o:1 fan-in saturates at 1/o of the host rate —
  /// the severity dial for incast experiments.
  int oversubscription = 1;

  /// Per-size-class byte budget the cluster buffer pool retains (see
  /// common/buffer_pool.hpp). The 4 MiB default fits the paper-scale
  /// presets; thousand-host runs raise it so the steady-state data path
  /// stays off the allocator at their much larger live-buffer high water.
  std::size_t pool_retain_bytes_per_class = std::size_t{4} << 20;
};

struct ClusterParams {
  int n_hosts = 2;
  HostParams host;
  IoBusParams bus;
  NicParams nic;
  FabricParams fabric;
};

/// FM 1.x platform: SPARCstation-class host on SBus.
/// Calibration targets (paper §3): one-way latency ~14 us, peak ~17.6 MB/s,
/// N1/2 = 54 B with 128 B packets; bottleneck is send-side programmed I/O
/// across the SBus.
ClusterParams sparc_fm1_cluster(int n_hosts = 2);

/// FM 2.x platform: 200 MHz Pentium Pro on PCI.
/// Calibration targets (paper §4.2): one-way latency ~11 us, peak ~77 MB/s,
/// N1/2 < 256 B.
ClusterParams ppro_fm2_cluster(int n_hosts = 2);

/// Datacenter-style preset: the FM 2.x host/NIC model on a k-ary fat-tree.
/// Picks the smallest even radix (at the given oversubscription) that
/// hosts n_hosts, unless `radix` is given explicitly. Defaults otherwise
/// match ppro_fm2_cluster.
ClusterParams fat_tree_cluster(int n_hosts, int radix = 0, int oversub = 1);

}  // namespace fmx::net
