// A cluster node (host CPU + I/O bus + NIC) and the Cluster aggregate that
// wires N nodes to a shared fabric. This is the hardware platform the FM
// libraries run on.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "myrinet/fabric.hpp"
#include "myrinet/host.hpp"
#include "myrinet/iobus.hpp"
#include "myrinet/nic.hpp"
#include "myrinet/params.hpp"
#include "sim/engine.hpp"

namespace fmx::net {

class Node {
 public:
  Node(sim::Engine& eng, int id, const ClusterParams& p, Fabric& fabric)
      : host_(eng, id, p.host),
        bus_(eng, p.bus),
        nic_(eng, id, p.nic, bus_, fabric) {
    nic_.start();
  }

  int id() const noexcept { return host_.id(); }
  Host& host() noexcept { return host_; }
  IoBus& bus() noexcept { return bus_; }
  Nic& nic() noexcept { return nic_; }

 private:
  Host host_;
  IoBus bus_;
  Nic nic_;
};

class Cluster {
 public:
  Cluster(sim::Engine& eng, const ClusterParams& p)
      : eng_(eng), params_(p), fabric_(eng, p.fabric, p.n_hosts) {
    nodes_.reserve(p.n_hosts);
    for (int i = 0; i < p.n_hosts; ++i) {
      nodes_.push_back(std::make_unique<Node>(eng, i, p, fabric_));
    }
    expose_metrics();
  }

  sim::Engine& engine() noexcept { return eng_; }
  int size() const noexcept { return static_cast<int>(nodes_.size()); }
  Node& node(int i) { return *nodes_.at(i); }
  Fabric& fabric() noexcept { return fabric_; }
  const ClusterParams& params() const noexcept { return params_; }

 private:
  // Bind the live hardware counters (fabric, pool, per-node NIC and host
  // ledger) into the tracer's metrics registry so tests and benches can
  // query them by name. Views only — the hot paths keep bumping the same
  // plain fields they always did.
  void expose_metrics() {
    trace::MetricsRegistry& m = fabric_.tracer().metrics();
    const Fabric::Stats& fs = fabric_.stats();
    m.expose("fabric.packets", &fs.packets);
    m.expose("fabric.payload_bytes", &fs.payload_bytes);
    m.expose("fabric.corrupted", &fs.corrupted);
    m.expose("fabric.dropped", &fs.dropped);
    m.expose("fabric.duplicated", &fs.duplicated);
    m.expose("fabric.delayed", &fs.delayed);
    const BufferPool::Stats& ps = fabric_.pool().stats();
    m.expose("pool.acquires", &ps.acquires);
    m.expose("pool.hits", &ps.pool_hits);
    m.expose("pool.misses", &ps.fresh_allocs);
    m.expose("pool.releases", &ps.releases);
    for (const auto& n : nodes_) {
      const std::string pre = "node" + std::to_string(n->id()) + ".";
      const Nic::Stats& ns = n->nic().stats();
      m.expose(pre + "nic.tx_packets", &ns.tx_packets);
      m.expose(pre + "nic.rx_packets", &ns.rx_packets);
      m.expose(pre + "nic.crc_dropped", &ns.crc_dropped);
      m.expose(pre + "nic.retransmissions", &ns.retransmissions);
      m.expose(pre + "nic.acks_sent", &ns.acks_sent);
      m.expose(pre + "nic.seq_dropped", &ns.seq_dropped);
      m.expose(pre + "nic.coll_rx_packets", &ns.coll_rx_packets);
      m.expose(pre + "nic.coll_combines", &ns.coll_combines);
      m.expose(pre + "nic.coll_forwards", &ns.coll_forwards);
      m.expose(pre + "nic.coll_completions", &ns.coll_completions);
      m.expose(pre + "nic.coll_orphaned", &ns.coll_orphaned);
      m.expose(pre + "nic.coll_stale", &ns.coll_stale);
      const sim::CostLedger& hl = n->host().ledger();
      m.expose(pre + "host.copies", hl.copies_cell());
      m.expose(pre + "host.copied_bytes", hl.copied_bytes_cell());
      m.expose(pre + "host.pool_misses", hl.allocs_cell());
      m.expose(pre + "host.pool_miss_bytes", hl.alloc_bytes_cell());
      const RegCache::Stats& rs = n->host().reg_cache().stats();
      m.expose(pre + "regcache.hits", &rs.hits);
      m.expose(pre + "regcache.misses", &rs.misses);
      m.expose(pre + "regcache.evictions", &rs.evictions);
      m.expose(pre + "regcache.coalesces", &rs.coalesces);
      m.expose(pre + "regcache.pinned_bytes", &rs.pinned_bytes);
    }
  }

  sim::Engine& eng_;
  ClusterParams params_;
  Fabric fabric_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace fmx::net
