// A cluster node (host CPU + I/O bus + NIC) and the Cluster aggregate that
// wires N nodes to a shared fabric. This is the hardware platform the FM
// libraries run on.
#pragma once

#include <memory>
#include <vector>

#include "myrinet/fabric.hpp"
#include "myrinet/host.hpp"
#include "myrinet/iobus.hpp"
#include "myrinet/nic.hpp"
#include "myrinet/params.hpp"
#include "sim/engine.hpp"

namespace fmx::net {

class Node {
 public:
  Node(sim::Engine& eng, int id, const ClusterParams& p, Fabric& fabric)
      : host_(eng, id, p.host),
        bus_(eng, p.bus),
        nic_(eng, id, p.nic, bus_, fabric) {
    nic_.start();
  }

  int id() const noexcept { return host_.id(); }
  Host& host() noexcept { return host_; }
  IoBus& bus() noexcept { return bus_; }
  Nic& nic() noexcept { return nic_; }

 private:
  Host host_;
  IoBus bus_;
  Nic nic_;
};

class Cluster {
 public:
  Cluster(sim::Engine& eng, const ClusterParams& p)
      : eng_(eng), params_(p), fabric_(eng, p.fabric, p.n_hosts) {
    nodes_.reserve(p.n_hosts);
    for (int i = 0; i < p.n_hosts; ++i) {
      nodes_.push_back(std::make_unique<Node>(eng, i, p, fabric_));
    }
  }

  sim::Engine& engine() noexcept { return eng_; }
  int size() const noexcept { return static_cast<int>(nodes_.size()); }
  Node& node(int i) { return *nodes_.at(i); }
  Fabric& fabric() noexcept { return fabric_; }
  const ClusterParams& params() const noexcept { return params_; }

 private:
  sim::Engine& eng_;
  ClusterParams params_;
  Fabric fabric_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace fmx::net
