// Host CPU cost model. Library code running "on" a host charges work to the
// host's ledger; the charges are paid (converted into simulated delay) at
// the next co_await host.sync(). Copies are performed for real and charged
// through the memcpy model, so both data integrity and copy counts are
// observable.
#pragma once

#include <cassert>
#include <cstddef>

#include "common/buffer.hpp"
#include "common/copy_stats.hpp"
#include "myrinet/params.hpp"
#include "sim/engine.hpp"
#include "sim/ledger.hpp"
#include "sim/task.hpp"

namespace fmx::net {

class Host {
 public:
  Host(sim::Engine& eng, int id, const HostParams& p)
      : eng_(eng), id_(id), p_(p) {}
  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  int id() const noexcept { return id_; }
  sim::Engine& engine() noexcept { return eng_; }
  const HostParams& params() const noexcept { return p_; }

  /// Record `t` of CPU work in category `c`; paid at the next sync().
  void charge(sim::Cost c, sim::Ps t) {
    ledger_.add(c, t);
    pending_ += t;
  }

  void charge_cycles(sim::Cost c, double cycles) {
    charge(c, static_cast<sim::Ps>(cycles *
                                   (static_cast<double>(sim::kPsPerSec) /
                                    p_.cpu_hz)));
  }

  /// Record work in the ledger without adding CPU delay — used when the
  /// time is already being spent elsewhere (e.g. PIO occupies the bus and
  /// the host simultaneously; the bus occupancy provides the delay).
  void note(sim::Cost c, sim::Ps t) { ledger_.add(c, t); }

  sim::Ps memcpy_cost(std::size_t bytes) const {
    double per_byte = bytes > p_.memcpy_cache_threshold
                          ? p_.memcpy_ps_per_byte_uncached
                          : p_.memcpy_ps_per_byte;
    return p_.memcpy_setup +
           static_cast<sim::Ps>(per_byte * static_cast<double>(bytes));
  }

  /// Copy with cost: really copies, charges the memcpy model, counts.
  void copy(MutByteSpan dst, ByteSpan src, sim::Cost c = sim::Cost::kCopy) {
    assert(dst.size() >= src.size());
    std::memcpy(dst.data(), src.data(), src.size());
    count_endpoint_copy(src.size());
    charge_copy(src.size(), c);
  }

  /// Modeled copy without physical data movement: charges the memcpy model
  /// and bumps the ledger copy count exactly like copy(), but the simulator
  /// shares the underlying BufferRef instead of moving bytes. Keeps pinned
  /// copy counts and determinism digests identical while the data plane
  /// goes zero-copy.
  void charge_copy(std::size_t bytes, sim::Cost c = sim::Cost::kCopy) {
    charge(c, memcpy_cost(bytes));
    ledger_.note_copy(bytes);
  }

  /// Pay all accumulated charges as simulated delay.
  sim::Task<void> sync() {
    sim::Ps due = pending_;
    pending_ = 0;
    if (due > 0) co_await eng_.delay(due);
  }

  /// Charge and pay in one step (convenience for blocking-style code).
  sim::Task<void> compute(sim::Ps t, sim::Cost c = sim::Cost::kOther) {
    charge(c, t);
    co_await sync();
  }

  sim::Ps pending() const noexcept { return pending_; }
  const sim::CostLedger& ledger() const noexcept { return ledger_; }
  sim::CostLedger& ledger() noexcept { return ledger_; }

 private:
  sim::Engine& eng_;
  int id_;
  HostParams p_;
  sim::CostLedger ledger_;
  sim::Ps pending_ = 0;
};

}  // namespace fmx::net
