// Host CPU cost model. Library code running "on" a host charges work to the
// host's ledger; the charges are paid (converted into simulated delay) at
// the next co_await host.sync(). Copies are performed for real and charged
// through the memcpy model, so both data integrity and copy counts are
// observable.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <unordered_map>

#include "common/buffer.hpp"
#include "common/copy_stats.hpp"
#include "myrinet/params.hpp"
#include "myrinet/reg_cache.hpp"
#include "sim/engine.hpp"
#include "sim/ledger.hpp"
#include "sim/task.hpp"

namespace fmx::net {

class Host {
 public:
  Host(sim::Engine& eng, int id, const HostParams& p)
      : eng_(eng), id_(id), p_(p), reg_cache_(p.reg) {}
  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  int id() const noexcept { return id_; }
  sim::Engine& engine() noexcept { return eng_; }
  const HostParams& params() const noexcept { return p_; }

  /// Record `t` of CPU work in category `c`; paid at the next sync().
  void charge(sim::Cost c, sim::Ps t) {
    ledger_.add(c, t);
    pending_ += t;
  }

  void charge_cycles(sim::Cost c, double cycles) {
    charge(c, static_cast<sim::Ps>(cycles *
                                   (static_cast<double>(sim::kPsPerSec) /
                                    p_.cpu_hz)));
  }

  /// Record work in the ledger without adding CPU delay — used when the
  /// time is already being spent elsewhere (e.g. PIO occupies the bus and
  /// the host simultaneously; the bus occupancy provides the delay).
  void note(sim::Cost c, sim::Ps t) { ledger_.add(c, t); }

  sim::Ps memcpy_cost(std::size_t bytes) const {
    double per_byte = bytes > p_.memcpy_cache_threshold
                          ? p_.memcpy_ps_per_byte_uncached
                          : p_.memcpy_ps_per_byte;
    return p_.memcpy_setup +
           static_cast<sim::Ps>(per_byte * static_cast<double>(bytes));
  }

  /// Copy with cost: really copies, charges the memcpy model, counts.
  void copy(MutByteSpan dst, ByteSpan src, sim::Cost c = sim::Cost::kCopy) {
    assert(dst.size() >= src.size());
    std::memcpy(dst.data(), src.data(), src.size());
    count_endpoint_copy(src.size());
    charge_copy(src.size(), c);
  }

  /// Modeled copy without physical data movement: charges the memcpy model
  /// and bumps the ledger copy count exactly like copy(), but the simulator
  /// shares the underlying BufferRef instead of moving bytes. Keeps pinned
  /// copy counts and determinism digests identical while the data plane
  /// goes zero-copy.
  void charge_copy(std::size_t bytes, sim::Cost c = sim::Cost::kCopy) {
    charge(c, memcpy_cost(bytes));
    ledger_.note_copy(bytes);
  }

  /// Pay all accumulated charges as simulated delay.
  sim::Task<void> sync() {
    sim::Ps due = pending_;
    pending_ = 0;
    if (due > 0) co_await eng_.delay(due);
  }

  /// Charge and pay in one step (convenience for blocking-style code).
  sim::Task<void> compute(sim::Ps t, sim::Cost c = sim::Cost::kOther) {
    charge(c, t);
    co_await sync();
  }

  sim::Ps pending() const noexcept { return pending_; }
  const sim::CostLedger& ledger() const noexcept { return ledger_; }
  sim::CostLedger& ledger() noexcept { return ledger_; }

  /// Pin-down cache for the RDMA rendezvous path. Callers charge the
  /// returned Acquire::cost to this host (Cost::kBufferMgmt).
  RegCache& reg_cache() noexcept { return reg_cache_; }
  const RegCache& reg_cache() const noexcept { return reg_cache_; }

  /// Translate a real buffer pointer into this host's simulated address
  /// space before handing it to the pin-down cache. The cache's cost model
  /// is page-granular, so raw heap pointers would leak the *process*
  /// allocator's placement — page offsets and accidental adjacency — into
  /// simulated pin costs, which must be a function of the simulation alone
  /// (they differ per run, per thread count, per libc). Each distinct
  /// buffer gets a page-aligned simulated range in first-touch order
  /// (simulated event order, hence deterministic), separated by a guard
  /// page so unrelated buffers never abut or coalesce by accident.
  /// Re-presenting the same base pointer maps to the same range, so
  /// registration-cache hits on buffer reuse are preserved; a larger span
  /// at the same base re-registers at a fresh range (the old region stays
  /// cached until evicted, like a real pin cache). Interior pointers are
  /// treated as distinct buffers.
  const void* sim_addr(const void* p, std::size_t n) {
    const std::uintptr_t page = p_.reg.page_bytes;
    auto it = va_map_.find(p);
    if (it == va_map_.end() || n > it->second.reserved) {
      VaRange r;
      r.va = next_va_;
      r.reserved = ((n > 0 ? n + page - 1 : page) / page) * page;
      next_va_ += r.reserved + page;  // +1 guard page
      it = va_map_.insert_or_assign(p, r).first;
    }
    return reinterpret_cast<const void*>(it->second.va);
  }

 private:
  struct VaRange {
    std::uintptr_t va = 0;
    std::size_t reserved = 0;  ///< page-rounded span backing this mapping
  };

  sim::Engine& eng_;
  int id_;
  HostParams p_;
  sim::CostLedger ledger_;
  sim::Ps pending_ = 0;
  RegCache reg_cache_;
  std::unordered_map<const void*, VaRange> va_map_;
  std::uintptr_t next_va_ = 1 << 16;  ///< skip low addresses (readability)
};

}  // namespace fmx::net
