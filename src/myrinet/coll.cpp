#include "myrinet/coll.hpp"

#include <algorithm>
#include <cassert>
#include <map>

namespace fmx::net {

namespace {

// parent[i] indexes into `order`: a radix-ary heap laid over the sequence.
int heap_parent(int i, int radix) { return (i - 1) / radix; }

}  // namespace

int coll_leader_radix(int radix, int n_clusters) noexcept {
  // Smallest r >= radix with 1 + r + r^2 >= n_clusters: leader hops cross
  // several switches, so extra heap levels cost far more than the extra
  // serialized transmits a wider root pays.
  int r = radix < 1 ? 1 : radix;
  while (1 + r + r * r < n_clusters) ++r;
  return r;
}

CollTree coll_tree(const Topo& topo, const std::vector<int>& members,
                   int radix, int self) {
  assert(!members.empty());
  if (radix < 1) radix = 1;
  const int root = members[0];

  // Cluster members by first-level switch, in switch order; members within
  // a cluster in id order. std::map keeps both orders canonical.
  std::map<int, std::vector<int>> clusters;
  for (int m : members) clusters[topo.first_switch(m)].push_back(m);
  for (auto& [sw, c] : clusters) std::sort(c.begin(), c.end());

  // Leader = member nearest the root (root itself in its own cluster;
  // everywhere else all members of one first-level switch are equidistant,
  // so the tie-break is the lowest id).
  struct Cluster {
    int leader;
    int hops;  // leader's distance from the root
    std::vector<int> rest;
  };
  std::vector<Cluster> cl;
  cl.reserve(clusters.size());
  for (auto& [sw, c] : clusters) {
    Cluster k;
    k.leader = c[0];
    for (int m : c)
      if (m == root) k.leader = root;
    k.hops = k.leader == root ? 0 : topo.hops(root, k.leader);
    for (int m : c)
      if (m != k.leader) k.rest.push_back(m);
    cl.push_back(std::move(k));
  }

  // Leaders form a radix-ary tree ordered (hops-from-root, id), root first.
  std::vector<int> leaders;
  leaders.reserve(cl.size());
  std::sort(cl.begin(), cl.end(), [](const Cluster& a, const Cluster& b) {
    if ((a.hops == 0) != (b.hops == 0)) return a.hops == 0;  // root first
    if (a.hops != b.hops) return a.hops < b.hops;
    return a.leader < b.leader;
  });
  for (const Cluster& k : cl) leaders.push_back(k.leader);

  int parent = -1;
  std::vector<int> children;
  auto relate = [&](const std::vector<int>& order, int r) {
    for (int i = 0; i < static_cast<int>(order.size()); ++i) {
      if (i > 0 && order[i] == self) parent = order[heap_parent(i, r)];
      if (i > 0 && order[heap_parent(i, r)] == self)
        children.push_back(order[i]);
    }
  };
  relate(leaders, coll_leader_radix(radix, static_cast<int>(cl.size())));
  for (const Cluster& k : cl) {
    std::vector<int> order;
    order.reserve(k.rest.size() + 1);
    order.push_back(k.leader);
    order.insert(order.end(), k.rest.begin(), k.rest.end());
    relate(order, radix);
  }

  CollTree t;
  t.parent = parent;
  t.children = std::move(children);
  return t;
}

}  // namespace fmx::net
