#include "myrinet/parallel_cluster.hpp"

#include "common/copy_stats.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <type_traits>

namespace fmx::net {
namespace {

// Wire format of one cross-shard message: header + payload bytes in a ring
// slot (or spill buffer). `ser` is recomputed from payload_len at the
// destination, so only the head time crosses.
struct CrossMsg {
  sim::Ps head;            // head-arrival time at the dst downlink
  std::uint64_t cross_key; // (src node << 44) | per-source-shard counter
  std::uint64_t wire_seq;
  std::uint64_t trace_id;
  std::uint32_t crc;
  std::uint32_t link_seq;
  std::uint32_t ack;
  std::uint32_t payload_len;
  std::int32_t src;
  std::int32_t dst;
  std::uint32_t rkey;
  std::uint32_t rdma_offset;
  std::uint32_t flow;  // ECMP flow label (packet.hpp)
  std::uint8_t has_ack;
  std::uint8_t ack_only;
  std::uint8_t kind;  // PacketKind
  std::uint8_t pad[1];
};
static_assert(std::is_trivially_copyable_v<CrossMsg>);

void encode(std::byte* slot, const WirePacket& pkt, sim::Ps head,
            std::uint64_t key) {
  CrossMsg m{};
  m.head = head;
  m.cross_key = key;
  m.wire_seq = pkt.wire_seq;
  m.trace_id = pkt.trace_id;
  m.crc = pkt.crc;
  m.link_seq = pkt.link_seq;
  m.ack = pkt.ack;
  m.payload_len = static_cast<std::uint32_t>(pkt.payload.size());
  m.src = pkt.src;
  m.dst = pkt.dst;
  m.has_ack = pkt.has_ack ? 1 : 0;
  m.ack_only = pkt.ack_only ? 1 : 0;
  m.kind = static_cast<std::uint8_t>(pkt.kind);
  m.rkey = pkt.rkey;
  m.rdma_offset = pkt.rdma_offset;
  m.flow = pkt.flow;
  std::memcpy(slot, &m, sizeof(m));
  if (!pkt.payload.empty()) {
    std::memcpy(slot + sizeof(m), pkt.payload.data(), pkt.payload.size());
    count_hop_copy(pkt.payload.size());
  }
}

void decode(const std::byte* slot, Fabric& dst_fabric) {
  CrossMsg m;
  std::memcpy(&m, slot, sizeof(m));
  WirePacket pkt;
  pkt.src = m.src;
  pkt.dst = m.dst;
  pkt.wire_seq = m.wire_seq;
  pkt.trace_id = m.trace_id;
  pkt.crc = m.crc;
  pkt.link_seq = m.link_seq;
  pkt.ack = m.ack;
  pkt.has_ack = m.has_ack != 0;
  pkt.ack_only = m.ack_only != 0;
  pkt.kind = static_cast<PacketKind>(m.kind);
  pkt.rkey = m.rkey;
  pkt.rdma_offset = m.rdma_offset;
  pkt.flow = m.flow;
  pkt.payload = dst_fabric.pool().acquire_ref(m.payload_len);
  if (m.payload_len != 0) {
    std::memcpy(pkt.payload.mutable_bytes().data(), slot + sizeof(m),
                m.payload_len);
    count_hop_copy(m.payload_len);
  }
  dst_fabric.accept_remote(std::move(pkt), m.head, m.cross_key);
}

constexpr std::size_t kRingSlots = 256;

// Contiguous node ranges per shard (aligns with switch locality).
std::vector<std::int32_t> make_shard_of(int n_hosts, int k) {
  std::vector<std::int32_t> out(n_hosts);
  for (int i = 0; i < n_hosts; ++i) {
    out[i] = static_cast<std::int32_t>(
        static_cast<std::int64_t>(i) * k / n_hosts);
  }
  return out;
}

// Per-pair lookahead: the minimum source-side head latency from any host
// of `src` to any host of `dst`. A cross-shard packet's head reaches the
// destination shard no earlier than one (link + switch) per switch hop on
// its path — the same per-link terms Fabric::transmit reserves, with
// serialization and contention stripped. Every ECMP path of a fat-tree
// pair has the same hop count, so hops() is an exact (not just
// conservative) distance. Adjacent chain shards get the classic one-hop
// 850 ns; cross-pod fat-tree shards synchronize 5x less often.
std::vector<sim::Ps> make_lookahead(const ClusterParams& p,
                                    const std::vector<std::int32_t>& shard_of,
                                    int k) {
  const Topo topo(p.fabric, p.n_hosts);
  const sim::Ps unit = p.fabric.link_latency + p.fabric.switch_latency;
  std::vector<sim::Ps> la(static_cast<std::size_t>(k) * k,
                          std::numeric_limits<sim::Ps>::max());
  for (int a = 0; a < p.n_hosts; ++a) {
    for (int b = 0; b < p.n_hosts; ++b) {
      const int sa = shard_of[a];
      const int sb = shard_of[b];
      if (sa == sb) continue;
      const sim::Ps v = static_cast<sim::Ps>(topo.hops(a, b)) * unit;
      sim::Ps& cell = la[static_cast<std::size_t>(sa) * k + sb];
      if (v < cell) cell = v;
    }
  }
  return la;
}

}  // namespace

// Source-shard side of the exchange: serialize into the (src,dst) ring, or
// spill under the mutex when the ring is momentarily full / the payload is
// oversized. One port per shard; emit() runs only on the shard's owner.
class ParallelCluster::Port final : public CrossShardPort {
 public:
  Port(ParallelCluster* cl, int shard) : cl_(cl), shard_(shard) {}

  void emit(const WirePacket& pkt, sim::Ps head) override {
    // 60-bit keys: node id (16 bits) above a 44-bit per-source-shard
    // counter. Assigned in shard-local program order, so the key sequence
    // is independent of thread count.
    const std::uint64_t key =
        (static_cast<std::uint64_t>(pkt.src) << 44) | ctr_++;
    assert((ctr_ & (std::uint64_t{1} << 44)) == 0 && "cross counter overflow");
    const int dst_shard = cl_->shard_of_[pkt.dst];
    Ring& r = cl_->ring(shard_, dst_shard);
    const std::size_t need = sizeof(CrossMsg) + pkt.payload.size();
    bool pushed = false;
    if (need <= r.ring.slot_bytes()) {
      if (std::byte* slot = r.ring.try_push_slot()) {
        encode(slot, pkt, head, key);
        r.ring.commit_push();
        pushed = true;
      }
    }
    if (!pushed) {
      std::lock_guard<std::mutex> lock(r.mu);
      if (r.pool.empty()) {
        r.spill.emplace_back(need);
      } else {
        r.spill.push_back(std::move(r.pool.back()));
        r.pool.pop_back();
        if (r.spill.back().size() < need) r.spill.back().resize(need);
      }
      encode(r.spill.back().data(), pkt, head, key);
      r.spilled.store(static_cast<std::uint32_t>(r.spill.size()),
                      std::memory_order_release);
    }
    // After the commit: the bucket must never cover a message the
    // destination cannot yet see.
    cl_->par_.note_emission(shard_, dst_shard, head);
  }

 private:
  ParallelCluster* cl_;
  int shard_;
  std::uint64_t ctr_ = 0;
};

ParallelCluster::ParallelCluster(const ClusterParams& p, int n_shards)
    : params_(p),
      n_shards_(n_shards <= 0 || n_shards > p.n_hosts ? p.n_hosts : n_shards),
      shard_of_(make_shard_of(p.n_hosts, n_shards_)),
      par_(n_shards_, make_lookahead(p, shard_of_, n_shards_)) {
  // Host range [shard_begin_[s], shard_begin_[s+1]) owned by shard s, and
  // the static head-latency table the emission-bound hook adds to dynamic
  // uplink state: sl_host_[a][d] = min over hosts b of shard d of the
  // source-side path latency a -> b.
  shard_begin_.assign(n_shards_ + 1, p.n_hosts);
  for (int i = p.n_hosts - 1; i >= 0; --i) shard_begin_[shard_of_[i]] = i;
  const Topo topo(p.fabric, p.n_hosts);
  const sim::Ps unit = p.fabric.link_latency + p.fabric.switch_latency;
  sl_host_.assign(static_cast<std::size_t>(p.n_hosts) * n_shards_,
                  std::numeric_limits<sim::Ps>::max());
  for (int a = 0; a < p.n_hosts; ++a) {
    for (int b = 0; b < p.n_hosts; ++b) {
      if (shard_of_[b] == shard_of_[a]) continue;
      const sim::Ps v = static_cast<sim::Ps>(topo.hops(a, b)) * unit;
      sim::Ps& cell =
          sl_host_[static_cast<std::size_t>(a) * n_shards_ + shard_of_[b]];
      if (v < cell) cell = v;
    }
  }

  // Slot must fit the largest wire payload a NIC will send (MTU payload +
  // the messaging layer's packet header); anything bigger takes the spill
  // path, so this is a fast-path size, not a correctness limit.
  const std::size_t slot_bytes = sizeof(CrossMsg) + p.nic.mtu_payload + 256;
  rings_.resize(static_cast<std::size_t>(n_shards_) * n_shards_);
  for (int s = 0; s < n_shards_; ++s) {
    for (int t = 0; t < n_shards_; ++t) {
      if (s != t) {
        rings_[s * n_shards_ + t] =
            std::make_unique<Ring>(kRingSlots, slot_bytes);
      }
    }
  }

  // Pre-size each shard's event heap for the deepest cross-ring drain the
  // ring/spill pools themselves are pre-sized for: every inbound peer can
  // deliver a full ring (kRingSlots) plus the pre-warmed spill allowance
  // (4x slots) in one batch, and each drained message becomes one
  // scheduled event. How full the rings actually get depends on
  // wall-clock thread skew, so growing on demand would allocate at an
  // unpredictable point mid-measurement.
  const std::size_t drain_peak =
      4096 + static_cast<std::size_t>(n_shards_ - 1) * 5 * kRingSlots;

  fabrics_.reserve(n_shards_);
  ports_.reserve(n_shards_);
  for (int s = 0; s < n_shards_; ++s) {
    par_.shard(s).reserve_events(drain_peak);
    fabrics_.push_back(
        std::make_unique<Fabric>(par_.shard(s), p.fabric, p.n_hosts));
    ports_.push_back(std::make_unique<Port>(this, s));
    fabrics_[s]->set_parallel(ports_[s].get(), shard_of_.data(), s,
                              drain_peak);
    par_.set_drain(s, [this, s] { drain_into(s); });
    par_.set_emission_bound(
        s, [this, s](sim::Ps e, sim::Ps* out) { emission_bound(s, e, out); });
    par_.set_inbox_empty(s, [this, s] { return inbox_empty(s); });
    // Minimum reaction time of a shard to an inbound packet: every causal
    // response flows through Nic::rx_wire_program, which charges
    // per_packet_rx before anything downstream can observe the packet. In
    // clean mode the response emission additionally pays a fresh
    // tx_inject per_packet_tx; with reliable links an arriving ack can
    // release a window-blocked sender in the same timestamp as its rx
    // processing, so only the rx term is safe there.
    par_.set_reaction_gap(
        s, p.nic.per_packet_rx +
               (p.nic.reliable_link ? sim::Ps{0} : p.nic.per_packet_tx));
  }

  nodes_.reserve(p.n_hosts);
  for (int i = 0; i < p.n_hosts; ++i) {
    const int s = shard_of_[i];
    nodes_.push_back(
        std::make_unique<Node>(par_.shard(s), i, p, *fabrics_[s]));
  }

  // Pre-warm every shard's buffer pool across the packet size classes.
  // Under batched quanta the peak number of simultaneously live blocks
  // depends on cross-shard thread timing, so a warmup wave cannot
  // deterministically reach the high-water mark the way it does in serial
  // runs; paying the structural worst case here keeps the steady-state
  // data path off the allocator at any interleaving.
  for (int s = 0; s < n_shards_; ++s) {
    const int hosts = shard_begin_[s + 1] - shard_begin_[s];
    const int per_class = 128 * (hosts + 1);
    std::vector<BufferRef> warm;
    warm.reserve(static_cast<std::size_t>(per_class));
    for (std::size_t sz = 64; sz / 2 < slot_bytes; sz *= 2) {
      warm.clear();
      for (int i = 0; i < per_class; ++i) {
        warm.push_back(fabrics_[s]->pool().acquire_ref(sz));
      }
    }
  }
  expose_metrics();
}

ParallelCluster::~ParallelCluster() = default;

void ParallelCluster::drain_into(int dst_shard) {
  Fabric& f = *fabrics_[dst_shard];
  for (int s = 0; s < n_shards_; ++s) {
    if (s == dst_shard) continue;
    Ring& r = ring(s, dst_shard);
    std::uint64_t n = 0;
    while (const std::byte* slot = r.ring.front()) {
      decode(slot, f);
      r.ring.pop();
      ++n;
    }
    if (r.spilled.load(std::memory_order_acquire) != 0) {
      {
        std::lock_guard<std::mutex> lock(r.mu);
        r.drained.swap(r.spill);
        r.spilled.store(0, std::memory_order_release);
      }
      for (const auto& buf : r.drained) decode(buf.data(), f);
      n += r.drained.size();
      {
        std::lock_guard<std::mutex> lock(r.mu);
        for (auto& buf : r.drained) r.pool.push_back(std::move(buf));
      }
      r.drained.clear();
    }
    if (n != 0) par_.note_drained(dst_shard, s, n);
  }
}

// Lower bound on the head-arrival time of any cross-shard packet this
// shard can still emit, per destination shard, given that no local event
// runs before `e`. Two dynamic terms sharpen the static latency:
//
//   - The source host's uplink next-free time: every emission serializes
//     through Fabric::transmit, and SerialResource reservations are
//     monotone. While a host streams, its uplink sits reserved several
//     microseconds ahead of the clock.
//   - The NIC wire floor: the NIC is the only transmit caller, and a
//     fresh injection trails the event that triggers it by at least the
//     per-packet tx overhead (or the ack/timeout windows in reliable
//     mode) — Nic::wire_floor tracks the armed mid-pipeline states where
//     that gap has already partly elapsed. This is what keeps quanta
//     wider than the static 850 ns even when senders sit credit-blocked
//     with idle uplinks.
//
// max of the two, plus the metric-closed path latency, per source host;
// min over the shard's hosts per destination.
void ParallelCluster::emission_bound(int shard, sim::Ps e,
                                     sim::Ps* out) const {
  constexpr sim::Ps kNever = std::numeric_limits<sim::Ps>::max();
  for (int d = 0; d < n_shards_; ++d) out[d] = kNever;
  const Fabric& f = *fabrics_[shard];
  for (int a = shard_begin_[shard]; a < shard_begin_[shard + 1]; ++a) {
    const sim::Ps base =
        std::max(f.uplink_free(a), nodes_[a]->nic().wire_floor(e));
    const sim::Ps* sl = &sl_host_[static_cast<std::size_t>(a) * n_shards_];
    for (int d = 0; d < n_shards_; ++d) {
      if (sl[d] == kNever) continue;  // own shard
      const sim::Ps v = base > kNever - sl[d] ? kNever : base + sl[d];
      if (v < out[d]) out[d] = v;
    }
  }
}

// Termination-sweep predicate: nothing published to this shard is still
// undrained. Runs with every worker parked (ParallelEngine guarantees
// exclusivity through its idle mutex), so ring indices are quiescent.
bool ParallelCluster::inbox_empty(int shard) const {
  for (int s = 0; s < n_shards_; ++s) {
    if (s == shard) continue;
    const Ring& r = *rings_[s * n_shards_ + shard];
    if (!r.ring.empty()) return false;
    if (r.spilled.load(std::memory_order_acquire) != 0) return false;
  }
  return true;
}

ParallelCluster::RunResult ParallelCluster::run(int n_threads) {
  if (n_threads <= 0) {
    n_threads = env_threads();
    if (n_threads <= 0) n_threads = 1;
  }
  sim::ParallelEngine::RunResult r = par_.run(n_threads);
  return RunResult{r.events, r.windows, r.barrier_crossings, r.pending_roots};
}

int ParallelCluster::env_threads() {
  const char* v = std::getenv("FMX_THREADS");
  if (v == nullptr) return 0;
  const int n = std::atoi(v);
  return n > 0 ? n : 0;
}

void ParallelCluster::enable_tracing(std::size_t capacity_events) {
  for (auto& f : fabrics_) f->tracer().enable(capacity_events);
}

std::vector<trace::Event> ParallelCluster::merged_trace() const {
  std::vector<std::vector<trace::Event>> streams;
  streams.reserve(fabrics_.size());
  for (const auto& f : fabrics_) streams.push_back(f->tracer().events());
  return trace::merge_streams(streams);
}

Fabric::Stats ParallelCluster::fabric_stats() const {
  Fabric::Stats out;
  for (const auto& f : fabrics_) {
    const Fabric::Stats& s = f->stats();
    out.packets += s.packets;
    out.payload_bytes += s.payload_bytes;
    out.corrupted += s.corrupted;
    out.dropped += s.dropped;
    out.duplicated += s.duplicated;
    out.delayed += s.delayed;
  }
  return out;
}

// Mirror of Cluster::expose_metrics, scoped per shard: every shard's tracer
// sees its own fabric replica, pool, and the nodes it owns.
void ParallelCluster::expose_metrics() {
  for (int s = 0; s < n_shards_; ++s) {
    trace::MetricsRegistry& m = fabrics_[s]->tracer().metrics();
    const Fabric::Stats& fs = fabrics_[s]->stats();
    m.expose("fabric.packets", &fs.packets);
    m.expose("fabric.payload_bytes", &fs.payload_bytes);
    m.expose("fabric.corrupted", &fs.corrupted);
    m.expose("fabric.dropped", &fs.dropped);
    m.expose("fabric.duplicated", &fs.duplicated);
    m.expose("fabric.delayed", &fs.delayed);
    const BufferPool::Stats& ps = fabrics_[s]->pool().stats();
    m.expose("pool.acquires", &ps.acquires);
    m.expose("pool.hits", &ps.pool_hits);
    m.expose("pool.misses", &ps.fresh_allocs);
    m.expose("pool.releases", &ps.releases);
  }
  for (const auto& n : nodes_) {
    trace::MetricsRegistry& m =
        fabrics_[shard_of_[n->id()]]->tracer().metrics();
    const std::string pre = "node" + std::to_string(n->id()) + ".";
    const Nic::Stats& ns = n->nic().stats();
    m.expose(pre + "nic.tx_packets", &ns.tx_packets);
    m.expose(pre + "nic.rx_packets", &ns.rx_packets);
    m.expose(pre + "nic.crc_dropped", &ns.crc_dropped);
    m.expose(pre + "nic.retransmissions", &ns.retransmissions);
    m.expose(pre + "nic.acks_sent", &ns.acks_sent);
    m.expose(pre + "nic.seq_dropped", &ns.seq_dropped);
    m.expose(pre + "nic.coll_rx_packets", &ns.coll_rx_packets);
    m.expose(pre + "nic.coll_combines", &ns.coll_combines);
    m.expose(pre + "nic.coll_forwards", &ns.coll_forwards);
    m.expose(pre + "nic.coll_completions", &ns.coll_completions);
    m.expose(pre + "nic.coll_orphaned", &ns.coll_orphaned);
    m.expose(pre + "nic.coll_stale", &ns.coll_stale);
    const sim::CostLedger& hl = n->host().ledger();
    m.expose(pre + "host.copies", hl.copies_cell());
    m.expose(pre + "host.copied_bytes", hl.copied_bytes_cell());
    m.expose(pre + "host.pool_misses", hl.allocs_cell());
    m.expose(pre + "host.pool_miss_bytes", hl.alloc_bytes_cell());
    const RegCache::Stats& rs = n->host().reg_cache().stats();
    m.expose(pre + "regcache.hits", &rs.hits);
    m.expose(pre + "regcache.misses", &rs.misses);
    m.expose(pre + "regcache.evictions", &rs.evictions);
    m.expose(pre + "regcache.coalesces", &rs.coalesces);
    m.expose(pre + "regcache.pinned_bytes", &rs.pinned_bytes);
  }
}

}  // namespace fmx::net
