#include "myrinet/parallel_cluster.hpp"

#include "common/copy_stats.hpp"

#include <cassert>
#include <cstdlib>
#include <cstring>
#include <string>
#include <type_traits>

namespace fmx::net {
namespace {

// Wire format of one cross-shard message: header + payload bytes in a ring
// slot (or spill buffer). `ser` is recomputed from payload_len at the
// destination, so only the head time crosses.
struct CrossMsg {
  sim::Ps head;            // head-arrival time at the dst downlink
  std::uint64_t cross_key; // (src node << 44) | per-source-shard counter
  std::uint64_t wire_seq;
  std::uint64_t trace_id;
  std::uint32_t crc;
  std::uint32_t link_seq;
  std::uint32_t ack;
  std::uint32_t payload_len;
  std::int32_t src;
  std::int32_t dst;
  std::uint8_t has_ack;
  std::uint8_t ack_only;
  std::uint8_t pad[6];
};
static_assert(std::is_trivially_copyable_v<CrossMsg>);

void encode(std::byte* slot, const WirePacket& pkt, sim::Ps head,
            std::uint64_t key) {
  CrossMsg m{};
  m.head = head;
  m.cross_key = key;
  m.wire_seq = pkt.wire_seq;
  m.trace_id = pkt.trace_id;
  m.crc = pkt.crc;
  m.link_seq = pkt.link_seq;
  m.ack = pkt.ack;
  m.payload_len = static_cast<std::uint32_t>(pkt.payload.size());
  m.src = pkt.src;
  m.dst = pkt.dst;
  m.has_ack = pkt.has_ack ? 1 : 0;
  m.ack_only = pkt.ack_only ? 1 : 0;
  std::memcpy(slot, &m, sizeof(m));
  if (!pkt.payload.empty()) {
    std::memcpy(slot + sizeof(m), pkt.payload.data(), pkt.payload.size());
    count_hop_copy(pkt.payload.size());
  }
}

void decode(const std::byte* slot, Fabric& dst_fabric) {
  CrossMsg m;
  std::memcpy(&m, slot, sizeof(m));
  WirePacket pkt;
  pkt.src = m.src;
  pkt.dst = m.dst;
  pkt.wire_seq = m.wire_seq;
  pkt.trace_id = m.trace_id;
  pkt.crc = m.crc;
  pkt.link_seq = m.link_seq;
  pkt.ack = m.ack;
  pkt.has_ack = m.has_ack != 0;
  pkt.ack_only = m.ack_only != 0;
  pkt.payload = dst_fabric.pool().acquire_ref(m.payload_len);
  if (m.payload_len != 0) {
    std::memcpy(pkt.payload.mutable_bytes().data(), slot + sizeof(m),
                m.payload_len);
    count_hop_copy(m.payload_len);
  }
  dst_fabric.accept_remote(std::move(pkt), m.head, m.cross_key);
}

constexpr std::size_t kRingSlots = 256;

}  // namespace

// Source-shard side of the exchange: serialize into the (src,dst) ring, or
// spill under the mutex when the ring is momentarily full / the payload is
// oversized. One port per shard; emit() runs only on the shard's owner.
class ParallelCluster::Port final : public CrossShardPort {
 public:
  Port(ParallelCluster* cl, int shard) : cl_(cl), shard_(shard) {}

  void emit(const WirePacket& pkt, sim::Ps head) override {
    // 60-bit keys: node id (16 bits) above a 44-bit per-source-shard
    // counter. Assigned in shard-local program order, so the key sequence
    // is independent of thread count.
    const std::uint64_t key =
        (static_cast<std::uint64_t>(pkt.src) << 44) | ctr_++;
    assert((ctr_ & (std::uint64_t{1} << 44)) == 0 && "cross counter overflow");
    Ring& r = cl_->ring(shard_, cl_->shard_of_[pkt.dst]);
    const std::size_t need = sizeof(CrossMsg) + pkt.payload.size();
    if (need <= r.ring.slot_bytes()) {
      if (std::byte* slot = r.ring.try_push_slot()) {
        encode(slot, pkt, head, key);
        r.ring.commit_push();
        return;
      }
    }
    std::vector<std::byte> buf(need);
    encode(buf.data(), pkt, head, key);
    std::lock_guard<std::mutex> lock(r.mu);
    r.spill.push_back(std::move(buf));
    r.spilled.store(static_cast<std::uint32_t>(r.spill.size()),
                    std::memory_order_release);
  }

 private:
  ParallelCluster* cl_;
  int shard_;
  std::uint64_t ctr_ = 0;
};

ParallelCluster::ParallelCluster(const ClusterParams& p, int n_shards)
    : params_(p),
      n_shards_(n_shards <= 0 || n_shards > p.n_hosts ? p.n_hosts : n_shards),
      par_(n_shards_, Fabric::cross_lookahead(p.fabric)) {
  // Contiguous node ranges per shard (aligns with switch locality).
  shard_of_.resize(p.n_hosts);
  for (int i = 0; i < p.n_hosts; ++i) {
    shard_of_[i] = static_cast<std::int32_t>(
        static_cast<std::int64_t>(i) * n_shards_ / p.n_hosts);
  }

  // Slot must fit the largest wire payload a NIC will send (MTU payload +
  // the messaging layer's packet header); anything bigger takes the spill
  // path, so this is a fast-path size, not a correctness limit.
  const std::size_t slot_bytes = sizeof(CrossMsg) + p.nic.mtu_payload + 256;
  rings_.resize(static_cast<std::size_t>(n_shards_) * n_shards_);
  for (int s = 0; s < n_shards_; ++s) {
    for (int t = 0; t < n_shards_; ++t) {
      if (s != t) {
        rings_[s * n_shards_ + t] =
            std::make_unique<Ring>(kRingSlots, slot_bytes);
      }
    }
  }

  fabrics_.reserve(n_shards_);
  ports_.reserve(n_shards_);
  for (int s = 0; s < n_shards_; ++s) {
    fabrics_.push_back(
        std::make_unique<Fabric>(par_.shard(s), p.fabric, p.n_hosts));
    ports_.push_back(std::make_unique<Port>(this, s));
    fabrics_[s]->set_parallel(ports_[s].get(), shard_of_.data(), s);
    par_.set_drain(s, [this, s] { drain_into(s); });
  }

  nodes_.reserve(p.n_hosts);
  for (int i = 0; i < p.n_hosts; ++i) {
    const int s = shard_of_[i];
    nodes_.push_back(
        std::make_unique<Node>(par_.shard(s), i, p, *fabrics_[s]));
  }
  expose_metrics();
}

ParallelCluster::~ParallelCluster() = default;

void ParallelCluster::drain_into(int dst_shard) {
  Fabric& f = *fabrics_[dst_shard];
  for (int s = 0; s < n_shards_; ++s) {
    if (s == dst_shard) continue;
    Ring& r = ring(s, dst_shard);
    while (const std::byte* slot = r.ring.front()) {
      decode(slot, f);
      r.ring.pop();
    }
    if (r.spilled.load(std::memory_order_acquire) != 0) {
      std::vector<std::vector<std::byte>> taken;
      {
        std::lock_guard<std::mutex> lock(r.mu);
        taken.swap(r.spill);
        r.spilled.store(0, std::memory_order_release);
      }
      for (const auto& buf : taken) decode(buf.data(), f);
    }
  }
}

ParallelCluster::RunResult ParallelCluster::run(int n_threads) {
  if (n_threads <= 0) {
    n_threads = env_threads();
    if (n_threads <= 0) n_threads = 1;
  }
  sim::ParallelEngine::RunResult r = par_.run(n_threads);
  return RunResult{r.events, r.windows, r.pending_roots};
}

int ParallelCluster::env_threads() {
  const char* v = std::getenv("FMX_THREADS");
  if (v == nullptr) return 0;
  const int n = std::atoi(v);
  return n > 0 ? n : 0;
}

void ParallelCluster::enable_tracing(std::size_t capacity_events) {
  for (auto& f : fabrics_) f->tracer().enable(capacity_events);
}

std::vector<trace::Event> ParallelCluster::merged_trace() const {
  std::vector<std::vector<trace::Event>> streams;
  streams.reserve(fabrics_.size());
  for (const auto& f : fabrics_) streams.push_back(f->tracer().events());
  return trace::merge_streams(streams);
}

Fabric::Stats ParallelCluster::fabric_stats() const {
  Fabric::Stats out;
  for (const auto& f : fabrics_) {
    const Fabric::Stats& s = f->stats();
    out.packets += s.packets;
    out.payload_bytes += s.payload_bytes;
    out.corrupted += s.corrupted;
    out.dropped += s.dropped;
    out.duplicated += s.duplicated;
    out.delayed += s.delayed;
  }
  return out;
}

// Mirror of Cluster::expose_metrics, scoped per shard: every shard's tracer
// sees its own fabric replica, pool, and the nodes it owns.
void ParallelCluster::expose_metrics() {
  for (int s = 0; s < n_shards_; ++s) {
    trace::MetricsRegistry& m = fabrics_[s]->tracer().metrics();
    const Fabric::Stats& fs = fabrics_[s]->stats();
    m.expose("fabric.packets", &fs.packets);
    m.expose("fabric.payload_bytes", &fs.payload_bytes);
    m.expose("fabric.corrupted", &fs.corrupted);
    m.expose("fabric.dropped", &fs.dropped);
    m.expose("fabric.duplicated", &fs.duplicated);
    m.expose("fabric.delayed", &fs.delayed);
    const BufferPool::Stats& ps = fabrics_[s]->pool().stats();
    m.expose("pool.acquires", &ps.acquires);
    m.expose("pool.hits", &ps.pool_hits);
    m.expose("pool.misses", &ps.fresh_allocs);
    m.expose("pool.releases", &ps.releases);
  }
  for (const auto& n : nodes_) {
    trace::MetricsRegistry& m =
        fabrics_[shard_of_[n->id()]]->tracer().metrics();
    const std::string pre = "node" + std::to_string(n->id()) + ".";
    const Nic::Stats& ns = n->nic().stats();
    m.expose(pre + "nic.tx_packets", &ns.tx_packets);
    m.expose(pre + "nic.rx_packets", &ns.rx_packets);
    m.expose(pre + "nic.crc_dropped", &ns.crc_dropped);
    m.expose(pre + "nic.retransmissions", &ns.retransmissions);
    m.expose(pre + "nic.acks_sent", &ns.acks_sent);
    m.expose(pre + "nic.seq_dropped", &ns.seq_dropped);
    const sim::CostLedger& hl = n->host().ledger();
    m.expose(pre + "host.copies", hl.copies_cell());
    m.expose(pre + "host.copied_bytes", hl.copied_bytes_cell());
    m.expose(pre + "host.pool_misses", hl.allocs_cell());
    m.expose(pre + "host.pool_miss_bytes", hl.alloc_bytes_cell());
  }
}

}  // namespace fmx::net
