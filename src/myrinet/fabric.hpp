// Myrinet-style switch fabric: source-routed, cut-through, no buffering in
// the network, link-level back-pressure. Hosts hang off crossbar switches
// (hosts_per_switch each); switches are chained for larger clusters.
//
// Modeling approach: each directed link is a FIFO serial resource. A packet
// reserves every link on its path at injection time; on link i it may start
// no earlier than its head could have arrived from link i-1 (cut-through
// pipelining), and no earlier than the link is free (contention). Back-
// pressure is a slack-token semaphore per destination NIC: a sender cannot
// inject until the receiving NIC has inbound SRAM to hold the packet —
// the discrete-event equivalent of Myrinet's STOP/GO link flow control.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/buffer_pool.hpp"
#include "myrinet/fault_hooks.hpp"
#include "myrinet/packet.hpp"
#include "myrinet/params.hpp"
#include "sim/channel.hpp"
#include "sim/engine.hpp"
#include "sim/random.hpp"
#include "sim/resource.hpp"
#include "sim/sync.hpp"
#include "trace/trace.hpp"

namespace fmx::net {

class Fabric {
 public:
  Fabric(sim::Engine& eng, const FabricParams& p, int n_hosts);
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// NIC registration: its inbound wire buffer and slack-token pool.
  void attach(int host, sim::Channel<WirePacket>* wire_in,
              sim::Semaphore* slack);

  /// Inject a packet. Returns when the sender's uplink is released (i.e.
  /// serialization done and the NIC may handle the next packet); delivery
  /// into the destination's wire buffer continues in the background.
  sim::Task<void> transmit(WirePacket pkt);

  /// Bytes a payload occupies on the wire (framing + route + CRC).
  std::size_t wire_bytes(std::size_t payload) const;
  /// Number of switch hops between two hosts.
  int hops(int src, int dst) const;
  /// Zero-load one-way wire latency for a payload of the given size.
  sim::Ps zero_load_latency(int src, int dst, std::size_t payload) const;

  struct Stats {
    std::uint64_t packets = 0;
    std::uint64_t payload_bytes = 0;
    std::uint64_t corrupted = 0;
    // injected-fault counters (nonzero only with a FaultInjector armed)
    std::uint64_t dropped = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t delayed = 0;
  };
  const Stats& stats() const noexcept { return stats_; }
  const FabricParams& params() const noexcept { return p_; }
  int n_hosts() const noexcept { return n_hosts_; }

  /// Arm (or disarm, with nullptr) a fault injector. The injector must
  /// outlive all traffic; it is consulted at every packet's delivery point.
  void set_fault(FaultInjector* f) noexcept { fault_ = f; }
  FaultInjector* fault() const noexcept { return fault_; }

  /// Shared packet-buffer pool for everything attached to this fabric (NICs
  /// and the messaging layers above them). One pool per cluster means a
  /// buffer freed by a receiver is immediately reusable by any sender.
  BufferPool& pool() noexcept { return pool_; }

  /// Cluster-wide tracer. Disabled by default (a single branch per hook);
  /// every layer attached to this fabric records through it.
  trace::Tracer& tracer() noexcept { return tracer_; }
  const trace::Tracer& tracer() const noexcept { return tracer_; }

 private:
  struct Link {
    explicit Link(sim::Engine& eng, sim::Ps lat) : ser(eng), latency(lat) {}
    sim::SerialResource ser;
    sim::Ps latency;
  };
  struct Endpoint {
    sim::Channel<WirePacket>* wire_in = nullptr;
    sim::Semaphore* slack = nullptr;
  };

  int switch_of(int host) const { return host / p_.hosts_per_switch; }
  /// Fills route_scratch_ with the link path src -> dst and returns it.
  /// Valid until the next route() call; transmit() uses it without
  /// suspending, so concurrent transmits never see each other's path.
  const std::vector<Link*>& route(int src, int dst);
  sim::Task<void> deliver(WirePacket pkt, sim::Ps at);
  sim::Task<void> deliver_duplicate(WirePacket pkt);
  void maybe_corrupt(WirePacket& pkt);

  sim::Engine& eng_;
  FabricParams p_;
  int n_hosts_;
  int n_switches_;
  std::vector<std::unique_ptr<Link>> up_;     // host -> its switch
  std::vector<std::unique_ptr<Link>> down_;   // switch -> host
  std::vector<std::unique_ptr<Link>> right_;  // switch s -> s+1
  std::vector<std::unique_ptr<Link>> left_;   // switch s+1 -> s
  std::vector<Endpoint> endpoints_;
  std::vector<Link*> route_scratch_;
  BufferPool pool_;
  FaultInjector* fault_ = nullptr;
  trace::Tracer tracer_{eng_};
  Stats stats_;
  std::uint64_t next_seq_ = 0;
  sim::Rng rng_{0x9E3779B97F4A7C15ull};
};

}  // namespace fmx::net
