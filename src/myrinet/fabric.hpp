// Myrinet-style switch fabric: source-routed, cut-through, no buffering in
// the network, link-level back-pressure. The switch geometry — chained
// crossbars or a k-ary fat-tree/Clos with ECMP multipath — lives in
// myrinet/topo.hpp; the Fabric holds one FIFO serial resource per directed
// link id and walks the topology's precomputed route tables at transmit
// time (O(1) per hop, no shared scratch path).
//
// Modeling approach: each directed link is a FIFO serial resource. A packet
// reserves every link on its path at injection time; on link i it may start
// no earlier than its head could have arrived from link i-1 (cut-through
// pipelining), and no earlier than the link is free (contention). Back-
// pressure is a slack-token semaphore per destination NIC: a sender cannot
// inject until the receiving NIC has inbound SRAM to hold the packet —
// the discrete-event equivalent of Myrinet's STOP/GO link flow control.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/buffer_pool.hpp"
#include "myrinet/fault_hooks.hpp"
#include "myrinet/packet.hpp"
#include "myrinet/params.hpp"
#include "myrinet/topo.hpp"
#include "sim/channel.hpp"
#include "sim/engine.hpp"
#include "sim/random.hpp"
#include "sim/resource.hpp"
#include "sim/sync.hpp"
#include "trace/trace.hpp"

namespace fmx::net {

/// Cross-shard transport used in parallel runs (myrinet/parallel_cluster.hpp).
/// A fabric replica calls emit() for packets whose destination node lives on
/// a different shard, after reserving all source-side links; `head_arrival`
/// is the simulated time the packet's head reaches the destination's
/// downlink — at least one lookahead in the future by construction.
class CrossShardPort {
 public:
  virtual ~CrossShardPort() = default;
  virtual void emit(const WirePacket& pkt, sim::Ps head_arrival) = 0;
};

class Fabric {
 public:
  Fabric(sim::Engine& eng, const FabricParams& p, int n_hosts);
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// NIC registration: its inbound wire buffer and slack-token pool.
  void attach(int host, sim::Channel<WirePacket>* wire_in,
              sim::Semaphore* slack);

  /// Inject a packet. Returns when the sender's uplink is released (i.e.
  /// serialization done and the NIC may handle the next packet); delivery
  /// into the destination's wire buffer continues in the background.
  sim::Task<void> transmit(WirePacket pkt);

  /// Bytes a payload occupies on the wire (framing + route + CRC).
  std::size_t wire_bytes(std::size_t payload) const;
  /// Number of switch hops between two hosts (equal on every ECMP path).
  int hops(int src, int dst) const { return topo_.hops(src, dst); }
  /// Zero-load one-way wire latency for a payload of the given size.
  sim::Ps zero_load_latency(int src, int dst, std::size_t payload) const;
  /// Routing geometry (hop counts, ECMP path enumeration, link levels).
  const Topo& topo() const noexcept { return topo_; }
  /// Link-id path a flow takes — a fresh vector per call, so interleaved
  /// queries never alias (regression coverage for the old route() scratch).
  std::vector<int> path_of(int src, int dst, std::uint32_t flow) const {
    return topo_.path(src, dst, flow);
  }

  struct Stats {
    std::uint64_t packets = 0;
    std::uint64_t payload_bytes = 0;
    std::uint64_t corrupted = 0;
    // injected-fault counters (nonzero only with a FaultInjector armed)
    std::uint64_t dropped = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t delayed = 0;
  };
  const Stats& stats() const noexcept { return stats_; }
  const FabricParams& params() const noexcept { return p_; }
  int n_hosts() const noexcept { return n_hosts_; }

  /// Arm (or disarm, with nullptr) a fault injector. The injector must
  /// outlive all traffic; it is consulted at every packet's delivery point.
  void set_fault(FaultInjector* f) noexcept { fault_ = f; }
  FaultInjector* fault() const noexcept { return fault_; }

  /// Shared packet-buffer pool for everything attached to this fabric (NICs
  /// and the messaging layers above them). One pool per cluster means a
  /// buffer freed by a receiver is immediately reusable by any sender.
  BufferPool& pool() noexcept { return pool_; }

  /// Cluster-wide tracer. Disabled by default (a single branch per hook);
  /// every layer attached to this fabric records through it.
  trace::Tracer& tracer() noexcept { return tracer_; }
  const trace::Tracer& tracer() const noexcept { return tracer_; }

  // --- Parallel (sharded) execution --------------------------------------
  /// Minimum simulated time any packet needs to cross between shards: every
  /// cross-shard path starts with the source's uplink, whose propagation is
  /// link latency + the first switch's routing decision. This is the
  /// conservative lookahead that bounds the parallel window width.
  static sim::Ps cross_lookahead(const FabricParams& p) noexcept {
    return p.link_latency + p.switch_latency;
  }

  /// Next-free time of `host`'s uplink serializer. Every packet a host
  /// sends — cross-shard or not — must first serialize through this link,
  /// and SerialResource reservations are monotone, so in parallel runs the
  /// cluster's emission-bound hook (myrinet/parallel_cluster.cpp) reads it
  /// as a dynamic lower bound on future cross-shard traffic: while a host
  /// streams, its uplink is reserved microseconds ahead, which is what lets
  /// peer shards batch far past the static one-hop lookahead.
  sim::Ps uplink_free(int host) const noexcept {
    return links_[topo_.uplink(host)]->ser.next_free();
  }

  /// Make this fabric one shard's replica of the cluster fabric.
  /// `shard_of_node` maps node id -> owning shard (must outlive the
  /// fabric); packets to non-local destinations go out through `port`, and
  /// wire_seq values are namespaced by shard so they stay cluster-unique.
  /// `parked_hint` pre-sizes the remote-arrival parking lot: the cluster
  /// passes its per-shard drain peak so a deep cross-ring batch never grows
  /// the vector mid-measurement.
  void set_parallel(CrossShardPort* port, const std::int32_t* shard_of_node,
                    int my_shard, std::size_t parked_hint = 256);

  /// Entry point for a packet emitted by a peer shard's replica: schedules
  /// its delivery (downlink reservation, destination SRAM back-pressure,
  /// fault hooks) at head_arrival with the deterministic cross-shard key.
  void accept_remote(WirePacket pkt, sim::Ps head_arrival,
                     std::uint64_t cross_key);

 private:
  struct Link {
    explicit Link(sim::Engine& eng, sim::Ps lat) : ser(eng), latency(lat) {}
    sim::SerialResource ser;
    sim::Ps latency;
  };
  struct Endpoint {
    sim::Channel<WirePacket>* wire_in = nullptr;
    sim::Semaphore* slack = nullptr;
  };

  sim::Task<void> deliver(WirePacket pkt, sim::Ps at);
  sim::Task<void> deliver_body(WirePacket pkt);
  sim::Task<void> deliver_remote(WirePacket pkt, sim::Ps head);
  sim::Task<void> deliver_duplicate(WirePacket pkt);
  void launch_remote(std::uint32_t idx);
  void maybe_corrupt(WirePacket& pkt);
  sim::Ps ser_time(const WirePacket& pkt) const noexcept {
    std::size_t b = wire_bytes(pkt.payload.size());
    // Remote-write packets carry the rkey/offset header on the real wire.
    if (pkt.kind == PacketKind::kRdmaWrite) b += p_.rdma_hdr_bytes;
    return static_cast<sim::Ps>(p_.link_ps_per_byte *
                                static_cast<double>(b));
  }

  sim::Engine& eng_;
  FabricParams p_;
  int n_hosts_;
  Topo topo_;
  std::vector<std::unique_ptr<Link>> links_;  // indexed by Topo link id
  std::vector<Endpoint> endpoints_;
  BufferPool pool_{p_.pool_retain_bytes_per_class};
  FaultInjector* fault_ = nullptr;
  trace::Tracer tracer_{eng_};
  Stats stats_;
  std::uint64_t next_seq_ = 0;
  sim::Rng rng_{0x9E3779B97F4A7C15ull};

  // Parallel-mode state (null/unused in serial runs).
  struct Parked {
    WirePacket pkt;
    sim::Ps head = 0;
  };
  CrossShardPort* port_ = nullptr;
  const std::int32_t* shard_of_node_ = nullptr;
  int my_shard_ = 0;
  std::vector<Parked> parked_;  // remote arrivals awaiting their event
  std::vector<std::uint32_t> free_parked_;
};

}  // namespace fmx::net
