// LANai-style network interface. Two "control programs" (coroutines) run on
// the simulated NIC processor: the send side drains a descriptor queue,
// optionally DMA-fetching payloads from host memory across the I/O bus, and
// injects packets into the fabric; the receive side drains the wire buffer,
// verifies CRC, and DMAs packets into the host receive ring.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <unordered_map>
#include <vector>

#include "myrinet/coll.hpp"
#include "myrinet/fabric.hpp"
#include "myrinet/fault_hooks.hpp"
#include "myrinet/iobus.hpp"
#include "myrinet/packet.hpp"
#include "myrinet/params.hpp"
#include "sim/channel.hpp"
#include "sim/engine.hpp"
#include "sim/ring.hpp"
#include "sim/sync.hpp"

namespace fmx::net {

/// A send request from the messaging layer. User-declared constructors per
/// the coroutine-parameter rule in sim/task.hpp.
struct SendDescriptor {
  SendDescriptor() = default;
  SendDescriptor(int dst_, BufferRef payload_, bool fetch_dma_,
                 std::function<void()> on_fetched_ = {})
      : dst(dst_),
        payload(std::move(payload_)),
        fetch_dma(fetch_dma_),
        on_fetched(std::move(on_fetched_)) {}
  // Compatibility shim for Bytes producers (tests/examples).
  SendDescriptor(int dst_, Bytes payload_, bool fetch_dma_,
                 std::function<void()> on_fetched_ = {})
      : SendDescriptor(dst_, BufferRef::copy_of(ByteSpan{payload_}),
                       fetch_dma_, std::move(on_fetched_)) {}

  int dst = -1;
  BufferRef payload;
  /// True: payload lives in host memory, the NIC DMA-fetches it across the
  /// bus (FM 2.x style). False: the bytes are already in NIC SRAM — either
  /// the host pushed them with programmed I/O and paid for the bus itself
  /// (FM 1.x style), or the NIC control program built them locally
  /// (collective combine/fan-out forwarding).
  bool fetch_dma = false;
  /// Invoked once the payload has left host memory (pinned buffer reusable).
  std::function<void()> on_fetched;
  /// Tracing metadata (trace::Tracer::msg_id); copied onto the WirePacket.
  std::uint64_t trace_id = 0;
  /// Remote-write addressing, threaded onto the WirePacket (see packet.hpp).
  PacketKind kind = PacketKind::kData;
  std::uint32_t rkey = 0;
  std::uint32_t rdma_offset = 0;
  /// ECMP flow label, threaded onto the WirePacket (see packet.hpp).
  std::uint32_t flow = 0;
};

class Nic {
 public:
  Nic(sim::Engine& eng, int id, const NicParams& p, IoBus& bus,
      Fabric& fabric)
      : eng_(eng),
        id_(id),
        p_(p),
        bus_(bus),
        fabric_(fabric),
        tx_queue_(eng, p.tx_queue_slots),
        tx_sram_(eng, p.sram_tx_slots),
        wire_in_(eng, sim::Channel<WirePacket>::kUnbounded),
        rx_checked_(eng, sim::Channel<RxPacket>::kUnbounded),
        rx_slack_(eng, static_cast<long>(p.sram_rx_slots)),
        host_ring_(eng, p.host_ring_slots),
        window_cv_(eng),
        ack_cv_(eng),
        rtx_cv_(eng),
        coll_in_(eng, sim::Channel<RxPacket>::kUnbounded),
        coll_cv_(eng) {
    fabric_.attach(id, &wire_in_, &rx_slack_);
    // Reach each bounded queue's high-water mark now: these are credit- or
    // slot-limited, so a deep streaming burst (e.g. one pair holding every
    // host-ring credit) can legally fill them mid-run, and the data path
    // must stay off the allocator when it does.
    tx_queue_.reserve(p.tx_queue_slots);
    tx_sram_.reserve(p.sram_tx_slots);
    host_ring_.reserve(p.host_ring_slots);
    coll_in_.reserve(p.sram_rx_slots);
    floor_gap_ = p_.per_packet_tx;
    if (p_.reliable_link) {
      tx_peers_.resize(fabric_.n_hosts());
      rx_peers_.resize(fabric_.n_hosts());
      floor_gap_ = std::min(
          {floor_gap_, p_.ack_delay, p_.retransmit_timeout / 2});
    }
  }
  Nic(const Nic&) = delete;
  Nic& operator=(const Nic&) = delete;

  /// Spawn the control programs. Call once after construction. Each
  /// direction is a two-stage pipeline (DMA engine overlapped with the wire
  /// side), as on the real LANai.
  void start() {
    eng_.spawn_daemon(tx_fetch_program());
    eng_.spawn_daemon(tx_inject_program());
    eng_.spawn_daemon(rx_wire_program());
    eng_.spawn_daemon(rx_dma_program());
    // coll_program is spawned lazily by the first coll_create: clusters
    // that never form a group run a bit-identical event schedule to the
    // pre-collective NIC (the determinism digests depend on this).
    if (p_.reliable_link) {
      eng_.spawn_daemon(ack_program());
      eng_.spawn_daemon(retransmit_program());
    }
  }

  int id() const noexcept { return id_; }
  const NicParams& params() const noexcept { return p_; }

  /// Enqueue a send; suspends if the descriptor queue is full.
  sim::Task<void> enqueue(SendDescriptor d) {
    co_await tx_queue_.push(std::move(d));
  }
  bool try_enqueue(SendDescriptor d) {
    return tx_queue_.try_push(std::move(d));
  }
  bool tx_queue_full() const noexcept { return tx_queue_.full(); }

  /// Host receive region: the messaging layer's FM_extract pops from here.
  sim::Channel<RxPacket>& host_ring() noexcept { return host_ring_; }

  /// Register a remote-write target: incoming kRdmaWrite packets carrying
  /// the returned rkey are placed by the NIC's DMA engine directly into
  /// `dst` at their rdma_offset — the host CPU never copies the bytes.
  /// When every byte of `dst` has been placed (duplicates are idempotent:
  /// chunks are mtu-granular and each lands at most once), `on_complete`
  /// runs on the NIC and the registration is retired. The caller must keep
  /// `dst` valid until then.
  std::uint32_t post_rdma_target(MutByteSpan dst,
                                 std::function<void()> on_complete);

  // --- NIC-offloaded collectives (myrinet/coll.hpp) -----------------------
  /// One host-submitted collective operation. Program order per group is
  /// the epoch order; every member must submit the same op sequence.
  struct CollSubmit {
    CollSubmit() = default;
    CollOp op = CollOp::kBarrier;
    /// Local operand: reduce/allreduce contribution, or the broadcast
    /// payload at the root. Empty for barrier/join and non-root bcast.
    BufferRef contrib;
    /// Where delivered values land (reduce root, allreduce everywhere,
    /// bcast non-root). Must stay valid until on_complete runs.
    MutByteSpan result;
    /// Runs on the NIC at completion — the single host interruption of the
    /// whole operation. The NIC also pokes the host ring so pollers wake.
    std::function<void()> on_complete;
  };

  /// Install a collective group: derive this node's tree slice from the
  /// fabric topology and preallocate the per-group state (contribution
  /// queues, partial-reduce accumulator) so steady-state operations stay
  /// off the allocator. Packets arriving for a group not yet installed are
  /// parked and replayed at installation, so members may install in any
  /// order relative to wire traffic.
  void coll_create(const CollGroupSpec& spec);
  bool coll_has_group(std::uint32_t id) const noexcept {
    return coll_groups_.find(id) != coll_groups_.end();
  }
  /// This node's tree slice (test/debug inspection).
  const CollTree& coll_tree_of(std::uint32_t id) const {
    return coll_groups_.at(id).tree;
  }
  /// Submit an operation on an installed group.
  void coll_submit(std::uint32_t group, CollSubmit s);
  /// Outstanding collective work on this NIC: queued host ops plus parked
  /// and buffered wire contributions (quiescence / invariant checks).
  std::size_t coll_pending() const noexcept {
    std::size_t n = coll_orphans_.size() + coll_in_.size();
    for (const auto& [id, g] : coll_groups_) {
      n += g.ops.size() + g.down_q.size();
      for (const auto& q : g.child_q) n += q.size();
    }
    return n;
  }

  struct Stats {
    std::uint64_t tx_packets = 0;
    std::uint64_t rx_packets = 0;
    std::uint64_t crc_dropped = 0;
    // reliable-link extension
    std::uint64_t retransmissions = 0;
    std::uint64_t acks_sent = 0;
    std::uint64_t seq_dropped = 0;  // duplicates + out-of-order discards
    // RDMA remote-write path
    std::uint64_t rdma_rx_chunks = 0;   // chunks placed into user memory
    std::uint64_t rdma_rx_bytes = 0;
    std::uint64_t rdma_completions = 0; // targets fully written
    std::uint64_t rdma_stale = 0;       // chunk for unknown/retired rkey
    // NIC-offloaded collectives
    std::uint64_t coll_rx_packets = 0;  // kColl packets consumed on the NIC
    std::uint64_t coll_combines = 0;    // child partials folded
    std::uint64_t coll_forwards = 0;    // combine/fanout packets emitted
    std::uint64_t coll_completions = 0; // host interruptions (one per op)
    std::uint64_t coll_orphaned = 0;    // arrivals parked before coll_create
    std::uint64_t coll_stale = 0;       // malformed / foreign-edge drops
  };
  const Stats& stats() const noexcept { return stats_; }
  /// Unacked packets currently retained (reliable-link mode).
  std::size_t unacked() const noexcept {
    std::size_t n = 0;
    for (const auto& p : tx_peers_) n += p.retained.size();
    return n;
  }

  /// Arm (or disarm) per-NIC fault pacing; shares the cluster's injector.
  void set_fault(FaultInjector* f) noexcept { fault_ = f; }

  /// Lower bound on when this NIC can next invoke Fabric::transmit, given
  /// that no local event runs before `e` (the shard's next-event time).
  /// Every *fresh* injection is separated from the event that triggers it
  /// by a control-program delay of at least floor_gap_ (per-packet tx time,
  /// ack coalescing window, or timeout sweep), so the floor is e +
  /// floor_gap_ except in three observable mid-pipeline states: a delay
  /// already armed (wire hit at its wake), a sender blocked on the
  /// retransmit window (an arriving ack releases it within the same
  /// event), or an ack/retransmit burst mid-loop (back-to-back transmits
  /// at uplink-drain wakes). The parallel scheduler combines this with the
  /// uplink next-free time, which covers the burst states' actual heads —
  /// see ParallelCluster::emission_bound.
  sim::Ps wire_floor(sim::Ps e) const noexcept {
    constexpr sim::Ps kNever = std::numeric_limits<sim::Ps>::max();
    if (window_blocked_ > 0 || emit_loops_ > 0) return e;
    sim::Ps f = e > kNever - floor_gap_ ? kNever : e + floor_gap_;
    return std::min({f, inject_armed_, ack_armed_, retx_armed_});
  }

  // --- Quiescence accessors (invariant checker) ---------------------------
  /// Inbound SRAM slack tokens currently home. Equals sram_rx_slots when no
  /// packet is in flight toward, buffered in, or staged inside this NIC.
  std::size_t sram_rx_free() const noexcept {
    return static_cast<std::size_t>(rx_slack_.available());
  }
  /// Send-side work not yet on the wire (descriptor queue + staged SRAM).
  std::size_t tx_backlog() const noexcept {
    return tx_queue_.size() + tx_sram_.size();
  }
  /// Receive-side packets checked but not yet DMAed to the host ring.
  std::size_t rx_staged() const noexcept { return rx_checked_.size(); }
  std::size_t host_ring_depth() const noexcept { return host_ring_.size(); }

 private:
  /// A posted remote-write landing zone. Chunks are mtu_payload-granular
  /// (offset = chunk_index * mtu), so a bitmap makes duplicate placements
  /// (retransmission + ack loss) idempotent.
  struct RdmaTarget {
    MutByteSpan dst;
    std::vector<bool> chunk_seen;
    std::size_t received = 0;  // distinct bytes placed so far
    std::function<void()> on_complete;
  };

  struct PeerTx {
    std::uint32_t next_seq = 0;
    std::uint32_t base = 0;            // oldest unacked
    std::deque<WirePacket> retained;   // [base, next_seq)
    sim::Ps last_progress = 0;
  };
  struct PeerRx {
    std::uint32_t expected = 0;
    bool ack_due = false;
  };

  /// Per-group collective state, NIC-resident. Contribution arrivals queue
  /// FIFO per tree edge: the link layer delivers each (src, dst) stream
  /// in order and exactly once, so the head of every child queue always
  /// belongs to the oldest unfinished epoch — head-presence across the
  /// child queues *is* the arrival bitmap, with later epochs parked behind
  /// it. All queues and the accumulator are sized at coll_create.
  struct CollGroup {
    CollGroup() = default;
    CollGroup(const CollGroup&) = delete;
    CollGroup& operator=(const CollGroup&) = delete;
    CollGroup(CollGroup&&) = default;
    CollGroup& operator=(CollGroup&&) = default;
    std::uint32_t id = 0;
    CollTree tree;
    std::size_t max_bytes = 0;
    std::uint32_t epoch = 0;  ///< ops completed; stamped on wire packets
    sim::RingQueue<CollSubmit> ops;               // host program order
    std::vector<sim::RingQueue<BufferRef>> child_q;  // up-sweep arrivals
    sim::RingQueue<BufferRef> down_q;             // down-sweep arrivals
    std::vector<std::byte> accum;                 // partial-reduce values
    // head-op progress
    bool fetched = false;   // local operand DMAed across the bus
    bool combined = false;  // up-sweep folded and (non-root) sent
    bool queued = false;    // on coll_dirty_
  };

  sim::Task<void> tx_fetch_program();
  sim::Task<void> tx_inject_program();
  sim::Task<void> rx_wire_program();
  sim::Task<void> rx_dma_program();
  sim::Task<void> ack_program();
  sim::Task<void> retransmit_program();
  sim::Task<void> coll_program();
  sim::Task<void> coll_advance(CollGroup& g);
  sim::Task<void> coll_emit(CollGroup& g, BufferRef payload, int dst);
  sim::Task<void> coll_complete(CollGroup& g, ByteSpan values);
  void coll_route(RxPacket pkt);
  void coll_mark_dirty(CollGroup& g);
  BufferRef coll_pack(const CollGroup& g, CollClass cls, CollOp op,
                      ByteSpan values);
  void process_ack(int peer, std::uint32_t ack);
  void place_rdma(RxPacket& pkt);

  sim::Engine& eng_;
  int id_;
  NicParams p_;
  IoBus& bus_;
  Fabric& fabric_;
  sim::Channel<SendDescriptor> tx_queue_;
  sim::Channel<SendDescriptor> tx_sram_;  // fetched, awaiting injection
  sim::Channel<WirePacket> wire_in_;      // bounded by rx_slack_ tokens
  sim::Channel<RxPacket> rx_checked_;     // CRC-checked, awaiting host DMA
  sim::Semaphore rx_slack_;
  sim::Channel<RxPacket> host_ring_;
  // reliable-link extension state (sized n_hosts when enabled)
  std::vector<PeerTx> tx_peers_;
  std::vector<PeerRx> rx_peers_;
  sim::CondVar window_cv_;   // tx blocked on the retransmit window
  sim::CondVar ack_cv_;      // acks pending coalescing
  sim::CondVar rtx_cv_;      // retained packets exist
  FaultInjector* fault_ = nullptr;
  Stats stats_;
  // RDMA remote-write targets, keyed by rkey. Deterministic: the counter
  // advances in posting order, which is simulation order.
  std::unordered_map<std::uint32_t, RdmaTarget> rdma_targets_;
  std::uint32_t next_rkey_ = 1;
  // NIC-offloaded collective state. Iteration never touches the map in a
  // nondeterministic order on the data path (groups advance via the FIFO
  // dirty ring); the map is only scanned by quiescence accessors.
  std::unordered_map<std::uint32_t, CollGroup> coll_groups_;
  sim::Channel<RxPacket> coll_in_;   // diverted kColl arrivals
  sim::CondVar coll_cv_;             // submissions / installs / arrivals
  sim::RingQueue<std::uint32_t> coll_dirty_;  // groups with pending work
  std::vector<RxPacket> coll_orphans_;  // arrivals before coll_create
  bool coll_running_ = false;  // coll_program spawned (first coll_create)
  // wire_floor state, written only by this NIC's control programs (same
  // engine, hence same worker thread as the emission-bound hook).
  static constexpr sim::Ps kNeverArmed = std::numeric_limits<sim::Ps>::max();
  sim::Ps floor_gap_ = 0;             // min delay before any fresh transmit
  sim::Ps inject_armed_ = kNeverArmed;  // tx inject mid-delay: wake time
  sim::Ps ack_armed_ = kNeverArmed;     // ack program mid-coalesce-delay
  sim::Ps retx_armed_ = kNeverArmed;    // retransmit mid-sweep-delay
  int window_blocked_ = 0;  // senders blocked on the retransmit window
  int emit_loops_ = 0;      // ack/retransmit bursts currently mid-loop
};

}  // namespace fmx::net
