// Wire-level packet. The payload is the messaging layer's packet (header +
// data) carried as real bytes; the fabric really computes and checks CRC-32
// so injected bit errors are genuinely detected, not flagged.
//
// The payload travels as a refcounted BufferRef slice: switch hops, the
// NIC's go-back-N retention window and fault-injected duplicates all share
// one underlying block. The CRC is sealed into the block's memo at make()
// time, so downstream crc_ok() checks are a 32-bit compare unless someone
// mutated the bytes (copy-on-write invalidates the memo on exactly the
// reference that was written through).
#pragma once

#include <cstdint>
#include <utility>

#include "common/buffer.hpp"
#include "common/buffer_ref.hpp"
#include "common/crc32.hpp"
#include "sim/time.hpp"

namespace fmx::net {

/// What the destination NIC's control program does with the packet.
///  - kData: DMA into the host receive ring; the messaging layer extracts it.
///  - kRdmaWrite: remote-memory write. The payload carries no FM header; the
///    NIC places the bytes directly into the registered buffer identified by
///    rkey at rdma_offset and the host never touches them (true zero-copy).
///  - kColl: NIC-offloaded collective step (myrinet/coll.hpp). The payload
///    opens with a CollHeader followed by the partial values; the receiving
///    NIC combines/forwards it inside its own control program and the host
///    is never interrupted on interior tree steps.
enum class PacketKind : std::uint8_t {
  kData = 0,
  kRdmaWrite = 1,
  kColl = 2,
};

// Note: these types travel by value through coroutines, so they carry
// user-declared constructors (see the toolchain note in sim/task.hpp).
struct WirePacket {
  WirePacket() = default;

  int src = -1;
  int dst = -1;
  std::uint64_t wire_seq = 0;  ///< per-fabric sequence (debug/tracing)
  BufferRef payload;
  std::uint32_t crc = 0;

  // RDMA remote-write addressing (kind == kRdmaWrite only). On the real
  // wire these ride a small extra header (FabricParams::rdma_hdr_bytes,
  // charged in serialization time); in the simulator they travel out of
  // band like src/dst so eager packets are byte-identical to before.
  PacketKind kind = PacketKind::kData;
  std::uint32_t rkey = 0;         ///< destination registration handle
  std::uint32_t rdma_offset = 0;  ///< byte offset into the registered buffer

  /// ECMP flow label: multipath topologies hash (src, dst, flow) to pick
  /// among equal-cost paths (myrinet/topo.hpp). Flow 0 — the default every
  /// messaging layer uses — gives each (src, dst) pair one consistent path,
  /// preserving FM's in-order delivery assumption while still spreading
  /// distinct pairs across the aggregation/core layers; layers that
  /// tolerate reordering may vary it per message.
  std::uint32_t flow = 0;

  // Link-level reliability (go-back-N extension; NicParams::reliable_link).
  std::uint32_t link_seq = 0;   ///< per (src,dst) sequence number
  std::uint32_t ack = 0;        ///< cumulative "next expected" for dst->src
  bool has_ack = false;
  bool ack_only = false;        ///< pure control packet, no data

  /// Tracing metadata: the cross-layer message id this packet belongs to
  /// (trace::Tracer::msg_id). Not wire bytes — carried out of band like
  /// src/dst, so it never affects serialization time or CRC.
  std::uint64_t trace_id = 0;

  static WirePacket make(int src, int dst, BufferRef payload) {
    WirePacket p;
    p.src = src;
    p.dst = dst;
    p.payload = std::move(payload);
    p.crc = p.payload.crc();  // seals the block's memo
    return p;
  }

  // Compatibility shim for call sites still assembling a Bytes payload
  // (tests, examples): wraps it in a free-standing block.
  static WirePacket make(int src, int dst, Bytes payload) {
    return make(src, dst, BufferRef::copy_of(ByteSpan{payload}));
  }

  /// Remote-write packet: `payload` is typically a borrowed subslice of the
  /// sender's pinned user buffer.
  static WirePacket make_rdma(int src, int dst, BufferRef payload,
                              std::uint32_t rkey, std::uint32_t offset) {
    WirePacket p = make(src, dst, std::move(payload));
    p.kind = PacketKind::kRdmaWrite;
    p.rkey = rkey;
    p.rdma_offset = offset;
    return p;
  }

  bool crc_ok() const { return payload.crc() == crc; }
};

/// A packet as it appears in the host receive region after NIC DMA.
struct RxPacket {
  RxPacket() = default;
  RxPacket(int src_, BufferRef payload_, sim::Ps arrived_)
      : src(src_), payload(std::move(payload_)), arrived(arrived_) {}

  int src = -1;
  BufferRef payload;
  sim::Ps arrived = 0;  ///< time the packet landed in host memory
  std::uint64_t trace_id = 0;  ///< tracing metadata, threaded from the wire
  // RDMA addressing, threaded from the wire packet; kRdmaWrite packets are
  // consumed inside the NIC (placed into the registered buffer) and never
  // reach the host ring, but they ride the same rx pipeline stages.
  PacketKind kind = PacketKind::kData;
  std::uint32_t rkey = 0;
  std::uint32_t rdma_offset = 0;
  /// Piggybacked flow-control credits already harvested from the header.
  /// Replaces the old strip-by-rewrite (which would force a COW clone on
  /// every parked packet sharing its block with the sender's retention).
  bool credits_applied = false;
};

}  // namespace fmx::net
