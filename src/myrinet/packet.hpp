// Wire-level packet. The payload is the messaging layer's packet (header +
// data) carried as real bytes; the fabric really computes and checks CRC-32
// so injected bit errors are genuinely detected, not flagged.
#pragma once

#include <cstdint>
#include <utility>

#include "common/buffer.hpp"
#include "common/crc32.hpp"
#include "sim/time.hpp"

namespace fmx::net {

// Note: these types travel by value through coroutines, so they carry
// user-declared constructors (see the toolchain note in sim/task.hpp).
struct WirePacket {
  WirePacket() = default;

  int src = -1;
  int dst = -1;
  std::uint64_t wire_seq = 0;  ///< per-fabric sequence (debug/tracing)
  Bytes payload;
  std::uint32_t crc = 0;

  // Link-level reliability (go-back-N extension; NicParams::reliable_link).
  std::uint32_t link_seq = 0;   ///< per (src,dst) sequence number
  std::uint32_t ack = 0;        ///< cumulative "next expected" for dst->src
  bool has_ack = false;
  bool ack_only = false;        ///< pure control packet, no data

  /// Tracing metadata: the cross-layer message id this packet belongs to
  /// (trace::Tracer::msg_id). Not wire bytes — carried out of band like
  /// src/dst, so it never affects serialization time or CRC.
  std::uint64_t trace_id = 0;

  static WirePacket make(int src, int dst, Bytes payload) {
    WirePacket p;
    p.src = src;
    p.dst = dst;
    p.payload = std::move(payload);
    p.crc = crc32(p.payload);
    return p;
  }

  bool crc_ok() const { return crc32(payload) == crc; }
};

/// A packet as it appears in the host receive region after NIC DMA.
struct RxPacket {
  RxPacket() = default;
  RxPacket(int src_, Bytes payload_, sim::Ps arrived_)
      : src(src_), payload(std::move(payload_)), arrived(arrived_) {}

  int src = -1;
  Bytes payload;
  sim::Ps arrived = 0;  ///< time the packet landed in host memory
  std::uint64_t trace_id = 0;  ///< tracing metadata, threaded from the wire
};

}  // namespace fmx::net
