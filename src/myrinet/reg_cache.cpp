#include "myrinet/reg_cache.hpp"

#include <cassert>
#include <limits>

namespace fmx::net {

namespace {
std::uintptr_t page_floor(std::uintptr_t a, std::size_t page) {
  return a / page * page;
}
std::uintptr_t page_ceil(std::uintptr_t a, std::size_t page) {
  return (a + page - 1) / page * page;
}
}  // namespace

std::uint64_t RegCache::resolve(std::uint64_t handle) const {
  // Follow merge aliases to the surviving region id. Chains are short (one
  // per absorption), so no path compression is needed.
  auto it = alias_.find(handle);
  while (it != alias_.end()) {
    handle = it->second;
    it = alias_.find(handle);
  }
  return handle;
}

RegCache::Acquire RegCache::acquire(const void* addr, std::size_t len) {
  Acquire out;
  out.cost = p_.lookup;
  const auto a = reinterpret_cast<std::uintptr_t>(addr);
  std::uintptr_t begin = page_floor(a, p_.page_bytes);
  std::uintptr_t end = page_ceil(a + (len == 0 ? 1 : len), p_.page_bytes);
  ++tick_;

  // Covering hit: the first region whose begin is <= ours, if it reaches
  // past our end. (Coalescing keeps cached regions disjoint, so only that
  // one candidate can cover us.)
  auto it = regions_.upper_bound(begin);
  if (it != regions_.begin()) {
    auto prev = std::prev(it);
    if (prev->second.end >= end) {
      ++stats_.hits;
      ++prev->second.uses;
      ++active_uses_;
      prev->second.lru = tick_;
      out.hit = true;
      out.handle = prev->second.id;
      return out;
    }
  }

  // Miss: pin the uncovered pages, absorbing every overlapping or abutting
  // region (their pages are already pinned and must not be re-pinned, and
  // their handles must survive the merge).
  ++stats_.misses;
  out.cost += p_.pin_base;
  std::uintptr_t covered = 0;
  Region merged;
  merged.id = next_id_++;
  merged.uses = 1;
  merged.lru = tick_;
  ++active_uses_;

  auto first = regions_.upper_bound(begin);
  if (first != regions_.begin() && std::prev(first)->second.end >= begin) {
    --first;  // predecessor overlaps or abuts [begin, end)
  }
  auto last = first;
  while (last != regions_.end() && last->first <= end) {
    Region& r = last->second;
    covered += r.end - last->first;
    if (last->first < begin) begin = last->first;
    if (r.end > end) end = r.end;
    merged.uses += r.uses;
    alias_[r.id] = merged.id;
    ++stats_.coalesces;
    --stats_.regions;
    stats_.pinned_bytes -= r.end - last->first;
    ++last;
  }
  regions_.erase(first, last);
  // Coalesces counts absorbed regions; a plain miss into empty space
  // absorbs none.
  // (stats_.coalesces was incremented per absorbed region above.)

  assert(end - begin >= covered);
  const std::uintptr_t fresh = (end - begin) - covered;
  out.cost += static_cast<sim::Ps>(fresh / p_.page_bytes) * p_.pin_per_page;

  merged.end = end;
  regions_.emplace(begin, merged);
  by_id_[merged.id] = begin;
  ++stats_.regions;
  stats_.pinned_bytes += end - begin;
  out.handle = merged.id;

  maybe_evict(&out.cost);
  return out;
}

void RegCache::release(std::uint64_t handle) {
  const std::uint64_t id = resolve(handle);
  auto bit = by_id_.find(id);
  assert(bit != by_id_.end() && "release of unknown registration");
  if (bit == by_id_.end()) return;
  auto rit = regions_.find(bit->second);
  assert(rit != regions_.end());
  Region& r = rit->second;
  assert(r.uses > 0);
  --r.uses;
  --active_uses_;
  // The entry stays cached (and pinned): the next send from this buffer is
  // a hit. Eviction happens only under capacity pressure in acquire().
}

void RegCache::maybe_evict(sim::Ps* cost) {
  while (stats_.pinned_bytes > p_.capacity_bytes) {
    // LRU among idle regions. Linear scan: a pin-down cache holds a
    // handful of hot buffers, not thousands.
    auto victim = regions_.end();
    std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
    for (auto it = regions_.begin(); it != regions_.end(); ++it) {
      if (it->second.uses != 0) continue;
      if (it->second.lru < oldest) {
        oldest = it->second.lru;
        victim = it;
      }
    }
    if (victim == regions_.end()) return;  // everything in use: over budget
    const std::uintptr_t bytes = victim->second.end - victim->first;
    *cost += static_cast<sim::Ps>(bytes / p_.page_bytes) * p_.unpin_per_page;
    ++stats_.evictions;
    --stats_.regions;
    stats_.pinned_bytes -= bytes;
    by_id_.erase(victim->second.id);
    regions_.erase(victim);
  }
}

}  // namespace fmx::net
