// Fabric topology descriptor: the pure routing geometry of a cluster,
// independent of the simulation engine. A Topo owns the directed-link id
// space and the precomputed compressed route tables the Fabric indexes at
// transmit time — O(switches * radix) table entries instead of a per-call
// scratch path, so route lookup is O(1) per hop, allocation-free, and has
// no valid-until-next-call aliasing (the old Fabric::route() footgun).
//
// Two topologies:
//   * kChain    — the original preset: crossbar switches of hosts_per_switch
//                 ports chained left/right. Single path per pair.
//   * kFatTree  — 3-level k-ary fat-tree/Clos (Leiserson; the standard
//                 datacenter folded-Clos). Radix-k switches, k pods of k/2
//                 edge and k/2 aggregation switches, (k/2)^2 cores. An
//                 oversubscription factor o packs (k/2)*o hosts per edge
//                 switch, thinning the host:uplink ratio to o:1 — the knob
//                 that turns fan-in traffic into real incast pain.
//
// Multipath: a fat-tree pair separated by >1 hop has (k/2) (same pod) or
// (k/2)^2 (cross pod) equal-cost paths. Path choice is a deterministic
// ECMP hash of (src, dst, flow): same flow, same path — packets of one
// flow stay ordered end to end (links are FIFO), while distinct pairs and
// flows spread across the aggregation and core layers.
//
// Directed-link id space (dense, stable):
//   [0, n)                  uplinks        host h -> its first switch
//   [n, 2n)                 downlinks      last switch -> host h
//   [2n, ...)               transit links  (chain: right then left;
//                                           fat-tree: edge->agg, agg->edge,
//                                           agg->core, core->agg)
// Uplinks and transit links cost link_latency + switch_latency (flight plus
// the routing decision at the switch they enter); the final downlink costs
// link_latency only — identical to the original chained-crossbar model.
#pragma once

#include <cstdint>
#include <vector>

#include "myrinet/params.hpp"

namespace fmx::net {

class Topo {
 public:
  /// Builds the route tables for `n_hosts` hosts under the topology
  /// described by `p` (kind, hosts_per_switch / radix, oversubscription).
  /// Fat-trees may be partially populated: any n_hosts up to capacity.
  Topo(const FabricParams& p, int n_hosts);

  TopologyKind kind() const noexcept { return kind_; }
  int n_hosts() const noexcept { return n_hosts_; }
  int n_links() const noexcept { return n_links_; }
  int n_switches() const noexcept { return n_switches_; }

  /// Host capacity of a fat-tree with the given radix/oversubscription:
  /// k pods * (k/2) edges * (k/2)*o hosts. (Chains have no fixed cap.)
  static int fat_tree_capacity(int radix, int oversub) noexcept {
    const int half = radix / 2;
    return radix * half * half * oversub;
  }

  // --- Path queries (all O(1), no shared scratch) -------------------------
  /// Switch traversals between two hosts (0 for src == dst). Equal for
  /// every ECMP path of a pair, and symmetric in (src, dst).
  int hops(int src, int dst) const noexcept;
  /// Links on the (src, dst) path: hops + 1. Undefined for src == dst
  /// (loopback never touches a link).
  int path_len(int src, int dst) const noexcept {
    return hops(src, dst) + 1;
  }
  /// The i-th directed link (0 <= i < path_len) on the ECMP path the flow
  /// hash selects for (src, dst, flow). Pure table/index arithmetic.
  int link_at(int src, int dst, std::uint32_t flow, int i) const noexcept;
  /// Number of equal-cost paths between the pair (1 for chains).
  int ecmp_paths(int src, int dst) const noexcept;
  /// Longest path_len any pair can have (sizing helper for callers).
  int max_path_len() const noexcept { return max_path_len_; }

  /// Whole path as a fresh vector — test/debug inspection only; the data
  /// path uses link_at directly and never materializes a path.
  std::vector<int> path(int src, int dst, std::uint32_t flow) const;

  /// First-level switch a host hangs off (chain crossbar index or fat-tree
  /// edge-switch index). Hosts sharing it are one wire hop apart — the
  /// clustering the NIC collective tree builder (myrinet/coll.hpp) exploits.
  int first_switch(int host) const noexcept {
    return kind_ == TopologyKind::kChain ? host / hosts_per_switch_
                                         : host / hosts_per_edge_;
  }

  // --- Link metadata ------------------------------------------------------
  int uplink(int host) const noexcept { return host; }
  int downlink(int host) const noexcept { return n_hosts_ + host; }
  bool is_uplink(int link) const noexcept { return link < n_hosts_; }
  bool is_downlink(int link) const noexcept {
    return link >= n_hosts_ && link < 2 * n_hosts_;
  }
  /// Level of the element a link leaves / enters: hosts are level 0,
  /// edge (or chain crossbar) switches level 1, aggregation 2, core 3.
  /// An up*/down* (deadlock-free) path never goes up after coming down;
  /// the topology invariant tests check exactly this.
  int level_from(int link) const noexcept;
  int level_to(int link) const noexcept;

  /// Deterministic ECMP hash (splitmix64 over the packed triple). Exposed
  /// so tests can predict path selection.
  static std::uint64_t ecmp_hash(int src, int dst,
                                 std::uint32_t flow) noexcept;

 private:
  int pod_of_edge(int e) const noexcept { return e / half_; }

  TopologyKind kind_;
  int n_hosts_ = 0;
  int n_switches_ = 0;
  int n_links_ = 0;
  int max_path_len_ = 0;

  // Chain geometry.
  int hosts_per_switch_ = 1;
  int base_right_ = 0;  // right_[s] = base_right_ + s,  s in [0, nsw-1)
  int base_left_ = 0;   // left_[s]  = base_left_  + s   (switch s+1 -> s)

  // Fat-tree geometry.
  int half_ = 0;            // k/2
  int pods_ = 0;            // k
  int hosts_per_edge_ = 0;  // half * oversubscription
  int n_edges_ = 0;         // pods * half
  int n_aggs_ = 0;          // pods * half
  int n_cores_ = 0;         // half * half
  // Compressed route tables: directed link ids indexed by (switch, port).
  // ea_[e*half + j]        edge e        -> agg j of its pod
  // ae_[a*half + i]        agg  a        -> i-th edge of its pod
  // ac_[a*half + c2]       agg  a (=j)   -> core (j, c2)
  // ca_[c*pods + p]        core c        -> its agg in pod p
  std::vector<std::int32_t> ea_, ae_, ac_, ca_;
  int base_ea_ = 0, base_ae_ = 0, base_ac_ = 0, base_ca_ = 0;
};

}  // namespace fmx::net
