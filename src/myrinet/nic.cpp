#include "myrinet/nic.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <vector>

#include "common/copy_stats.hpp"

namespace fmx::net {

// Send stage 1: DMA engine fetches payloads from host memory into NIC SRAM.
// Bounded tx_sram_ keeps the DMA engine at most a few packets ahead of the
// wire, like the real LANai's limited SRAM.
sim::Task<void> Nic::tx_fetch_program() {
  for (;;) {
    SendDescriptor d = co_await tx_queue_.pop();
    if (d.fetch_dma) {
      fabric_.tracer().record(trace::EventType::kDmaStart, trace::Layer::kNic,
                              id_, d.trace_id, d.payload.size());
      co_await bus_.dma(d.payload.size());
      fabric_.tracer().record(trace::EventType::kDmaEnd, trace::Layer::kNic,
                              id_, d.trace_id, d.payload.size());
    }
    if (d.on_fetched) {
      d.on_fetched();
      d.on_fetched = nullptr;
    }
    co_await tx_sram_.push(std::move(d));
  }
}

// Send stage 2: control program frames the packet and drives the link.
// In reliable-link mode it also stamps go-back-N sequence numbers, retains
// copies for retransmission, and piggybacks cumulative acks.
sim::Task<void> Nic::tx_inject_program() {
  for (;;) {
    SendDescriptor d = co_await tx_sram_.pop();
    // Arm the wire floor across each delay: while suspended here the next
    // transmit can land exactly at the wake, not a full floor_gap_ past the
    // shard's next event (see Nic::wire_floor).
    inject_armed_ = eng_.now() + p_.per_packet_tx;
    co_await eng_.delay(p_.per_packet_tx);
    inject_armed_ = kNeverArmed;
    if (fault_ != nullptr) {
      if (sim::Ps stall = fault_->tx_pacing(id_); stall > 0) {
        inject_armed_ = eng_.now() + stall;
        co_await eng_.delay(stall);
        inject_armed_ = kNeverArmed;
      }
    }
    ++stats_.tx_packets;
    WirePacket pkt = WirePacket::make(id_, d.dst, std::move(d.payload));
    pkt.trace_id = d.trace_id;
    pkt.kind = d.kind;
    pkt.rkey = d.rkey;
    pkt.rdma_offset = d.rdma_offset;
    pkt.flow = d.flow;
    if (p_.reliable_link) {
      PeerTx& pt = tx_peers_[d.dst];
      while (pt.retained.size() >=
             static_cast<std::size_t>(p_.retransmit_window)) {
        // The ack that opens the window releases us within its own event;
        // the floor collapses to e while we sit here.
        ++window_blocked_;
        co_await window_cv_.wait();
        --window_blocked_;
      }
      pkt.link_seq = pt.next_seq++;
      PeerRx& pr = rx_peers_[d.dst];
      if (pr.ack_due) {
        pkt.has_ack = true;
        pkt.ack = pr.expected;
        pr.ack_due = false;
      }
      if (pt.retained.empty()) pt.last_progress = eng_.now();
      // Go-back-N retention is a reference share, not a copy: the retained
      // packet aliases the in-flight block. Fault corruption on the wire
      // goes through copy-on-write, so the retained bytes stay pristine
      // for retransmission.
      pt.retained.push_back(pkt);
      rtx_cv_.notify_all();
    }
    co_await fabric_.transmit(std::move(pkt));
  }
}

void Nic::process_ack(int peer, std::uint32_t ack) {
  PeerTx& pt = tx_peers_[peer];
  bool advanced = false;
  while (pt.base < ack && !pt.retained.empty()) {
    pt.retained.pop_front();  // last reference returns the block to the pool
    ++pt.base;
    advanced = true;
  }
  if (advanced) {
    pt.last_progress = eng_.now();
    window_cv_.notify_all();
  }
}

// Receive stage 1: drain the wire, verify CRC, and (in reliable mode)
// enforce go-back-N sequencing. Anything dropped here frees its SRAM slot
// immediately; the sender's timeout recovers the data.
sim::Task<void> Nic::rx_wire_program() {
  for (;;) {
    WirePacket pkt = co_await wire_in_.pop();
    co_await eng_.delay(p_.per_packet_rx);
    if (fault_ != nullptr) {
      if (sim::Ps stall = fault_->rx_pacing(id_); stall > 0) {
        co_await eng_.delay(stall);
      }
    }
    if (!p_.hardware_crc) {
      co_await eng_.delay(static_cast<sim::Ps>(
          p_.crc_ps_per_byte * static_cast<double>(pkt.payload.size())));
    }
    const bool crc_ok = pkt.crc_ok();
    fabric_.tracer().record(trace::EventType::kCrcCheck, trace::Layer::kNic,
                            id_, pkt.trace_id, crc_ok ? 1 : 0);
    if (!crc_ok) {
      ++stats_.crc_dropped;
      fabric_.tracer().record(trace::EventType::kDrop, trace::Layer::kNic,
                              id_, pkt.trace_id, trace::kDropCrc);
      pkt.payload.reset();  // release the block before the next pop suspends
      rx_slack_.release();
      continue;
    }
    if (p_.reliable_link) {
      if (pkt.has_ack) process_ack(pkt.src, pkt.ack);
      if (pkt.ack_only) {
        pkt.payload.reset();
        rx_slack_.release();
        continue;
      }
      PeerRx& pr = rx_peers_[pkt.src];
      if (pkt.link_seq != pr.expected) {
        // Go-back-N: duplicates and gaps are both discarded; re-ack so the
        // sender learns where we stand.
        ++stats_.seq_dropped;
        fabric_.tracer().record(trace::EventType::kDrop, trace::Layer::kNic,
                                id_, pkt.trace_id, trace::kDropSeq);
        pkt.payload.reset();
        pr.ack_due = true;
        ack_cv_.notify_all();
        rx_slack_.release();
        continue;
      }
      ++pr.expected;
      pr.ack_due = true;
      ack_cv_.notify_all();
    }
    RxPacket rx(pkt.src, std::move(pkt.payload), eng_.now());
    rx.trace_id = pkt.trace_id;
    rx.kind = pkt.kind;
    rx.rkey = pkt.rkey;
    rx.rdma_offset = pkt.rdma_offset;
    co_await rx_checked_.push(std::move(rx));
  }
}

// Receive stage 2: DMA engine moves packets into the host receive ring;
// only then is the SRAM slot (slack token) returned to the fabric. Remote-
// write packets take the RDMA branch: the same bus DMA occupancy, but the
// bytes land directly in the registered user buffer and never enter the
// host ring — the host CPU is not involved at all.
sim::Task<void> Nic::rx_dma_program() {
  for (;;) {
    RxPacket pkt = co_await rx_checked_.pop();
    fabric_.tracer().record(trace::EventType::kDmaStart, trace::Layer::kNic,
                            id_, pkt.trace_id, pkt.payload.size());
    co_await bus_.dma(pkt.payload.size());
    fabric_.tracer().record(trace::EventType::kDmaEnd, trace::Layer::kNic,
                            id_, pkt.trace_id, pkt.payload.size());
    ++stats_.rx_packets;
    pkt.arrived = eng_.now();
    if (pkt.kind == PacketKind::kRdmaWrite) {
      place_rdma(pkt);
      pkt.payload.reset();  // release before the next pop suspends
      rx_slack_.release();
      continue;
    }
    co_await host_ring_.push(std::move(pkt));
    rx_slack_.release();
  }
}

std::uint32_t Nic::post_rdma_target(MutByteSpan dst,
                                    std::function<void()> on_complete) {
  assert(!dst.empty() && "zero-length RDMA target");
  const std::uint32_t rkey = next_rkey_++;
  RdmaTarget& t = rdma_targets_[rkey];
  t.dst = dst;
  t.chunk_seen.assign((dst.size() + p_.mtu_payload - 1) / p_.mtu_payload,
                      false);
  t.on_complete = std::move(on_complete);
  return rkey;
}

// Place one remote-write chunk. Duplicates (go-back-N retransmission races,
// fault-injected dup packets) are detected by the chunk bitmap and ignored;
// chunks for retired rkeys (late duplicates after completion) are dropped.
void Nic::place_rdma(RxPacket& pkt) {
  auto it = rdma_targets_.find(pkt.rkey);
  if (it == rdma_targets_.end()) {
    ++stats_.rdma_stale;
    return;
  }
  RdmaTarget& t = it->second;
  const std::size_t off = pkt.rdma_offset;
  const std::size_t idx = off / p_.mtu_payload;
  if (idx >= t.chunk_seen.size() || off % p_.mtu_payload != 0 ||
      off + pkt.payload.size() > t.dst.size()) {
    ++stats_.rdma_stale;  // malformed/foreign chunk; drop
    return;
  }
  if (t.chunk_seen[idx]) return;  // idempotent duplicate
  t.chunk_seen[idx] = true;
  t.received += pkt.payload.size();
  // The one physical placement of these bytes in the whole simulator:
  // modeled as the NIC's DMA write into pinned user memory (bus occupancy
  // already paid above), counted in the rdma category, never as a host copy.
  std::memcpy(t.dst.data() + off, pkt.payload.data(), pkt.payload.size());
  count_rdma_write(pkt.payload.size());
  ++stats_.rdma_rx_chunks;
  stats_.rdma_rx_bytes += pkt.payload.size();
  fabric_.tracer().record(trace::EventType::kRdmaWrite, trace::Layer::kNic,
                          id_, pkt.trace_id, pkt.payload.size());
  if (t.received == t.dst.size()) {
    ++stats_.rdma_completions;
    fabric_.tracer().record(trace::EventType::kRdmaDone, trace::Layer::kNic,
                            id_, pkt.trace_id, t.dst.size());
    auto done = std::move(t.on_complete);
    rdma_targets_.erase(it);
    if (done) done();
    // Completion is polled, not delivered through the host ring; wake any
    // poller sleeping on ring traffic so it notices the state change.
    host_ring_.poke();
  }
}

// Reliable-link: coalesced ack generation. Sleeps until a receive marks an
// ack due, waits the coalescing window (reverse data traffic may piggyback
// it meanwhile), then emits explicit ack packets for what is still owed.
sim::Task<void> Nic::ack_program() {
  for (;;) {
    bool any_due = false;
    for (auto& pr : rx_peers_) any_due |= pr.ack_due;
    if (!any_due) {
      co_await ack_cv_.wait();
      continue;
    }
    ack_armed_ = eng_.now() + p_.ack_delay;
    co_await eng_.delay(p_.ack_delay);
    ack_armed_ = kNeverArmed;
    // Back-to-back ack transmits wake at uplink drains, with no interposed
    // delay; the floor drops to e for the burst (the uplink next-free term
    // still covers the true heads).
    ++emit_loops_;
    for (int peer = 0; peer < static_cast<int>(rx_peers_.size()); ++peer) {
      PeerRx& pr = rx_peers_[peer];
      if (!pr.ack_due) continue;
      pr.ack_due = false;
      WirePacket ack = WirePacket::make(id_, peer, BufferRef{});
      ack.has_ack = true;
      ack.ack = pr.expected;
      ack.ack_only = true;
      ++stats_.acks_sent;
      co_await fabric_.transmit(std::move(ack));
    }
    --emit_loops_;
  }
}

// Reliable-link: timeout sweep. Sleeps while nothing is outstanding; while
// packets are retained, checks every timeout/2 whether the oldest has been
// waiting past the timeout and, if so, resends the whole window (go-back-N).
sim::Task<void> Nic::retransmit_program() {
  for (;;) {
    std::size_t outstanding = unacked();
    if (outstanding == 0) {
      co_await rtx_cv_.wait();
      continue;
    }
    retx_armed_ = eng_.now() + p_.retransmit_timeout / 2;
    co_await eng_.delay(p_.retransmit_timeout / 2);
    retx_armed_ = kNeverArmed;
    ++emit_loops_;
    for (int peer = 0; peer < static_cast<int>(tx_peers_.size()); ++peer) {
      PeerTx& pt = tx_peers_[peer];
      if (pt.retained.empty()) continue;
      if (eng_.now() - pt.last_progress < p_.retransmit_timeout) continue;
      pt.last_progress = eng_.now();
      // Snapshot the window: transmits suspend, and an ack arriving
      // meanwhile pops from pt.retained (iterating it live would be a
      // use-after-free). Stale retransmissions are dropped as duplicates.
      std::vector<WirePacket> window(pt.retained.begin(),
                                     pt.retained.end());
      for (const WirePacket& pkt : window) {
        ++stats_.retransmissions;
        fabric_.tracer().record(trace::EventType::kRetransmit,
                                trace::Layer::kNic, id_, pkt.trace_id,
                                pkt.link_seq);
        co_await fabric_.transmit(pkt);
      }
    }
    --emit_loops_;
  }
}

}  // namespace fmx::net
