#include "myrinet/nic.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <vector>

#include "common/copy_stats.hpp"

namespace fmx::net {

// Send stage 1: DMA engine fetches payloads from host memory into NIC SRAM.
// Bounded tx_sram_ keeps the DMA engine at most a few packets ahead of the
// wire, like the real LANai's limited SRAM.
sim::Task<void> Nic::tx_fetch_program() {
  for (;;) {
    SendDescriptor d = co_await tx_queue_.pop();
    if (d.fetch_dma) {
      fabric_.tracer().record(trace::EventType::kDmaStart, trace::Layer::kNic,
                              id_, d.trace_id, d.payload.size());
      co_await bus_.dma(d.payload.size());
      fabric_.tracer().record(trace::EventType::kDmaEnd, trace::Layer::kNic,
                              id_, d.trace_id, d.payload.size());
    }
    if (d.on_fetched) {
      d.on_fetched();
      d.on_fetched = nullptr;
    }
    co_await tx_sram_.push(std::move(d));
  }
}

// Send stage 2: control program frames the packet and drives the link.
// In reliable-link mode it also stamps go-back-N sequence numbers, retains
// copies for retransmission, and piggybacks cumulative acks.
sim::Task<void> Nic::tx_inject_program() {
  for (;;) {
    SendDescriptor d = co_await tx_sram_.pop();
    // Arm the wire floor across each delay: while suspended here the next
    // transmit can land exactly at the wake, not a full floor_gap_ past the
    // shard's next event (see Nic::wire_floor).
    inject_armed_ = eng_.now() + p_.per_packet_tx;
    co_await eng_.delay(p_.per_packet_tx);
    inject_armed_ = kNeverArmed;
    if (fault_ != nullptr) {
      if (sim::Ps stall = fault_->tx_pacing(id_); stall > 0) {
        inject_armed_ = eng_.now() + stall;
        co_await eng_.delay(stall);
        inject_armed_ = kNeverArmed;
      }
    }
    ++stats_.tx_packets;
    WirePacket pkt = WirePacket::make(id_, d.dst, std::move(d.payload));
    pkt.trace_id = d.trace_id;
    pkt.kind = d.kind;
    pkt.rkey = d.rkey;
    pkt.rdma_offset = d.rdma_offset;
    pkt.flow = d.flow;
    if (p_.reliable_link) {
      PeerTx& pt = tx_peers_[d.dst];
      while (pt.retained.size() >=
             static_cast<std::size_t>(p_.retransmit_window)) {
        // The ack that opens the window releases us within its own event;
        // the floor collapses to e while we sit here.
        ++window_blocked_;
        co_await window_cv_.wait();
        --window_blocked_;
      }
      pkt.link_seq = pt.next_seq++;
      PeerRx& pr = rx_peers_[d.dst];
      if (pr.ack_due) {
        pkt.has_ack = true;
        pkt.ack = pr.expected;
        pr.ack_due = false;
      }
      if (pt.retained.empty()) pt.last_progress = eng_.now();
      // Go-back-N retention is a reference share, not a copy: the retained
      // packet aliases the in-flight block. Fault corruption on the wire
      // goes through copy-on-write, so the retained bytes stay pristine
      // for retransmission.
      pt.retained.push_back(pkt);
      rtx_cv_.notify_all();
    }
    co_await fabric_.transmit(std::move(pkt));
  }
}

void Nic::process_ack(int peer, std::uint32_t ack) {
  PeerTx& pt = tx_peers_[peer];
  bool advanced = false;
  while (pt.base < ack && !pt.retained.empty()) {
    pt.retained.pop_front();  // last reference returns the block to the pool
    ++pt.base;
    advanced = true;
  }
  if (advanced) {
    pt.last_progress = eng_.now();
    window_cv_.notify_all();
  }
}

// Receive stage 1: drain the wire, verify CRC, and (in reliable mode)
// enforce go-back-N sequencing. Anything dropped here frees its SRAM slot
// immediately; the sender's timeout recovers the data.
sim::Task<void> Nic::rx_wire_program() {
  for (;;) {
    WirePacket pkt = co_await wire_in_.pop();
    // Collective steps are consumed in SRAM by the control program — no
    // host-DMA descriptor, no receive-ring slot — so they cost coll_op,
    // not the full per_packet_rx. This is most of the NIC-offload win:
    // fan-in arrivals serialize through this program, and a combining
    // node pays the cheap charge once per child.
    co_await eng_.delay(pkt.kind == PacketKind::kColl ? p_.coll_op
                                                      : p_.per_packet_rx);
    if (fault_ != nullptr) {
      if (sim::Ps stall = fault_->rx_pacing(id_); stall > 0) {
        co_await eng_.delay(stall);
      }
    }
    if (!p_.hardware_crc) {
      co_await eng_.delay(static_cast<sim::Ps>(
          p_.crc_ps_per_byte * static_cast<double>(pkt.payload.size())));
    }
    const bool crc_ok = pkt.crc_ok();
    fabric_.tracer().record(trace::EventType::kCrcCheck, trace::Layer::kNic,
                            id_, pkt.trace_id, crc_ok ? 1 : 0);
    if (!crc_ok) {
      ++stats_.crc_dropped;
      fabric_.tracer().record(trace::EventType::kDrop, trace::Layer::kNic,
                              id_, pkt.trace_id, trace::kDropCrc);
      pkt.payload.reset();  // release the block before the next pop suspends
      rx_slack_.release();
      continue;
    }
    if (p_.reliable_link) {
      if (pkt.has_ack) process_ack(pkt.src, pkt.ack);
      if (pkt.ack_only) {
        pkt.payload.reset();
        rx_slack_.release();
        continue;
      }
      PeerRx& pr = rx_peers_[pkt.src];
      if (pkt.link_seq != pr.expected) {
        // Go-back-N: duplicates and gaps are both discarded; re-ack so the
        // sender learns where we stand.
        ++stats_.seq_dropped;
        fabric_.tracer().record(trace::EventType::kDrop, trace::Layer::kNic,
                                id_, pkt.trace_id, trace::kDropSeq);
        pkt.payload.reset();
        pr.ack_due = true;
        ack_cv_.notify_all();
        rx_slack_.release();
        continue;
      }
      ++pr.expected;
      pr.ack_due = true;
      ack_cv_.notify_all();
    }
    RxPacket rx(pkt.src, std::move(pkt.payload), eng_.now());
    rx.trace_id = pkt.trace_id;
    rx.kind = pkt.kind;
    rx.rkey = pkt.rkey;
    rx.rdma_offset = pkt.rdma_offset;
    if (rx.kind == PacketKind::kColl) {
      // Collective steps are consumed inside the NIC: hand the packet to
      // the collective engine and return the SRAM token immediately — the
      // payload moves to control-program scratch, so a slow combine (e.g.
      // one waiting on a sibling subtree) never backpressures the wire.
      co_await coll_in_.push(std::move(rx));
      coll_cv_.notify_all();
      rx_slack_.release();
      continue;
    }
    co_await rx_checked_.push(std::move(rx));
  }
}

// Receive stage 2: DMA engine moves packets into the host receive ring;
// only then is the SRAM slot (slack token) returned to the fabric. Remote-
// write packets take the RDMA branch: the same bus DMA occupancy, but the
// bytes land directly in the registered user buffer and never enter the
// host ring — the host CPU is not involved at all.
sim::Task<void> Nic::rx_dma_program() {
  for (;;) {
    RxPacket pkt = co_await rx_checked_.pop();
    fabric_.tracer().record(trace::EventType::kDmaStart, trace::Layer::kNic,
                            id_, pkt.trace_id, pkt.payload.size());
    co_await bus_.dma(pkt.payload.size());
    fabric_.tracer().record(trace::EventType::kDmaEnd, trace::Layer::kNic,
                            id_, pkt.trace_id, pkt.payload.size());
    ++stats_.rx_packets;
    pkt.arrived = eng_.now();
    if (pkt.kind == PacketKind::kRdmaWrite) {
      place_rdma(pkt);
      pkt.payload.reset();  // release before the next pop suspends
      rx_slack_.release();
      continue;
    }
    co_await host_ring_.push(std::move(pkt));
    rx_slack_.release();
  }
}

std::uint32_t Nic::post_rdma_target(MutByteSpan dst,
                                    std::function<void()> on_complete) {
  assert(!dst.empty() && "zero-length RDMA target");
  const std::uint32_t rkey = next_rkey_++;
  RdmaTarget& t = rdma_targets_[rkey];
  t.dst = dst;
  t.chunk_seen.assign((dst.size() + p_.mtu_payload - 1) / p_.mtu_payload,
                      false);
  t.on_complete = std::move(on_complete);
  return rkey;
}

// Place one remote-write chunk. Duplicates (go-back-N retransmission races,
// fault-injected dup packets) are detected by the chunk bitmap and ignored;
// chunks for retired rkeys (late duplicates after completion) are dropped.
void Nic::place_rdma(RxPacket& pkt) {
  auto it = rdma_targets_.find(pkt.rkey);
  if (it == rdma_targets_.end()) {
    ++stats_.rdma_stale;
    return;
  }
  RdmaTarget& t = it->second;
  const std::size_t off = pkt.rdma_offset;
  const std::size_t idx = off / p_.mtu_payload;
  if (idx >= t.chunk_seen.size() || off % p_.mtu_payload != 0 ||
      off + pkt.payload.size() > t.dst.size()) {
    ++stats_.rdma_stale;  // malformed/foreign chunk; drop
    return;
  }
  if (t.chunk_seen[idx]) return;  // idempotent duplicate
  t.chunk_seen[idx] = true;
  t.received += pkt.payload.size();
  // The one physical placement of these bytes in the whole simulator:
  // modeled as the NIC's DMA write into pinned user memory (bus occupancy
  // already paid above), counted in the rdma category, never as a host copy.
  std::memcpy(t.dst.data() + off, pkt.payload.data(), pkt.payload.size());
  count_rdma_write(pkt.payload.size());
  ++stats_.rdma_rx_chunks;
  stats_.rdma_rx_bytes += pkt.payload.size();
  fabric_.tracer().record(trace::EventType::kRdmaWrite, trace::Layer::kNic,
                          id_, pkt.trace_id, pkt.payload.size());
  if (t.received == t.dst.size()) {
    ++stats_.rdma_completions;
    fabric_.tracer().record(trace::EventType::kRdmaDone, trace::Layer::kNic,
                            id_, pkt.trace_id, t.dst.size());
    auto done = std::move(t.on_complete);
    rdma_targets_.erase(it);
    if (done) done();
    // Completion is polled, not delivered through the host ring; wake any
    // poller sleeping on ring traffic so it notices the state change.
    host_ring_.poke();
  }
}

// --- NIC-offloaded collectives (myrinet/coll.hpp) ---------------------------

namespace {

// In-place pairwise reduction over packed doubles. memcpy keeps the
// accumulator free of alignment assumptions; the fold order is the tree's
// deterministic child order, so floating-point results are bit-stable at
// every thread count.
void coll_fold(std::byte* acc, const std::byte* in, std::size_t bytes,
               CollOp op) {
  for (std::size_t o = 0; o + sizeof(double) <= bytes; o += sizeof(double)) {
    double a, b;
    std::memcpy(&a, acc + o, sizeof(double));
    std::memcpy(&b, in + o, sizeof(double));
    a = (op == CollOp::kReduceMax || op == CollOp::kAllreduceMax)
            ? std::max(a, b)
            : a + b;
    std::memcpy(acc + o, &a, sizeof(double));
  }
}

std::uint64_t coll_msg_id(int node, std::uint32_t group,
                          std::uint32_t epoch) {
  return trace::Tracer::msg_id(node, static_cast<int>(group & 0xFFF),
                               trace::Layer::kNic, epoch);
}

}  // namespace

void Nic::coll_create(const CollGroupSpec& spec) {
  // Lazy engine start: clusters that never form a group keep the exact
  // pre-collective event schedule (the pinned determinism digests).
  if (!coll_running_) {
    coll_running_ = true;
    eng_.spawn_daemon(coll_program());
  }
  assert(!spec.members.empty());
  assert(std::find(spec.members.begin(), spec.members.end(), id_) !=
         spec.members.end() &&
         "installing node must be a group member");
  assert(coll_groups_.find(spec.id) == coll_groups_.end() &&
         "group id already installed");
  CollGroup g;
  g.id = spec.id;
  g.tree = coll_tree(fabric_.topo(), spec.members, spec.radix, id_);
  g.max_bytes = spec.max_bytes;
  g.accum.resize(spec.max_bytes);
  // Reach steady-state capacity now: a handful of in-flight epochs per
  // queue covers any pipelined submission pattern without allocating.
  g.ops.reserve(8);
  g.down_q.reserve(8);
  g.child_q.resize(g.tree.children.size());
  for (auto& q : g.child_q) q.reserve(8);
  coll_groups_.emplace(spec.id, std::move(g));
  // Replay arrivals that beat the install, preserving arrival order
  // (non-matching ones re-park inside coll_route).
  if (!coll_orphans_.empty()) {
    std::vector<RxPacket> parked;
    parked.swap(coll_orphans_);
    for (auto& pkt : parked) coll_route(std::move(pkt));
  }
  coll_cv_.notify_all();
}

void Nic::coll_submit(std::uint32_t group, CollSubmit s) {
  auto it = coll_groups_.find(group);
  assert(it != coll_groups_.end() && "coll_submit before coll_create");
  CollGroup& g = it->second;
  assert(s.contrib.size() <= g.max_bytes && s.result.size() <= g.max_bytes &&
         "operand exceeds the group's preallocated capacity");
  fabric_.tracer().record(trace::EventType::kCollSubmit, trace::Layer::kNic,
                          id_, coll_msg_id(id_, g.id, g.epoch),
                          s.contrib.size());
  g.ops.push_back(std::move(s));
  coll_mark_dirty(g);
  coll_cv_.notify_all();
}

void Nic::coll_mark_dirty(CollGroup& g) {
  if (g.queued) return;
  g.queued = true;
  coll_dirty_.push_back(g.id);
}

// Classify one kColl arrival onto its tree edge. Up-sweep packets (join/
// combine) queue FIFO per child; down-sweep packets (fanout/done) queue
// FIFO from the parent. Malformed payloads and packets from nodes that are
// not tree neighbors are dropped (with reliable_link the sender's timeout
// re-delivers a clean copy; corruption never folds into an accumulator).
void Nic::coll_route(RxPacket pkt) {
  CollHeader h;
  if (!coll_parse(pkt.payload.span(), h) ||
      pkt.payload.size() != kCollHeaderBytes + h.bytes) {
    ++stats_.coll_stale;
    return;
  }
  auto it = coll_groups_.find(h.group);
  if (it == coll_groups_.end()) {
    ++stats_.coll_orphaned;
    coll_orphans_.push_back(std::move(pkt));
    return;
  }
  CollGroup& g = it->second;
  const auto cls = static_cast<CollClass>(h.cls);
  if (cls == CollClass::kJoin || cls == CollClass::kCombine) {
    int ci = -1;
    for (std::size_t i = 0; i < g.tree.children.size(); ++i) {
      if (g.tree.children[i] == pkt.src) {
        ci = static_cast<int>(i);
        break;
      }
    }
    if (ci < 0) {
      ++stats_.coll_stale;
      return;
    }
    g.child_q[static_cast<std::size_t>(ci)].push_back(
        std::move(pkt.payload));
  } else {
    if (pkt.src != g.tree.parent) {
      ++stats_.coll_stale;
      return;
    }
    g.down_q.push_back(std::move(pkt.payload));
  }
  ++stats_.coll_rx_packets;
  coll_mark_dirty(g);
}

BufferRef Nic::coll_pack(const CollGroup& g, CollClass cls, CollOp op,
                         ByteSpan values) {
  BufferRef buf =
      fabric_.pool().acquire_ref(kCollHeaderBytes + values.size());
  CollHeader h;
  h.group = g.id;
  h.epoch = g.epoch;
  h.cls = static_cast<std::uint8_t>(cls);
  h.op = static_cast<std::uint8_t>(op);
  h.bytes = static_cast<std::uint32_t>(values.size());
  MutByteSpan out = buf.mutable_bytes();
  coll_store(out, h);
  if (!values.empty())
    std::memcpy(out.data() + kCollHeaderBytes, values.data(), values.size());
  return buf;
}

// Hand one collective packet to the ordinary send pipeline. fetch_dma is
// false — the bytes were assembled in NIC SRAM, no host-memory fetch — and
// the transmit goes through tx_inject's per_packet_tx delay like any other
// send, which is what keeps Nic::wire_floor's fresh-transmit bound intact.
sim::Task<void> Nic::coll_emit(CollGroup& g, BufferRef payload, int dst) {
  SendDescriptor d(dst, std::move(payload), /*fetch_dma=*/false);
  d.kind = PacketKind::kColl;
  d.trace_id = coll_msg_id(id_, g.id, g.epoch);
  ++stats_.coll_forwards;
  fabric_.tracer().record(trace::EventType::kCollForward, trace::Layer::kNic,
                          id_, d.trace_id,
                          static_cast<std::uint64_t>(dst));
  co_await tx_queue_.push(std::move(d));
}

// Retire the head operation: place delivered values into the host buffer
// (one bus DMA — the operation's only host-memory write), run the
// completion callback, and wake pollers. This is the single host
// interruption of the whole collective.
sim::Task<void> Nic::coll_complete(CollGroup& g, ByteSpan values) {
  CollSubmit op = g.ops.take_front();
  g.fetched = false;
  g.combined = false;
  fabric_.tracer().record(trace::EventType::kCollDone, trace::Layer::kNic,
                          id_, coll_msg_id(id_, g.id, g.epoch),
                          values.size());
  ++g.epoch;
  ++stats_.coll_completions;
  if (!values.empty() && !op.result.empty()) {
    const std::size_t n = std::min(values.size(), op.result.size());
    co_await bus_.dma(n);
    std::memcpy(op.result.data(), values.data(), n);
  }
  if (op.on_complete) op.on_complete();
  // Completion is polled, RDMA-style: no host-ring entry, just a wake for
  // pollers sleeping on ring traffic.
  host_ring_.poke();
}

// Drive the head operation of one group as far as the arrived traffic
// allows. Ops complete strictly in submission (epoch) order; per-edge FIFO
// delivery guarantees every child-queue head belongs to the head epoch.
sim::Task<void> Nic::coll_advance(CollGroup& g) {
  for (;;) {
    if (g.ops.empty()) co_return;
    const CollOp op = g.ops.front().op;
    const bool root = g.tree.parent < 0;

    // Up-sweep: fold the local operand with every child's partial, then
    // forward one combined partial toward the root.
    if (coll_has_up(op) && !g.combined) {
      const std::size_t vbytes = g.ops.front().contrib.size();
      if (!g.fetched) {
        // One bus transaction fetches the submit descriptor + operand.
        // Prefetched on the submit wake-up, BEFORE waiting for children:
        // at interior nodes the DMA overlaps the child subtrees' arrivals
        // instead of adding a bus round-trip per tree level to the
        // critical path.
        g.fetched = true;
        co_await bus_.dma(kCollHeaderBytes + vbytes);
      }
      bool ready = true;
      for (const auto& q : g.child_q) ready = ready && !q.empty();
      if (!ready) co_return;
      if (vbytes > 0)
        std::memcpy(g.accum.data(), g.ops.front().contrib.data(), vbytes);
      sim::Ps cost = p_.coll_op;
      for (auto& q : g.child_q) {
        BufferRef b = q.take_front();
        CollHeader h;
        coll_parse(b.span(), h);
        assert(h.epoch == g.epoch && h.bytes == vbytes &&
               h.op == static_cast<std::uint8_t>(op) &&
               "tree-edge FIFO order violated");
        (void)h;
        coll_fold(g.accum.data(), b.data() + kCollHeaderBytes, vbytes, op);
        cost += p_.coll_op +
                static_cast<sim::Ps>(p_.coll_ps_per_byte *
                                     static_cast<double>(vbytes));
        ++stats_.coll_combines;
        fabric_.tracer().record(trace::EventType::kCollCombine,
                                trace::Layer::kNic, id_,
                                coll_msg_id(id_, g.id, g.epoch), vbytes);
      }
      co_await eng_.delay(cost);
      g.combined = true;
      const ByteSpan folded{g.accum.data(), vbytes};
      if (!root) {
        co_await coll_emit(
            g,
            coll_pack(g, op == CollOp::kJoin ? CollClass::kJoin
                                             : CollClass::kCombine,
                      op, folded),
            g.tree.parent);
        if (!coll_has_down(op)) {
          // Rooted reduce: an interior node is done once its partial is
          // on its way up; only the root ever delivers values.
          co_await coll_complete(g, {});
          continue;
        }
        // Fall through: wait for the root's fan-down.
      } else {
        if (coll_has_down(op)) {
          // Barrier release / join confirmation carry no operand; the
          // allreduce result fans out the folded values.
          const bool carry = op == CollOp::kAllreduceSum ||
                             op == CollOp::kAllreduceMax;
          BufferRef down =
              coll_pack(g, op == CollOp::kJoin ? CollClass::kDone
                                               : CollClass::kFanout,
                        op, carry ? folded : ByteSpan{});
          for (int c : g.tree.children) co_await coll_emit(g, down, c);
          co_await coll_complete(g, carry ? folded : ByteSpan{});
        } else {
          co_await coll_complete(g, folded);  // reduce root: final value
        }
        continue;
      }
    }

    if (!coll_has_down(op)) co_return;  // unreachable guard

    // Root broadcast: no up-sweep, the local operand fans straight out.
    if (root && op == CollOp::kBcast) {
      const std::size_t vbytes = g.ops.front().contrib.size();
      if (!g.fetched) {
        g.fetched = true;
        co_await bus_.dma(kCollHeaderBytes + vbytes);
      }
      co_await eng_.delay(p_.coll_op);
      BufferRef down =
          coll_pack(g, CollClass::kFanout, op, g.ops.front().contrib.span());
      for (int c : g.tree.children) co_await coll_emit(g, down, c);
      // The root's data is already in the user buffer; nothing to place.
      co_await coll_complete(g, {});
      continue;
    }

    // Down-sweep at an interior node / leaf: forward the parent's packet
    // to the children verbatim (a reference share, zero repack), then
    // deliver its values locally.
    if (g.down_q.empty()) co_return;
    BufferRef down = g.down_q.take_front();
    CollHeader h;
    coll_parse(down.span(), h);
    assert(h.epoch == g.epoch &&
           h.op == static_cast<std::uint8_t>(op) &&
           "tree-edge FIFO order violated");
    (void)h;
    co_await eng_.delay(p_.coll_op);
    for (int c : g.tree.children) co_await coll_emit(g, down, c);
    co_await coll_complete(
        g, down.span().subspan(kCollHeaderBytes));
  }
}

// The collective control program: one daemon per NIC drains diverted kColl
// arrivals onto their tree edges and advances every group with runnable
// work. Single-threaded per NIC and fed by FIFO queues, so processing
// order — and therefore every fold order and timestamp — is deterministic.
sim::Task<void> Nic::coll_program() {
  for (;;) {
    if (coll_in_.empty() && coll_dirty_.empty()) {
      co_await coll_cv_.wait();
      continue;
    }
    while (auto pkt = coll_in_.try_pop()) coll_route(std::move(*pkt));
    while (!coll_dirty_.empty()) {
      const std::uint32_t gid = coll_dirty_.take_front();
      auto it = coll_groups_.find(gid);
      assert(it != coll_groups_.end());
      it->second.queued = false;
      co_await coll_advance(it->second);
      // Arrivals that landed while advancing re-mark their groups dirty.
      while (auto pkt = coll_in_.try_pop()) coll_route(std::move(*pkt));
    }
  }
}

// Reliable-link: coalesced ack generation. Sleeps until a receive marks an
// ack due, waits the coalescing window (reverse data traffic may piggyback
// it meanwhile), then emits explicit ack packets for what is still owed.
sim::Task<void> Nic::ack_program() {
  for (;;) {
    bool any_due = false;
    for (auto& pr : rx_peers_) any_due |= pr.ack_due;
    if (!any_due) {
      co_await ack_cv_.wait();
      continue;
    }
    ack_armed_ = eng_.now() + p_.ack_delay;
    co_await eng_.delay(p_.ack_delay);
    ack_armed_ = kNeverArmed;
    // Back-to-back ack transmits wake at uplink drains, with no interposed
    // delay; the floor drops to e for the burst (the uplink next-free term
    // still covers the true heads).
    ++emit_loops_;
    for (int peer = 0; peer < static_cast<int>(rx_peers_.size()); ++peer) {
      PeerRx& pr = rx_peers_[peer];
      if (!pr.ack_due) continue;
      pr.ack_due = false;
      WirePacket ack = WirePacket::make(id_, peer, BufferRef{});
      ack.has_ack = true;
      ack.ack = pr.expected;
      ack.ack_only = true;
      ++stats_.acks_sent;
      co_await fabric_.transmit(std::move(ack));
    }
    --emit_loops_;
  }
}

// Reliable-link: timeout sweep. Sleeps while nothing is outstanding; while
// packets are retained, checks every timeout/2 whether the oldest has been
// waiting past the timeout and, if so, resends the whole window (go-back-N).
sim::Task<void> Nic::retransmit_program() {
  for (;;) {
    std::size_t outstanding = unacked();
    if (outstanding == 0) {
      co_await rtx_cv_.wait();
      continue;
    }
    retx_armed_ = eng_.now() + p_.retransmit_timeout / 2;
    co_await eng_.delay(p_.retransmit_timeout / 2);
    retx_armed_ = kNeverArmed;
    ++emit_loops_;
    for (int peer = 0; peer < static_cast<int>(tx_peers_.size()); ++peer) {
      PeerTx& pt = tx_peers_[peer];
      if (pt.retained.empty()) continue;
      if (eng_.now() - pt.last_progress < p_.retransmit_timeout) continue;
      pt.last_progress = eng_.now();
      // Snapshot the window: transmits suspend, and an ack arriving
      // meanwhile pops from pt.retained (iterating it live would be a
      // use-after-free). Stale retransmissions are dropped as duplicates.
      std::vector<WirePacket> window(pt.retained.begin(),
                                     pt.retained.end());
      for (const WirePacket& pkt : window) {
        ++stats_.retransmissions;
        fabric_.tracer().record(trace::EventType::kRetransmit,
                                trace::Layer::kNic, id_, pkt.trace_id,
                                pkt.link_seq);
        co_await fabric_.transmit(pkt);
      }
    }
    --emit_loops_;
  }
}

}  // namespace fmx::net
