// Sharded cluster for conservative parallel execution (sim/parallel.hpp).
//
// Partitioning: each shard owns a contiguous range of nodes (host + I/O bus
// + NIC — all of a node's events stay on its shard) plus its own replica of
// the switch fabric. A replica carries the full link topology, but only the
// links a shard arbitrates matter: a packet to a local destination runs the
// ordinary serial path; a packet to a remote destination reserves its
// source-side links here, then crosses to the destination shard through a
// bounded SPSC ring with its head-arrival time and a deterministic order
// key (source node, per-source counter). The destination replica reserves
// the final downlink, applies SRAM back-pressure and fault hooks, and
// delivers — so per-packet semantics are identical at every thread count.
//
// Each shard also gets its own buffer pool, tracer, RNG, and (optionally)
// fault injector, so no mutable state is shared between shards; workers
// only meet at window barriers and ring publishes. Per-shard traces merge
// deterministically via trace::merge_streams.
//
// Note on fidelity vs the single-engine Cluster: back-pressure on a
// cross-shard path is exerted at the destination's downlink (where the
// STOP/GO signal physically originates) instead of at injection time, and
// inter-switch links are arbitrated per source shard. Single-switch
// clusters (n_hosts <= hosts_per_switch, e.g. the 8-node FM2 preset) have
// no inter-switch links, so only the back-pressure timing differs from the
// serial Cluster; results are bit-identical across thread counts either
// way, with 1-thread parallel mode as the reference.
//
// Workload code must keep its conditions node-local: a poll_until on one
// node watching state mutated by another node's handler worked on the
// single-engine Cluster (any event re-polls) but deadlocks here — once the
// watcher's shard goes idle, nothing local wakes the poller. Have each
// node wait on its own counters (run() reports such stuck tasks in
// RunResult::pending_roots).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "myrinet/node.hpp"
#include "sim/parallel.hpp"
#include "sim/spsc.hpp"
#include "trace/trace.hpp"

namespace fmx::net {

class ParallelCluster {
 public:
  /// `n_shards` defaults (0) to one shard per node.
  explicit ParallelCluster(const ClusterParams& p, int n_shards = 0);
  ParallelCluster(const ParallelCluster&) = delete;
  ParallelCluster& operator=(const ParallelCluster&) = delete;
  ~ParallelCluster();

  int size() const noexcept { return params_.n_hosts; }
  int n_shards() const noexcept { return n_shards_; }
  int shard_of(int node) const { return shard_of_[node]; }
  const ClusterParams& params() const noexcept { return params_; }

  sim::ParallelEngine& par() noexcept { return par_; }
  const sim::ParallelEngine& par() const noexcept { return par_; }
  /// Static per-pair lookahead: min head latency of any cross-shard path
  /// from a host of `src_shard` to a host of `dst_shard` (metric-closed).
  sim::Ps lookahead(int src_shard, int dst_shard) const {
    return par_.lookahead(src_shard, dst_shard);
  }
  sim::Engine& shard_engine(int s) { return par_.shard(s); }
  sim::Engine& engine_of(int node) { return par_.shard(shard_of_[node]); }
  Fabric& shard_fabric(int s) { return *fabrics_[s]; }
  Fabric& fabric_of(int node) { return *fabrics_[shard_of_[node]]; }
  Node& node(int i) { return *nodes_[i]; }

  /// Spawn a root task on the shard that owns `node`, starting at the
  /// cluster-wide maximum engine clock. Shard clocks quiesce at different
  /// instants (each stops at its own last event), and roots launched at
  /// each shard's local `now` would start a fresh wave already skewed —
  /// the laggard shard then clamps every peer's conservative bound, and
  /// the residue compounds wave over wave. Aligning the start resets the
  /// skew. Only callable between runs (no workers active), which is the
  /// only time reading foreign shard clocks is race-free.
  void spawn_on(int node, sim::Task<void> t) {
    sim::Ps t0 = 0;
    for (int s = 0; s < par_.n_shards(); ++s) {
      t0 = std::max(t0, par_.shard(s).now());
    }
    engine_of(node).spawn_at(t0, std::move(t));
  }

  struct RunResult {
    std::uint64_t events = 0;
    /// Advance quanta that executed events, summed over shards (see
    /// sim::ParallelEngine::RunResult::windows). A meter, not part of any
    /// determinism digest — it depends on thread scheduling.
    std::uint64_t windows = 0;
    /// Times a worker fell off the spin/yield fast path and parked.
    std::uint64_t barrier_crossings = 0;
    int pending_roots = 0;
  };
  /// Run to global quiescence. `n_threads` 0 means: $FMX_THREADS if set,
  /// else 1. Results are identical for every thread count.
  RunResult run(int n_threads = 0);

  /// Thread count requested via $FMX_THREADS (0 if unset/invalid).
  static int env_threads();

  /// Enable tracing on every shard's tracer (per-shard capacity).
  void enable_tracing(std::size_t capacity_events = 1 << 18);
  /// Deterministically merged trace across all shards.
  std::vector<trace::Event> merged_trace() const;

  /// Fabric stats summed across replicas (packets/bytes count on the source
  /// shard; drops/corruptions/duplicates on the destination shard).
  Fabric::Stats fabric_stats() const;

 private:
  class Port;
  // One directed ring per shard pair. Ring overflow (bounded by design:
  // FM-level credits cap in-flight data) falls back to a mutex-guarded
  // spill list; order between ring and spill is irrelevant because
  // arrivals sort by their cross keys, not by drain order. Spill buffers
  // cycle through a pre-warmed pool (and the list vectors themselves keep
  // their capacity across swaps), so the overflow path stays
  // allocation-free in steady state — batched quanta legitimately let a
  // producer run hundreds of emissions ahead of a drain.
  struct Ring {
    Ring(std::size_t slots, std::size_t slot_bytes) : ring(slots, slot_bytes) {
      // Half the ring depth again in spill buffers: a consumer preempted on
      // a loaded box can leave the ring full plus this many slots spilled
      // before the overflow path has to touch the allocator.
      const std::size_t prewarm = slots / 2;
      pool.reserve(4 * slots);
      spill.reserve(4 * slots);
      drained.reserve(4 * slots);
      for (std::size_t i = 0; i < prewarm; ++i) pool.emplace_back(slot_bytes);
    }
    sim::SpscSlotRing ring;
    std::mutex mu;
    std::vector<std::vector<std::byte>> spill;  // guarded by mu
    std::vector<std::vector<std::byte>> pool;   // guarded by mu
    // Consumer-side scratch, touched only by the destination shard's owner.
    std::vector<std::vector<std::byte>> drained;
    std::atomic<std::uint32_t> spilled{0};
  };

  Ring& ring(int src_shard, int dst_shard) {
    return *rings_[src_shard * n_shards_ + dst_shard];
  }
  void drain_into(int dst_shard);
  void emission_bound(int shard, sim::Ps e, sim::Ps* out) const;
  bool inbox_empty(int shard) const;
  void expose_metrics();

  ClusterParams params_;
  int n_shards_;
  std::vector<std::int32_t> shard_of_;
  // Static source-side head latency host -> destination shard: the minimum
  // time from an emission on host `a` to a packet head reaching any host
  // of shard `d` (uplink + switch chain; row-major n_hosts x n_shards).
  // The emission-bound hook adds this to max(uplink next-free, next-event).
  std::vector<sim::Ps> sl_host_;
  std::vector<int> shard_begin_;  // host range [shard_begin_[s], shard_begin_[s+1])
  sim::ParallelEngine par_;
  std::vector<std::unique_ptr<Fabric>> fabrics_;
  std::vector<std::unique_ptr<Port>> ports_;
  std::vector<std::unique_ptr<Ring>> rings_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace fmx::net
