// Sharded cluster for conservative parallel execution (sim/parallel.hpp).
//
// Partitioning: each shard owns a contiguous range of nodes (host + I/O bus
// + NIC — all of a node's events stay on its shard) plus its own replica of
// the switch fabric. A replica carries the full link topology, but only the
// links a shard arbitrates matter: a packet to a local destination runs the
// ordinary serial path; a packet to a remote destination reserves its
// source-side links here, then crosses to the destination shard through a
// bounded SPSC ring with its head-arrival time and a deterministic order
// key (source node, per-source counter). The destination replica reserves
// the final downlink, applies SRAM back-pressure and fault hooks, and
// delivers — so per-packet semantics are identical at every thread count.
//
// Each shard also gets its own buffer pool, tracer, RNG, and (optionally)
// fault injector, so no mutable state is shared between shards; workers
// only meet at window barriers and ring publishes. Per-shard traces merge
// deterministically via trace::merge_streams.
//
// Note on fidelity vs the single-engine Cluster: back-pressure on a
// cross-shard path is exerted at the destination's downlink (where the
// STOP/GO signal physically originates) instead of at injection time, and
// inter-switch links are arbitrated per source shard. Single-switch
// clusters (n_hosts <= hosts_per_switch, e.g. the 8-node FM2 preset) have
// no inter-switch links, so only the back-pressure timing differs from the
// serial Cluster; results are bit-identical across thread counts either
// way, with 1-thread parallel mode as the reference.
//
// Workload code must keep its conditions node-local: a poll_until on one
// node watching state mutated by another node's handler worked on the
// single-engine Cluster (any event re-polls) but deadlocks here — once the
// watcher's shard goes idle, nothing local wakes the poller. Have each
// node wait on its own counters (run() reports such stuck tasks in
// RunResult::pending_roots).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "myrinet/node.hpp"
#include "sim/parallel.hpp"
#include "sim/spsc.hpp"
#include "trace/trace.hpp"

namespace fmx::net {

class ParallelCluster {
 public:
  /// `n_shards` defaults (0) to one shard per node.
  explicit ParallelCluster(const ClusterParams& p, int n_shards = 0);
  ParallelCluster(const ParallelCluster&) = delete;
  ParallelCluster& operator=(const ParallelCluster&) = delete;
  ~ParallelCluster();

  int size() const noexcept { return params_.n_hosts; }
  int n_shards() const noexcept { return n_shards_; }
  int shard_of(int node) const { return shard_of_[node]; }
  const ClusterParams& params() const noexcept { return params_; }

  sim::ParallelEngine& par() noexcept { return par_; }
  sim::Engine& shard_engine(int s) { return par_.shard(s); }
  sim::Engine& engine_of(int node) { return par_.shard(shard_of_[node]); }
  Fabric& shard_fabric(int s) { return *fabrics_[s]; }
  Fabric& fabric_of(int node) { return *fabrics_[shard_of_[node]]; }
  Node& node(int i) { return *nodes_[i]; }

  /// Spawn a root task on the shard that owns `node` (engine clocks are in
  /// lockstep only at barriers; spawn before run() or from node-local code).
  void spawn_on(int node, sim::Task<void> t) {
    engine_of(node).spawn(std::move(t));
  }

  struct RunResult {
    std::uint64_t events = 0;
    std::uint64_t windows = 0;
    int pending_roots = 0;
  };
  /// Run to global quiescence. `n_threads` 0 means: $FMX_THREADS if set,
  /// else 1. Results are identical for every thread count.
  RunResult run(int n_threads = 0);

  /// Thread count requested via $FMX_THREADS (0 if unset/invalid).
  static int env_threads();

  /// Enable tracing on every shard's tracer (per-shard capacity).
  void enable_tracing(std::size_t capacity_events = 1 << 18);
  /// Deterministically merged trace across all shards.
  std::vector<trace::Event> merged_trace() const;

  /// Fabric stats summed across replicas (packets/bytes count on the source
  /// shard; drops/corruptions/duplicates on the destination shard).
  Fabric::Stats fabric_stats() const;

 private:
  class Port;
  // One directed ring per shard pair. Ring overflow (bounded by design:
  // FM-level credits cap in-flight data) falls back to a mutex-guarded
  // spill vector; order between ring and spill is irrelevant because
  // arrivals sort by their cross keys, not by drain order.
  struct Ring {
    Ring(std::size_t slots, std::size_t slot_bytes) : ring(slots, slot_bytes) {}
    sim::SpscSlotRing ring;
    std::mutex mu;
    std::vector<std::vector<std::byte>> spill;
    std::atomic<std::uint32_t> spilled{0};
  };

  Ring& ring(int src_shard, int dst_shard) {
    return *rings_[src_shard * n_shards_ + dst_shard];
  }
  void drain_into(int dst_shard);
  void expose_metrics();

  ClusterParams params_;
  int n_shards_;
  std::vector<std::int32_t> shard_of_;
  sim::ParallelEngine par_;
  std::vector<std::unique_ptr<Fabric>> fabrics_;
  std::vector<std::unique_ptr<Port>> ports_;
  std::vector<std::unique_ptr<Ring>> rings_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace fmx::net
