// I/O bus (SBus / PCI): one shared FIFO-arbitrated resource per node.
// DMA engines and host programmed I/O contend here — on the FM 1.x platform
// this contention *is* the bottleneck the paper's Figure 3a isolates.
#pragma once

#include <cstddef>

#include "myrinet/fault_hooks.hpp"
#include "myrinet/params.hpp"
#include "sim/resource.hpp"

namespace fmx::net {

class IoBus {
 public:
  IoBus(sim::Engine& eng, const IoBusParams& p) : res_(eng), p_(p) {}

  sim::Ps dma_time(std::size_t bytes) const {
    return p_.dma_setup +
           static_cast<sim::Ps>(p_.dma_ps_per_byte *
                                static_cast<double>(bytes));
  }
  sim::Ps pio_time(std::size_t bytes) const {
    return p_.pio_setup +
           static_cast<sim::Ps>(p_.pio_ps_per_byte *
                                static_cast<double>(bytes));
  }

  /// Occupy the bus for a DMA transfer of `bytes`.
  sim::Task<void> dma(std::size_t bytes) {
    co_await res_.occupy(dma_time(bytes) + stall(bytes));
  }

  /// Occupy the bus for programmed I/O of `bytes`. The caller's host CPU is
  /// also busy for this duration (it is executing the store loop) — callers
  /// should ledger it via Host::note(Cost::kPio, pio_time(bytes)).
  sim::Task<void> pio(std::size_t bytes) {
    co_await res_.occupy(pio_time(bytes) + stall(bytes));
  }

  /// Arm (or disarm) fault-injected arbitration stalls on this bus.
  void set_fault(FaultInjector* f) noexcept { fault_ = f; }

  const IoBusParams& params() const noexcept { return p_; }
  sim::Ps busy_time() const noexcept { return res_.busy_time(); }
  sim::Ps backlog() const noexcept { return res_.backlog(); }

 private:
  sim::Ps stall(std::size_t bytes) const {
    return fault_ != nullptr ? fault_->bus_stall(bytes) : 0;
  }

  sim::SerialResource res_;
  IoBusParams p_;
  FaultInjector* fault_ = nullptr;
};

}  // namespace fmx::net
