// Calibrated platform presets. Constants are fitted so the *protocol code*
// running above them reproduces the paper's headline numbers; the fits and
// the measured results are tabulated in EXPERIMENTS.md.
#include "myrinet/params.hpp"
#include "myrinet/topo.hpp"

namespace fmx::net {

ClusterParams sparc_fm1_cluster(int n_hosts) {
  ClusterParams p;
  p.n_hosts = n_hosts;

  // ~60 MHz SuperSPARC-class host. Copies are expensive (~20 MB/s streaming)
  // — this is what makes MPI-FM 1.x's extra copies so costly (Figure 4).
  p.host.cpu_hz = 60e6;
  p.host.memcpy_setup = sim::ns(300);
  p.host.memcpy_ps_per_byte = 50'000;            // 50 ns/B = 20 MB/s
  p.host.memcpy_ps_per_byte_uncached = 80'000;   // 12.5 MB/s
  p.host.memcpy_cache_threshold = 16 * 1024;
  p.host.call_overhead = sim::ns(2'500);
  p.host.handler_dispatch = sim::ns(750);
  p.host.poll_gap = sim::ns(500);

  // SBus: send side uses programmed I/O (the Figure 3a bottleneck);
  // receive side uses DMA.
  p.bus.pio_setup = sim::ns(2'000);
  p.bus.pio_ps_per_byte = 15'800;  // ~63 MB/s burst writes
  p.bus.dma_setup = sim::ns(1'000);
  p.bus.dma_ps_per_byte = 25'000;  // ~40 MB/s SBus DMA

  // First-generation Myrinet NIC: 128 B packets, ~2 us of control-program
  // work per packet.
  p.nic.mtu_payload = 128;
  p.nic.sram_rx_slots = 8;
  p.nic.tx_queue_slots = 8;
  p.nic.host_ring_slots = 64;
  p.nic.per_packet_tx = sim::us(2.0);
  p.nic.per_packet_rx = sim::us(2.0);

  // 80 MB/s links (0.64 Gb/s first-generation Myrinet).
  p.fabric.link_ps_per_byte = 12'500;
  p.fabric.link_latency = sim::ns(300);
  p.fabric.switch_latency = sim::ns(550);
  return p;
}

ClusterParams ppro_fm2_cluster(int n_hosts) {
  ClusterParams p;
  p.n_hosts = n_hosts;

  // 200 MHz Pentium Pro. Cached copies ~100 MB/s.
  p.host.cpu_hz = 200e6;
  p.host.memcpy_setup = sim::ns(100);
  p.host.memcpy_ps_per_byte = 10'000;            // 10 ns/B = 100 MB/s
  p.host.memcpy_ps_per_byte_uncached = 16'000;   // ~62 MB/s
  p.host.memcpy_cache_threshold = 128 * 1024;
  p.host.call_overhead = sim::ns(800);
  p.host.handler_dispatch = sim::ns(400);
  p.host.poll_gap = sim::ns(150);

  // 33 MHz/32-bit PCI: ~80 MB/s sustained DMA — the FM 2.x bandwidth
  // ceiling the paper reports (77 MB/s delivered).
  p.bus.pio_setup = sim::ns(300);
  p.bus.pio_ps_per_byte = 30'000;
  p.bus.dma_setup = sim::ns(800);
  p.bus.dma_ps_per_byte = 12'000;  // ~83 MB/s

  // Second-generation NIC: larger packets, faster LANai.
  p.nic.mtu_payload = 1024;
  p.nic.sram_rx_slots = 8;
  p.nic.tx_queue_slots = 16;
  p.nic.host_ring_slots = 128;
  p.nic.per_packet_tx = sim::us(2.0);
  p.nic.per_packet_rx = sim::us(2.0);

  // 160 MB/s links (1.28 Gb/s Myrinet).
  p.fabric.link_ps_per_byte = 6'250;
  p.fabric.link_latency = sim::ns(300);
  p.fabric.switch_latency = sim::ns(550);
  return p;
}

ClusterParams fat_tree_cluster(int n_hosts, int radix, int oversub) {
  ClusterParams p = ppro_fm2_cluster(n_hosts);
  p.fabric.topology = TopologyKind::kFatTree;
  p.fabric.oversubscription = oversub;
  if (radix <= 0) {
    radix = 2;
    while (Topo::fat_tree_capacity(radix, oversub) < n_hosts) radix += 2;
  }
  p.fabric.fat_tree_radix = radix;
  return p;
}

}  // namespace fmx::net
