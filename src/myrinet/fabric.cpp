#include "myrinet/fabric.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace fmx::net {

Fabric::Fabric(sim::Engine& eng, const FabricParams& p, int n_hosts)
    : eng_(eng), p_(p), n_hosts_(n_hosts), topo_(p, n_hosts) {
  assert(n_hosts >= 1);
  // One serial resource per directed link id. Uplinks and transit links
  // cost flight plus the routing decision at the switch they enter; the
  // final downlink is pure flight (the decision was paid on entry).
  links_.reserve(static_cast<std::size_t>(topo_.n_links()));
  for (int l = 0; l < topo_.n_links(); ++l) {
    const sim::Ps lat = topo_.is_downlink(l)
                            ? p_.link_latency
                            : p_.link_latency + p_.switch_latency;
    links_.push_back(std::make_unique<Link>(eng_, lat));
  }
  endpoints_.resize(n_hosts);
  // Park slots recycle through free_parked_, so the vector only grows to
  // the peak number of remote arrivals simultaneously awaiting delivery.
  // Pay that growth here rather than mid-run: a deep-credit streaming pair
  // can push the peak past whatever a short warmup happened to reach.
  parked_.reserve(256);
  free_parked_.reserve(256);
}

void Fabric::attach(int host, sim::Channel<WirePacket>* wire_in,
                    sim::Semaphore* slack) {
  endpoints_[host].wire_in = wire_in;
  endpoints_[host].slack = slack;
}

std::size_t Fabric::wire_bytes(std::size_t payload) const {
  return p_.frame_overhead + payload + p_.crc_bytes;
}

sim::Ps Fabric::zero_load_latency(int src, int dst,
                                  std::size_t payload) const {
  sim::Ps ser = static_cast<sim::Ps>(
      p_.link_ps_per_byte * static_cast<double>(wire_bytes(payload)));
  if (src == dst) return p_.switch_latency + ser;
  // Sum of per-link propagation on the path; every ECMP path of a pair has
  // the same hop mix, so flow 0 is representative.
  sim::Ps lat = 0;
  const int len = topo_.path_len(src, dst);
  for (int i = 0; i < len; ++i) {
    lat += links_[topo_.link_at(src, dst, 0, i)]->latency;
  }
  return lat + ser;  // cut-through: one serialization end to end
}

void Fabric::maybe_corrupt(WirePacket& pkt) {
  if (p_.bit_error_rate <= 0.0 || pkt.payload.empty()) return;
  double bits = 8.0 * static_cast<double>(wire_bytes(pkt.payload.size()));
  double p_bad = 1.0 - std::pow(1.0 - p_.bit_error_rate, bits);
  if (rng_.uniform_real() < p_bad) {
    std::size_t pos = rng_.uniform(0, pkt.payload.size() - 1);
    std::size_t bit = rng_.uniform(0, 7);
    // Copy-on-write: if the block is shared (NIC retention, a duplicate in
    // flight), only this packet's view diverges; siblings keep clean bytes.
    pkt.payload.mutable_bytes()[pos] ^= static_cast<std::byte>(1u << bit);
    ++stats_.corrupted;
  }
}

sim::Task<void> Fabric::deliver(WirePacket pkt, sim::Ps at) {
  co_await eng_.sleep_until(at);
  co_await deliver_body(std::move(pkt));
}

// Everything that happens once the packet's tail reaches the destination:
// fault hooks, bit errors, tracing, and the hand-off into the NIC's wire
// buffer. Shared by the serial path (deliver) and the cross-shard path
// (deliver_remote) so fault semantics are identical in both modes.
sim::Task<void> Fabric::deliver_body(WirePacket pkt) {
  if (fault_ != nullptr) {
    WireFault f = fault_->on_deliver(pkt);
    if (f.extra_delay > 0) {
      // Held back relative to packets behind it: observable reordering.
      ++stats_.delayed;
      co_await eng_.delay(f.extra_delay);
    }
    if (f.corrupt && !pkt.payload.empty()) {
      pkt.payload.mutable_bytes()[f.corrupt_pos % pkt.payload.size()] ^=
          static_cast<std::byte>(1u << (f.corrupt_bit & 7));
      ++stats_.corrupted;
    }
    if (f.drop) {
      // The packet evaporates; give its reserved SRAM slot back so slack
      // accounting stays conserved (the loss is the sender's problem).
      ++stats_.dropped;
      tracer_.record(trace::EventType::kDrop, trace::Layer::kFabric, pkt.dst,
                     pkt.trace_id, trace::kDropFault);
      pkt.payload.reset();
      endpoints_[pkt.dst].slack->release();
      co_return;
    }
    if (f.duplicate) {
      ++stats_.duplicated;
      // Duplicate of the uncorrupted original — a pure reference share,
      // taken before maybe_corrupt so a bit error on the primary COWs away
      // from the duplicate's clean view.
      WirePacket copy = pkt;
      maybe_corrupt(pkt);
      auto& ep = endpoints_[pkt.dst];
      assert(ep.wire_in && "destination NIC not attached");
      tracer_.record(trace::EventType::kDeliver, trace::Layer::kFabric,
                     pkt.dst, pkt.trace_id, pkt.payload.size());
      co_await ep.wire_in->push(std::move(pkt));
      eng_.spawn_daemon(deliver_duplicate(std::move(copy)));
      co_return;
    }
  }
  maybe_corrupt(pkt);
  auto& ep = endpoints_[pkt.dst];
  assert(ep.wire_in && "destination NIC not attached");
  tracer_.record(trace::EventType::kDeliver, trace::Layer::kFabric, pkt.dst,
                 pkt.trace_id, pkt.payload.size());
  co_await ep.wire_in->push(std::move(pkt));
}

// A duplicated copy is a real extra packet: it must win its own SRAM slot
// at the destination before entering the wire buffer.
sim::Task<void> Fabric::deliver_duplicate(WirePacket pkt) {
  auto& ep = endpoints_[pkt.dst];
  co_await ep.slack->acquire();
  tracer_.record(trace::EventType::kDeliver, trace::Layer::kFabric, pkt.dst,
                 pkt.trace_id, pkt.payload.size());
  co_await ep.wire_in->push(std::move(pkt));
}

sim::Task<void> Fabric::transmit(WirePacket pkt) {
  assert(pkt.src >= 0 && pkt.src < n_hosts_);
  assert(pkt.dst >= 0 && pkt.dst < n_hosts_);

  pkt.wire_seq = next_seq_++;
  ++stats_.packets;
  stats_.payload_bytes += pkt.payload.size();

  if (port_ != nullptr && shard_of_node_[pkt.dst] != my_shard_) {
    // Destination owned by a peer shard. Reserve every source-side link
    // (all but the destination's downlink, which its own replica arbitrates)
    // and publish the packet with its head-arrival time; the receiving
    // replica finishes the cut-through there, including the SRAM slack
    // acquisition — back-pressure is exerted at the last hop, where the
    // receiving NIC's STOP/GO signal physically lives.
    tracer_.record(trace::EventType::kWireHop, trace::Layer::kFabric, pkt.src,
                   pkt.trace_id,
                   static_cast<std::uint64_t>(hops(pkt.src, pkt.dst)));
    const sim::Ps ser = ser_time(pkt);
    const int len = topo_.path_len(pkt.src, pkt.dst);
    sim::Ps head = eng_.now();
    sim::Ps tail_done = eng_.now();
    sim::Ps uplink_done = 0;
    for (int i = 0; i + 1 < len; ++i) {
      Link* l = links_[topo_.link_at(pkt.src, pkt.dst, pkt.flow, i)].get();
      tail_done = l->ser.reserve_from(head, ser);
      head = (tail_done - ser) + l->latency;
      if (i == 0) uplink_done = tail_done;
    }
    port_->emit(pkt, head);  // encodes the bytes into the SPSC slot
    pkt.payload.reset();
    co_await eng_.sleep_until(uplink_done);
    co_return;
  }

  auto& ep = endpoints_[pkt.dst];
  assert(ep.slack && "destination NIC not attached");

  // Back-pressure: no injection until the destination NIC has SRAM for it.
  co_await ep.slack->acquire();

  tracer_.record(trace::EventType::kWireHop, trace::Layer::kFabric, pkt.src,
                 pkt.trace_id,
                 static_cast<std::uint64_t>(hops(pkt.src, pkt.dst)));

  if (pkt.src == pkt.dst) {
    eng_.spawn_daemon(deliver(std::move(pkt), eng_.now() + p_.switch_latency));
    co_return;
  }

  const sim::Ps ser = ser_time(pkt);
  const int len = topo_.path_len(pkt.src, pkt.dst);

  // Cut-through reservation: on each link, start when the head arrives and
  // the link is free; the head moves on after the link's latency. Link ids
  // come straight out of the topology's route tables — O(1) per hop, no
  // shared path buffer, so interleaved transmits can never alias.
  sim::Ps head = eng_.now();
  sim::Ps tail_done = eng_.now();
  sim::Ps uplink_done = 0;
  sim::Ps last_latency = 0;
  for (int i = 0; i < len; ++i) {
    Link* l = links_[topo_.link_at(pkt.src, pkt.dst, pkt.flow, i)].get();
    tail_done = l->ser.reserve_from(head, ser);
    head = (tail_done - ser) + l->latency;
    if (i == 0) uplink_done = tail_done;
    last_latency = l->latency;
  }
  sim::Ps arrival = tail_done + last_latency;

  eng_.spawn_daemon(deliver(std::move(pkt), arrival));
  // The sender NIC is occupied until its uplink finishes serializing.
  co_await eng_.sleep_until(uplink_done);
}

// ---------------------------------------------------------------------------
// Parallel (sharded) execution

void Fabric::set_parallel(CrossShardPort* port,
                          const std::int32_t* shard_of_node, int my_shard,
                          std::size_t parked_hint) {
  port_ = port;
  shard_of_node_ = shard_of_node;
  my_shard_ = my_shard;
  if (parked_hint > parked_.capacity()) {
    parked_.reserve(parked_hint);
    free_parked_.reserve(parked_hint);
  }
  // Namespace wire sequence numbers by shard so they stay cluster-unique
  // (they are debug/trace metadata; 48 bits of local counter is plenty).
  next_seq_ = static_cast<std::uint64_t>(my_shard) << 48;
}

void Fabric::accept_remote(WirePacket pkt, sim::Ps head_arrival,
                           std::uint64_t cross_key) {
  // Park the packet and schedule a 16-byte callback: the cross-band key
  // alone decides where this arrival sorts among same-timestamp events, so
  // the drain order (and thread count) cannot affect the simulation.
  std::uint32_t idx;
  if (!free_parked_.empty()) {
    idx = free_parked_.back();
    free_parked_.pop_back();
    parked_[idx].pkt = std::move(pkt);
    parked_[idx].head = head_arrival;
  } else {
    idx = static_cast<std::uint32_t>(parked_.size());
    parked_.push_back(Parked{std::move(pkt), head_arrival});
  }
  eng_.schedule_cross(head_arrival, cross_key,
                      [this, idx] { launch_remote(idx); });
}

void Fabric::launch_remote(std::uint32_t idx) {
  Parked p = std::move(parked_[idx]);
  free_parked_.push_back(idx);
  eng_.spawn_daemon(deliver_remote(std::move(p.pkt), p.head));
}

// Destination-side half of a cross-shard cut-through: the head reaches our
// downlink at `head`; reserve it, wait out the destination NIC's SRAM
// back-pressure, and deliver when the tail has propagated.
sim::Task<void> Fabric::deliver_remote(WirePacket pkt, sim::Ps head) {
  const sim::Ps ser = ser_time(pkt);
  Link* dn = links_[topo_.downlink(pkt.dst)].get();
  const sim::Ps tail_done = dn->ser.reserve_from(head, ser);
  const sim::Ps arrival = tail_done + dn->latency;
  auto& ep = endpoints_[pkt.dst];
  assert(ep.slack && "destination NIC not attached");
  co_await ep.slack->acquire();
  co_await eng_.sleep_until(arrival);
  co_await deliver_body(std::move(pkt));
}

}  // namespace fmx::net
