#include "myrinet/topo.hpp"

#include <cassert>
#include <cstdlib>

namespace fmx::net {

std::uint64_t Topo::ecmp_hash(int src, int dst, std::uint32_t flow) noexcept {
  std::uint64_t x = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src))
                     << 32) |
                    static_cast<std::uint32_t>(dst);
  x ^= static_cast<std::uint64_t>(flow) * 0x9E3779B97F4A7C15ull;
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

Topo::Topo(const FabricParams& p, int n_hosts)
    : kind_(p.topology), n_hosts_(n_hosts) {
  assert(n_hosts >= 1);
  if (kind_ == TopologyKind::kChain) {
    hosts_per_switch_ = p.hosts_per_switch;
    n_switches_ =
        (n_hosts + hosts_per_switch_ - 1) / hosts_per_switch_;
    base_right_ = 2 * n_hosts_;
    base_left_ = base_right_ + (n_switches_ - 1);
    n_links_ = 2 * n_hosts_ + 2 * (n_switches_ - 1);
    max_path_len_ = n_switches_ + 1;
    return;
  }

  // Fat-tree. Radix must be even and >= 2; the tree may be partially
  // populated (hosts fill edge switches in order), but never overfull.
  const int k = p.fat_tree_radix;
  assert(k >= 2 && k % 2 == 0 && "fat-tree radix must be even");
  assert(p.oversubscription >= 1);
  assert(n_hosts <= fat_tree_capacity(k, p.oversubscription) &&
         "fat-tree radix/oversubscription cannot host n_hosts");
  half_ = k / 2;
  pods_ = k;
  hosts_per_edge_ = half_ * p.oversubscription;
  n_edges_ = pods_ * half_;
  n_aggs_ = pods_ * half_;
  n_cores_ = half_ * half_;
  n_switches_ = n_edges_ + n_aggs_ + n_cores_;
  max_path_len_ = 6;

  base_ea_ = 2 * n_hosts_;
  base_ae_ = base_ea_ + n_edges_ * half_;
  base_ac_ = base_ae_ + n_aggs_ * half_;
  base_ca_ = base_ac_ + n_aggs_ * half_;
  n_links_ = base_ca_ + n_cores_ * pods_;

  // Fill the forwarding tables. Today's id assignment is affine in the
  // indices, but the Fabric-facing contract is the table lookup: a future
  // topology (pruned core, link failures) only has to rewrite the tables.
  ea_.resize(static_cast<std::size_t>(n_edges_) * half_);
  ae_.resize(static_cast<std::size_t>(n_aggs_) * half_);
  ac_.resize(static_cast<std::size_t>(n_aggs_) * half_);
  ca_.resize(static_cast<std::size_t>(n_cores_) * pods_);
  for (int e = 0; e < n_edges_; ++e) {
    for (int j = 0; j < half_; ++j) {
      ea_[static_cast<std::size_t>(e) * half_ + j] = base_ea_ + e * half_ + j;
    }
  }
  for (int a = 0; a < n_aggs_; ++a) {
    for (int i = 0; i < half_; ++i) {
      ae_[static_cast<std::size_t>(a) * half_ + i] = base_ae_ + a * half_ + i;
    }
    for (int c2 = 0; c2 < half_; ++c2) {
      ac_[static_cast<std::size_t>(a) * half_ + c2] =
          base_ac_ + a * half_ + c2;
    }
  }
  for (int c = 0; c < n_cores_; ++c) {
    for (int pd = 0; pd < pods_; ++pd) {
      ca_[static_cast<std::size_t>(c) * pods_ + pd] = base_ca_ + c * pods_ + pd;
    }
  }
}

int Topo::hops(int src, int dst) const noexcept {
  if (src == dst) return 0;
  if (kind_ == TopologyKind::kChain) {
    return 1 + std::abs(src / hosts_per_switch_ - dst / hosts_per_switch_);
  }
  const int e_s = src / hosts_per_edge_;
  const int e_d = dst / hosts_per_edge_;
  if (e_s == e_d) return 1;                            // same edge switch
  if (pod_of_edge(e_s) == pod_of_edge(e_d)) return 3;  // edge-agg-edge
  return 5;                                            // via the core
}

int Topo::ecmp_paths(int src, int dst) const noexcept {
  if (src == dst || kind_ == TopologyKind::kChain) return 1;
  const int e_s = src / hosts_per_edge_;
  const int e_d = dst / hosts_per_edge_;
  if (e_s == e_d) return 1;
  if (pod_of_edge(e_s) == pod_of_edge(e_d)) return half_;
  return half_ * half_;
}

int Topo::link_at(int src, int dst, std::uint32_t flow, int i) const noexcept {
  if (i == 0) return src;  // uplink
  if (kind_ == TopologyKind::kChain) {
    const int s0 = src / hosts_per_switch_;
    const int t = dst / hosts_per_switch_;
    const int inter = std::abs(s0 - t);
    if (i == inter + 1) return n_hosts_ + dst;  // downlink
    // i-th transit hop (1-based): rightward walks right_[s0 + i - 1],
    // leftward walks left_[s0 - i] — the exact order the old scratch-path
    // route() pushed, so link reservation order (and timing) is unchanged.
    return s0 < t ? base_right_ + (s0 + i - 1) : base_left_ + (s0 - i);
  }

  const int len = path_len(src, dst);
  if (i == len - 1) return n_hosts_ + dst;  // downlink
  const int e_s = src / hosts_per_edge_;
  const int e_d = dst / hosts_per_edge_;
  const std::uint64_t h = ecmp_hash(src, dst, flow);
  const int j = static_cast<int>(h % static_cast<std::uint64_t>(half_));
  if (len == 4) {
    // Same pod: up to agg j, back down to the destination edge.
    if (i == 1) return ea_[static_cast<std::size_t>(e_s) * half_ + j];
    const int a = pod_of_edge(e_s) * half_ + j;
    return ae_[static_cast<std::size_t>(a) * half_ + (e_d % half_)];
  }
  // Cross pod (len == 6): agg j up to core column c2, down through the
  // destination pod's agg j.
  const int c2 = static_cast<int>((h / static_cast<std::uint64_t>(half_)) %
                                  static_cast<std::uint64_t>(half_));
  switch (i) {
    case 1:
      return ea_[static_cast<std::size_t>(e_s) * half_ + j];
    case 2: {
      const int a_s = pod_of_edge(e_s) * half_ + j;
      return ac_[static_cast<std::size_t>(a_s) * half_ + c2];
    }
    case 3: {
      const int c = j * half_ + c2;
      return ca_[static_cast<std::size_t>(c) * pods_ + pod_of_edge(e_d)];
    }
    default: {
      const int a_d = pod_of_edge(e_d) * half_ + j;
      return ae_[static_cast<std::size_t>(a_d) * half_ + (e_d % half_)];
    }
  }
}

std::vector<int> Topo::path(int src, int dst, std::uint32_t flow) const {
  std::vector<int> out;
  if (src == dst) return out;
  const int len = path_len(src, dst);
  out.reserve(static_cast<std::size_t>(len));
  for (int i = 0; i < len; ++i) out.push_back(link_at(src, dst, flow, i));
  return out;
}

int Topo::level_from(int link) const noexcept {
  if (is_uplink(link)) return 0;
  if (kind_ == TopologyKind::kChain) return 1;  // downlink or transit
  if (is_downlink(link)) return 1;
  if (link < base_ae_) return 1;  // edge -> agg
  if (link < base_ac_) return 2;  // agg -> edge
  if (link < base_ca_) return 2;  // agg -> core
  return 3;                       // core -> agg
}

int Topo::level_to(int link) const noexcept {
  if (is_uplink(link)) return 1;
  if (kind_ == TopologyKind::kChain) {
    return is_downlink(link) ? 0 : 1;
  }
  if (is_downlink(link)) return 0;
  if (link < base_ae_) return 2;  // edge -> agg
  if (link < base_ac_) return 1;  // agg -> edge
  if (link < base_ca_) return 3;  // agg -> core
  return 2;                       // core -> agg
}

}  // namespace fmx::net
