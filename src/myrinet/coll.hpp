// NIC-offloaded collectives: the wire encoding and the tree geometry for
// barrier / broadcast / reduce executed *inside* the NIC control program
// (nic.cpp coll_program). Combining and fan-out forwarding happen
// NIC-to-NIC — the host is interrupted exactly once per operation, at
// completion — which is the FM thesis applied to collectives: every host
// round-trip a tree step avoids is a full software stack traversal saved,
// multiplied across the tree.
//
// Wire format: a kColl packet's payload opens with a CollHeader (real
// bytes, so the fabric CRC genuinely covers it and corruption faults are
// detected, not flagged) followed by `bytes` of operand data — packed
// doubles for the reduction ops, raw bytes for broadcast. Group id, op and
// epoch therefore survive drop/dup/corrupt exactly as well as any data
// packet: collective traffic rides the ordinary go-back-N reliable link.
//
// Tree: deterministic and topology-derived from net::Topo. Members are
// clustered by their first-level switch (chain crossbar / fat-tree edge),
// each cluster's leader is the member nearest the root (the root leads its
// own cluster), leaders form a radix-ary tree ordered by
// (hops-from-root, id), and the remaining members of a cluster attach
// radix-ary under their leader. Combines thus stay inside a crossbar until
// a single partial per switch remains — the same locality argument as the
// NIC-based barrier literature.
//
// The leader level widens adaptively (coll_leader_radix): an inter-cluster
// hop crosses multiple switches — several microseconds — while one more
// serialized child transmit costs a couple of microseconds at most, so the
// leader heap is kept at depth <= 2 by raising its radix to ~sqrt(#leaders)
// when the configured radix would add levels. Intra-cluster edges are one
// crossbar away and keep the configured radix.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/buffer.hpp"
#include "myrinet/topo.hpp"

namespace fmx::net {

/// Collective operation, as carried in the CollHeader. kJoin is the group
/// establishment handshake itself, run through the same up/down state
/// machine as a barrier so membership is confirmed tree-wide before any
/// data-carrying operation can start.
enum class CollOp : std::uint8_t {
  kJoin = 0,
  kBarrier = 1,
  kBcast = 2,
  kReduceSum = 3,
  kReduceMax = 4,
  kAllreduceSum = 5,
  kAllreduceMax = 6,
};

/// Which leg of the tree a packet serves. Join/done are the establishment
/// handshake's up/down legs; combine/fanout carry the data ops.
enum class CollClass : std::uint8_t {
  kJoin = 0,     // up: aggregated join request toward the root
  kCombine = 1,  // up: partial barrier/reduce contribution
  kFanout = 2,   // down: barrier release / bcast data / allreduce result
  kDone = 3,     // down: join confirmation
};

/// Does the op have an up-sweep (children combine toward the root)?
inline bool coll_has_up(CollOp op) noexcept { return op != CollOp::kBcast; }
/// Does the op have a down-sweep (root fans out toward the leaves)?
inline bool coll_has_down(CollOp op) noexcept {
  return op != CollOp::kReduceSum && op != CollOp::kReduceMax;
}

/// Leading bytes of every kColl payload. POD, fixed 16 bytes, memcpy
/// codec like wire::PacketHeader — these are real wire bytes under CRC.
struct CollHeader {
  std::uint32_t group = 0;  ///< collective group id
  std::uint32_t epoch = 0;  ///< per-group operation sequence number
  std::uint8_t cls = 0;     ///< CollClass
  std::uint8_t op = 0;      ///< CollOp
  std::uint16_t reserved = 0;
  std::uint32_t bytes = 0;  ///< operand bytes following the header
};
inline constexpr std::size_t kCollHeaderBytes = 16;
static_assert(sizeof(CollHeader) == kCollHeaderBytes);

inline void coll_store(MutByteSpan dst, const CollHeader& h) {
  std::memcpy(dst.data(), &h, kCollHeaderBytes);
}
/// False if the span is too short to hold a header (malformed packet).
inline bool coll_parse(ByteSpan src, CollHeader& h) {
  if (src.size() < kCollHeaderBytes) return false;
  std::memcpy(&h, src.data(), kCollHeaderBytes);
  return true;
}

/// A node's slice of the collective tree.
struct CollTree {
  int parent = -1;            ///< -1 at the root
  std::vector<int> children;  ///< deterministic order (= fold order)
};

/// Group installation descriptor, identical on every member.
struct CollGroupSpec {
  std::uint32_t id = 0;
  /// Member node ids; the root is members[0]. Must contain the installing
  /// node. The list (content and order) must be identical cluster-wide.
  std::vector<int> members;
  int radix = 4;                ///< tree fan-out knob (>= 1)
  std::size_t max_bytes = 256;  ///< operand-capacity the NIC preallocates
};

/// Effective fan-out of the inter-cluster leader heap: the smallest radix
/// >= the configured one that keeps a heap over `n_clusters` nodes at
/// depth <= 2 (1 + r + r^2 >= n_clusters). Grows ~sqrt(n_clusters), so at
/// scale both the root's serialization and the tree depth grow gently
/// instead of one of them jumping.
int coll_leader_radix(int radix, int n_clusters) noexcept;

/// Tree relation of `self` within `members` over the physical topology
/// (see file comment for the construction). Deterministic: same inputs,
/// same tree, on every node and at every thread count.
CollTree coll_tree(const Topo& topo, const std::vector<int>& members,
                   int radix, int self);

}  // namespace fmx::net
