// Registration (pin-down) cache: the host-side half of the RDMA data
// plane. Before the NIC may DMA directly from/into user memory, the pages
// must be pinned and their translations loaded into the NIC — an expensive
// host operation (RegCacheParams::pin_base + pin_per_page). Registrations
// are therefore cached: a buffer reused across messages hits and pays only
// the lookup, and entries are unpinned lazily, evicted LRU only when the
// pinned-memory budget is exceeded.
//
// The cache is pure bookkeeping plus a cost model — it performs no
// simulated delay itself. acquire() returns the modeled host cost of the
// operation; the caller charges it to its Host ledger and pays it at the
// next sync. Everything is deterministic in the call sequence.
//
// Region semantics:
//  - Ranges are rounded out to page boundaries before lookup.
//  - A hit is an existing region fully covering the request.
//  - A miss pins the request's pages; regions that overlap or abut the new
//    range are coalesced into one (their already-pinned pages are not
//    re-pinned, and their outstanding handles stay valid).
//  - release() drops a use count; entries stay cached (pinned) at zero
//    uses — that is the whole point of a pin-down cache — until eviction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <unordered_map>

#include "myrinet/params.hpp"
#include "sim/time.hpp"

namespace fmx::net {

class RegCache {
 public:
  explicit RegCache(const RegCacheParams& p) : p_(p) {}
  RegCache(const RegCache&) = delete;
  RegCache& operator=(const RegCache&) = delete;

  struct Acquire {
    std::uint64_t handle = 0;  ///< pass to release() when I/O completes
    bool hit = false;
    sim::Ps cost = 0;  ///< modeled host cost (lookup + pin + evict work)
  };

  /// Register (or re-reference) [addr, addr+len). Pins the covering pages
  /// on a miss; bumps the region's use count either way.
  Acquire acquire(const void* addr, std::size_t len);

  /// Drop one use of the region behind `handle`. The region stays pinned
  /// and cached; it only becomes evictable at zero uses.
  void release(std::uint64_t handle);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t coalesces = 0;      ///< regions absorbed by a new range
    std::uint64_t pinned_bytes = 0;   ///< page-rounded bytes currently pinned
    std::uint64_t regions = 0;        ///< live cache entries
  };
  const Stats& stats() const noexcept { return stats_; }
  const RegCacheParams& params() const noexcept { return p_; }

  /// Uses outstanding across all regions (0 = nothing mid-I/O).
  std::uint64_t active_uses() const noexcept { return active_uses_; }

 private:
  struct Region {
    std::uintptr_t end = 0;   // one past the last pinned byte
    std::uint64_t id = 0;     // stable region id (handle target)
    std::uint32_t uses = 0;   // outstanding acquires
    std::uint64_t lru = 0;    // last-touch tick
  };

  std::uint64_t resolve(std::uint64_t handle) const;
  void maybe_evict(sim::Ps* cost);

  RegCacheParams p_;
  std::map<std::uintptr_t, Region> regions_;               // by begin addr
  std::unordered_map<std::uint64_t, std::uintptr_t> by_id_; // id -> begin
  std::unordered_map<std::uint64_t, std::uint64_t> alias_;  // merged ids
  Stats stats_;
  std::uint64_t next_id_ = 1;
  std::uint64_t tick_ = 0;
  std::uint64_t active_uses_ = 0;
};

}  // namespace fmx::net
