// Fault-injection seam for the simulated platform. The myrinet components
// (fabric, NIC, I/O bus) consult an optional FaultInjector at well-defined
// points; the concrete deterministic implementation lives in src/fault/ and
// depends on this layer, not the other way around. A null injector (the
// default everywhere) costs one pointer test per packet.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/time.hpp"

namespace fmx::net {

struct WirePacket;

/// What the fabric should do to one packet at its delivery point. Decisions
/// are made by the injector (which owns all randomness, keyed by a seed) and
/// *applied* by the fabric, so stats and slack-token accounting stay in one
/// place.
struct WireFault {
  bool drop = false;       ///< packet evaporates in the fabric
  bool duplicate = false;  ///< a second copy is delivered after the first
  bool corrupt = false;    ///< flip one payload bit (CRC must catch it)
  std::uint32_t corrupt_pos = 0;  ///< payload byte index to damage
  std::uint8_t corrupt_bit = 0;   ///< bit within that byte
  sim::Ps extra_delay = 0;        ///< hold-back (reordering vs. later packets)
};

class FaultInjector {
 public:
  virtual ~FaultInjector() = default;

  /// Consulted once per packet when it reaches the destination edge of the
  /// fabric (after cut-through latency, before the NIC sees it).
  virtual WireFault on_deliver(const WirePacket& /*pkt*/) { return {}; }

  /// Extra I/O-bus occupancy charged to a transaction issued now (stall
  /// windows: a "hiccuping" bus arbiter or a competing device).
  virtual sim::Ps bus_stall(std::size_t /*bytes*/) { return 0; }

  /// Extra per-packet delay in the NIC send control program (slow sender).
  virtual sim::Ps tx_pacing(int /*nic_id*/) { return 0; }

  /// Extra per-packet delay in the NIC receive control program (slow
  /// receiver: models a host that drains its ring sluggishly, building
  /// back-pressure through SRAM slack and, above, FM credits).
  virtual sim::Ps rx_pacing(int /*nic_id*/) { return 0; }
};

}  // namespace fmx::net
