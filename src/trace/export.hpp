// Trace exporters: Chrome about://tracing JSON, a run-to-run digest for
// golden-trace tests, and the per-message latency breakdown that mirrors
// the paper's Table 2 cost columns.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "trace/trace.hpp"

namespace fmx::trace {

/// Full trace as a Chrome tracing JSON document ({"traceEvents": [...]}).
/// Point events become instants, dma_start/dma_end pairs become complete
/// ("X") slices, and every finished message gets an async span keyed by
/// its message id. Events are sorted by timestamp.
std::string chrome_trace_json(const Tracer& tracer);

/// chrome_trace_json() to a file. Returns false on I/O failure.
bool write_chrome_trace(const Tracer& tracer, const std::string& path);

/// Order-sensitive FNV-1a digest over every retained event's fields.
/// Two runs of a deterministic workload must produce equal digests.
std::uint64_t trace_digest(const Tracer& tracer);

/// Where one message's latency went, all in sim picoseconds. For
/// multi-packet messages the columns describe the pipelined lifetime:
/// `handler` spans first handler run to message completion and therefore
/// overlaps the wire time of trailing packets — that overlap is exactly
/// the layer-interleaving the paper argues for.
struct MessageBreakdown {
  std::uint64_t msg_id = 0;
  std::uint64_t bytes = 0;   // from the msg_done event
  sim::Ps t_start = 0;       // first send_enqueue
  sim::Ps host = 0;          // send_enqueue -> first wire injection
  sim::Ps wire = 0;          // first injection -> first delivery
  sim::Ps queue = 0;         // first delivery -> first handler run
  sim::Ps handler = 0;       // first handler run -> msg_done
  sim::Ps total = 0;         // send_enqueue -> msg_done
};

/// One row per message that both started (send_enqueue) and finished
/// (msg_done) inside the trace, in completion order.
std::vector<MessageBreakdown> per_message_breakdown(const Tracer& tracer);

struct BreakdownSummary {
  std::uint64_t messages = 0;
  double host_us = 0;     // mean, microseconds
  double wire_us = 0;
  double queue_us = 0;
  double handler_us = 0;
  double total_us = 0;
  // End-to-end latency quantiles, extracted from a fixed-bucket
  // trace::Histogram over the per-message totals (bucket-interpolated —
  // see Histogram::quantile). The tail columns are where contention shows
  // long before the mean moves.
  double total_p50_us = 0;
  double total_p99_us = 0;
  double total_p999_us = 0;
};

BreakdownSummary summarize_breakdown(const Tracer& tracer);

/// Render the summary as the bench-table row block used by
/// bench/headline_table and bench/cost_breakdown.
std::string format_breakdown_table(const std::vector<MessageBreakdown>& rows,
                                   std::size_t max_rows = 8);

/// FMX_TRACE=<path> support: value of the env var, or nullptr if unset.
/// Examples/benches call env_trace_path() once to decide whether to
/// enable the tracer and where to dump the JSON on exit.
const char* env_trace_path() noexcept;

}  // namespace fmx::trace
