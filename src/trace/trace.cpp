#include "trace/trace.hpp"

#include <string>

namespace fmx::trace {

const char* to_string(EventType t) noexcept {
  switch (t) {
    case EventType::kSendEnqueue: return "send_enqueue";
    case EventType::kDmaStart:    return "dma_start";
    case EventType::kDmaEnd:      return "dma_end";
    case EventType::kWireHop:     return "wire_hop";
    case EventType::kDeliver:     return "deliver";
    case EventType::kCrcCheck:    return "crc_check";
    case EventType::kHandlerRun:  return "handler_run";
    case EventType::kExtract:     return "extract";
    case EventType::kRetransmit:  return "retransmit";
    case EventType::kDrop:        return "drop";
    case EventType::kMatch:       return "match";
    case EventType::kMsgDone:     return "msg_done";
    case EventType::kRdmaWrite:   return "rdma_write";
    case EventType::kRdmaDone:    return "rdma_done";
    case EventType::kCollSubmit:  return "coll_submit";
    case EventType::kCollCombine: return "coll_combine";
    case EventType::kCollForward: return "coll_forward";
    case EventType::kCollDone:    return "coll_done";
    case EventType::kCount:       break;
  }
  return "unknown";
}

const char* to_string(Layer l) noexcept {
  switch (l) {
    case Layer::kMpi:    return "mpi";
    case Layer::kFm2:    return "fm2";
    case Layer::kFm1:    return "fm1";
    case Layer::kNic:    return "nic";
    case Layer::kFabric: return "fabric";
    case Layer::kOther:  return "other";
    case Layer::kCount:  break;
  }
  return "unknown";
}

void Tracer::enable(std::size_t capacity_events) {
  std::size_t want = (capacity_events + kChunkEvents - 1) / kChunkEvents;
  if (want == 0) want = 1;
  while (chunks_.size() < want) chunks_.push_back(std::make_unique<Chunk>());
  for (std::size_t i = 0; i < type_counters_.size(); ++i) {
    type_counters_[i] = &metrics_.counter(
        std::string("trace.events.") +
        to_string(static_cast<EventType>(i)));
  }
  clear();
  enabled_ = true;
}

void Tracer::clear() noexcept {
  head_chunk_ = head_off_ = 0;
  tail_chunk_ = tail_off_ = 0;
  size_ = 0;
  dropped_ = 0;
}

void Tracer::push(const Event& e) {
  if (size_ == chunks_.size() * kChunkEvents) {
    // Ring full: recycle the oldest chunk wholesale before writing.
    std::size_t lost = kChunkEvents - head_off_;
    size_ -= lost;
    dropped_ += lost;
    head_off_ = 0;
    head_chunk_ = (head_chunk_ + 1) % chunks_.size();
  }
  (*chunks_[tail_chunk_])[tail_off_] = e;
  ++size_;
  type_counters_[static_cast<std::size_t>(e.type)]->add();
  if (++tail_off_ == kChunkEvents) {
    tail_off_ = 0;
    tail_chunk_ = (tail_chunk_ + 1) % chunks_.size();
  }
}

const Event& Tracer::at(std::size_t i) const noexcept {
  std::size_t off = head_off_ + i;
  std::size_t chunk = (head_chunk_ + off / kChunkEvents) % chunks_.size();
  return (*chunks_[chunk])[off % kChunkEvents];
}

std::vector<Event> Tracer::events() const {
  std::vector<Event> out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) out.push_back(at(i));
  return out;
}

std::vector<Event> merge_streams(
    const std::vector<std::vector<Event>>& streams) {
  std::size_t total = 0;
  for (const auto& s : streams) total += s.size();
  std::vector<Event> out;
  out.reserve(total);
  std::vector<std::size_t> cur(streams.size(), 0);
  // K is small (shard count); a linear scan per event beats a heap here
  // and keeps ties resolving in stream order by construction.
  for (std::size_t n = 0; n < total; ++n) {
    std::size_t best = streams.size();
    for (std::size_t k = 0; k < streams.size(); ++k) {
      if (cur[k] >= streams[k].size()) continue;
      if (best == streams.size() ||
          streams[k][cur[k]].t < streams[best][cur[best]].t) {
        best = k;
      }
    }
    out.push_back(streams[best][cur[best]++]);
  }
  return out;
}

}  // namespace fmx::trace
