// Cross-layer event tracer. One Tracer per cluster (owned by net::Fabric)
// records typed events stamped with sim-time, node id, layer tag, and a
// message id threaded through fm1/fm2/mpi/NIC/fabric hook points.
//
// Cost model, matching the paper's discipline about measurement overhead:
//   * Disabled (default): record() is a single predictable branch on a
//     bool — no event storage exists at all, and no simulated time is ever
//     charged (hooks are metadata-only, so traced and untraced runs are
//     bit-identical in simulated behaviour).
//   * Enabled: events go into a ring of fixed-size chunks preallocated by
//     enable(); steady state is allocation-free. When the ring is full the
//     oldest chunk is recycled (dropped_events() counts what was lost).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"
#include "trace/metrics.hpp"

namespace fmx::trace {

enum class EventType : std::uint8_t {
  kSendEnqueue,  // message handed to the NIC send queue  (arg = bytes)
  kDmaStart,     // DMA transfer begins                   (arg = bytes)
  kDmaEnd,       // DMA transfer completes                (arg = bytes)
  kWireHop,      // packet injected onto the fabric       (arg = hop count)
  kDeliver,      // packet arrives in dst NIC wire queue  (arg = bytes)
  kCrcCheck,     // receiver CRC verified                 (arg = 1 ok, 0 bad)
  kHandlerRun,   // receive handler starts/resumes        (arg = bytes avail)
  kExtract,      // fm_extract drains the receive queue   (arg = msgs drained)
  kRetransmit,   // go-back-N resend                      (arg = link seq)
  kDrop,         // packet dropped (fault or CRC/seq)     (arg = reason code)
  kMatch,        // MPI receive matched                   (arg = bytes)
  kMsgDone,      // full message delivered to the app     (arg = bytes)
  kRdmaWrite,    // NIC placed a remote-write chunk       (arg = bytes)
  kRdmaDone,     // registered RDMA target fully written  (arg = total bytes)
  kCollSubmit,   // host submitted a collective op        (arg = operand bytes)
  kCollCombine,  // NIC folded a child's partial          (arg = operand bytes)
  kCollForward,  // NIC forwarded a collective packet     (arg = dst node)
  kCollDone,     // collective completed at this node     (arg = operand bytes)
  kCount,
};

enum class Layer : std::uint8_t {
  kMpi,
  kFm2,
  kFm1,
  kNic,
  kFabric,
  kOther,
  kCount,
};

/// `arg` codes for EventType::kDrop.
inline constexpr std::uint64_t kDropFault = 1;  // injected fault
inline constexpr std::uint64_t kDropCrc = 2;    // CRC mismatch at receiver
inline constexpr std::uint64_t kDropSeq = 3;    // out-of-window link seq

const char* to_string(EventType t) noexcept;
const char* to_string(Layer l) noexcept;

/// One trace record. POD, 32 bytes, stored by value in the ring.
struct Event {
  sim::Ps t = 0;             // sim time of the event
  std::uint64_t msg_id = 0;  // 0 = not attributable to one message
  std::uint64_t arg = 0;     // per-type payload (see EventType)
  std::int16_t node = -1;    // -1 = fabric-wide
  Layer layer = Layer::kOther;
  EventType type = EventType::kCount;
};

/// Deterministic merge of per-shard trace streams from a parallel run
/// (myrinet/parallel_cluster.hpp): each stream is time-nondecreasing, and
/// ties merge in stream order. Shard assignment is fixed per cluster, so
/// the merged sequence is identical at every thread count.
std::vector<Event> merge_streams(
    const std::vector<std::vector<Event>>& streams);

class Tracer {
 public:
  /// Events per ring chunk. Chunks are recycled whole, oldest first.
  static constexpr std::size_t kChunkEvents = 4096;

  explicit Tracer(const sim::Engine& eng) : eng_(&eng) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Preallocate ring storage for ~`capacity_events` and start recording.
  /// Allocation happens here, never in record().
  void enable(std::size_t capacity_events = 1 << 18);
  void disable() noexcept { enabled_ = false; }
  bool enabled() const noexcept { return enabled_; }

  /// Drop all recorded events (storage is kept for reuse).
  void clear() noexcept;

  /// Hot-path hook. Must stay cheap and branch-predictable when disabled:
  /// callers invoke it unconditionally from NIC/fabric/fm inner loops.
  void record(EventType type, Layer layer, int node, std::uint64_t msg_id,
              std::uint64_t arg = 0) {
    if (!enabled_) return;
    push(Event{eng_->now(), msg_id, arg, static_cast<std::int16_t>(node),
               layer, type});
  }

  /// Number of retained events, oldest first under at().
  std::size_t size() const noexcept { return size_; }
  const Event& at(std::size_t i) const noexcept;
  std::uint64_t dropped_events() const noexcept { return dropped_; }

  /// Copy of the retained events in record order (test/export convenience).
  std::vector<Event> events() const;

  MetricsRegistry& metrics() noexcept { return metrics_; }
  const MetricsRegistry& metrics() const noexcept { return metrics_; }

  /// Canonical cross-layer message id: layer tag + endpoints + per-source
  /// sequence number, packed so sender and receiver derive the same id
  /// independently. 12-bit node ids (4096 nodes) and 36-bit sequence
  /// numbers are far beyond anything the simulator instantiates.
  static constexpr std::uint64_t msg_id(int src, int dst, Layer layer,
                                        std::uint64_t seq) noexcept {
    return (static_cast<std::uint64_t>(layer) & 0xF) << 60 |
           (static_cast<std::uint64_t>(src) & 0xFFF) << 48 |
           (static_cast<std::uint64_t>(dst) & 0xFFF) << 36 |
           (seq & 0xFFFFFFFFFull);
  }

 private:
  using Chunk = std::array<Event, kChunkEvents>;

  void push(const Event& e);

  const sim::Engine* eng_;
  bool enabled_ = false;
  std::vector<std::unique_ptr<Chunk>> chunks_;
  std::size_t head_chunk_ = 0;  // chunk holding the oldest event
  std::size_t head_off_ = 0;    // offset of the oldest event in it
  std::size_t tail_chunk_ = 0;  // chunk being filled
  std::size_t tail_off_ = 0;    // next free slot in it
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
  std::array<Counter*, static_cast<std::size_t>(EventType::kCount)>
      type_counters_{};
  MetricsRegistry metrics_;
};

}  // namespace fmx::trace
