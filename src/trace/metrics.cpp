#include "trace/metrics.hpp"

#include <cassert>

namespace fmx::trace {

double Histogram::quantile(double q) const noexcept {
  if (count_ == 0) return 0.0;
  if (q <= 0.0) return static_cast<double>(min());
  if (q >= 1.0) return static_cast<double>(max());
  const double rank = q * static_cast<double>(count_);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const std::uint64_t next = cum + counts_[i];
    if (rank <= static_cast<double>(next)) {
      // Bucket i covers (lower, upper]; interpolate at the rank's position
      // among this bucket's observations. Edges snap to the observed
      // support: the lowest bucket starts at min(), the overflow ends at
      // max(), and no estimate escapes [min, max].
      double lower = i == 0 ? static_cast<double>(min())
                            : static_cast<double>(bounds_[i - 1]);
      double upper = i < bounds_.size() ? static_cast<double>(bounds_[i])
                                        : static_cast<double>(max());
      if (lower < static_cast<double>(min())) lower = static_cast<double>(min());
      if (upper > static_cast<double>(max())) upper = static_cast<double>(max());
      if (upper < lower) upper = lower;
      const double frac = (rank - static_cast<double>(cum)) /
                          static_cast<double>(counts_[i]);
      return lower + (upper - lower) * frac;
    }
    cum = next;
  }
  return static_cast<double>(max());
}

void Histogram::merge(const Histogram& other) noexcept {
  assert(bounds_ == other.bounds_ && "histogram merge needs equal buckets");
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.count_ != 0) {
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
}

std::vector<std::uint64_t> latency_bounds_ps() {
  std::vector<std::uint64_t> bounds;
  bounds.reserve(112);
  // 2^(1/4) steps, kept integral (and strictly increasing) by rounding.
  double b = 1e3;  // 1 ns
  while (b < 1.5e11) {  // ~134 ms; slower observations hit the overflow
    const auto v = static_cast<std::uint64_t>(b);
    if (bounds.empty() || v > bounds.back()) bounds.push_back(v);
    b *= 1.189207115002721;
  }
  return bounds;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  auto it = owned_by_name_.find(name);
  if (it == owned_by_name_.end()) {
    Counter& c = owned_.emplace_back();
    it = owned_by_name_.emplace(name, &c).first;
    views_[name] = c.cell();
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<std::uint64_t> bounds) {
  auto it = hists_.find(name);
  if (it == hists_.end()) {
    it = hists_.emplace(name, Histogram(std::move(bounds))).first;
  }
  return it->second;
}

void MetricsRegistry::expose(const std::string& name,
                             const std::uint64_t* value) {
  views_[name] = value;
}

std::optional<std::uint64_t> MetricsRegistry::value(
    std::string_view name) const {
  auto it = views_.find(name);
  if (it == views_.end()) return std::nullopt;
  return *it->second;
}

const Histogram* MetricsRegistry::find_histogram(std::string_view name) const {
  auto it = hists_.find(name);
  return it == hists_.end() ? nullptr : &it->second;
}

std::vector<std::pair<std::string, std::uint64_t>> MetricsRegistry::snapshot()
    const {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(views_.size());
  for (const auto& [name, cell] : views_) out.emplace_back(name, *cell);
  return out;
}

}  // namespace fmx::trace
