#include "trace/metrics.hpp"

namespace fmx::trace {

Counter& MetricsRegistry::counter(const std::string& name) {
  auto it = owned_by_name_.find(name);
  if (it == owned_by_name_.end()) {
    Counter& c = owned_.emplace_back();
    it = owned_by_name_.emplace(name, &c).first;
    views_[name] = c.cell();
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<std::uint64_t> bounds) {
  auto it = hists_.find(name);
  if (it == hists_.end()) {
    it = hists_.emplace(name, Histogram(std::move(bounds))).first;
  }
  return it->second;
}

void MetricsRegistry::expose(const std::string& name,
                             const std::uint64_t* value) {
  views_[name] = value;
}

std::optional<std::uint64_t> MetricsRegistry::value(
    std::string_view name) const {
  auto it = views_.find(name);
  if (it == views_.end()) return std::nullopt;
  return *it->second;
}

const Histogram* MetricsRegistry::find_histogram(std::string_view name) const {
  auto it = hists_.find(name);
  return it == hists_.end() ? nullptr : &it->second;
}

std::vector<std::pair<std::string, std::uint64_t>> MetricsRegistry::snapshot()
    const {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(views_.size());
  for (const auto& [name, cell] : views_) out.emplace_back(name, *cell);
  return out;
}

}  // namespace fmx::trace
