#include "trace/export.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

namespace fmx::trace {
namespace {

// One JSON line queued for emission; sorted by (ts, seq) so the file is
// monotonic in ts even though "X" slices are only known at their end.
struct Line {
  sim::Ps ts;
  std::size_t seq;
  std::string json;
};

std::string esc_id(std::uint64_t id) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%llx",
                static_cast<unsigned long long>(id));
  return buf;
}

int event_pid(const Event& e) { return e.node >= 0 ? e.node : 1000; }

void append_common(std::ostringstream& os, const Event& e) {
  os << "\"ts\":" << sim::to_us(e.t) << ",\"pid\":" << event_pid(e)
     << ",\"tid\":" << static_cast<int>(e.layer);
}

struct MsgSpan {
  bool started = false;
  bool done = false;
  sim::Ps t_first = 0;
  sim::Ps t_done = 0;
  int first_node = 0;
  int done_node = 0;
  Layer first_layer = Layer::kOther;
  std::uint64_t bytes = 0;
};

}  // namespace

std::string chrome_trace_json(const Tracer& tracer) {
  std::vector<Event> evs = tracer.events();

  // Pass 1: message lifetimes (for async spans) and node/layer presence
  // (for metadata name records).
  std::map<std::uint64_t, MsgSpan> msgs;
  std::map<int, bool> pids;
  for (const Event& e : evs) {
    pids[event_pid(e)] = true;
    if (e.msg_id == 0) continue;
    MsgSpan& m = msgs[e.msg_id];
    if (!m.started) {
      m.started = true;
      m.t_first = e.t;
      m.first_node = event_pid(e);
      m.first_layer = e.layer;
    }
    if (e.type == EventType::kMsgDone) {
      m.done = true;
      m.t_done = e.t;
      m.done_node = event_pid(e);
      m.bytes = e.arg;
    }
  }

  std::vector<Line> lines;
  lines.reserve(evs.size() + 2 * msgs.size() + 8 * pids.size());
  std::size_t seq = 0;
  auto emit = [&](sim::Ps ts, std::string json) {
    lines.push_back(Line{ts, seq++, std::move(json)});
  };

  // Metadata: one process per node (plus the fabric), one thread per layer.
  for (const auto& [pid, _] : pids) {
    std::ostringstream os;
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":\""
       << (pid == 1000 ? std::string("fabric")
                       : "node " + std::to_string(pid))
       << "\"}}";
    emit(0, os.str());
    for (int l = 0; l < static_cast<int>(Layer::kCount); ++l) {
      std::ostringstream ts;
      ts << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << pid
         << ",\"tid\":" << l << ",\"args\":{\"name\":\""
         << to_string(static_cast<Layer>(l)) << "\"}}";
      emit(0, ts.str());
    }
  }

  // Pass 2: per-event records. DMA start/end pairs fold into "X" slices
  // keyed by (node, msg_id); everything else is an instant.
  std::map<std::pair<int, std::uint64_t>, Event> dma_open;
  for (const Event& e : evs) {
    if (e.type == EventType::kDmaStart) {
      dma_open[{e.node, e.msg_id}] = e;
      continue;
    }
    if (e.type == EventType::kDmaEnd) {
      auto it = dma_open.find({e.node, e.msg_id});
      if (it != dma_open.end()) {
        const Event& s = it->second;
        std::ostringstream os;
        os << "{\"name\":\"dma\",\"ph\":\"X\",";
        append_common(os, s);
        os << ",\"dur\":" << sim::to_us(e.t - s.t) << ",\"args\":{\"bytes\":"
           << e.arg << ",\"msg\":\"" << esc_id(e.msg_id) << "\"}}";
        emit(s.t, os.str());
        dma_open.erase(it);
        continue;
      }
      // Unmatched end (start fell off the ring): fall through as instant.
    }
    std::ostringstream os;
    os << "{\"name\":\"" << to_string(e.type) << "\",\"ph\":\"i\",\"s\":\"t\",";
    append_common(os, e);
    os << ",\"args\":{\"arg\":" << e.arg << ",\"msg\":\"" << esc_id(e.msg_id)
       << "\"}}";
    emit(e.t, os.str());
  }
  // DMA slices still open at dump time surface as instants so nothing is
  // silently lost.
  for (const auto& [key, s] : dma_open) {
    std::ostringstream os;
    os << "{\"name\":\"dma_start\",\"ph\":\"i\",\"s\":\"t\",";
    append_common(os, s);
    os << ",\"args\":{\"arg\":" << s.arg << ",\"msg\":\"" << esc_id(s.msg_id)
       << "\"}}";
    emit(s.t, os.str());
  }

  // Async span per finished message: b on the first event's process, e on
  // the completing one. Chrome pairs them by (cat, id).
  for (const auto& [id, m] : msgs) {
    if (!m.started || !m.done) continue;
    std::ostringstream b;
    b << "{\"name\":\"message\",\"cat\":\"msg\",\"ph\":\"b\",\"id\":\""
      << esc_id(id) << "\",\"ts\":" << sim::to_us(m.t_first)
      << ",\"pid\":" << m.first_node
      << ",\"tid\":" << static_cast<int>(m.first_layer) << "}";
    emit(m.t_first, b.str());
    std::ostringstream en;
    en << "{\"name\":\"message\",\"cat\":\"msg\",\"ph\":\"e\",\"id\":\""
       << esc_id(id) << "\",\"ts\":" << sim::to_us(m.t_done)
       << ",\"pid\":" << m.done_node
       << ",\"tid\":" << static_cast<int>(m.first_layer)
       << ",\"args\":{\"bytes\":" << m.bytes << "}}";
    emit(m.t_done, en.str());
  }

  std::stable_sort(lines.begin(), lines.end(),
                   [](const Line& a, const Line& b) {
                     if (a.ts != b.ts) return a.ts < b.ts;
                     return a.seq < b.seq;
                   });

  std::ostringstream out;
  out << "{\"traceEvents\":[\n";
  for (std::size_t i = 0; i < lines.size(); ++i) {
    out << lines[i].json;
    if (i + 1 < lines.size()) out << ",";
    out << "\n";
  }
  out << "],\"displayTimeUnit\":\"ns\"}\n";
  return out.str();
}

bool write_chrome_trace(const Tracer& tracer, const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  f << chrome_trace_json(tracer);
  return static_cast<bool>(f);
}

std::uint64_t trace_digest(const Tracer& tracer) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 0x100000001b3ull;
    }
  };
  for (std::size_t i = 0; i < tracer.size(); ++i) {
    const Event& e = tracer.at(i);
    mix(e.t);
    mix(e.msg_id);
    mix(e.arg);
    mix(static_cast<std::uint64_t>(static_cast<std::uint16_t>(e.node)));
    mix(static_cast<std::uint64_t>(e.layer));
    mix(static_cast<std::uint64_t>(e.type));
  }
  return h;
}

std::vector<MessageBreakdown> per_message_breakdown(const Tracer& tracer) {
  struct Acc {
    sim::Ps enq = 0, inject = 0, deliver = 0, handler = 0;
    bool has_enq = false, has_inject = false, has_deliver = false,
         has_handler = false;
  };
  std::map<std::uint64_t, Acc> accs;
  std::vector<MessageBreakdown> rows;
  for (std::size_t i = 0; i < tracer.size(); ++i) {
    const Event& e = tracer.at(i);
    if (e.msg_id == 0) continue;
    Acc& a = accs[e.msg_id];
    switch (e.type) {
      case EventType::kSendEnqueue:
        if (!a.has_enq) { a.enq = e.t; a.has_enq = true; }
        break;
      case EventType::kWireHop:
        if (!a.has_inject) { a.inject = e.t; a.has_inject = true; }
        break;
      case EventType::kDeliver:
        if (!a.has_deliver) { a.deliver = e.t; a.has_deliver = true; }
        break;
      case EventType::kHandlerRun:
        if (!a.has_handler) { a.handler = e.t; a.has_handler = true; }
        break;
      case EventType::kMsgDone: {
        if (!a.has_enq) break;  // started before the trace window
        MessageBreakdown r;
        r.msg_id = e.msg_id;
        r.bytes = e.arg;
        r.t_start = a.enq;
        r.total = e.t - a.enq;
        if (a.has_inject) r.host = a.inject - a.enq;
        if (a.has_inject && a.has_deliver) r.wire = a.deliver - a.inject;
        if (a.has_deliver && a.has_handler) r.queue = a.handler - a.deliver;
        if (a.has_handler) r.handler = e.t - a.handler;
        rows.push_back(r);
        accs.erase(e.msg_id);
        break;
      }
      default:
        break;
    }
  }
  return rows;
}

BreakdownSummary summarize_breakdown(const Tracer& tracer) {
  BreakdownSummary s;
  auto rows = per_message_breakdown(tracer);
  if (rows.empty()) return s;
  double host = 0, wire = 0, queue = 0, handler = 0, total = 0;
  Histogram totals(latency_bounds_ps());
  for (const MessageBreakdown& r : rows) {
    host += sim::to_us(r.host);
    wire += sim::to_us(r.wire);
    queue += sim::to_us(r.queue);
    handler += sim::to_us(r.handler);
    total += sim::to_us(r.total);
    totals.observe(static_cast<std::uint64_t>(r.total));
  }
  double n = static_cast<double>(rows.size());
  s.messages = rows.size();
  s.host_us = host / n;
  s.wire_us = wire / n;
  s.queue_us = queue / n;
  s.handler_us = handler / n;
  s.total_us = total / n;
  s.total_p50_us = totals.quantile(0.50) / 1e6;
  s.total_p99_us = totals.quantile(0.99) / 1e6;
  s.total_p999_us = totals.quantile(0.999) / 1e6;
  return s;
}

std::string format_breakdown_table(const std::vector<MessageBreakdown>& rows,
                                   std::size_t max_rows) {
  std::ostringstream os;
  char buf[160];
  std::snprintf(buf, sizeof buf, "  %-18s %8s %9s %9s %9s %9s %9s\n",
                "msg id", "bytes", "host us", "wire us", "queue us",
                "handler us", "total us");
  os << buf;
  std::size_t n = std::min(rows.size(), max_rows);
  for (std::size_t i = 0; i < n; ++i) {
    const MessageBreakdown& r = rows[i];
    std::snprintf(buf, sizeof buf,
                  "  %-18s %8llu %9.3f %9.3f %9.3f %9.3f %9.3f\n",
                  esc_id(r.msg_id).c_str(),
                  static_cast<unsigned long long>(r.bytes),
                  sim::to_us(r.host), sim::to_us(r.wire), sim::to_us(r.queue),
                  sim::to_us(r.handler), sim::to_us(r.total));
    os << buf;
  }
  if (rows.size() > n) {
    std::snprintf(buf, sizeof buf, "  ... %zu more messages\n",
                  rows.size() - n);
    os << buf;
  }
  return os.str();
}

const char* env_trace_path() noexcept {
  const char* p = std::getenv("FMX_TRACE");
  return (p && *p) ? p : nullptr;
}

}  // namespace fmx::trace
