// Metrics registry: monotonic counters and fixed-bucket histograms,
// queryable by name from tests and benches.
//
// Two kinds of entries:
//   * Owned counters/histograms, created on first use via counter() /
//     histogram(). Incrementing one is a single add — cheap enough to leave
//     on unconditionally.
//   * Exposed views: a name bound to an externally owned std::uint64_t (an
//     existing Stats field, a CostLedger cell, a BufferPool counter). The
//     registry never writes through a view; it only reads at query time, so
//     exposing a hot counter costs the hot path nothing.
//
// The Counter type itself is header-only and dependency-free so low layers
// (sim::CostLedger) can use it as their storage cell while the registry —
// the query surface — lives up here in the trace library.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace fmx::trace {

/// Monotonic counter cell. The value is public on purpose: it is the
/// canonical storage for whoever owns the counter, and `cell()` lets the
/// owner expose it in a MetricsRegistry as a read-only view.
struct Counter {
  std::uint64_t value = 0;

  void add(std::uint64_t d = 1) noexcept { value += d; }
  const std::uint64_t* cell() const noexcept { return &value; }
};

/// Fixed-bucket histogram: counts per bucket i are observations with
/// v <= bounds[i]; one implicit overflow bucket catches the rest. Bucket
/// layout is fixed at construction so observe() never allocates.
class Histogram {
 public:
  explicit Histogram(std::vector<std::uint64_t> upper_bounds)
      : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1, 0) {}

  void observe(std::uint64_t v) noexcept {
    // First bucket with v <= bounds_[i], else the overflow bucket. Binary
    // search: fine-grained latency layouts run to ~100 buckets, and a
    // linear scan there would tax every data-path observation.
    const std::size_t i = static_cast<std::size_t>(
        std::lower_bound(bounds_.begin(), bounds_.end(), v) -
        bounds_.begin());
    ++counts_[i];
    ++count_;
    sum_ += v;
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }

  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t sum() const noexcept { return sum_; }
  double mean() const noexcept {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) /
                             static_cast<double>(count_);
  }
  /// Smallest / largest observed value (0 when empty). Tracked exactly so
  /// quantile() can interpolate the open-ended overflow bucket and clamp
  /// the first bucket to the data's real support.
  std::uint64_t min() const noexcept { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const noexcept { return count_ == 0 ? 0 : max_; }
  const std::vector<std::uint64_t>& bounds() const noexcept {
    return bounds_;
  }
  /// counts()[i] pairs with bounds()[i]; counts().back() is the overflow.
  const std::vector<std::uint64_t>& counts() const noexcept {
    return counts_;
  }

  /// q-quantile estimate (q in [0, 1]) with linear interpolation inside
  /// the covering bucket, Prometheus-style: rank q*count is located in the
  /// cumulative counts; the bucket's [lower, upper] range is interpolated
  /// at the rank's fractional position. The first bucket's lower edge is
  /// the observed min, the overflow bucket's upper edge the observed max,
  /// and the result is clamped to [min, max] — so quantiles are exact for
  /// single-bucket data and never invent values outside the support.
  double quantile(double q) const noexcept;

  /// Fold another histogram with identical bounds into this one (per-shard
  /// histograms merge into a cluster-wide view). Bounds must match.
  void merge(const Histogram& other) noexcept;

  /// Zero all counts, keeping the bucket layout (warmup-wave discard).
  void reset() noexcept {
    for (auto& c : counts_) c = 0;
    count_ = 0;
    sum_ = 0;
    min_ = ~std::uint64_t{0};
    max_ = 0;
  }

 private:
  std::vector<std::uint64_t> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~std::uint64_t{0};
  std::uint64_t max_ = 0;
};

/// Standard latency bucket layout: log-spaced bounds in picoseconds, four
/// buckets per octave from 1 ns to ~134 ms (~110 buckets). Within-bucket
/// interpolation error is therefore bounded by ~19% of the value — tight
/// enough for p999 reporting while keeping observe() at a 7-compare binary
/// search. Use the same layout everywhere quantiles must merge.
std::vector<std::uint64_t> latency_bounds_ps();

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Owned counter, created on first use. Pointer-stable for the life of
  /// the registry, so hot paths may cache the reference.
  Counter& counter(const std::string& name);

  /// Owned histogram with the given bucket bounds, created on first use
  /// (bounds of an existing name are left untouched).
  Histogram& histogram(const std::string& name,
                       std::vector<std::uint64_t> bounds);

  /// Bind `name` to an externally owned cell (Stats field, ledger cell).
  /// Re-exposing a name rebinds it — endpoints recreated on one node in a
  /// test simply take the name over.
  void expose(const std::string& name, const std::uint64_t* value);

  /// Current value of a counter or exposed view; nullopt if unknown.
  std::optional<std::uint64_t> value(std::string_view name) const;
  const Histogram* find_histogram(std::string_view name) const;

  /// All counters and views, sorted by name (std::map order).
  std::vector<std::pair<std::string, std::uint64_t>> snapshot() const;

 private:
  std::map<std::string, const std::uint64_t*, std::less<>> views_;
  std::map<std::string, Counter*, std::less<>> owned_by_name_;
  std::deque<Counter> owned_;  // deque: stable addresses on growth
  std::map<std::string, Histogram, std::less<>> hists_;
};

}  // namespace fmx::trace
