// Shmem-FM: a one-sided put/get global-address-space API over FM 2.x
// (paper §4.2: "we have implemented other APIs, including Shmem Put/Get and
// Global Arrays"). Each PE owns a symmetric heap addressed by offset; puts
// scatter straight into the target heap via the FM 2.x stream (the handler
// receives payload directly at heap+offset — no staging), gets are
// request/reply, and a fetch-add gives a remote atomic.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "fm2/fm2.hpp"

namespace fmx::shmem {

struct Config {
  std::size_t heap_bytes = 1 << 20;
  fm2::Config fm;
};

class ShmemCtx {
 public:
  /// Standalone: owns its FM endpoint.
  ShmemCtx(net::Cluster& cluster, int node_id, Config cfg = {});
  /// Layered: share one FM endpoint per process with other libraries.
  explicit ShmemCtx(fm2::Endpoint& shared, Config cfg = {});

  int pe() const noexcept { return ep_.id(); }
  int n_pes() const noexcept { return ep_.cluster_size(); }
  MutByteSpan heap() noexcept { return MutByteSpan{heap_}; }

  /// One-sided write of `src` into PE `pe`'s heap at `dst_off`.
  /// Completes locally; use quiet() for remote completion.
  sim::Task<void> put(int pe, std::size_t dst_off, ByteSpan src);
  /// One-sided read of `dst.size()` bytes from PE `pe`'s heap at `src_off`.
  sim::Task<void> get(int pe, std::size_t src_off, MutByteSpan dst);
  /// Block until all our outstanding puts are remotely complete (acked).
  sim::Task<void> quiet();
  /// Remote atomic: old = heap[off]; heap[off] += delta; return old.
  sim::Task<std::int64_t> fetch_add(int pe, std::size_t off,
                                    std::int64_t delta);
  /// Remote accumulate: element-wise += of doubles at `dst_off`.
  sim::Task<void> accumulate(int pe, std::size_t dst_off,
                             std::span<const double> src);
  /// Drive progress (targets must poll, as in FM-based shmem).
  sim::Task<void> poll_until(const std::function<bool()>& done) {
    return ep_.poll_until(done);
  }
  /// Wake a sleeping poll_until (termination nudge for SPMD servers).
  void kick() { ep_.kick(); }

  fm2::Endpoint& fm() noexcept { return ep_; }

  struct Stats {
    std::uint64_t puts = 0;
    std::uint64_t gets = 0;
    std::uint64_t fadds = 0;
    std::uint64_t accs = 0;
  };
  const Stats& stats() const noexcept { return stats_; }

 private:
  enum class Op : std::uint16_t {
    kPut = 1, kPutAck = 2, kGet = 3, kGetReply = 4,
    kFadd = 5, kFaddReply = 6, kAcc = 7,
  };
  struct Header {
    std::uint16_t op = 0;
    std::uint16_t pad = 0;
    std::uint32_t bytes = 0;
    std::uint64_t offset = 0;
    std::uint64_t req_id = 0;
    std::int64_t value = 0;  // fetch-add delta / reply value
  };
  static_assert(sizeof(Header) == 32);

  struct PendingGet {
    std::byte* dst = nullptr;
    bool done = false;
  };
  struct PendingFadd {
    std::int64_t value = 0;
    bool done = false;
  };

  static constexpr fm2::HandlerId kShmemHandler = 3;
  fm2::HandlerTask on_message(fm2::RecvStream& s, int src);
  sim::Task<void> send_header_only(int pe, const Header& h);

  std::unique_ptr<fm2::Endpoint> owned_;
  fm2::Endpoint& ep_;
  Config cfg_;
  Bytes heap_;
  std::uint64_t next_req_ = 1;
  std::uint64_t puts_issued_ = 0;
  std::uint64_t puts_acked_ = 0;
  std::unordered_map<std::uint64_t, PendingGet> gets_;
  std::unordered_map<std::uint64_t, PendingFadd> fadds_;
  Stats stats_;
};

}  // namespace fmx::shmem
