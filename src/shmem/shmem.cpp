#include "shmem/shmem.hpp"

#include <cassert>
#include <cstring>
#include <memory>
#include <stdexcept>

namespace fmx::shmem {

using sim::Cost;

ShmemCtx::ShmemCtx(net::Cluster& cluster, int node_id, Config cfg)
    : owned_(std::make_unique<fm2::Endpoint>(cluster, node_id, cfg.fm)),
      ep_(*owned_),
      cfg_(cfg),
      heap_(cfg.heap_bytes) {
  ep_.register_handler(kShmemHandler, [this](fm2::RecvStream& s, int src) {
    return on_message(s, src);
  });
}

ShmemCtx::ShmemCtx(fm2::Endpoint& shared, Config cfg)
    : ep_(shared), cfg_(cfg), heap_(cfg.heap_bytes) {
  ep_.register_handler(kShmemHandler, [this](fm2::RecvStream& s, int src) {
    return on_message(s, src);
  });
}

sim::Task<void> ShmemCtx::send_header_only(int pe, const Header& h) {
  co_await ep_.send(pe, kShmemHandler, as_bytes_of(h));
}

sim::Task<void> ShmemCtx::put(int pe, std::size_t dst_off, ByteSpan src) {
  if (dst_off + src.size() > cfg_.heap_bytes) {
    throw std::out_of_range("shmem: put beyond heap");
  }
  auto& host = ep_.host();
  host.charge(Cost::kCall, sim::ns(300));
  ++stats_.puts;
  ++puts_issued_;
  Header h;
  h.op = static_cast<std::uint16_t>(Op::kPut);
  h.bytes = static_cast<std::uint32_t>(src.size());
  h.offset = dst_off;
  const ByteSpan pieces[] = {as_bytes_of(h), src};
  co_await ep_.send_gather(pe, kShmemHandler, pieces);
}

sim::Task<void> ShmemCtx::quiet() {
  co_await ep_.poll_until([this] { return puts_acked_ == puts_issued_; });
}

sim::Task<void> ShmemCtx::get(int pe, std::size_t src_off, MutByteSpan dst) {
  auto& host = ep_.host();
  host.charge(Cost::kCall, sim::ns(300));
  ++stats_.gets;
  std::uint64_t id = next_req_++;
  gets_[id] = PendingGet{dst.data(), false};
  Header h;
  h.op = static_cast<std::uint16_t>(Op::kGet);
  h.bytes = static_cast<std::uint32_t>(dst.size());
  h.offset = src_off;
  h.req_id = id;
  co_await send_header_only(pe, h);
  co_await ep_.poll_until([this, id] { return gets_.at(id).done; });
  gets_.erase(id);
}

sim::Task<std::int64_t> ShmemCtx::fetch_add(int pe, std::size_t off,
                                            std::int64_t delta) {
  auto& host = ep_.host();
  host.charge(Cost::kCall, sim::ns(300));
  ++stats_.fadds;
  std::uint64_t id = next_req_++;
  fadds_[id] = PendingFadd{};
  Header h;
  h.op = static_cast<std::uint16_t>(Op::kFadd);
  h.offset = off;
  h.req_id = id;
  h.value = delta;
  co_await send_header_only(pe, h);
  co_await ep_.poll_until([this, id] { return fadds_.at(id).done; });
  std::int64_t v = fadds_.at(id).value;
  fadds_.erase(id);
  co_return v;
}

sim::Task<void> ShmemCtx::accumulate(int pe, std::size_t dst_off,
                                     std::span<const double> src) {
  auto& host = ep_.host();
  host.charge(Cost::kCall, sim::ns(300));
  ++stats_.accs;
  ++puts_issued_;  // completion tracked like a put
  Header h;
  h.op = static_cast<std::uint16_t>(Op::kAcc);
  h.bytes = static_cast<std::uint32_t>(src.size_bytes());
  h.offset = dst_off;
  const ByteSpan pieces[] = {
      as_bytes_of(h),
      ByteSpan{reinterpret_cast<const std::byte*>(src.data()),
               src.size_bytes()}};
  co_await ep_.send_gather(pe, kShmemHandler, pieces);
}

fm2::HandlerTask ShmemCtx::on_message(fm2::RecvStream& s, int src) {
  auto& host = ep_.host();
  Header h;
  co_await s.receive(&h, sizeof(h));
  host.charge(Cost::kHeader, sim::ns(150));

  switch (static_cast<Op>(h.op)) {
    case Op::kPut: {
      assert(h.offset + h.bytes <= heap_.size());
      // One-sided delivery: payload lands directly in the heap.
      if (h.bytes > 0) {
        co_await s.receive(heap_.data() + h.offset, h.bytes);
      }
      Header ack;
      ack.op = static_cast<std::uint16_t>(Op::kPutAck);
      ep_.defer([this, src, ack]() -> sim::Task<void> {
        co_await send_header_only(src, ack);
      });
      break;
    }
    case Op::kPutAck:
      ++puts_acked_;
      break;
    case Op::kGet: {
      // Reply with the requested heap slice (deferred: handlers only
      // receive; the reply send happens right after this extract).
      Header rep;
      rep.op = static_cast<std::uint16_t>(Op::kGetReply);
      rep.bytes = h.bytes;
      rep.req_id = h.req_id;
      std::size_t off = h.offset;
      std::uint32_t n = h.bytes;
      ep_.defer([this, src, rep, off, n]() -> sim::Task<void> {
        const ByteSpan pieces[] = {
            as_bytes_of(rep),
            ByteSpan{heap_.data() + off, n}};
        co_await ep_.send_gather(src, kShmemHandler, pieces);
      });
      break;
    }
    case Op::kGetReply: {
      PendingGet& pg = gets_.at(h.req_id);
      if (h.bytes > 0) co_await s.receive(pg.dst, h.bytes);
      pg.done = true;
      break;
    }
    case Op::kFadd: {
      assert(h.offset + sizeof(std::int64_t) <= heap_.size());
      std::int64_t old;
      std::memcpy(&old, heap_.data() + h.offset, sizeof(old));
      std::int64_t neu = old + h.value;
      std::memcpy(heap_.data() + h.offset, &neu, sizeof(neu));
      host.charge(Cost::kOther, sim::ns(100));
      Header rep;
      rep.op = static_cast<std::uint16_t>(Op::kFaddReply);
      rep.req_id = h.req_id;
      rep.value = old;
      ep_.defer([this, src, rep]() -> sim::Task<void> {
        co_await send_header_only(src, rep);
      });
      break;
    }
    case Op::kFaddReply: {
      PendingFadd& pf = fadds_.at(h.req_id);
      pf.value = h.value;
      pf.done = true;
      break;
    }
    case Op::kAcc: {
      assert(h.offset + h.bytes <= heap_.size());
      Bytes tmp(h.bytes);
      if (h.bytes > 0) co_await s.receive(MutByteSpan{tmp});
      std::size_t n = h.bytes / sizeof(double);
      const double* in = reinterpret_cast<const double*>(tmp.data());
      double* out = reinterpret_cast<double*>(heap_.data() + h.offset);
      for (std::size_t i = 0; i < n; ++i) out[i] += in[i];
      host.charge(Cost::kOther, sim::ns(10) * n);
      Header ack;
      ack.op = static_cast<std::uint16_t>(Op::kPutAck);
      ep_.defer([this, src, ack]() -> sim::Task<void> {
        co_await send_header_only(src, ack);
      });
      break;
    }
    default:
      throw std::runtime_error("shmem: unknown op");
  }
}

}  // namespace fmx::shmem
