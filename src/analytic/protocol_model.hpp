// Closed-form protocol performance models (paper §1-§2).
// Figure 1 plots delivered bandwidth for 100 Mbit and 1 Gbit Ethernet under
// a fixed 125 us per-packet protocol-processing overhead: the model that
// motivates low-overhead messaging layers in the first place.
#pragma once

#include <cstddef>

namespace fmx::analytic {

/// Delivered bandwidth (bytes/s) for messages of `msg_bytes` over a link of
/// `link_bits_per_sec`, paying `overhead_sec` of fixed software overhead per
/// message:  BW(s) = s / (o + 8 s / B).
double delivered_bandwidth(std::size_t msg_bytes, double link_bits_per_sec,
                           double overhead_sec);

/// The half-power message size N1/2 for the same model: the size at which
/// half of the asymptotic link bandwidth is delivered. For BW(s) above this
/// is exactly  N1/2 = o * B / 8.
double half_power_size(double link_bits_per_sec, double overhead_sec);

/// Effective per-message time (seconds) under the fixed+per-byte model.
double message_time(std::size_t msg_bytes, double link_bits_per_sec,
                    double overhead_sec);

/// Fixed 125 us/packet overhead used in Figure 1.
constexpr double kFig1OverheadSec = 125e-6;
constexpr double k100MbitPerSec = 100e6;
constexpr double k1GbitPerSec = 1e9;

}  // namespace fmx::analytic
