#include "analytic/protocol_model.hpp"

namespace fmx::analytic {

double message_time(std::size_t msg_bytes, double link_bits_per_sec,
                    double overhead_sec) {
  return overhead_sec +
         8.0 * static_cast<double>(msg_bytes) / link_bits_per_sec;
}

double delivered_bandwidth(std::size_t msg_bytes, double link_bits_per_sec,
                           double overhead_sec) {
  if (msg_bytes == 0) return 0.0;
  return static_cast<double>(msg_bytes) /
         message_time(msg_bytes, link_bits_per_sec, overhead_sec);
}

double half_power_size(double link_bits_per_sec, double overhead_sec) {
  return overhead_sec * link_bits_per_sec / 8.0;
}

}  // namespace fmx::analytic
