// MPI message matching: posted-receive queue and unexpected-message queue
// with (source, tag) matching, wildcards, and MPI's FIFO ordering rules.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>

#include "common/buffer.hpp"

namespace fmx::mpi {

constexpr int kAnySource = -1;
constexpr int kAnyTag = -1;

struct Status {
  int source = -1;
  int tag = -1;
  std::size_t count = 0;
};

/// Shared completion state behind a Request handle.
struct RequestState {
  bool done = false;
  Status status;
};

class Request {
 public:
  Request() = default;
  explicit Request(std::shared_ptr<RequestState> st) : st_(std::move(st)) {}
  bool valid() const noexcept { return st_ != nullptr; }
  bool done() const noexcept { return st_ && st_->done; }
  const Status& status() const { return st_->status; }
  RequestState* state() noexcept { return st_.get(); }

 private:
  std::shared_ptr<RequestState> st_;
};

struct PostedRecv {
  PostedRecv() = default;
  PostedRecv(std::byte* buf_, std::size_t cap_, int src_, int tag_,
             std::shared_ptr<RequestState> req_)
      : buf(buf_), cap(cap_), src(src_), tag(tag_), req(std::move(req_)) {}

  std::byte* buf = nullptr;
  std::size_t cap = 0;
  int src = kAnySource;
  int tag = kAnyTag;
  std::shared_ptr<RequestState> req;
};

struct UnexpectedMsg {
  UnexpectedMsg() = default;
  UnexpectedMsg(int src_, int tag_, Bytes data_)
      : src(src_), tag(tag_), data(std::move(data_)) {}

  int src = -1;
  int tag = -1;
  Bytes data;
};

inline bool matches(int want_src, int want_tag, int src, int tag) {
  return (want_src == kAnySource || want_src == src) &&
         (want_tag == kAnyTag || want_tag == tag);
}

/// The two queues. Purely local bookkeeping — the caller charges the host
/// cost model for each operation (Cost::kMatch).
class Matcher {
 public:
  /// A receive is being posted: consume a matching unexpected message if one
  /// is already queued (FIFO), else append to the posted queue.
  std::optional<UnexpectedMsg> post(PostedRecv pr) {
    for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
      if (matches(pr.src, pr.tag, it->src, it->tag)) {
        UnexpectedMsg m = std::move(*it);
        unexpected_.erase(it);
        return m;
      }
    }
    posted_.push_back(std::move(pr));
    return std::nullopt;
  }

  /// A message (src, tag) has arrived: claim the first matching posted
  /// receive, if any.
  std::optional<PostedRecv> claim_posted(int src, int tag) {
    for (auto it = posted_.begin(); it != posted_.end(); ++it) {
      if (matches(it->src, it->tag, src, tag)) {
        PostedRecv pr = std::move(*it);
        posted_.erase(it);
        return pr;
      }
    }
    return std::nullopt;
  }

  void add_unexpected(UnexpectedMsg m) {
    unexpected_.push_back(std::move(m));
  }

  /// First matching unexpected message, if any (probe support).
  const UnexpectedMsg* peek_unexpected(int src, int tag) const {
    for (const auto& u : unexpected_) {
      if (matches(src, tag, u.src, u.tag)) return &u;
    }
    return nullptr;
  }

  std::size_t posted_count() const noexcept { return posted_.size(); }
  std::size_t unexpected_count() const noexcept {
    return unexpected_.size();
  }

 private:
  std::deque<PostedRecv> posted_;
  std::deque<UnexpectedMsg> unexpected_;
};

}  // namespace fmx::mpi
