// MPI over FM 1.x — the "initial MPI-FM" of §3.2, faithful to its
// interface-induced inefficiencies:
//  * Send: FM 1.x accepts only one contiguous buffer, so MPI assembles
//    [24-byte header | payload] in a staging buffer first (extra copy #1).
//  * Receive: FM reassembles multi-packet messages into its own staging
//    area (copy #2, inside FM), and because "the required exchange of
//    information between the two layers was missing", the handler cannot
//    place data in the posted user buffer: it always copies into an
//    MPI-owned temporary (copy #3), from which the matching receive copies
//    into the user buffer (copy #4).
// On a host with slow copies this stack of memcpys is exactly what caps
// MPI-FM 1.x at a fraction of FM bandwidth (Figure 4).
#pragma once

#include "fm1/fm1.hpp"
#include "mpi/mpi.hpp"

namespace fmx::mpi {

class MpiFm1 : public Comm {
 public:
  /// Standalone: owns its FM endpoint.
  MpiFm1(net::Cluster& cluster, int node_id, fm1::Config fm_cfg = {});
  /// Layered: share one FM 1.x endpoint with other libraries.
  explicit MpiFm1(fm1::Endpoint& shared);

  int rank() const override { return fm_.id(); }
  int size() const override { return fm_.cluster_size(); }
  sim::Task<void> host_compute(sim::Ps t) override {
    return fm_.host().compute(t);
  }
  fm1::Endpoint& fm() noexcept { return fm_; }

 protected:
  sim::Task<void> do_send(ByteSpan data, int dst, int tag) override;
  sim::Task<Request> do_post_recv(MutByteSpan buf, int src,
                                  int tag) override;
  sim::Task<void> progress_until(std::function<bool()> done) override;
  sim::Task<void> progress_once() override;
  std::optional<Status> peek_unexpected(int src, int tag) override;

 private:
  static constexpr fm1::HandlerId kMpiHandler = 1;
  void on_message(int src, ByteSpan data);
  void complete(RequestState& st, int src, int tag, std::size_t count);

  std::unique_ptr<fm1::Endpoint> owned_;
  fm1::Endpoint& fm_;
  Matcher matcher_;
  std::uint64_t send_seq_ = 0;
};

}  // namespace fmx::mpi
