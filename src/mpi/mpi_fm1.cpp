#include "mpi/mpi_fm1.hpp"

#include <cstring>
#include <memory>
#include <stdexcept>

namespace fmx::mpi {

using sim::Cost;

namespace {
// MPICH-layer costs on the SPARCstation-class host.
constexpr sim::Ps kMpiCallCost = sim::ns(1'200);
constexpr sim::Ps kMatchCost = sim::ns(800);
constexpr sim::Ps kTempAllocCost = sim::ns(1'500);  // pool/malloc management
constexpr sim::Ps kRequestCost = sim::ns(500);
}  // namespace

MpiFm1::MpiFm1(net::Cluster& cluster, int node_id, fm1::Config fm_cfg)
    : owned_(std::make_unique<fm1::Endpoint>(cluster, node_id, fm_cfg)),
      fm_(*owned_) {
  fm_.register_handler(kMpiHandler,
                       [this](int src, ByteSpan d) { on_message(src, d); });
}

MpiFm1::MpiFm1(fm1::Endpoint& shared) : fm_(shared) {
  fm_.register_handler(kMpiHandler,
                       [this](int src, ByteSpan d) { on_message(src, d); });
}

void MpiFm1::complete(RequestState& st, int src, int tag,
                      std::size_t count) {
  st.done = true;
  st.status.source = src;
  st.status.tag = tag;
  st.status.count = count;
}

sim::Task<void> MpiFm1::do_send(ByteSpan data, int dst, int tag) {
  auto& host = fm_.host();
  host.charge(Cost::kCall, kMpiCallCost);
  ++stats_.sends;

  MpiHeader h;
  h.tag = tag;
  h.src_rank = rank();
  h.bytes = static_cast<std::uint32_t>(data.size());
  h.seq = send_seq_++;

  // FM 1.x takes one contiguous buffer: assemble header + payload in a
  // staging buffer (the send-side copy the paper calls out).
  Bytes staging(sizeof(MpiHeader) + data.size());
  std::memcpy(staging.data(), &h, sizeof(h));
  host.charge(Cost::kHeader, sim::ns(200));
  if (!data.empty()) {
    host.copy(MutByteSpan{staging}.subspan(sizeof(MpiHeader)), data);
  }
  co_await fm_.send(dst, kMpiHandler, ByteSpan{staging});
}

void MpiFm1::on_message(int /*fm_src*/, ByteSpan data) {
  auto& host = fm_.host();
  MpiHeader h;
  std::memcpy(&h, data.data(), sizeof(h));
  host.charge(Cost::kHeader, sim::ns(200));
  ByteSpan payload = data.subspan(sizeof(MpiHeader));

  // The FM 1.x handler cannot reach the posted user buffer; it must take
  // ownership before FM reclaims its buffer: copy into an MPI temporary.
  host.charge(Cost::kBufferMgmt, kTempAllocCost);
  Bytes temp(payload.size());
  if (!payload.empty()) host.copy(MutByteSpan{temp}, payload);

  host.charge(Cost::kMatch, kMatchCost);
  if (auto pr = matcher_.claim_posted(h.src_rank, h.tag)) {
    if (temp.size() > pr->cap) {
      throw std::runtime_error("MPI: message truncation (buffer too small)");
    }
    if (!temp.empty()) {
      host.copy(MutByteSpan{pr->buf, temp.size()}, ByteSpan{temp});
    }
    ++stats_.posted_hits;
    ++stats_.recvs;
    complete(*pr->req, h.src_rank, h.tag, temp.size());
  } else {
    ++stats_.unexpected;
    matcher_.add_unexpected(UnexpectedMsg(h.src_rank, h.tag,
                                          std::move(temp)));
  }
}

sim::Task<Request> MpiFm1::do_post_recv(MutByteSpan buf, int src, int tag) {
  auto& host = fm_.host();
  host.charge(Cost::kCall, kMpiCallCost);
  host.charge(Cost::kMatch, kMatchCost);
  host.charge(Cost::kBufferMgmt, kRequestCost);
  auto st = std::make_shared<RequestState>();
  PostedRecv pr(buf.data(), buf.size(), src, tag, st);
  if (auto um = matcher_.post(std::move(pr))) {
    if (um->data.size() > buf.size()) {
      throw std::runtime_error("MPI: message truncation (buffer too small)");
    }
    if (!um->data.empty()) {
      host.copy(MutByteSpan{buf.data(), um->data.size()},
                ByteSpan{um->data});
    }
    ++stats_.recvs;
    complete(*st, um->src, um->tag, um->data.size());
  }
  co_await host.sync();
  co_return Request(st);
}

sim::Task<void> MpiFm1::progress_until(std::function<bool()> done) {
  co_await fm_.poll_until(done);
}

sim::Task<void> MpiFm1::progress_once() { (void)co_await fm_.extract(); }

std::optional<Status> MpiFm1::peek_unexpected(int src, int tag) {
  fm_.host().charge(sim::Cost::kMatch, kMatchCost);
  if (const UnexpectedMsg* u = matcher_.peek_unexpected(src, tag)) {
    return Status{u->src, u->tag, u->data.size()};
  }
  return std::nullopt;
}

}  // namespace fmx::mpi
