// MPI over FM 2.x — the §4.1 design. The FM 2.x interface features map to
// MPI mechanics one-for-one:
//  * Gather: the 24-byte MPI header and the user payload are sent as two
//    pieces of one FM message — no staging assembly.
//  * Layer interleaving: the handler reads the header from the stream,
//    consults MPI's matching state, and receives the payload *directly into
//    the posted user buffer* — the single receive-side copy.
//  * Receiver flow control: data that MPI is not ready for stays unextracted
//    and withholds credits, so sender pacing replaces buffer-pool overruns.
#pragma once

#include <deque>
#include <memory>
#include <unordered_map>

#include "fm2/fm2.hpp"
#include "mpi/mpi.hpp"

namespace fmx::mpi {

struct MpiFm2Options {
  /// Ablation: pre-assemble [header|payload] in a contiguous staging buffer
  /// and send it as one piece, FM 1.x style, instead of gathering. Shows
  /// what the gather interface is worth (bench/ablation_features).
  bool staged_send = false;
  /// Messages larger than this use the rendezvous protocol (RTS -> CTS ->
  /// data): the payload is only transferred once the receive buffer is
  /// known, so large unexpected messages never get staged. Default: eager
  /// only (the paper-era MPI-FM protocol).
  std::size_t eager_threshold = ~std::size_t{0};
  /// Move rendezvous payloads with RDMA remote-memory writes: the CTS
  /// carries an rkey for the pinned receive buffer and the sender's NIC
  /// writes straight into it — zero host copies on either side (the FM
  /// host-staged stream path remains as the rdma=false ablation). Both
  /// sides negotiate: the payload goes RDMA only if sender and receiver
  /// enable it.
  bool rdma = true;
  /// Run barrier / bcast / reduce_sum / allreduce_sum inside the NIC
  /// control program (myrinet/coll.hpp): combining and fan-out forwarding
  /// happen NIC-to-NIC along a topology-derived tree and the host is
  /// interrupted once per operation. Off by default — the host-level
  /// dissemination/binomial algorithms are the ablation, and existing
  /// workloads keep bit-identical digests. Every rank's first offloaded
  /// collective triggers a lazy cluster-wide group join. Rooted ops with
  /// root != 0 and operands larger than coll_max_bytes fall back to the
  /// host-level path.
  bool nic_collectives = false;
  /// Tree fan-out (radix) for the NIC collective tree.
  int coll_radix = 4;
  /// Largest operand the NIC group preallocates for (bytes).
  std::size_t coll_max_bytes = 2048;
};

class MpiFm2 : public Comm {
 public:
  /// Standalone: owns its FM endpoint.
  MpiFm2(net::Cluster& cluster, int node_id, fm2::Config fm_cfg = {},
         MpiFm2Options opt = {});
  /// Layered: share one FM endpoint per process with other libraries
  /// (sockets, shmem, ...), each owning its handler ids — how the real FM
  /// was used. The endpoint must outlive this object.
  explicit MpiFm2(fm2::Endpoint& shared, MpiFm2Options opt = {});

  int rank() const override { return fm_.id(); }
  int size() const override { return fm_.cluster_size(); }
  sim::Task<void> host_compute(sim::Ps t) override {
    return fm_.host().compute(t);
  }
  fm2::Endpoint& fm() noexcept { return fm_; }

  /// Receive-side pacing (bytes per FM_extract while blocked); 0 = no limit.
  void set_extract_budget(std::size_t bytes) { extract_budget_ = bytes; }

  // NIC-offloaded collectives (opt.nic_collectives). Rooted ops with
  // root != 0 or operands above coll_max_bytes fall back to the host-level
  // base algorithms.
  sim::Task<void> barrier() override;
  sim::Task<void> bcast(MutByteSpan buf, int root) override;
  sim::Task<void> reduce_sum(std::span<double> data, int root) override;
  sim::Task<void> allreduce_sum(std::span<double> data) override;

 protected:
  sim::Task<void> do_send(ByteSpan data, int dst, int tag) override;
  sim::Task<Request> do_post_recv(MutByteSpan buf, int src,
                                  int tag) override;
  sim::Task<void> progress_until(std::function<bool()> done) override;
  sim::Task<void> progress_once() override;
  std::optional<Status> peek_unexpected(int src, int tag) override;

 private:
  static constexpr fm2::HandlerId kMpiHandler = 1;

  /// An unexpected arrival. Because FM 2.x handlers are interleaved with
  /// message reception, an arrival's envelope becomes matchable as soon as
  /// its header is read — possibly while its payload is still streaming in.
  /// A receive posted during that window claims the record and completes
  /// when the handler finishes buffering.
  struct UnexpectedArrival {
    int src = -1;
    int tag = 0;
    Bytes data;
    bool complete = false;
    std::shared_ptr<RequestState> claimed;  // posted while in flight
    std::byte* user_buf = nullptr;
    std::size_t user_cap = 0;
    // Rendezvous: this entry is an RTS envelope, not buffered data.
    bool is_rts = false;
    std::uint64_t rts_id = 0;
    std::size_t rts_bytes = 0;
    bool rts_rdma = false;  // sender offered the RDMA data path
  };

  struct PendingRdzvSend {
    bool cts = false;
    // RDMA negotiation result, carried by the CTS.
    bool use_rdma = false;
    std::uint32_t rkey = 0;
    bool done = false;  // receiver's DONE arrived (RDMA placement finished)
  };
  struct RdzvRecv {
    std::shared_ptr<RequestState> req;
    std::byte* buf = nullptr;
    int src = -1;
    int tag = 0;
    std::size_t bytes = 0;
    std::uint64_t id = 0;  // sender's rendezvous id (for the DONE reply)
    std::uint64_t mr = 0;  // pin-down handle (RDMA path)
  };

  fm2::HandlerTask on_message(fm2::RecvStream& s, int src);
  void complete(RequestState& st, int src, int tag, std::size_t count);
  void finish_unexpected(const std::shared_ptr<UnexpectedArrival>& ua);
  /// Accept an RTS whose receive buffer is known: record the rendezvous
  /// (posting the buffer as an RDMA target when both sides negotiate it)
  /// and return the CTS header to send back.
  MpiHeader grant_rts(int src, std::uint64_t id, int tag, std::size_t bytes,
                      std::byte* buf, std::shared_ptr<RequestState> req,
                      bool sender_rdma);
  /// NIC completion callback target for an RDMA rendezvous receive.
  void on_rdma_complete(std::uint64_t key);
  sim::Task<void> send_control(int to, MpiHeader h);
  /// True when this collective call should take the NIC-offloaded path.
  bool use_nic_coll(int root, std::size_t bytes) const noexcept {
    return opt_.nic_collectives && size() > 1 && root == 0 &&
           bytes <= opt_.coll_max_bytes;
  }
  /// Lazily join the cluster-wide NIC collective group {0..size()-1}.
  /// Naturally collective: every rank's first offloaded collective is the
  /// same call, so all ranks join before any operation proceeds.
  sim::Task<void> ensure_coll_group();

  std::unique_ptr<fm2::Endpoint> owned_;
  fm2::Endpoint& fm_;
  MpiFm2Options opt_;
  Matcher matcher_;  // posted queue only; unexpected_ replaces its queue
  std::deque<std::shared_ptr<UnexpectedArrival>> unexpected_;
  std::unordered_map<std::uint64_t, PendingRdzvSend> rdzv_sends_;
  std::unordered_map<std::uint64_t, RdzvRecv> rdzv_recvs_;
  std::uint64_t send_seq_ = 0;
  std::size_t extract_budget_ = 0;
  static constexpr std::uint32_t kCollGroupId = 0x4D504943;  // "MPIC"
  bool coll_joined_ = false;
};

}  // namespace fmx::mpi
