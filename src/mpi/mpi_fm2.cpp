#include "mpi/mpi_fm2.hpp"

#include <cstring>
#include <memory>
#include <stdexcept>

namespace fmx::mpi {

using sim::Cost;

namespace {
// MPICH-layer costs on the 200 MHz Pentium Pro host.
constexpr sim::Ps kMpiCallCost = sim::ns(400);
constexpr sim::Ps kMatchCost = sim::ns(500);
constexpr sim::Ps kUnexpectedAllocCost = sim::ns(1'000);
constexpr sim::Ps kRequestCost = sim::ns(300);
// Progress-engine work per continuation packet of a multi-packet message
// (MPICH ADI request-state walk on each arriving chunk).
constexpr sim::Ps kAdiChunkCost = sim::ns(2'500);

// MpiHeader.kind values.
constexpr std::uint16_t kEager = 0;
constexpr std::uint16_t kRts = 1;
constexpr std::uint16_t kCts = 2;
constexpr std::uint16_t kRdzvData = 3;

std::uint64_t rdzv_key(int src, std::uint64_t id) {
  return (static_cast<std::uint64_t>(src) << 48) ^ id;
}
}  // namespace

MpiFm2::MpiFm2(net::Cluster& cluster, int node_id, fm2::Config fm_cfg,
               MpiFm2Options opt)
    : owned_(std::make_unique<fm2::Endpoint>(cluster, node_id, fm_cfg)),
      fm_(*owned_),
      opt_(opt) {
  fm_.register_handler(kMpiHandler,
                       [this](fm2::RecvStream& s, int src) {
                         return on_message(s, src);
                       });
}

MpiFm2::MpiFm2(fm2::Endpoint& shared, MpiFm2Options opt)
    : fm_(shared), opt_(opt) {
  fm_.register_handler(kMpiHandler,
                       [this](fm2::RecvStream& s, int src) {
                         return on_message(s, src);
                       });
}

void MpiFm2::complete(RequestState& st, int src, int tag,
                      std::size_t count) {
  st.done = true;
  st.status.source = src;
  st.status.tag = tag;
  st.status.count = count;
}

sim::Task<void> MpiFm2::do_send(ByteSpan data, int dst, int tag) {
  auto& host = fm_.host();
  host.charge(Cost::kCall, kMpiCallCost);
  ++stats_.sends;

  MpiHeader h;
  h.tag = tag;
  h.src_rank = rank();
  h.bytes = static_cast<std::uint32_t>(data.size());
  h.seq = send_seq_++;
  host.charge(Cost::kHeader, sim::ns(200));

  if (data.size() > opt_.eager_threshold) {
    // Rendezvous: ship only the envelope, wait for the receiver to grant
    // a buffer, then stream the payload straight into it.
    const std::uint64_t id = h.seq;
    rdzv_sends_[id];
    MpiHeader rts = h;
    rts.kind = kRts;
    co_await fm_.send(dst, kMpiHandler, as_bytes_of(rts));
    co_await progress_until(
        [this, id] { return rdzv_sends_.at(id).cts; });
    rdzv_sends_.erase(id);
    MpiHeader dat = h;
    dat.kind = kRdzvData;
    fm2::SendStream s = co_await fm_.begin_message(
        dst, sizeof(MpiHeader) + data.size(), kMpiHandler);
    co_await fm_.send_piece(s, as_bytes_of(dat));
    co_await fm_.send_piece(s, data);
    co_await fm_.end_message(s);
    co_return;
  }

  if (opt_.staged_send) {
    // Ablation: FM 1.x-style contiguous assembly before handing to FM —
    // one extra full-message copy on the send path. The simulated machine
    // pays that staging copy (charge_copy), but the simulator itself no
    // longer materializes a second buffer: the header rides as a slice
    // view through the same gather path the staging copy would feed.
    host.charge_copy(data.size());
    fm2::SendStream s = co_await fm_.begin_message(
        dst, sizeof(MpiHeader) + data.size(), kMpiHandler);
    co_await fm_.send_piece(s, as_bytes_of(h));
    if (!data.empty()) co_await fm_.send_piece(s, data);
    co_await fm_.end_message(s);
    co_return;
  }

  // Gather: header and payload are two pieces of one FM message. FM's
  // packetizer copies each piece into the outgoing packet; no MPI staging.
  fm2::SendStream s =
      co_await fm_.begin_message(dst, sizeof(MpiHeader) + data.size(),
                                 kMpiHandler);
  co_await fm_.send_piece(s, as_bytes_of(h));
  if (!data.empty()) co_await fm_.send_piece(s, data);
  co_await fm_.end_message(s);
}

void MpiFm2::grant_rts(int src, std::uint64_t id, int tag,
                       std::size_t bytes, std::byte* buf,
                       std::shared_ptr<RequestState> req) {
  RdzvRecv rec;
  rec.req = std::move(req);
  rec.buf = buf;
  rec.src = src;
  rec.tag = tag;
  rec.bytes = bytes;
  rdzv_recvs_[rdzv_key(src, id)] = std::move(rec);
}

fm2::HandlerTask MpiFm2::on_message(fm2::RecvStream& s, int /*src*/) {
  auto& host = fm_.host();
  MpiHeader h;
  co_await s.receive(&h, sizeof(h));

  if (h.kind == kRts) {
    host.charge(Cost::kMatch, kMatchCost);
    if (auto pr = matcher_.claim_posted(h.src_rank, h.tag)) {
      if (h.bytes > pr->cap) {
        throw std::runtime_error(
            "MPI: message truncation (buffer too small)");
      }
      fm_.tracer().record(trace::EventType::kMatch, trace::Layer::kMpi,
                          fm_.id(), s.trace_id(), h.bytes);
      grant_rts(h.src_rank, h.seq, h.tag, h.bytes, pr->buf, pr->req);
      MpiHeader cts;
      cts.kind = kCts;
      cts.seq = h.seq;
      cts.src_rank = rank();
      int to = h.src_rank;
      fm_.defer([this, to, cts]() -> sim::Task<void> {
        co_await fm_.send(to, kMpiHandler, as_bytes_of(cts));
      });
    } else {
      // Unexpected RTS: queue the 24-byte envelope — no payload staging,
      // the whole point of rendezvous.
      auto ua = std::make_shared<UnexpectedArrival>();
      ua->src = h.src_rank;
      ua->tag = h.tag;
      ua->is_rts = true;
      ua->rts_id = h.seq;
      ua->rts_bytes = h.bytes;
      unexpected_.push_back(ua);
      ++stats_.unexpected;
    }
    co_return;
  }
  if (h.kind == kCts) {
    rdzv_sends_.at(h.seq).cts = true;
    co_return;
  }
  if (h.kind == kRdzvData) {
    auto it = rdzv_recvs_.find(rdzv_key(h.src_rank, h.seq));
    RdzvRecv rec = std::move(it->second);
    rdzv_recvs_.erase(it);
    fm_.tracer().record(trace::EventType::kMatch, trace::Layer::kMpi,
                        fm_.id(), s.trace_id(), h.bytes);
    const std::size_t chunk = fm_.max_payload_per_packet();
    std::size_t off = 0;
    while (off < h.bytes) {
      std::size_t take = std::min<std::size_t>(chunk, h.bytes - off);
      if (off > 0) host.charge(Cost::kMatch, kAdiChunkCost);
      co_await s.receive(rec.buf + off, take);
      off += take;
    }
    ++stats_.recvs;
    complete(*rec.req, rec.src, rec.tag, h.bytes);
    co_return;
  }

  // Layer interleaving: with the header in hand, ask MPI where the payload
  // belongs, then steer it there straight from the stream.
  host.charge(Cost::kMatch, kMatchCost);
  host.charge(Cost::kBufferMgmt, kRequestCost);
  if (auto pr = matcher_.claim_posted(h.src_rank, h.tag)) {
    if (h.bytes > pr->cap) {
      throw std::runtime_error("MPI: message truncation (buffer too small)");
    }
    fm_.tracer().record(trace::EventType::kMatch, trace::Layer::kMpi,
                        fm_.id(), s.trace_id(), h.bytes);
    // Pull the payload from the stream a packet-chunk at a time; each
    // continuation chunk passes through the ADI progress engine.
    const std::size_t chunk = fm_.max_payload_per_packet();
    std::size_t off = 0;
    while (off < h.bytes) {
      std::size_t take = std::min<std::size_t>(chunk, h.bytes - off);
      if (off > 0) host.charge(Cost::kMatch, kAdiChunkCost);
      co_await s.receive(pr->buf + off, take);
      off += take;
    }
    ++stats_.posted_hits;
    ++stats_.recvs;
    complete(*pr->req, h.src_rank, h.tag, h.bytes);
  } else {
    // Truly unexpected: one buffering copy, the unavoidable case. The
    // envelope is published *before* the payload finishes streaming in, so
    // a receive posted meanwhile matches this message, not a later one.
    host.charge(Cost::kBufferMgmt, kUnexpectedAllocCost);
    auto ua = std::make_shared<UnexpectedArrival>();
    ua->src = h.src_rank;
    ua->tag = h.tag;
    ua->data.resize(h.bytes);
    unexpected_.push_back(ua);
    ++stats_.unexpected;
    if (h.bytes > 0) co_await s.receive(MutByteSpan{ua->data});
    ua->complete = true;
    if (ua->claimed) finish_unexpected(ua);
  }
}

void MpiFm2::finish_unexpected(
    const std::shared_ptr<UnexpectedArrival>& ua) {
  auto& host = fm_.host();
  if (ua->data.size() > ua->user_cap) {
    throw std::runtime_error("MPI: message truncation (buffer too small)");
  }
  if (!ua->data.empty()) {
    host.copy(MutByteSpan{ua->user_buf, ua->data.size()},
              ByteSpan{ua->data});
  }
  ++stats_.recvs;
  complete(*ua->claimed, ua->src, ua->tag, ua->data.size());
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    if (it->get() == ua.get()) {
      unexpected_.erase(it);
      break;
    }
  }
}

sim::Task<Request> MpiFm2::do_post_recv(MutByteSpan buf, int src, int tag) {
  auto& host = fm_.host();
  host.charge(Cost::kCall, kMpiCallCost);
  host.charge(Cost::kMatch, kMatchCost);
  host.charge(Cost::kBufferMgmt, kRequestCost);
  auto st = std::make_shared<RequestState>();
  // Unexpected arrivals (complete, still streaming, or RTS envelopes)
  // match first, in arrival order.
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    auto ua = *it;
    if (ua->claimed) continue;  // already paired with an earlier recv
    if (!matches(src, tag, ua->src, ua->tag)) continue;
    if (ua->is_rts) {
      if (ua->rts_bytes > buf.size()) {
        throw std::runtime_error(
            "MPI: message truncation (buffer too small)");
      }
      grant_rts(ua->src, ua->rts_id, ua->tag, ua->rts_bytes, buf.data(),
                st);
      MpiHeader cts;
      cts.kind = kCts;
      cts.seq = ua->rts_id;
      cts.src_rank = rank();
      int to = ua->src;
      unexpected_.erase(it);
      co_await host.sync();
      co_await fm_.send(to, kMpiHandler, as_bytes_of(cts));
      co_return Request(st);
    }
    ua->claimed = st;
    ua->user_buf = buf.data();
    ua->user_cap = buf.size();
    if (ua->complete) {
      finish_unexpected(ua);
    }
    co_await host.sync();
    co_return Request(st);
  }
  matcher_.post(PostedRecv(buf.data(), buf.size(), src, tag, st));
  co_await host.sync();
  co_return Request(st);
}

sim::Task<void> MpiFm2::progress_until(std::function<bool()> done) {
  auto& host = fm_.host();
  std::size_t budget =
      extract_budget_ == 0 ? fm2::Endpoint::kNoLimit : extract_budget_;
  while (!done()) {
    (void)co_await fm_.extract(budget);
    if (done()) break;
    host.charge(Cost::kCall, host.params().poll_gap);
    co_await host.sync();
    co_await fm_.wait_for_traffic();
  }
}

std::optional<Status> MpiFm2::peek_unexpected(int src, int tag) {
  fm_.host().charge(Cost::kMatch, kMatchCost);
  for (const auto& ua : unexpected_) {
    if (ua->claimed) continue;
    if (!matches(src, tag, ua->src, ua->tag)) continue;
    // UnexpectedArrival::data is sized to the full message up front, so
    // its size is the final count even while the payload is streaming in;
    // RTS entries carry the size in the envelope.
    return Status{ua->src, ua->tag,
                  ua->is_rts ? ua->rts_bytes : ua->data.size()};
  }
  return std::nullopt;
}

sim::Task<void> MpiFm2::progress_once() {
  (void)co_await fm_.extract(extract_budget_ == 0 ? fm2::Endpoint::kNoLimit
                                                  : extract_budget_);
}

}  // namespace fmx::mpi
