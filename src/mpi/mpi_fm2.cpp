#include "mpi/mpi_fm2.hpp"

#include <cstring>
#include <memory>
#include <numeric>
#include <stdexcept>

namespace fmx::mpi {

using sim::Cost;

namespace {
// MPICH-layer costs on the 200 MHz Pentium Pro host.
constexpr sim::Ps kMpiCallCost = sim::ns(400);
constexpr sim::Ps kMatchCost = sim::ns(500);
constexpr sim::Ps kUnexpectedAllocCost = sim::ns(1'000);
constexpr sim::Ps kRequestCost = sim::ns(300);
// Progress-engine work per continuation packet of a multi-packet message
// (MPICH ADI request-state walk on each arriving chunk).
constexpr sim::Ps kAdiChunkCost = sim::ns(2'500);

// MpiHeader.kind values.
constexpr std::uint16_t kEager = 0;
constexpr std::uint16_t kRts = 1;
constexpr std::uint16_t kCts = 2;
constexpr std::uint16_t kRdzvData = 3;
constexpr std::uint16_t kRdzvDone = 4;

// MpiHeader.flags bits.
/// RTS: sender can source the payload by RDMA. CTS: receiver granted it
/// (the CTS `bytes` field then carries the rkey).
constexpr std::uint16_t kFlagRdma = 0x1;

/// Poll period while a sender waits for its borrowed payload references to
/// drain after the DONE (normally zero iterations: the piggybacked ack on
/// the DONE's reverse traffic has already cleared the NIC retention).
constexpr sim::Ps kRdmaDrainPoll = sim::us(1);

std::uint64_t rdzv_key(int src, std::uint64_t id) {
  return (static_cast<std::uint64_t>(src) << 48) ^ id;
}
}  // namespace

MpiFm2::MpiFm2(net::Cluster& cluster, int node_id, fm2::Config fm_cfg,
               MpiFm2Options opt)
    : owned_(std::make_unique<fm2::Endpoint>(cluster, node_id, fm_cfg)),
      fm_(*owned_),
      opt_(opt) {
  fm_.register_handler(kMpiHandler,
                       [this](fm2::RecvStream& s, int src) {
                         return on_message(s, src);
                       });
}

MpiFm2::MpiFm2(fm2::Endpoint& shared, MpiFm2Options opt)
    : fm_(shared), opt_(opt) {
  fm_.register_handler(kMpiHandler,
                       [this](fm2::RecvStream& s, int src) {
                         return on_message(s, src);
                       });
}

void MpiFm2::complete(RequestState& st, int src, int tag,
                      std::size_t count) {
  st.done = true;
  st.status.source = src;
  st.status.tag = tag;
  st.status.count = count;
}

sim::Task<void> MpiFm2::do_send(ByteSpan data, int dst, int tag) {
  auto& host = fm_.host();
  host.charge(Cost::kCall, kMpiCallCost);
  ++stats_.sends;

  MpiHeader h;
  h.tag = tag;
  h.src_rank = rank();
  h.bytes = static_cast<std::uint32_t>(data.size());
  h.seq = send_seq_++;
  host.charge(Cost::kHeader, sim::ns(200));

  if (data.size() > opt_.eager_threshold) {
    // Rendezvous: ship only the envelope, wait for the receiver to grant
    // a buffer, then move the payload straight into it — by RDMA remote
    // write when both sides negotiated it, else via the FM stream path.
    const std::uint64_t id = h.seq;
    rdzv_sends_[id];
    MpiHeader rts = h;
    rts.kind = kRts;
    if (opt_.rdma && !data.empty()) rts.flags |= kFlagRdma;
    co_await fm_.send(dst, kMpiHandler, as_bytes_of(rts));
    co_await progress_until(
        [this, id] { return rdzv_sends_.at(id).cts; });
    const bool use_rdma = rdzv_sends_.at(id).use_rdma;
    const std::uint32_t rkey = rdzv_sends_.at(id).rkey;
    if (use_rdma) {
      fm2::Endpoint::RdmaOp op = co_await fm_.rdma_write(dst, rkey, data);
      // The receiver's NIC reports completion out of band (DONE control
      // message) once every chunk has been placed in the posted buffer.
      co_await progress_until(
          [this, id] { return rdzv_sends_.at(id).done; });
      rdzv_sends_.erase(id);
      // Pin-down contract: the user may modify `data` as soon as we
      // return, so wait until no in-flight reference (NIC staging, wire,
      // go-back-N retention) still aliases it. The DONE's piggybacked ack
      // normally cleared the retention already, making this zero polls.
      while (op.ref.use_count() > 1) {
        co_await fm_.host().engine().delay(kRdmaDrainPoll);
      }
      fm_.release_rdma(op.mr);
      co_return;
    }
    rdzv_sends_.erase(id);
    MpiHeader dat = h;
    dat.kind = kRdzvData;
    fm2::SendStream s = co_await fm_.begin_message(
        dst, sizeof(MpiHeader) + data.size(), kMpiHandler);
    co_await fm_.send_piece(s, as_bytes_of(dat));
    co_await fm_.send_piece(s, data);
    co_await fm_.end_message(s);
    co_return;
  }

  if (opt_.staged_send) {
    // Ablation: FM 1.x-style contiguous assembly before handing to FM —
    // one extra full-message copy on the send path. The simulated machine
    // pays that staging copy (charge_copy), but the simulator itself no
    // longer materializes a second buffer: the header rides as a slice
    // view through the same gather path the staging copy would feed.
    host.charge_copy(data.size());
    fm2::SendStream s = co_await fm_.begin_message(
        dst, sizeof(MpiHeader) + data.size(), kMpiHandler);
    co_await fm_.send_piece(s, as_bytes_of(h));
    if (!data.empty()) co_await fm_.send_piece(s, data);
    co_await fm_.end_message(s);
    co_return;
  }

  // Gather: header and payload are two pieces of one FM message. FM's
  // packetizer copies each piece into the outgoing packet; no MPI staging.
  fm2::SendStream s =
      co_await fm_.begin_message(dst, sizeof(MpiHeader) + data.size(),
                                 kMpiHandler);
  co_await fm_.send_piece(s, as_bytes_of(h));
  if (!data.empty()) co_await fm_.send_piece(s, data);
  co_await fm_.end_message(s);
}

MpiHeader MpiFm2::grant_rts(int src, std::uint64_t id, int tag,
                            std::size_t bytes, std::byte* buf,
                            std::shared_ptr<RequestState> req,
                            bool sender_rdma) {
  const std::uint64_t key = rdzv_key(src, id);
  RdzvRecv& rec = rdzv_recvs_[key];
  rec.req = std::move(req);
  rec.buf = buf;
  rec.src = src;
  rec.tag = tag;
  rec.bytes = bytes;
  rec.id = id;

  MpiHeader cts;
  cts.kind = kCts;
  cts.seq = id;
  cts.src_rank = rank();
  if (opt_.rdma && sender_rdma && bytes > 0) {
    // Pin the posted buffer, hand it to the NIC as a remote-write target,
    // and advertise the rkey in the CTS. The NIC calls back when the last
    // byte lands; the host never copies the payload.
    fm2::Endpoint::RdmaBuffer rb = fm_.post_rdma_buffer(
        MutByteSpan{buf, bytes}, [this, key] { on_rdma_complete(key); });
    rec.mr = rb.mr;
    cts.flags |= kFlagRdma;
    cts.bytes = rb.rkey;
  }
  return cts;
}

// Runs on the NIC (rx DMA program) the moment the last RDMA chunk is
// placed: complete the posted receive, unpin, and queue the DONE control
// message back to the sender. Only bookkeeping here — the DONE send is a
// fresh daemon because this is not a host coroutine context.
void MpiFm2::on_rdma_complete(std::uint64_t key) {
  auto it = rdzv_recvs_.find(key);
  if (it == rdzv_recvs_.end()) return;
  RdzvRecv rec = std::move(it->second);
  rdzv_recvs_.erase(it);
  fm_.host().charge(Cost::kBufferMgmt, kRequestCost);
  fm_.release_rdma(rec.mr);
  ++stats_.recvs;
  complete(*rec.req, rec.src, rec.tag, rec.bytes);
  MpiHeader done;
  done.kind = kRdzvDone;
  done.seq = rec.id;
  done.src_rank = rank();
  fm_.host().engine().spawn_daemon(send_control(rec.src, done));
}

sim::Task<void> MpiFm2::send_control(int to, MpiHeader h) {
  co_await fm_.send(to, kMpiHandler, as_bytes_of(h));
}

fm2::HandlerTask MpiFm2::on_message(fm2::RecvStream& s, int /*src*/) {
  auto& host = fm_.host();
  MpiHeader h;
  co_await s.receive(&h, sizeof(h));

  if (h.kind == kRts) {
    host.charge(Cost::kMatch, kMatchCost);
    if (auto pr = matcher_.claim_posted(h.src_rank, h.tag)) {
      if (h.bytes > pr->cap) {
        throw std::runtime_error(
            "MPI: message truncation (buffer too small)");
      }
      fm_.tracer().record(trace::EventType::kMatch, trace::Layer::kMpi,
                          fm_.id(), s.trace_id(), h.bytes);
      MpiHeader cts = grant_rts(h.src_rank, h.seq, h.tag, h.bytes, pr->buf,
                                pr->req, (h.flags & kFlagRdma) != 0);
      int to = h.src_rank;
      fm_.defer([this, to, cts]() -> sim::Task<void> {
        co_await fm_.send(to, kMpiHandler, as_bytes_of(cts));
      });
    } else {
      // Unexpected RTS: queue the 24-byte envelope — no payload staging,
      // the whole point of rendezvous.
      auto ua = std::make_shared<UnexpectedArrival>();
      ua->src = h.src_rank;
      ua->tag = h.tag;
      ua->is_rts = true;
      ua->rts_id = h.seq;
      ua->rts_bytes = h.bytes;
      ua->rts_rdma = (h.flags & kFlagRdma) != 0;
      unexpected_.push_back(ua);
      ++stats_.unexpected;
    }
    co_return;
  }
  if (h.kind == kCts) {
    PendingRdzvSend& ps = rdzv_sends_.at(h.seq);
    ps.use_rdma = (h.flags & kFlagRdma) != 0;
    ps.rkey = h.bytes;  // CTS reuses the length field for the rkey
    ps.cts = true;
    co_return;
  }
  if (h.kind == kRdzvDone) {
    rdzv_sends_.at(h.seq).done = true;
    co_return;
  }
  if (h.kind == kRdzvData) {
    auto it = rdzv_recvs_.find(rdzv_key(h.src_rank, h.seq));
    RdzvRecv rec = std::move(it->second);
    rdzv_recvs_.erase(it);
    fm_.tracer().record(trace::EventType::kMatch, trace::Layer::kMpi,
                        fm_.id(), s.trace_id(), h.bytes);
    const std::size_t chunk = fm_.max_payload_per_packet();
    std::size_t off = 0;
    while (off < h.bytes) {
      std::size_t take = std::min<std::size_t>(chunk, h.bytes - off);
      if (off > 0) host.charge(Cost::kMatch, kAdiChunkCost);
      co_await s.receive(rec.buf + off, take);
      off += take;
    }
    ++stats_.recvs;
    complete(*rec.req, rec.src, rec.tag, h.bytes);
    co_return;
  }

  // Layer interleaving: with the header in hand, ask MPI where the payload
  // belongs, then steer it there straight from the stream.
  host.charge(Cost::kMatch, kMatchCost);
  host.charge(Cost::kBufferMgmt, kRequestCost);
  if (auto pr = matcher_.claim_posted(h.src_rank, h.tag)) {
    if (h.bytes > pr->cap) {
      throw std::runtime_error("MPI: message truncation (buffer too small)");
    }
    fm_.tracer().record(trace::EventType::kMatch, trace::Layer::kMpi,
                        fm_.id(), s.trace_id(), h.bytes);
    // Pull the payload from the stream a packet-chunk at a time; each
    // continuation chunk passes through the ADI progress engine.
    const std::size_t chunk = fm_.max_payload_per_packet();
    std::size_t off = 0;
    while (off < h.bytes) {
      std::size_t take = std::min<std::size_t>(chunk, h.bytes - off);
      if (off > 0) host.charge(Cost::kMatch, kAdiChunkCost);
      co_await s.receive(pr->buf + off, take);
      off += take;
    }
    ++stats_.posted_hits;
    ++stats_.recvs;
    complete(*pr->req, h.src_rank, h.tag, h.bytes);
  } else {
    // Truly unexpected: one buffering copy, the unavoidable case. The
    // envelope is published *before* the payload finishes streaming in, so
    // a receive posted meanwhile matches this message, not a later one.
    host.charge(Cost::kBufferMgmt, kUnexpectedAllocCost);
    auto ua = std::make_shared<UnexpectedArrival>();
    ua->src = h.src_rank;
    ua->tag = h.tag;
    ua->data.resize(h.bytes);
    unexpected_.push_back(ua);
    ++stats_.unexpected;
    if (h.bytes > 0) co_await s.receive(MutByteSpan{ua->data});
    ua->complete = true;
    if (ua->claimed) finish_unexpected(ua);
  }
}

void MpiFm2::finish_unexpected(
    const std::shared_ptr<UnexpectedArrival>& ua) {
  auto& host = fm_.host();
  if (ua->data.size() > ua->user_cap) {
    throw std::runtime_error("MPI: message truncation (buffer too small)");
  }
  if (!ua->data.empty()) {
    host.copy(MutByteSpan{ua->user_buf, ua->data.size()},
              ByteSpan{ua->data});
  }
  ++stats_.recvs;
  complete(*ua->claimed, ua->src, ua->tag, ua->data.size());
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    if (it->get() == ua.get()) {
      unexpected_.erase(it);
      break;
    }
  }
}

sim::Task<Request> MpiFm2::do_post_recv(MutByteSpan buf, int src, int tag) {
  auto& host = fm_.host();
  host.charge(Cost::kCall, kMpiCallCost);
  host.charge(Cost::kMatch, kMatchCost);
  host.charge(Cost::kBufferMgmt, kRequestCost);
  auto st = std::make_shared<RequestState>();
  // Unexpected arrivals (complete, still streaming, or RTS envelopes)
  // match first, in arrival order.
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    auto ua = *it;
    if (ua->claimed) continue;  // already paired with an earlier recv
    if (!matches(src, tag, ua->src, ua->tag)) continue;
    if (ua->is_rts) {
      if (ua->rts_bytes > buf.size()) {
        throw std::runtime_error(
            "MPI: message truncation (buffer too small)");
      }
      MpiHeader cts = grant_rts(ua->src, ua->rts_id, ua->tag, ua->rts_bytes,
                                buf.data(), st, ua->rts_rdma);
      int to = ua->src;
      unexpected_.erase(it);
      co_await host.sync();
      co_await fm_.send(to, kMpiHandler, as_bytes_of(cts));
      co_return Request(st);
    }
    ua->claimed = st;
    ua->user_buf = buf.data();
    ua->user_cap = buf.size();
    if (ua->complete) {
      finish_unexpected(ua);
    }
    co_await host.sync();
    co_return Request(st);
  }
  matcher_.post(PostedRecv(buf.data(), buf.size(), src, tag, st));
  co_await host.sync();
  co_return Request(st);
}

sim::Task<void> MpiFm2::progress_until(std::function<bool()> done) {
  auto& host = fm_.host();
  std::size_t budget =
      extract_budget_ == 0 ? fm2::Endpoint::kNoLimit : extract_budget_;
  while (!done()) {
    (void)co_await fm_.extract(budget);
    if (done()) break;
    host.charge(Cost::kCall, host.params().poll_gap);
    co_await host.sync();
    co_await fm_.wait_for_traffic();
  }
}

std::optional<Status> MpiFm2::peek_unexpected(int src, int tag) {
  fm_.host().charge(Cost::kMatch, kMatchCost);
  for (const auto& ua : unexpected_) {
    if (ua->claimed) continue;
    if (!matches(src, tag, ua->src, ua->tag)) continue;
    // UnexpectedArrival::data is sized to the full message up front, so
    // its size is the final count even while the payload is streaming in;
    // RTS entries carry the size in the envelope.
    return Status{ua->src, ua->tag,
                  ua->is_rts ? ua->rts_bytes : ua->data.size()};
  }
  return std::nullopt;
}

sim::Task<void> MpiFm2::progress_once() {
  (void)co_await fm_.extract(extract_budget_ == 0 ? fm2::Endpoint::kNoLimit
                                                  : extract_budget_);
}

// --- NIC-offloaded collectives ---------------------------------------------

sim::Task<void> MpiFm2::ensure_coll_group() {
  if (coll_joined_) co_return;
  net::CollGroupSpec spec;
  spec.id = kCollGroupId;
  spec.members.resize(static_cast<std::size_t>(size()));
  std::iota(spec.members.begin(), spec.members.end(), 0);
  spec.radix = opt_.coll_radix;
  spec.max_bytes = opt_.coll_max_bytes;
  co_await fm_.coll_join(spec);
  coll_joined_ = true;
}

sim::Task<void> MpiFm2::barrier() {
  if (!use_nic_coll(0, 0)) {
    co_await Comm::barrier();
    co_return;
  }
  co_await ensure_coll_group();
  co_await fm_.coll_barrier(kCollGroupId);
}

sim::Task<void> MpiFm2::bcast(MutByteSpan buf, int root) {
  if (!use_nic_coll(root, buf.size())) {
    co_await Comm::bcast(buf, root);
    co_return;
  }
  co_await ensure_coll_group();
  co_await fm_.coll_bcast(kCollGroupId, buf);
}

sim::Task<void> MpiFm2::reduce_sum(std::span<double> data, int root) {
  if (!use_nic_coll(root, data.size_bytes())) {
    co_await Comm::reduce_sum(data, root);
    co_return;
  }
  co_await ensure_coll_group();
  co_await fm_.coll_reduce(kCollGroupId, data, fm2::Endpoint::CollRed::kSum);
}

sim::Task<void> MpiFm2::allreduce_sum(std::span<double> data) {
  if (!use_nic_coll(0, data.size_bytes())) {
    co_await Comm::allreduce_sum(data);
    co_return;
  }
  co_await ensure_coll_group();
  co_await fm_.coll_allreduce(kCollGroupId, data,
                              fm2::Endpoint::CollRed::kSum);
}

}  // namespace fmx::mpi
