#include "mpi/mpi.hpp"

#include <cassert>
#include <cstring>
#include <stdexcept>

namespace fmx::mpi {

sim::Task<Request> Comm::isend(ByteSpan data, int dst, int tag) {
  // Eager protocol: the send buffer is consumed before do_send returns, so
  // the request is born complete.
  co_await do_send(data, dst, tag);
  auto st = std::make_shared<RequestState>();
  st->done = true;
  st->status.source = rank();
  st->status.tag = tag;
  st->status.count = data.size();
  co_return Request(st);
}

sim::Task<void> Comm::recv(MutByteSpan buf, int src, int tag,
                           Status* status) {
  Request req = co_await do_post_recv(buf, src, tag);
  co_await wait(req, status);
}

sim::Task<void> Comm::wait(Request req, Status* status) {
  if (!req.valid()) throw std::logic_error("MPI: wait on null request");
  RequestState* st = req.state();
  co_await progress_until([st] { return st->done; });
  if (status) *status = st->status;
}

sim::Task<bool> Comm::test(Request req) {
  if (!req.valid()) throw std::logic_error("MPI: test on null request");
  if (req.done()) co_return true;
  co_await progress_once();
  co_return req.done();
}

sim::Task<void> Comm::waitall(std::span<Request> reqs) {
  co_await progress_until([&reqs] {
    for (const auto& r : reqs) {
      if (!r.done()) return false;
    }
    return true;
  });
}

sim::Task<bool> Comm::iprobe(int src, int tag, Status* status) {
  co_await progress_once();
  auto st = peek_unexpected(src, tag);
  if (st && status) *status = *st;
  co_return st.has_value();
}

sim::Task<void> Comm::probe(int src, int tag, Status* status) {
  co_await progress_until(
      [this, src, tag] { return peek_unexpected(src, tag).has_value(); });
  if (status) *status = *peek_unexpected(src, tag);
}

sim::Task<void> Comm::sendrecv(ByteSpan senddata, int dst, int sendtag,
                               MutByteSpan recvbuf, int src, int recvtag,
                               Status* status) {
  Request r = co_await do_post_recv(recvbuf, src, recvtag);
  co_await do_send(senddata, dst, sendtag);
  co_await wait(r, status);
}

// ---------------------------------------------------------------------------
// Collectives (binomial/dissemination over point-to-point, standard tags).

sim::Task<void> Comm::barrier() {
  const int n = size();
  if (n == 1) co_return;
  const int me = rank();
  // Dissemination barrier: log2(n) rounds of sendrecv with hop 2^k.
  std::byte token{0};
  for (int k = 0, hop = 1; hop < n; ++k, hop <<= 1) {
    int to = (me + hop) % n;
    int from = (me - hop + n) % n;
    std::byte got;
    co_await sendrecv(ByteSpan{&token, 1}, to, kCollectiveTagBase + k,
                      MutByteSpan{&got, 1}, from, kCollectiveTagBase + k);
  }
}

sim::Task<void> Comm::bcast(MutByteSpan buf, int root) {
  const int n = size();
  if (n == 1) co_return;
  const int me = rank();
  const int r = (me - root + n) % n;  // rank relative to root
  const int tag = kCollectiveTagBase + 32;
  // Find the highest bit of r: that's the parent edge.
  int recv_mask = 0;
  for (int mask = 1; mask < n; mask <<= 1) {
    if (r & mask) recv_mask = mask;
  }
  if (r != 0) {
    int parent = ((r - recv_mask) + root) % n;
    co_await recv(buf, parent, tag);
  }
  // Forward to children: bits above our highest set bit.
  for (int mask = (r == 0 ? 1 : recv_mask << 1); mask < n; mask <<= 1) {
    if (r + mask < n) {
      int child = (r + mask + root) % n;
      co_await send(ByteSpan{buf.data(), buf.size()}, child, tag);
    }
  }
}

sim::Task<void> Comm::reduce_sum(std::span<double> data, int root) {
  const int n = size();
  if (n == 1) co_return;
  const int me = rank();
  const int r = (me - root + n) % n;
  const int tag = kCollectiveTagBase + 64;
  Bytes tmp(data.size_bytes());
  for (int mask = 1; mask < n; mask <<= 1) {
    if (r & mask) {
      int parent = ((r - mask) + root) % n;
      co_await send(ByteSpan{reinterpret_cast<const std::byte*>(data.data()),
                             data.size_bytes()},
                    parent, tag);
      co_return;
    }
    if (r + mask < n) {
      int child = (r + mask + root) % n;
      co_await recv(MutByteSpan{tmp}, child, tag);
      const double* in = reinterpret_cast<const double*>(tmp.data());
      for (std::size_t i = 0; i < data.size(); ++i) data[i] += in[i];
    }
  }
}

sim::Task<void> Comm::allreduce_sum(std::span<double> data) {
  // Qualified calls: this is the host-level algorithm (and the ablation
  // baseline for the NIC-offloaded path), so it must not virtual-dispatch
  // back into a backend override of reduce/bcast.
  co_await Comm::reduce_sum(data, 0);
  co_await Comm::bcast(MutByteSpan{reinterpret_cast<std::byte*>(data.data()),
                                   data.size_bytes()},
                       0);
}

sim::Task<void> Comm::gather(ByteSpan block, MutByteSpan recvbuf, int root) {
  const int n = size();
  const int me = rank();
  const int tag = kCollectiveTagBase + 96;
  if (me == root) {
    assert(recvbuf.size() >= block.size() * static_cast<std::size_t>(n));
    std::memcpy(recvbuf.data() + me * block.size(), block.data(),
                block.size());
    for (int src = 0; src < n; ++src) {
      if (src == me) continue;
      co_await recv(recvbuf.subspan(src * block.size(), block.size()), src,
                    tag);
    }
  } else {
    co_await send(block, root, tag);
  }
}

sim::Task<void> Comm::scatter(ByteSpan sendbuf, MutByteSpan block,
                              int root) {
  const int n = size();
  const int me = rank();
  const int tag = kCollectiveTagBase + 128;
  const std::size_t bs = block.size();
  if (me == root) {
    assert(sendbuf.size() >= bs * static_cast<std::size_t>(n));
    std::memcpy(block.data(), sendbuf.data() + me * bs, bs);
    for (int dst = 0; dst < n; ++dst) {
      if (dst == me) continue;
      co_await send(sendbuf.subspan(dst * bs, bs), dst, tag);
    }
  } else {
    co_await recv(block, root, tag);
  }
}

sim::Task<void> Comm::allgather(ByteSpan block, MutByteSpan recvbuf) {
  const int n = size();
  const int me = rank();
  const int tag = kCollectiveTagBase + 160;
  const std::size_t bs = block.size();
  assert(recvbuf.size() >= bs * static_cast<std::size_t>(n));
  std::memcpy(recvbuf.data() + me * bs, block.data(), bs);
  // Ring allgather: n-1 steps, each forwarding the block received last.
  const int right = (me + 1) % n;
  const int left = (me - 1 + n) % n;
  int have = me;  // index of the block we forward next
  for (int step = 0; step < n - 1; ++step) {
    int incoming = (have - 1 + n) % n;
    co_await sendrecv(recvbuf.subspan(have * bs, bs), right, tag + step,
                      recvbuf.subspan(incoming * bs, bs), left, tag + step);
    have = incoming;
  }
}

sim::Task<void> Comm::alltoall(ByteSpan sendbuf, MutByteSpan recvbuf) {
  const int n = size();
  const int me = rank();
  const int tag = kCollectiveTagBase + 224;
  const std::size_t bs = sendbuf.size() / static_cast<std::size_t>(n);
  assert(sendbuf.size() == bs * static_cast<std::size_t>(n));
  assert(recvbuf.size() >= sendbuf.size());
  std::memcpy(recvbuf.data() + me * bs, sendbuf.data() + me * bs, bs);
  // Pairwise exchange: step k pairs me with me^k... for non-power-of-two
  // sizes use the rotation schedule instead.
  for (int step = 1; step < n; ++step) {
    int to = (me + step) % n;
    int from = (me - step + n) % n;
    co_await sendrecv(sendbuf.subspan(to * bs, bs), to, tag + step,
                      recvbuf.subspan(from * bs, bs), from, tag + step);
  }
}

}  // namespace fmx::mpi
