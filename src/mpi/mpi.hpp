// MPI-FM: an MPI point-to-point + collectives subset layered over Fast
// Messages, in two generations:
//   * MpiFm1 (mpi_fm1.hpp) — over FM 1.x, with the interface-induced copies
//     the paper analyses in §3.2 (send staging; handler cannot reach the
//     posted buffer, so every message passes through MPI temp buffers).
//   * MpiFm2 (mpi_fm2.hpp) — over FM 2.x, using gather for the 24-byte MPI
//     header, layer interleaving to steer payloads directly into posted
//     buffers, and receiver flow control (§4.1).
//
// Both share this communicator interface, so benchmarks and examples run
// unchanged on either generation.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "common/buffer.hpp"
#include "mpi/match.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace fmx::mpi {

/// 24-byte MPI envelope prepended to every message ("the minimum length of
/// the header added by the MPI code is 24 bytes", §5).
struct MpiHeader {
  std::int32_t tag = 0;
  std::int32_t src_rank = -1;
  std::uint32_t bytes = 0;
  std::uint16_t kind = 0;   // 0 = point-to-point, 1..n collective internals
  std::uint16_t flags = 0;
  std::uint64_t seq = 0;
};
static_assert(sizeof(MpiHeader) == 24);

class Comm {
 public:
  virtual ~Comm() = default;

  virtual int rank() const = 0;
  virtual int size() const = 0;
  /// Spend `t` of host CPU time (models an application compute phase).
  virtual sim::Task<void> host_compute(sim::Ps t) = 0;

  // --- point to point ----------------------------------------------------
  /// Blocking standard send (eager protocol: completes when the data has
  /// been handed to FM).
  sim::Task<void> send(ByteSpan data, int dst, int tag) {
    return do_send(data, dst, tag);
  }
  /// Nonblocking receive: posts the buffer and returns immediately.
  sim::Task<Request> irecv(MutByteSpan buf, int src, int tag) {
    return do_post_recv(buf, src, tag);
  }
  /// Eager isend: data is buffered/injected before return.
  sim::Task<Request> isend(ByteSpan data, int dst, int tag);

  sim::Task<void> recv(MutByteSpan buf, int src, int tag,
                       Status* status = nullptr);
  /// Nonblocking probe: one progress round, then report whether a matching
  /// message has arrived (envelope visible) without consuming it.
  sim::Task<bool> iprobe(int src, int tag, Status* status = nullptr);
  /// Blocking probe: progress until a matching envelope is present.
  sim::Task<void> probe(int src, int tag, Status* status = nullptr);
  sim::Task<void> wait(Request req, Status* status = nullptr);
  sim::Task<void> waitall(std::span<Request> reqs);
  /// Progress the stack once and report whether the request completed.
  sim::Task<bool> test(Request req);
  sim::Task<void> sendrecv(ByteSpan senddata, int dst, int sendtag,
                           MutByteSpan recvbuf, int src, int recvtag,
                           Status* status = nullptr);

  // --- collectives --------------------------------------------------------
  // The base implementations run over point-to-point (dissemination
  // barrier, binomial bcast/reduce). Virtual so a backend can substitute
  // offloaded algorithms — MpiFm2 with nic_collectives forwards these four
  // through the NIC control program (myrinet/coll.hpp) and keeps the host-
  // level versions as the ablation.
  virtual sim::Task<void> barrier();
  virtual sim::Task<void> bcast(MutByteSpan buf, int root);
  /// Element-wise sum reduction of doubles to `root` (in place at root).
  virtual sim::Task<void> reduce_sum(std::span<double> data, int root);
  virtual sim::Task<void> allreduce_sum(std::span<double> data);
  /// Gather equal-sized blocks to root (recvbuf size = size() * block).
  sim::Task<void> gather(ByteSpan block, MutByteSpan recvbuf, int root);
  /// Scatter equal-sized blocks from root (sendbuf size = size() * block).
  sim::Task<void> scatter(ByteSpan sendbuf, MutByteSpan block, int root);
  /// Every rank ends with everyone's block, rank-ordered.
  sim::Task<void> allgather(ByteSpan block, MutByteSpan recvbuf);
  /// Personalized exchange: block i of sendbuf goes to rank i.
  sim::Task<void> alltoall(ByteSpan sendbuf, MutByteSpan recvbuf);

  struct Stats {
    std::uint64_t sends = 0;
    std::uint64_t recvs = 0;
    std::uint64_t posted_hits = 0;   // arrivals that found a posted buffer
    std::uint64_t unexpected = 0;    // arrivals queued as unexpected
  };
  const Stats& stats() const noexcept { return stats_; }

 protected:
  virtual sim::Task<void> do_send(ByteSpan data, int dst, int tag) = 0;
  virtual sim::Task<Request> do_post_recv(MutByteSpan buf, int src,
                                          int tag) = 0;
  /// Drive FM extraction until the predicate holds.
  virtual sim::Task<void> progress_until(std::function<bool()> done) = 0;
  /// One nonblocking extraction round (for test()).
  virtual sim::Task<void> progress_once() = 0;
  /// Envelope of the first matching unexpected arrival, if any (probe).
  virtual std::optional<Status> peek_unexpected(int src, int tag) = 0;

  static constexpr int kCollectiveTagBase = 1 << 24;

  Stats stats_;
};

}  // namespace fmx::mpi
