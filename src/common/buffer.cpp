#include "common/buffer.hpp"

#include <cstdio>

namespace fmx {
namespace {

// splitmix64-style mixing: cheap, stateless, good dispersion.
constexpr std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

constexpr std::byte pattern_byte(std::uint64_t seed, std::size_t i) noexcept {
  return static_cast<std::byte>(mix(seed ^ (i * 0x2545F4914F6CDD1Dull)) & 0xFF);
}

}  // namespace

Bytes pattern_bytes(std::uint64_t seed, std::size_t len) {
  Bytes out(len);
  for (std::size_t i = 0; i < len; ++i) out[i] = pattern_byte(seed, i);
  return out;
}

std::ptrdiff_t pattern_mismatch(std::uint64_t seed, std::size_t offset,
                                ByteSpan data) noexcept {
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (data[i] != pattern_byte(seed, offset + i)) {
      return static_cast<std::ptrdiff_t>(i);
    }
  }
  return -1;
}

std::string format_mbps(double bytes_per_second) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f MB/s", bytes_per_second / 1e6);
  return buf;
}

}  // namespace fmx
