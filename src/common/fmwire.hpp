// Packet-level wire format shared by the FM 1.x and FM 2.x libraries.
// Serialized for real into every packet's first 16 bytes.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstring>

#include "common/buffer.hpp"

namespace fmx::wire {

enum class PacketType : std::uint16_t { kData = 1, kCredit = 2 };

struct PacketHeader {
  std::uint16_t type = 0;      // PacketType
  std::uint16_t handler = 0;   // destination handler id
  std::uint32_t msg_bytes = 0; // total message payload length
  std::uint16_t pkt_index = 0; // packet index within the message
  std::uint16_t credits = 0;   // piggybacked credit return
  std::uint32_t msg_seq = 0;   // per (src,dst) message sequence
};
static_assert(sizeof(PacketHeader) == 16);
static_assert(std::is_trivially_copyable_v<PacketHeader>);

inline PacketHeader parse_header(ByteSpan bytes) {
  assert(bytes.size() >= sizeof(PacketHeader));
  PacketHeader h;
  std::memcpy(&h, bytes.data(), sizeof(h));
  return h;
}

inline void store_header(MutByteSpan bytes, const PacketHeader& h) {
  assert(bytes.size() >= sizeof(PacketHeader));
  std::memcpy(bytes.data(), &h, sizeof(h));
}

}  // namespace fmx::wire
