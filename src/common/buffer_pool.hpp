// Recycling pool for packet-sized byte buffers. The simulated data path
// creates and destroys a Bytes per packet (FM frame assembly, wire
// transit, NIC receive staging); without pooling every packet pays a
// malloc/free pair even in steady state. The pool keeps freed buffers in
// power-of-two capacity classes and hands them back on acquire, so a
// steady stream reaches its high-water mark and then stops touching the
// allocator entirely.
//
// Buffers are returned with size() == n but are NOT zeroed: every producer
// on the data path overwrites the full payload before the buffer reaches
// the wire (FM's gather/stream copies fill byte 0..n-1, headers are
// memcpy'd over the first kHdr bytes). Callers that need cleared memory
// must clear it themselves.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/buffer.hpp"
#include "common/buffer_ref.hpp"

namespace fmx {

class BufferPool {
 public:
  struct Stats {
    std::uint64_t acquires = 0;      // total acquire() calls
    std::uint64_t pool_hits = 0;     // served from a free list
    std::uint64_t fresh_allocs = 0;  // had to allocate a new buffer
    std::uint64_t releases = 0;      // total release() calls (non-empty)
    std::uint64_t outstanding = 0;   // acquired and not yet released
    std::uint64_t outstanding_high = 0;
    std::uint64_t free_buffers = 0;  // parked in free lists right now
    std::uint64_t free_high = 0;
  };

  /// `retain_bytes_per_class` is the byte budget each size class may park
  /// (see release()). The default fits paper-scale clusters; thousand-host
  /// fabrics raise it so their much larger live-buffer high water still
  /// comes home to the pool instead of the allocator.
  explicit BufferPool(
      std::size_t retain_bytes_per_class = kDefaultRetainBytesPerClass)
      : retain_bytes_per_class_(retain_bytes_per_class) {}
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;
  ~BufferPool();

  /// Get a buffer with size() == n. Reuses a pooled buffer whose capacity
  /// covers n when one is available. If `fresh` is non-null it is set to
  /// whether the buffer had to be newly allocated (pool miss).
  Bytes acquire(std::size_t n, bool* fresh = nullptr);

  /// Return a buffer to the pool. Buffers with no capacity are ignored;
  /// classes already at their retention limit drop the excess back to the
  /// allocator so a burst can't pin memory forever. The limit is a byte
  /// budget per class (with a small floor), not a flat count: packet-sized
  /// classes retain thousands of buffers — batched parallel quanta
  /// legitimately keep hundreds of packets alive at once, and a flat cap
  /// would put the allocator back on the steady-state path every burst.
  void release(Bytes&& b);

  /// Refcounted sibling of acquire(): a unique BufferRef with size() == n,
  /// backed by an intrusively-headed block recycled through the pool when
  /// the last reference drops. The bytes are NOT initialized (no hidden
  /// zero-fill — producers overwrite the full view).
  BufferRef acquire_ref(std::size_t n, bool* fresh = nullptr);

  const Stats& stats() const noexcept { return stats_; }

 private:
  friend class BufferRef;

  /// Pop (or allocate) a block covering n; refs=1, size=n, pool=this.
  detail::BlockHeader* take_block(std::size_t n, bool* fresh);
  /// Dead block coming home (refs hit zero). Shares the retain policy and
  /// Stats counters with the Bytes side.
  void return_block(detail::BlockHeader* h) noexcept;

  // Capacity classes 2^6 (64 B) .. 2^20 (1 MiB); anything larger is clamped
  // into the top class (its capacity still covers any request routed there).
  static constexpr std::size_t kMinClassLog2 = 6;
  static constexpr std::size_t kMaxClassLog2 = 20;
  static constexpr std::size_t kClasses = kMaxClassLog2 - kMinClassLog2 + 1;
  static constexpr std::size_t kRetainPerClass = 64;  // floor, any class
  static constexpr std::size_t kDefaultRetainBytesPerClass =
      std::size_t{4} << 20;

  static std::size_t class_for_request(std::size_t n) noexcept;
  static std::size_t class_for_capacity(std::size_t cap) noexcept;
  /// Max buffers parked in class `cls`: the byte budget divided by the
  /// class capacity, floored at kRetainPerClass.
  std::size_t retain_limit(std::size_t cls) const noexcept {
    const std::size_t by_bytes =
        retain_bytes_per_class_ >> (cls + kMinClassLog2);
    return by_bytes > kRetainPerClass ? by_bytes : kRetainPerClass;
  }

  std::size_t retain_bytes_per_class_ = kDefaultRetainBytesPerClass;
  std::array<std::vector<Bytes>, kClasses> free_;
  std::array<std::vector<detail::BlockHeader*>, kClasses> free_blocks_;
  Stats stats_;
};

}  // namespace fmx
