// CRC-32 (IEEE 802.3 polynomial, reflected), used to model Myrinet's
// per-packet CRC. Packets really carry and verify this checksum so the
// bit-error-injection tests can observe genuine detection behaviour.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace fmx {

/// Incremental CRC-32. `crc32(data)` computes the checksum of a whole
/// buffer; the (seed, data) overload allows chunked computation:
///   crc = crc32_update(crc32_init(), chunk1); crc = crc32_update(crc, chunk2);
///   value = crc32_final(crc);
/// The implementation is slice-by-8 (eight table lookups advance the state
/// a full 8-byte word) with a bytewise tail; chunk boundaries do not affect
/// the result.
std::uint32_t crc32(std::span<const std::byte> data) noexcept;

constexpr std::uint32_t crc32_init() noexcept { return 0xFFFFFFFFu; }
std::uint32_t crc32_update(std::uint32_t state,
                           std::span<const std::byte> data) noexcept;
constexpr std::uint32_t crc32_final(std::uint32_t state) noexcept {
  return state ^ 0xFFFFFFFFu;
}

namespace detail {
/// One-byte-at-a-time reference implementation; kept for tests (slice-by-8
/// must agree on every input) and as the tail loop of crc32_update.
std::uint32_t crc32_update_bytewise(std::uint32_t state,
                                    std::span<const std::byte> data) noexcept;
}  // namespace detail

}  // namespace fmx
