// Refcounted, immutable view of a pooled byte block — the zero-copy
// currency of the simulator's data plane. A packet payload, a NIC's
// retained go-back-N copy, and a receiver-side sub-slice can all alias the
// same underlying block; only the *modeled* memcpy cost (Host::copy /
// Host::charge_copy) moves, not the bytes.
//
// Sharing rules:
//  - Reads go through the implicit ByteSpan view; they never copy.
//  - Writes go through mutable_bytes(), which clones the visible view
//    first iff the block is shared (copy-on-write). Fault-injected bit
//    errors on one hop therefore can never leak into sibling references.
//  - The CRC-32 over a whole-block view is memoized in the block header
//    (sealed once at WirePacket::make time) and invalidated by any
//    mutable_bytes() call, so multi-hop delivery verifies integrity with a
//    32-bit compare instead of re-hashing the payload.
//
// Blocks come from a BufferPool (intrusive header, steady state stays
// allocation-free) or stand alone (copy_of, used by tests and the Bytes
// compatibility shims). Refcounts are intentionally non-atomic: a block's
// references never cross shard threads — the cross-shard SPSC path copies
// the bytes and drops the source reference at the boundary.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>

#include "common/buffer.hpp"
#include "common/crc32.hpp"

namespace fmx {

class BufferPool;

namespace detail {

/// Header living immediately before the data bytes of every block — except
/// for *external* blocks (BufferRef::borrow), whose header stands alone and
/// points at caller-owned memory (a pinned/registered user buffer on the
/// RDMA path). External blocks are never pool-backed.
struct BlockHeader {
  std::uint32_t refs = 0;
  std::uint32_t capacity = 0;   ///< data bytes that follow this header
  std::uint32_t size = 0;       ///< logical size of the whole-block view
  std::uint32_t crc = 0;        ///< memoized crc32 over data()[0, crc_len)
  std::uint32_t crc_len = 0;
  bool crc_valid = false;
  BufferPool* pool = nullptr;   ///< owner; nullptr = free-standing block
  std::byte* ext = nullptr;     ///< external data; nullptr = bytes follow

  std::byte* data() noexcept {
    return ext != nullptr ? ext : reinterpret_cast<std::byte*>(this + 1);
  }
  const std::byte* data() const noexcept {
    return ext != nullptr ? ext
                          : reinterpret_cast<const std::byte*>(this + 1);
  }
};

/// Allocate a free-standing block (refs=1, size=capacity, pool=nullptr).
BlockHeader* alloc_block(std::size_t capacity);
void free_block(BlockHeader* h) noexcept;

}  // namespace detail

class BufferRef {
 public:
  BufferRef() noexcept = default;

  BufferRef(const BufferRef& o) noexcept : h_(o.h_), off_(o.off_), len_(o.len_) {
    if (h_ != nullptr) ++h_->refs;
  }
  BufferRef& operator=(const BufferRef& o) noexcept {
    if (o.h_ != nullptr) ++o.h_->refs;  // order-safe under self-assignment
    drop();
    h_ = o.h_;
    off_ = o.off_;
    len_ = o.len_;
    return *this;
  }
  BufferRef(BufferRef&& o) noexcept
      : h_(std::exchange(o.h_, nullptr)),
        off_(std::exchange(o.off_, 0)),
        len_(std::exchange(o.len_, 0)) {}
  BufferRef& operator=(BufferRef&& o) noexcept {
    if (this != &o) {
      drop();
      h_ = std::exchange(o.h_, nullptr);
      off_ = std::exchange(o.off_, 0);
      len_ = std::exchange(o.len_, 0);
    }
    return *this;
  }
  ~BufferRef() { drop(); }

  const std::byte* data() const noexcept {
    return h_ != nullptr ? h_->data() + off_ : nullptr;
  }
  std::size_t size() const noexcept { return len_; }
  bool empty() const noexcept { return len_ == 0; }
  ByteSpan span() const noexcept { return {data(), len_}; }
  operator ByteSpan() const noexcept { return span(); }  // NOLINT(google-explicit-constructor)

  /// References (including this one) sharing the underlying block.
  std::uint32_t use_count() const noexcept {
    return h_ != nullptr ? h_->refs : 0;
  }

  /// Release this reference now (last one out returns the block).
  void reset() noexcept {
    drop();
    h_ = nullptr;
    off_ = 0;
    len_ = 0;
  }

  /// A view of [off, off+n) sharing the same block.
  BufferRef subslice(std::size_t off, std::size_t n) const noexcept {
    assert(off + n <= len_);
    if (h_ == nullptr) return {};
    ++h_->refs;
    return BufferRef{h_, static_cast<std::uint32_t>(off_ + off),
                     static_cast<std::uint32_t>(n)};
  }

  /// Writable bytes of this view. Clones the visible range iff the block
  /// is shared — or external, whose caller-owned bytes are read-only
  /// through borrowed views — so siblings never observe the write; always
  /// invalidates the block's CRC memo.
  MutByteSpan mutable_bytes() {
    if (h_ == nullptr) return {};
    if (h_->refs > 1 || h_->ext != nullptr) cow_clone();
    h_->crc_valid = false;
    return {h_->data() + off_, len_};
  }

  /// Shrink/grow (within capacity) a unique whole-block view, e.g. an FM
  /// send buffer sealed at less than the segment-size estimate.
  void set_size(std::size_t n) noexcept {
    assert(h_ != nullptr && h_->refs == 1 && off_ == 0 &&
           n <= h_->capacity);
    h_->size = static_cast<std::uint32_t>(n);
    h_->crc_valid = false;
    len_ = static_cast<std::uint32_t>(n);
  }

  /// CRC-32 of the view; memoized in the header for whole-from-offset-0
  /// views (the wire-packet case), recomputed for sub-slices.
  std::uint32_t crc() const noexcept {
    if (h_ == nullptr) return crc32(ByteSpan{});
    if (off_ == 0) {
      if (!h_->crc_valid || h_->crc_len != len_) {
        h_->crc = crc32(span());
        h_->crc_len = len_;
        h_->crc_valid = true;
      }
      return h_->crc;
    }
    return crc32(span());
  }

  /// Free-standing deep copy (not pool-backed); compatibility shim for
  /// call sites that still hand over Bytes.
  static BufferRef copy_of(ByteSpan src);

  /// Borrow caller-owned memory with ZERO physical copy: the returned ref
  /// (and every subslice of it) reads the caller's bytes in place. This is
  /// the RDMA pin-down contract — the memory must stay valid and unmodified
  /// until every reference is gone; use_count() lets the owner wait for
  /// that (registration release). Writes through mutable_bytes() still COW
  /// into a private internal block, so the caller's memory is never
  /// modified through a borrowed view.
  static BufferRef borrow(ByteSpan src);

  /// Wrap a producer-initialized block (refs already 1).
  static BufferRef adopt(detail::BlockHeader* h) noexcept {
    return BufferRef{h, 0, h != nullptr ? h->size : 0};
  }

 private:
  BufferRef(detail::BlockHeader* h, std::uint32_t off, std::uint32_t len) noexcept
      : h_(h), off_(off), len_(len) {}

  void drop() noexcept {
    if (h_ != nullptr && --h_->refs == 0) release_block(h_);
  }

  void cow_clone();                                        // out of line
  static void release_block(detail::BlockHeader* h) noexcept;  // out of line

  detail::BlockHeader* h_ = nullptr;
  std::uint32_t off_ = 0;
  std::uint32_t len_ = 0;
};

}  // namespace fmx
