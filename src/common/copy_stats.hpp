// Physical data-movement counters for the simulator process itself —
// deliberately separate from the *modeled* copy charges in sim::CostLedger.
// The cost model says what the simulated machine paid (Host::copy /
// Host::charge_copy); these counters say what the simulator actually did
// with host RAM, so benchmarks and tests can pin "zero real copies per
// wire hop" without touching any determinism digest.
//
// Two categories:
//  - endpoint: copies the simulated API itself requires (gather into a
//    send buffer, scatter into a user receive buffer, socket buffering).
//    These are charged AND physical — the simulator moves the bytes once,
//    exactly where the model says a memcpy happens.
//  - hop: copies that are pure simulator overhead with no modeled charge:
//    copy-on-write clones (fault corruption of a shared block) and the
//    cross-shard SPSC boundary (one encode + one decode per crossing).
//    Steady-state serial traffic must show zero of these.
//  - rdma: placements performed by the modeled NIC DMA engine writing a
//    remote-write payload directly into a registered (pinned) user buffer.
//    The host CPU never touches these bytes — no memcpy charge, no
//    endpoint count — but the simulator must still materialize them once,
//    exactly where the hardware's DMA write lands. The rendezvous path's
//    zero-copy proof is: endpoint bytes == control-message bytes only,
//    hop copies == 0, rdma bytes == payload bytes (each byte placed once).
//
// Counters are relaxed atomics so per-shard threads can bump them without
// synchronization; exact cross-thread ordering is irrelevant for totals.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace fmx {

class CopyStats {
 public:
  struct Snapshot {
    std::uint64_t endpoint_copies = 0;
    std::uint64_t endpoint_bytes = 0;
    std::uint64_t hop_copies = 0;
    std::uint64_t hop_bytes = 0;
    std::uint64_t rdma_writes = 0;
    std::uint64_t rdma_bytes = 0;
  };

  static CopyStats& instance() noexcept {
    static CopyStats s;
    return s;
  }

  void count_endpoint(std::size_t n) noexcept {
    endpoint_copies_.fetch_add(1, std::memory_order_relaxed);
    endpoint_bytes_.fetch_add(n, std::memory_order_relaxed);
  }
  void count_hop(std::size_t n) noexcept {
    hop_copies_.fetch_add(1, std::memory_order_relaxed);
    hop_bytes_.fetch_add(n, std::memory_order_relaxed);
  }
  void count_rdma(std::size_t n) noexcept {
    rdma_writes_.fetch_add(1, std::memory_order_relaxed);
    rdma_bytes_.fetch_add(n, std::memory_order_relaxed);
  }

  Snapshot snapshot() const noexcept {
    return {endpoint_copies_.load(std::memory_order_relaxed),
            endpoint_bytes_.load(std::memory_order_relaxed),
            hop_copies_.load(std::memory_order_relaxed),
            hop_bytes_.load(std::memory_order_relaxed),
            rdma_writes_.load(std::memory_order_relaxed),
            rdma_bytes_.load(std::memory_order_relaxed)};
  }

  void reset() noexcept {
    endpoint_copies_.store(0, std::memory_order_relaxed);
    endpoint_bytes_.store(0, std::memory_order_relaxed);
    hop_copies_.store(0, std::memory_order_relaxed);
    hop_bytes_.store(0, std::memory_order_relaxed);
    rdma_writes_.store(0, std::memory_order_relaxed);
    rdma_bytes_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> endpoint_copies_{0};
  std::atomic<std::uint64_t> endpoint_bytes_{0};
  std::atomic<std::uint64_t> hop_copies_{0};
  std::atomic<std::uint64_t> hop_bytes_{0};
  std::atomic<std::uint64_t> rdma_writes_{0};
  std::atomic<std::uint64_t> rdma_bytes_{0};
};

inline void count_endpoint_copy(std::size_t n) noexcept {
  CopyStats::instance().count_endpoint(n);
}
inline void count_hop_copy(std::size_t n) noexcept {
  CopyStats::instance().count_hop(n);
}
inline void count_rdma_write(std::size_t n) noexcept {
  CopyStats::instance().count_rdma(n);
}

}  // namespace fmx
