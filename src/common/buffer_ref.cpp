#include "common/buffer_ref.hpp"

#include <cstring>
#include <new>

#include "common/buffer_pool.hpp"
#include "common/copy_stats.hpp"

namespace fmx {
namespace detail {

BlockHeader* alloc_block(std::size_t capacity) {
  void* mem = ::operator new(sizeof(BlockHeader) + capacity);
  auto* h = new (mem) BlockHeader{};
  h->refs = 1;
  h->capacity = static_cast<std::uint32_t>(capacity);
  h->size = h->capacity;
  return h;
}

void free_block(BlockHeader* h) noexcept {
  h->~BlockHeader();
  ::operator delete(h);
}

}  // namespace detail

void BufferRef::release_block(detail::BlockHeader* h) noexcept {
  if (h->pool != nullptr) {
    h->pool->return_block(h);
  } else {
    detail::free_block(h);
  }
}

// Clone the visible view into a fresh block and retarget this reference.
// Called when the block is shared (refs > 1) or external: a sole borrowed
// reference still clones, because the caller's pinned bytes are read-only
// through borrowed views.
void BufferRef::cow_clone() {
  detail::BlockHeader* nh = h_->pool != nullptr
                                ? h_->pool->take_block(len_, nullptr)
                                : detail::alloc_block(len_);
  nh->size = len_;
  std::memcpy(nh->data(), h_->data() + off_, len_);
  count_hop_copy(len_);
  if (--h_->refs == 0) release_block(h_);
  h_ = nh;
  off_ = 0;
}

BufferRef BufferRef::copy_of(ByteSpan src) {
  detail::BlockHeader* h = detail::alloc_block(src.size());
  if (!src.empty()) std::memcpy(h->data(), src.data(), src.size());
  return adopt(h);
}

BufferRef BufferRef::borrow(ByteSpan src) {
  // Header-only allocation: the block's data() aliases the caller's bytes.
  detail::BlockHeader* h = detail::alloc_block(0);
  h->ext = const_cast<std::byte*>(src.data());
  h->capacity = static_cast<std::uint32_t>(src.size());
  h->size = static_cast<std::uint32_t>(src.size());
  return adopt(h);
}

}  // namespace fmx
