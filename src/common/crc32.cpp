#include "common/crc32.hpp"

#include <array>

namespace fmx {
namespace {

constexpr std::uint32_t kPoly = 0xEDB88320u;  // reflected IEEE 802.3

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (kPoly ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr auto kTable = make_table();

}  // namespace

std::uint32_t crc32_update(std::uint32_t state,
                           std::span<const std::byte> data) noexcept {
  for (std::byte b : data) {
    state = kTable[(state ^ static_cast<std::uint8_t>(b)) & 0xFFu] ^
            (state >> 8);
  }
  return state;
}

std::uint32_t crc32(std::span<const std::byte> data) noexcept {
  return crc32_final(crc32_update(crc32_init(), data));
}

}  // namespace fmx
