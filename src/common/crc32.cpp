#include "common/crc32.hpp"

#include <array>
#include <bit>
#include <cstring>

namespace fmx {
namespace {

constexpr std::uint32_t kPoly = 0xEDB88320u;  // reflected IEEE 802.3

// Slice-by-8 (Intel, "Novel Table Lookup-Based Algorithms for High-
// Performance CRC Generation"): tables[k][b] is the CRC contribution of
// byte b positioned k bytes before the end of an 8-byte block, so eight
// independent lookups advance the CRC a full 8 bytes per iteration.
// tables[0] is the classic bytewise table.
constexpr std::array<std::array<std::uint32_t, 256>, 8> make_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (kPoly ^ (c >> 1)) : (c >> 1);
    }
    t[0][i] = c;
  }
  for (std::size_t k = 1; k < 8; ++k) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      t[k][i] = t[0][t[k - 1][i] & 0xFFu] ^ (t[k - 1][i] >> 8);
    }
  }
  return t;
}

constexpr auto kTables = make_tables();

}  // namespace

namespace detail {

std::uint32_t crc32_update_bytewise(std::uint32_t state,
                                    std::span<const std::byte> data) noexcept {
  for (std::byte b : data) {
    state = kTables[0][(state ^ static_cast<std::uint8_t>(b)) & 0xFFu] ^
            (state >> 8);
  }
  return state;
}

}  // namespace detail

std::uint32_t crc32_update(std::uint32_t state,
                           std::span<const std::byte> data) noexcept {
  const std::byte* p = data.data();
  std::size_t n = data.size();

  if constexpr (std::endian::native == std::endian::little) {
    while (n >= 8) {
      std::uint64_t word;
      std::memcpy(&word, p, 8);
      word ^= state;
      state = kTables[7][word & 0xFFu] ^
              kTables[6][(word >> 8) & 0xFFu] ^
              kTables[5][(word >> 16) & 0xFFu] ^
              kTables[4][(word >> 24) & 0xFFu] ^
              kTables[3][(word >> 32) & 0xFFu] ^
              kTables[2][(word >> 40) & 0xFFu] ^
              kTables[1][(word >> 48) & 0xFFu] ^
              kTables[0][(word >> 56) & 0xFFu];
      p += 8;
      n -= 8;
    }
  }
  return detail::crc32_update_bytewise(state, {p, n});
}

std::uint32_t crc32(std::span<const std::byte> data) noexcept {
  return crc32_final(crc32_update(crc32_init(), data));
}

}  // namespace fmx
