// Byte-buffer utilities shared by every layer. All payload data in the
// simulation is carried in real buffers and really copied, so end-to-end
// integrity (and copy counts) are observable properties, not assumptions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace fmx {

using Bytes = std::vector<std::byte>;
using ByteSpan = std::span<const std::byte>;
using MutByteSpan = std::span<std::byte>;

/// View any trivially-copyable object as bytes.
template <typename T>
ByteSpan as_bytes_of(const T& v) noexcept {
  static_assert(std::is_trivially_copyable_v<T>);
  return {reinterpret_cast<const std::byte*>(&v), sizeof(T)};
}

template <typename T>
MutByteSpan as_writable_bytes_of(T& v) noexcept {
  static_assert(std::is_trivially_copyable_v<T>);
  return {reinterpret_cast<std::byte*>(&v), sizeof(T)};
}

/// Deterministic pseudo-random payload used by tests and benchmarks:
/// byte i of a message with the given seed is a pure function of (seed, i),
/// so any receiver can validate any slice without shipping the expected
/// data out of band.
Bytes pattern_bytes(std::uint64_t seed, std::size_t len);

/// Check `data` against the pattern starting at `offset` of pattern `seed`.
/// Returns the index of the first mismatching byte, or -1 if all match.
std::ptrdiff_t pattern_mismatch(std::uint64_t seed, std::size_t offset,
                                ByteSpan data) noexcept;

/// Human-readable "12.3 MB/s" style formatting used by the bench harness.
std::string format_mbps(double bytes_per_second);

}  // namespace fmx
