#include "common/buffer_pool.hpp"

#include <bit>
#include <utility>

namespace fmx {

// Smallest class whose buffers are guaranteed to hold n bytes.
std::size_t BufferPool::class_for_request(std::size_t n) noexcept {
  if (n <= (std::size_t{1} << kMinClassLog2)) return 0;
  std::size_t log2 = std::bit_width(n - 1);  // ceil(log2(n))
  return log2 > kMaxClassLog2 ? kClasses : log2 - kMinClassLog2;
}

// Largest class c with 2^(c+kMin) <= cap: a buffer parked in class c can
// serve any request routed to class c by class_for_request.
std::size_t BufferPool::class_for_capacity(std::size_t cap) noexcept {
  std::size_t log2 = std::bit_width(cap) - 1;  // floor(log2(cap))
  if (log2 < kMinClassLog2) return kClasses;   // too small to bother pooling
  if (log2 > kMaxClassLog2) log2 = kMaxClassLog2;
  return log2 - kMinClassLog2;
}

Bytes BufferPool::acquire(std::size_t n, bool* fresh) {
  ++stats_.acquires;
  if (++stats_.outstanding > stats_.outstanding_high) {
    stats_.outstanding_high = stats_.outstanding;
  }
  std::size_t cls = class_for_request(n);
  if (cls < kClasses && !free_[cls].empty()) {
    Bytes b = std::move(free_[cls].back());
    free_[cls].pop_back();
    --stats_.free_buffers;
    ++stats_.pool_hits;
    if (fresh != nullptr) *fresh = false;
    b.resize(n);  // capacity >= 2^(cls+kMin) >= n: never reallocates
    return b;
  }
  ++stats_.fresh_allocs;
  if (fresh != nullptr) *fresh = true;
  Bytes b;
  // Round fresh allocations up to the class size so the buffer lands back
  // in the same class on release regardless of n.
  if (cls < kClasses) b.reserve(std::size_t{1} << (cls + kMinClassLog2));
  b.resize(n);
  return b;
}

BufferPool::~BufferPool() {
  for (auto& cls : free_blocks_) {
    for (detail::BlockHeader* h : cls) detail::free_block(h);
  }
}

BufferRef BufferPool::acquire_ref(std::size_t n, bool* fresh) {
  return BufferRef::adopt(take_block(n, fresh));
}

detail::BlockHeader* BufferPool::take_block(std::size_t n, bool* fresh) {
  ++stats_.acquires;
  if (++stats_.outstanding > stats_.outstanding_high) {
    stats_.outstanding_high = stats_.outstanding;
  }
  std::size_t cls = class_for_request(n);
  detail::BlockHeader* h = nullptr;
  if (cls < kClasses && !free_blocks_[cls].empty()) {
    h = free_blocks_[cls].back();
    free_blocks_[cls].pop_back();
    --stats_.free_buffers;
    ++stats_.pool_hits;
    if (fresh != nullptr) *fresh = false;
  } else {
    // Round up to the class capacity so the block lands back in the same
    // class on return regardless of n (oversize requests keep exact size).
    std::size_t cap = cls < kClasses ? (std::size_t{1} << (cls + kMinClassLog2)) : n;
    h = detail::alloc_block(cap);
    ++stats_.fresh_allocs;
    if (fresh != nullptr) *fresh = true;
  }
  h->refs = 1;
  h->size = static_cast<std::uint32_t>(n);
  h->crc_valid = false;
  h->pool = this;
  return h;
}

void BufferPool::return_block(detail::BlockHeader* h) noexcept {
  ++stats_.releases;
  if (stats_.outstanding > 0) --stats_.outstanding;
  std::size_t cls = class_for_capacity(h->capacity);
  if (cls >= kClasses || free_blocks_[cls].size() >= retain_limit(cls)) {
    detail::free_block(h);
    return;
  }
  free_blocks_[cls].push_back(h);
  if (++stats_.free_buffers > stats_.free_high) {
    stats_.free_high = stats_.free_buffers;
  }
}

void BufferPool::release(Bytes&& b) {
  if (b.capacity() == 0) return;
  ++stats_.releases;
  if (stats_.outstanding > 0) --stats_.outstanding;
  std::size_t cls = class_for_capacity(b.capacity());
  if (cls >= kClasses || free_[cls].size() >= retain_limit(cls)) return;
  free_[cls].push_back(std::move(b));
  if (++stats_.free_buffers > stats_.free_high) {
    stats_.free_high = stats_.free_buffers;
  }
}

}  // namespace fmx
