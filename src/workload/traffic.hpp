// Message-size workload models from the studies the paper builds its case
// on (§2.1): Gusella's diskless-workstation Ethernet study, Kay &
// Pasquale's FDDI TCP/UDP measurements, and the SUNY-Buffalo "average
// 300-400 B" observation. These drive the traffic_replay example and the
// motivation bench; their statistical properties are unit-tested.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "sim/random.hpp"

namespace fmx::workload {

/// A piecewise-uniform message-size distribution: with probability
/// `weight`, draw uniformly from [lo, hi].
struct Bucket {
  double weight;
  std::size_t lo;
  std::size_t hi;
};

class SizeDistribution {
 public:
  SizeDistribution(std::string_view name, std::vector<Bucket> buckets);

  std::size_t sample(sim::Rng& rng) const;
  double mean() const noexcept { return mean_; }
  /// Fraction of messages at or below `cutoff` bytes (exact, analytic).
  double fraction_at_most(std::size_t cutoff) const;
  std::string_view name() const noexcept { return name_; }

  /// Gusella 1990: majority of packets < 576 B; of those, 60% are <= 50 B.
  static SizeDistribution gusella_ethernet();
  /// Kay & Pasquale: > 99% of TCP packets < 200 B.
  static SizeDistribution kay_pasquale_tcp();
  /// Kay & Pasquale: 86% of UDP messages < 200 B (NFS-dominated).
  static SizeDistribution kay_pasquale_udp();
  /// SUNY-Buffalo: average packet sizes of 300-400 B across networks.
  static SizeDistribution suny_buffalo();
  /// Degenerate distributions for controlled experiments.
  static SizeDistribution fixed(std::size_t size);
  static SizeDistribution uniform(std::size_t lo, std::size_t hi);

 private:
  std::string name_;
  std::vector<Bucket> buckets_;  // weights normalized to sum 1
  double mean_;
};

/// Draw `n` message sizes (deterministic per seed).
std::vector<std::size_t> generate_sizes(const SizeDistribution& dist, int n,
                                        std::uint64_t seed);

}  // namespace fmx::workload
