// Message-size workload models from the studies the paper builds its case
// on (§2.1): Gusella's diskless-workstation Ethernet study, Kay &
// Pasquale's FDDI TCP/UDP measurements, and the SUNY-Buffalo "average
// 300-400 B" observation. These drive the traffic_replay example and the
// motivation bench; their statistical properties are unit-tested.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "sim/random.hpp"
#include "sim/time.hpp"

namespace fmx::workload {

/// A piecewise-uniform message-size distribution: with probability
/// `weight`, draw uniformly from [lo, hi].
struct Bucket {
  double weight;
  std::size_t lo;
  std::size_t hi;
};

class SizeDistribution {
 public:
  SizeDistribution(std::string_view name, std::vector<Bucket> buckets);

  std::size_t sample(sim::Rng& rng) const;
  double mean() const noexcept { return mean_; }
  /// Fraction of messages at or below `cutoff` bytes (exact, analytic).
  double fraction_at_most(std::size_t cutoff) const;
  std::string_view name() const noexcept { return name_; }

  /// Gusella 1990: majority of packets < 576 B; of those, 60% are <= 50 B.
  static SizeDistribution gusella_ethernet();
  /// Kay & Pasquale: > 99% of TCP packets < 200 B.
  static SizeDistribution kay_pasquale_tcp();
  /// Kay & Pasquale: 86% of UDP messages < 200 B (NFS-dominated).
  static SizeDistribution kay_pasquale_udp();
  /// SUNY-Buffalo: average packet sizes of 300-400 B across networks.
  static SizeDistribution suny_buffalo();
  /// Degenerate distributions for controlled experiments.
  static SizeDistribution fixed(std::size_t size);
  static SizeDistribution uniform(std::size_t lo, std::size_t hi);

  /// Heavy-tailed families for datacenter-style traffic, discretized into
  /// half-octave piecewise-uniform buckets with CDF-exact bucket weights
  /// (so mean() and fraction_at_most() stay analytic).
  /// Log-uniform over [lo, hi]: every octave carries equal probability —
  /// the "sizes span four orders of magnitude" shape.
  static SizeDistribution log_uniform(std::size_t lo, std::size_t hi);
  /// Bounded Pareto with tail index `alpha` on [lo, hi]: the classic
  /// mice-and-elephants flow-size model (most flows tiny, most bytes in
  /// the few huge ones). alpha must be > 0 and != 1.
  static SizeDistribution bounded_pareto(double alpha, std::size_t lo,
                                         std::size_t hi);

 private:
  std::string name_;
  std::vector<Bucket> buckets_;  // weights normalized to sum 1
  double mean_;
};

/// Draw `n` message sizes (deterministic per seed).
std::vector<std::size_t> generate_sizes(const SizeDistribution& dist, int n,
                                        std::uint64_t seed);

/// Deterministic open-loop Poisson arrival process: exponential
/// inter-arrival gaps at `rate_per_sec`, accumulated into absolute
/// picosecond offsets from 0. Open-loop means the schedule never reacts to
/// the system under test — arrivals keep coming whether or not earlier
/// work finished, which is what exposes queueing tails. Same seed, same
/// schedule, on every platform that implements std::exponential_distribution
/// identically (one toolchain == one baseline, as with generate_sizes).
class PoissonArrivals {
 public:
  PoissonArrivals(double rate_per_sec, std::uint64_t seed)
      : mean_gap_ps_(1e12 / rate_per_sec), rng_(seed) {}

  /// Next absolute arrival time (ps); strictly non-decreasing.
  sim::Ps next() {
    t_ += rng_.exponential(mean_gap_ps_);
    return static_cast<sim::Ps>(t_);
  }

  double mean_gap_ps() const noexcept { return mean_gap_ps_; }

 private:
  double mean_gap_ps_;
  double t_ = 0;
  sim::Rng rng_;
};

}  // namespace fmx::workload
