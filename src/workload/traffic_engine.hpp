// Open-loop traffic engine for datacenter-scale fabric experiments.
//
// A Schedule is a deterministic, topology- and thread-count-independent
// list of flows (who sends what to whom, and when): Poisson arrivals per
// sending host, heavy-tailed sizes, and a destination pattern (uniform,
// permutation, incast, hotspot). The TrafficEngine then replays a schedule
// over real fm2::Endpoints on a ParallelCluster — one sender coroutine per
// host paces its own flows by scheduled arrival time, handlers on the
// receive side timestamp each flow at four points, and per-layer latency
// histograms (trace::Histogram, shard-local then merged) report
// p50/p99/p999 for:
//
//   traffic.src_queue_ps  scheduled arrival -> injection start (how far
//                         the finite-rate sender fell behind the open-loop
//                         schedule; the send-side queueing tail)
//   traffic.transit_ps    injection -> first packet out of the fabric
//                         (wire + switching + fabric contention)
//   traffic.deliver_ps    fabric arrival -> handler start (receive-ring
//                         wait: extract scheduling + handler backlog)
//   traffic.handler_ps    handler start -> last byte consumed
//   traffic.e2e_ps        scheduled arrival -> handler done
//
// "Open loop" is the load-generation discipline: arrival times are fixed
// up front and never react to the system under test, so when the fabric or
// a victim host saturates, lateness accumulates in the tails instead of
// the offered load silently throttling itself (the flaw closed-loop
// benchmarks share). Each per-flow record is 16 bytes; a million-flow
// schedule is ~16 MB plus one completion timestamp per flow.
//
// Everything is steady-state allocation-free: flow state lives in
// pre-sized vectors indexed by a dense global flow id, handlers receive
// into per-node scratch and skip the rest, and completion timestamps are
// disjoint per-flow writes (safe across shards). Termination is node-local
// (each receiver polls its own counter against the schedule's expected
// count), which the conservative parallel engine requires.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "fm2/fm2.hpp"
#include "myrinet/parallel_cluster.hpp"
#include "trace/metrics.hpp"
#include "workload/traffic.hpp"

namespace fmx::workload {

enum class TrafficPattern : std::uint8_t {
  kUniform = 0,      // each flow picks a uniform-random peer
  kPermutation = 1,  // host i sends every flow to p[i] (seeded derangement)
  kIncast = 2,       // groups of `incast_fan_in`; members target the group
                     // head, which sends nothing (the oversubscription
                     // stress case: fan_in senders share one downlink)
  kHotspot = 3,      // `hotspot_targets` hot hosts strided across the
                     // cluster absorb `hotspot_fraction` of all flows
};

const char* to_string(TrafficPattern p) noexcept;

struct TrafficConfig {
  TrafficPattern pattern = TrafficPattern::kUniform;
  SizeDistribution sizes = SizeDistribution::fixed(256);
  /// Flow arrivals per second per sending host (open-loop Poisson).
  double flow_rate_per_host = 1e6;
  /// Flows each sending host originates.
  int flows_per_host = 64;
  std::uint64_t seed = 1;
  int incast_fan_in = 16;
  int hotspot_targets = 4;
  double hotspot_fraction = 0.5;
};

/// One scheduled flow: 16 bytes. Arrival is relative to the wave start.
struct Flow {
  std::uint32_t dst = 0;
  std::uint32_t size = 0;
  sim::Ps arrival = 0;
};
static_assert(sizeof(Flow) == 16, "per-flow schedule state must stay 16 B");

struct Schedule {
  std::vector<std::vector<Flow>> per_host;     // [src] -> its flows
  std::vector<std::uint64_t> flow_id_base;     // [src] -> first global id
  std::vector<std::uint32_t> expected_per_node;  // [dst] -> flow count
  std::uint64_t total_flows = 0;
  std::size_t max_flow_bytes = 0;
  sim::Ps horizon = 0;  // last scheduled arrival
};

/// Deterministic per (config, n_hosts): host h's flows come from
/// Rng(seed ^ h)-derived streams, so the schedule is independent of
/// topology, shard count, and generation order.
Schedule make_schedule(const TrafficConfig& cfg, int n_hosts);

/// Per-layer latency quantiles (all picoseconds), merged across shards.
struct LayerQuantiles {
  const char* layer = "";
  std::uint64_t count = 0;
  double p50 = 0, p99 = 0, p999 = 0;
};

struct WaveResult {
  std::uint64_t events = 0;          // engine events in the wave
  std::uint64_t completed = 0;       // flows fully received
  std::uint64_t digest = 0;          // FNV over per-flow completion times
  sim::Ps makespan = 0;              // wave start -> last completion
  /// Max number of flows simultaneously in flight (scheduled arrival to
  /// handler completion overlap), computed post-run from timestamps.
  std::uint64_t peak_concurrent = 0;
  std::vector<LayerQuantiles> layers;  // src_queue/transit/deliver/handler/e2e
  int pending_roots = 0;
};

/// Binds endpoints + handlers to a ParallelCluster and replays schedules.
/// Reusable across waves: run_wave() resets per-flow state and histograms,
/// so a warmup wave (pool/ring/frame warm-up) followed by a measured wave
/// is the intended usage.
class TrafficEngine {
 public:
  /// `cluster` must outlive the engine. Registers handler id 0 on every
  /// node's endpoint.
  explicit TrafficEngine(net::ParallelCluster& cluster);
  TrafficEngine(const TrafficEngine&) = delete;
  TrafficEngine& operator=(const TrafficEngine&) = delete;
  ~TrafficEngine();

  /// Replay `s` to quiescence on `n_threads` workers. Results (digest,
  /// makespan, quantiles) are bit-identical for every thread count.
  WaveResult run_wave(const Schedule& s, int n_threads = 0);

  /// Split form for benches that meter the spawn+run phase (e.g. alloc
  /// counting): spawn_wave() resets per-flow state and spawns all roots,
  /// the caller runs the cluster, collect_wave() folds the results. The
  /// spawn/run phase is steady-state allocation-free once a warmup wave of
  /// the same schedule has sized every pool; collect_wave() may allocate.
  void spawn_wave(const Schedule& s);
  WaveResult collect_wave(const Schedule& s,
                          const net::ParallelCluster::RunResult& run);

  fm2::Endpoint& endpoint(int node) { return *eps_[node]; }

 private:
  struct NodeState;
  sim::Task<void> sender(int src, const Schedule& s, sim::Ps base);
  sim::Task<void> receiver(int dst, std::uint32_t expect);
  void reset_for(const Schedule& s);

  sim::Ps wave_base_ = 0;  // set by spawn_wave, read by collect_wave

  net::ParallelCluster& cl_;
  std::vector<std::unique_ptr<fm2::Endpoint>> eps_;
  std::vector<std::unique_ptr<NodeState>> nodes_;
  // Completion + scheduled-arrival timestamps per global flow id. Written
  // once per flow (handler side / sender side respectively); entries are
  // distinct objects, so cross-shard writers never touch the same one.
  std::vector<sim::Ps> done_at_;
  std::vector<sim::Ps> sched_at_;
  std::vector<Bytes> send_buf_;  // [src] persistent payload buffer
};

}  // namespace fmx::workload
