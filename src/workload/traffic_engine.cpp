#include "workload/traffic_engine.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace fmx::workload {
namespace {

// Per-flow payload prefix, written by the sender at injection time and read
// back by the receive handler — the flow's identity and its send-side
// timeline travel with the data, so receivers need no shared lookup table.
struct FlowHdr {
  std::uint64_t flow_id;
  sim::Ps t_sched;  // scheduled (open-loop) arrival, absolute
  sim::Ps t_send;   // injection start (after source-side backlog), absolute
  std::uint64_t pad;
};
static_assert(sizeof(FlowHdr) == 32, "flow header is the minimum flow size");

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

struct Fnv {
  std::uint64_t h = 14695981039346656037ull;
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 1099511628211ull;
    }
  }
};

}  // namespace

const char* to_string(TrafficPattern p) noexcept {
  switch (p) {
    case TrafficPattern::kUniform: return "uniform";
    case TrafficPattern::kPermutation: return "permutation";
    case TrafficPattern::kIncast: return "incast";
    case TrafficPattern::kHotspot: return "hotspot";
  }
  return "?";
}

Schedule make_schedule(const TrafficConfig& cfg, int n_hosts) {
  assert(n_hosts >= 2);
  Schedule s;
  s.per_host.resize(n_hosts);
  s.flow_id_base.resize(n_hosts);
  s.expected_per_node.assign(n_hosts, 0);

  // Pattern-level structure, derived from the seed alone.
  std::vector<std::uint32_t> perm;
  if (cfg.pattern == TrafficPattern::kPermutation) {
    perm.resize(n_hosts);
    for (int i = 0; i < n_hosts; ++i) perm[i] = static_cast<std::uint32_t>(i);
    sim::Rng prng(mix64(cfg.seed ^ 0x7065726d75746174ull));
    for (int i = n_hosts - 1; i > 0; --i) {
      std::swap(perm[i], perm[prng.uniform(0, i)]);
    }
    // Deranged: a fixed point would make a host its own destination.
    for (int i = 0; i < n_hosts; ++i) {
      if (perm[i] == static_cast<std::uint32_t>(i)) {
        std::swap(perm[i], perm[(i + 1) % n_hosts]);
      }
    }
  }
  std::vector<std::uint32_t> hot;
  if (cfg.pattern == TrafficPattern::kHotspot) {
    const int t = std::max(1, std::min(cfg.hotspot_targets, n_hosts));
    // Strided so hot hosts land in distinct pods of a fat-tree — the
    // congestion is then in the fabric core, not one edge switch.
    for (int i = 0; i < t; ++i) {
      hot.push_back(static_cast<std::uint32_t>(
          static_cast<std::int64_t>(i) * n_hosts / t));
    }
  }
  const int fan_in = std::max(2, cfg.incast_fan_in);

  for (int h = 0; h < n_hosts; ++h) {
    std::int64_t fixed_dst = -1;
    if (cfg.pattern == TrafficPattern::kIncast) {
      const int head = (h / fan_in) * fan_in;
      if (h == head) continue;  // the victim only receives
      fixed_dst = head;
    } else if (cfg.pattern == TrafficPattern::kPermutation) {
      fixed_dst = perm[h];
    }
    // Independent per-host streams: generation order doesn't matter, and
    // host h's flows are identical whatever the cluster around it does.
    sim::Rng rng(mix64(cfg.seed ^ (0x666c6f77ull + h)));
    PoissonArrivals arrivals(cfg.flow_rate_per_host,
                             mix64(cfg.seed ^ (0x61727276ull + h)));
    auto& flows = s.per_host[h];
    flows.reserve(cfg.flows_per_host);
    for (int k = 0; k < cfg.flows_per_host; ++k) {
      Flow f;
      if (fixed_dst >= 0) {
        f.dst = static_cast<std::uint32_t>(fixed_dst);
      } else if (cfg.pattern == TrafficPattern::kHotspot &&
                 rng.bernoulli(cfg.hotspot_fraction)) {
        f.dst = hot[rng.uniform(0, hot.size() - 1)];
        if (f.dst == static_cast<std::uint32_t>(h)) {
          f.dst = (f.dst + 1) % n_hosts;  // hot host sprays its neighbor
        }
      } else {
        auto d = rng.uniform(0, n_hosts - 2);
        if (d >= static_cast<std::uint64_t>(h)) ++d;
        f.dst = static_cast<std::uint32_t>(d);
      }
      const std::size_t sz =
          std::max(sizeof(FlowHdr), cfg.sizes.sample(rng));
      f.size = static_cast<std::uint32_t>(sz);
      f.arrival = arrivals.next();
      s.max_flow_bytes = std::max(s.max_flow_bytes, sz);
      s.horizon = std::max(s.horizon, f.arrival);
      s.expected_per_node[f.dst]++;
      flows.push_back(f);
    }
  }
  std::uint64_t id = 0;
  for (int h = 0; h < n_hosts; ++h) {
    s.flow_id_base[h] = id;
    id += s.per_host[h].size();
  }
  s.total_flows = id;
  return s;
}

struct TrafficEngine::NodeState {
  sim::Engine* eng = nullptr;
  trace::Histogram* src_queue = nullptr;
  trace::Histogram* transit = nullptr;
  trace::Histogram* deliver = nullptr;
  trace::Histogram* handler = nullptr;
  trace::Histogram* e2e = nullptr;
  std::uint32_t got = 0;       // node-local completion count (termination)
  FlowHdr scratch{};           // receive target for the header bytes
};

TrafficEngine::TrafficEngine(net::ParallelCluster& cluster) : cl_(cluster) {
  const int n = cl_.size();
  eps_.reserve(n);
  nodes_.reserve(n);
  send_buf_.resize(n);
  for (int i = 0; i < n; ++i) {
    eps_.push_back(
        std::make_unique<fm2::Endpoint>(cl_.node(i), cl_.fabric_of(i)));
    auto ns = std::make_unique<NodeState>();
    ns->eng = &cl_.engine_of(i);
    // Shard-local histograms (same object for every node of a shard):
    // handlers bump them lock-free, run_wave() merges across shards.
    auto& m = cl_.fabric_of(i).tracer().metrics();
    ns->src_queue =
        &m.histogram("traffic.src_queue_ps", trace::latency_bounds_ps());
    ns->transit =
        &m.histogram("traffic.transit_ps", trace::latency_bounds_ps());
    ns->deliver =
        &m.histogram("traffic.deliver_ps", trace::latency_bounds_ps());
    ns->handler =
        &m.histogram("traffic.handler_ps", trace::latency_bounds_ps());
    ns->e2e = &m.histogram("traffic.e2e_ps", trace::latency_bounds_ps());
    nodes_.push_back(std::move(ns));
  }
  for (int i = 0; i < n; ++i) {
    eps_[i]->register_handler(
        0, [this, i](fm2::RecvStream& s, int) -> fm2::HandlerTask {
          NodeState& ns = *nodes_[i];
          const sim::Ps t_handler = ns.eng->now();
          co_await s.receive(&ns.scratch, sizeof(FlowHdr));
          const FlowHdr hdr = ns.scratch;
          const sim::Ps t_arrived = s.first_arrival();
          if (s.remaining() > 0) co_await s.skip(s.remaining());
          const sim::Ps t_done = ns.eng->now();
          ns.src_queue->observe(
              static_cast<std::uint64_t>(hdr.t_send - hdr.t_sched));
          ns.transit->observe(
              static_cast<std::uint64_t>(t_arrived - hdr.t_send));
          ns.deliver->observe(
              static_cast<std::uint64_t>(t_handler - t_arrived));
          ns.handler->observe(
              static_cast<std::uint64_t>(t_done - t_handler));
          ns.e2e->observe(
              static_cast<std::uint64_t>(t_done - hdr.t_sched));
          done_at_[hdr.flow_id] = t_done;
          ++ns.got;
        });
  }
}

TrafficEngine::~TrafficEngine() = default;

sim::Task<void> TrafficEngine::sender(int src, const Schedule& s,
                                      sim::Ps base) {
  sim::Engine& eng = *nodes_[src]->eng;
  fm2::Endpoint& ep = *eps_[src];
  Bytes& buf = send_buf_[src];
  const auto& flows = s.per_host[src];
  const std::uint64_t id0 = s.flow_id_base[src];
  for (std::size_t k = 0; k < flows.size(); ++k) {
    const Flow& f = flows[k];
    const sim::Ps t_sched = base + f.arrival;
    // Open loop: pace by the schedule. If the previous send overran its
    // slot (credits, NIC queue), now() is already past t_sched and the
    // lateness lands in traffic.src_queue_ps instead of stretching the
    // offered load.
    co_await eng.sleep_until(t_sched);
    FlowHdr hdr{id0 + k, t_sched, eng.now(), 0};
    std::memcpy(buf.data(), &hdr, sizeof hdr);
    co_await ep.send(f.dst, 0, ByteSpan{buf.data(), f.size});
  }
}

sim::Task<void> TrafficEngine::receiver(int dst, std::uint32_t expect) {
  NodeState& ns = *nodes_[dst];
  co_await eps_[dst]->poll_until(
      [&got = ns.got, expect] { return got == expect; });
}

void TrafficEngine::reset_for(const Schedule& s) {
  done_at_.assign(s.total_flows, 0);
  sched_at_.assign(s.total_flows, 0);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    nodes_[i]->got = 0;
    // Shared per shard; resetting the same histogram repeatedly is a no-op.
    nodes_[i]->src_queue->reset();
    nodes_[i]->transit->reset();
    nodes_[i]->deliver->reset();
    nodes_[i]->handler->reset();
    nodes_[i]->e2e->reset();
    if (send_buf_[i].size() < s.max_flow_bytes) {
      send_buf_[i].resize(s.max_flow_bytes);
      for (std::size_t b = 0; b < send_buf_[i].size(); ++b) {
        send_buf_[i][b] = static_cast<std::byte>((i * 131 + b) & 0xFF);
      }
    }
  }
}

void TrafficEngine::spawn_wave(const Schedule& s) {
  assert(s.per_host.size() == static_cast<std::size_t>(cl_.size()));
  reset_for(s);
  // All roots start at the cluster-wide max clock (see spawn_on) so wave
  // timestamps share one base whatever the previous wave left behind.
  sim::Ps base = 0;
  for (int sh = 0; sh < cl_.n_shards(); ++sh) {
    base = std::max(base, cl_.shard_engine(sh).now());
  }
  wave_base_ = base;
  const int n = cl_.size();
  for (int i = 0; i < n; ++i) {
    const std::uint64_t id0 = s.flow_id_base[i];
    for (std::size_t k = 0; k < s.per_host[i].size(); ++k) {
      sched_at_[id0 + k] = base + s.per_host[i][k].arrival;
    }
    if (!s.per_host[i].empty()) {
      cl_.engine_of(i).spawn_at(base, sender(i, s, base));
    }
    if (s.expected_per_node[i] > 0) {
      cl_.engine_of(i).spawn_at(base, receiver(i, s.expected_per_node[i]));
    }
  }
}

WaveResult TrafficEngine::run_wave(const Schedule& s, int n_threads) {
  spawn_wave(s);
  return collect_wave(s, cl_.run(n_threads));
}

WaveResult TrafficEngine::collect_wave(
    const Schedule& s, const net::ParallelCluster::RunResult& run) {
  const sim::Ps base = wave_base_;
  const int n = cl_.size();
  WaveResult r;
  r.events = run.events;
  r.pending_roots = run.pending_roots;
  Fnv digest;
  for (std::uint64_t f = 0; f < s.total_flows; ++f) {
    if (done_at_[f] != 0) {
      ++r.completed;
      r.makespan = std::max(r.makespan, done_at_[f] - base);
      digest.mix(done_at_[f] - base);
    } else {
      digest.mix(~std::uint64_t{0});
    }
  }
  r.digest = digest.h;

  // Peak concurrency: sweep the +1/-1 edges of every completed flow's
  // [scheduled arrival, completion] interval.
  {
    std::vector<std::pair<sim::Ps, int>> edges;
    edges.reserve(2 * r.completed);
    for (std::uint64_t f = 0; f < s.total_flows; ++f) {
      if (done_at_[f] == 0) continue;
      edges.emplace_back(sched_at_[f], +1);
      edges.emplace_back(done_at_[f], -1);
    }
    std::sort(edges.begin(), edges.end());
    std::int64_t cur = 0, peak = 0;
    for (const auto& [t, d] : edges) {
      cur += d;
      peak = std::max(peak, cur);
    }
    r.peak_concurrent = static_cast<std::uint64_t>(peak);
  }

  // Merge shard-local histograms (one representative node per shard).
  static const char* kLayers[] = {"src_queue", "transit", "deliver",
                                  "handler", "e2e"};
  auto layer_hist = [this](const NodeState& ns, int l) -> trace::Histogram* {
    switch (l) {
      case 0: return ns.src_queue;
      case 1: return ns.transit;
      case 2: return ns.deliver;
      case 3: return ns.handler;
      default: return ns.e2e;
    }
  };
  for (int l = 0; l < 5; ++l) {
    trace::Histogram merged(trace::latency_bounds_ps());
    std::vector<const trace::Histogram*> seen;
    for (int i = 0; i < n; ++i) {
      const trace::Histogram* h = layer_hist(*nodes_[i], l);
      if (std::find(seen.begin(), seen.end(), h) == seen.end()) {
        seen.push_back(h);
        merged.merge(*h);
      }
    }
    LayerQuantiles q;
    q.layer = kLayers[l];
    q.count = merged.count();
    q.p50 = merged.quantile(0.50);
    q.p99 = merged.quantile(0.99);
    q.p999 = merged.quantile(0.999);
    r.layers.push_back(q);
  }
  return r;
}

}  // namespace fmx::workload
