#include "workload/traffic.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace fmx::workload {

SizeDistribution::SizeDistribution(std::string_view name,
                                   std::vector<Bucket> buckets)
    : name_(name), buckets_(std::move(buckets)) {
  assert(!buckets_.empty());
  double total = 0;
  for (const auto& b : buckets_) {
    assert(b.lo <= b.hi);
    total += b.weight;
  }
  mean_ = 0;
  for (auto& b : buckets_) {
    b.weight /= total;
    mean_ += b.weight * (static_cast<double>(b.lo) +
                         static_cast<double>(b.hi)) / 2.0;
  }
}

std::size_t SizeDistribution::sample(sim::Rng& rng) const {
  double p = rng.uniform_real();
  for (const auto& b : buckets_) {
    if (p < b.weight) return rng.uniform(b.lo, b.hi);
    p -= b.weight;
  }
  return rng.uniform(buckets_.back().lo, buckets_.back().hi);
}

double SizeDistribution::fraction_at_most(std::size_t cutoff) const {
  double f = 0;
  for (const auto& b : buckets_) {
    if (cutoff >= b.hi) {
      f += b.weight;
    } else if (cutoff >= b.lo) {
      f += b.weight * static_cast<double>(cutoff - b.lo + 1) /
           static_cast<double>(b.hi - b.lo + 1);
    }
  }
  return f;
}

SizeDistribution SizeDistribution::gusella_ethernet() {
  // "the majority of packets were less than 576 bytes; of these 60% were
  // 50 bytes or less" — modelled as 75% short (of which 60% tiny), the
  // rest split between mid-size and near-MTU bulk.
  return SizeDistribution("gusella-ethernet",
                          {{0.45, 8, 50},       // tiny control/RPC
                           {0.30, 51, 575},     // rest of the short mass
                           {0.15, 576, 1072},   // mid
                           {0.10, 1073, 1500}}); // bulk near Ethernet MTU
}

SizeDistribution SizeDistribution::kay_pasquale_tcp() {
  // "over 99% of packets are less than 200 bytes".
  return SizeDistribution("kay-pasquale-tcp",
                          {{0.992, 1, 199}, {0.008, 200, 1460}});
}

SizeDistribution SizeDistribution::kay_pasquale_udp() {
  // "86% of messages of less than 200 bytes", NFS (8 KB blocks) making up
  // much of the rest.
  return SizeDistribution("kay-pasquale-udp",
                          {{0.86, 1, 199},
                           {0.08, 200, 1000},
                           {0.06, 7000, 8192}});
}

SizeDistribution SizeDistribution::suny_buffalo() {
  // "average packet sizes of 300 to 400 bytes" with a short-heavy shape.
  return SizeDistribution("suny-buffalo",
                          {{0.55, 16, 128},
                           {0.25, 129, 576},
                           {0.20, 577, 1500}});
}

SizeDistribution SizeDistribution::fixed(std::size_t size) {
  return SizeDistribution("fixed", {{1.0, size, size}});
}

SizeDistribution SizeDistribution::uniform(std::size_t lo, std::size_t hi) {
  return SizeDistribution("uniform", {{1.0, lo, hi}});
}

namespace {

// Split [lo, hi] into half-octave buckets (each hi is lo*sqrt(2), rounded)
// and weight each bucket by `cdf(hi) - cdf(lo-1)` of the target continuous
// distribution, so bucket probabilities are exact and only the within-
// bucket shape is approximated as uniform. With half-octave resolution the
// within-bucket mean error stays below ~6%.
template <typename Cdf>
std::vector<Bucket> cdf_buckets(std::size_t lo, std::size_t hi, Cdf cdf) {
  assert(lo >= 1 && lo <= hi);
  std::vector<Bucket> buckets;
  std::size_t cur = lo;
  double prev_cdf = 0.0;  // cdf just below `lo` is 0 for bounded support
  while (cur <= hi) {
    auto next = static_cast<std::size_t>(
        std::ceil(static_cast<double>(cur) * 1.4142135623730951));
    if (next <= cur) next = cur + 1;
    std::size_t bhi = std::min(hi, next - 1);
    const double c = cdf(static_cast<double>(bhi));
    const double w = c - prev_cdf;
    if (w > 0) buckets.push_back(Bucket{w, cur, bhi});
    prev_cdf = c;
    cur = bhi + 1;
  }
  assert(!buckets.empty());
  return buckets;
}

}  // namespace

SizeDistribution SizeDistribution::log_uniform(std::size_t lo,
                                               std::size_t hi) {
  assert(lo >= 1 && lo < hi);
  const double llo = std::log(static_cast<double>(lo));
  const double lhi = std::log(static_cast<double>(hi));
  auto cdf = [llo, lhi](double x) {
    return (std::log(x) - llo) / (lhi - llo);
  };
  return SizeDistribution("log-uniform", cdf_buckets(lo, hi, cdf));
}

SizeDistribution SizeDistribution::bounded_pareto(double alpha,
                                                  std::size_t lo,
                                                  std::size_t hi) {
  assert(alpha > 0 && lo >= 1 && lo < hi);
  const double l = static_cast<double>(lo);
  const double h = static_cast<double>(hi);
  // F(x) = (1 - (lo/x)^alpha) / (1 - (lo/hi)^alpha) for x in [lo, hi].
  const double denom = 1.0 - std::pow(l / h, alpha);
  auto cdf = [l, alpha, denom](double x) {
    return (1.0 - std::pow(l / x, alpha)) / denom;
  };
  return SizeDistribution("bounded-pareto", cdf_buckets(lo, hi, cdf));
}

std::vector<std::size_t> generate_sizes(const SizeDistribution& dist, int n,
                                        std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::size_t> out;
  out.reserve(n);
  for (int i = 0; i < n; ++i) out.push_back(dist.sample(rng));
  return out;
}

}  // namespace fmx::workload
