#include "am/cmam.hpp"

#include <cassert>

namespace fmx::am {
namespace {

// Cycle costs per primitive operation, calibrated so the reference case of
// Figure 2 / the ASPLOS'94 study (16-word message, 4-word packets, finite
// sequence, all guarantees) reproduces the published breakdown:
//   buffer management 148, in-order 21, fault tolerance 47, total ~397.
struct Costs {
  // base
  std::uint64_t compose_pkt = 12;     // src, per packet
  std::uint64_t inject_pkt = 10;      // src, per packet
  std::uint64_t receive_pkt = 22;     // dest, per packet
  std::uint64_t dispatch = 5;         // dest, per handler invocation
  std::uint64_t indef_len_check = 2;  // both, per packet (indefinite only)
  // buffer management (dest)
  std::uint64_t buf_alloc_finite = 40;     // once per message
  std::uint64_t buf_track_pkt = 24;        // per packet (place + account)
  std::uint64_t buf_free = 12;             // once per message
  std::uint64_t buf_grow_indef = 38;       // per packet (indefinite)
  std::uint64_t buf_finalize_indef = 20;   // once per message (indefinite)
  // in-order
  std::uint64_t seq_stamp = 1;     // src, per packet
  std::uint64_t seq_check = 4;     // dest, per packet
  std::uint64_t seq_setup = 1;     // dest, per message
  std::uint64_t reorder_stash = 9; // dest, per out-of-order packet
  // fault tolerance
  std::uint64_t ft_retain = 6;     // src, per packet (copy + timer arm)
  std::uint64_t ft_ack_proc = 2;   // src, per ack received
  std::uint64_t ft_timer_setup = 3;  // src, per message
  std::uint64_t ft_ack_gen = 3;    // dest, per packet
  std::uint64_t ft_retransmit = 8; // src, per retransmitted packet
};
constexpr Costs kC{};

}  // namespace

// ---------------------------------------------------------------------------
// Network

void Cm5Net::send(Packet pkt) {
  ++stats_.packets;
  if (p_.drop_rate > 0.0 && rng_.bernoulli(p_.drop_rate)) {
    ++stats_.dropped;
    return;
  }
  double delay_ns = p_.net_latency_ns;
  if (p_.reorder_window_ns > 0.0) {
    delay_ns += rng_.uniform_real() * p_.reorder_window_ns;
  }
  CmamEndpoint* dst = eps_.at(pkt.dst);
  eng_.schedule_in(sim::ns(delay_ns), [dst, p = std::move(pkt)]() mutable {
    dst->deliver(std::move(p));
  });
}

// ---------------------------------------------------------------------------
// Endpoint

CmamEndpoint::CmamEndpoint(Cm5Net& net, int id, unsigned guarantees,
                           SeqMode mode)
    : net_(net), id_(id), g_(guarantees), mode_(mode) {
  handlers_.resize(64);
  next_send_seq_.resize(64, 0);
  next_recv_seq_.resize(64, 0);
  net_.attach(this);
}

void CmamEndpoint::register_handler(std::uint16_t id, MsgHandler h) {
  handlers_.at(id) = std::move(h);
}

void CmamEndpoint::send_message(int dst, std::uint16_t handler,
                                std::span<const Word> data) {
  const int wpp = net_.params().words_per_packet;
  const std::uint16_t total =
      static_cast<std::uint16_t>((data.size() + wpp - 1) / wpp);
  const std::uint32_t msg_id = next_msg_id_++;
  if (g_ & kFaultTol) src_.fault_tol += kC.ft_timer_setup;
  for (std::uint16_t i = 0; i < total; ++i) {
    Packet pkt;
    pkt.src = id_;
    pkt.dst = dst;
    pkt.msg_id = msg_id;
    pkt.pkt_index = i;
    pkt.handler = handler;
    pkt.last = (i + 1 == total);
    // Finite sequence: the length travels with every packet. Indefinite:
    // only the termination marker does, and both sides pay a per-packet
    // length/termination check.
    pkt.total_pkts = mode_ == SeqMode::kFinite ? total : 0;
    if (mode_ == SeqMode::kIndefinite) src_.base += kC.indef_len_check;
    std::size_t off = static_cast<std::size_t>(i) * wpp;
    std::size_t n = std::min<std::size_t>(wpp, data.size() - off);
    pkt.words.assign(data.begin() + off, data.begin() + off + n);
    src_.base += kC.compose_pkt;
    if (g_ & kInOrder) {
      pkt.src_seq = next_send_seq_[dst]++;
      src_.in_order += kC.seq_stamp;
    }
    if (g_ & kFaultTol) {
      src_.fault_tol += kC.ft_retain;
      retained_[{msg_id, i}] = pkt;
    }
    src_.base += kC.inject_pkt;
    net_.send(std::move(pkt));
  }
}

void CmamEndpoint::retransmit_unacked() {
  for (auto& [key, pkt] : retained_) {
    src_.fault_tol += kC.ft_retransmit;
    net_.send(pkt);
  }
}

void CmamEndpoint::poll() {
  while (!inbox_.empty()) {
    Packet pkt = std::move(inbox_.front());
    inbox_.pop_front();
    process(pkt);
  }
}

void CmamEndpoint::process(Packet& pkt) {
  if (pkt.is_ack) {
    // We are the original sender of the acked packet.
    src_.fault_tol += kC.ft_ack_proc;
    retained_.erase({pkt.msg_id, pkt.pkt_index});
    return;
  }
  dest_.base += kC.receive_pkt;
  if (mode_ == SeqMode::kIndefinite) dest_.base += kC.indef_len_check;
  if (g_ & kFaultTol) {
    dest_.fault_tol += kC.ft_ack_gen;
    Packet ack;
    ack.src = id_;
    ack.dst = pkt.src;
    ack.is_ack = true;
    ack.msg_id = pkt.msg_id;
    ack.pkt_index = pkt.pkt_index;
    net_.send(std::move(ack));
  }
  if (g_ & kInOrder) {
    if (!ordered_admit(pkt)) return;  // stashed or duplicate
    // Admit this packet, then drain any now-in-order stashed packets.
    handle_data(pkt);
    auto it = reorder_q_.find({pkt.src, next_recv_seq_[pkt.src]});
    while (it != reorder_q_.end()) {
      Packet next = std::move(it->second);
      reorder_q_.erase(it);
      ++next_recv_seq_[next.src];
      handle_data(next);
      it = reorder_q_.find({pkt.src, next_recv_seq_[pkt.src]});
    }
  } else {
    handle_data(pkt);
  }
}

bool CmamEndpoint::ordered_admit(Packet& pkt) {
  dest_.in_order += kC.seq_check;
  std::uint32_t& expect = next_recv_seq_[pkt.src];
  if (pkt.src_seq < expect) return false;  // duplicate (retransmission)
  if (pkt.src_seq > expect) {
    dest_.in_order += kC.reorder_stash;
    reorder_q_.emplace(std::make_pair(pkt.src, pkt.src_seq), std::move(pkt));
    return false;
  }
  ++expect;
  return true;
}

void CmamEndpoint::handle_data(Packet& pkt) {
  if (!(g_ & kBufferMgmt)) {
    // Raw AM semantics: one handler invocation per packet, data in place.
    dispatch(pkt.src, pkt.handler, pkt.words);
    return;
  }
  const int wpp = net_.params().words_per_packet;
  std::uint64_t key =
      (static_cast<std::uint64_t>(pkt.src) << 32) | pkt.msg_id;
  auto [it, fresh] = partial_.try_emplace(key);
  Reassembly& r = it->second;
  if (fresh) {
    dest_.in_order += (g_ & kInOrder) ? kC.seq_setup : 0;
    r.handler = pkt.handler;
    if (mode_ == SeqMode::kFinite) {
      dest_.buffer_mgmt += kC.buf_alloc_finite;
      r.total = pkt.total_pkts;
      r.words.resize(static_cast<std::size_t>(r.total) * wpp);
      r.seen.resize(r.total, false);
    }
  }
  std::size_t off = static_cast<std::size_t>(pkt.pkt_index) * wpp;
  if (mode_ == SeqMode::kFinite) {
    dest_.buffer_mgmt += kC.buf_track_pkt;
  } else {
    dest_.buffer_mgmt += kC.buf_grow_indef;
    if (r.words.size() < off + pkt.words.size()) {
      r.words.resize(off + pkt.words.size());
    }
    if (r.seen.size() <= pkt.pkt_index) r.seen.resize(pkt.pkt_index + 1);
    if (pkt.last) r.saw_last = true;
    if (pkt.total_pkts == 0 && pkt.last) {
      r.total = static_cast<std::uint16_t>(pkt.pkt_index + 1);
    }
  }
  // Duplicate-safe placement (retransmissions may repeat a packet).
  if (r.seen[pkt.pkt_index]) return;
  r.seen[pkt.pkt_index] = true;
  std::copy(pkt.words.begin(), pkt.words.end(), r.words.begin() + off);
  ++r.received;
  bool complete = false;
  if (mode_ == SeqMode::kFinite) {
    complete = r.received >= r.total;
  } else {
    complete = r.saw_last && r.total != 0 && r.received >= r.total;
    if (complete) dest_.buffer_mgmt += kC.buf_finalize_indef;
  }
  if (complete) {
    dest_.buffer_mgmt += kC.buf_free;
    std::vector<Word> words = std::move(r.words);
    auto handler = r.handler;
    auto src = pkt.src;
    partial_.erase(it);
    dispatch(src, handler, words);
  }
}

void CmamEndpoint::dispatch(int src, std::uint16_t handler,
                            std::span<const Word> data) {
  dest_.base += kC.dispatch;
  ++delivered_;
  if (auto& fn = handlers_.at(handler)) fn(src, data);
}

}  // namespace fmx::am
