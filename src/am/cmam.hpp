// CM-5 Active Messages (CMAM) with composable guarantee layers — the
// substrate behind Figure 2 and the ASPLOS'94 study (paper §2.3) that
// motivated FM's choice of guarantees.
//
// The CM-5 network delivers 4-word packets with none of the guarantees
// applications want: delivery order is arbitrary, buffering is finite, and
// (for the study's purposes) packets may be lost. Each software guarantee
// is implemented as an explicit layer whose work is charged, cycle by
// cycle, to its own ledger category:
//   base        — packet compose / inject / receive / dispatch
//   buffer mgmt — reassembly of multi-packet messages into buffers
//   in-order    — per-source sequencing and a reorder queue
//   fault tol.  — acks, sender retention, timeout retransmission
// Running the 16-word / 4-word-packet reference case reproduces the
// paper's stacked-bar breakdown (~397 total cycles, 148 buffer, 21 order,
// 47 fault tolerance for the finite-sequence protocol).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <span>
#include <optional>
#include <unordered_map>
#include <vector>

#include "sim/channel.hpp"
#include "sim/engine.hpp"
#include "sim/ledger.hpp"
#include "sim/random.hpp"

namespace fmx::am {

using Word = std::uint32_t;

/// Guarantee layers, composable as a bitmask.
enum Guarantee : unsigned {
  kBase = 0,
  kBufferMgmt = 1u << 0,
  kInOrder = 1u << 1,
  kFaultTol = 1u << 2,
  kAll = kBufferMgmt | kInOrder | kFaultTol,
};

/// Finite sequence: message length is known up front (preallocated buffer,
/// fixed window). Indefinite: streamed, length unknown until the final
/// packet (per-packet growth, termination handling) — costlier, as Figure 2
/// shows.
enum class SeqMode { kFinite, kIndefinite };

struct Cm5Params {
  int words_per_packet = 4;
  double cycle_ns = 30.0;        // 33 MHz SPARC node
  double net_latency_ns = 500.0;
  /// Max random extra delay (causes arbitrary delivery order when > 0).
  double reorder_window_ns = 0.0;
  double drop_rate = 0.0;
  std::uint64_t seed = 1;
};

/// Per-side cycle ledger: the unit Figure 2 reports.
struct CycleLedger {
  std::uint64_t base = 0;
  std::uint64_t buffer_mgmt = 0;
  std::uint64_t in_order = 0;
  std::uint64_t fault_tol = 0;
  std::uint64_t total() const {
    return base + buffer_mgmt + in_order + fault_tol;
  }
};

struct Packet {
  Packet() = default;

  int src = -1;
  int dst = -1;
  bool is_ack = false;
  std::uint32_t msg_id = 0;
  std::uint16_t pkt_index = 0;
  std::uint16_t total_pkts = 0;   // finite mode; 0 = unknown (indefinite)
  bool last = false;              // indefinite-mode termination marker
  std::uint32_t src_seq = 0;      // in-order layer sequencing
  std::uint16_t handler = 0;
  std::vector<Word> words;
};

class CmamEndpoint;

/// The CM-5-like network: arbitrary order (random jitter), optional loss.
class Cm5Net {
 public:
  Cm5Net(sim::Engine& eng, const Cm5Params& p) : eng_(eng), p_(p),
                                                 rng_(p.seed) {}
  void attach(CmamEndpoint* ep) { eps_.push_back(ep); }
  void send(Packet pkt);

  struct Stats {
    std::uint64_t packets = 0;
    std::uint64_t dropped = 0;
  };
  const Stats& stats() const noexcept { return stats_; }
  const Cm5Params& params() const noexcept { return p_; }
  sim::Engine& engine() noexcept { return eng_; }

 private:
  sim::Engine& eng_;
  Cm5Params p_;
  sim::Rng rng_;
  std::vector<CmamEndpoint*> eps_;
  Stats stats_;
};

/// Handler invoked with a complete message (buffer-mgmt on) or with each
/// packet's words (buffer-mgmt off — raw AM semantics).
using MsgHandler = std::function<void(int src, std::span<const Word> data)>;

class CmamEndpoint {
 public:
  CmamEndpoint(Cm5Net& net, int id, unsigned guarantees, SeqMode mode);

  /// Send `data` to `dst` as a sequence of 4-word packets.
  void send_message(int dst, std::uint16_t handler,
                    std::span<const Word> data);
  /// Process all queued inbound packets (CMAM poll).
  void poll();
  void register_handler(std::uint16_t id, MsgHandler h);

  /// Called by the network on delivery.
  void deliver(Packet pkt) { inbox_.push_back(std::move(pkt)); }

  int id() const noexcept { return id_; }
  unsigned guarantees() const noexcept { return g_; }
  const CycleLedger& src_cycles() const noexcept { return src_; }
  const CycleLedger& dest_cycles() const noexcept { return dest_; }
  std::uint64_t messages_delivered() const noexcept { return delivered_; }
  /// True while the fault-tolerance layer still retains unacked packets.
  bool has_unacked() const noexcept { return !retained_.empty(); }
  /// Fault-tolerance timeout sweep: retransmit anything outstanding.
  void retransmit_unacked();

 private:
  struct Reassembly {
    std::vector<Word> words;
    std::vector<bool> seen;     // per-packet, duplicate-safe
    std::uint16_t received = 0;
    std::uint16_t total = 0;    // 0 until known
    bool saw_last = false;
    std::uint16_t handler = 0;
  };

  void process(Packet& pkt);
  void dispatch(int src, std::uint16_t handler, std::span<const Word> data);
  bool ordered_admit(Packet& pkt);   // in-order layer
  void handle_data(Packet& pkt);

  Cm5Net& net_;
  int id_;
  unsigned g_;
  SeqMode mode_;
  std::vector<MsgHandler> handlers_;
  std::deque<Packet> inbox_;
  CycleLedger src_;
  CycleLedger dest_;
  std::uint32_t next_msg_id_ = 0;
  std::uint64_t delivered_ = 0;

  // in-order layer state
  std::vector<std::uint32_t> next_send_seq_;   // per destination
  std::vector<std::uint32_t> next_recv_seq_;   // per source
  std::map<std::pair<int, std::uint32_t>, Packet> reorder_q_;

  // buffer management state
  std::unordered_map<std::uint64_t, Reassembly> partial_;

  // fault tolerance state
  std::map<std::pair<std::uint32_t, std::uint16_t>, Packet> retained_;
};

}  // namespace fmx::am
