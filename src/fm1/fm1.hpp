// Fast Messages 1.x (paper §3, Table 1).
//
// Guarantees: reliable, in-order delivery with sender-side credit flow
// control and receiver buffer management. The API is contiguous-buffer,
// whole-message: FM_send injects a complete message; on arrival the whole
// message is presented to a user handler as one contiguous region — for
// multi-packet messages this forces FM itself to reassemble into a staging
// buffer (one of the copies FM 2.x later eliminates).
//
// Handlers are synchronous functions invoked from within FM_extract, which
// processes *all* pending packets (no receiver pacing — the FM 1.x
// limitation the paper identifies).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/buffer.hpp"
#include "common/buffer_pool.hpp"
#include "common/fmwire.hpp"
#include "myrinet/node.hpp"
#include "sim/ring.hpp"
#include "sim/sync.hpp"

namespace fmx::fm1 {

using HandlerId = std::uint16_t;

/// Synchronous message handler: invoked with the complete message.
/// `data` is only valid for the duration of the call (it may point into the
/// receive ring or a staging buffer), exactly like the real FM 1.x.
using Handler = std::function<void(int src, ByteSpan data)>;

struct Config {
  /// Send-side credits per peer; 0 = divide the host ring among peers.
  int credits_per_peer = 0;
  /// Return credits to a sender once this many of its slots were freed;
  /// 0 = half of credits_per_peer.
  int credit_return_threshold = 0;
  /// FM 1.x moves send data across the I/O bus with programmed I/O; set
  /// false to use NIC DMA fetch instead (ablation knob).
  bool pio_send = true;
  /// Cap on packets parked host-side while a blocked sender drains its ring
  /// looking for credit packets (sender-progress guarantee).
  std::size_t pending_limit = 4096;
};

using PacketHeader = wire::PacketHeader;
using PacketType = wire::PacketType;

class Endpoint {
 public:
  Endpoint(net::Cluster& cluster, int node_id, Config cfg = {});
  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  /// Table 1: FM_send(dest, handler, buf, size) — send a long message.
  sim::Task<void> send(int dest, HandlerId handler, ByteSpan data);

  /// Table 1: FM_send_4(dest, handler, i0..i3) — four-word fast path.
  sim::Task<void> send4(int dest, HandlerId handler, std::uint32_t i0,
                        std::uint32_t i1, std::uint32_t i2, std::uint32_t i3);

  /// Table 1: FM_extract() — process all pending messages; returns the
  /// number of complete messages whose handlers ran.
  sim::Task<int> extract();

  /// Poll extract() until `done` returns true (convenience for programs
  /// that would spin on the network).
  sim::Task<void> poll_until(const std::function<bool()>& done);
  /// Wake a sleeping poll_until so it re-checks its condition.
  void kick();

  void register_handler(HandlerId id, Handler h);

  int id() const noexcept { return node_.id(); }
  int cluster_size() const noexcept { return n_hosts_; }
  net::Host& host() noexcept { return node_.host(); }
  std::size_t max_payload_per_packet() const noexcept { return seg_; }
  /// Cluster-wide tracer (owned by the fabric).
  trace::Tracer& tracer() noexcept { return cluster_.fabric().tracer(); }

  struct Stats {
    std::uint64_t msgs_sent = 0;
    std::uint64_t msgs_received = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t bytes_received = 0;
    std::uint64_t packets_sent = 0;
    std::uint64_t credit_stall_events = 0;
    std::uint64_t credit_packets_sent = 0;
  };
  const Stats& stats() const noexcept { return stats_; }
  int credits_available(int peer) const { return credits_[peer]; }

  // --- Invariant-checker exposure (mirrors fm2::Endpoint) -----------------
  /// Effective configuration after constructor defaulting.
  const Config& config() const noexcept { return cfg_; }
  /// Receive slots freed locally but not yet returned to `src` as credits.
  int credits_pending_return(int src) const { return freed_[src]; }
  /// Packets parked host-side while a blocked sender hunted for credits.
  std::size_t parked_packets() const noexcept { return pending_.size(); }
  /// Multi-packet messages currently mid-reassembly.
  std::size_t partial_messages() const noexcept { return partials_.size(); }

 private:
  struct Partial {
    BufferRef staging;
    std::size_t received = 0;
    PacketHeader head;
  };

  sim::Task<void> send_packet(int dest, PacketType type, HandlerId handler,
                              std::uint32_t msg_bytes, std::uint16_t pkt_index,
                              std::uint32_t msg_seq, ByteSpan chunk);
  sim::Task<void> acquire_credit(int dest);
  /// Handle one raw packet popped from the ring (or pending queue).
  void process_packet(net::RxPacket&& pkt, int* completed);
  void deliver_data(int src, const PacketHeader& h, ByteSpan chunk,
                    int* completed);
  std::uint16_t take_piggyback(int dest);
  void slot_freed(int src);
  sim::Task<void> maybe_return_credits(int dest);
  /// Cluster-wide packet-buffer pool (owned by the fabric).
  BufferPool& pool() noexcept { return cluster_.fabric().pool(); }

  net::Cluster& cluster_;
  net::Node& node_;
  Config cfg_;
  int n_hosts_;
  std::size_t seg_;  // payload bytes per packet
  std::vector<Handler> handlers_;
  std::vector<int> credits_;        // send credits toward each peer
  std::vector<int> freed_;          // receive slots freed, owed to peer
  std::vector<std::uint32_t> next_msg_seq_;
  std::unordered_map<std::uint64_t, Partial> partials_;  // key: src<<32|seq
  sim::RingQueue<net::RxPacket> pending_;  // parked while hunting for credits
  sim::CondVar credit_cv_;
  Stats stats_;
};

// ---------------------------------------------------------------------------
// Table 1 free-function spelling. The real FM used an implicit per-process
// context; in the simulator several "processes" share one address space, so
// the endpoint is explicit as the first argument.
inline sim::Task<void> FM_send(Endpoint& ep, int dest, HandlerId handler,
                               ByteSpan buf) {
  return ep.send(dest, handler, buf);
}
inline sim::Task<void> FM_send_4(Endpoint& ep, int dest, HandlerId handler,
                                 std::uint32_t i0, std::uint32_t i1,
                                 std::uint32_t i2, std::uint32_t i3) {
  return ep.send4(dest, handler, i0, i1, i2, i3);
}
inline sim::Task<int> FM_extract(Endpoint& ep) { return ep.extract(); }

}  // namespace fmx::fm1
