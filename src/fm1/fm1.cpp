#include "fm1/fm1.hpp"

#include "common/copy_stats.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>
#include <string>

namespace fmx::fm1 {

using sim::Cost;

namespace {

constexpr sim::Ps kHeaderBuildCost = sim::ns(150);
constexpr sim::Ps kHeaderParseCost = sim::ns(100);
constexpr sim::Ps kCreditOpCost = sim::ns(100);
constexpr sim::Ps kPerPacketBookkeeping = sim::ns(100);
constexpr sim::Ps kStagingAllocCost = sim::ns(500);

}  // namespace

Endpoint::Endpoint(net::Cluster& cluster, int node_id, Config cfg)
    : cluster_(cluster),
      node_(cluster.node(node_id)),
      cfg_(cfg),
      n_hosts_(cluster.size()),
      credit_cv_(cluster.engine()) {
  const auto& nic = node_.nic().params();
  assert(nic.mtu_payload > sizeof(PacketHeader));
  seg_ = nic.mtu_payload - sizeof(PacketHeader);
  handlers_.resize(256);
  if (cfg_.credits_per_peer <= 0) {
    int peers = std::max(1, n_hosts_ - 1);
    cfg_.credits_per_peer =
        std::max(2, static_cast<int>(nic.host_ring_slots) / peers);
  }
  if (cfg_.credit_return_threshold <= 0) {
    cfg_.credit_return_threshold = std::max(1, cfg_.credits_per_peer / 2);
  }
  credits_.assign(n_hosts_, cfg_.credits_per_peer);
  freed_.assign(n_hosts_, 0);
  next_msg_seq_.assign(n_hosts_, 0);

  // Publish this endpoint's live counters; a later endpoint on the same
  // node simply takes the names over.
  trace::MetricsRegistry& m = tracer().metrics();
  const std::string pre = "fm1.node" + std::to_string(node_id) + ".";
  m.expose(pre + "msgs_sent", &stats_.msgs_sent);
  m.expose(pre + "msgs_received", &stats_.msgs_received);
  m.expose(pre + "bytes_sent", &stats_.bytes_sent);
  m.expose(pre + "bytes_received", &stats_.bytes_received);
  m.expose(pre + "packets_sent", &stats_.packets_sent);
  m.expose(pre + "credit_stalls", &stats_.credit_stall_events);
}

void Endpoint::register_handler(HandlerId id, Handler h) {
  handlers_.at(id) = std::move(h);
}

std::uint16_t Endpoint::take_piggyback(int dest) {
  int v = std::min(freed_[dest], 0xFFFF);
  freed_[dest] -= v;
  return static_cast<std::uint16_t>(v);
}

sim::Task<void> Endpoint::send_packet(int dest, PacketType type,
                                      HandlerId handler,
                                      std::uint32_t msg_bytes,
                                      std::uint16_t pkt_index,
                                      std::uint32_t msg_seq, ByteSpan chunk) {
  PacketHeader h;
  h.type = static_cast<std::uint16_t>(type);
  h.handler = handler;
  h.msg_bytes = msg_bytes;
  h.pkt_index = pkt_index;
  h.credits = take_piggyback(dest);
  h.msg_seq = msg_seq;

  const std::uint64_t tid =
      trace::Tracer::msg_id(id(), dest, trace::Layer::kFm1, msg_seq);
  tracer().record(trace::EventType::kSendEnqueue, trace::Layer::kFm1, id(),
                  tid, chunk.size());

  bool fresh = false;
  BufferRef pkt =
      pool().acquire_ref(sizeof(PacketHeader) + chunk.size(), &fresh);
  if (fresh) node_.host().ledger().note_alloc(pkt.size());
  // Contiguous assembly is FM 1.x's defining endpoint copy: header and user
  // chunk really move into the packet buffer (the PIO/DMA charge below is
  // the modeled cost of the same movement).
  MutByteSpan pb = pkt.mutable_bytes();
  std::memcpy(pb.data(), &h, sizeof(h));
  if (!chunk.empty()) {
    std::memcpy(pb.data() + sizeof(h), chunk.data(), chunk.size());
  }
  count_endpoint_copy(pkt.size());
  node_.host().charge(Cost::kHeader, kHeaderBuildCost);
  ++stats_.packets_sent;

  auto& host = node_.host();
  auto& bus = node_.bus();
  if (cfg_.pio_send) {
    // Programmed I/O: the host CPU pushes the packet into NIC SRAM word by
    // word; host and bus are both occupied for the duration.
    host.note(Cost::kPio, bus.pio_time(pkt.size()));
    host.ledger().note_copy(pkt.size());
    co_await host.sync();
    co_await bus.pio(pkt.size());
    net::SendDescriptor sd(dest, std::move(pkt), /*fetch_dma=*/false);
    sd.trace_id = tid;
    co_await node_.nic().enqueue(std::move(sd));
  } else {
    // DMA mode: the bytes were already assembled into a pinned host buffer
    // (that assembly is this very `pkt` build; charge it as a copy) and the
    // NIC fetches them across the bus.
    host.charge(Cost::kCopy, host.memcpy_cost(pkt.size()));
    host.ledger().note_copy(pkt.size());
    co_await host.sync();
    net::SendDescriptor sd(dest, std::move(pkt), /*fetch_dma=*/true);
    sd.trace_id = tid;
    co_await node_.nic().enqueue(std::move(sd));
  }
}

sim::Task<void> Endpoint::acquire_credit(int dest) {
  auto& host = node_.host();
  host.charge(Cost::kFlowCtl, kCreditOpCost);
  if (credits_[dest] > 0) {
    --credits_[dest];
    co_return;
  }
  ++stats_.credit_stall_events;
  for (;;) {
    // Drain the ring looking for credits. Data packets are parked host-side
    // (their ring slots are thereby freed — FM's buffer management is what
    // lets senders progress while receivers compute).
    int drained = 0;
    while (auto p = node_.nic().host_ring().try_pop()) {
      ++drained;
      PacketHeader h = wire::parse_header(p->payload);
      host.charge(Cost::kFlowCtl, kCreditOpCost);
      if (h.credits > 0) {
        credits_[p->src] += h.credits;
        // No strip-by-rewrite needed: parked packets are only ever re-read
        // by extract()'s pending loop, which never applies credits (and a
        // rewrite would COW-clone a block shared with the sender's
        // go-back-N retention).
      }
      if (static_cast<PacketType>(h.type) == PacketType::kCredit) {
        p->payload.reset();
        continue;  // pure control packet, fully consumed
      }
      if (pending_.size() >= cfg_.pending_limit) {
        throw std::runtime_error(
            "FM1: host-side pending buffer overflow (flow control breach)");
      }
      host.charge(Cost::kBufferMgmt, kPerPacketBookkeeping);
      slot_freed(p->src);
      pending_.push_back(std::move(*p));
    }
    if (drained > 0) node_.nic().host_ring().poke();
    if (credits_[dest] > 0) {
      --credits_[dest];
      co_return;
    }
    host.charge(Cost::kFlowCtl, host.params().poll_gap);
    co_await host.sync();
    // Nothing to drain: sleep until the NIC delivers something rather than
    // spinning the simulated clock forever.
    co_await node_.nic().host_ring().wait_nonempty();
  }
}

sim::Task<void> Endpoint::send(int dest, HandlerId handler, ByteSpan data) {
  auto& host = node_.host();
  // The wire header indexes packets in 16 bits.
  if ((data.size() + seg_ - 1) / seg_ > 0xFFFF) {
    throw std::length_error("FM1: message exceeds 65535 packets");
  }
  host.charge(Cost::kCall, host.params().call_overhead);
  ++stats_.msgs_sent;
  stats_.bytes_sent += data.size();
  const std::uint32_t seq = next_msg_seq_[dest]++;
  const std::uint32_t total = static_cast<std::uint32_t>(data.size());
  std::size_t off = 0;
  std::uint16_t index = 0;
  do {
    std::size_t n = std::min(seg_, data.size() - off);
    co_await acquire_credit(dest);
    co_await send_packet(dest, PacketType::kData, handler, total, index,
                         seq, data.subspan(off, n));
    off += n;
    ++index;
  } while (off < data.size());
}

sim::Task<void> Endpoint::send4(int dest, HandlerId handler, std::uint32_t i0,
                                std::uint32_t i1, std::uint32_t i2,
                                std::uint32_t i3) {
  auto& host = node_.host();
  // The four-word fast path skips the general argument marshalling.
  host.charge(Cost::kCall, host.params().call_overhead / 2);
  ++stats_.msgs_sent;
  stats_.bytes_sent += 16;
  std::uint32_t words[4] = {i0, i1, i2, i3};
  const std::uint32_t seq = next_msg_seq_[dest]++;
  co_await acquire_credit(dest);
  co_await send_packet(dest, PacketType::kData, handler, 16, 0, seq,
                       ByteSpan{reinterpret_cast<const std::byte*>(words), 16});
}

void Endpoint::slot_freed(int src) { ++freed_[src]; }

sim::Task<void> Endpoint::maybe_return_credits(int dest) {
  if (freed_[dest] < cfg_.credit_return_threshold) co_return;
  std::uint16_t give = take_piggyback(dest);
  if (give == 0) co_return;
  ++stats_.credit_packets_sent;
  PacketHeader h;
  h.type = static_cast<std::uint16_t>(PacketType::kCredit);
  h.credits = give;
  bool fresh = false;
  BufferRef pkt = pool().acquire_ref(sizeof(PacketHeader), &fresh);
  auto& host = node_.host();
  if (fresh) host.ledger().note_alloc(pkt.size());
  std::memcpy(pkt.mutable_bytes().data(), &h, sizeof(h));
  host.charge(Cost::kFlowCtl, kHeaderBuildCost);
  if (cfg_.pio_send) {
    host.note(Cost::kPio, node_.bus().pio_time(pkt.size()));
    co_await host.sync();
    co_await node_.bus().pio(pkt.size());
    co_await node_.nic().enqueue(
        net::SendDescriptor(dest, std::move(pkt), false));
  } else {
    co_await host.sync();
    co_await node_.nic().enqueue(
        net::SendDescriptor(dest, std::move(pkt), true));
  }
}

void Endpoint::deliver_data(int src, const PacketHeader& h, ByteSpan chunk,
                            int* completed) {
  auto& host = node_.host();
  const std::uint64_t tid =
      trace::Tracer::msg_id(src, id(), trace::Layer::kFm1, h.msg_seq);
  if (h.msg_bytes <= seg_) {
    // Single-packet message: the handler sees the packet bytes in place.
    host.charge(Cost::kDispatch, host.params().handler_dispatch);
    ++stats_.msgs_received;
    stats_.bytes_received += chunk.size();
    tracer().record(trace::EventType::kHandlerRun, trace::Layer::kFm1, id(),
                    tid, chunk.size());
    if (auto& fn = handlers_.at(h.handler)) fn(src, chunk);
    tracer().record(trace::EventType::kMsgDone, trace::Layer::kFm1, id(),
                    tid, chunk.size());
    ++*completed;
    return;
  }
  // Multi-packet message: FM 1.x must reassemble into a contiguous staging
  // buffer before it can present the message to the handler.
  std::uint64_t key = (static_cast<std::uint64_t>(src) << 32) | h.msg_seq;
  auto [it, inserted] = partials_.try_emplace(key);
  Partial& part = it->second;
  if (inserted) {
    bool fresh = false;
    part.staging = pool().acquire_ref(h.msg_bytes, &fresh);
    if (fresh) host.ledger().note_alloc(h.msg_bytes);
    part.head = h;
    host.charge(Cost::kBufferMgmt, kStagingAllocCost);
  }
  std::size_t off = static_cast<std::size_t>(h.pkt_index) * seg_;
  assert(off + chunk.size() <= part.staging.size());
  host.copy(part.staging.mutable_bytes().subspan(off, chunk.size()), chunk,
            Cost::kBufferMgmt);
  part.received += chunk.size();
  if (part.received == part.staging.size()) {
    host.charge(Cost::kDispatch, host.params().handler_dispatch);
    ++stats_.msgs_received;
    stats_.bytes_received += part.staging.size();
    // FM 1.x runs the handler once, only after full reassembly — the
    // handler_run/msg_done gap in a trace is pure handler time, unlike
    // FM 2.x where it overlaps trailing-packet arrival.
    tracer().record(trace::EventType::kHandlerRun, trace::Layer::kFm1, id(),
                    tid, part.staging.size());
    if (auto& fn = handlers_.at(part.head.handler)) {
      fn(src, part.staging.span());
    }
    tracer().record(trace::EventType::kMsgDone, trace::Layer::kFm1, id(),
                    tid, part.staging.size());
    partials_.erase(it);  // last reference returns the staging block
    ++*completed;
  }
}

void Endpoint::process_packet(net::RxPacket&& pkt, int* completed) {
  auto& host = node_.host();
  host.charge(Cost::kHeader, kHeaderParseCost);
  PacketHeader h = wire::parse_header(pkt.payload);
  if (h.credits > 0) {
    host.charge(Cost::kFlowCtl, kCreditOpCost);
    credits_[pkt.src] += h.credits;
  }
  if (static_cast<PacketType>(h.type) == PacketType::kCredit) {
    pkt.payload.reset();
    return;  // control only
  }
  ByteSpan chunk = pkt.payload.span().subspan(sizeof(PacketHeader));
  deliver_data(pkt.src, h, chunk, completed);
  slot_freed(pkt.src);
}

sim::Task<int> Endpoint::extract() {
  auto& host = node_.host();
  host.charge(Cost::kCall, host.params().poll_gap);
  int completed = 0;
  // Packets parked by a credit-hungry sender come first (they are older).
  while (!pending_.empty()) {
    net::RxPacket pkt = pending_.take_front();
    // Slot already freed when parked; don't free twice.
    PacketHeader h = wire::parse_header(pkt.payload);
    host.charge(Cost::kHeader, kHeaderParseCost);
    ByteSpan chunk = pkt.payload.span().subspan(sizeof(PacketHeader));
    deliver_data(pkt.src, h, chunk, &completed);
  }
  int processed = 0;
  while (auto p = node_.nic().host_ring().try_pop()) {
    process_packet(std::move(*p), &completed);
    ++processed;
  }
  if (processed > 0) node_.nic().host_ring().poke();
  if (completed > 0) {
    tracer().record(trace::EventType::kExtract, trace::Layer::kFm1, id(), 0,
                    static_cast<std::uint64_t>(completed));
  }
  co_await host.sync();
  for (int peer = 0; peer < n_hosts_; ++peer) {
    co_await maybe_return_credits(peer);
  }
  co_return completed;
}

void Endpoint::kick() { node_.nic().host_ring().poke(); }

sim::Task<void> Endpoint::poll_until(const std::function<bool()>& done) {
  auto& host = node_.host();
  while (!done()) {
    (void)co_await extract();
    if (done()) break;
    host.charge(Cost::kCall, host.params().poll_gap);
    co_await host.sync();
    if (node_.nic().host_ring().empty()) {
      co_await node_.nic().host_ring().wait_nonempty();
    }
  }
}

}  // namespace fmx::fm1
