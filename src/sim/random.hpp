// Deterministic randomness for workload generation and fault injection.
#pragma once

#include <cstdint>
#include <random>

namespace fmx::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : gen_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) {
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(gen_);
  }

  double uniform_real() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(gen_);
  }

  bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(gen_);
  }

  /// Exponential with the given mean (inter-arrival modelling).
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(gen_);
  }

  std::mt19937_64& engine() noexcept { return gen_; }

 private:
  std::mt19937_64 gen_;
};

}  // namespace fmx::sim
