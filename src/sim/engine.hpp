// Deterministic single-threaded discrete-event engine. Events at equal
// timestamps run in schedule order (FIFO tie-break), so every simulation is
// exactly reproducible.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <vector>

#include "sim/task.hpp"
#include "sim/time.hpp"

namespace fmx::sim {

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Ps now() const noexcept { return now_; }

  /// Schedule a callback at absolute time t (>= now).
  void schedule_at(Ps t, std::function<void()> fn);
  void schedule_at(Ps t, std::coroutine_handle<> h);
  void schedule_in(Ps dt, std::function<void()> fn) {
    schedule_at(now_ + dt, std::move(fn));
  }

  /// Launch a detached root task at the current time. The engine tracks the
  /// number of unfinished roots so tests can detect deadlock (events drained
  /// while roots are still suspended on conditions that will never fire).
  void spawn(Task<void> task);

  /// Like spawn, but for server loops that intentionally never finish (NIC
  /// control programs, switch ports). Not counted in pending_roots().
  void spawn_daemon(Task<void> task);

  /// Awaitable: resume after dt picoseconds of simulated time.
  auto delay(Ps dt) { return DelayAwaiter{*this, now_ + dt}; }
  /// Awaitable: resume at absolute simulated time t (>= now).
  auto sleep_until(Ps t) { return DelayAwaiter{*this, t < now_ ? now_ : t}; }

  /// Run until the event queue is empty or `until` is reached.
  /// Returns the number of events processed.
  std::uint64_t run(Ps until = std::numeric_limits<Ps>::max());

  /// Process a single event; returns false if the queue is empty.
  bool step();

  bool idle() const noexcept { return queue_.empty(); }
  std::uint64_t events_processed() const noexcept { return processed_; }

  /// Unfinished root tasks. Nonzero after run() to exhaustion == deadlock.
  int pending_roots() const noexcept { return live_roots_; }

 private:
  struct DelayAwaiter {
    Engine& eng;
    Ps wake;
    bool await_ready() const noexcept { return wake <= eng.now_; }
    void await_suspend(std::coroutine_handle<> h) { eng.schedule_at(wake, h); }
    void await_resume() const noexcept {}
  };

  struct Event {
    Ps t;
    std::uint64_t seq;
    std::coroutine_handle<> coro;    // used when fn is empty
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      return a.t != b.t ? a.t > b.t : a.seq > b.seq;
    }
  };

  void run_root(std::coroutine_handle<Task<void>::promise_type> h);

  Ps now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  int live_roots_ = 0;
  int daemon_roots_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace fmx::sim
