// Deterministic single-threaded discrete-event engine. Events at equal
// timestamps run in schedule order (FIFO tie-break), so every simulation is
// exactly reproducible.
//
// The hot path is allocation-free in steady state: an event is a 16-byte
// (time, seq) key plus either a raw coroutine handle or a small-buffer
// callable (no heap for captures that fit kInlineBytes), the pending set is
// a 4-ary min-heap in one contiguous vector, and spawn() drives the root
// task from a pool-allocated driver frame instead of a shared_ptr + lambda.
#pragma once

#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <limits>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/task.hpp"
#include "sim/time.hpp"

namespace fmx::sim {

/// Move-only callable with small-buffer optimization. Callables whose state
/// fits kInlineBytes (every scheduler lambda in the tree) are stored in
/// place; larger ones fall back to one heap allocation, preserving the old
/// std::function semantics for arbitrary user code.
class SmallFn {
 public:
  static constexpr std::size_t kInlineBytes = 48;

  SmallFn() noexcept = default;

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, SmallFn> &&
             !std::is_convertible_v<F, std::coroutine_handle<>> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::remove_cvref_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_trivially_copyable_v<Fn>) {
      // Trivially-copyable inline callable (the vast majority: lambdas
      // capturing pointers/ints). manage_ stays null — relocation is a
      // memcpy in move_from, destruction is a no-op — so heap sifts moving
      // Events make no indirect call per element.
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      invoke_ = [](void* p) { (*std::launder(reinterpret_cast<Fn*>(p)))(); };
    } else if constexpr (sizeof(Fn) <= kInlineBytes &&
                         alignof(Fn) <= alignof(std::max_align_t) &&
                         std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      invoke_ = [](void* p) { (*std::launder(reinterpret_cast<Fn*>(p)))(); };
      manage_ = [](Op op, void* p, void* q) noexcept {
        Fn* self = std::launder(reinterpret_cast<Fn*>(p));
        if (op == Op::kRelocate) {
          ::new (q) Fn(std::move(*self));
        }
        self->~Fn();
      };
    } else {
      auto** slot = reinterpret_cast<Fn**>(buf_);
      *slot = new Fn(std::forward<F>(f));
      invoke_ = [](void* p) { (**std::launder(reinterpret_cast<Fn**>(p)))(); };
      manage_ = [](Op op, void* p, void* q) noexcept {
        Fn** self = std::launder(reinterpret_cast<Fn**>(p));
        if (op == Op::kRelocate) {
          *reinterpret_cast<Fn**>(q) = *self;
        } else {
          delete *self;
        }
      };
    }
  }

  SmallFn(SmallFn&& o) noexcept { move_from(o); }
  SmallFn& operator=(SmallFn&& o) noexcept {
    if (this != &o) {
      reset();
      move_from(o);
    }
    return *this;
  }
  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;
  ~SmallFn() { reset(); }

  explicit operator bool() const noexcept { return invoke_ != nullptr; }
  void operator()() { invoke_(buf_); }

 private:
  enum class Op : std::uint8_t { kRelocate, kDestroy };

  void move_from(SmallFn& o) noexcept {
    invoke_ = o.invoke_;
    manage_ = o.manage_;
    if (manage_ != nullptr) {
      o.manage_(Op::kRelocate, o.buf_, buf_);
    } else if (invoke_ != nullptr) {
      std::memcpy(buf_, o.buf_, kInlineBytes);
    }
    o.invoke_ = nullptr;
    o.manage_ = nullptr;
  }

  void reset() noexcept {
    if (manage_ != nullptr) manage_(Op::kDestroy, buf_, nullptr);
    invoke_ = nullptr;
    manage_ = nullptr;
  }

  alignas(std::max_align_t) std::byte buf_[kInlineBytes];
  void (*invoke_)(void*) = nullptr;
  void (*manage_)(Op, void*, void*) noexcept = nullptr;
};

class Engine {
 public:
  Engine() {
    // Callback slots recycle through free_fn_slots_, so growth stops at the
    // peak number of simultaneously scheduled callbacks. Reserve past any
    // realistic peak up front so the event hot path never allocates, even
    // when a deep burst first occurs mid-measurement.
    fn_slots_.reserve(256);
    free_fn_slots_.reserve(256);
  }
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Pre-size the event heap and callback-slot tables for a peak of
  /// `events` simultaneously scheduled events. The defaults suit a serial
  /// engine, where queue depth tracks the workload's natural concurrency;
  /// a parallel-run shard can receive an entire cross-ring drain batch in
  /// one burst (ParallelCluster calls this with its ring bounds) and the
  /// burst depth depends on wall-clock thread skew — growth mid-run would
  /// be a timing-dependent allocation in an otherwise allocation-free
  /// steady state.
  void reserve_events(std::size_t events) {
    queue_.reserve(events);
    fn_slots_.reserve(events);
    free_fn_slots_.reserve(events);
  }

  Ps now() const noexcept { return now_; }

  /// Schedule a callback at absolute time t (>= now).
  void schedule_at(Ps t, SmallFn fn);
  void schedule_at(Ps t, std::coroutine_handle<> h);

  /// Sequence-number band reserved for cross-shard arrivals in parallel
  /// runs (sim/parallel.hpp). Locally-scheduled events use the incrementing
  /// counter below this bit, so at equal timestamps every local event
  /// precedes every cross-shard event, and cross-shard events order among
  /// themselves by their explicit key — which the sender derives from
  /// (source node, per-source counter). The merged order therefore depends
  /// only on simulated state, never on when a peer shard's messages were
  /// drained, which is what makes parallel execution bit-identical at any
  /// thread count.
  static constexpr std::uint64_t kCrossSeqBand = std::uint64_t{1} << 63;

  /// Schedule a cross-shard arrival at absolute time t (>= now) with an
  /// explicit tie-break key (< kCrossSeqBand) instead of the local counter.
  void schedule_cross(Ps t, std::uint64_t key, SmallFn fn);
  void schedule_in(Ps dt, SmallFn fn) { schedule_at(now_ + dt, std::move(fn)); }
  void schedule_in(Ps dt, std::coroutine_handle<> h) {
    schedule_at(now_ + dt, h);
  }

  /// Launch a detached root task at the current time. The engine tracks the
  /// number of unfinished roots so tests can detect deadlock (events drained
  /// while roots are still suspended on conditions that will never fire).
  void spawn(Task<void> task);

  /// Like spawn, but starts the root at time `t` (clamped to now). Lets a
  /// multi-engine harness launch work at a common instant even when the
  /// engines' clocks drifted apart during a previous run.
  void spawn_at(Ps t, Task<void> task);

  /// Like spawn, but for server loops that intentionally never finish (NIC
  /// control programs, switch ports). Not counted in pending_roots().
  void spawn_daemon(Task<void> task);

  /// Awaitable: resume after dt picoseconds of simulated time.
  auto delay(Ps dt) { return DelayAwaiter{*this, now_ + dt}; }
  /// Awaitable: resume at absolute simulated time t (>= now).
  auto sleep_until(Ps t) { return DelayAwaiter{*this, t < now_ ? now_ : t}; }

  /// Run until the event queue is empty or `until` is reached.
  /// Returns the number of events processed by this call (the delta of
  /// events_processed() across it).
  std::uint64_t run(Ps until = std::numeric_limits<Ps>::max());

  /// Run events strictly below `*cap`, rereading the cap before every
  /// event: code executed *by* an event may lower it mid-run (the parallel
  /// scheduler does, when an event emits a cross-shard message whose echo
  /// bounds how far this shard may safely advance). Unlike run(), never
  /// advances the clock past the last executed event: an idle engine keeps
  /// now() at its last activity instead of jumping to the cap, so a
  /// shard's final clock is a pure function of its event history, not of
  /// the horizon its worker happened to observe — quantum boundaries are
  /// thread-timing-dependent, clocks must not be. The cap must only be
  /// written from this thread (it is reread, not synchronized).
  std::uint64_t run_below(const Ps* cap);

  /// Process a single event; returns false if the queue is empty.
  bool step();

  bool idle() const noexcept { return queue_.empty(); }
  std::uint64_t events_processed() const noexcept { return processed_; }

  /// Timestamp of the earliest pending event, or Ps max when idle. Used by
  /// the parallel scheduler to pick the next conservative window.
  Ps next_event_time() const noexcept {
    return queue_.empty() ? std::numeric_limits<Ps>::max() : queue_.min_time();
  }

  /// Unfinished root tasks. Nonzero after run() to exhaustion == deadlock.
  int pending_roots() const noexcept { return live_roots_; }

 private:
  struct DelayAwaiter {
    Engine& eng;
    Ps wake;
    bool await_ready() const noexcept { return wake <= eng.now_; }
    void await_suspend(std::coroutine_handle<> h) { eng.schedule_at(wake, h); }
    void await_resume() const noexcept {}
  };

  /// Heap entry: 24 trivially-copyable bytes. `payload` is a tagged word —
  /// low bit clear: the address of a coroutine frame to resume (the hot
  /// majority: channel wakeups, delays); low bit set: (slot << 1) | 1 into
  /// fn_slots_. Keeping callables out of line means sifts move three words
  /// instead of a 96-byte Event with a non-trivial member.
  struct HeapEvent {
    Ps t;
    std::uint64_t seq;
    std::uintptr_t payload;
  };

  /// 4-ary min-heap keyed on (t, seq) in one contiguous vector. Shallower
  /// than a binary heap, and with 24-byte entries the four children of a
  /// node share 1.5 cache lines. The (t, seq) key is a total order, so pop
  /// order — and therefore the simulation — is identical to the old
  /// std::priority_queue regardless of internal heap layout.
  class EventQueue {
   public:
    bool empty() const noexcept { return v_.empty(); }
    std::size_t size() const noexcept { return v_.size(); }
    Ps min_time() const noexcept { return v_.front().t; }
    void reserve(std::size_t n) { v_.reserve(n); }

    void push(HeapEvent e) {
      v_.push_back(e);
      sift_up(v_.size() - 1);
    }

    HeapEvent pop_min() {
      HeapEvent out = v_.front();
      HeapEvent displaced = v_.back();
      v_.pop_back();
      if (!v_.empty()) sift_hole_down(displaced);
      return out;
    }

   private:
    static bool before(const HeapEvent& a, const HeapEvent& b) noexcept {
      return a.t != b.t ? a.t < b.t : a.seq < b.seq;
    }
    void sift_up(std::size_t i);
    void sift_hole_down(HeapEvent displaced);

    std::vector<HeapEvent> v_;
  };

  Ps now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  int live_roots_ = 0;
  int daemon_roots_ = 0;
  EventQueue queue_;
  // Out-of-line callable storage for SmallFn events; slots recycle LIFO so
  // the working set stays hot and steady state never allocates.
  std::vector<SmallFn> fn_slots_;
  std::vector<std::uint32_t> free_fn_slots_;
};

}  // namespace fmx::sim
