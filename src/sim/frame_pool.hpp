// Size-bucketed free-list allocator for coroutine frames. Every co_await of
// a sim::Task (Channel::push/pop, Fabric::transmit, Host::sync, ...) creates
// a coroutine frame; with plain operator new that is a malloc/free pair per
// call — i.e. per simulated packet. Frame sizes repeat (the same coroutines
// run millions of times), so a per-size free list reaches steady state after
// warm-up and the simulation's hot paths stop allocating entirely.
//
// Each thread gets its own pool (thread_local): a shard engine driven by a
// parallel-run worker (sim/parallel.hpp) recycles frames through its own
// free lists with no locks, keeping the hot path allocation-free per shard.
// A frame freed on a different thread (e.g. spawned on the main thread,
// completed by a worker) returns to its owning pool through a lock-free
// remote stack, so cross-thread spawns cannot drain any pool one-way.
// Memory is carved from slabs that are retained for the life of the
// process — frames are recycled, never returned to malloc.
#pragma once

#include <cstddef>
#include <cstdint>

namespace fmx::sim {

struct FramePoolStats {
  std::uint64_t allocs = 0;       // frame_alloc calls
  std::uint64_t frees = 0;        // frame_free calls
  std::uint64_t slab_allocs = 0;  // times a new slab was carved from malloc
  std::uint64_t oversize = 0;     // requests too big to pool (fell to new)
  std::uint64_t recycled = 0;     // allocs served from a free list
  std::uint64_t remote_frees = 0;  // frames returned to a foreign pool
};

namespace detail {

void* frame_alloc(std::size_t n);
void frame_free(void* p, std::size_t n) noexcept;

}  // namespace detail

/// Counters for the calling thread's pool (pools are thread_local).
const FramePoolStats& frame_pool_stats() noexcept;

/// Mixin: give a coroutine promise pooled frame allocation.
/// `struct promise_type : PooledFrame { ... };`
struct PooledFrame {
  static void* operator new(std::size_t n) { return detail::frame_alloc(n); }
  static void operator delete(void* p, std::size_t n) noexcept {
    detail::frame_free(p, n);
  }
};

}  // namespace fmx::sim
