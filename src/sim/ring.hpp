// Growable circular FIFO used on the simulator's hot paths in place of
// std::deque. libstdc++'s deque allocates and frees a ~512-byte node every
// few dozen push/pop cycles even at a constant queue depth, so a steady
// packet stream pays malloc per packet; this ring doubles its backing store
// until it reaches the workload's high-water mark and then never allocates
// again.
#pragma once

#include <cassert>
#include <cstddef>
#include <memory>
#include <new>
#include <utility>

namespace fmx::sim {

template <typename T>
class RingQueue {
 public:
  RingQueue() = default;
  RingQueue(const RingQueue&) = delete;
  RingQueue& operator=(const RingQueue&) = delete;
  RingQueue(RingQueue&& o) noexcept
      : buf_(std::exchange(o.buf_, nullptr)),
        cap_(std::exchange(o.cap_, 0)),
        head_(std::exchange(o.head_, 0)),
        size_(std::exchange(o.size_, 0)) {}
  RingQueue& operator=(RingQueue&& o) noexcept {
    if (this != &o) {
      destroy_all();
      buf_ = std::exchange(o.buf_, nullptr);
      cap_ = std::exchange(o.cap_, 0);
      head_ = std::exchange(o.head_, 0);
      size_ = std::exchange(o.size_, 0);
    }
    return *this;
  }
  ~RingQueue() { destroy_all(); }

  bool empty() const noexcept { return size_ == 0; }
  std::size_t size() const noexcept { return size_; }
  std::size_t capacity() const noexcept { return cap_; }

  T& front() noexcept {
    assert(size_ > 0);
    return slot(head_);
  }
  const T& front() const noexcept {
    assert(size_ > 0);
    return const_cast<RingQueue*>(this)->slot(head_);
  }
  /// i-th element from the front (0 == front()).
  T& operator[](std::size_t i) noexcept {
    assert(i < size_);
    return slot((head_ + i) & (cap_ - 1));
  }
  const T& operator[](std::size_t i) const noexcept {
    return (*const_cast<RingQueue*>(this))[i];
  }

  /// Grow the backing store so at least `n` elements fit without a further
  /// allocation. Lets owners with a known structural bound (e.g. a credit
  /// limit) reach the high-water mark at construction instead of during
  /// the first deep burst.
  void reserve(std::size_t n) {
    while (cap_ < n) grow();
  }

  void push_back(T v) {
    if (size_ == cap_) grow();
    ::new (static_cast<void*>(&slot_raw((head_ + size_) & (cap_ - 1))))
        T(std::move(v));
    ++size_;
  }

  void pop_front() {
    assert(size_ > 0);
    slot(head_).~T();
    head_ = (head_ + 1) & (cap_ - 1);
    --size_;
  }

  /// Move the front element out and pop it.
  T take_front() {
    assert(size_ > 0);
    T v = std::move(slot(head_));
    pop_front();
    return v;
  }

  void clear() noexcept {
    while (size_ > 0) pop_front();
  }

 private:
  struct alignas(alignof(T)) Storage {
    std::byte bytes[sizeof(T)];
  };

  T& slot(std::size_t i) noexcept {
    return *std::launder(reinterpret_cast<T*>(&buf_[i]));
  }
  Storage& slot_raw(std::size_t i) noexcept { return buf_[i]; }

  void grow() {
    std::size_t ncap = cap_ == 0 ? 8 : cap_ * 2;
    Storage* nbuf = new Storage[ncap];
    for (std::size_t i = 0; i < size_; ++i) {
      T& src = slot((head_ + i) & (cap_ - 1));
      ::new (static_cast<void*>(&nbuf[i])) T(std::move(src));
      src.~T();
    }
    delete[] buf_;
    buf_ = nbuf;
    cap_ = ncap;
    head_ = 0;
  }

  void destroy_all() noexcept {
    clear();
    delete[] buf_;
    buf_ = nullptr;
    cap_ = 0;
  }

  Storage* buf_ = nullptr;
  std::size_t cap_ = 0;   // always a power of two (or 0)
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace fmx::sim
