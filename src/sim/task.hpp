// Lazy coroutine task used for all simulated activities (host processes,
// NIC control programs, message handlers). Tasks compose with co_await and
// use symmetric transfer, so arbitrarily deep call chains cost no stack.
//
// TOOLCHAIN NOTE: GCC 12.x miscompiles by-value coroutine parameters whose
// type is an *aggregate* when the argument is a prvalue temporary (the
// parameter copy is elided into the caller's temporary, then both frames
// destroy it -> double free). Project rule: any struct passed by value into
// a coroutine must have a user-declared constructor (making it a
// non-aggregate), which sidesteps the bug. See tests/sim/engine_test.cpp.
#pragma once

#include <cassert>
#include <coroutine>
#include <exception>
#include <utility>
#include <variant>

#include "sim/frame_pool.hpp"

namespace fmx::sim {

template <typename T>
class Task;

namespace detail {

// Frames come from the size-bucketed pool (sim/frame_pool.hpp): Task
// coroutines are created per channel op / packet / sync call, and pooling
// makes those hot paths allocation-free in steady state.
class TaskPromiseBase : public PooledFrame {
 public:
  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename P>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<P> h) noexcept {
      // Resume whoever co_awaited us; a detached root has a noop here.
      return h.promise().continuation_;
    }
    void await_resume() noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  void set_continuation(std::coroutine_handle<> c) noexcept {
    continuation_ = c;
  }

 protected:
  std::coroutine_handle<> continuation_ = std::noop_coroutine();
};

}  // namespace detail

/// A lazily-started coroutine producing a T (or void). Move-only; owning.
/// Must be co_awaited (or passed to Engine::spawn for Task<void>) exactly
/// once; destroying an unawaited task cancels it without running it.
template <typename T = void>
class [[nodiscard]] Task {
 public:
  class promise_type : public detail::TaskPromiseBase {
   public:
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void unhandled_exception() { result_ = std::current_exception(); }
    template <typename U>
    void return_value(U&& v) {
      result_.template emplace<1>(std::forward<U>(v));
    }
    T take_result() {
      if (auto* e = std::get_if<std::exception_ptr>(&result_)) {
        std::rethrow_exception(*e);
      }
      return std::move(std::get<1>(result_));
    }

   private:
    std::variant<std::monostate, T, std::exception_ptr> result_;
  };

  Task() noexcept = default;
  Task(Task&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      if (h_) h_.destroy();
      h_ = std::exchange(o.h_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() {
    if (h_) h_.destroy();
  }

  bool valid() const noexcept { return static_cast<bool>(h_); }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> cont) noexcept {
        h.promise().set_continuation(cont);
        return h;  // symmetric transfer: start the child now
      }
      T await_resume() { return h.promise().take_result(); }
    };
    assert(h_ && "task must be valid to await");
    return Awaiter{h_};
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) noexcept : h_(h) {}
  friend class promise_type;

  std::coroutine_handle<promise_type> h_{};
};

template <>
class [[nodiscard]] Task<void> {
 public:
  class promise_type : public detail::TaskPromiseBase {
   public:
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void unhandled_exception() { error_ = std::current_exception(); }
    void return_void() noexcept {}
    void take_result() {
      if (error_) std::rethrow_exception(error_);
    }

   private:
    std::exception_ptr error_{};
  };

  Task() noexcept = default;
  Task(Task&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      if (h_) h_.destroy();
      h_ = std::exchange(o.h_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() {
    if (h_) h_.destroy();
  }

  bool valid() const noexcept { return static_cast<bool>(h_); }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> cont) noexcept {
        h.promise().set_continuation(cont);
        return h;
      }
      void await_resume() { h.promise().take_result(); }
    };
    assert(h_ && "task must be valid to await");
    return Awaiter{h_};
  }

  /// Release ownership (used by Engine::spawn's root driver).
  std::coroutine_handle<promise_type> release() noexcept {
    return std::exchange(h_, {});
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) noexcept : h_(h) {}
  friend class promise_type;

  std::coroutine_handle<promise_type> h_{};
};

}  // namespace fmx::sim
