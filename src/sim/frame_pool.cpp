#include "sim/frame_pool.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace fmx::sim {
namespace {

// Frames are rounded up to 64-byte granularity; one free list per size
// class, classes up to 4 KiB (larger frames are rare one-offs and go to
// plain operator new).
constexpr std::size_t kGranularity = 64;
constexpr std::size_t kMaxPooled = 4096;
constexpr std::size_t kClasses = kMaxPooled / kGranularity;
constexpr std::size_t kSlabBytes = 64 * 1024;

struct Pool;

// Every pooled frame is preceded by this header. It names the pool that
// carved the frame so a free on a *different* thread can hand the memory
// back to its owner instead of hoarding it locally: a coroutine spawned on
// the main thread but completed by a parallel-run worker (spawn_on before
// ParallelEngine::run) would otherwise drain the spawner's pool one-way,
// forcing a fresh slab carve every few thousand spawns — the lone
// steady-state allocation the bench alloc gate used to show. 16 bytes to
// keep the frame's max_align_t alignment.
struct FrameHeader {
  union {
    Pool* owner;        // valid while the frame is live
    FrameHeader* next;  // valid while on a free list / remote stack
  };
  std::uint32_t bytes;  // rounded size including this header
  std::uint32_t pad_;
};
static_assert(sizeof(FrameHeader) == 16);
static_assert(alignof(std::max_align_t) <= 16);

struct Pool {
  FrameHeader* free_list[kClasses] = {};
  // Frames freed by other threads, pushed here lock-free and drained by
  // the owner before it carves new slab space.
  std::atomic<FrameHeader*> remote_head{nullptr};
  // Bump region of the current slab per class-agnostic arena.
  std::byte* bump = nullptr;
  std::size_t bump_left = 0;
  FramePoolStats stats;
};

// One pool per thread: each parallel-run worker (sim/parallel.hpp) recycles
// frames through its own free lists with no synchronization. Frames freed
// on a foreign thread return to the owner through its remote stack, so no
// pool leaks memory to another. The Pool object is heap-allocated and
// deliberately never destroyed (like its slabs, which live for the
// process): a frame may outlive the thread that carved it, and its
// eventual free must find the owner pool's remote stack still valid.
Pool& pool() {
  thread_local Pool* p = new Pool;
  return *p;
}

void push_local(Pool& p, FrameHeader* h) {
  std::size_t cls = h->bytes / kGranularity - 1;
  h->next = p.free_list[cls];
  p.free_list[cls] = h;
}

void drain_remote(Pool& p) {
  FrameHeader* h = p.remote_head.exchange(nullptr, std::memory_order_acquire);
  while (h != nullptr) {
    FrameHeader* next = h->next;
    push_local(p, h);
    h = next;
  }
}

}  // namespace

namespace detail {

void* frame_alloc(std::size_t n) {
  Pool& p = pool();
  ++p.stats.allocs;
  std::size_t total = n + sizeof(FrameHeader);
  if (total > kMaxPooled) {
    ++p.stats.oversize;
    return ::operator new(n);
  }
  std::size_t cls = (total + kGranularity - 1) / kGranularity - 1;
  std::size_t want = (cls + 1) * kGranularity;
  if (p.free_list[cls] == nullptr) drain_remote(p);
  FrameHeader* h = p.free_list[cls];
  if (h != nullptr) {
    p.free_list[cls] = h->next;
    ++p.stats.recycled;
  } else {
    if (p.bump_left < want) {
      // Retire the slab remnant into the largest classes it still fits
      // (avoids wasting the tail) and carve a fresh slab.
      std::byte* rem =
          p.bump != nullptr ? p.bump + (kSlabBytes - p.bump_left) : nullptr;
      std::size_t left = p.bump != nullptr ? p.bump_left : 0;
      while (left >= kGranularity) {
        std::size_t rcls = left / kGranularity - 1;
        std::size_t rbytes = (rcls + 1) * kGranularity;
        auto* node = reinterpret_cast<FrameHeader*>(rem);
        node->bytes = static_cast<std::uint32_t>(rbytes);
        push_local(p, node);
        rem += rbytes;
        left -= rbytes;
      }
      p.bump = static_cast<std::byte*>(::operator new(kSlabBytes));
      p.bump_left = kSlabBytes;
      ++p.stats.slab_allocs;
    }
    h = reinterpret_cast<FrameHeader*>(p.bump + (kSlabBytes - p.bump_left));
    p.bump_left -= want;
  }
  h->owner = &p;
  h->bytes = static_cast<std::uint32_t>(want);
  return reinterpret_cast<std::byte*>(h) + sizeof(FrameHeader);
}

void frame_free(void* ptr, std::size_t n) noexcept {
  Pool& p = pool();
  ++p.stats.frees;
  if (n + sizeof(FrameHeader) > kMaxPooled) {
    ::operator delete(ptr);
    return;
  }
  auto* h = reinterpret_cast<FrameHeader*>(static_cast<std::byte*>(ptr) -
                                           sizeof(FrameHeader));
  Pool* owner = h->owner;
  if (owner == &p) {
    push_local(p, h);
    return;
  }
  // Foreign free: hand the frame back to the pool that carved it. The
  // owner may be parked or gone (its Pool is leaked, so the stack stays
  // valid); it picks these up next time one of its free lists runs dry.
  ++p.stats.remote_frees;
  FrameHeader* head = owner->remote_head.load(std::memory_order_relaxed);
  do {
    h->next = head;
  } while (!owner->remote_head.compare_exchange_weak(
      head, h, std::memory_order_release, std::memory_order_relaxed));
}

}  // namespace detail

const FramePoolStats& frame_pool_stats() noexcept { return pool().stats; }

}  // namespace fmx::sim
