#include "sim/frame_pool.hpp"

#include <cstdlib>
#include <new>

namespace fmx::sim {
namespace {

// Frames are rounded up to 64-byte granularity; one free list per size
// class, classes up to 4 KiB (larger frames are rare one-offs and go to
// plain operator new).
constexpr std::size_t kGranularity = 64;
constexpr std::size_t kMaxPooled = 4096;
constexpr std::size_t kClasses = kMaxPooled / kGranularity;
constexpr std::size_t kSlabBytes = 64 * 1024;

struct FreeNode {
  FreeNode* next;
};

struct Pool {
  FreeNode* free_list[kClasses] = {};
  // Bump region of the current slab per class-agnostic arena.
  std::byte* bump = nullptr;
  std::size_t bump_left = 0;
  FramePoolStats stats;
};

// One pool per thread: each parallel-run worker (sim/parallel.hpp) recycles
// frames through its own free lists with no synchronization, preserving the
// allocation-free steady state per shard. A frame is always freed on the
// thread that is running its coroutine, so alloc and free hit the same
// pool; slabs are retained for the life of the thread.
Pool& pool() {
  thread_local Pool p;
  return p;
}

}  // namespace

namespace detail {

void* frame_alloc(std::size_t n) {
  Pool& p = pool();
  ++p.stats.allocs;
  if (n == 0) n = 1;
  if (n > kMaxPooled) {
    ++p.stats.oversize;
    return ::operator new(n);
  }
  std::size_t cls = (n + kGranularity - 1) / kGranularity - 1;
  if (FreeNode* f = p.free_list[cls]) {
    p.free_list[cls] = f->next;
    ++p.stats.recycled;
    return f;
  }
  std::size_t want = (cls + 1) * kGranularity;
  if (p.bump_left < want) {
    // Retire the slab remnant into the largest classes it still fits
    // (avoids wasting the tail) and carve a fresh slab.
    std::byte* rem =
        p.bump != nullptr ? p.bump + (kSlabBytes - p.bump_left) : nullptr;
    std::size_t left = p.bump != nullptr ? p.bump_left : 0;
    while (left >= kGranularity) {
      std::size_t rcls = left / kGranularity - 1;
      std::size_t rbytes = (rcls + 1) * kGranularity;
      auto* node = reinterpret_cast<FreeNode*>(rem);
      node->next = p.free_list[rcls];
      p.free_list[rcls] = node;
      rem += rbytes;
      left -= rbytes;
    }
    p.bump = static_cast<std::byte*>(::operator new(kSlabBytes));
    p.bump_left = kSlabBytes;
    ++p.stats.slab_allocs;
  }
  void* out = p.bump + (kSlabBytes - p.bump_left);
  p.bump_left -= want;
  return out;
}

void frame_free(void* ptr, std::size_t n) noexcept {
  Pool& p = pool();
  ++p.stats.frees;
  if (n == 0) n = 1;
  if (n > kMaxPooled) {
    ::operator delete(ptr);
    return;
  }
  std::size_t cls = (n + kGranularity - 1) / kGranularity - 1;
  auto* node = static_cast<FreeNode*>(ptr);
  node->next = p.free_list[cls];
  p.free_list[cls] = node;
}

}  // namespace detail

const FramePoolStats& frame_pool_stats() noexcept { return pool().stats; }

}  // namespace fmx::sim
