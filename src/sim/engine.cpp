#include "sim/engine.hpp"

#include <cassert>
#include <memory>

namespace fmx::sim {
namespace {

// Detached driver for root tasks: eagerly starts, self-destroys on return.
struct Detached {
  struct promise_type {
    Detached get_return_object() { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    // Let the exception escape through Engine::run so tests see it.
    void unhandled_exception() { throw; }
  };
};

Detached drive(Engine* eng, std::shared_ptr<Task<void>> task,
               int* live_roots) {
  co_await std::move(*task);
  (void)eng;
  --*live_roots;
}

}  // namespace

void Engine::schedule_at(Ps t, std::function<void()> fn) {
  assert(t >= now_ && "cannot schedule in the past");
  queue_.push(Event{t, next_seq_++, {}, std::move(fn)});
}

void Engine::schedule_at(Ps t, std::coroutine_handle<> h) {
  assert(t >= now_ && "cannot schedule in the past");
  queue_.push(Event{t, next_seq_++, h, {}});
}

void Engine::spawn(Task<void> task) {
  ++live_roots_;
  auto t = std::make_shared<Task<void>>(std::move(task));
  schedule_at(now_, [this, t]() mutable { drive(this, t, &live_roots_); });
}

void Engine::spawn_daemon(Task<void> task) {
  auto t = std::make_shared<Task<void>>(std::move(task));
  schedule_at(now_,
              [this, t]() mutable { drive(this, t, &daemon_roots_); });
}

bool Engine::step() {
  if (queue_.empty()) return false;
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.t;
  ++processed_;
  if (ev.fn) {
    ev.fn();
  } else {
    ev.coro.resume();
  }
  return true;
}

std::uint64_t Engine::run(Ps until) {
  std::uint64_t n = 0;
  while (!queue_.empty() && queue_.top().t <= until) {
    step();
    ++n;
  }
  if (now_ < until && until != std::numeric_limits<Ps>::max()) now_ = until;
  return n;
}

}  // namespace fmx::sim
