#include "sim/engine.hpp"

#include <cassert>

#include "sim/frame_pool.hpp"

namespace fmx::sim {
namespace {

// Detached driver for root tasks. Suspended at creation, resumed by the
// engine at its scheduled time, self-destroys on return. Owning the Task by
// value replaces the old shared_ptr<Task> + capturing-lambda (three heap
// allocations per spawn); the driver frame itself comes from the frame pool.
struct RootDriver {
  struct promise_type : PooledFrame {
    RootDriver get_return_object() {
      return {std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    // Let the exception escape through Engine::run so tests see it.
    void unhandled_exception() { throw; }
  };
  std::coroutine_handle<promise_type> handle;
};

RootDriver drive(Task<void> task, int* live_roots) {
  co_await std::move(task);
  --*live_roots;
}

}  // namespace

void Engine::schedule_at(Ps t, SmallFn fn) {
  assert(t >= now_ && "cannot schedule in the past");
  std::uint32_t slot;
  if (!free_fn_slots_.empty()) {
    slot = free_fn_slots_.back();
    free_fn_slots_.pop_back();
    fn_slots_[slot] = std::move(fn);
  } else {
    slot = static_cast<std::uint32_t>(fn_slots_.size());
    fn_slots_.push_back(std::move(fn));
  }
  queue_.push(
      HeapEvent{t, next_seq_++, (static_cast<std::uintptr_t>(slot) << 1) | 1});
}

void Engine::schedule_cross(Ps t, std::uint64_t key, SmallFn fn) {
  assert(t >= now_ && "cannot schedule in the past");
  assert(key < kCrossSeqBand && "cross-shard key must leave the band bit 0");
  std::uint32_t slot;
  if (!free_fn_slots_.empty()) {
    slot = free_fn_slots_.back();
    free_fn_slots_.pop_back();
    fn_slots_[slot] = std::move(fn);
  } else {
    slot = static_cast<std::uint32_t>(fn_slots_.size());
    fn_slots_.push_back(std::move(fn));
  }
  queue_.push(HeapEvent{t, kCrossSeqBand | key,
                        (static_cast<std::uintptr_t>(slot) << 1) | 1});
}

void Engine::schedule_at(Ps t, std::coroutine_handle<> h) {
  assert(t >= now_ && "cannot schedule in the past");
  auto addr = reinterpret_cast<std::uintptr_t>(h.address());
  assert((addr & 1) == 0 && "coroutine frames are at least 2-byte aligned");
  queue_.push(HeapEvent{t, next_seq_++, addr});
}

void Engine::spawn(Task<void> task) {
  ++live_roots_;
  schedule_at(now_, drive(std::move(task), &live_roots_).handle);
}

void Engine::spawn_at(Ps t, Task<void> task) {
  ++live_roots_;
  schedule_at(t < now_ ? now_ : t, drive(std::move(task), &live_roots_).handle);
}

void Engine::spawn_daemon(Task<void> task) {
  schedule_at(now_, drive(std::move(task), &daemon_roots_).handle);
}

bool Engine::step() {
  if (queue_.empty()) return false;
  HeapEvent ev = queue_.pop_min();
  now_ = ev.t;
  ++processed_;
  if (ev.payload & 1) {
    const auto slot = static_cast<std::uint32_t>(ev.payload >> 1);
    SmallFn fn = std::move(fn_slots_[slot]);
    free_fn_slots_.push_back(slot);
    fn();
  } else {
    std::coroutine_handle<>::from_address(
        reinterpret_cast<void*>(ev.payload))
        .resume();
  }
  return true;
}

std::uint64_t Engine::run(Ps until) {
  const std::uint64_t before = processed_;
  while (!queue_.empty() && queue_.min_time() <= until) step();
  if (now_ < until && until != std::numeric_limits<Ps>::max()) now_ = until;
  return processed_ - before;
}

std::uint64_t Engine::run_below(const Ps* cap) {
  const std::uint64_t before = processed_;
  while (!queue_.empty() && queue_.min_time() < *cap) step();
  return processed_ - before;
}

void Engine::EventQueue::sift_up(std::size_t i) {
  HeapEvent e = v_[i];
  while (i > 0) {
    std::size_t parent = (i - 1) / 4;
    if (!before(e, v_[parent])) break;
    v_[i] = v_[parent];
    i = parent;
  }
  v_[i] = e;
}

// Bottom-up heap repair after pop (as in libstdc++ __pop_heap): walk the
// root hole down along minimum children all the way to a leaf, then place
// the displaced last element there and sift it up. The displaced element
// came from the bottom of the heap, so the upward pass almost always stops
// immediately — saving one compare-against-displaced per level versus the
// textbook sift-down.
void Engine::EventQueue::sift_hole_down(HeapEvent displaced) {
  const std::size_t n = v_.size();
  std::size_t i = 0;
  for (;;) {
    std::size_t first = i * 4 + 1;
    if (first >= n) break;
    std::size_t last = first + 4 < n ? first + 4 : n;
    std::size_t best = first;
    for (std::size_t c = first + 1; c < last; ++c) {
      if (before(v_[c], v_[best])) best = c;
    }
    v_[i] = v_[best];
    i = best;
  }
  v_[i] = displaced;
  sift_up(i);
}

}  // namespace fmx::sim
