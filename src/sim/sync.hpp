// Coroutine synchronization primitives on top of the event engine.
// Wakeups are scheduled through the engine at the current timestamp (never
// resumed inline), which keeps event ordering deterministic and stacks flat.
// Waiter queues are RingQueues: steady-state waiting/waking does not touch
// the allocator (std::deque would churn a node allocation per ~64 waits).
#pragma once

#include <cassert>
#include <coroutine>
#include <cstddef>
#include <vector>

#include "sim/engine.hpp"
#include "sim/ring.hpp"
#include "sim/task.hpp"

namespace fmx::sim {

/// Mesa-style condition variable: `while (!pred) co_await cv.wait();`
class CondVar {
 public:
  explicit CondVar(Engine& eng) : eng_(eng) {}
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  auto wait() {
    struct Awaiter {
      CondVar& cv;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        cv.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  void notify_one() {
    if (waiters_.empty()) return;
    eng_.schedule_at(eng_.now(), waiters_.take_front());
  }

  void notify_all() {
    while (!waiters_.empty()) {
      eng_.schedule_at(eng_.now(), waiters_.take_front());
    }
  }

  std::size_t waiting() const noexcept { return waiters_.size(); }

 private:
  Engine& eng_;
  RingQueue<std::coroutine_handle<>> waiters_;
};

/// Counting semaphore with FIFO handoff (a release while waiters exist
/// transfers the token directly to the oldest waiter).
class Semaphore {
 public:
  Semaphore(Engine& eng, long initial) : eng_(eng), count_(initial) {
    assert(initial >= 0);
  }
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  auto acquire() {
    struct Awaiter {
      Semaphore& s;
      bool await_ready() const noexcept {
        if (s.count_ > 0) {
          --s.count_;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        s.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  bool try_acquire() noexcept {
    if (count_ > 0) {
      --count_;
      return true;
    }
    return false;
  }

  void release(long n = 1) {
    for (long i = 0; i < n; ++i) {
      if (!waiters_.empty()) {
        // token handed to the waiter
        eng_.schedule_at(eng_.now(), waiters_.take_front());
      } else {
        ++count_;
      }
    }
  }

  long available() const noexcept { return count_; }
  std::size_t waiting() const noexcept { return waiters_.size(); }

 private:
  Engine& eng_;
  long count_;
  RingQueue<std::coroutine_handle<>> waiters_;
};

/// One-shot latch: waiters block until open() fires; waits after that
/// complete immediately.
class Gate {
 public:
  explicit Gate(Engine& eng) : eng_(eng) {}
  Gate(const Gate&) = delete;
  Gate& operator=(const Gate&) = delete;

  auto wait() {
    struct Awaiter {
      Gate& g;
      bool await_ready() const noexcept { return g.open_; }
      void await_suspend(std::coroutine_handle<> h) {
        g.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  void open() {
    if (open_) return;
    open_ = true;
    for (auto h : waiters_) eng_.schedule_at(eng_.now(), h);
    waiters_.clear();
  }

  bool is_open() const noexcept { return open_; }

 private:
  Engine& eng_;
  bool open_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Fork/join helper: spawn several root tasks, then co_await join().
class JoinSet {
 public:
  explicit JoinSet(Engine& eng) : eng_(eng), done_(eng) {}

  void spawn(Task<void> t) {
    ++pending_;
    eng_.spawn(wrap(std::move(t)));
  }

  Task<void> join() {
    if (pending_ > 0) co_await done_.wait();
  }

 private:
  Task<void> wrap(Task<void> t) {
    co_await std::move(t);
    if (--pending_ == 0) done_.open();
  }

  Engine& eng_;
  int pending_ = 0;
  Gate done_;
};

}  // namespace fmx::sim
