#include "sim/parallel.hpp"

#include <cassert>
#include <limits>
#include <thread>

namespace fmx::sim {
namespace {

constexpr Ps kNever = std::numeric_limits<Ps>::max();

}  // namespace

// Sense-reversing spin barrier. The epilogue of the last arriver runs while
// every other thread waits, so it may read and write the shared window
// state without locks; its writes are published by the generation bump
// (release) and observed through the waiters' acquire loads. Spins fall
// back to yield so progress is reasonable even with more workers than
// cores (CI machines, TSAN runs).
struct ParallelEngine::Shared {
  explicit Shared(int n) : n_threads(n) {}

  template <typename F>
  void arrive_and_wait(F&& epilogue) {
    const std::uint32_t g = gen.load(std::memory_order_acquire);
    if (arrived.fetch_add(1, std::memory_order_acq_rel) + 1 == n_threads) {
      epilogue();
      arrived.store(0, std::memory_order_relaxed);
      gen.store(g + 1, std::memory_order_release);
    } else {
      int spins = 0;
      while (gen.load(std::memory_order_acquire) == g) {
        if (++spins > 128) std::this_thread::yield();
      }
    }
  }

  const int n_threads;
  std::atomic<std::uint32_t> arrived{0};
  std::atomic<std::uint32_t> gen{0};
  std::atomic<std::uint64_t> events{0};
  // Written only by barrier epilogues, read by all workers between
  // barriers — synchronized via the generation counter.
  Ps win_end = 0;
  std::uint64_t windows = 0;
  bool done = false;
};

ParallelEngine::ParallelEngine(int n_shards, Ps lookahead)
    : lookahead_(lookahead) {
  assert(n_shards >= 1);
  assert(lookahead >= 1 && "zero lookahead cannot make progress");
  shards_.reserve(n_shards);
  for (int i = 0; i < n_shards; ++i) {
    shards_.push_back(std::make_unique<Engine>());
  }
  drains_.resize(n_shards);
}

ParallelEngine::~ParallelEngine() = default;

void ParallelEngine::set_drain(int shard, std::function<void()> fn) {
  drains_[shard] = std::move(fn);
}

void ParallelEngine::worker(int w, int n_threads, Shared& sh) {
  const int k = n_shards();
  std::uint64_t local_events = 0;
  for (;;) {
    // Drain phase: rings hold exactly what peers published before the last
    // barrier; no one is running, so nothing new appears mid-drain.
    for (int s = w; s < k; s += n_threads) {
      if (drains_[s]) drains_[s]();
    }
    sh.arrive_and_wait([&] {
      // All drains complete: every pending interaction is now an engine
      // event, so the next window starts at the global minimum event time
      // (skipping idle gaps) and quiescence is simply "all shards idle".
      Ps m = kNever;
      for (const auto& e : shards_) {
        const Ps t = e->next_event_time();
        if (t < m) m = t;
      }
      if (m == kNever) {
        sh.done = true;
      } else {
        sh.win_end = m + lookahead_;
        ++sh.windows;
      }
    });
    if (sh.done) break;
    const Ps until = sh.win_end - 1;
    for (int s = w; s < k; s += n_threads) {
      local_events += shards_[s]->run(until);
    }
    // Publish this window's cross-shard messages before anyone drains.
    sh.arrive_and_wait([] {});
  }
  sh.events.fetch_add(local_events, std::memory_order_relaxed);
}

ParallelEngine::RunResult ParallelEngine::run(int n_threads) {
  const int k = n_shards();
  if (n_threads < 1) n_threads = 1;
  if (n_threads > k) n_threads = k;
  Shared sh(n_threads);
  if (n_threads == 1) {
    worker(0, 1, sh);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(n_threads - 1);
    for (int w = 1; w < n_threads; ++w) {
      pool.emplace_back([this, w, n_threads, &sh] { worker(w, n_threads, sh); });
    }
    worker(0, n_threads, sh);
    for (auto& t : pool) t.join();
  }
  RunResult r;
  r.events = sh.events.load(std::memory_order_relaxed);
  r.windows = sh.windows;
  for (const auto& e : shards_) r.pending_roots += e->pending_roots();
  return r;
}

}  // namespace fmx::sim
