#include "sim/parallel.hpp"

#include <cassert>
#include <chrono>
#include <limits>

namespace fmx::sim {
namespace {

constexpr Ps kNever = std::numeric_limits<Ps>::max();

constexpr Ps sat_add(Ps a, Ps b) noexcept {
  return a > kNever - b ? kNever : a + b;
}

// Full fast passes over the owned shards before backing off. A pass is
// already substantial work (k-1 horizon loads + ring probes per shard), so
// the pure-spin budget is small; yields keep oversubscribed runs (more
// workers than cores: CI, TSan) moving.
constexpr int kSpinPasses = 4;
constexpr int kYieldPasses = 64;
constexpr auto kParkTimeout = std::chrono::microseconds(100);

}  // namespace

ParallelEngine::ParallelEngine(int n_shards, Ps lookahead)
    : ParallelEngine(n_shards,
                     std::vector<Ps>(
                         static_cast<std::size_t>(n_shards) * n_shards,
                         lookahead)) {}

ParallelEngine::ParallelEngine(int n_shards, std::vector<Ps> lookahead)
    : lookahead_(std::move(lookahead)) {
  assert(n_shards >= 1);
  assert(lookahead_.size() ==
         static_cast<std::size_t>(n_shards) * n_shards);
  const std::size_t k = static_cast<std::size_t>(n_shards);
  for (std::size_t s = 0; s < k; ++s) lookahead_[s * k + s] = 0;
  // Metric closure (Floyd–Warshall): a relay chain src -> x -> dst is a
  // real propagation path, so the direct bound may never exceed it. The
  // soundness induction in the header leans on exactly this property.
  for (std::size_t x = 0; x < k; ++x) {
    for (std::size_t a = 0; a < k; ++a) {
      for (std::size_t b = 0; b < k; ++b) {
        const Ps via = sat_add(lookahead_[a * k + x], lookahead_[x * k + b]);
        if (via < lookahead_[a * k + b]) lookahead_[a * k + b] = via;
      }
    }
  }
  min_lookahead_ = kNever;
  for (std::size_t a = 0; a < k; ++a) {
    for (std::size_t b = 0; b < k; ++b) {
      if (a != b && lookahead_[a * k + b] < min_lookahead_) {
        min_lookahead_ = lookahead_[a * k + b];
      }
    }
  }
  if (n_shards == 1) min_lookahead_ = 1;
  assert(min_lookahead_ >= 1 && "zero lookahead cannot make progress");

  shards_.reserve(k);
  for (int i = 0; i < n_shards; ++i) {
    shards_.push_back(std::make_unique<Engine>());
  }
  drains_.resize(k);
  emission_bounds_.resize(k);
  inbox_empty_.resize(k);

  // One cache line holds 8 Ps atomics; pad rows so each shard's row (its
  // only cross-thread write target) never shares a line with another's.
  pub_stride_ = (k + 7) & ~std::size_t{7};
  pub_ = std::make_unique<std::atomic<Ps>[]>(k * pub_stride_);
  covered_ = std::make_unique<std::atomic<std::uint64_t>[]>(k * pub_stride_);
  for (std::size_t i = 0; i < k * pub_stride_; ++i) {
    pub_[i].store(0, std::memory_order_relaxed);
    covered_[i].store(0, std::memory_order_relaxed);
  }
  scratch_.assign(k, std::vector<Ps>(k, 0));
  reaction_gap_.assign(k, 0);
  out_.assign(k * k, PairOut{});
  staged_.assign(k * k, 0);
  live_cap_.resize(k);
}

ParallelEngine::~ParallelEngine() { stop_pool(); }

void ParallelEngine::set_drain(int shard, std::function<void()> fn) {
  drains_[shard] = std::move(fn);
}

void ParallelEngine::set_emission_bound(int shard,
                                        std::function<void(Ps, Ps*)> fn) {
  emission_bounds_[shard] = std::move(fn);
}

void ParallelEngine::set_inbox_empty(int shard, std::function<bool()> fn) {
  inbox_empty_[shard] = std::move(fn);
}

void ParallelEngine::note_emission(int src, int dst, Ps head) {
  PairOut& o = out_[static_cast<std::size_t>(src) * n_shards() + dst];
  ++o.pushed;
  if (!o.open) {
    o.open = true;
    o.min_head = head;
  } else if (head < o.min_head) {
    o.min_head = head;
  }
  o.max_idx = o.pushed;
  // Shorten the quantum in progress: the destination may drain this
  // message and reply, and the reply must not land below our clock. The
  // reply is itself a reaction, so the destination's reaction gap applies.
  const Ps echo =
      sat_add(sat_add(head, reaction_gap_[dst]), lookahead(dst, src));
  if (echo < live_cap_[src].v) live_cap_[src].v = echo;
}

void ParallelEngine::note_drained(int dst, int src, std::uint64_t n) {
  staged_[static_cast<std::size_t>(dst) * n_shards() + src] += n;
}

// Recompute and publish shard s's horizon row from its post-quantum state.
// Stores are skipped when the value is unchanged (the common idle case);
// a *lower* value than before is stored too — a drain may have scheduled
// an arrival below the previous next-event time, and the promise must
// track it (the soundness induction covers readers holding the older,
// higher value through the emitting peer's own promise).
void ParallelEngine::publish(int s, int w, bool* changed) {
  const int k = n_shards();
  Ps* out = scratch_[w].data();
  const Ps e = shards_[s]->next_event_time();
  if (emission_bounds_[s]) {
    emission_bounds_[s](e, out);
  } else {
    const Ps* row = &lookahead_[static_cast<std::size_t>(s) * k];
    for (int d = 0; d < k; ++d) out[d] = sat_add(e, row[d]);
  }
  // Fold open in-flight buckets as relay terms: a message already emitted
  // to B can wake an otherwise-idle B into emitting toward d no earlier
  // than the message's head + B's reaction gap + L[B][d] (any causal chain
  // through further shards only adds more gap, and the closed L already
  // bounds the pure propagation). The direct destination B itself is
  // excluded — the drain-before-run / commit-before-republish protocol
  // already covers direct arrivals, and the zero diagonal term would pin
  // B's bound at its own arrival time and wedge it.
  const PairOut* buckets = &out_[static_cast<std::size_t>(s) * k];
  for (int b = 0; b < k; ++b) {
    if (b == s || !buckets[b].open) continue;
    const Ps* row_b = &lookahead_[static_cast<std::size_t>(b) * k];
    const Ps rh = sat_add(buckets[b].min_head, reaction_gap_[b]);
    for (int d = 0; d < k; ++d) {
      if (d == s || d == b) continue;
      const Ps v = sat_add(rh, row_b[d]);
      if (v < out[d]) out[d] = v;
    }
  }
  for (int d = 0; d < k; ++d) {
    if (d == s) continue;
    std::atomic<Ps>& cell = pub(s, d);
    if (cell.load(std::memory_order_relaxed) != out[d]) {
      cell.store(out[d], std::memory_order_release);
      *changed = true;
    }
  }
}

// One advance quantum for shard s. The order is load-bearing: peers'
// horizons are loaded (acquire) *before* the drain, and producers commit
// ring slots *before* republishing (release), so any message invisible to
// this drain was emitted by an event at or after the next-event time its
// producer's visible promise was derived from — i.e. its head is >= the
// bound we run to.
bool ParallelEngine::advance(int s, int w, std::uint64_t& events,
                             std::uint64_t& quanta) {
  const int k = n_shards();
  // (1) Retire in-flight buckets whose destination has published a
  // covering horizon since their newest message. The acquire pairs with
  // the destination's post-publish release store of the covered counter,
  // so the horizon rows read below reflect at least that covering publish.
  PairOut* buckets = &out_[static_cast<std::size_t>(s) * k];
  for (int b = 0; b < k; ++b) {
    if (b == s || !buckets[b].open) continue;
    if (covered(b, s).load(std::memory_order_acquire) >= buckets[b].max_idx) {
      buckets[b].open = false;
    }
  }
  // (2) Conservative bound: the min over every peer's promise, read
  // *twice*. Two passes close the retirement race: if peer X dropped the
  // relay term covering an in-flight message X -> Y before our first read
  // of X's row, then Y's covering row store happened-before X's republish
  // and hence before our first pass — so our second pass over Y's row
  // observes it. One of the two values read is always a cover. With one
  // worker there is no concurrent retirement to race with and a single
  // pass suffices.
  Ps bound = kNever;
  const int read_passes = run_threads_ == 1 ? 1 : 2;
  for (int pass = 0; pass < read_passes; ++pass) {
    for (int a = 0; a < k; ++a) {
      if (a == s) continue;
      const Ps p = pub(a, s).load(std::memory_order_acquire);
      if (p < bound) bound = p;
    }
  }
  // ...capped by our own self-echo terms: a peer we already messaged can
  // wake and reply, and no published row promises us anything about
  // ourselves.
  for (int b = 0; b < k; ++b) {
    if (b != s && buckets[b].open) {
      const Ps echo = sat_add(sat_add(buckets[b].min_head, reaction_gap_[b]),
                              lookahead(b, s));
      if (echo < bound) bound = echo;
    }
  }
  if (drains_[s]) drains_[s]();

  Engine& eng = *shards_[s];
  std::uint64_t n = 0;
  const Ps e = eng.next_event_time();
  if (e < bound) {
    Ps cap = bound;
    if (!batching_) {
      const Ps chop = sat_add(e, min_lookahead_);
      if (chop < cap) cap = chop;
    }
    // The live cap drops mid-quantum when this shard emits
    // (note_emission): events past an emission's echo bound must wait for
    // the next quantum, after the destination has had a chance to react.
    live_cap_[s].v = cap;
    n = eng.run_below(&live_cap_[s].v);
    events += n;
    if (n > 0) ++quanta;
  }

  bool changed = false;
  publish(s, w, &changed);
  // (3) Republish drained counts strictly after the covering row stores,
  // retiring the emitters' buckets. Counts as a change: a parked emitter
  // may be blocked on exactly this retirement.
  const std::uint64_t* st = &staged_[static_cast<std::size_t>(s) * k];
  for (int a = 0; a < k; ++a) {
    if (a == s) continue;
    std::atomic<std::uint64_t>& c = covered(s, a);
    if (c.load(std::memory_order_relaxed) != st[a]) {
      c.store(st[a], std::memory_order_release);
      changed = true;
    }
  }
  if (changed && idle_approx_.load(std::memory_order_relaxed) > 0) {
    idle_cv_.notify_all();
  }
  return n > 0;
}

// All-idle exclusive sweep: callable only with idle_count_ == run_threads_
// under idle_mu_ — every other worker has released the mutex inside
// wait_for and touches no engine until it reacquires it, so plain reads of
// foreign engine state are race-free (and TSan-visibly so, through the
// mutex).
bool ParallelEngine::quiescent() const {
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (!shards_[s]->idle()) return false;
    if (inbox_empty_[s] && !inbox_empty_[s]()) return false;
  }
  return true;
}

void ParallelEngine::worker_body(int w) {
  const int k = n_shards();
  const int n_threads = run_threads_;
  std::uint64_t events = 0;
  std::uint64_t quanta = 0;
  std::uint64_t parks = 0;
  int passes = 0;
  while (!done_flag_.load(std::memory_order_acquire)) {
    bool progress = false;
    for (int s = w; s < k; s += n_threads) {
      progress |= advance(s, w, events, quanta);
    }
    if (progress) {
      passes = 0;
      continue;
    }
    ++passes;
    if (passes <= kSpinPasses) continue;
    if (passes <= kYieldPasses) {
      std::this_thread::yield();
      continue;
    }
    passes = 0;
    ++parks;
    std::unique_lock<std::mutex> lk(idle_mu_);
    if (done_flag_.load(std::memory_order_acquire)) break;
    idle_approx_.fetch_add(1, std::memory_order_relaxed);
    ++idle_count_;
    if (idle_count_ == n_threads) {
      if (quiescent()) {
        done_flag_.store(true, std::memory_order_release);
      }
      // Either way wake everyone: on done to exit, otherwise to retry —
      // a failed sweep means some shard can progress (the global-minimum
      // event is always below its owner's bound) or a ring still holds
      // messages for someone's next drain.
      idle_cv_.notify_all();
    } else {
      idle_cv_.wait_for(lk, kParkTimeout);
    }
    --idle_count_;
    idle_approx_.fetch_sub(1, std::memory_order_relaxed);
  }
  tot_events_.fetch_add(events, std::memory_order_relaxed);
  tot_quanta_.fetch_add(quanta, std::memory_order_relaxed);
  tot_parks_.fetch_add(parks, std::memory_order_relaxed);
}

void ParallelEngine::ensure_pool(int n_extra) {
  if (static_cast<int>(pool_.size()) == n_extra) return;
  stop_pool();
  pool_stop_ = false;
  pool_.reserve(static_cast<std::size_t>(n_extra));
  const std::uint64_t seen0 = pool_gen_;
  for (int i = 0; i < n_extra; ++i) {
    pool_.emplace_back([this, w = i + 1, seen0] {
      std::uint64_t seen = seen0;
      for (;;) {
        {
          std::unique_lock<std::mutex> lk(pool_mu_);
          pool_cv_work_.wait(
              lk, [&] { return pool_stop_ || pool_gen_ != seen; });
          if (pool_stop_) return;
          seen = pool_gen_;
        }
        worker_body(w);
        {
          std::lock_guard<std::mutex> lk(pool_mu_);
          if (--pool_running_ == 0) pool_cv_done_.notify_all();
        }
      }
    });
  }
}

void ParallelEngine::stop_pool() {
  if (pool_.empty()) return;
  {
    std::lock_guard<std::mutex> lk(pool_mu_);
    pool_stop_ = true;
  }
  pool_cv_work_.notify_all();
  for (auto& t : pool_) t.join();
  pool_.clear();
}

ParallelEngine::RunResult ParallelEngine::run(int n_threads) {
  const int k = n_shards();
  if (n_threads < 1) n_threads = 1;
  if (n_threads > k) n_threads = k;
  run_threads_ = n_threads;
  tot_events_.store(0, std::memory_order_relaxed);
  tot_quanta_.store(0, std::memory_order_relaxed);
  tot_parks_.store(0, std::memory_order_relaxed);
  done_flag_.store(false, std::memory_order_relaxed);
  idle_approx_.store(0, std::memory_order_relaxed);
  idle_count_ = 0;

  // Serial prologue: fold anything already in the inbound rings into engine
  // events (rings are empty after a completed run, but callers may stage
  // work between runs), flush the drained counts and retire every coverable
  // in-flight bucket (safe before the publishes below: nothing runs an
  // event until the workers start, which orders the whole prologue), then
  // publish every shard's initial horizon so no worker ever reads the
  // zero-initialized matrix.
  for (int s = 0; s < k; ++s) {
    if (drains_[s]) drains_[s]();
  }
  for (int d = 0; d < k; ++d) {
    for (int a = 0; a < k; ++a) {
      if (a == d) continue;
      const std::uint64_t st = staged_[static_cast<std::size_t>(d) * k + a];
      covered(d, a).store(st, std::memory_order_relaxed);
      PairOut& o = out_[static_cast<std::size_t>(a) * k + d];
      if (o.open && st >= o.max_idx) o.open = false;
    }
  }
  bool changed = false;
  for (int s = 0; s < k; ++s) publish(s, 0, &changed);

  if (!quiescent()) {
    if (n_threads == 1) {
      worker_body(0);
    } else {
      ensure_pool(n_threads - 1);
      {
        std::lock_guard<std::mutex> lk(pool_mu_);
        pool_running_ = n_threads - 1;
        ++pool_gen_;
      }
      pool_cv_work_.notify_all();
      worker_body(0);
      std::unique_lock<std::mutex> lk(pool_mu_);
      pool_cv_done_.wait(lk, [&] { return pool_running_ == 0; });
    }
  }

  RunResult r;
  r.events = tot_events_.load(std::memory_order_relaxed);
  r.windows = tot_quanta_.load(std::memory_order_relaxed);
  r.barrier_crossings = tot_parks_.load(std::memory_order_relaxed);
  for (const auto& e : shards_) r.pending_roots += e->pending_roots();
  return r;
}

}  // namespace fmx::sim
