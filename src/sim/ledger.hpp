// Cost accounting. Every software layer charges its work to a category so
// benchmarks can print breakdowns (Figure 2, Figure 3a) and tests can assert
// structural properties like "this path performed zero payload copies".
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "sim/time.hpp"
#include "trace/metrics.hpp"

namespace fmx::sim {

enum class Cost : std::uint8_t {
  kCall,       // fixed API call overhead
  kCopy,       // memory-to-memory payload copies
  kHeader,     // header build/parse
  kPio,        // programmed I/O across the I/O bus
  kDma,        // DMA engine setup / completion handling
  kDispatch,   // handler lookup + invocation
  kMatch,      // receive matching (MPI tag/src)
  kBufferMgmt, // buffer pool alloc/free/track
  kOrder,      // sequence numbers / reordering
  kFlowCtl,    // credit accounting
  kFaultTol,   // acks, timers, retransmission state
  kWire,       // link serialization
  kOther,
  kCount,
};

constexpr std::string_view cost_name(Cost c) noexcept {
  switch (c) {
    case Cost::kCall: return "call";
    case Cost::kCopy: return "copy";
    case Cost::kHeader: return "header";
    case Cost::kPio: return "pio";
    case Cost::kDma: return "dma";
    case Cost::kDispatch: return "dispatch";
    case Cost::kMatch: return "match";
    case Cost::kBufferMgmt: return "buffer_mgmt";
    case Cost::kOrder: return "in_order";
    case Cost::kFlowCtl: return "flow_ctl";
    case Cost::kFaultTol: return "fault_tol";
    case Cost::kWire: return "wire";
    case Cost::kOther: return "other";
    case Cost::kCount: break;
  }
  return "?";
}

/// Accumulates simulated time per category plus copy statistics.
class CostLedger {
 public:
  void add(Cost c, Ps t) noexcept {
    per_cat_[static_cast<std::size_t>(c)] += t;
    total_ += t;
  }

  void note_copy(std::uint64_t bytes) noexcept {
    copies_.add();
    copied_bytes_.add(bytes);
  }

  /// A fresh heap buffer had to be allocated on the data path (buffer-pool
  /// miss). Steady-state streaming should record zero of these.
  void note_alloc(std::uint64_t bytes) noexcept {
    allocs_.add();
    alloc_bytes_.add(bytes);
  }

  Ps total() const noexcept { return total_; }
  Ps of(Cost c) const noexcept {
    return per_cat_[static_cast<std::size_t>(c)];
  }
  std::uint64_t copies() const noexcept { return copies_.value; }
  std::uint64_t copied_bytes() const noexcept { return copied_bytes_.value; }
  std::uint64_t allocs() const noexcept { return allocs_.value; }
  std::uint64_t alloc_bytes() const noexcept { return alloc_bytes_.value; }

  /// Live cells for trace::MetricsRegistry::expose() — lets the registry
  /// read this ledger's counters by name without copying them.
  const std::uint64_t* copies_cell() const noexcept { return copies_.cell(); }
  const std::uint64_t* copied_bytes_cell() const noexcept {
    return copied_bytes_.cell();
  }
  const std::uint64_t* allocs_cell() const noexcept { return allocs_.cell(); }
  const std::uint64_t* alloc_bytes_cell() const noexcept {
    return alloc_bytes_.cell();
  }

  void reset() noexcept { *this = CostLedger{}; }

  /// Delta helper for bracketing a measurement region.
  CostLedger diff(const CostLedger& earlier) const noexcept {
    CostLedger d;
    for (std::size_t i = 0; i < per_cat_.size(); ++i) {
      d.per_cat_[i] = per_cat_[i] - earlier.per_cat_[i];
    }
    d.total_ = total_ - earlier.total_;
    d.copies_.value = copies_.value - earlier.copies_.value;
    d.copied_bytes_.value = copied_bytes_.value - earlier.copied_bytes_.value;
    d.allocs_.value = allocs_.value - earlier.allocs_.value;
    d.alloc_bytes_.value = alloc_bytes_.value - earlier.alloc_bytes_.value;
    return d;
  }

 private:
  std::array<Ps, static_cast<std::size_t>(Cost::kCount)> per_cat_{};
  Ps total_ = 0;
  trace::Counter copies_;
  trace::Counter copied_bytes_;
  trace::Counter allocs_;
  trace::Counter alloc_bytes_;
};

}  // namespace fmx::sim
