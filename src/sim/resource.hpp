// Serially-reusable resource with FIFO service order — models shared buses
// (SBus/PCI), link transmitters, and DMA engines. O(1) per occupancy via a
// virtual "next free time" rather than an explicit waiter queue.
#pragma once

#include <algorithm>

#include "sim/engine.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace fmx::sim {

class SerialResource {
 public:
  explicit SerialResource(Engine& eng) : eng_(eng) {}
  SerialResource(const SerialResource&) = delete;
  SerialResource& operator=(const SerialResource&) = delete;

  /// Wait for our FIFO turn, hold the resource for `service`, resume when
  /// done. Requests are ordered by the simulated time of the call.
  Task<void> occupy(Ps service) {
    Ps start = std::max(eng_.now(), next_free_);
    next_free_ = start + service;
    busy_ += service;
    co_await eng_.sleep_until(next_free_);
  }

  /// Reserve without waiting: returns the completion time. Useful when the
  /// caller wants to pipeline (start the next request before this finishes).
  Ps reserve(Ps service) { return reserve_from(eng_.now(), service); }

  /// Reserve with an earliest-start constraint (e.g. "the packet head only
  /// reaches this link at time t"). Returns the completion time.
  Ps reserve_from(Ps earliest, Ps service) {
    Ps start = std::max({eng_.now(), earliest, next_free_});
    next_free_ = start + service;
    busy_ += service;
    return next_free_;
  }

  Ps next_free() const noexcept { return next_free_; }
  Ps busy_time() const noexcept { return busy_; }
  /// Queueing delay a request issued now would experience before service.
  Ps backlog() const noexcept {
    return next_free_ > eng_.now() ? next_free_ - eng_.now() : 0;
  }

 private:
  Engine& eng_;
  Ps next_free_ = 0;
  Ps busy_ = 0;
};

}  // namespace fmx::sim
