// Simulated time. The engine runs in integer picoseconds so per-byte costs
// like "12.99 ns/B" (77 MB/s) are representable without rounding drift.
#pragma once

#include <cstdint>

namespace fmx::sim {

/// Picoseconds of simulated time.
using Ps = std::uint64_t;

constexpr Ps kPsPerNs = 1'000;
constexpr Ps kPsPerUs = 1'000'000;
constexpr Ps kPsPerMs = 1'000'000'000;
constexpr Ps kPsPerSec = 1'000'000'000'000ull;

constexpr Ps ns(double v) noexcept {
  return static_cast<Ps>(v * static_cast<double>(kPsPerNs));
}
constexpr Ps us(double v) noexcept {
  return static_cast<Ps>(v * static_cast<double>(kPsPerUs));
}
constexpr Ps ms(double v) noexcept {
  return static_cast<Ps>(v * static_cast<double>(kPsPerMs));
}
constexpr Ps seconds(double v) noexcept {
  return static_cast<Ps>(v * static_cast<double>(kPsPerSec));
}

constexpr double to_ns(Ps t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kPsPerNs);
}
constexpr double to_us(Ps t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kPsPerUs);
}
constexpr double to_seconds(Ps t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kPsPerSec);
}

/// Bandwidth helper: picoseconds to move `bytes` at `bytes_per_second`.
constexpr Ps transfer_time(std::uint64_t bytes, double bytes_per_second) {
  return static_cast<Ps>(static_cast<double>(bytes) *
                         (static_cast<double>(kPsPerSec) / bytes_per_second));
}

}  // namespace fmx::sim
