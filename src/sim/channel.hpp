// Bounded awaitable FIFO. A full channel blocks pushers — this is how
// back-pressure propagates through the simulated network (link slack
// buffers, NIC inbound queues, switch ports).
//
// Two classes of consumers wait on a channel and each has its own wake
// queue, so wakeups are selective: pop() waiters (pipeline stages that will
// definitely extract an element) sleep on `not_empty_`, while wait_nonempty
// pollers (libraries that re-check an external predicate, FM's FM_extract
// loops) sleep on `poll_cv_`. An arriving element wakes one popper if any
// exists, else one poller; poke() broadcasts only to pollers. Under the old
// single-CondVar scheme every push and every poke woke pollers and poppers
// alike, and each had to resume just to discover the wake wasn't for it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <utility>

#include "sim/ring.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace fmx::sim {

template <typename T>
class Channel {
 public:
  static constexpr std::size_t kUnbounded =
      std::numeric_limits<std::size_t>::max();

  Channel(Engine& eng, std::size_t capacity)
      : capacity_(capacity), not_full_(eng), not_empty_(eng), poll_cv_(eng) {}

  /// Blocks (suspends) while the channel is full.
  Task<void> push(T v) {
    while (buf_.size() >= capacity_) co_await not_full_.wait();
    buf_.push_back(std::move(v));
    notify_arrival();
  }

  /// Blocks (suspends) while the channel is empty.
  Task<T> pop() {
    while (buf_.empty()) co_await not_empty_.wait();
    T v = buf_.take_front();
    not_full_.notify_one();
    co_return v;
  }

  /// Suspend until the channel has at least one element (without popping),
  /// or until the next poke(). Lets pollers sleep instead of busy-spinning
  /// the event queue. May wake spuriously; callers' conditions must be
  /// re-checked (all in-tree callers are Mesa-style loops).
  sim::Task<void> wait_nonempty() {
    std::uint64_t gen = poke_gen_;
    while (buf_.empty() && poke_gen_ == gen) co_await poll_cv_.wait();
  }

  /// Wake ALL sleeping pollers once so they re-evaluate external conditions
  /// — needed when one poller's extraction can satisfy another poller's
  /// predicate without any new channel traffic. Poppers are not woken: an
  /// element they could pop cannot have appeared without notify_arrival().
  void poke() {
    ++poke_gen_;
    poll_cv_.notify_all();
  }

  bool try_push(T v) {
    if (buf_.size() >= capacity_) return false;
    buf_.push_back(std::move(v));
    notify_arrival();
    return true;
  }

  std::optional<T> try_pop() {
    if (buf_.empty()) return std::nullopt;
    std::optional<T> v(buf_.take_front());
    not_full_.notify_one();
    return v;
  }

  /// Pre-size the backing ring (see RingQueue::reserve). For a bounded
  /// channel, reserve(capacity()) makes push allocation-free forever.
  void reserve(std::size_t n) { buf_.reserve(n); }

  const T& front() const { return buf_.front(); }
  std::size_t size() const noexcept { return buf_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  bool empty() const noexcept { return buf_.empty(); }
  bool full() const noexcept { return buf_.size() >= capacity_; }

 private:
  /// An element arrived: wake one popper if any is asleep (it will consume
  /// it), otherwise one poller (its extract loop drains the channel and
  /// pokes the rest if anything material happened).
  void notify_arrival() {
    if (not_empty_.waiting() > 0) {
      not_empty_.notify_one();
    } else {
      poll_cv_.notify_one();
    }
  }

  std::size_t capacity_;
  std::uint64_t poke_gen_ = 0;
  RingQueue<T> buf_;
  CondVar not_full_;
  CondVar not_empty_;
  CondVar poll_cv_;
};

}  // namespace fmx::sim
