// Bounded awaitable FIFO. A full channel blocks pushers — this is how
// back-pressure propagates through the simulated network (link slack
// buffers, NIC inbound queues, switch ports).
#pragma once

#include <cstddef>
#include <deque>
#include <limits>
#include <optional>
#include <utility>

#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace fmx::sim {

template <typename T>
class Channel {
 public:
  static constexpr std::size_t kUnbounded =
      std::numeric_limits<std::size_t>::max();

  Channel(Engine& eng, std::size_t capacity)
      : capacity_(capacity), not_full_(eng), not_empty_(eng) {}

  /// Blocks (suspends) while the channel is full.
  Task<void> push(T v) {
    while (buf_.size() >= capacity_) co_await not_full_.wait();
    buf_.push_back(std::move(v));
    not_empty_.notify_one();
  }

  /// Blocks (suspends) while the channel is empty.
  Task<T> pop() {
    while (buf_.empty()) co_await not_empty_.wait();
    T v = std::move(buf_.front());
    buf_.pop_front();
    not_full_.notify_one();
    co_return v;
  }

  /// Suspend until the channel has at least one element (without popping),
  /// or until the next poke(). Lets pollers sleep instead of busy-spinning
  /// the event queue. May wake spuriously; callers' conditions must be
  /// re-checked (all in-tree callers are Mesa-style loops).
  sim::Task<void> wait_nonempty() {
    std::uint64_t gen = poke_gen_;
    while (buf_.empty() && poke_gen_ == gen) co_await not_empty_.wait();
  }

  /// Wake ALL sleepers once so they re-evaluate external conditions —
  /// needed when one poller's extraction can satisfy another poller's
  /// predicate without any new channel traffic.
  void poke() {
    ++poke_gen_;
    not_empty_.notify_all();
  }

  bool try_push(T v) {
    if (buf_.size() >= capacity_) return false;
    buf_.push_back(std::move(v));
    not_empty_.notify_one();
    return true;
  }

  std::optional<T> try_pop() {
    if (buf_.empty()) return std::nullopt;
    T v = std::move(buf_.front());
    buf_.pop_front();
    not_full_.notify_one();
    return v;
  }

  const T& front() const { return buf_.front(); }
  std::size_t size() const noexcept { return buf_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  bool empty() const noexcept { return buf_.empty(); }
  bool full() const noexcept { return buf_.size() >= capacity_; }

 private:
  std::size_t capacity_;
  std::uint64_t poke_gen_ = 0;
  std::deque<T> buf_;
  CondVar not_full_;
  CondVar not_empty_;
};

}  // namespace fmx::sim
