// Conservative parallel discrete-event execution (Chandy–Misra-style
// lookahead windows, PAPERS.md parallel-simulation entries).
//
// The cluster is partitioned into shards, each owning a private Engine; a
// worker-thread pool advances all shards through a sequence of windows
// [W, W + lookahead). `lookahead` is the minimum simulated time any
// cross-shard interaction needs to propagate (for the Myrinet fabric: link
// propagation + the first switch hop, see net::Fabric::cross_lookahead), so
// within a window shards cannot affect each other and run lock-free.
//
// Each window is two barrier phases:
//   drain:  every shard converts the cross-shard messages its peers
//           published last window into engine events (at their future
//           arrival times — guaranteed >= the window end by lookahead).
//   run:    every shard executes its events in [W, W + lookahead).
// The last thread to arrive at the post-drain barrier picks the next
// window start = the global minimum pending-event time (idle periods are
// skipped entirely) and detects termination (all shards idle; rings are
// always empty here because drains consumed everything published before
// the preceding barrier).
//
// Determinism: the window sequence is a pure function of engine state at
// barriers, and cross-shard events order by explicit keys in a sequence
// band above all local events (Engine::kCrossSeqBand) — so event pop order
// per shard, and hence every simulated result, is bit-identical at any
// thread count, including 1.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace fmx::sim {

class ParallelEngine {
 public:
  /// `lookahead` must be >= 1 ps (windows would otherwise be empty).
  ParallelEngine(int n_shards, Ps lookahead);
  ParallelEngine(const ParallelEngine&) = delete;
  ParallelEngine& operator=(const ParallelEngine&) = delete;
  ~ParallelEngine();

  int n_shards() const noexcept { return static_cast<int>(shards_.size()); }
  Ps lookahead() const noexcept { return lookahead_; }
  Engine& shard(int i) { return *shards_[i]; }
  const Engine& shard(int i) const { return *shards_[i]; }

  /// Install the per-shard drain hook, invoked on the shard's owning worker
  /// at the start of every window (before any shard runs). It must convert
  /// every message published to this shard into engine events via
  /// Engine::schedule_cross.
  void set_drain(int shard, std::function<void()> fn);

  struct RunResult {
    std::uint64_t events = 0;   ///< events processed across all shards
    std::uint64_t windows = 0;  ///< lookahead windows executed
    int pending_roots = 0;      ///< unfinished roots (deadlock if nonzero)
  };

  /// Run all shards to global quiescence on `n_threads` workers (clamped to
  /// [1, n_shards]). Shard s is owned by worker s % n_threads for the whole
  /// run. May be called again after it returns (e.g. a second traffic wave
  /// spawned on the shard engines).
  RunResult run(int n_threads);

 private:
  struct Shared;  // per-run barrier + window state
  void worker(int w, int n_threads, Shared& sh);

  Ps lookahead_;
  std::vector<std::unique_ptr<Engine>> shards_;
  std::vector<std::function<void()>> drains_;
};

}  // namespace fmx::sim
