// Conservative parallel discrete-event execution (Chandy–Misra-style
// lookahead, PAPERS.md parallel-simulation entries).
//
// The cluster is partitioned into shards, each owning a private Engine.
// Earlier revisions advanced all shards in lockstep windows of one global
// lookahead (two sense-reversing barriers per 850 ns window — ~10 events of
// useful work per crossing). This revision replaces the barriers with a
// *published-horizon* scheme:
//
//   - A per-pair lookahead matrix L[src][dst] (metric-closed at
//     construction) bounds how fast anything can propagate between each
//     pair of shards; shards that are topologically far apart synchronize
//     loosely even when busy.
//   - Each shard continuously publishes, per destination, a conservative
//     lower bound on the head-arrival time of any cross-shard message it
//     may still emit. The default bound is next_event_time() + L[s][d]; an
//     emission-bound hook lets the transport sharpen it with dynamic state
//     (for the Myrinet fabric: the source uplink's next-free time, which
//     during streaming sits many microseconds ahead — see
//     myrinet/parallel_cluster.cpp).
//   - A worker advances a shard by (1) reading every peer's published
//     bound for it (padded atomics, acquire) and taking the min, (2)
//     draining its inbound rings, (3) running events strictly below the
//     bound in one batched quantum, (4) republishing its own row
//     (release). No barrier on the hot path; idle gaps are crossed in the
//     same step because bounds are absolute times, not widths.
//
// Soundness (why no in-flight message can be missed): three mechanisms
// cover the three ways a message can be in flight. (a) Direct: a worker
// loads pub[A][s] *before* draining, and a producer commits a ring slot
// *before* republishing, so any message invisible to the drain was
// emitted by an event A executed after its publish; engines execute
// events in nondecreasing time order, so its head is >= the published
// bound. (b) Relays: a message X -> Y sitting undrained in Y's ring can
// wake an idle Y into emitting toward s below Y's (stale) promise. The
// emitter therefore tracks an *in-flight bucket* per destination
// (note_emission) and folds `bucket min head + L[Y][d]` into every entry
// of its own published row until Y's covering publish retires the bucket
// (per-pair covered counters, note_drained); L is metric-closed, so the
// relay term through Y is never below the true relayed arrival. (c)
// Self-echo: nothing publishes a promise *to s about s*, so s caps its
// own bound by its open buckets' echo terms (head + L[dst][s]) and
// lowers a live cap mid-quantum when it emits — a message s sends can
// wake a peer whose reply must not land inside s's already-running
// quantum. The full induction is written out in EXPERIMENTS.md
// ("Parallel simulation").
//
// Progress: the shard owning the globally minimal event m always has
// bound >= m + min L > m, so a full pass over all shards either executes
// at least one event or proves global quiescence. Stalled workers spin,
// then yield, then park on a condvar; the last parker performs an
// exclusive termination sweep (all engines idle, all inboxes empty).
//
// Determinism: cross-shard events order by explicit keys in a sequence
// band above all local events (Engine::kCrossSeqBand), so per-shard pop
// order is a pure function of simulated state — never of quantum
// boundaries or drain timing — and every simulated result is bit-identical
// at any thread count, including 1. Only the *meters* (windows,
// barrier_crossings) depend on scheduling.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace fmx::sim {

class ParallelEngine {
 public:
  /// Uniform lookahead: every shard pair is `lookahead` (>= 1 ps) apart.
  ParallelEngine(int n_shards, Ps lookahead);
  /// Per-pair lookahead matrix, row-major `n_shards * n_shards`;
  /// entry [src * n_shards + dst] bounds the propagation src -> dst
  /// (diagonal ignored). The matrix is metric-closed internally
  /// (L[a][c] <= L[a][b] + L[b][c] afterwards) — a requirement of the
  /// soundness argument above, and never a loosening: a relay chain is a
  /// real propagation path, so the direct bound may not exceed it.
  ParallelEngine(int n_shards, std::vector<Ps> lookahead);
  ParallelEngine(const ParallelEngine&) = delete;
  ParallelEngine& operator=(const ParallelEngine&) = delete;
  ~ParallelEngine();

  int n_shards() const noexcept { return static_cast<int>(shards_.size()); }
  /// Post-closure pairwise lookahead (src != dst).
  Ps lookahead(int src, int dst) const {
    return lookahead_[static_cast<std::size_t>(src) * shards_.size() + dst];
  }
  /// Minimum off-diagonal lookahead (the unbatched quantum width).
  Ps min_lookahead() const noexcept { return min_lookahead_; }
  Engine& shard(int i) { return *shards_[i]; }
  const Engine& shard(int i) const { return *shards_[i]; }

  /// Install the per-shard drain hook, invoked on the shard's owning worker
  /// before every quantum. It must convert every message published to this
  /// shard into engine events via Engine::schedule_cross.
  void set_drain(int shard, std::function<void()> fn);

  /// Install a sharpened emission bound for `shard`: called with the
  /// shard's next-event time e, it must fill out[d] (d in [0, n_shards))
  /// with an absolute lower bound on the head-arrival time of any
  /// cross-shard message the shard can still emit toward d, assuming no
  /// local event runs before e. The hook must be monotone in e, must not
  /// return less than e + lookahead(shard, d), and must satisfy the
  /// triangle property out[d] <= out[x] + lookahead(x, d) (automatic when
  /// it is `min over sources of (per-source base + closed per-pair
  /// latency)`). Runs on the shard's owning worker only.
  void set_emission_bound(int shard, std::function<void(Ps, Ps*)> fn);

  /// Install the inbox-emptiness predicate used by the termination sweep
  /// (may be called from any worker while all others are parked). Default:
  /// always empty.
  void set_inbox_empty(int shard, std::function<bool()> fn);

  /// Declare a lower bound on how long `shard` takes to *react* to an
  /// inbound cross-shard message with a cross-shard emission of its own
  /// (for the Myrinet cluster: receive-side per-packet processing, plus a
  /// fresh injection's per-packet tx time when the link needs no
  /// same-timestamp ack release). Folded into relay and self-echo terms: a
  /// message in flight toward B caps horizons at head + gap(B) + L[B][d]
  /// instead of head + L[B][d]. Default 0 (a relay may react instantly).
  /// Must be called before run(); a gap that overstates the true minimum
  /// reaction time breaks the soundness induction exactly like an inflated
  /// lookahead would.
  void set_reaction_gap(int shard, Ps gap) { reaction_gap_[shard] = gap; }
  Ps reaction_gap(int shard) const { return reaction_gap_[shard]; }

  /// Record a cross-shard emission src -> dst whose head-arrival time is
  /// `head`. Must be called on src's owning worker, inside the event that
  /// pushes the message (after the ring commit). Required for soundness
  /// whenever a peer can react to this shard's traffic within the same
  /// run: the emission opens an in-flight bucket that caps the emitter's
  /// own horizon (self-echo, including the quantum in progress) and is
  /// folded into its published row (relay coverage) until the
  /// destination's covering publish retires it — see note_drained.
  void note_emission(int src, int dst, Ps head);

  /// Record, from inside dst's drain hook, that `n` more messages from
  /// `src` were converted into engine events. The cumulative count is
  /// republished to the emitter — retiring its in-flight bucket — only
  /// after dst's next horizon publish, which by then covers everything
  /// those messages can trigger.
  void note_drained(int dst, int src, std::uint64_t n);

  /// Window batching (default on) runs each quantum all the way to the
  /// conservative bound. Off chops quanta to min_lookahead() widths like
  /// the historical barrier scheme — same simulated results by the
  /// determinism invariant, just more synchronization; kept as a
  /// cross-check knob for tests.
  void set_window_batching(bool on) noexcept { batching_ = on; }
  bool window_batching() const noexcept { return batching_; }

  struct RunResult {
    std::uint64_t events = 0;  ///< events processed across all shards
    /// Advance quanta that executed at least one event, summed over
    /// shards. Divide by n_shards for a figure comparable to the old
    /// global window count ("every shard stepped once"). Depends on
    /// thread scheduling — a meter, never part of a determinism digest.
    std::uint64_t windows = 0;
    /// Slow-path entries: times a worker exhausted its spin/yield budget
    /// and parked on the condvar (the only remaining mutex crossings).
    std::uint64_t barrier_crossings = 0;
    int pending_roots = 0;  ///< unfinished roots (deadlock if nonzero)
  };

  /// Run all shards to global quiescence on `n_threads` workers (clamped to
  /// [1, n_shards]). Shard s is owned by worker s % n_threads for the whole
  /// run. May be called again after it returns (e.g. a second traffic wave
  /// spawned on the shard engines). Worker threads persist across calls —
  /// respawned only when the thread count changes — so repeated runs do
  /// not touch the allocator.
  RunResult run(int n_threads);

 private:
  void worker_body(int w);
  bool advance(int s, int w, std::uint64_t& events, std::uint64_t& quanta);
  void publish(int s, int w, bool* changed);
  bool quiescent() const;
  void ensure_pool(int n_extra);
  void stop_pool();

  std::vector<Ps> lookahead_;  // metric-closed, row-major k*k
  std::vector<Ps> reaction_gap_;  // per-shard, see set_reaction_gap
  Ps min_lookahead_ = 0;
  std::vector<std::unique_ptr<Engine>> shards_;
  std::vector<std::function<void()>> drains_;
  std::vector<std::function<void(Ps, Ps*)>> emission_bounds_;
  std::vector<std::function<bool()>> inbox_empty_;
  bool batching_ = true;

  // Published horizons: row s (written only by s's owner) holds pub[s][d]
  // for every destination d. Rows are padded to cache-line multiples so
  // owners never false-share.
  std::size_t pub_stride_ = 0;
  std::unique_ptr<std::atomic<Ps>[]> pub_;
  std::atomic<Ps>& pub(int src, int dst) noexcept {
    return pub_[static_cast<std::size_t>(src) * pub_stride_ + dst];
  }
  std::vector<std::vector<Ps>> scratch_;  // per-worker bound buffers

  // In-flight emission buckets, one per directed pair, written only by the
  // source shard's owner: messages pushed src -> dst that dst has not yet
  // covered with a post-drain publish. min_head caps the emitter's own
  // bound (self-echo) and feeds relay terms into its published row.
  struct PairOut {
    std::uint64_t pushed = 0;   // emissions ever, src -> dst
    std::uint64_t max_idx = 0;  // newest emission in the open bucket
    Ps min_head = 0;            // min head in the open bucket (when open)
    bool open = false;
  };
  std::vector<PairOut> out_;           // [src * k + dst]
  std::vector<std::uint64_t> staged_;  // [dst * k + src], dst-owned counts
  // covered_[dst * pub_stride_ + src]: total messages src -> dst whose
  // effects dst's published horizon accounts for. Stored by dst's owner
  // (release) strictly after its row stores; srcs acquire it to retire
  // buckets, so a retired bucket implies the covering row is visible.
  std::unique_ptr<std::atomic<std::uint64_t>[]> covered_;
  std::atomic<std::uint64_t>& covered(int dst, int src) noexcept {
    return covered_[static_cast<std::size_t>(dst) * pub_stride_ + src];
  }
  // Per-shard live quantum cap, written only by the owning worker;
  // Engine::run_below rereads it every event so note_emission can shorten
  // the quantum in progress.
  struct alignas(64) LiveCap {
    Ps v = 0;
  };
  std::vector<LiveCap> live_cap_;

  // Per-run shared state (reset by run(), used by worker_body).
  std::atomic<std::uint64_t> tot_events_{0};
  std::atomic<std::uint64_t> tot_quanta_{0};
  std::atomic<std::uint64_t> tot_parks_{0};
  std::atomic<bool> done_flag_{false};
  std::atomic<int> idle_approx_{0};
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  int idle_count_ = 0;  // guarded by idle_mu_
  int run_threads_ = 1;

  // Persistent worker pool: threads park between run() calls.
  std::mutex pool_mu_;
  std::condition_variable pool_cv_work_;
  std::condition_variable pool_cv_done_;
  std::vector<std::thread> pool_;
  std::uint64_t pool_gen_ = 0;  // guarded by pool_mu_
  int pool_running_ = 0;        // guarded by pool_mu_
  bool pool_stop_ = false;      // guarded by pool_mu_
};

}  // namespace fmx::sim
