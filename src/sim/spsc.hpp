// Bounded single-producer/single-consumer ring of fixed-size slots, used to
// move cross-shard messages between worker threads in parallel runs
// (sim/parallel.hpp, myrinet/parallel_cluster.hpp).
//
// The design deliberately avoids any ordering burden: cross-shard events
// carry explicit tie-break keys (Engine::schedule_cross), so the consumer
// only needs "everything the producer published before its last horizon
// publish is visible to the next drain" — plain acquire/release on two
// cache-line-separated indices. Slots are preallocated at construction;
// push/pop never allocate.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>

namespace fmx::sim {

class SpscSlotRing {
 public:
  /// `slots` is rounded up to a power of two; each slot holds `slot_bytes`.
  SpscSlotRing(std::size_t slots, std::size_t slot_bytes)
      : slot_bytes_(slot_bytes) {
    std::size_t cap = 1;
    while (cap < slots) cap <<= 1;
    mask_ = cap - 1;
    buf_ = std::make_unique<std::byte[]>(cap * slot_bytes_);
  }
  SpscSlotRing(const SpscSlotRing&) = delete;
  SpscSlotRing& operator=(const SpscSlotRing&) = delete;

  std::size_t slot_bytes() const noexcept { return slot_bytes_; }
  std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Producer: slot to fill, or nullptr when the ring is full. The write is
  /// published by commit_push(); at most one slot may be open at a time.
  std::byte* try_push_slot() noexcept {
    const std::size_t t = tail_.load(std::memory_order_relaxed);
    const std::size_t h = head_.load(std::memory_order_acquire);
    if (t - h > mask_) return nullptr;
    return buf_.get() + (t & mask_) * slot_bytes_;
  }
  void commit_push() noexcept {
    tail_.store(tail_.load(std::memory_order_relaxed) + 1,
                std::memory_order_release);
  }

  /// Consumer: oldest published slot, or nullptr when empty.
  const std::byte* front() const noexcept {
    const std::size_t h = head_.load(std::memory_order_relaxed);
    const std::size_t t = tail_.load(std::memory_order_acquire);
    if (h == t) return nullptr;
    return buf_.get() + (h & mask_) * slot_bytes_;
  }
  void pop() noexcept {
    head_.store(head_.load(std::memory_order_relaxed) + 1,
                std::memory_order_release);
  }

  /// Emptiness probe. Exact when both endpoints are quiescent (the
  /// termination sweep runs it from a foreign thread, but only while every
  /// worker is parked under the idle mutex, which orders their last
  /// push/pop before the probe); conservative — may report non-empty for
  /// an instant after a pop — anywhere else.
  bool empty() const noexcept { return front() == nullptr; }

 private:
  std::size_t mask_;
  std::size_t slot_bytes_;
  std::unique_ptr<std::byte[]> buf_;
  alignas(64) std::atomic<std::size_t> head_{0};  // consumer index
  alignas(64) std::atomic<std::size_t> tail_{0};  // producer index
};

}  // namespace fmx::sim
