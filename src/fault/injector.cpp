#include "fault/injector.hpp"

namespace fmx::fault {

const WireRates& PlanInjector::rates_for(int src, int dst) const {
  for (const LinkOverride& o : plan_.links) {
    if ((o.src == -1 || o.src == src) && (o.dst == -1 || o.dst == dst)) {
      return o.rates;
    }
  }
  return plan_.wire;
}

net::WireFault PlanInjector::on_deliver(const net::WirePacket& pkt) {
  ++stats_.packets_seen;
  const WireRates& r = rates_for(pkt.src, pkt.dst);
  net::WireFault f;
  if (!r.any()) return f;
  if (r.reorder > 0 && rng_.bernoulli(r.reorder)) {
    ++stats_.reorders;
    f.extra_delay = r.reorder_delay;
  }
  if (r.corrupt > 0 && !pkt.payload.empty() && rng_.bernoulli(r.corrupt)) {
    ++stats_.corruptions;
    f.corrupt = true;
    f.corrupt_pos = static_cast<std::uint32_t>(
        rng_.uniform(0, pkt.payload.size() - 1));
    f.corrupt_bit = static_cast<std::uint8_t>(rng_.uniform(0, 7));
  }
  if (r.drop > 0 && rng_.bernoulli(r.drop)) {
    ++stats_.drops;
    f.drop = true;
    return f;  // a dropped packet cannot also be duplicated
  }
  if (r.duplicate > 0 && rng_.bernoulli(r.duplicate)) {
    ++stats_.duplicates;
    f.duplicate = true;
  }
  return f;
}

sim::Ps PlanInjector::bus_stall(std::size_t /*bytes*/) {
  const BusStallPlan& b = plan_.bus;
  if (!b.any()) return 0;
  if (eng_.now() % b.period >= b.window) return 0;
  ++stats_.bus_stalls;
  return b.extra;
}

sim::Ps PlanInjector::jittered(sim::Ps fixed, sim::Ps jitter) {
  if (jitter == 0) return fixed;
  return fixed + rng_.uniform(0, jitter);
}

sim::Ps PlanInjector::tx_pacing(int /*nic_id*/) {
  const PacingPlan& p = plan_.pacing;
  if (p.tx == 0 && p.tx_jitter == 0) return 0;
  return jittered(p.tx, p.tx_jitter);
}

sim::Ps PlanInjector::rx_pacing(int /*nic_id*/) {
  const PacingPlan& p = plan_.pacing;
  if (p.rx == 0 && p.rx_jitter == 0) return 0;
  return jittered(p.rx, p.rx_jitter);
}

void arm(net::Cluster& cluster, PlanInjector& injector) {
  cluster.fabric().set_fault(&injector);
  for (int i = 0; i < cluster.size(); ++i) {
    cluster.node(i).nic().set_fault(&injector);
    cluster.node(i).bus().set_fault(&injector);
  }
}

void disarm(net::Cluster& cluster) {
  cluster.fabric().set_fault(nullptr);
  for (int i = 0; i < cluster.size(); ++i) {
    cluster.node(i).nic().set_fault(nullptr);
    cluster.node(i).bus().set_fault(nullptr);
  }
}

std::vector<std::unique_ptr<PlanInjector>> arm(net::ParallelCluster& cluster,
                                               const FaultPlan& plan) {
  std::vector<std::unique_ptr<PlanInjector>> out;
  out.reserve(cluster.n_shards());
  for (int s = 0; s < cluster.n_shards(); ++s) {
    FaultPlan shard_plan = plan;
    // Golden-ratio mix keeps per-shard streams decorrelated while staying a
    // pure function of (plan seed, shard index).
    shard_plan.seed =
        plan.seed ^ (0x9E3779B97F4A7C15ull * static_cast<std::uint64_t>(s + 1));
    out.push_back(std::make_unique<PlanInjector>(cluster.shard_engine(s),
                                                 std::move(shard_plan)));
    cluster.shard_fabric(s).set_fault(out.back().get());
  }
  for (int i = 0; i < cluster.size(); ++i) {
    PlanInjector* inj = out[cluster.shard_of(i)].get();
    cluster.node(i).nic().set_fault(inj);
    cluster.node(i).bus().set_fault(inj);
  }
  return out;
}

void disarm(net::ParallelCluster& cluster) {
  for (int s = 0; s < cluster.n_shards(); ++s) {
    cluster.shard_fabric(s).set_fault(nullptr);
  }
  for (int i = 0; i < cluster.size(); ++i) {
    cluster.node(i).nic().set_fault(nullptr);
    cluster.node(i).bus().set_fault(nullptr);
  }
}

}  // namespace fmx::fault
