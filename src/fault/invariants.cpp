#include "fault/invariants.hpp"

#include <sstream>

#include "common/crc32.hpp"

namespace fmx::fault {

namespace {

std::string stream_name(int src, int dst) {
  std::ostringstream os;
  os << "stream " << src << "->" << dst;
  return os.str();
}

}  // namespace

void InvariantLedger::note_sent(int src, int dst, ByteSpan payload) {
  Stream& s = stream(src, dst);
  s.outstanding.push_back(MsgRec{s.sent++,
                                 static_cast<std::uint32_t>(payload.size()),
                                 crc32(payload)});
  ++sent_total_;
}

void InvariantLedger::note_delivered(int src, int dst, ByteSpan payload) {
  Stream& s = stream(src, dst);
  ++s.delivered;
  ++delivered_total_;
  std::ostringstream os;
  if (s.outstanding.empty()) {
    os << stream_name(src, dst) << ": delivery #" << s.delivered
       << " with nothing outstanding (duplicate or phantom message)";
    violation(os.str());
    return;
  }
  const MsgRec expect = s.outstanding.front();
  const std::uint32_t got_crc = crc32(payload);
  if (expect.size == payload.size() && expect.crc == got_crc) {
    s.outstanding.pop_front();
    return;
  }
  // Mismatch at the head: decide between reorder/loss (the delivered bytes
  // match a message deeper in the queue) and corruption (they match none).
  for (std::size_t i = 1; i < s.outstanding.size(); ++i) {
    const MsgRec& m = s.outstanding[i];
    if (m.size == payload.size() && m.crc == got_crc) {
      os << stream_name(src, dst) << ": message #" << m.id
         << " delivered while #" << expect.id
         << " is still outstanding (out-of-order or lost message)";
      violation(os.str());
      // Resynchronize on the matched message so one fault reports once.
      s.outstanding.erase(s.outstanding.begin(),
                          s.outstanding.begin() +
                              static_cast<std::ptrdiff_t>(i + 1));
      return;
    }
  }
  os << stream_name(src, dst) << ": delivery #" << s.delivered << " ("
     << payload.size() << " B, crc " << std::hex << got_crc
     << ") matches no outstanding message; head is #" << std::dec
     << expect.id << " (" << expect.size << " B, crc " << std::hex
     << expect.crc << ") — payload corrupted in transit";
  violation(os.str());
  s.outstanding.pop_front();  // assume the head was the victim
}

void InvariantLedger::check_streams() {
  for (auto& [key, s] : streams_) {
    if (s.outstanding.empty()) continue;
    std::ostringstream os;
    os << stream_name(key.first, key.second) << ": " << s.outstanding.size()
       << " message(s) sent but never delivered (first missing #"
       << s.outstanding.front().id << "; " << s.delivered << "/" << s.sent
       << " arrived)";
    violation(os.str());
  }
}

void InvariantLedger::check_engine(const sim::Engine& eng) {
  if (eng.pending_roots() > 0) {
    std::ostringstream os;
    os << "engine: event queue drained with " << eng.pending_roots()
       << " root task(s) still suspended — deadlock (t=" << sim::to_us(
              eng.now())
       << " us, " << eng.events_processed() << " events)";
    violation(os.str());
  }
}

void InvariantLedger::check_nic(const net::Nic& nic) {
  std::ostringstream os;
  os << "nic " << nic.id() << ": ";
  if (nic.sram_rx_free() != nic.params().sram_rx_slots) {
    std::ostringstream v;
    v << os.str() << nic.params().sram_rx_slots - nic.sram_rx_free()
      << " of " << nic.params().sram_rx_slots
      << " inbound SRAM slack token(s) never returned (orphaned slot)";
    violation(v.str());
  }
  if (nic.host_ring_depth() != 0) {
    std::ostringstream v;
    v << os.str() << nic.host_ring_depth()
      << " packet(s) left in the host receive ring (undrained)";
    violation(v.str());
  }
  if (nic.tx_backlog() != 0) {
    std::ostringstream v;
    v << os.str() << nic.tx_backlog()
      << " send descriptor(s) stuck in the NIC (tx queue/SRAM)";
    violation(v.str());
  }
  if (nic.rx_staged() != 0) {
    std::ostringstream v;
    v << os.str() << nic.rx_staged()
      << " packet(s) staged after CRC check but never DMAed to the host";
    violation(v.str());
  }
  if (nic.unacked() != 0) {
    std::ostringstream v;
    v << os.str() << nic.unacked()
      << " packet(s) retained in the go-back-N window (never acked)";
    violation(v.str());
  }
}

void InvariantLedger::check_host_ledger(const net::Host& host, int id) {
  const sim::CostLedger& l = host.ledger();
  sim::Ps sum = 0;
  for (std::size_t i = 0; i < static_cast<std::size_t>(sim::Cost::kCount);
       ++i) {
    sum += l.of(static_cast<sim::Cost>(i));
  }
  if (sum != l.total()) {
    std::ostringstream os;
    os << "host " << id << ": cost ledger inconsistent (categories sum to "
       << sum << " ps, total says " << l.total() << " ps)";
    violation(os.str());
  }
}

void InvariantLedger::check_cluster(net::Cluster& cluster) {
  for (int i = 0; i < cluster.size(); ++i) {
    check_nic(cluster.node(i).nic());
    check_host_ledger(cluster.node(i).host(), i);
  }
}

void InvariantLedger::check_fm2_pair(const fm2::Endpoint& sender,
                                     const fm2::Endpoint& receiver) {
  const int window = sender.config().credits_per_peer;
  const int held = sender.credits_available(receiver.id());
  const int owed = receiver.credits_pending_return(sender.id());
  if (held + owed != window) {
    std::ostringstream os;
    os << "fm2 credits " << sender.id() << "->" << receiver.id()
       << ": sender holds " << held << ", receiver owes " << owed
       << ", window is " << window << " — " << (held + owed < window
                                                    ? "leaked"
                                                    : "fabricated")
       << " credit(s)";
    violation(os.str());
  }
  if (receiver.parked_packets() != 0) {
    std::ostringstream os;
    os << "fm2 endpoint " << receiver.id() << ": " << receiver.parked_packets()
       << " packet(s) parked host-side and never ingested";
    violation(os.str());
  }
  if (receiver.backlogged_packets() != 0) {
    std::ostringstream os;
    os << "fm2 endpoint " << receiver.id() << ": "
       << receiver.backlogged_packets()
       << " packet(s) backlogged behind an unfinished message";
    violation(os.str());
  }
}

std::string InvariantLedger::report() const {
  if (violations_.empty()) return "all invariants hold";
  std::ostringstream os;
  os << violations_.size() << " invariant violation(s):\n";
  for (const std::string& v : violations_) os << "  - " << v << "\n";
  return os.str();
}

}  // namespace fmx::fault
