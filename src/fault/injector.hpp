// Deterministic FaultPlan interpreter. One PlanInjector is shared by every
// fault seam of a cluster (fabric delivery, NIC pacing, per-node I/O
// buses); because the event engine is single-threaded and deterministic,
// the injector's RNG draws happen in a reproducible order, so
// (plan, seed, workload) fully determines every injected fault.
#pragma once

#include <cstdint>

#include <memory>
#include <vector>

#include "fault/plan.hpp"
#include "myrinet/fault_hooks.hpp"
#include "myrinet/node.hpp"
#include "myrinet/parallel_cluster.hpp"
#include "sim/engine.hpp"
#include "sim/random.hpp"

namespace fmx::fault {

class PlanInjector final : public net::FaultInjector {
 public:
  PlanInjector(sim::Engine& eng, FaultPlan plan)
      : eng_(eng), plan_(std::move(plan)), rng_(plan_.seed) {}

  net::WireFault on_deliver(const net::WirePacket& pkt) override;
  sim::Ps bus_stall(std::size_t bytes) override;
  sim::Ps tx_pacing(int nic_id) override;
  sim::Ps rx_pacing(int nic_id) override;

  struct Stats {
    std::uint64_t packets_seen = 0;
    std::uint64_t drops = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t corruptions = 0;
    std::uint64_t reorders = 0;
    std::uint64_t bus_stalls = 0;
    /// Total injected faults of every kind.
    std::uint64_t injected() const noexcept {
      return drops + duplicates + corruptions + reorders + bus_stalls;
    }
  };
  const Stats& stats() const noexcept { return stats_; }
  const FaultPlan& plan() const noexcept { return plan_; }

 private:
  const WireRates& rates_for(int src, int dst) const;
  sim::Ps jittered(sim::Ps fixed, sim::Ps jitter);

  sim::Engine& eng_;
  FaultPlan plan_;
  sim::Rng rng_;
  Stats stats_;
};

/// Wire one injector through every fault seam of a cluster: the fabric,
/// each NIC's control programs, and each node's I/O bus. The injector must
/// outlive the traffic; call disarm() to detach it.
void arm(net::Cluster& cluster, PlanInjector& injector);
void disarm(net::Cluster& cluster);

/// Parallel clusters get one injector per shard, armed on that shard's
/// fabric replica and nodes so every RNG draw stays shard-local (fault-hook
/// routing to the owning shard). Each shard's seed mixes the plan seed with
/// the shard index, and shard assignment is fixed per cluster, so the fault
/// sequence is deterministic and independent of thread count. The returned
/// injectors must outlive the traffic.
std::vector<std::unique_ptr<PlanInjector>> arm(net::ParallelCluster& cluster,
                                               const FaultPlan& plan);
void disarm(net::ParallelCluster& cluster);

}  // namespace fmx::fault
