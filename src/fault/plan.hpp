// Declarative fault schedules. A FaultPlan is pure data: per-link wire
// fault rates, I/O-bus stall windows, and NIC pacing, all keyed by one RNG
// seed. The same (plan, seed, workload) triple always produces the same
// simulation — reproducing a failing run is "re-run with the printed seed".
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace fmx::fault {

/// Wire-level fault probabilities, consulted once per delivered packet.
struct WireRates {
  double drop = 0.0;       ///< P(packet evaporates in the fabric)
  double duplicate = 0.0;  ///< P(a second copy is delivered)
  double corrupt = 0.0;    ///< P(one payload bit is flipped)
  double reorder = 0.0;    ///< P(packet is held back by reorder_delay)
  sim::Ps reorder_delay = sim::us(30);

  bool any() const noexcept {
    return drop > 0 || duplicate > 0 || corrupt > 0 || reorder > 0;
  }
};

/// Override the base rates for one directed (src,dst) host pair; -1 = any.
struct LinkOverride {
  int src = -1;
  int dst = -1;
  WireRates rates;
};

/// Periodic I/O-bus degradation: while (now mod period) < window, every
/// transaction pays `extra` additional occupancy — a hiccuping arbiter or a
/// competing device hogging the bus.
struct BusStallPlan {
  sim::Ps period = 0;  ///< 0 disables
  sim::Ps window = 0;
  sim::Ps extra = 0;

  bool any() const noexcept { return period > 0 && window > 0 && extra > 0; }
};

/// Extra per-packet control-program delay: fixed part plus uniformly drawn
/// jitter in [0, *_jitter]. rx pacing models a slow receiver whose
/// back-pressure must propagate through SRAM slack and FM credits.
struct PacingPlan {
  sim::Ps tx = 0;
  sim::Ps tx_jitter = 0;
  sim::Ps rx = 0;
  sim::Ps rx_jitter = 0;

  bool any() const noexcept {
    return tx > 0 || tx_jitter > 0 || rx > 0 || rx_jitter > 0;
  }
};

struct FaultPlan {
  std::uint64_t seed = 1;
  WireRates wire;                    ///< base rates for every link
  std::vector<LinkOverride> links;   ///< first match wins
  BusStallPlan bus;
  PacingPlan pacing;

  // --- Canonical profiles (EXPERIMENTS.md "Fault injection") --------------
  /// No faults at all; armed but inert (baseline for determinism checks).
  static FaultPlan clean(std::uint64_t seed = 1) {
    FaultPlan p;
    p.seed = seed;
    return p;
  }

  /// Lossy wire: drops + corruption at the given per-packet rate each.
  static FaultPlan lossy(double rate, std::uint64_t seed) {
    FaultPlan p;
    p.seed = seed;
    p.wire.drop = rate;
    p.wire.corrupt = rate;
    return p;
  }

  /// Everything at once: drop/dup/corrupt/reorder plus bus stalls and a
  /// sluggish receive path. The torture profile for the property sweep.
  static FaultPlan chaos(std::uint64_t seed, double rate = 0.02) {
    FaultPlan p;
    p.seed = seed;
    p.wire.drop = rate;
    p.wire.duplicate = rate;
    p.wire.corrupt = rate;
    p.wire.reorder = rate;
    p.wire.reorder_delay = sim::us(50);
    p.bus = {sim::us(200), sim::us(40), sim::us(3)};
    p.pacing.rx = sim::ns(200);
    p.pacing.rx_jitter = sim::us(1);
    return p;
  }

  /// Degraded I/O bus only — the wire stays clean.
  static FaultPlan degraded_bus(std::uint64_t seed) {
    FaultPlan p;
    p.seed = seed;
    p.bus = {sim::us(100), sim::us(50), sim::us(5)};
    return p;
  }

  /// Slow receiver only — exercises credit/slack back-pressure.
  static FaultPlan slow_receiver(std::uint64_t seed) {
    FaultPlan p;
    p.seed = seed;
    p.pacing.rx = sim::us(2);
    p.pacing.rx_jitter = sim::us(2);
    return p;
  }
};

}  // namespace fmx::fault
