// Protocol-invariant checker. Tests record what each sender injected and
// what each receiver observed; after the engine drains, check_* methods
// assert the end-to-end properties the FM stack promises even over a
// faulty fabric (with reliable_link on):
//
//   * exactly-once, in-order, byte-exact delivery per (src,dst) stream
//   * engine quiescence (no root task still suspended = no deadlock)
//   * no orphaned NIC resources: SRAM slack tokens all home, host ring
//     drained, nothing staged in the control programs, go-back-N window
//     empty
//   * FM2 credit conservation: for each (sender,receiver) pair the send
//     allowance plus the receiver's unreturned credits equals the
//     configured window
//   * host CostLedger consistency (total equals the sum of categories)
//
// Violations accumulate as human-readable strings rather than aborting, so
// a failing seed prints everything that went wrong in one report.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/buffer.hpp"
#include "fm2/fm2.hpp"
#include "myrinet/node.hpp"
#include "sim/engine.hpp"
#include "sim/ledger.hpp"

namespace fmx::fault {

class InvariantLedger {
 public:
  // --- Recording (call from workload code as traffic happens) -------------
  /// Record a message handed to the send side of the (src,dst) stream.
  void note_sent(int src, int dst, ByteSpan payload);
  /// Record a message observed complete at the receiver.
  void note_delivered(int src, int dst, ByteSpan payload);

  // --- Post-run checks ----------------------------------------------------
  /// Every recorded stream delivered exactly-once, in-order, byte-exact.
  void check_streams();
  /// All root tasks finished: the run ended by completion, not deadlock.
  void check_engine(const sim::Engine& eng);
  /// No orphaned SRAM slots, ring entries, staged packets, or unacked data.
  void check_nic(const net::Nic& nic);
  /// CostLedger self-consistency for one host.
  void check_host_ledger(const net::Host& host, int id);
  /// check_nic + check_host_ledger for every node.
  void check_cluster(net::Cluster& cluster);
  /// FM2 credit/window conservation for traffic sender -> receiver, plus
  /// no parked or backlogged packets left on the receiver.
  void check_fm2_pair(const fm2::Endpoint& sender,
                      const fm2::Endpoint& receiver);

  // --- Results ------------------------------------------------------------
  bool ok() const noexcept { return violations_.empty(); }
  const std::vector<std::string>& violations() const noexcept {
    return violations_;
  }
  /// One line per violation, or "all invariants hold".
  std::string report() const;
  void violation(std::string msg) { violations_.push_back(std::move(msg)); }

  std::uint64_t messages_sent() const noexcept { return sent_total_; }
  std::uint64_t messages_delivered() const noexcept {
    return delivered_total_;
  }

 private:
  struct MsgRec {
    std::uint64_t id;       // per-stream send sequence
    std::uint32_t size;
    std::uint32_t crc;      // crc32 of the payload at send time
  };
  struct Stream {
    std::deque<MsgRec> outstanding;  // sent, not yet matched by a delivery
    std::uint64_t sent = 0;
    std::uint64_t delivered = 0;
  };

  Stream& stream(int src, int dst) { return streams_[{src, dst}]; }

  std::map<std::pair<int, int>, Stream> streams_;
  std::vector<std::string> violations_;
  std::uint64_t sent_total_ = 0;
  std::uint64_t delivered_total_ = 0;
};

}  // namespace fmx::fault
