// A small Global Arrays layer over Shmem-FM (paper §4.2 names Global
// Arrays among the APIs implemented on FM 2.x). A dense row-major matrix of
// doubles is block-row distributed across PEs; put/get/accumulate move
// arbitrary rectangular patches with one-sided shmem operations.
#pragma once

#include <memory>
#include <vector>

#include "shmem/shmem.hpp"

namespace fmx::ga {

class GlobalArray {
 public:
  /// Construct the local view of a (rows x cols) global array of doubles.
  /// Every PE must construct it identically (collective, like GA_Create);
  /// `heap_off` is the symmetric heap offset reserved for this array.
  GlobalArray(shmem::ShmemCtx& ctx, std::size_t rows, std::size_t cols,
              std::size_t heap_off = 0);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  /// Rows [row_begin, row_end) held by PE `pe`.
  std::size_t row_begin(int pe) const;
  std::size_t row_end(int pe) const;
  int owner_of(std::size_t row) const;

  /// Write a (nrows x cols_) patch starting at global row `row0`.
  sim::Task<void> put_rows(std::size_t row0, std::size_t nrows,
                           std::span<const double> data);
  /// Read a (nrows x cols_) patch starting at global row `row0`.
  sim::Task<void> get_rows(std::size_t row0, std::size_t nrows,
                           std::span<double> out);
  /// Element-wise += into a row patch.
  sim::Task<void> acc_rows(std::size_t row0, std::size_t nrows,
                           std::span<const double> data);
  /// Complete outstanding puts/accumulates.
  sim::Task<void> flush() { return ctx_.quiet(); }

  /// Direct access to the locally-owned block.
  std::span<double> local_rows();

 private:
  std::size_t heap_off_of(std::size_t row) const;

  shmem::ShmemCtx& ctx_;
  std::size_t rows_;
  std::size_t cols_;
  std::size_t heap_off_;
  std::size_t rows_per_pe_;
};

}  // namespace fmx::ga
