#include "ga/global_array.hpp"

#include <algorithm>
#include <stdexcept>

namespace fmx::ga {

GlobalArray::GlobalArray(shmem::ShmemCtx& ctx, std::size_t rows,
                         std::size_t cols, std::size_t heap_off)
    : ctx_(ctx), rows_(rows), cols_(cols), heap_off_(heap_off) {
  std::size_t n = static_cast<std::size_t>(ctx.n_pes());
  rows_per_pe_ = (rows + n - 1) / n;
  std::size_t local_bytes = rows_per_pe_ * cols_ * sizeof(double);
  if (heap_off_ + local_bytes > ctx_.heap().size()) {
    throw std::out_of_range("ga: array does not fit in symmetric heap");
  }
}

std::size_t GlobalArray::row_begin(int pe) const {
  return std::min(rows_, static_cast<std::size_t>(pe) * rows_per_pe_);
}
std::size_t GlobalArray::row_end(int pe) const {
  return std::min(rows_, row_begin(pe) + rows_per_pe_);
}
int GlobalArray::owner_of(std::size_t row) const {
  return static_cast<int>(row / rows_per_pe_);
}

std::size_t GlobalArray::heap_off_of(std::size_t row) const {
  std::size_t local_row = row % rows_per_pe_;
  return heap_off_ + local_row * cols_ * sizeof(double);
}

std::span<double> GlobalArray::local_rows() {
  auto* base =
      reinterpret_cast<double*>(ctx_.heap().data() + heap_off_);
  std::size_t nrows = row_end(ctx_.pe()) - row_begin(ctx_.pe());
  return {base, nrows * cols_};
}

sim::Task<void> GlobalArray::put_rows(std::size_t row0, std::size_t nrows,
                                      std::span<const double> data) {
  if (data.size() != nrows * cols_) {
    throw std::invalid_argument("ga: patch size mismatch");
  }
  std::size_t r = row0;
  std::size_t off = 0;
  while (r < row0 + nrows) {
    int pe = owner_of(r);
    std::size_t take = std::min(row_end(pe), row0 + nrows) - r;
    ByteSpan bytes{
        reinterpret_cast<const std::byte*>(data.data() + off * cols_),
        take * cols_ * sizeof(double)};
    co_await ctx_.put(pe, heap_off_of(r), bytes);
    r += take;
    off += take;
  }
}

sim::Task<void> GlobalArray::get_rows(std::size_t row0, std::size_t nrows,
                                      std::span<double> out) {
  if (out.size() != nrows * cols_) {
    throw std::invalid_argument("ga: patch size mismatch");
  }
  std::size_t r = row0;
  std::size_t off = 0;
  while (r < row0 + nrows) {
    int pe = owner_of(r);
    std::size_t take = std::min(row_end(pe), row0 + nrows) - r;
    MutByteSpan bytes{
        reinterpret_cast<std::byte*>(out.data() + off * cols_),
        take * cols_ * sizeof(double)};
    co_await ctx_.get(pe, heap_off_of(r), bytes);
    r += take;
    off += take;
  }
}

sim::Task<void> GlobalArray::acc_rows(std::size_t row0, std::size_t nrows,
                                      std::span<const double> data) {
  if (data.size() != nrows * cols_) {
    throw std::invalid_argument("ga: patch size mismatch");
  }
  std::size_t r = row0;
  std::size_t off = 0;
  while (r < row0 + nrows) {
    int pe = owner_of(r);
    std::size_t take = std::min(row_end(pe), row0 + nrows) - r;
    co_await ctx_.accumulate(pe, heap_off_of(r),
                             data.subspan(off * cols_, take * cols_));
    r += take;
    off += take;
  }
}

}  // namespace fmx::ga
