// Socket-FM: BSD-style stream sockets over FM 2.x (paper §3.2, §4.1 —
// sockets were FM's second test application, and receiver flow control is
// what "enables zero-copy transfers in a significantly larger number of
// cases for both our Socket-FM and MPI-FM implementations").
//
// Receive path: if a recv() is already waiting on the connection, the FM
// handler steers payload bytes directly into the user's buffer (layer
// interleaving, zero intermediate copy); otherwise bytes land in the
// connection's receive buffer. An application that stops calling recv()
// stops extracting, FM withholds credits, and the sender is paced — the
// stream back-pressure TCP needs a window for.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "fm2/fm2.hpp"

namespace fmx::sock {

struct Config {
  /// Max payload carried per FM message (fragmentation unit).
  std::size_t max_fragment = 8 * 1024;
  fm2::Config fm;
};

class SocketFm;

/// One endpoint of an established stream connection.
class Socket {
 public:
  /// Send the whole buffer (blocking until handed to FM).
  sim::Task<void> send(ByteSpan data);
  /// Receive at least one byte (like read(2)); returns bytes read, or 0 at
  /// EOF (peer closed and buffer drained).
  sim::Task<std::size_t> recv(MutByteSpan buf);
  /// Receive exactly buf.size() bytes; throws on premature EOF.
  sim::Task<void> recv_exact(MutByteSpan buf);
  /// Half-close: signals EOF to the peer after in-flight data.
  sim::Task<void> close();

  bool eof() const noexcept { return fin_received_ && buffered_bytes_ == 0; }
  std::size_t buffered() const noexcept { return buffered_bytes_; }
  int peer_node() const noexcept { return peer_node_; }

 private:
  friend class SocketFm;

  SocketFm* owner_ = nullptr;
  int local_id_ = -1;
  int peer_node_ = -1;
  int peer_id_ = -1;
  bool established_ = false;
  bool fin_received_ = false;
  bool fin_sent_ = false;
  // Landed data not yet recv()ed, as a deque of chunks consumed from the
  // front through chunk_off_. The old flat deque<byte> paid an O(n) front
  // erase (byte shift) per recv — O(n²) across a drain; slices make each
  // read O(bytes delivered).
  std::deque<Bytes> chunks_;
  std::size_t chunk_off_ = 0;       // consumed prefix of chunks_.front()
  std::size_t buffered_bytes_ = 0;  // total across chunks_
  // A waiting recv(): the handler fills this directly (zero-copy path).
  std::byte* pending_buf_ = nullptr;
  std::size_t pending_cap_ = 0;
  std::size_t pending_got_ = 0;
};

class SocketFm {
 public:
  /// Standalone: owns its FM endpoint.
  SocketFm(net::Cluster& cluster, int node_id, Config cfg = {});
  /// Layered: share one FM endpoint per process with other libraries.
  explicit SocketFm(fm2::Endpoint& shared, Config cfg = {});

  /// Passive open: allow connections to `port`.
  void listen(int port);
  /// Active open: returns an established socket.
  sim::Task<Socket*> connect(int peer_node, int port);
  /// Accept one pending (or future) connection on `port`.
  sim::Task<Socket*> accept(int port);

  fm2::Endpoint& fm() noexcept { return ep_; }
  int id() const noexcept { return ep_.id(); }

  struct Stats {
    std::uint64_t bytes_sent = 0;
    std::uint64_t bytes_received = 0;
    std::uint64_t zero_copy_bytes = 0;  // landed directly in user buffers
    std::uint64_t buffered_bytes = 0;   // staged in connection buffers
  };
  const Stats& stats() const noexcept { return stats_; }

 private:
  friend class Socket;

  enum class Op : std::uint16_t { kSyn = 1, kSynAck = 2, kData = 3,
                                  kFin = 4 };
  struct SockHeader {
    std::uint16_t op = 0;
    std::uint16_t port = 0;
    std::int32_t src_conn = -1;   // sender's connection id
    std::int32_t dst_conn = -1;   // receiver's connection id (-1 for SYN)
    std::uint32_t bytes = 0;
  };
  static_assert(sizeof(SockHeader) == 16);

  static constexpr fm2::HandlerId kSockHandler = 2;

  fm2::HandlerTask on_message(fm2::RecvStream& s, int src);
  sim::Task<void> send_ctrl(int node, Op op, int port, int src_conn,
                            int dst_conn);
  Socket* alloc_socket();

  std::unique_ptr<fm2::Endpoint> owned_;
  fm2::Endpoint& ep_;
  Config cfg_;
  std::vector<std::unique_ptr<Socket>> socks_;
  std::unordered_map<int, bool> listening_;             // port -> open
  std::unordered_map<int, std::deque<int>> pending_;    // port -> conn ids
  Stats stats_;
};

}  // namespace fmx::sock
