#include "sockets/socket_fm.hpp"

#include "common/copy_stats.hpp"

#include <algorithm>
#include <cstring>
#include <memory>
#include <stdexcept>

namespace fmx::sock {

using sim::Cost;

SocketFm::SocketFm(net::Cluster& cluster, int node_id, Config cfg)
    : owned_(std::make_unique<fm2::Endpoint>(cluster, node_id, cfg.fm)),
      ep_(*owned_),
      cfg_(cfg) {
  ep_.register_handler(kSockHandler, [this](fm2::RecvStream& s, int src) {
    return on_message(s, src);
  });
}

SocketFm::SocketFm(fm2::Endpoint& shared, Config cfg)
    : ep_(shared), cfg_(cfg) {
  ep_.register_handler(kSockHandler, [this](fm2::RecvStream& s, int src) {
    return on_message(s, src);
  });
}

Socket* SocketFm::alloc_socket() {
  auto s = std::make_unique<Socket>();
  s->owner_ = this;
  s->local_id_ = static_cast<int>(socks_.size());
  socks_.push_back(std::move(s));
  return socks_.back().get();
}

void SocketFm::listen(int port) { listening_[port] = true; }

sim::Task<void> SocketFm::send_ctrl(int node, Op op, int port, int src_conn,
                                    int dst_conn) {
  SockHeader h;
  h.op = static_cast<std::uint16_t>(op);
  h.port = static_cast<std::uint16_t>(port);
  h.src_conn = src_conn;
  h.dst_conn = dst_conn;
  ep_.host().charge(Cost::kCall, sim::ns(300));
  co_await ep_.send(node, kSockHandler, as_bytes_of(h));
}

sim::Task<Socket*> SocketFm::connect(int peer_node, int port) {
  Socket* s = alloc_socket();
  s->peer_node_ = peer_node;
  co_await send_ctrl(peer_node, Op::kSyn, port, s->local_id_, -1);
  co_await ep_.poll_until([s] { return s->established_; });
  co_return s;
}

sim::Task<Socket*> SocketFm::accept(int port) {
  co_await ep_.poll_until([this, port] {
    auto it = pending_.find(port);
    return it != pending_.end() && !it->second.empty();
  });
  int id = pending_[port].front();
  pending_[port].pop_front();
  co_return socks_.at(id).get();
}

fm2::HandlerTask SocketFm::on_message(fm2::RecvStream& s, int src) {
  auto& host = ep_.host();
  SockHeader h;
  co_await s.receive(&h, sizeof(h));
  host.charge(Cost::kHeader, sim::ns(150));

  switch (static_cast<Op>(h.op)) {
    case Op::kSyn: {
      // Passive open: create the acceptor-side socket and reply.
      Socket* acc = alloc_socket();
      acc->peer_node_ = src;
      acc->peer_id_ = h.src_conn;
      acc->established_ = true;
      pending_[h.port].push_back(acc->local_id_);
      host.charge(Cost::kBufferMgmt, sim::ns(400));
      int my_id = acc->local_id_;
      int port = h.port;
      int their = h.src_conn;
      ep_.defer([this, src, port, my_id, their]() -> sim::Task<void> {
        co_await send_ctrl(src, Op::kSynAck, port, my_id, their);
      });
      break;
    }
    case Op::kSynAck: {
      Socket& sk = *socks_.at(h.dst_conn);
      sk.peer_id_ = h.src_conn;
      sk.established_ = true;
      break;
    }
    case Op::kData: {
      Socket& sk = *socks_.at(h.dst_conn);
      std::size_t remaining = h.bytes;
      stats_.bytes_received += remaining;
      // Zero-copy path: a waiting recv() takes bytes straight off the
      // stream into the user's buffer.
      while (remaining > 0 && sk.pending_buf_ != nullptr &&
             sk.pending_got_ < sk.pending_cap_ && sk.buffered_bytes_ == 0) {
        std::size_t take = std::min(remaining,
                                    sk.pending_cap_ - sk.pending_got_);
        co_await s.receive(sk.pending_buf_ + sk.pending_got_, take);
        sk.pending_got_ += take;
        stats_.zero_copy_bytes += take;
        remaining -= take;
      }
      // Whatever is left lands in the connection buffer.
      if (remaining > 0) {
        Bytes chunk(remaining);
        co_await s.receive(MutByteSpan{chunk});
        sk.buffered_bytes_ += chunk.size();
        sk.chunks_.push_back(std::move(chunk));
        stats_.buffered_bytes += remaining;
      }
      break;
    }
    case Op::kFin: {
      Socket& sk = *socks_.at(h.dst_conn);
      sk.fin_received_ = true;
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// Socket

sim::Task<void> Socket::send(ByteSpan data) {
  if (!established_) throw std::logic_error("socket: send before connect");
  if (fin_sent_) throw std::logic_error("socket: send after close");
  auto& ep = owner_->ep_;
  auto& host = ep.host();
  host.charge(sim::Cost::kCall, sim::ns(300));
  owner_->stats_.bytes_sent += data.size();
  std::size_t off = 0;
  do {
    std::size_t n = std::min(owner_->cfg_.max_fragment, data.size() - off);
    SocketFm::SockHeader h;
    h.op = static_cast<std::uint16_t>(SocketFm::Op::kData);
    h.src_conn = local_id_;
    h.dst_conn = peer_id_;
    h.bytes = static_cast<std::uint32_t>(n);
    const ByteSpan pieces[] = {as_bytes_of(h), data.subspan(off, n)};
    co_await ep.send_gather(peer_node_, SocketFm::kSockHandler, pieces);
    off += n;
  } while (off < data.size());
}

sim::Task<std::size_t> Socket::recv(MutByteSpan buf) {
  auto& ep = owner_->ep_;
  auto& host = ep.host();
  host.charge(sim::Cost::kCall, sim::ns(300));
  if (buf.empty()) co_return 0;
  for (;;) {
    if (buffered_bytes_ > 0) {
      // Consume sub-slices off the chunk deque; no byte shifting, and the
      // modeled charge stays one memcpy over the total delivered.
      std::size_t n = std::min(buf.size(), buffered_bytes_);
      std::size_t got = 0;
      while (got < n) {
        Bytes& front = chunks_.front();
        std::size_t take = std::min(n - got, front.size() - chunk_off_);
        std::memcpy(buf.data() + got, front.data() + chunk_off_, take);
        got += take;
        chunk_off_ += take;
        if (chunk_off_ == front.size()) {
          chunks_.pop_front();
          chunk_off_ = 0;
        }
      }
      buffered_bytes_ -= n;
      count_endpoint_copy(n);
      host.charge(sim::Cost::kCopy, host.memcpy_cost(n));
      host.ledger().note_copy(n);
      co_await host.sync();
      co_return n;
    }
    if (fin_received_) co_return 0;  // EOF
    // Post our buffer so the handler can fill it directly.
    pending_buf_ = buf.data();
    pending_cap_ = buf.size();
    pending_got_ = 0;
    co_await ep.poll_until([this] {
      return pending_got_ > 0 || fin_received_ || buffered_bytes_ > 0;
    });
    pending_buf_ = nullptr;
    if (pending_got_ > 0) co_return pending_got_;
    // else loop: either EOF or data landed in the buffer after all
  }
}

sim::Task<void> Socket::recv_exact(MutByteSpan buf) {
  std::size_t off = 0;
  while (off < buf.size()) {
    std::size_t n = co_await recv(buf.subspan(off));
    if (n == 0) throw std::runtime_error("socket: EOF mid recv_exact");
    off += n;
  }
}

sim::Task<void> Socket::close() {
  if (fin_sent_) co_return;
  fin_sent_ = true;
  SocketFm::SockHeader h;
  h.op = static_cast<std::uint16_t>(SocketFm::Op::kFin);
  h.src_conn = local_id_;
  h.dst_conn = peer_id_;
  co_await owner_->ep_.send(peer_node_, SocketFm::kSockHandler,
                            as_bytes_of(h));
}

}  // namespace fmx::sock
