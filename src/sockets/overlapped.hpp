// Winsock2-style overlapped I/O over Socket-FM. The paper closes §4.2 with
// "An implementation of Winsock 2 is in progress" — this is that interface
// style finished: post buffers ahead of data, let completions arrive, wait
// on one or any. Posted receive buffers are handed to the socket in order,
// so the zero-copy pending-recv path does the filling.
#pragma once

#include <deque>
#include <memory>
#include <span>

#include "sockets/socket_fm.hpp"

namespace fmx::sock {

struct IoState {
  bool done = false;
  std::size_t bytes = 0;
  bool eof = false;
};

class IoRequest {
 public:
  IoRequest() = default;
  explicit IoRequest(std::shared_ptr<IoState> st) : st_(std::move(st)) {}
  bool valid() const noexcept { return st_ != nullptr; }
  bool done() const noexcept { return st_ && st_->done; }
  std::size_t bytes() const noexcept { return st_->bytes; }
  bool eof() const noexcept { return st_->eof; }
  IoState* state() noexcept { return st_.get(); }

 private:
  std::shared_ptr<IoState> st_;
};

/// One overlapped view per socket. Requires the socket's stack to share the
/// engine the Overlapped was built with (it spawns a service coroutine).
class Overlapped {
 public:
  Overlapped(sim::Engine& eng, SocketFm& stack, Socket& sock);
  Overlapped(const Overlapped&) = delete;
  Overlapped& operator=(const Overlapped&) = delete;

  /// Post a receive buffer. Buffers complete in posting order; each
  /// completes with >= 1 byte (like recv(2)), or 0 bytes at EOF.
  IoRequest async_recv(MutByteSpan buf);

  /// Overlapped send: data is consumed before return (eager completion,
  /// as with a Winsock send that completes immediately).
  sim::Task<IoRequest> async_send(ByteSpan data);

  /// Block until `req` completes; returns bytes transferred.
  sim::Task<std::size_t> wait(IoRequest req);

  /// Block until any of `reqs` completes; returns the first done index.
  sim::Task<int> wait_any(std::span<IoRequest> reqs);

  std::size_t pending_recvs() const noexcept { return posted_.size(); }

 private:
  struct Posted {
    Posted() = default;
    Posted(MutByteSpan b, std::shared_ptr<IoState> s)
        : buf(b), st(std::move(s)) {}
    MutByteSpan buf;
    std::shared_ptr<IoState> st;
  };

  sim::Task<void> service();

  sim::Engine& eng_;
  SocketFm& stack_;
  Socket& sock_;
  std::deque<Posted> posted_;
  sim::CondVar work_cv_;
};

}  // namespace fmx::sock
