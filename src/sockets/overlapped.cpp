#include "sockets/overlapped.hpp"

namespace fmx::sock {

Overlapped::Overlapped(sim::Engine& eng, SocketFm& stack, Socket& sock)
    : eng_(eng), stack_(stack), sock_(sock), work_cv_(eng) {
  eng_.spawn_daemon(service());
}

IoRequest Overlapped::async_recv(MutByteSpan buf) {
  auto st = std::make_shared<IoState>();
  posted_.emplace_back(buf, st);
  work_cv_.notify_all();
  return IoRequest(st);
}

sim::Task<IoRequest> Overlapped::async_send(ByteSpan data) {
  auto st = std::make_shared<IoState>();
  co_await sock_.send(data);
  st->done = true;
  st->bytes = data.size();
  co_return IoRequest(st);
}

sim::Task<void> Overlapped::service() {
  for (;;) {
    while (posted_.empty()) co_await work_cv_.wait();
    Posted p = std::move(posted_.front());
    posted_.pop_front();
    std::size_t n = co_await sock_.recv(p.buf);
    p.st->bytes = n;
    p.st->eof = (n == 0);
    p.st->done = true;
    // Waiters poll through the endpoint; give them a nudge.
    stack_.fm().kick();
  }
}

sim::Task<std::size_t> Overlapped::wait(IoRequest req) {
  IoState* st = req.state();
  co_await stack_.fm().poll_until([st] { return st->done; });
  co_return st->bytes;
}

sim::Task<int> Overlapped::wait_any(std::span<IoRequest> reqs) {
  auto first_done = [&]() -> int {
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      if (reqs[i].done()) return static_cast<int>(i);
    }
    return -1;
  };
  co_await stack_.fm().poll_until([&] { return first_done() >= 0; });
  co_return first_done();
}

}  // namespace fmx::sock
