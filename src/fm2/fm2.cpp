#include "fm2/fm2.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>
#include <string>

namespace fmx::fm2 {

using sim::Cost;

namespace {

constexpr std::size_t kHdr = sizeof(PacketHeader);
constexpr sim::Ps kHeaderBuildCost = sim::ns(150);
constexpr sim::Ps kHeaderParseCost = sim::ns(100);
constexpr sim::Ps kCreditOpCost = sim::ns(100);
constexpr sim::Ps kResumeCost = sim::ns(100);
constexpr sim::Ps kSkipPerPacketCost = sim::ns(50);

}  // namespace

// ---------------------------------------------------------------------------
// RecvStream

bool RecvStream::Awaiter::await_ready() {
  if (s.req_.has_value()) {
    throw std::logic_error("FM2: nested FM_receive on one stream");
  }
  if (want > s.remaining()) {
    throw std::logic_error("FM2: FM_receive beyond end of message");
  }
  s.req_ = Request{dst, want, 0};
  return s.try_fulfill();
}

void RecvStream::Awaiter::await_suspend(std::coroutine_handle<> h) {
  s.waiting_ = h;
}

void RecvStream::Awaiter::await_resume() { s.req_.reset(); }

void RecvStream::feed(net::RxPacket pkt) {
  std::size_t data = pkt.payload.size() - kHdr;
  if (fed_ == 0) first_arrival_ = pkt.arrived;
  fed_ += data;
  if (data == 0) {
    pkt.payload.reset();
    ep_->slot_freed(src_);  // header-only packet: slot free immediately
    return;
  }
  // Scatter entry point: drop the header by sub-slicing, not by copying —
  // the queued view starts at the data bytes and the underlying block goes
  // home when the handler has consumed the last of them.
  pkt.payload = pkt.payload.subslice(kHdr, data);
  queued_ += data;
  q_.push_back(std::move(pkt));
}

bool RecvStream::try_fulfill() {
  if (!req_.has_value()) return false;
  Request& r = *req_;
  auto& host = ep_->host();
  while (r.got < r.want && !q_.empty()) {
    net::RxPacket& front = q_.front();
    std::size_t avail = front.payload.size() - head_off_;
    std::size_t take = std::min(avail, r.want - r.got);
    if (r.dst != nullptr) {
      // The single receive-side copy: ring slot -> user buffer.
      host.copy(MutByteSpan{r.dst + r.got, take},
                front.payload.span().subspan(head_off_, take));
    } else {
      host.charge(Cost::kBufferMgmt, kSkipPerPacketCost);
    }
    head_off_ += take;
    r.got += take;
    consumed_ += take;
    queued_ -= take;
    if (head_off_ == front.payload.size()) {
      front.payload.reset();  // last reference returns the block
      q_.pop_front();
      head_off_ = 0;
      ep_->slot_freed(src_);  // packet fully consumed: credit goes home
    }
  }
  return r.got == r.want;
}

void RecvStream::discard_all_queued() {
  auto& host = ep_->host();
  while (!q_.empty()) {
    net::RxPacket& front = q_.front();
    std::size_t avail = front.payload.size() - head_off_;
    consumed_ += avail;
    queued_ -= avail;
    host.charge(Cost::kBufferMgmt, kSkipPerPacketCost);
    front.payload.reset();
    q_.pop_front();
    head_off_ = 0;
    ep_->slot_freed(src_);
  }
}

// ---------------------------------------------------------------------------
// Endpoint: construction and send side

Endpoint::Endpoint(net::Cluster& cluster, int node_id, Config cfg)
    : Endpoint(cluster.node(node_id), cluster.fabric(), cfg) {}

Endpoint::Endpoint(net::Node& node, net::Fabric& fabric, Config cfg)
    : fabric_(fabric),
      node_(node),
      cfg_(cfg),
      n_hosts_(fabric.n_hosts()) {
  const int node_id = node_.id();
  const auto& nic = node_.nic().params();
  assert(nic.mtu_payload > kHdr);
  seg_ = nic.mtu_payload - kHdr;
  handlers_.resize(256);
  if (cfg_.credits_per_peer <= 0) {
    int peers = std::max(1, n_hosts_ - 1);
    cfg_.credits_per_peer =
        std::max(2, static_cast<int>(nic.host_ring_slots) / peers);
  }
  if (cfg_.credit_return_threshold <= 0) {
    cfg_.credit_return_threshold = std::max(1, cfg_.credits_per_peer / 2);
  }
  credits_.assign(n_hosts_, cfg_.credits_per_peer);
  freed_.assign(n_hosts_, 0);
  next_msg_seq_.assign(n_hosts_, 0);
  src_state_.resize(n_hosts_);

  // Publish this endpoint's live counters; a later endpoint on the same
  // node simply takes the names over.
  trace::MetricsRegistry& m = tracer().metrics();
  const std::string pre = "fm2.node" + std::to_string(node_id) + ".";
  m.expose(pre + "msgs_sent", &stats_.msgs_sent);
  m.expose(pre + "msgs_received", &stats_.msgs_received);
  m.expose(pre + "bytes_sent", &stats_.bytes_sent);
  m.expose(pre + "bytes_received", &stats_.bytes_received);
  m.expose(pre + "packets_sent", &stats_.packets_sent);
  m.expose(pre + "handler_starts", &stats_.handler_starts);
  m.expose(pre + "handler_resumes", &stats_.handler_resumes);
  m.expose(pre + "credit_stalls", &stats_.credit_stall_events);
}

void Endpoint::register_handler(HandlerId id, HandlerFn fn) {
  handlers_.at(id) = std::move(fn);
}

std::size_t Endpoint::active_handlers() const {
  std::size_t n = 0;
  for (const auto& st : src_state_) {
    if (st.current && st.current->task.valid() && !st.current->task.done()) {
      ++n;
    }
  }
  return n;
}

std::uint16_t Endpoint::take_piggyback(int dest) {
  int v = std::min(freed_[dest], 0xFFFF);
  freed_[dest] -= v;
  return static_cast<std::uint16_t>(v);
}

sim::Task<SendStream> Endpoint::begin_message(int dest, std::size_t size,
                                              HandlerId handler) {
  auto& host = node_.host();
  // The wire header indexes packets in 16 bits.
  if ((size + seg_ - 1) / seg_ > 0xFFFF) {
    throw std::length_error("FM2: message exceeds 65535 packets");
  }
  host.charge(Cost::kCall, host.params().call_overhead / 2);
  SendStream s(dest, handler, static_cast<std::uint32_t>(size),
               next_msg_seq_[dest]++);
  s.trace_id_ = trace::Tracer::msg_id(id(), dest, trace::Layer::kFm2, s.seq_);
  bool fresh = false;
  s.pkt_ = pool().acquire_ref(kHdr + std::min(seg_, size), &fresh);
  if (fresh) host.ledger().note_alloc(s.pkt_.size());
  co_await host.sync();
  co_return s;
}

sim::Task<void> Endpoint::send_piece(SendStream& s, ByteSpan piece) {
  if (s.ended_) throw std::logic_error("FM2: send_piece after end_message");
  if (s.sent_ + piece.size() > s.total_) {
    throw std::logic_error("FM2: message overflows declared size");
  }
  auto& host = node_.host();
  host.charge(Cost::kCall, host.params().call_overhead / 2);
  ++stats_.pieces_sent;
  std::size_t off = 0;
  while (off < piece.size()) {
    std::size_t room = seg_ - s.fill_;
    std::size_t take = std::min(room, piece.size() - off);
    // The gather copy: user piece -> packet under assembly (pinned memory).
    // The stream owns its packet uniquely, so mutable_bytes() never clones.
    host.copy(s.pkt_.mutable_bytes().subspan(kHdr + s.fill_, take),
              piece.subspan(off, take));
    s.fill_ += take;
    s.sent_ += take;
    off += take;
    if (s.fill_ == seg_ && s.sent_ < s.total_) {
      co_await flush_packet(s, /*last=*/false);
    }
  }
}

sim::Task<void> Endpoint::end_message(SendStream& s) {
  if (s.ended_) throw std::logic_error("FM2: double end_message");
  if (s.sent_ != s.total_) {
    throw std::logic_error("FM2: end_message before declared size composed");
  }
  auto& host = node_.host();
  host.charge(Cost::kCall, host.params().call_overhead / 2);
  co_await flush_packet(s, /*last=*/true);
  s.ended_ = true;
  ++stats_.msgs_sent;
  stats_.bytes_sent += s.total_;
}

sim::Task<void> Endpoint::flush_packet(SendStream& s, bool last) {
  auto& host = node_.host();
  PacketHeader h;
  h.type = static_cast<std::uint16_t>(PacketType::kData);
  h.handler = s.handler_;
  h.msg_bytes = s.total_;
  h.pkt_index = s.pkt_index_++;
  h.credits = take_piggyback(s.dest_);
  h.msg_seq = s.seq_;
  s.pkt_.set_size(kHdr + s.fill_);
  wire::store_header(s.pkt_.mutable_bytes(), h);
  host.charge(Cost::kHeader, kHeaderBuildCost);
  ++stats_.packets_sent;
  tracer().record(trace::EventType::kSendEnqueue, trace::Layer::kFm2, id(),
                  s.trace_id_, s.fill_);

  co_await acquire_credit(s.dest_);
  BufferRef out = std::move(s.pkt_);
  s.fill_ = 0;
  if (!last) {
    // Next packet under assembly comes from the pool un-zeroed: send_piece
    // fills every payload byte before the next flush stores the header.
    std::size_t next_payload =
        std::min(seg_, static_cast<std::size_t>(s.total_) - s.sent_);
    bool fresh = false;
    s.pkt_ = pool().acquire_ref(kHdr + next_payload, &fresh);
    if (fresh) host.ledger().note_alloc(s.pkt_.size());
  }
  if (cfg_.pio_send) {
    host.note(Cost::kPio, node_.bus().pio_time(out.size()));
    host.ledger().note_copy(out.size());
    co_await host.sync();
    co_await node_.bus().pio(out.size());
    net::SendDescriptor sd(s.dest_, std::move(out), /*fetch_dma=*/false);
    sd.trace_id = s.trace_id_;
    co_await node_.nic().enqueue(std::move(sd));
  } else {
    co_await host.sync();
    net::SendDescriptor sd(s.dest_, std::move(out), /*fetch_dma=*/true);
    sd.trace_id = s.trace_id_;
    co_await node_.nic().enqueue(std::move(sd));
  }
}

sim::Task<void> Endpoint::acquire_credit(int dest) {
  auto& host = node_.host();
  host.charge(Cost::kFlowCtl, kCreditOpCost);
  if (credits_[dest] > 0) {
    --credits_[dest];
    co_return;
  }
  ++stats_.credit_stall_events;
  for (;;) {
    // Hunt for credit returns. Data packets are parked *without* releasing
    // their credits — FM 2.x receiver pacing must not be subverted by a
    // blocked sender.
    int drained = 0;
    while (auto p = node_.nic().host_ring().try_pop()) {
      ++drained;
      apply_credits(*p);
      PacketHeader h = wire::parse_header(p->payload);
      if (static_cast<PacketType>(h.type) == PacketType::kCredit) {
        p->payload.reset();
        continue;
      }
      if (pending_.size() >= cfg_.pending_limit) {
        throw std::runtime_error("FM2: pending buffer overflow");
      }
      pending_.push_back(std::move(*p));
    }
    if (drained > 0) node_.nic().host_ring().poke();
    if (credits_[dest] > 0) {
      --credits_[dest];
      co_return;
    }
    host.charge(Cost::kFlowCtl, host.params().poll_gap);
    co_await host.sync();
    co_await node_.nic().host_ring().wait_nonempty();
  }
}

sim::Task<void> Endpoint::maybe_return_credits(int dest) {
  if (freed_[dest] < cfg_.credit_return_threshold) co_return;
  std::uint16_t give = take_piggyback(dest);
  if (give == 0) co_return;
  ++stats_.credit_packets_sent;
  PacketHeader h;
  h.type = static_cast<std::uint16_t>(PacketType::kCredit);
  h.credits = give;
  auto& host = node_.host();
  bool fresh = false;
  BufferRef pkt = pool().acquire_ref(kHdr, &fresh);
  if (fresh) host.ledger().note_alloc(pkt.size());
  wire::store_header(pkt.mutable_bytes(), h);
  host.charge(Cost::kFlowCtl, kHeaderBuildCost);
  co_await host.sync();
  co_await node_.nic().enqueue(
      net::SendDescriptor(dest, std::move(pkt), !cfg_.pio_send));
}

// ---------------------------------------------------------------------------
// Endpoint: receive side

// Harvest piggybacked credits exactly once per packet. The "applied" flag
// on the RxPacket replaces the old strip-by-rewrite: rewriting the header
// would copy-on-write-clone every parked packet whose block is shared with
// the sender's go-back-N retention, for no modeled benefit.
void Endpoint::apply_credits(net::RxPacket& pkt) {
  if (pkt.credits_applied) return;
  pkt.credits_applied = true;
  PacketHeader h = wire::parse_header(pkt.payload);
  if (h.credits > 0) {
    node_.host().charge(Cost::kFlowCtl, kCreditOpCost);
    credits_[pkt.src] += h.credits;
  }
}

void Endpoint::start_message(SrcState& st, int src, const PacketHeader& h) {
  if (h.pkt_index != 0) {
    throw std::runtime_error("FM2: message began mid-stream (order breach)");
  }
  if (st.spare) {
    st.current = std::move(st.spare);
    st.current->reset(h.msg_bytes, h.msg_seq, h.handler);
  } else {
    st.current = std::make_unique<MsgContext>(this, src, h.msg_bytes,
                                              h.msg_seq, h.handler);
  }
  st.current->stream.trace_id_ =
      trace::Tracer::msg_id(src, id(), trace::Layer::kFm2, h.msg_seq);
  auto& fn = handlers_.at(h.handler);
  if (!fn) {
    // No handler registered: consume-and-drop semantics.
    st.current->skip_rest = true;
    return;
  }
  if (!cfg_.whole_message_handlers) {
    node_.host().charge(Cost::kDispatch,
                        node_.host().params().handler_dispatch);
    st.current->task = fn(st.current->stream, src);
    ++stats_.handler_starts;
    tracer().record(trace::EventType::kHandlerRun, trace::Layer::kFm2, id(),
                    st.current->stream.trace_id_,
                    st.current->stream.available());
    st.current->task.resume();  // runs until first unfulfillable receive
  }
}

void Endpoint::pump(SrcState& st, int src, int* completed) {
  while (st.current) {
    MsgContext& ctx = *st.current;
    RecvStream& sstr = ctx.stream;

    // Whole-message ablation: start the handler only once fully arrived.
    if (!ctx.task.valid() && !ctx.skip_rest) {
      if (sstr.fed_ < sstr.msg_bytes_) return;
      auto& fn = handlers_.at(ctx.handler_id);
      node_.host().charge(Cost::kDispatch,
                          node_.host().params().handler_dispatch);
      ctx.task = fn(sstr, src);
      ++stats_.handler_starts;
      tracer().record(trace::EventType::kHandlerRun, trace::Layer::kFm2,
                      id(), sstr.trace_id_, sstr.available());
      ctx.task.resume();
    }

    // Resume the handler while its pending request can be satisfied.
    while (ctx.task.valid() && !ctx.task.done() && sstr.waiting_ &&
           sstr.try_fulfill()) {
      auto h = sstr.waiting_;
      sstr.waiting_ = {};
      node_.host().charge(Cost::kDispatch, kResumeCost);
      ++stats_.handler_resumes;
      tracer().record(trace::EventType::kHandlerRun, trace::Layer::kFm2,
                      id(), sstr.trace_id_, sstr.available());
      h.resume();
    }

    if (ctx.task.valid() && ctx.task.done()) {
      if (auto err = ctx.task.error()) std::rethrow_exception(err);
      if (sstr.remaining() > 0) ctx.skip_rest = true;
    }
    if (ctx.skip_rest) sstr.discard_all_queued();

    bool handler_finished =
        (!ctx.task.valid() && ctx.skip_rest) ||
        (ctx.task.valid() && ctx.task.done());
    bool all_consumed = sstr.consumed_ == sstr.msg_bytes_ &&
                        sstr.fed_ == sstr.msg_bytes_;
    if (!(handler_finished && all_consumed)) return;

    // Retire the message, then pull any backlogged packets forward.
    ++*completed;
    ++stats_.msgs_received;
    stats_.bytes_received += sstr.msg_bytes_;
    tracer().record(trace::EventType::kMsgDone, trace::Layer::kFm2, id(),
                    sstr.trace_id_, sstr.msg_bytes_);
    st.spare = std::move(st.current);
    while (!st.backlog.empty() && !st.current) {
      net::RxPacket pkt = st.backlog.take_front();
      PacketHeader h = wire::parse_header(pkt.payload);
      start_message(st, src, h);
      st.current->stream.feed(std::move(pkt));
    }
    if (st.current) {
      // Feed the rest of the backlog that belongs to this message.
      while (!st.backlog.empty()) {
        PacketHeader h = wire::parse_header(st.backlog.front().payload);
        if (h.msg_seq != st.current->stream.seq_) break;
        st.current->stream.feed(st.backlog.take_front());
      }
      continue;  // pump the new message
    }
    return;
  }
}

void Endpoint::ingest(net::RxPacket&& pkt, int* completed) {
  auto& host = node_.host();
  host.charge(Cost::kHeader, kHeaderParseCost);
  apply_credits(pkt);
  PacketHeader h = wire::parse_header(pkt.payload);
  if (static_cast<PacketType>(h.type) == PacketType::kCredit) {
    pkt.payload.reset();
    return;
  }

  int src = pkt.src;
  SrcState& st = src_state_[src];
  if (!st.current) {
    start_message(st, src, h);
    st.current->stream.feed(std::move(pkt));
  } else if (h.msg_seq == st.current->stream.seq_) {
    st.current->stream.feed(std::move(pkt));
  } else {
    st.backlog.push_back(std::move(pkt));
    return;  // future message; nothing to pump yet
  }
  pump(st, src, completed);
}

sim::Task<int> Endpoint::extract(std::size_t budget) {
  auto& host = node_.host();
  host.charge(Cost::kCall, host.params().poll_gap);
  int completed = 0;

  // In whole-message ablation mode, handler starts are deferred; a started
  // message may also be waiting for backlogged packets.
  auto charge_budget = [&](std::size_t data_bytes) {
    budget = data_bytes >= budget ? 0 : budget - data_bytes;
  };

  int processed = 0;
  while (!pending_.empty() && budget > 0) {
    net::RxPacket pkt = pending_.take_front();
    charge_budget(pkt.payload.size() - kHdr);
    ingest(std::move(pkt), &completed);
    ++processed;
  }
  while (budget > 0) {
    auto p = node_.nic().host_ring().try_pop();
    if (!p) break;
    charge_budget(p->payload.size() - kHdr);
    ingest(std::move(*p), &completed);
    ++processed;
  }
  // Our extraction may have satisfied another poller's condition (several
  // libraries can poll one endpoint): let sleepers re-check.
  if (processed > 0) node_.nic().host_ring().poke();
  if (completed > 0) {
    tracer().record(trace::EventType::kExtract, trace::Layer::kFm2, id(), 0,
                    static_cast<std::uint64_t>(completed));
  }

  co_await host.sync();
  for (int peer = 0; peer < n_hosts_; ++peer) {
    co_await maybe_return_credits(peer);
  }
  while (!deferred_.empty()) {
    auto op = deferred_.take_front();
    co_await op();
  }
  co_return completed;
}

// ---------------------------------------------------------------------------
// RDMA rendezvous extension

Endpoint::RdmaBuffer Endpoint::post_rdma_buffer(
    MutByteSpan dst, std::function<void()> on_complete) {
  auto& host = node_.host();
  // Register the simulated address (Host::sim_addr), not the raw pointer:
  // pin costs are page-granular and must not depend on the test process's
  // heap layout.
  net::RegCache::Acquire a = host.reg_cache().acquire(
      host.sim_addr(dst.data(), dst.size()), dst.size());
  host.charge(Cost::kBufferMgmt, a.cost);
  RdmaBuffer b;
  b.mr = a.handle;
  b.rkey = node_.nic().post_rdma_target(dst, std::move(on_complete));
  return b;
}

sim::Task<Endpoint::RdmaOp> Endpoint::rdma_write(int dest, std::uint32_t rkey,
                                                 ByteSpan src) {
  assert(!src.empty());
  auto& host = node_.host();
  net::RegCache::Acquire a = host.reg_cache().acquire(
      host.sim_addr(src.data(), src.size()), src.size());
  host.charge(Cost::kBufferMgmt, a.cost);
  host.charge(Cost::kCall, host.params().call_overhead);
  RdmaOp op;
  op.mr = a.handle;
  // The zero-copy heart of the path: the wire packets' payloads are
  // subslices of this borrowed ref, reading the caller's bytes in place.
  op.ref = BufferRef::borrow(src);
  co_await host.sync();
  const std::size_t mtu = node_.nic().params().mtu_payload;
  for (std::size_t off = 0; off < src.size(); off += mtu) {
    const std::size_t n = std::min(mtu, src.size() - off);
    net::SendDescriptor sd(dest, op.ref.subslice(off, n), /*fetch_dma=*/true);
    sd.kind = net::PacketKind::kRdmaWrite;
    sd.rkey = rkey;
    sd.rdma_offset = static_cast<std::uint32_t>(off);
    sd.trace_id = trace::Tracer::msg_id(id(), dest, trace::Layer::kNic, rkey);
    co_await node_.nic().enqueue(std::move(sd));
  }
  co_return op;
}

// ---------------------------------------------------------------------------
// Convenience

sim::Task<void> Endpoint::send(int dest, HandlerId handler, ByteSpan data) {
  SendStream s = co_await begin_message(dest, data.size(), handler);
  co_await send_piece(s, data);
  co_await end_message(s);
}

sim::Task<void> Endpoint::send_gather(int dest, HandlerId handler,
                                      std::span<const ByteSpan> pieces) {
  std::size_t total = 0;
  for (const auto& p : pieces) total += p.size();
  SendStream s = co_await begin_message(dest, total, handler);
  for (const auto& p : pieces) co_await send_piece(s, p);
  co_await end_message(s);
}

sim::Task<void> Endpoint::wait_for_traffic() {
  if (node_.nic().host_ring().empty() && pending_.empty()) {
    co_await node_.nic().host_ring().wait_nonempty();
  }
}

// --- NIC-offloaded collectives ---------------------------------------------

// Submit one operation to the NIC collective engine and poll until its
// completion callback fires. The poll loop keeps extracting, so unrelated
// point-to-point traffic continues to drain — but a pure collective phase
// starts zero handlers: interior tree steps never touch the host.
// Stage a local operand into a pool-backed buffer the NIC DMA-fetches —
// the "pinned descriptor area" write. Pool hits make this allocation-free
// in steady state; the memcpy is real, charged, and counted.
BufferRef Endpoint::stage_contrib(ByteSpan src) {
  BufferRef staged = pool().acquire_ref(src.size());
  if (!src.empty()) node_.host().copy(staged.mutable_bytes(), src);
  return staged;
}

sim::Task<void> Endpoint::coll_run(std::uint32_t group, net::Nic::CollSubmit s) {
  auto& host = node_.host();
  // One descriptor write into the NIC's submission area (PIO-sized).
  host.charge(Cost::kCall, host.params().call_overhead);
  host.charge(Cost::kPio, host.params().call_overhead);
  co_await host.sync();
  bool done = false;
  s.on_complete = [&done] { done = true; };
  node_.nic().coll_submit(group, std::move(s));
  co_await poll_until([&done] { return done; });
}

sim::Task<void> Endpoint::coll_join(const net::CollGroupSpec& spec) {
  node_.nic().coll_create(spec);
  net::Nic::CollSubmit s;
  s.op = net::CollOp::kJoin;
  co_await coll_run(spec.id, std::move(s));
}

sim::Task<void> Endpoint::coll_barrier(std::uint32_t group) {
  net::Nic::CollSubmit s;
  s.op = net::CollOp::kBarrier;
  co_await coll_run(group, std::move(s));
}

sim::Task<void> Endpoint::coll_bcast(std::uint32_t group, MutByteSpan buf) {
  net::Nic::CollSubmit s;
  s.op = net::CollOp::kBcast;
  if (node_.nic().coll_tree_of(group).parent < 0) {
    // Root: stage the payload into a pool-backed descriptor buffer the NIC
    // fetches (pool hits keep steady-state ops allocation-free).
    s.contrib = stage_contrib(ByteSpan{buf.data(), buf.size()});
  } else {
    s.result = buf;
  }
  co_await coll_run(group, std::move(s));
}

sim::Task<void> Endpoint::coll_reduce(std::uint32_t group,
                                      std::span<double> data, CollRed red) {
  net::Nic::CollSubmit s;
  s.op = red == CollRed::kMax ? net::CollOp::kReduceMax
                              : net::CollOp::kReduceSum;
  s.contrib = stage_contrib(std::as_bytes(data));
  if (node_.nic().coll_tree_of(group).parent < 0)
    s.result = std::as_writable_bytes(data);
  co_await coll_run(group, std::move(s));
}

sim::Task<void> Endpoint::coll_allreduce(std::uint32_t group,
                                         std::span<double> data,
                                         CollRed red) {
  net::Nic::CollSubmit s;
  s.op = red == CollRed::kMax ? net::CollOp::kAllreduceMax
                              : net::CollOp::kAllreduceSum;
  s.contrib = stage_contrib(std::as_bytes(data));
  s.result = std::as_writable_bytes(data);
  co_await coll_run(group, std::move(s));
}

sim::Task<void> Endpoint::poll_until(const std::function<bool()>& done) {
  auto& host = node_.host();
  while (!done()) {
    (void)co_await extract();
    if (done()) break;
    host.charge(Cost::kCall, host.params().poll_gap);
    co_await host.sync();
    if (node_.nic().host_ring().empty() && pending_.empty()) {
      co_await node_.nic().host_ring().wait_nonempty();
    }
  }
}

}  // namespace fmx::fm2
