// Fast Messages 2.x (paper §4, Table 2) — the paper's primary contribution.
//
// The stream abstraction replaces FM 1.x's contiguous buffers:
//   * Gather on send:   FM_begin_message / FM_send_piece / FM_end_message
//     compose a message from arbitrary pieces; FM packetizes transparently.
//   * Scatter on receive: handlers call FM_receive repeatedly to pull
//     arbitrary-sized chunks — e.g. header first, then payload directly
//     into the right destination buffer (layer interleaving: the upper
//     layer's knowledge steers FM's data movement, eliminating staging).
//   * Receiver flow control: FM_extract(bytes) bounds how much data is
//     presented; unextracted packets withhold credits, pacing senders.
//   * Transparent handler multithreading: a handler starts when the FIRST
//     packet of its message arrives and is a logical thread per message —
//     here literally a C++20 coroutine suspended inside FM_receive until
//     the next packet is extracted.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/buffer.hpp"
#include "common/buffer_pool.hpp"
#include "common/fmwire.hpp"
#include "myrinet/node.hpp"
#include "sim/frame_pool.hpp"
#include "sim/ring.hpp"
#include "sim/sync.hpp"

namespace fmx::fm2 {

using HandlerId = std::uint16_t;
using PacketHeader = wire::PacketHeader;
using PacketType = wire::PacketType;

class Endpoint;
class RecvStream;

/// Handler coroutine. Runs logically inside FM_extract; may co_await only
/// RecvStream::receive/skip. One instance per incoming message.
class [[nodiscard]] HandlerTask {
 public:
  // One frame per incoming message; pooled so a message stream doesn't pay
  // an allocation per handler start.
  struct promise_type : sim::PooledFrame {
    HandlerTask get_return_object() {
      return HandlerTask{
          std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() { error = std::current_exception(); }
    std::exception_ptr error{};
  };

  HandlerTask() noexcept = default;
  HandlerTask(HandlerTask&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  HandlerTask& operator=(HandlerTask&& o) noexcept {
    if (this != &o) {
      if (h_) h_.destroy();
      h_ = std::exchange(o.h_, {});
    }
    return *this;
  }
  ~HandlerTask() {
    if (h_) h_.destroy();
  }

  bool valid() const noexcept { return static_cast<bool>(h_); }
  bool done() const noexcept { return h_.done(); }
  void resume() { h_.resume(); }
  std::exception_ptr error() const noexcept { return h_.promise().error; }

 private:
  explicit HandlerTask(std::coroutine_handle<promise_type> h) noexcept
      : h_(h) {}
  std::coroutine_handle<promise_type> h_{};
};

using HandlerFn = std::function<HandlerTask(RecvStream&, int src)>;

/// Receive-side view of one in-flight message.
class RecvStream {
 public:
  RecvStream(Endpoint* ep, int src, std::uint32_t msg_bytes,
             std::uint32_t seq)
      : ep_(ep), src_(src), msg_bytes_(msg_bytes), seq_(seq) {}
  RecvStream(const RecvStream&) = delete;
  RecvStream& operator=(const RecvStream&) = delete;

  /// Table 2: FM_receive(stream, buf, bytes). Awaitable inside a handler;
  /// suspends the handler until all requested bytes have been extracted.
  auto receive(MutByteSpan dst) { return Awaiter{*this, dst.data(),
                                                 dst.size()}; }
  auto receive(void* dst, std::size_t n) {
    return Awaiter{*this, static_cast<std::byte*>(dst), n};
  }
  /// Discard `n` bytes of the message (scatter's "don't care" case).
  auto skip(std::size_t n) { return Awaiter{*this, nullptr, n}; }

  int src() const noexcept { return src_; }
  /// Cross-layer trace id of this message (stable across the fabric).
  std::uint64_t trace_id() const noexcept { return trace_id_; }
  /// Total message length (from the message header).
  std::size_t msg_bytes() const noexcept { return msg_bytes_; }
  /// Bytes not yet consumed by the handler.
  std::size_t remaining() const noexcept { return msg_bytes_ - consumed_; }
  /// Bytes queued and immediately consumable without suspending.
  std::size_t available() const noexcept { return queued_; }
  /// Fabric arrival time of this message's first packet (wire timestamp,
  /// before any receive-queue wait). Lets handlers split end-to-end latency
  /// into transit vs. delivery/handler components. 0 until fed.
  sim::Ps first_arrival() const noexcept { return first_arrival_; }

 private:
  friend class Endpoint;

  struct Awaiter {
    RecvStream& s;
    std::byte* dst;
    std::size_t want;
    bool await_ready();
    void await_suspend(std::coroutine_handle<> h);
    void await_resume();
  };
  struct Request {
    std::byte* dst;
    std::size_t want;
    std::size_t got;
  };

  void feed(net::RxPacket pkt);     // append packet data (header sub-sliced off)
  bool try_fulfill();               // move bytes into the open request
  void discard_all_queued();        // skip-mode drain

  /// Re-arm a retired stream for the next message from the same source,
  /// keeping q_'s ring storage so steady-state streams never reallocate it.
  void reset(std::uint32_t msg_bytes, std::uint32_t seq) noexcept {
    msg_bytes_ = msg_bytes;
    seq_ = seq;
    consumed_ = fed_ = queued_ = 0;
    head_off_ = 0;
    first_arrival_ = 0;
    req_.reset();
    waiting_ = {};
  }

  Endpoint* ep_;
  int src_;
  std::uint32_t msg_bytes_;
  std::uint32_t seq_;
  std::uint64_t trace_id_ = 0;  // set by Endpoint::start_message
  std::size_t consumed_ = 0;  // handler-consumed + skipped bytes
  std::size_t fed_ = 0;       // message bytes that have been fed
  std::size_t queued_ = 0;    // fed - consumed (bytes sitting in q_)
  sim::Ps first_arrival_ = 0;  // fabric arrival of the first fed packet
  sim::RingQueue<net::RxPacket> q_;  // payloads already header-stripped
  std::size_t head_off_ = 0;  // consumed offset within q_.front() payload
  std::optional<Request> req_;
  std::coroutine_handle<> waiting_{};
};

/// Send-side stream: a message under composition.
class SendStream {
 public:
  SendStream() = default;
  int dest() const noexcept { return dest_; }
  std::size_t declared_bytes() const noexcept { return total_; }
  std::size_t composed_bytes() const noexcept { return sent_; }

 private:
  friend class Endpoint;
  SendStream(int dest, HandlerId handler, std::uint32_t total,
             std::uint32_t seq)
      : dest_(dest), handler_(handler), total_(total), seq_(seq) {}

  int dest_ = -1;
  HandlerId handler_ = 0;
  std::uint32_t total_ = 0;
  std::uint32_t seq_ = 0;
  std::uint64_t trace_id_ = 0;  // set by Endpoint::begin_message
  std::size_t sent_ = 0;       // payload bytes composed so far
  BufferRef pkt_;              // packet under assembly (incl. header space)
  std::size_t fill_ = 0;       // payload bytes in pkt_
  std::uint16_t pkt_index_ = 0;
  bool ended_ = false;
};

struct Config {
  int credits_per_peer = 0;          // 0 = ring slots / peers
  int credit_return_threshold = 0;   // 0 = half of credits_per_peer
  /// FM 2.x sends via NIC DMA from pinned host buffers; PIO is an ablation.
  bool pio_send = false;
  std::size_t pending_limit = 4096;
  /// Ablation: deliver whole messages only (disable handler interleaving —
  /// the handler starts only after the last packet arrived, as in FM 1.x).
  bool whole_message_handlers = false;
};

class Endpoint {
 public:
  Endpoint(net::Cluster& cluster, int node_id, Config cfg = {});
  /// Shard-aware form: bind to a node and the fabric (replica) it is
  /// attached to. This is the constructor parallel runs use — an endpoint
  /// only ever touches its own node plus that fabric's pool/tracer, so it
  /// is naturally shard-local (see myrinet/parallel_cluster.hpp).
  Endpoint(net::Node& node, net::Fabric& fabric, Config cfg = {});
  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  // --- Table 2 API -------------------------------------------------------
  /// FM_begin_message(dest, size, handler): start composing a message of
  /// exactly `size` payload bytes.
  sim::Task<SendStream> begin_message(int dest, std::size_t size,
                                      HandlerId handler);
  /// FM_send_piece(stream, buf, bytes): append a piece (gather).
  sim::Task<void> send_piece(SendStream& s, ByteSpan piece);
  /// FM_end_message(stream): flush and finish the message.
  sim::Task<void> end_message(SendStream& s);
  /// FM_extract(bytes): process up to `budget` bytes of received data
  /// (rounded up to a packet boundary). Returns messages completed.
  sim::Task<int> extract(std::size_t budget = kNoLimit);

  static constexpr std::size_t kNoLimit = ~std::size_t{0};

  // --- Convenience -------------------------------------------------------
  /// begin + one piece + end.
  sim::Task<void> send(int dest, HandlerId handler, ByteSpan data);
  /// Gather convenience: one message from several pieces.
  sim::Task<void> send_gather(int dest, HandlerId handler,
                              std::span<const ByteSpan> pieces);
  // --- RDMA rendezvous extension -----------------------------------------
  // Remote-memory writes bypass the FM2 staging path entirely: no packet
  // header, no host ring, no credits. The NIC DMA-fetches chunks straight
  // out of the caller's (pinned) buffer and the destination NIC places them
  // straight into the registered receive buffer — zero host copies on both
  // sides. The registration cache (Host::reg_cache) models pin-down cost.

  struct RdmaBuffer {
    std::uint32_t rkey = 0;  ///< advertise to the writer (e.g. in a CTS)
    std::uint64_t mr = 0;    ///< pin-down handle; release_rdma() when done
  };
  /// Pin `dst` and post it to the NIC as a remote-write target.
  /// `on_complete` runs on the NIC when every byte has been placed; wake
  /// any poller yourself if the completion flips a polled condition.
  RdmaBuffer post_rdma_buffer(MutByteSpan dst,
                              std::function<void()> on_complete);

  struct RdmaOp {
    /// Borrowed view of the source buffer. Every in-flight chunk shares it;
    /// use_count() == 1 means the NIC/fabric/retention no longer reference
    /// the caller's memory (safe to reuse after release_rdma(mr)).
    BufferRef ref;
    std::uint64_t mr = 0;  ///< pin-down handle; release_rdma() when done
  };
  /// Remote-memory write of `src` into `dest`'s registered buffer `rkey`.
  /// Returns once every chunk is enqueued to the NIC (send completion is
  /// the DONE/ref-drain protocol of the layer above).
  sim::Task<RdmaOp> rdma_write(int dest, std::uint32_t rkey, ByteSpan src);

  /// Drop a pin-down reference taken by post_rdma_buffer / rdma_write.
  void release_rdma(std::uint64_t mr) { node_.host().reg_cache().release(mr); }

  // --- NIC-offloaded collectives (myrinet/coll.hpp) -----------------------
  // Barrier / broadcast / reduce executed inside the NIC control program:
  // combining and fan-out forwarding happen NIC-to-NIC along a topology-
  // derived tree, and the host is interrupted exactly once per operation,
  // at completion (observed by polling, like RDMA completions — interior
  // tree steps start no handlers). Operands are packed doubles for the
  // reductions, raw bytes for broadcast, at most spec.max_bytes per op.

  enum class CollRed { kSum, kMax };

  /// Install the group on this node's NIC and run the tree-wide join
  /// handshake; returns when membership is confirmed through the root.
  /// Every member must call this with an identical spec (content and
  /// order); the group root is spec.members[0].
  sim::Task<void> coll_join(const net::CollGroupSpec& spec);
  /// Barrier across the group.
  sim::Task<void> coll_barrier(std::uint32_t group);
  /// Broadcast from the group root: `buf` is the source there and the
  /// destination everywhere else.
  sim::Task<void> coll_bcast(std::uint32_t group, MutByteSpan buf);
  /// Rooted reduction; the result lands in `data` at the root only
  /// (elsewhere `data` is read as the local contribution, never written).
  sim::Task<void> coll_reduce(std::uint32_t group, std::span<double> data,
                              CollRed red);
  /// Like coll_reduce, but the result lands in `data` on every member.
  sim::Task<void> coll_allreduce(std::uint32_t group, std::span<double> data,
                                 CollRed red);

  /// Poll extract() until `done` returns true.
  sim::Task<void> poll_until(const std::function<bool()>& done);
  /// Sleep until there is something to extract (unless data is already
  /// waiting in the ring or parked host-side).
  sim::Task<void> wait_for_traffic();
  /// Wake a sleeping poll_until so it re-checks its condition — the local
  /// termination nudge for conditions that flip without network traffic.
  void kick() { node_.nic().host_ring().poke(); }

  void register_handler(HandlerId id, HandlerFn fn);

  /// Queue work to run (in host context, may send) after the current
  /// extract's packet loop — the escape hatch for handlers that need to
  /// reply, since handlers themselves may only receive.
  void defer(std::function<sim::Task<void>()> op) {
    deferred_.push_back(std::move(op));
  }

  int id() const noexcept { return node_.id(); }
  int cluster_size() const noexcept { return n_hosts_; }
  net::Host& host() noexcept { return node_.host(); }
  std::size_t max_payload_per_packet() const noexcept { return seg_; }
  /// Cluster-wide tracer (owned by the fabric this endpoint attaches to).
  trace::Tracer& tracer() noexcept { return fabric_.tracer(); }

  struct Stats {
    std::uint64_t msgs_sent = 0;
    std::uint64_t msgs_received = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t bytes_received = 0;
    std::uint64_t packets_sent = 0;
    std::uint64_t pieces_sent = 0;
    std::uint64_t handler_starts = 0;
    std::uint64_t handler_resumes = 0;
    std::uint64_t credit_stall_events = 0;
    std::uint64_t credit_packets_sent = 0;
  };
  const Stats& stats() const noexcept { return stats_; }
  int credits_available(int peer) const { return credits_[peer]; }
  /// Messages whose handlers are currently suspended mid-receive.
  std::size_t active_handlers() const;

  // --- Invariant-checker exposure (src/fault/invariants.hpp) --------------
  /// Effective configuration after constructor defaulting.
  const Config& config() const noexcept { return cfg_; }
  /// Receive slots freed locally but not yet returned to `src` as credits.
  int credits_pending_return(int src) const { return freed_[src]; }
  /// Packets parked host-side while a blocked sender hunted for credits.
  std::size_t parked_packets() const noexcept { return pending_.size(); }
  /// Packets of future messages waiting behind an unfinished one.
  std::size_t backlogged_packets() const noexcept {
    std::size_t n = 0;
    for (const auto& st : src_state_) n += st.backlog.size();
    return n;
  }

 private:
  friend class RecvStream;

  struct MsgContext {
    MsgContext(Endpoint* ep, int src, std::uint32_t bytes, std::uint32_t seq,
               HandlerId handler)
        : stream(ep, src, bytes, seq), handler_id(handler) {}
    /// Recycle for the next message (same endpoint/source). Dropping the
    /// old task returns its frame to the coroutine-frame pool.
    void reset(std::uint32_t bytes, std::uint32_t seq, HandlerId handler) {
      stream.reset(bytes, seq);
      task = HandlerTask{};
      handler_id = handler;
      skip_rest = false;
    }
    RecvStream stream;
    HandlerTask task;
    HandlerId handler_id;
    bool skip_rest = false;  // handler returned early; drop remaining bytes
  };
  struct SrcState {
    std::unique_ptr<MsgContext> current;
    // Most recently retired context, kept so a message stream reuses one
    // MsgContext (and its stream's ring storage) instead of allocating one
    // per message.
    std::unique_ptr<MsgContext> spare;
    sim::RingQueue<net::RxPacket> backlog;  // packets of subsequent messages
  };

  sim::Task<void> flush_packet(SendStream& s, bool last);
  BufferRef stage_contrib(ByteSpan src);
  sim::Task<void> coll_run(std::uint32_t group, net::Nic::CollSubmit s);
  sim::Task<void> acquire_credit(int dest);
  std::uint16_t take_piggyback(int dest);
  void slot_freed(int src) { ++freed_[src]; }
  sim::Task<void> maybe_return_credits(int dest);
  /// Cluster-wide packet-buffer pool (owned by the fabric).
  BufferPool& pool() noexcept { return fabric_.pool(); }

  /// Route one data packet into its source's stream machinery.
  void ingest(net::RxPacket&& pkt, int* completed);
  void start_message(SrcState& st, int src, const PacketHeader& h);
  void pump(SrcState& st, int src, int* completed);
  void apply_credits(net::RxPacket& pkt);

  net::Fabric& fabric_;
  net::Node& node_;
  Config cfg_;
  int n_hosts_;
  std::size_t seg_;
  std::vector<HandlerFn> handlers_;
  std::vector<int> credits_;
  std::vector<int> freed_;
  std::vector<std::uint32_t> next_msg_seq_;
  std::vector<SrcState> src_state_;
  sim::RingQueue<net::RxPacket> pending_;  // parked while hunting for credits
  sim::RingQueue<std::function<sim::Task<void>()>> deferred_;
  Stats stats_;
};

// ---------------------------------------------------------------------------
// Table 2 free-function spelling (explicit endpoint, as in fm1).
inline sim::Task<SendStream> FM_begin_message(Endpoint& ep, int dest,
                                              std::size_t size,
                                              HandlerId handler) {
  return ep.begin_message(dest, size, handler);
}
inline sim::Task<void> FM_send_piece(Endpoint& ep, SendStream& s,
                                     ByteSpan buf) {
  return ep.send_piece(s, buf);
}
inline sim::Task<void> FM_end_message(Endpoint& ep, SendStream& s) {
  return ep.end_message(s);
}
inline sim::Task<int> FM_extract(Endpoint& ep,
                                 std::size_t bytes = Endpoint::kNoLimit) {
  return ep.extract(bytes);
}

}  // namespace fmx::fm2
