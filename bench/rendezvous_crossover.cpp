// Eager vs rendezvous/RDMA crossover on the 2-host Pentium Pro platform.
//
// Sweeps message sizes from 512 B to 128 KB and measures, in simulated
// time, three MPI transfer modes:
//   - eager:  the paper-era MPI-FM protocol (payload streams immediately;
//     unexpected data is staged, expected data scatters into the posted
//     buffer),
//   - rdzv-rdma: RTS/CTS negotiation, then the sender's NIC writes the
//     payload straight into the pinned receive buffer (remote-memory
//     write) — zero host copies on either side,
//   - rdzv-stream: the same negotiation but the payload moves over the FM
//     host-staged stream path (the rdma=false ablation).
//
// Reports one-way latency (warm pin-down cache: the ping-pong reuses its
// buffers, so registration hits after the first round) and streaming
// bandwidth, plus the zero-copy proof for the RDMA path taken from the
// process-level CopyStats counters: zero per-hop simulator copies, every
// payload byte placed exactly once by the modeled DMA engine, and
// endpoint (host CPU) copies covering control traffic only.
//
// The crossover size — the smallest swept size where rendezvous/RDMA
// one-way latency beats eager — is the number an MPI implementation would
// use for its eager_threshold on this platform. Everything here is
// simulated time, so the JSON artifact is bit-stable across machines and
// scripts/bench_check.py --rendezvous-binary compares it exactly.
//
// Usage: rendezvous_crossover [out.json]
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_util.hpp"
#include "common/copy_stats.hpp"
#include "mpi/mpi_fm2.hpp"
#include "myrinet/node.hpp"

using namespace fmx;
using bench::Measurement;

namespace {

constexpr std::size_t kSizes[] = {512,       1024,      2048,      4096,
                                  8 * 1024,  16 * 1024, 32 * 1024, 64 * 1024,
                                  128 * 1024};
constexpr int kLatencyRounds = 20;
constexpr int kBandwidthMsgs = 50;

mpi::MpiFm2Options eager_opt() {
  mpi::MpiFm2Options o;
  o.eager_threshold = ~std::size_t{0};
  return o;
}
mpi::MpiFm2Options rdzv_rdma_opt() {
  mpi::MpiFm2Options o;
  o.eager_threshold = 0;
  o.rdma = true;
  return o;
}
mpi::MpiFm2Options rdzv_stream_opt() {
  mpi::MpiFm2Options o;
  o.eager_threshold = 0;
  o.rdma = false;
  return o;
}

/// One-way latency, ping-pong / 2. Buffers are reused across rounds, so
/// the rendezvous modes run against a warm pin-down cache — the regime the
/// cache exists for.
double latency_us(const mpi::MpiFm2Options& opt, std::size_t msg_size,
                  int rounds) {
  sim::Engine eng;
  net::Cluster cluster(eng, net::ppro_fm2_cluster(2));
  mpi::MpiFm2 a(cluster, 0, {}, opt), b(cluster, 1, {}, opt);
  sim::Ps t_end = 0;
  eng.spawn([](sim::Engine& e, mpi::Comm& c, std::size_t sz, int n,
               sim::Ps& end) -> sim::Task<void> {
    Bytes m(sz), r(sz);
    for (int i = 0; i < n; ++i) {
      co_await c.send(ByteSpan{m}, 1, 0);
      co_await c.recv(MutByteSpan{r}, 1, 0);
    }
    end = e.now();
  }(eng, a, msg_size, rounds, t_end));
  eng.spawn([](mpi::Comm& c, std::size_t sz, int n) -> sim::Task<void> {
    Bytes m(sz), r(sz);
    for (int i = 0; i < n; ++i) {
      co_await c.recv(MutByteSpan{r}, 0, 0);
      co_await c.send(ByteSpan{m}, 0, 0);
    }
  }(b, msg_size, rounds));
  eng.run();
  return sim::to_us(t_end) / (2.0 * rounds);
}

struct BwResult {
  double mbs = 0;
  CopyStats::Snapshot copies;  // delta over the measured run
  net::RegCache::Stats reg;    // receiver-side pin-down cache
};

/// Streaming bandwidth with a window of pre-posted irecvs (the standard
/// methodology, and the shape that keeps the rendezvous pipeline full).
BwResult bandwidth(const mpi::MpiFm2Options& opt, std::size_t msg_size,
                   int n_msgs) {
  sim::Engine eng;
  net::Cluster cluster(eng, net::ppro_fm2_cluster(2));
  mpi::MpiFm2 tx(cluster, 0, {}, opt), rx(cluster, 1, {}, opt);
  sim::Ps t_end = 0;
  eng.spawn([](mpi::Comm& c, std::size_t sz, int n) -> sim::Task<void> {
    Bytes m(sz);
    for (int i = 0; i < n; ++i) co_await c.send(ByteSpan{m}, 1, 0);
  }(tx, msg_size, n_msgs));
  eng.spawn([](sim::Engine& e, mpi::Comm& c, std::size_t sz, int n,
               sim::Ps& end) -> sim::Task<void> {
    std::vector<Bytes> bufs(n, Bytes(sz));
    std::vector<mpi::Request> reqs;
    reqs.reserve(n);
    for (int i = 0; i < n; ++i) {
      reqs.push_back(co_await c.irecv(MutByteSpan{bufs[i]}, 0, 0));
    }
    for (auto& r : reqs) co_await c.wait(r);
    end = e.now();
  }(eng, rx, msg_size, n_msgs, t_end));
  CopyStats::instance().reset();
  eng.run();
  BwResult r;
  r.mbs = static_cast<double>(msg_size) * n_msgs / sim::to_seconds(t_end) /
          1e6;
  r.copies = CopyStats::instance().snapshot();
  r.reg = cluster.node(1).host().reg_cache().stats();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_rendezvous.json";
  const std::size_t n_sizes = sizeof(kSizes) / sizeof(kSizes[0]);

  std::puts("=== Eager vs rendezvous/RDMA crossover (2-host PPro) ===\n");
  std::printf("%10s %11s %11s %11s %11s %11s\n", "msg bytes", "eager us",
              "rdma us", "stream us", "eager MB/s", "rdma MB/s");

  double eager_lat[n_sizes], rdma_lat[n_sizes], stream_lat[n_sizes];
  double eager_bw[n_sizes], rdma_bw[n_sizes];
  BwResult rdma_bwr[n_sizes];
  for (std::size_t i = 0; i < n_sizes; ++i) {
    const std::size_t s = kSizes[i];
    eager_lat[i] = latency_us(eager_opt(), s, kLatencyRounds);
    rdma_lat[i] = latency_us(rdzv_rdma_opt(), s, kLatencyRounds);
    stream_lat[i] = latency_us(rdzv_stream_opt(), s, kLatencyRounds);
    eager_bw[i] = bandwidth(eager_opt(), s, kBandwidthMsgs).mbs;
    rdma_bwr[i] = bandwidth(rdzv_rdma_opt(), s, kBandwidthMsgs);
    rdma_bw[i] = rdma_bwr[i].mbs;
    std::printf("%10zu %11.1f %11.1f %11.1f %11.2f %11.2f\n", s,
                eager_lat[i], rdma_lat[i], stream_lat[i], eager_bw[i],
                rdma_bw[i]);
  }

  // Crossover: smallest swept size where rendezvous/RDMA latency wins.
  // sign_changes counts eager/rdma advantage flips across the sweep — a
  // clean protocol crossover flips exactly once.
  std::size_t crossover = 0;
  int sign_changes = 0;
  for (std::size_t i = 0; i < n_sizes; ++i) {
    const bool rdma_wins = rdma_lat[i] < eager_lat[i];
    if (rdma_wins && crossover == 0) crossover = kSizes[i];
    if (i > 0 && rdma_wins != (rdma_lat[i - 1] < eager_lat[i - 1])) {
      ++sign_changes;
    }
  }

  // Zero-copy proof, taken from the largest RDMA streaming run: the
  // simulator moved each payload byte exactly once (the modeled DMA
  // placement), performed no per-hop copies, and the host-CPU endpoint
  // copies account for control traffic only (<< one payload's worth).
  const BwResult& proof = rdma_bwr[n_sizes - 1];
  const std::uint64_t payload_bytes =
      static_cast<std::uint64_t>(kSizes[n_sizes - 1]) * kBandwidthMsgs;
  const bool zero_copy_ok = proof.copies.hop_copies == 0 &&
                            proof.copies.rdma_bytes == payload_bytes &&
                            proof.copies.endpoint_bytes < kSizes[n_sizes - 1];

  std::printf("\ncrossover: rendezvous/RDMA wins from %zu bytes "
              "(%d advantage flip%s)\n",
              crossover, sign_changes, sign_changes == 1 ? "" : "s");
  std::printf("zero-copy proof at %zu B x %d msgs: %llu hop copies, "
              "%llu/%llu rdma bytes placed, %llu endpoint bytes (control), "
              "pin cache %llu hits / %llu misses -> %s\n",
              kSizes[n_sizes - 1], kBandwidthMsgs,
              static_cast<unsigned long long>(proof.copies.hop_copies),
              static_cast<unsigned long long>(proof.copies.rdma_bytes),
              static_cast<unsigned long long>(payload_bytes),
              static_cast<unsigned long long>(proof.copies.endpoint_bytes),
              static_cast<unsigned long long>(proof.reg.hits),
              static_cast<unsigned long long>(proof.reg.misses),
              zero_copy_ok ? "ok" : "FAILED");

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::perror("fopen");
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"platform\": \"ppro_fm2_cluster(2)\",\n"
               "  \"latency_rounds\": %d,\n"
               "  \"bandwidth_msgs\": %d,\n"
               "  \"crossover_bytes\": %zu,\n"
               "  \"advantage_flips\": %d,\n"
               "  \"zero_copy\": {\n"
               "    \"hop_copies\": %llu,\n"
               "    \"rdma_bytes\": %llu,\n"
               "    \"payload_bytes\": %llu,\n"
               "    \"endpoint_bytes\": %llu,\n"
               "    \"reg_hits\": %llu,\n"
               "    \"reg_misses\": %llu\n"
               "  },\n"
               "  \"sizes\": [\n",
               kLatencyRounds, kBandwidthMsgs, crossover, sign_changes,
               static_cast<unsigned long long>(proof.copies.hop_copies),
               static_cast<unsigned long long>(proof.copies.rdma_bytes),
               static_cast<unsigned long long>(payload_bytes),
               static_cast<unsigned long long>(proof.copies.endpoint_bytes),
               static_cast<unsigned long long>(proof.reg.hits),
               static_cast<unsigned long long>(proof.reg.misses));
  for (std::size_t i = 0; i < n_sizes; ++i) {
    std::fprintf(f,
                 "    {\"bytes\": %zu, \"eager_lat_us\": %.3f, "
                 "\"rdma_lat_us\": %.3f, \"stream_lat_us\": %.3f, "
                 "\"eager_bw_mbs\": %.3f, \"rdma_bw_mbs\": %.3f}%s\n",
                 kSizes[i], eager_lat[i], rdma_lat[i], stream_lat[i],
                 eager_bw[i], rdma_bw[i], i + 1 < n_sizes ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return zero_copy_ok && sign_changes == 1 ? 0 : 1;
}
