// §4.1's concurrency claim, measured: "the interleaving means that one
// long message from one sender does not block other senders."
//
// Node 2 receives a bulk stream of large messages from node 0 while node 1
// sends it small request messages. We measure the small messages' delivery
// latency with handler interleaving on (FM 2.x) vs whole-message delivery
// (the FM 1.x discipline): without interleaving every bulk message parks
// the extractor until its last packet arrives, and the small messages wait
// behind it.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hpp"

using namespace fmx;
using sim::Engine;
using sim::Task;

namespace {

struct Result {
  double mean_us = 0;
  double max_us = 0;
};

Result small_msg_latency(bool whole_message, std::size_t bulk_size) {
  Engine eng;
  auto params = net::ppro_fm2_cluster(3);
  // Credits must cover the largest bulk message, or the whole-message
  // configuration deadlocks (see ablation_features) and the comparison
  // silently measures an idle receiver.
  params.nic.host_ring_slots = 512;
  net::Cluster cluster(eng, params);
  fm2::Config cfg;
  cfg.credits_per_peer = 192;
  cfg.whole_message_handlers = whole_message;
  fm2::Endpoint bulk_tx(cluster, 0, cfg);
  fm2::Endpoint small_tx(cluster, 1, cfg);
  fm2::Endpoint rx(cluster, 2, cfg);

  constexpr int kSmall = 40;
  int bulk_done = 0;
  std::vector<sim::Ps> small_sent(kSmall), small_got(kSmall);
  Bytes sink(bulk_size);
  rx.register_handler(0, [&](fm2::RecvStream& s, int) -> fm2::HandlerTask {
    co_await s.receive(sink.data(), s.msg_bytes());
    ++bulk_done;
  });
  rx.register_handler(1, [&](fm2::RecvStream& s, int) -> fm2::HandlerTask {
    std::uint32_t id;
    co_await s.receive(&id, 4);
    small_got[id] = rx.host().engine().now();
  });

  constexpr int kBulkMsgs = 6;
  eng.spawn([](fm2::Endpoint& ep, std::size_t sz) -> Task<void> {
    Bytes m(sz);
    for (int i = 0; i < kBulkMsgs; ++i) co_await ep.send(2, 0, ByteSpan{m});
  }(bulk_tx, bulk_size));
  eng.spawn([](Engine& e, fm2::Endpoint& ep,
               std::vector<sim::Ps>& sent) -> Task<void> {
    for (std::uint32_t i = 0; i < kSmall; ++i) {
      co_await e.delay(sim::us(50));  // spread over the bulk transfer
      sent[i] = e.now();
      co_await ep.send(2, 1, as_bytes_of(i));
    }
  }(eng, small_tx, small_sent));
  eng.spawn([](fm2::Endpoint& ep, int& bd,
               std::vector<sim::Ps>& got) -> Task<void> {
    co_await ep.poll_until([&] {
      if (bd < kBulkMsgs) return false;
      for (auto t : got) {
        if (t == 0) return false;
      }
      return true;
    });
  }(rx, bulk_done, small_got));
  eng.run();
  if (bulk_done != kBulkMsgs) {
    std::fprintf(stderr, "BUG: bulk transfer did not complete (%d/%d)\n",
                 bulk_done, kBulkMsgs);
    std::exit(1);
  }

  Result r;
  for (int i = 0; i < kSmall; ++i) {
    double us = sim::to_us(small_got[i] - small_sent[i]);
    r.mean_us += us / kSmall;
    r.max_us = std::max(r.max_us, us);
  }
  return r;
}

}  // namespace

int main() {
  std::puts("=== Head-of-line blocking: small-message latency under a "
            "competing bulk stream ===\n");
  std::printf("%12s %22s %22s\n", "bulk msg", "interleaved (mean/max us)",
              "whole-msg (mean/max us)");
  for (std::size_t bulk : {16UL * 1024, 64UL * 1024, 120UL * 1024}) {
    auto inter = small_msg_latency(false, bulk);
    auto whole = small_msg_latency(true, bulk);
    std::printf("%10zuKB %12.1f /%8.1f %13.1f /%8.1f\n", bulk / 1024,
                inter.mean_us, inter.max_us, whole.mean_us, whole.max_us);
  }
  std::puts("\nwith handler multithreading a small message completes as "
            "soon as its packet\nis extracted, even mid-bulk-message; "
            "whole-message delivery makes it wait for\nwhatever bulk data "
            "is ahead of it — and the wait grows with bulk size, the\n"
            "head-of-line blocking §4.1 says the stream interface removes.");
  return 0;
}
