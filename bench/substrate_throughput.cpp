// Wall-clock throughput of the simulation substrate itself, measured on the
// real workload every experiment runs: a full FM 2.x message stream between
// two endpoints (handler dispatch, packetisation, credits, NIC programs,
// link events — everything).
//
// Reports three numbers and writes them to BENCH_substrate.json:
//   - events_per_sec:     simulator events retired per wall-clock second
//   - sim_bytes_per_sec:  simulated payload bytes streamed per wall second
//     (how fast we chew through a bandwidth curve, the practical metric)
//   - allocs_per_event:   heap allocations per event in steady state,
//     counted by the operator-new hook in alloc_hook.cpp. The frame pool
//     and buffer pool exist to make this ~0; a warmup stream runs first so
//     one-time pool growth is excluded.
//
// Each configuration is measured over `repetitions` (default 5) interleaved
// untraced/traced stream pairs, and every wall-clock-derived figure is the
// MEDIAN across repetitions. A single repetition is noisy enough on a busy
// machine that the traced stream can come out faster than the untraced one
// (a negative "overhead"); interleaving plus medians makes the overhead
// estimate stable. Alloc counts are maxima across repetitions — a single
// steady-state allocation in any rep is a pool regression.
//
// Usage: substrate_throughput [msg_size] [n_msgs] [out.json] [repetitions]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "alloc_hook.hpp"
#include "bench_util.hpp"
#include "common/copy_stats.hpp"
#include "sim/engine.hpp"
#include "trace/trace.hpp"

using namespace fmx;
using Clock = std::chrono::steady_clock;

namespace {

// Streams `n` messages of `size` bytes from tx to rx and runs the engine to
// quiescence. Returns events retired during the run.
std::uint64_t stream(sim::Engine& eng, fm2::Endpoint& tx, fm2::Endpoint& rx,
                     int& got, ByteSpan payload, int n) {
  got = 0;
  eng.spawn([](fm2::Endpoint& ep, ByteSpan msg, int count) -> sim::Task<void> {
    for (int i = 0; i < count; ++i) co_await ep.send(1, 0, msg);
  }(tx, payload, n));
  eng.spawn([](fm2::Endpoint& ep, int& g, int count) -> sim::Task<void> {
    co_await ep.poll_until([&] { return g == count; });
  }(rx, got, n));
  return eng.run();
}

struct Rep {
  double wall_s = 0;
  std::uint64_t events = 0;
  std::uint64_t allocs = 0;
  std::uint64_t alloc_bytes = 0;
  double sim_s = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const std::size_t msg_size = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                        : 4096;
  const int n_msgs = argc > 2 ? std::atoi(argv[2]) : 2000;
  const char* out_path = argc > 3 ? argv[3] : "BENCH_substrate.json";
  const int reps = std::max(argc > 4 ? std::atoi(argv[4]) : 5, 1);
  const int warmup_msgs = 200;

  sim::Engine eng;
  net::Cluster cluster(eng, net::ppro_fm2_cluster(2));
  fm2::Endpoint tx(cluster, 0), rx(cluster, 1);
  int got = 0;
  Bytes sink(msg_size);
  rx.register_handler(0, [&](fm2::RecvStream& s, int) -> fm2::HandlerTask {
    if (s.msg_bytes() > 0) co_await s.receive(sink.data(), s.msg_bytes());
    ++got;
  });
  Bytes msg = pattern_bytes(3, msg_size);

  // Warmup: grow the event queue, frame pool, buffer pool, channel rings and
  // the trace ring to their steady-state footprint before anything is
  // measured. enable() preallocates chunk storage once; later enables reuse
  // it.
  stream(eng, tx, rx, got, ByteSpan{msg}, warmup_msgs);
  cluster.fabric().tracer().enable();
  stream(eng, tx, rx, got, ByteSpan{msg}, warmup_msgs);
  cluster.fabric().tracer().disable();

  // Physical vs modeled copies over one measured stream (the workload is
  // deterministic, so rep 0 speaks for all reps). real_* is what the
  // simulator process actually memcpy'd; modeled_* is what the cost model
  // charged the simulated hosts. The zero-copy data plane means the only
  // real copies left are the modeled endpoint ones — per-hop real copies
  // (retention, duplication, staging) must be zero in a serial run.
  CopyStats::instance().reset();
  const std::uint64_t mod_copies0 =
      tx.host().ledger().copies() + rx.host().ledger().copies();
  const std::uint64_t mod_bytes0 =
      tx.host().ledger().copied_bytes() + rx.host().ledger().copied_bytes();
  CopyStats::Snapshot real{};
  std::uint64_t modeled_copies = 0, modeled_copy_bytes = 0;

  std::vector<Rep> plain(reps), traced(reps);
  for (int r = 0; r < reps; ++r) {
    bench::alloc_hook_reset();
    const sim::Ps sim_start = eng.now();
    const auto t0 = Clock::now();
    plain[r].events = stream(eng, tx, rx, got, ByteSpan{msg}, n_msgs);
    const auto t1 = Clock::now();
    if (r == 0) {
      real = CopyStats::instance().snapshot();
      modeled_copies = tx.host().ledger().copies() +
                       rx.host().ledger().copies() - mod_copies0;
      modeled_copy_bytes = tx.host().ledger().copied_bytes() +
                           rx.host().ledger().copied_bytes() - mod_bytes0;
    }
    plain[r].allocs = bench::alloc_hook_count();
    plain[r].alloc_bytes = bench::alloc_hook_bytes();
    plain[r].wall_s = std::chrono::duration<double>(t1 - t0).count();
    plain[r].sim_s = sim::to_seconds(eng.now() - sim_start);

    cluster.fabric().tracer().enable();
    bench::alloc_hook_reset();
    const auto t2 = Clock::now();
    traced[r].events = stream(eng, tx, rx, got, ByteSpan{msg}, n_msgs);
    const auto t3 = Clock::now();
    traced[r].allocs = bench::alloc_hook_count();
    traced[r].wall_s = std::chrono::duration<double>(t3 - t2).count();
    cluster.fabric().tracer().disable();
  }

  std::vector<double> eps, beps, teps;
  std::uint64_t max_allocs = 0, max_alloc_bytes = 0, max_traced_allocs = 0;
  for (int r = 0; r < reps; ++r) {
    eps.push_back(plain[r].events / plain[r].wall_s);
    beps.push_back(static_cast<double>(msg_size) * n_msgs / plain[r].wall_s);
    teps.push_back(traced[r].events / traced[r].wall_s);
    max_allocs = std::max(max_allocs, plain[r].allocs);
    max_alloc_bytes = std::max(max_alloc_bytes, plain[r].alloc_bytes);
    max_traced_allocs = std::max(max_traced_allocs, traced[r].allocs);
  }
  const double events_per_sec = bench::median(eps);
  const double sim_bytes_per_sec = bench::median(beps);
  const double traced_events_per_sec = bench::median(teps);
  const double allocs_per_event =
      static_cast<double>(max_allocs) / plain[0].events;
  const double traced_allocs_per_event =
      static_cast<double>(max_traced_allocs) / traced[0].events;
  const double trace_overhead_pct =
      100.0 * (events_per_sec - traced_events_per_sec) / events_per_sec;

  std::printf("FM 2.x stream: %d msgs x %zu B, %llu events, %d reps "
              "(medians)\n", n_msgs, msg_size,
              static_cast<unsigned long long>(plain[0].events), reps);
  std::printf("  wall time          %.3f s (median rep)\n",
              plain[0].events / events_per_sec);
  std::printf("  simulated time     %.6f s\n", plain[0].sim_s);
  std::printf("  events/sec (wall)  %.3g\n", events_per_sec);
  std::printf("  sim bytes/sec      %.3g (wall-clock rate of simulated"
              " payload)\n", sim_bytes_per_sec);
  std::printf("  allocs/event       %.6f (max across reps: %llu allocs, "
              "%llu bytes)\n", allocs_per_event,
              static_cast<unsigned long long>(max_allocs),
              static_cast<unsigned long long>(max_alloc_bytes));
  std::printf("  tracing on:        %.3g events/sec, %.6f allocs/event, "
              "%.1f%% overhead\n", traced_events_per_sec,
              traced_allocs_per_event, trace_overhead_pct);
  std::printf("  real copies        %llu endpoint (%llu B), %llu per-hop "
              "(%llu B); modeled %llu (%llu B)\n",
              static_cast<unsigned long long>(real.endpoint_copies),
              static_cast<unsigned long long>(real.endpoint_bytes),
              static_cast<unsigned long long>(real.hop_copies),
              static_cast<unsigned long long>(real.hop_bytes),
              static_cast<unsigned long long>(modeled_copies),
              static_cast<unsigned long long>(modeled_copy_bytes));

  std::FILE* f = std::fopen(out_path, "w");
  if (!f) {
    std::perror("fopen");
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"workload\": \"fm2_ping_stream\",\n"
               "  \"msg_size\": %zu,\n"
               "  \"n_msgs\": %d,\n"
               "  \"repetitions\": %d,\n"
               "  \"threads\": 1,\n"
               "  \"cpus\": %u,\n"
               "  \"cpu_model\": \"%s\",\n"
               "  \"events\": %llu,\n"
               "  \"wall_seconds\": %.6f,\n"
               "  \"sim_seconds\": %.9f,\n"
               "  \"events_per_sec\": %.1f,\n"
               "  \"sim_bytes_per_sec\": %.1f,\n"
               "  \"allocs\": %llu,\n"
               "  \"alloc_bytes\": %llu,\n"
               "  \"allocs_per_event\": %.6f,\n"
               "  \"traced_events_per_sec\": %.1f,\n"
               "  \"traced_allocs_per_event\": %.6f,\n"
               "  \"trace_overhead_pct\": %.2f,\n"
               "  \"real_copies\": %llu,\n"
               "  \"real_copy_bytes\": %llu,\n"
               "  \"real_hop_copies\": %llu,\n"
               "  \"real_hop_copy_bytes\": %llu,\n"
               "  \"modeled_copies\": %llu,\n"
               "  \"modeled_copy_bytes\": %llu\n"
               "}\n",
               msg_size, n_msgs, reps,
               std::thread::hardware_concurrency(),
               bench::cpu_model().c_str(),
               static_cast<unsigned long long>(plain[0].events),
               plain[0].events / events_per_sec, plain[0].sim_s,
               events_per_sec, sim_bytes_per_sec,
               static_cast<unsigned long long>(max_allocs),
               static_cast<unsigned long long>(max_alloc_bytes),
               allocs_per_event, traced_events_per_sec,
               traced_allocs_per_event, trace_overhead_pct,
               static_cast<unsigned long long>(real.endpoint_copies),
               static_cast<unsigned long long>(real.endpoint_bytes),
               static_cast<unsigned long long>(real.hop_copies),
               static_cast<unsigned long long>(real.hop_bytes),
               static_cast<unsigned long long>(modeled_copies),
               static_cast<unsigned long long>(modeled_copy_bytes));
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return 0;
}
