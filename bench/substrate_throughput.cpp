// Wall-clock throughput of the simulation substrate itself, measured on the
// real workload every experiment runs: a full FM 2.x message stream between
// two endpoints (handler dispatch, packetisation, credits, NIC programs,
// link events — everything).
//
// Reports three numbers and writes them to BENCH_substrate.json:
//   - events_per_sec:     simulator events retired per wall-clock second
//   - sim_bytes_per_sec:  simulated payload bytes streamed per wall second
//     (how fast we chew through a bandwidth curve, the practical metric)
//   - allocs_per_event:   heap allocations per event in steady state,
//     counted by the operator-new hook in alloc_hook.cpp. The frame pool
//     and buffer pool exist to make this ~0; a warmup stream runs first so
//     one-time pool growth is excluded.
//
// A second measured stream runs with the cross-layer tracer enabled
// (traced_* keys) so bench_check.py can gate the tracing tax: the trace
// ring is preallocated at enable(), so traced_allocs_per_event must stay 0
// in steady state too.
//
// Usage: substrate_throughput [msg_size] [n_msgs] [out.json]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "alloc_hook.hpp"
#include "bench_util.hpp"
#include "sim/engine.hpp"
#include "trace/trace.hpp"

using namespace fmx;
using Clock = std::chrono::steady_clock;

namespace {

// Streams `n` messages of `size` bytes from tx to rx and runs the engine to
// quiescence. Returns events retired during the run.
std::uint64_t stream(sim::Engine& eng, fm2::Endpoint& tx, fm2::Endpoint& rx,
                     int& got, ByteSpan payload, int n) {
  got = 0;
  eng.spawn([](fm2::Endpoint& ep, ByteSpan msg, int count) -> sim::Task<void> {
    for (int i = 0; i < count; ++i) co_await ep.send(1, 0, msg);
  }(tx, payload, n));
  eng.spawn([](fm2::Endpoint& ep, int& g, int count) -> sim::Task<void> {
    co_await ep.poll_until([&] { return g == count; });
  }(rx, got, n));
  return eng.run();
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t msg_size = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                        : 4096;
  const int n_msgs = argc > 2 ? std::atoi(argv[2]) : 2000;
  const char* out_path = argc > 3 ? argv[3] : "BENCH_substrate.json";
  const int warmup_msgs = 200;

  sim::Engine eng;
  net::Cluster cluster(eng, net::ppro_fm2_cluster(2));
  fm2::Endpoint tx(cluster, 0), rx(cluster, 1);
  int got = 0;
  Bytes sink(msg_size);
  rx.register_handler(0, [&](fm2::RecvStream& s, int) -> fm2::HandlerTask {
    if (s.msg_bytes() > 0) co_await s.receive(sink.data(), s.msg_bytes());
    ++got;
  });
  Bytes msg = pattern_bytes(3, msg_size);

  // Warmup: grow the event queue, frame pool, buffer pool, and channel rings
  // to their steady-state footprint before anything is measured.
  stream(eng, tx, rx, got, ByteSpan{msg}, warmup_msgs);

  const sim::Ps sim_start = eng.now();
  bench::alloc_hook_reset();
  const auto wall_start = Clock::now();
  const std::uint64_t events = stream(eng, tx, rx, got, ByteSpan{msg}, n_msgs);
  const auto wall_end = Clock::now();
  const std::uint64_t allocs = bench::alloc_hook_count();
  const std::uint64_t alloc_bytes = bench::alloc_hook_bytes();

  const double wall_s =
      std::chrono::duration<double>(wall_end - wall_start).count();
  const double sim_s = sim::to_seconds(eng.now() - sim_start);
  const double payload_bytes = static_cast<double>(msg_size) * n_msgs;
  const double events_per_sec = events / wall_s;
  const double sim_bytes_per_sec = payload_bytes / wall_s;
  const double allocs_per_event = static_cast<double>(allocs) / events;

  // Same stream with the tracer on: the ring is preallocated at enable(),
  // so the only acceptable steady-state cost is the per-event branch+store.
  cluster.fabric().tracer().enable();
  stream(eng, tx, rx, got, ByteSpan{msg}, warmup_msgs);  // warm trace path
  bench::alloc_hook_reset();
  const auto traced_start = Clock::now();
  const std::uint64_t traced_events =
      stream(eng, tx, rx, got, ByteSpan{msg}, n_msgs);
  const auto traced_end = Clock::now();
  const std::uint64_t traced_allocs = bench::alloc_hook_count();
  cluster.fabric().tracer().disable();

  const double traced_wall_s =
      std::chrono::duration<double>(traced_end - traced_start).count();
  const double traced_events_per_sec = traced_events / traced_wall_s;
  const double traced_allocs_per_event =
      static_cast<double>(traced_allocs) / traced_events;
  const double trace_overhead_pct =
      100.0 * (events_per_sec - traced_events_per_sec) / events_per_sec;

  std::printf("FM 2.x stream: %d msgs x %zu B, %llu events\n", n_msgs,
              msg_size, static_cast<unsigned long long>(events));
  std::printf("  wall time          %.3f s\n", wall_s);
  std::printf("  simulated time     %.6f s\n", sim_s);
  std::printf("  events/sec (wall)  %.3g\n", events_per_sec);
  std::printf("  sim bytes/sec      %.3g (wall-clock rate of simulated"
              " payload)\n", sim_bytes_per_sec);
  std::printf("  allocs/event       %.6f (%llu allocs, %llu bytes)\n",
              allocs_per_event, static_cast<unsigned long long>(allocs),
              static_cast<unsigned long long>(alloc_bytes));
  std::printf("  tracing on:        %.3g events/sec, %.6f allocs/event, "
              "%.1f%% overhead\n", traced_events_per_sec,
              traced_allocs_per_event, trace_overhead_pct);

  std::FILE* f = std::fopen(out_path, "w");
  if (!f) {
    std::perror("fopen");
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"workload\": \"fm2_ping_stream\",\n"
               "  \"msg_size\": %zu,\n"
               "  \"n_msgs\": %d,\n"
               "  \"events\": %llu,\n"
               "  \"wall_seconds\": %.6f,\n"
               "  \"sim_seconds\": %.9f,\n"
               "  \"events_per_sec\": %.1f,\n"
               "  \"sim_bytes_per_sec\": %.1f,\n"
               "  \"allocs\": %llu,\n"
               "  \"alloc_bytes\": %llu,\n"
               "  \"allocs_per_event\": %.6f,\n"
               "  \"traced_events_per_sec\": %.1f,\n"
               "  \"traced_allocs_per_event\": %.6f,\n"
               "  \"trace_overhead_pct\": %.2f\n"
               "}\n",
               msg_size, n_msgs, static_cast<unsigned long long>(events),
               wall_s, sim_s, events_per_sec, sim_bytes_per_sec,
               static_cast<unsigned long long>(allocs),
               static_cast<unsigned long long>(alloc_bytes),
               allocs_per_event, traced_events_per_sec,
               traced_allocs_per_event, trace_overhead_pct);
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return 0;
}
