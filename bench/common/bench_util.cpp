#include "bench_util.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "sim/engine.hpp"

namespace fmx::bench {

using sim::Engine;
using sim::Task;

Measurement fm1_bandwidth(const net::ClusterParams& cp, std::size_t msg_size,
                          int n_msgs, fm1::Config cfg) {
  Engine eng;
  net::Cluster cluster(eng, cp);
  fm1::Endpoint tx(cluster, 0, cfg);
  fm1::Endpoint rx(cluster, 1, cfg);
  int got = 0;
  rx.register_handler(0, [&](int, ByteSpan) { ++got; });

  sim::Ps t_end = 0;
  eng.spawn([](fm1::Endpoint& ep, std::size_t size, int n) -> Task<void> {
    Bytes msg(size);
    for (int i = 0; i < n; ++i) co_await ep.send(1, 0, ByteSpan{msg});
  }(tx, msg_size, n_msgs));
  eng.spawn([](Engine& e, fm1::Endpoint& ep, int& g, int n,
               sim::Ps& end) -> Task<void> {
    co_await ep.poll_until([&] { return g == n; });
    end = e.now();
  }(eng, rx, got, n_msgs, t_end));
  auto tx_before = tx.host().ledger();
  auto rx_before = rx.host().ledger();
  eng.run();

  Measurement m;
  m.bandwidth_mbs = static_cast<double>(msg_size) * n_msgs /
                    sim::to_seconds(t_end) / 1e6;
  m.copies_send = tx.host().ledger().diff(tx_before).copies();
  m.copies_recv = rx.host().ledger().diff(rx_before).copies();
  m.allocs_send = tx.host().ledger().diff(tx_before).allocs();
  m.allocs_recv = rx.host().ledger().diff(rx_before).allocs();
  return m;
}

double fm1_latency_us(const net::ClusterParams& cp, std::size_t msg_size,
                      int rounds, fm1::Config cfg) {
  Engine eng;
  net::Cluster cluster(eng, cp);
  fm1::Endpoint a(cluster, 0, cfg);
  fm1::Endpoint b(cluster, 1, cfg);
  int got_a = 0, got_b = 0;
  a.register_handler(0, [&](int, ByteSpan) { ++got_a; });
  b.register_handler(0, [&](int, ByteSpan) { ++got_b; });
  sim::Ps t_end = 0;
  eng.spawn([](Engine& e, fm1::Endpoint& ep, int& got, int n,
               std::size_t size, sim::Ps& end) -> Task<void> {
    Bytes msg(size);
    for (int i = 0; i < n; ++i) {
      co_await ep.send(1, 0, ByteSpan{msg});
      co_await ep.poll_until([&, i] { return got > i; });
    }
    end = e.now();
  }(eng, a, got_a, rounds, msg_size, t_end));
  eng.spawn([](fm1::Endpoint& ep, int& got, int n, std::size_t size)
                -> Task<void> {
    Bytes msg(size);
    for (int i = 0; i < n; ++i) {
      co_await ep.poll_until([&, i] { return got > i; });
      co_await ep.send(0, 0, ByteSpan{msg});
    }
  }(b, got_b, rounds, msg_size));
  eng.run();
  return sim::to_us(t_end) / (2.0 * rounds);
}

Measurement fm2_bandwidth(const net::ClusterParams& cp, std::size_t msg_size,
                          int n_msgs, fm2::Config cfg) {
  Engine eng;
  net::Cluster cluster(eng, cp);
  fm2::Endpoint tx(cluster, 0, cfg);
  fm2::Endpoint rx(cluster, 1, cfg);
  int got = 0;
  Bytes sink(std::max<std::size_t>(msg_size, 1));
  rx.register_handler(0, [&](fm2::RecvStream& s, int) -> fm2::HandlerTask {
    if (s.msg_bytes() > 0) co_await s.receive(sink.data(), s.msg_bytes());
    ++got;
  });

  sim::Ps t_end = 0;
  eng.spawn([](fm2::Endpoint& ep, std::size_t size, int n) -> Task<void> {
    Bytes msg(size);
    for (int i = 0; i < n; ++i) co_await ep.send(1, 0, ByteSpan{msg});
  }(tx, msg_size, n_msgs));
  eng.spawn([](Engine& e, fm2::Endpoint& ep, int& g, int n,
               sim::Ps& end) -> Task<void> {
    co_await ep.poll_until([&] { return g == n; });
    end = e.now();
  }(eng, rx, got, n_msgs, t_end));
  auto tx_before = tx.host().ledger();
  auto rx_before = rx.host().ledger();
  eng.run();

  Measurement m;
  m.bandwidth_mbs = static_cast<double>(msg_size) * n_msgs /
                    sim::to_seconds(t_end) / 1e6;
  m.copies_send = tx.host().ledger().diff(tx_before).copies();
  m.copies_recv = rx.host().ledger().diff(rx_before).copies();
  m.allocs_send = tx.host().ledger().diff(tx_before).allocs();
  m.allocs_recv = rx.host().ledger().diff(rx_before).allocs();
  return m;
}

double fm2_latency_us(const net::ClusterParams& cp, std::size_t msg_size,
                      int rounds, fm2::Config cfg) {
  Engine eng;
  net::Cluster cluster(eng, cp);
  fm2::Endpoint a(cluster, 0, cfg);
  fm2::Endpoint b(cluster, 1, cfg);
  int got_a = 0, got_b = 0;
  Bytes sink(std::max<std::size_t>(msg_size, 1));
  auto make_handler = [&sink](int& counter) {
    return [&sink, &counter](fm2::RecvStream& s, int) -> fm2::HandlerTask {
      if (s.msg_bytes() > 0) co_await s.receive(sink.data(), s.msg_bytes());
      ++counter;
    };
  };
  a.register_handler(0, make_handler(got_a));
  b.register_handler(0, make_handler(got_b));
  sim::Ps t_end = 0;
  eng.spawn([](Engine& e, fm2::Endpoint& ep, int& got, int n,
               std::size_t size, sim::Ps& end) -> Task<void> {
    Bytes msg(size);
    for (int i = 0; i < n; ++i) {
      co_await ep.send(1, 0, ByteSpan{msg});
      co_await ep.poll_until([&, i] { return got > i; });
    }
    end = e.now();
  }(eng, a, got_a, rounds, msg_size, t_end));
  eng.spawn([](fm2::Endpoint& ep, int& got, int n, std::size_t size)
                -> Task<void> {
    Bytes msg(size);
    for (int i = 0; i < n; ++i) {
      co_await ep.poll_until([&, i] { return got > i; });
      co_await ep.send(0, 0, ByteSpan{msg});
    }
  }(b, got_b, rounds, msg_size));
  eng.run();
  return sim::to_us(t_end) / (2.0 * rounds);
}

double half_power_point(const std::function<double(std::size_t)>& bw_of,
                        double peak_mbs, std::size_t lo, std::size_t hi) {
  double target = peak_mbs / 2.0;
  std::size_t a = lo, b = hi;
  double bw_a = bw_of(a);
  if (bw_a >= target) return static_cast<double>(a);
  while (b - a > 1) {
    std::size_t mid = (a + b) / 2;
    if (bw_of(mid) >= target) {
      b = mid;
    } else {
      a = mid;
    }
  }
  return static_cast<double>(b);
}

std::vector<std::size_t> paper_sizes(std::size_t lo, std::size_t hi) {
  std::vector<std::size_t> v;
  for (std::size_t s = lo; s <= hi; s *= 2) v.push_back(s);
  return v;
}

void print_series(const std::string& title,
                  const std::vector<std::size_t>& sizes,
                  const std::vector<double>& values,
                  const std::string& unit) {
  std::printf("%s\n", title.c_str());
  std::printf("  %10s  %12s\n", "msg bytes", unit.c_str());
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    std::printf("  %10zu  %12.2f\n", sizes[i], values[i]);
  }
}

trace::BreakdownSummary fm1_breakdown(const net::ClusterParams& cp,
                                      std::size_t msg_size, int n_msgs,
                                      fm1::Config cfg) {
  Engine eng;
  net::Cluster cluster(eng, cp);
  cluster.fabric().tracer().enable();
  fm1::Endpoint tx(cluster, 0, cfg);
  fm1::Endpoint rx(cluster, 1, cfg);
  int got = 0;
  rx.register_handler(0, [&](int, ByteSpan) { ++got; });
  eng.spawn([](fm1::Endpoint& ep, std::size_t size, int n) -> Task<void> {
    Bytes msg(size);
    for (int i = 0; i < n; ++i) co_await ep.send(1, 0, ByteSpan{msg});
  }(tx, msg_size, n_msgs));
  eng.spawn([](fm1::Endpoint& ep, int& g, int n) -> Task<void> {
    co_await ep.poll_until([&] { return g == n; });
  }(rx, got, n_msgs));
  eng.run();
  return trace::summarize_breakdown(cluster.fabric().tracer());
}

trace::BreakdownSummary fm2_breakdown(const net::ClusterParams& cp,
                                      std::size_t msg_size, int n_msgs,
                                      fm2::Config cfg) {
  Engine eng;
  net::Cluster cluster(eng, cp);
  cluster.fabric().tracer().enable();
  fm2::Endpoint tx(cluster, 0, cfg);
  fm2::Endpoint rx(cluster, 1, cfg);
  int got = 0;
  Bytes sink(std::max<std::size_t>(msg_size, 1));
  rx.register_handler(0, [&](fm2::RecvStream& s, int) -> fm2::HandlerTask {
    if (s.msg_bytes() > 0) co_await s.receive(sink.data(), s.msg_bytes());
    ++got;
  });
  eng.spawn([](fm2::Endpoint& ep, std::size_t size, int n) -> Task<void> {
    Bytes msg(size);
    for (int i = 0; i < n; ++i) co_await ep.send(1, 0, ByteSpan{msg});
  }(tx, msg_size, n_msgs));
  eng.spawn([](fm2::Endpoint& ep, int& g, int n) -> Task<void> {
    co_await ep.poll_until([&] { return g == n; });
  }(rx, got, n_msgs));
  eng.run();
  return trace::summarize_breakdown(cluster.fabric().tracer());
}

void print_breakdown_rows(
    const std::string& title,
    const std::vector<std::pair<std::string, trace::BreakdownSummary>>&
        rows) {
  std::printf("%s\n", title.c_str());
  std::printf("  %-18s %6s %9s %9s %9s %10s %9s %9s %9s %9s\n", "stack",
              "msgs", "host us", "wire us", "queue us", "handler us",
              "total us", "p50 us", "p99 us", "p999 us");
  for (const auto& [label, s] : rows) {
    std::printf(
        "  %-18s %6llu %9.3f %9.3f %9.3f %10.3f %9.3f %9.3f %9.3f %9.3f\n",
        label.c_str(), static_cast<unsigned long long>(s.messages), s.host_us,
        s.wire_us, s.queue_us, s.handler_us, s.total_us, s.total_p50_us,
        s.total_p99_us, s.total_p999_us);
  }
}

}  // namespace fmx::bench

// Defined out of line to keep mpi headers out of bench_util.hpp users that
// only need the FM layers.
#include "mpi/mpi_fm1.hpp"
#include "mpi/mpi_fm2.hpp"

namespace fmx::bench {

namespace {

template <typename MpiT>
Measurement mpi_bandwidth_impl(const net::ClusterParams& cp,
                               std::size_t msg_size, int n_msgs) {
  Engine eng;
  net::Cluster cluster(eng, cp);
  MpiT tx(cluster, 0), rx(cluster, 1);
  sim::Ps t_end = 0;
  eng.spawn([](mpi::Comm& c, std::size_t sz, int n) -> Task<void> {
    Bytes m(sz);
    for (int i = 0; i < n; ++i) co_await c.send(ByteSpan{m}, 1, 0);
  }(tx, msg_size, n_msgs));
  eng.spawn([](Engine& e, mpi::Comm& c, std::size_t sz, int n,
               sim::Ps& end) -> Task<void> {
    std::vector<Bytes> bufs(n, Bytes(sz));
    std::vector<mpi::Request> reqs;
    reqs.reserve(n);
    for (int i = 0; i < n; ++i) {
      reqs.push_back(co_await c.irecv(MutByteSpan{bufs[i]}, 0, 0));
    }
    for (auto& r : reqs) co_await c.wait(r);
    end = e.now();
  }(eng, rx, msg_size, n_msgs, t_end));
  eng.run();
  Measurement m;
  m.bandwidth_mbs = static_cast<double>(msg_size) * n_msgs /
                    sim::to_seconds(t_end) / 1e6;
  return m;
}

template <typename MpiT>
double mpi_latency_impl(const net::ClusterParams& cp, std::size_t msg_size,
                        int rounds) {
  Engine eng;
  net::Cluster cluster(eng, cp);
  MpiT a(cluster, 0), b(cluster, 1);
  sim::Ps t_end = 0;
  eng.spawn([](Engine& e, mpi::Comm& c, std::size_t sz, int n,
               sim::Ps& end) -> Task<void> {
    Bytes m(sz), r(sz);
    for (int i = 0; i < n; ++i) {
      co_await c.send(ByteSpan{m}, 1, 0);
      co_await c.recv(MutByteSpan{r}, 1, 0);
    }
    end = e.now();
  }(eng, a, msg_size, rounds, t_end));
  eng.spawn([](mpi::Comm& c, std::size_t sz, int n) -> Task<void> {
    Bytes m(sz), r(sz);
    for (int i = 0; i < n; ++i) {
      co_await c.recv(MutByteSpan{r}, 0, 0);
      co_await c.send(ByteSpan{m}, 0, 0);
    }
  }(b, msg_size, rounds));
  eng.run();
  return sim::to_us(t_end) / (2.0 * rounds);
}

}  // namespace

Measurement mpi_bandwidth(MpiGen gen, const net::ClusterParams& cp,
                          std::size_t msg_size, int n_msgs) {
  return gen == MpiGen::kFm1
             ? mpi_bandwidth_impl<mpi::MpiFm1>(cp, msg_size, n_msgs)
             : mpi_bandwidth_impl<mpi::MpiFm2>(cp, msg_size, n_msgs);
}

double mpi_latency_us(MpiGen gen, const net::ClusterParams& cp,
                      std::size_t msg_size, int rounds) {
  return gen == MpiGen::kFm1
             ? mpi_latency_impl<mpi::MpiFm1>(cp, msg_size, rounds)
             : mpi_latency_impl<mpi::MpiFm2>(cp, msg_size, rounds);
}

std::string cpu_model() {
  std::FILE* f = std::fopen("/proc/cpuinfo", "r");
  if (f == nullptr) return "unknown";
  char line[256];
  std::string model = "unknown";
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "model name", 10) == 0) {
      const char* colon = std::strchr(line, ':');
      if (colon != nullptr) {
        model = colon + 1;
        while (!model.empty() && (model.front() == ' ' || model.front() == '\t'))
          model.erase(model.begin());
        while (!model.empty() && (model.back() == '\n' || model.back() == ' '))
          model.pop_back();
      }
      break;
    }
  }
  std::fclose(f);
  return model;
}

double median(std::vector<double> v) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const std::size_t mid = v.size() / 2;
  return v.size() % 2 != 0 ? v[mid] : 0.5 * (v[mid - 1] + v[mid]);
}

}  // namespace fmx::bench
