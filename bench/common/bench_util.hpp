// Shared measurement harness for the figure-reproduction benchmarks.
// Bandwidth tests stream a window of messages end to end and divide payload
// bytes by elapsed simulated time; latency tests halve a ping-pong round
// trip — the same methodology as the paper's microbenchmarks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "fm1/fm1.hpp"
#include "fm2/fm2.hpp"
#include "myrinet/params.hpp"
#include "trace/export.hpp"

namespace fmx::bench {

struct Measurement {
  double bandwidth_mbs = 0;   // payload MB/s (1 MB = 1e6 B)
  double latency_us = 0;      // one-way, when measured
  std::uint64_t copies_recv = 0;
  std::uint64_t copies_send = 0;
  // Buffer-pool misses (fresh data-path heap allocations) during the
  // measured region; zero once the pool is warm.
  std::uint64_t allocs_send = 0;
  std::uint64_t allocs_recv = 0;
};

/// Raw FM 1.x streaming bandwidth for messages of `msg_size` bytes.
Measurement fm1_bandwidth(const net::ClusterParams& cp, std::size_t msg_size,
                          int n_msgs = 200, fm1::Config cfg = {});

/// FM 1.x one-way latency (ping-pong / 2) for `msg_size`-byte messages.
double fm1_latency_us(const net::ClusterParams& cp, std::size_t msg_size,
                      int rounds = 50, fm1::Config cfg = {});

/// Raw FM 2.x streaming bandwidth.
Measurement fm2_bandwidth(const net::ClusterParams& cp, std::size_t msg_size,
                          int n_msgs = 200, fm2::Config cfg = {});

/// FM 2.x one-way latency.
double fm2_latency_us(const net::ClusterParams& cp, std::size_t msg_size,
                      int rounds = 50, fm2::Config cfg = {});

/// MPI bandwidth: a window of pre-posted irecvs (standard methodology),
/// sender streams `n_msgs` messages. Backend selected by template.
enum class MpiGen { kFm1, kFm2 };
Measurement mpi_bandwidth(MpiGen gen, const net::ClusterParams& cp,
                          std::size_t msg_size, int n_msgs = 100);

/// MPI one-way latency (ping-pong / 2).
double mpi_latency_us(MpiGen gen, const net::ClusterParams& cp,
                      std::size_t msg_size, int rounds = 40);

/// Per-message latency breakdown (host / wire / queue / handler columns,
/// from the cross-layer tracer) for a traced streaming run.
trace::BreakdownSummary fm1_breakdown(const net::ClusterParams& cp,
                                      std::size_t msg_size, int n_msgs = 100,
                                      fm1::Config cfg = {});
trace::BreakdownSummary fm2_breakdown(const net::ClusterParams& cp,
                                      std::size_t msg_size, int n_msgs = 100,
                                      fm2::Config cfg = {});

/// Print breakdown summaries as a table, one row per (label, summary).
void print_breakdown_rows(
    const std::string& title,
    const std::vector<std::pair<std::string, trace::BreakdownSummary>>& rows);

/// N1/2: smallest message size (bytes, searched over `grid`) whose bandwidth
/// reaches half of `peak_mbs`. Returns the interpolated size.
double half_power_point(const std::function<double(std::size_t)>& bw_of,
                        double peak_mbs, std::size_t lo = 4,
                        std::size_t hi = 8192);

/// The message-size grid the paper's figures use.
std::vector<std::size_t> paper_sizes(std::size_t lo = 16,
                                     std::size_t hi = 2048);

/// Print a two-column series in a uniform format.
void print_series(const std::string& title,
                  const std::vector<std::size_t>& sizes,
                  const std::vector<double>& values,
                  const std::string& unit);

/// First "model name" line from /proc/cpuinfo ("unknown" elsewhere). The
/// wall-clock JSON artifacts record it so a reader can judge whether two
/// runs are comparable.
std::string cpu_model();

/// Median of `v` (by copy; v may be unsorted). 0 for an empty vector.
double median(std::vector<double> v);

}  // namespace fmx::bench
