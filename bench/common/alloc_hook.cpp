// Counting replacements for the global allocation functions. See
// alloc_hook.hpp for why this lives outside every library target.
//
// The simulator is single-threaded, but google-benchmark spawns helper
// threads, so the counters are atomics with relaxed ordering (we only ever
// read them from the measuring thread between quiescent points).
#include "alloc_hook.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

#include <execinfo.h>
#include <unistd.h>

namespace {

std::atomic<std::uint64_t> g_count{0};
std::atomic<std::uint64_t> g_bytes{0};
std::atomic<bool> g_trap{false};
std::atomic<int> g_trap_left{0};

void maybe_trap() {
  if (!g_trap.load(std::memory_order_relaxed)) return;
  if (g_trap_left.fetch_sub(1, std::memory_order_relaxed) <= 0) return;
  void* frames[24];
  int n = ::backtrace(frames, 24);
  ::write(2, "--- alloc ---\n", 14);
  ::backtrace_symbols_fd(frames, n, 2);
}

void* counted_alloc(std::size_t n) {
  g_count.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(n, std::memory_order_relaxed);
  maybe_trap();
  // operator new must never return nullptr for a zero-size request.
  void* p = std::malloc(n ? n : 1);
  if (!p) throw std::bad_alloc{};
  return p;
}

void* counted_alloc_aligned(std::size_t n, std::size_t align) {
  g_count.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(n, std::memory_order_relaxed);
  maybe_trap();
  // aligned_alloc requires the size to be a multiple of the alignment.
  std::size_t rounded = (n + align - 1) / align * align;
  void* p = std::aligned_alloc(align, rounded ? rounded : align);
  if (!p) throw std::bad_alloc{};
  return p;
}

}  // namespace

namespace fmx::bench {

std::uint64_t alloc_hook_count() {
  return g_count.load(std::memory_order_relaxed);
}

std::uint64_t alloc_hook_bytes() {
  return g_bytes.load(std::memory_order_relaxed);
}

void alloc_hook_reset() {
  g_count.store(0, std::memory_order_relaxed);
  g_bytes.store(0, std::memory_order_relaxed);
  if (std::getenv("FMX_ALLOC_TRAP")) {
    // Prime libgcc's unwinder outside the counted region (its first call
    // allocates), then print a backtrace for every subsequent allocation.
    g_trap.store(false, std::memory_order_relaxed);
    void* frames[4];
    ::backtrace(frames, 4);
    g_trap_left.store(16, std::memory_order_relaxed);
    g_trap.store(true, std::memory_order_relaxed);
    ::write(2, "=== reset ===\n", 14);
  }
}

}  // namespace fmx::bench

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  try {
    return counted_alloc(n);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  try {
    return counted_alloc(n);
  } catch (...) {
    return nullptr;
  }
}
void* operator new(std::size_t n, std::align_val_t a) {
  return counted_alloc_aligned(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return counted_alloc_aligned(n, static_cast<std::size_t>(a));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
