// Counting replacements for the global allocation functions. See
// alloc_hook.hpp for why this lives outside every library target.
//
// The simulator is single-threaded, but google-benchmark spawns helper
// threads, so the counters are atomics with relaxed ordering (we only ever
// read them from the measuring thread between quiescent points).
#include "alloc_hook.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<std::uint64_t> g_count{0};
std::atomic<std::uint64_t> g_bytes{0};

void* counted_alloc(std::size_t n) {
  g_count.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(n, std::memory_order_relaxed);
  // operator new must never return nullptr for a zero-size request.
  void* p = std::malloc(n ? n : 1);
  if (!p) throw std::bad_alloc{};
  return p;
}

void* counted_alloc_aligned(std::size_t n, std::size_t align) {
  g_count.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(n, std::memory_order_relaxed);
  // aligned_alloc requires the size to be a multiple of the alignment.
  std::size_t rounded = (n + align - 1) / align * align;
  void* p = std::aligned_alloc(align, rounded ? rounded : align);
  if (!p) throw std::bad_alloc{};
  return p;
}

}  // namespace

namespace fmx::bench {

std::uint64_t alloc_hook_count() {
  return g_count.load(std::memory_order_relaxed);
}

std::uint64_t alloc_hook_bytes() {
  return g_bytes.load(std::memory_order_relaxed);
}

void alloc_hook_reset() {
  g_count.store(0, std::memory_order_relaxed);
  g_bytes.store(0, std::memory_order_relaxed);
}

}  // namespace fmx::bench

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  try {
    return counted_alloc(n);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  try {
    return counted_alloc(n);
  } catch (...) {
    return nullptr;
  }
}
void* operator new(std::size_t n, std::align_val_t a) {
  return counted_alloc_aligned(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return counted_alloc_aligned(n, static_cast<std::size_t>(a));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
