// Process-wide heap-allocation counter for benchmark binaries.
//
// Linking alloc_hook.cpp into a binary replaces the global operator
// new/delete with counting versions (backed by malloc/free). The counters
// answer "how many heap allocations did this region of code perform" —
// the metric the allocation-free hot-path work is judged by. The hook is
// deliberately NOT part of any library target: only benchmark executables
// that want the counters link the extra source file, so the simulator and
// tests run with the stock allocator.
#pragma once

#include <cstdint>

namespace fmx::bench {

/// Total operator-new calls since process start (or last reset).
std::uint64_t alloc_hook_count();

/// Total bytes requested from operator new since process start (or reset).
std::uint64_t alloc_hook_bytes();

/// Zero both counters. If the environment variable FMX_ALLOC_TRAP is set,
/// also arm a debugging trap: the next few allocations (16) each print a
/// backtrace to stderr, attributing any steady-state alloc the counters
/// catch. Costs one relaxed atomic load per allocation when unset.
void alloc_hook_reset();

}  // namespace fmx::bench
