// Headline metrics table: every latency / peak-bandwidth / N1/2 number the
// paper quotes in the text, paper-vs-measured. This is the one-stop
// reproduction summary (EXPERIMENTS.md is generated from this output).
#include <cstdio>

#include "bench_util.hpp"

using namespace fmx;
using namespace fmx::bench;

int main() {
  auto sparc = net::sparc_fm1_cluster(2);
  auto ppro = net::ppro_fm2_cluster(2);

  std::puts("=== Headline reproduction table ===\n");
  std::printf("%-22s %-26s %-14s %-14s\n", "metric", "paper", "measured",
              "verdict");
  auto row = [](const char* metric, const char* paper, double measured,
                const char* unit, double lo, double hi) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.1f %s", measured, unit);
    bool ok = measured >= lo && measured <= hi;
    std::printf("%-22s %-26s %-14s %-14s\n", metric, paper, buf,
                ok ? "in band" : "OUT OF BAND");
  };

  // FM 1.x (§3, Figure 3b)
  Measurement fm1_m = fm1_bandwidth(sparc, 2048);
  double fm1_peak = fm1_m.bandwidth_mbs;
  double fm1_lat = fm1_latency_us(sparc, 16);
  double fm1_n12 = half_power_point(
      [&](std::size_t s) { return fm1_bandwidth(sparc, s).bandwidth_mbs; },
      fm1_peak);
  row("FM 1.x latency", "14 us", fm1_lat, "us", 11, 17);
  row("FM 1.x peak BW", "17.6 MB/s", fm1_peak, "MB/s", 15.8, 19.4);
  row("FM 1.x N1/2", "54 B", fm1_n12, "B", 40, 70);

  // FM 2.x (§4.2, Figure 5)
  Measurement fm2_m = fm2_bandwidth(ppro, 8192);
  double fm2_peak = fm2_m.bandwidth_mbs;
  double fm2_lat = fm2_latency_us(ppro, 16);
  double fm2_n12 = half_power_point(
      [&](std::size_t s) { return fm2_bandwidth(ppro, s).bandwidth_mbs; },
      fm2_peak);
  row("FM 2.x latency", "11 us", fm2_lat, "us", 9, 13);
  row("FM 2.x peak BW", "77 MB/s", fm2_peak, "MB/s", 69, 85);
  row("FM 2.x N1/2", "< 256 B", fm2_n12, "B", 0, 256);

  // MPI-FM on FM 1.x (§3.2, Figure 4)
  double mpi1 = mpi_bandwidth(MpiGen::kFm1, sparc, 2048).bandwidth_mbs;
  double f1 = fm1_bandwidth(sparc, 2048).bandwidth_mbs;
  row("MPI-FM1 peak eff", "<= 35% of FM", 100.0 * mpi1 / f1, "%", 15, 40);
  row("MPI-FM1 latency", "~19 us", mpi_latency_us(MpiGen::kFm1, sparc, 16),
      "us", 15, 27);

  // MPI-FM on FM 2.x (§4.2, Figure 6)
  double mpi2_16 = mpi_bandwidth(MpiGen::kFm2, ppro, 16).bandwidth_mbs;
  double f2_16 = fm2_bandwidth(ppro, 16).bandwidth_mbs;
  double mpi2_2k = mpi_bandwidth(MpiGen::kFm2, ppro, 2048).bandwidth_mbs;
  double f2_2k = fm2_bandwidth(ppro, 2048).bandwidth_mbs;
  row("MPI-FM2 eff @16B", "over 70%", 100.0 * mpi2_16 / f2_16, "%", 62, 95);
  row("MPI-FM2 eff @2KB", "~90% ('70 of 77')", 100.0 * mpi2_2k / f2_2k, "%",
      85, 99);
  row("MPI-FM2 peak BW", "70 MB/s", mpi2_2k, "MB/s", 62, 78);
  row("MPI-FM2 latency", "17 us", mpi_latency_us(MpiGen::kFm2, ppro, 16),
      "us", 12, 20);

  // Data-path cost per message during the 200-message bandwidth streams.
  // Copies are simulated memcpy charges; allocs are buffer-pool misses
  // (fresh heap allocations). Allocs should drop to ~0 once the pool is
  // warm — a nonzero steady-state value means the pool is being bypassed.
  std::puts("\n=== Per-message data-path costs (bandwidth streams) ===\n");
  std::printf("%-22s %12s %12s %12s %12s\n", "layer", "copies/msg tx",
              "copies/msg rx", "allocs/msg tx", "allocs/msg rx");
  auto cost_row = [](const char* layer, const Measurement& m, int n_msgs) {
    std::printf("%-22s %12.2f %12.2f %12.2f %12.2f\n", layer,
                static_cast<double>(m.copies_send) / n_msgs,
                static_cast<double>(m.copies_recv) / n_msgs,
                static_cast<double>(m.allocs_send) / n_msgs,
                static_cast<double>(m.allocs_recv) / n_msgs);
  };
  cost_row("FM 1.x @2KB", fm1_m, 200);
  cost_row("FM 2.x @8KB", fm2_m, 200);

  // Per-message latency breakdown from the cross-layer tracer: where one
  // message's lifetime goes (mirrors the paper's Table 2 cost structure).
  // FM 1.x queue time includes reassembly (handler only runs after the
  // last packet); FM 2.x handler time overlaps trailing-packet wire time —
  // that overlap is the layer-interleaving win.
  std::puts("\n=== Per-message latency breakdown (traced streams, mean) ===");
  print_breakdown_rows(
      "",
      {{"FM 1.x @2KB", fm1_breakdown(sparc, 2048)},
       {"FM 2.x @2KB", fm2_breakdown(ppro, 2048)},
       {"FM 2.x @8KB", fm2_breakdown(ppro, 8192)}});

  std::puts("\nbands are documented in EXPERIMENTS.md; absolute numbers are\n"
            "calibrated, shapes and ratios are emergent from protocol code.");
  return 0;
}
