// §2 motivation, made executable: the traffic studies (§2.1), the legacy-
// protocol overhead argument (§2.2), and what both FM generations deliver
// to realistic short-message-dominated mixes.
#include <cstdio>

#include "analytic/protocol_model.hpp"
#include "bench_util.hpp"
#include "workload/traffic.hpp"

using namespace fmx;
using namespace fmx::bench;
using workload::SizeDistribution;

int main() {
  std::puts("=== §2.1: message-size studies (modelled distributions) ===\n");
  std::printf("%-22s %10s %12s %12s\n", "study", "mean B", "<=200 B",
              "<=576 B");
  for (const auto& d : {SizeDistribution::gusella_ethernet(),
                        SizeDistribution::kay_pasquale_tcp(),
                        SizeDistribution::kay_pasquale_udp(),
                        SizeDistribution::suny_buffalo()}) {
    std::printf("%-22s %10.0f %11.1f%% %11.1f%%\n",
                std::string(d.name()).c_str(), d.mean(),
                100 * d.fraction_at_most(200),
                100 * d.fraction_at_most(576));
  }

  std::puts("\n=== §2.2: what 125 us/packet overhead does to such traffic "
            "===\n");
  // "for typical packet size distributions (< 256 bytes), bandwidths of no
  // greater than 2 megabytes/second could be sustained"
  using namespace fmx::analytic;
  for (std::size_t s : {64UL, 128UL, 256UL}) {
    std::printf("  %4zu B messages over UDP-class stack: %.2f MB/s\n", s,
                delivered_bandwidth(s, k1GbitPerSec, kFig1OverheadSec) / 1e6);
  }

  std::puts("\n=== delivered bandwidth on the Gusella mix, per message "
            "size class ===\n");
  auto sparc = net::sparc_fm1_cluster(2);
  auto ppro = net::ppro_fm2_cluster(2);
  std::printf("%-12s %14s %14s %14s\n", "class", "FM 1.x MB/s",
              "FM 2.x MB/s", "MPI-FM2 MB/s");
  struct Cls {
    const char* name;
    std::size_t size;
  };
  for (auto [name, size] : {Cls{"tiny(32B)", 32}, Cls{"short(128B)", 128},
                            Cls{"mid(576B)", 576}, Cls{"bulk(1500B)", 1500}}) {
    std::printf("%-12s %14.2f %14.2f %14.2f\n", name,
                fm1_bandwidth(sparc, size).bandwidth_mbs,
                fm2_bandwidth(ppro, size).bandwidth_mbs,
                mpi_bandwidth(MpiGen::kFm2, ppro, size).bandwidth_mbs);
  }
  std::puts("\nthe paper's motivation quantified: on the traffic that "
            "dominates real networks,\noverhead — not link speed — decides "
            "delivered bandwidth; see examples/traffic_replay\nfor a full "
            "mixed-size replay through both MPI stacks.");
  return 0;
}
