// Ablation: eager vs rendezvous point-to-point protocol in MPI-FM 2
// (extension beyond the paper's eager-only MPI-FM). Two effects:
//  * pre-posted streaming: rendezvous pays an RTS/CTS round trip per
//    message — eager wins until messages are large enough to amortize it;
//  * unexpected flood: eager stages every payload (memory + copy),
//    rendezvous queues only 24-byte envelopes.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "mpi/mpi_fm2.hpp"

using namespace fmx;
using namespace fmx::bench;
using sim::Engine;
using sim::Task;

namespace {

double bw(std::size_t msg, std::size_t threshold, int n_msgs = 60) {
  Engine eng;
  net::Cluster cluster(eng, net::ppro_fm2_cluster(2));
  mpi::MpiFm2Options opt;
  opt.eager_threshold = threshold;
  mpi::MpiFm2 tx(cluster, 0, {}, opt), rx(cluster, 1, {}, opt);
  sim::Ps t_end = 0;
  eng.spawn([](mpi::Comm& c, std::size_t sz, int n) -> Task<void> {
    Bytes m(sz);
    for (int i = 0; i < n; ++i) co_await c.send(ByteSpan{m}, 1, 0);
  }(tx, msg, n_msgs));
  eng.spawn([](Engine& e, mpi::Comm& c, std::size_t sz, int n,
               sim::Ps& end) -> Task<void> {
    std::vector<Bytes> bufs(n, Bytes(sz));
    std::vector<mpi::Request> reqs;
    for (int i = 0; i < n; ++i) {
      reqs.push_back(co_await c.irecv(MutByteSpan{bufs[i]}, 0, 0));
    }
    for (auto& r : reqs) co_await c.wait(r);
    end = e.now();
  }(eng, rx, msg, n_msgs, t_end));
  eng.run();
  return static_cast<double>(msg) * n_msgs / sim::to_seconds(t_end) / 1e6;
}

// Copied bytes on the receiver when the whole flood arrives unexpected.
std::uint64_t unexpected_copied(std::size_t msg, std::size_t threshold) {
  Engine eng;
  net::Cluster cluster(eng, net::ppro_fm2_cluster(2));
  mpi::MpiFm2Options opt;
  opt.eager_threshold = threshold;
  mpi::MpiFm2 tx(cluster, 0, {}, opt), rx(cluster, 1, {}, opt);
  constexpr int kN = 8;
  bool done = false;
  eng.spawn([](mpi::Comm& c, std::size_t sz) -> Task<void> {
    Bytes m(sz);
    for (int i = 0; i < kN; ++i) co_await c.send(ByteSpan{m}, 1, 0);
  }(tx, msg));
  eng.spawn([](Engine& e, mpi::MpiFm2& c, std::size_t sz,
               bool& d) -> Task<void> {
    co_await e.delay(sim::ms(5));     // everything arrives first
    (void)co_await c.fm().extract();  // ...unexpected
    for (int i = 0; i < kN; ++i) {
      Bytes buf(sz);
      co_await c.recv(MutByteSpan{buf}, 0, 0);
    }
    d = true;
  }(eng, rx, msg, done));
  auto before = rx.fm().host().ledger();
  eng.run();
  return done ? rx.fm().host().ledger().diff(before).copied_bytes() : 0;
}

}  // namespace

int main() {
  constexpr std::size_t kEagerOnly = ~std::size_t{0};
  std::puts("=== Ablation: eager vs rendezvous, pre-posted streaming "
            "(MB/s) ===\n");
  std::printf("%10s %12s %14s\n", "msg bytes", "eager", "rendezvous");
  for (std::size_t s : {1024UL, 4096UL, 16384UL, 65536UL, 262144UL}) {
    std::printf("%10zu %12.2f %14.2f\n", s, bw(s, kEagerOnly), bw(s, 1024));
  }

  std::puts("\n=== Ablation: receiver copy traffic when a flood of 32 KB "
            "messages arrives unexpected ===\n");
  std::uint64_t eager = unexpected_copied(32 * 1024, kEagerOnly);
  std::uint64_t rdzv = unexpected_copied(32 * 1024, 1024);
  std::printf("  eager:      %8.1f KB copied host-side (stage + deliver)\n",
              eager / 1024.0);
  std::printf("  rendezvous: %8.1f KB copied host-side (deliver only)\n",
              rdzv / 1024.0);
  std::puts("\neager amortizes no handshake but stages what the receiver "
            "hasn't asked for;\nrendezvous defers payload until the buffer "
            "is known — the classic protocol\ncrossover every MPI since has "
            "shipped with.");
  return 0;
}
