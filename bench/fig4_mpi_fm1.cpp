// Figure 4: initial MPI-FM performance compared to FM 1.x —
// (a) absolute bandwidth, (b) % efficiency. The paper: MPI-FM fails to
// deliver more than ~35% of FM bandwidth (about 20% at the headline), flat
// around 5-6 MB/s, because of the copies the FM 1.x interface forces.
#include <cstdio>

#include "bench_util.hpp"

using namespace fmx;
using namespace fmx::bench;

int main() {
  auto platform = net::sparc_fm1_cluster(2);
  auto sizes = paper_sizes(16, 2048);

  std::puts("=== Figure 4: MPI-FM (initial, over FM 1.x) vs FM 1.x ===\n");
  std::printf("%10s %12s %12s %14s\n", "msg bytes", "FM MB/s", "MPI MB/s",
              "efficiency %");
  double peak_eff = 0;
  for (auto s : sizes) {
    double f = fm1_bandwidth(platform, s).bandwidth_mbs;
    double m = mpi_bandwidth(MpiGen::kFm1, platform, s).bandwidth_mbs;
    double eff = 100.0 * m / f;
    if (s >= 256) peak_eff = std::max(peak_eff, eff);
    std::printf("%10zu %12.2f %12.2f %14.1f\n", s, f, m, eff);
  }
  double lat = mpi_latency_us(MpiGen::kFm1, platform, 16);
  std::printf("\nMPI-FM latency(16 B): %.1f us (paper's MPI-FM on FM 1.x: "
              "~19 us)\n", lat);
  std::printf("peak-region efficiency: %.0f%% "
              "(paper: 'failing to deliver more than 35%%')\n", peak_eff);
  std::puts("shape check: the MPI-FM curve flattens around 5-6 MB/s while\n"
            "FM keeps rising — the staging/temp/user copy chain on a slow\n"
            "host eats the bandwidth, exactly the paper's Figure 4 story.");
  return 0;
}
