// Cluster-size scaling of MPI-FM 2.0 collectives on the simulated Myrinet
// fabric (multiple 8-port switches chained beyond 8 hosts). Latencies
// should grow ~logarithmically with ranks for the tree/dissemination
// algorithms; allgather's ring grows linearly — visible in the table.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "mpi/mpi_fm2.hpp"

using namespace fmx;
using sim::Engine;
using sim::Task;

namespace {

enum class Op { kBarrier, kBcast, kAllreduce, kAllgather };

double collective_us(Op op, int ranks, int iters = 20) {
  Engine eng;
  net::Cluster cluster(eng, net::ppro_fm2_cluster(ranks));
  std::vector<std::unique_ptr<mpi::MpiFm2>> comms;
  for (int r = 0; r < ranks; ++r) {
    comms.push_back(std::make_unique<mpi::MpiFm2>(cluster, r));
  }
  sim::Ps t_end = 0;
  for (int r = 0; r < ranks; ++r) {
    eng.spawn([](Engine& e, mpi::Comm& c, Op o, int n, int nranks,
                 sim::Ps& end) -> Task<void> {
      Bytes buf(256);
      std::vector<double> v(8, 1.0);
      Bytes all(nranks * 64);
      Bytes block(64);
      for (int i = 0; i < n; ++i) {
        switch (o) {
          case Op::kBarrier: co_await c.barrier(); break;
          case Op::kBcast: co_await c.bcast(MutByteSpan{buf}, 0); break;
          case Op::kAllreduce:
            co_await c.allreduce_sum(std::span<double>{v});
            break;
          case Op::kAllgather:
            co_await c.allgather(ByteSpan{block}, MutByteSpan{all});
            break;
        }
      }
      if (c.rank() == 0) end = e.now();
    }(eng, *comms[r], op, iters, ranks, t_end));
  }
  eng.run();
  return sim::to_us(t_end) / iters;
}

}  // namespace

int main() {
  std::puts("=== MPI-FM 2.0 collective latency vs cluster size (us per "
            "operation) ===\n");
  std::printf("%8s %10s %10s %12s %12s\n", "ranks", "barrier", "bcast 256B",
              "allreduce 8d", "allgather");
  for (int n : {2, 4, 8, 16}) {
    std::printf("%8d %10.1f %10.1f %12.1f %12.1f\n", n,
                collective_us(Op::kBarrier, n),
                collective_us(Op::kBcast, n),
                collective_us(Op::kAllreduce, n),
                collective_us(Op::kAllgather, n));
  }
  std::puts("\ntree/dissemination algorithms grow ~log(n); the ring "
            "allgather grows ~linearly;\nthe 8->16 step also crosses onto a "
            "second switch (one extra hop on some paths).");
  return 0;
}
