// NIC-offloaded vs host-level collectives across cluster sizes.
//
// For each (preset, ranks) configuration one cluster runs both algorithm
// families back to back on the SAME MpiFm2 communicators:
//   - host: the dissemination barrier / binomial bcast / reduce+bcast
//     allreduce executed by host-level MPI sends (qualified
//     `c.mpi::Comm::op()` calls suppress the virtual dispatch — the
//     ablation),
//   - nic:  the same four operations forwarded through the NIC control
//     program (myrinet/coll.hpp): combining and fan-out happen NIC-to-NIC
//     along a topology-derived tree and each host is interrupted exactly
//     once per operation, at completion.
//
// Methodology: every measured phase is bracketed by NIC barriers. Rank 0
// (the tree root) stamps t0 when its opening barrier completes and t1 when
// its closing barrier completes — the closing barrier cannot complete
// until every rank finished all `iters` operations, so the window covers
// full delivery on every rank, for both algorithm families, at the cost of
// one (cheap, identical) sync barrier amortized over `iters`.
//
// Per phase the bench also records, cluster-wide:
//   - heap allocations (global operator-new hook): the NIC phases must be
//     allocation-free in the steady state (pools are warmed by one
//     untimed round of every phase),
//   - FM handler starts: the NIC phases must show ZERO — interior tree
//     steps never touch a host, and completion is polled, not dispatched.
//     The host phases show thousands; that delta is the offload.
//
// Everything reported is simulated time, so the JSON artifact
// (BENCH_collectives.json) is bit-stable across machines and
// scripts/bench_check.py --collectives-binary compares overlapping rows
// exactly; each (preset, ranks) configuration is an independent engine, so
// a reduced --max-ranks sweep reproduces the committed rows verbatim.
//
// Usage: scaling_collectives [--max-ranks N] [--out FILE]
#include <array>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "alloc_hook.hpp"
#include "bench_util.hpp"
#include "mpi/mpi_fm2.hpp"
#include "myrinet/node.hpp"

using namespace fmx;
using sim::Engine;
using sim::Task;

namespace {

constexpr int kRankSteps[] = {8, 16, 32, 64, 128, 256, 512};
constexpr int kIters = 10;
constexpr std::size_t kBcastBytes = 256;
constexpr std::size_t kReduceDoubles = 8;
constexpr int kCollRadix = 6;

enum class Op { kBarrier, kBcast, kReduce, kAllreduce };
enum class Algo { kHost, kNic };

constexpr const char* op_name(Op op) {
  switch (op) {
    case Op::kBarrier: return "barrier";
    case Op::kBcast: return "bcast";
    case Op::kReduce: return "reduce";
    case Op::kAllreduce: return "allreduce";
  }
  return "?";
}

struct Phase {
  Op op;
  Algo algo;
};
// Host first, NIC second within each op: adjacent rows in the table, and
// the host phase re-dirties caches/pools before each NIC measurement so
// the NIC numbers are not an artifact of phase ordering.
constexpr Phase kPhases[] = {
    {Op::kBarrier, Algo::kHost},   {Op::kBarrier, Algo::kNic},
    {Op::kBcast, Algo::kHost},     {Op::kBcast, Algo::kNic},
    {Op::kReduce, Algo::kHost},    {Op::kReduce, Algo::kNic},
    {Op::kAllreduce, Algo::kHost}, {Op::kAllreduce, Algo::kNic},
};
constexpr int kNumPhases = int(sizeof(kPhases) / sizeof(kPhases[0]));

Task<void> run_op(mpi::MpiFm2& c, Op op, Algo algo, MutByteSpan buf,
                  std::span<double> v) {
  const bool host = algo == Algo::kHost;
  switch (op) {
    case Op::kBarrier:
      if (host) co_await c.mpi::Comm::barrier();
      else co_await c.barrier();
      break;
    case Op::kBcast:
      if (host) co_await c.mpi::Comm::bcast(buf, 0);
      else co_await c.bcast(buf, 0);
      break;
    case Op::kReduce:
      if (host) co_await c.mpi::Comm::reduce_sum(v, 0);
      else co_await c.reduce_sum(v, 0);
      break;
    case Op::kAllreduce:
      if (host) co_await c.mpi::Comm::allreduce_sum(v);
      else co_await c.allreduce_sum(v);
      break;
  }
}

struct PhaseOut {
  double us = 0;  // raw window while measuring; per-op after run_config
  std::uint64_t allocs = 0;  // cluster-wide heap allocations in the window
  std::uint64_t handler_starts = 0;  // cluster-wide FM handler dispatches
};

using Comms = std::vector<std::unique_ptr<mpi::MpiFm2>>;

std::uint64_t handler_sum(const Comms& comms) {
  std::uint64_t n = 0;
  for (const auto& c : comms) n += c->fm().stats().handler_starts;
  return n;
}

Task<void> rank_main(Engine& eng, Comms& comms, int rank,
                     std::array<PhaseOut, kNumPhases>& out) {
  mpi::MpiFm2& c = *comms[rank];
  Bytes buf(kBcastBytes);
  std::vector<double> v(kReduceDoubles, 1.0);
  // Pass 0 is an untimed warmup of the EXACT measured sequence: it joins
  // the NIC group and sizes buffer pools, matcher and NIC queues at the
  // same pipelining depth the measurement reaches (a rooted reduce lets
  // non-roots run kIters epochs ahead), so pass 1 is allocation-free.
  for (int pass = 0; pass < 2; ++pass) {
    const bool measure = pass == 1 && rank == 0;
    for (int p = 0; p < kNumPhases; ++p) {
      co_await c.barrier();  // NIC sync: opens the phase
      sim::Ps t0 = 0;
      std::uint64_t h0 = 0;
      if (measure) {
        t0 = eng.now();
        h0 = handler_sum(comms);
        bench::alloc_hook_reset();
      }
      for (int i = 0; i < kIters; ++i) {
        co_await run_op(c, kPhases[p].op, kPhases[p].algo, MutByteSpan{buf},
                        v);
      }
      co_await c.barrier();  // NIC sync: all ranks finished all iters
      if (measure) {
        out[p].us = sim::to_us(eng.now() - t0);  // raw, incl. closing sync
        out[p].allocs = bench::alloc_hook_count();
        out[p].handler_starts = handler_sum(comms) - h0;
      }
    }
  }
}

struct ConfigResult {
  std::array<PhaseOut, kNumPhases> phases;
  std::uint64_t completions = 0;  // summed NIC coll_completions
  std::uint64_t expected = 0;     // one host interruption per NIC op
};

ConfigResult run_config(const net::ClusterParams& params) {
  Engine eng;
  net::Cluster cluster(eng, params);
  mpi::MpiFm2Options opt;
  opt.nic_collectives = true;
  opt.coll_radix = kCollRadix;
  Comms comms;
  for (int r = 0; r < params.n_hosts; ++r) {
    comms.push_back(
        std::make_unique<mpi::MpiFm2>(cluster, r, fm2::Config{}, opt));
  }
  ConfigResult res;
  for (int r = 0; r < params.n_hosts; ++r) {
    eng.spawn(rank_main(eng, comms, r, res.phases));
  }
  eng.run();
  // De-bias the sync overhead: every phase window closes with one NIC
  // barrier. For the NIC-barrier phase itself that closing sync is simply
  // the (kIters+1)-th sample of the measured op; every other phase
  // subtracts exactly one NIC-barrier time from its window.
  const double nic_bar = res.phases[1].us / (kIters + 1);
  for (int p = 0; p < kNumPhases; ++p) {
    res.phases[p].us =
        p == 1 ? nic_bar : (res.phases[p].us - nic_bar) / kIters;
  }
  // The single-interrupt contract, counted: NIC completions per rank ==
  // join + 2 passes of (2 sync barriers per phase + the NIC phases' ops).
  res.expected =
      std::uint64_t(params.n_hosts) *
      (1u + 2u * (2u * kNumPhases + std::uint64_t(kNumPhases / 2) * kIters));
  for (int i = 0; i < params.n_hosts; ++i) {
    res.completions += cluster.node(i).nic().stats().coll_completions;
  }
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  int max_ranks = kRankSteps[sizeof(kRankSteps) / sizeof(int) - 1];
  std::string out_path = "BENCH_collectives.json";
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--max-ranks") && i + 1 < argc) {
      max_ranks = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--max-ranks N] [--out FILE]\n", argv[0]);
      return 2;
    }
  }

  struct Preset {
    const char* name;
    net::ClusterParams (*make)(int);
  };
  const Preset presets[] = {
      {"chain", [](int n) { return net::ppro_fm2_cluster(n); }},
      // Fixed radix 16 (capacity 1024) so the fabric shape is constant
      // across the sweep: with the auto-derived radix the topology
      // reshapes between rank steps (hosts-per-edge-switch changes), and
      // the scaling curve would measure tree-shape jumps, not rank count.
      {"fat_tree",
       [](int n) { return net::fat_tree_cluster(n, 16, 1); }},
  };

  std::puts("=== NIC-offloaded vs host-level collectives (us per op, "
            "simulated) ===\n");
  std::printf("%9s %6s %10s  %10s %10s %8s  %7s %9s\n", "preset", "ranks",
              "op", "host us", "nic us", "speedup", "allocs", "handlers");

  struct Row {
    const char* preset;
    int ranks;
    Op op;
    PhaseOut host, nic;
  };
  std::vector<Row> rows;
  bool completions_ok = true;
  bool nic_quiet = true;  // no handler starts, no allocs in NIC phases

  for (const Preset& pre : presets) {
    for (int ranks : kRankSteps) {
      if (ranks > max_ranks) continue;
      ConfigResult r = run_config(pre.make(ranks));
      if (r.completions != r.expected) {
        completions_ok = false;
        std::fprintf(stderr,
                     "%s/%d: coll_completions %llu != expected %llu\n",
                     pre.name, ranks,
                     static_cast<unsigned long long>(r.completions),
                     static_cast<unsigned long long>(r.expected));
      }
      for (int p = 0; p + 1 < kNumPhases; p += 2) {
        Row row{pre.name, ranks, kPhases[p].op, r.phases[p],
                r.phases[p + 1]};
        rows.push_back(row);
        if (row.nic.handler_starts != 0 || row.nic.allocs != 0) {
          nic_quiet = false;
        }
        std::printf("%9s %6d %10s  %10.1f %10.1f %7.2fx  %7llu %9llu\n",
                    pre.name, ranks, op_name(row.op), row.host.us,
                    row.nic.us, row.host.us / row.nic.us,
                    static_cast<unsigned long long>(row.nic.allocs),
                    static_cast<unsigned long long>(
                        row.nic.handler_starts));
      }
    }
  }

  std::printf("\nsingle-interrupt contract: %s; NIC phases quiet "
              "(0 allocs, 0 handler starts): %s\n",
              completions_ok ? "ok" : "FAILED",
              nic_quiet ? "ok" : "FAILED");

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::perror("fopen");
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"iters\": %d,\n"
               "  \"coll_radix\": %d,\n"
               "  \"bcast_bytes\": %zu,\n"
               "  \"reduce_doubles\": %zu,\n"
               "  \"completions_ok\": %s,\n"
               "  \"results\": [\n",
               kIters, kCollRadix, kBcastBytes, kReduceDoubles,
               completions_ok ? "true" : "false");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(
        f,
        "    {\"preset\": \"%s\", \"ranks\": %d, \"op\": \"%s\", "
        "\"host_us\": %.3f, \"nic_us\": %.3f, \"speedup\": %.3f, "
        "\"nic_allocs\": %llu, \"nic_handler_starts\": %llu, "
        "\"host_handler_starts\": %llu}%s\n",
        row.preset, row.ranks, op_name(row.op), row.host.us, row.nic.us,
        row.host.us / row.nic.us,
        static_cast<unsigned long long>(row.nic.allocs),
        static_cast<unsigned long long>(row.nic.handler_starts),
        static_cast<unsigned long long>(row.host.handler_starts),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return completions_ok && nic_quiet ? 0 : 1;
}
