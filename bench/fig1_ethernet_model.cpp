// Figure 1: delivered bandwidth of (a) 100 Mbit and (b) 1 Gbit Ethernet
// assuming a fixed 125 us protocol-processing overhead per message.
// Regenerates the two series of the paper's motivating chart.
#include <cstdio>
#include <vector>

#include "analytic/protocol_model.hpp"

int main() {
  using namespace fmx::analytic;
  std::puts("=== Figure 1: theoretical Ethernet bandwidth under 125 us "
            "protocol overhead ===\n");
  std::printf("%10s %18s %18s\n", "msg bytes", "100 Mbit (MB/s)",
              "1 Gbit (MB/s)");
  for (std::size_t s = 8; s <= 1024; s *= 2) {
    std::printf("%10zu %18.3f %18.3f\n", s,
                delivered_bandwidth(s, k100MbitPerSec, kFig1OverheadSec) / 1e6,
                delivered_bandwidth(s, k1GbitPerSec, kFig1OverheadSec) / 1e6);
  }
  std::printf("\nhalf-power message size: %.0f B (100 Mbit), %.0f B (1 Gbit)\n",
              half_power_size(k100MbitPerSec, kFig1OverheadSec),
              half_power_size(k1GbitPerSec, kFig1OverheadSec));
  std::puts("\npaper's point: with 125 us software overhead, even a 1 Gbit\n"
            "link delivers under 8 MB/s to 1 KB messages — raw link speed\n"
            "is irrelevant until the messaging layer's overhead falls.");
  return 0;
}
