// Figure 2: breakdown of software overhead for Active Messages on the CM-5
// (16-word message, 4-word packets), per guarantee layer and per side, for
// the finite- and indefinite-sequence protocols.
//
// Reference values from the paper (finite sequence): 397 total cycles, of
// which 148 buffer management, 21 in-order delivery, 47 fault tolerance.
#include <cstdio>
#include <numeric>
#include <vector>

#include "am/cmam.hpp"

using namespace fmx;
using namespace fmx::am;

namespace {

struct Sides {
  CycleLedger src;
  CycleLedger dest;
  CycleLedger total() const {
    CycleLedger t;
    t.base = src.base + dest.base;
    t.buffer_mgmt = src.buffer_mgmt + dest.buffer_mgmt;
    t.in_order = src.in_order + dest.in_order;
    t.fault_tol = src.fault_tol + dest.fault_tol;
    return t;
  }
};

Sides run_case(SeqMode mode) {
  sim::Engine eng;
  Cm5Net net(eng, Cm5Params{});
  CmamEndpoint src(net, 0, kAll, mode);
  CmamEndpoint dst(net, 1, kAll, mode);
  std::vector<Word> data(16);
  std::iota(data.begin(), data.end(), 0u);
  src.send_message(1, 0, data);
  for (int i = 0; i < 100 && dst.messages_delivered() == 0; ++i) {
    eng.run(eng.now() + sim::us(50));
    src.poll();
    dst.poll();
  }
  // Drain acks so the source ledger is complete.
  eng.run();
  src.poll();
  dst.poll();
  return Sides{src.src_cycles(), dst.dest_cycles()};
}

void print_ledger(const char* label, const CycleLedger& l) {
  std::printf("  %-10s base %4llu | buffer %4llu | in-order %3llu | "
              "fault-tol %3llu | total %4llu\n",
              label, static_cast<unsigned long long>(l.base),
              static_cast<unsigned long long>(l.buffer_mgmt),
              static_cast<unsigned long long>(l.in_order),
              static_cast<unsigned long long>(l.fault_tol),
              static_cast<unsigned long long>(l.total()));
}

}  // namespace

int main() {
  std::puts("=== Figure 2: CMAM overhead breakdown on the CM-5 "
            "(16-word message, 4-word packets, cycles) ===\n");
  auto fin = run_case(SeqMode::kFinite);
  std::puts("Finite sequence:");
  print_ledger("src", fin.src);
  print_ledger("dest", fin.dest);
  print_ledger("total", fin.total());

  auto ind = run_case(SeqMode::kIndefinite);
  std::puts("\nIndefinite sequence:");
  print_ledger("src", ind.src);
  print_ledger("dest", ind.dest);
  print_ledger("total", ind.total());

  auto t = fin.total();
  double guarantees = static_cast<double>(t.buffer_mgmt + t.in_order +
                                          t.fault_tol);
  std::printf("\npaper reference (finite): total 397 = buffer 148 + "
              "in-order 21 + fault-tol 47 + base 181\n");
  std::printf("measured          (finite): total %llu = buffer %llu + "
              "in-order %llu + fault-tol %llu + base %llu\n",
              static_cast<unsigned long long>(t.total()),
              static_cast<unsigned long long>(t.buffer_mgmt),
              static_cast<unsigned long long>(t.in_order),
              static_cast<unsigned long long>(t.fault_tol),
              static_cast<unsigned long long>(t.base));
  std::printf("guarantees are %.0f%% of total messaging cycles "
              "(paper: 50-70%% on highly optimized layers)\n",
              100.0 * guarantees / static_cast<double>(t.total()));
  return 0;
}
