// Datacenter-scale fabric bench: a k-ary fat-tree under an open-loop
// heavy-tailed traffic wave, reporting per-layer latency quantiles and the
// two invariants the parallel fabric promises at scale:
//
//   - determinism: the same schedule replayed at 1/2/4 worker threads must
//     produce bit-identical completion digests (and therefore identical
//     p50/p99/p999);
//   - zero steady-state allocations: after a warmup wave of the same
//     schedule has sized every pool (buffer pool, coroutine frames, engine
//     heaps, SPSC spill buffers), the measured wave performs no heap
//     allocation at all.
//
// The default configuration is a radix-16, 1:1 fat tree — 1024 hosts, 320
// switches, 128 ECMP-balanced core paths per cross-pod pair — with 128
// flows per host arriving at 2e7 flows/s/host (the whole schedule lands in
// ~6.4 us, far faster than the fabric can drain it, so effectively every
// flow is concurrently in flight: open-loop overload is what puts mass in
// the tails). Flow sizes are bounded-Pareto mice-and-elephants.
//
// Writes BENCH_fabric.json (gated by scripts/bench_check.py
// --fabric-binary): per-thread-count events/sec + allocs/event + digest,
// plus per-layer p50/p99/p999 from the 1-thread run.
//
// Usage: fabric_scale [--hosts N] [--oversub O] [--flows-per-host F]
//                     [--rate R] [--shards S] [--threads 1,2,4]
//                     [--pattern uniform|permutation|incast|hotspot]
//                     [--out path]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "alloc_hook.hpp"
#include "bench_util.hpp"
#include "myrinet/parallel_cluster.hpp"
#include "myrinet/topo.hpp"
#include "workload/traffic_engine.hpp"

using namespace fmx;
using Clock = std::chrono::steady_clock;

namespace {

struct Args {
  int hosts = 1024;
  int oversub = 1;
  int flows_per_host = 128;
  double rate = 2e7;
  int shards = 8;
  std::vector<int> threads = {1, 2, 4};
  workload::TrafficPattern pattern = workload::TrafficPattern::kUniform;
  const char* out = "BENCH_fabric.json";
};

bool parse_args(int argc, char** argv, Args& a) {
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v;
    if (!std::strcmp(argv[i], "--hosts") && (v = next())) {
      a.hosts = std::atoi(v);
    } else if (!std::strcmp(argv[i], "--oversub") && (v = next())) {
      a.oversub = std::atoi(v);
    } else if (!std::strcmp(argv[i], "--flows-per-host") && (v = next())) {
      a.flows_per_host = std::atoi(v);
    } else if (!std::strcmp(argv[i], "--rate") && (v = next())) {
      a.rate = std::atof(v);
    } else if (!std::strcmp(argv[i], "--shards") && (v = next())) {
      a.shards = std::atoi(v);
    } else if (!std::strcmp(argv[i], "--out") && (v = next())) {
      a.out = v;
    } else if (!std::strcmp(argv[i], "--threads") && (v = next())) {
      a.threads.clear();
      for (const char* p = v; *p != '\0';) {
        a.threads.push_back(std::atoi(p));
        while (*p != '\0' && *p != ',') ++p;
        if (*p == ',') ++p;
      }
    } else if (!std::strcmp(argv[i], "--pattern") && (v = next())) {
      if (!std::strcmp(v, "uniform")) {
        a.pattern = workload::TrafficPattern::kUniform;
      } else if (!std::strcmp(v, "permutation")) {
        a.pattern = workload::TrafficPattern::kPermutation;
      } else if (!std::strcmp(v, "incast")) {
        a.pattern = workload::TrafficPattern::kIncast;
      } else if (!std::strcmp(v, "hotspot")) {
        a.pattern = workload::TrafficPattern::kHotspot;
      } else {
        std::fprintf(stderr, "unknown pattern %s\n", v);
        return false;
      }
    } else {
      std::fprintf(stderr, "unknown arg %s\n", argv[i]);
      return false;
    }
  }
  return true;
}

struct Measured {
  workload::WaveResult wave;
  double wall_s = 0;
  std::uint64_t allocs = 0;
};

Measured run_at(const Args& a, const workload::Schedule& sched,
                const workload::TrafficConfig&, int threads) {
  auto params = net::fat_tree_cluster(a.hosts, /*radix=*/0, a.oversub);
  // The wave is a deliberate overload: keep every in-flight buffer and
  // ring slot retained across the warmup->measured boundary so the
  // measured wave never touches the allocator.
  params.fabric.pool_retain_bytes_per_class = std::size_t{256} << 20;
  params.nic.host_ring_slots = 256;
  net::ParallelCluster cl(params, a.shards);
  for (int s = 0; s < cl.n_shards(); ++s) {
    cl.shard_engine(s).reserve_events(std::size_t{1} << 16);
  }
  workload::TrafficEngine te(cl);

  // Warmup at full scale: the first wave sizes every pool (buffers,
  // frames, engine heaps, rings); the second catches growth the first
  // wave's own warm-up skew still induced (a pool that only reaches its
  // steady-state high-water once its downstream consumer is warm).
  te.run_wave(sched, threads);
  te.run_wave(sched, threads);
  te.run_wave(sched, threads);

  Measured m;
  bench::alloc_hook_reset();
  const auto t0 = Clock::now();
  te.spawn_wave(sched);
  auto run = cl.run(threads);
  const auto t1 = Clock::now();
  m.allocs = bench::alloc_hook_count();
  m.wave = te.collect_wave(sched, run);
  m.wall_s = std::chrono::duration<double>(t1 - t0).count();
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  Args a;
  if (!parse_args(argc, argv, a)) return 2;

  workload::TrafficConfig cfg;
  cfg.pattern = a.pattern;
  cfg.sizes = workload::SizeDistribution::bounded_pareto(1.2, 32, 2048);
  cfg.flow_rate_per_host = a.rate;
  cfg.flows_per_host = a.flows_per_host;
  cfg.seed = 42;
  const workload::Schedule sched = workload::make_schedule(cfg, a.hosts);

  const auto params = net::fat_tree_cluster(a.hosts, 0, a.oversub);
  const net::Topo topo(params.fabric, a.hosts);
  std::printf(
      "fabric_scale: %d-host fat-tree (radix %d, %d:1, %d switches, "
      "%d ECMP cross-pod paths), %s pattern, %llu flows (%s sizes, "
      "mean %.0f B) at %.2g flows/s/host, %d shards\n",
      a.hosts, params.fabric.fat_tree_radix, a.oversub, topo.n_switches(),
      topo.ecmp_paths(0, a.hosts - 1), workload::to_string(a.pattern),
      static_cast<unsigned long long>(sched.total_flows), cfg.sizes.name().data(),
      cfg.sizes.mean(), a.rate, a.shards);

  std::vector<Measured> runs;
  bool digest_ok = true;
  for (int t : a.threads) {
    Measured m = run_at(a, sched, cfg, t);
    if (!runs.empty() && m.wave.digest != runs.front().wave.digest) {
      digest_ok = false;
    }
    if (m.wave.completed != sched.total_flows || m.wave.pending_roots != 0) {
      digest_ok = false;  // an incomplete wave is never acceptable
    }
    std::printf(
        "  %d thread(s)  %9.3g events/sec  (%llu events, %.3f s, "
        "%.6f allocs/event, digest %016llx, peak %llu flows in flight)\n",
        t, m.wave.events / m.wall_s,
        static_cast<unsigned long long>(m.wave.events), m.wall_s,
        static_cast<double>(m.allocs) / m.wave.events,
        static_cast<unsigned long long>(m.wave.digest),
        static_cast<unsigned long long>(m.wave.peak_concurrent));
    runs.push_back(std::move(m));
  }

  const Measured& ref = runs.front();
  std::printf("  makespan %.1f us, %llu/%llu flows, digests %s\n",
              sim::to_us(ref.wave.makespan),
              static_cast<unsigned long long>(ref.wave.completed),
              static_cast<unsigned long long>(sched.total_flows),
              digest_ok ? "identical" : "DIVERGED");
  for (const auto& lq : ref.wave.layers) {
    std::printf("    %-10s p50 %10.2f us   p99 %10.2f us   p999 %10.2f us\n",
                lq.layer, lq.p50 / 1e6, lq.p99 / 1e6, lq.p999 / 1e6);
  }

  std::FILE* f = std::fopen(a.out, "w");
  if (f == nullptr) {
    std::perror("fopen");
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"workload\": \"fabric_traffic\",\n"
               "  \"topology\": \"fat_tree\",\n"
               "  \"radix\": %d,\n"
               "  \"oversubscription\": %d,\n"
               "  \"n_hosts\": %d,\n"
               "  \"n_switches\": %d,\n"
               "  \"shards\": %d,\n"
               "  \"pattern\": \"%s\",\n"
               "  \"size_dist\": \"%s\",\n"
               "  \"mean_flow_bytes\": %.1f,\n"
               "  \"flow_rate_per_host\": %g,\n"
               "  \"flows_per_host\": %d,\n"
               "  \"total_flows\": %llu,\n"
               "  \"peak_concurrent_flows\": %llu,\n"
               "  \"makespan_us\": %.3f,\n"
               "  \"cpus\": %u,\n"
               "  \"cpu_model\": \"%s\",\n",
               params.fabric.fat_tree_radix, a.oversub, a.hosts,
               topo.n_switches(), a.shards, workload::to_string(a.pattern),
               cfg.sizes.name().data(), cfg.sizes.mean(), a.rate,
               a.flows_per_host,
               static_cast<unsigned long long>(sched.total_flows),
               static_cast<unsigned long long>(ref.wave.peak_concurrent),
               sim::to_us(ref.wave.makespan),
               std::thread::hardware_concurrency(),
               bench::cpu_model().c_str());
  std::fprintf(f, "  \"threads\": [\n");
  for (std::size_t k = 0; k < runs.size(); ++k) {
    const Measured& m = runs[k];
    std::fprintf(f,
                 "    {\"threads\": %d, \"events\": %llu, "
                 "\"events_per_sec\": %.1f, \"allocs_per_event\": %.6f, "
                 "\"digest\": \"%016llx\"}%s\n",
                 a.threads[k],
                 static_cast<unsigned long long>(m.wave.events),
                 m.wave.events / m.wall_s,
                 static_cast<double>(m.allocs) / m.wave.events,
                 static_cast<unsigned long long>(m.wave.digest),
                 k + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"layers\": [\n");
  for (std::size_t l = 0; l < ref.wave.layers.size(); ++l) {
    const auto& lq = ref.wave.layers[l];
    std::fprintf(f,
                 "    {\"layer\": \"%s\", \"count\": %llu, "
                 "\"p50_us\": %.3f, \"p99_us\": %.3f, \"p999_us\": %.3f}%s\n",
                 lq.layer, static_cast<unsigned long long>(lq.count),
                 lq.p50 / 1e6, lq.p99 / 1e6, lq.p999 / 1e6,
                 l + 1 < ref.wave.layers.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"digest_ok\": %s\n}\n",
               digest_ok ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", a.out);
  return digest_ok ? 0 : 1;
}
