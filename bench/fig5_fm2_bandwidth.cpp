// Figure 5: FM 2.1 performance on a 200 MHz Pentium Pro.
// Paper headline: 11 us minimum latency, 77 MB/s peak bandwidth,
// N1/2 < 256 bytes.
#include <cstdio>

#include "bench_util.hpp"

using namespace fmx;
using namespace fmx::bench;

int main() {
  auto platform = net::ppro_fm2_cluster(2);
  auto sizes = paper_sizes(16, 2048);

  std::puts("=== Figure 5: FM 2.1 bandwidth on a 200 MHz PPro ===\n");
  std::printf("%10s %12s\n", "msg bytes", "FM 2.1 MB/s");
  for (auto s : sizes) {
    std::printf("%10zu %12.2f\n", s, fm2_bandwidth(platform, s).bandwidth_mbs);
  }
  double peak = fm2_bandwidth(platform, 8192).bandwidth_mbs;
  double lat = fm2_latency_us(platform, 16);
  double nhalf = half_power_point(
      [&](std::size_t s) { return fm2_bandwidth(platform, s).bandwidth_mbs; },
      peak);
  std::printf("\nheadline measured:  latency %.1f us, peak %.1f MB/s, "
              "N1/2 = %.0f B\n", lat, peak, nhalf);
  std::puts("headline paper:     latency 11 us,  peak 77 MB/s,   "
            "N1/2 < 256 B");
  return 0;
}
