// google-benchmark microbenchmarks of the simulator machinery itself: how
// much real (wall-clock) time the framework costs per simulated event,
// message, and checksum. These guard against accidental slowdowns in the
// substrate every experiment runs on.
#include <benchmark/benchmark.h>

#include "common/buffer_pool.hpp"
#include "common/crc32.hpp"
#include "fm2/fm2.hpp"
#include "sim/channel.hpp"
#include "sim/engine.hpp"

using namespace fmx;

namespace {

void BM_EngineScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    for (int i = 0; i < 1000; ++i) {
      eng.schedule_at(sim::us(i), [] {});
    }
    eng.run();
    benchmark::DoNotOptimize(eng.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EngineScheduleRun);

void BM_CoroutinePingPong(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    sim::Channel<int> a(eng, 1), b(eng, 1);
    eng.spawn([](sim::Channel<int>& in, sim::Channel<int>& out)
                  -> sim::Task<void> {
      for (int i = 0; i < 500; ++i) {
        co_await out.push(i);
        (void)co_await in.pop();
      }
    }(a, b));
    eng.spawn([](sim::Channel<int>& in, sim::Channel<int>& out)
                  -> sim::Task<void> {
      for (int i = 0; i < 500; ++i) {
        int v = co_await in.pop();
        co_await out.push(v);
      }
    }(b, a));
    eng.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_CoroutinePingPong);

void BM_Crc32(benchmark::State& state) {
  Bytes data = pattern_bytes(1, state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32(ByteSpan{data}));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32)->Arg(64)->Arg(1024)->Arg(16384);

// The reference bytewise CRC, kept as the baseline the slice-by-8 fast path
// in crc32.cpp is measured against (and as its correctness oracle).
void BM_Crc32Bytewise(benchmark::State& state) {
  Bytes data = pattern_bytes(1, state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        detail::crc32_update_bytewise(0xFFFFFFFFu, ByteSpan{data}));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32Bytewise)->Arg(64)->Arg(1024)->Arg(16384);

// Acquire/release cycle against a warm pool: every acquire is a hit, no
// heap traffic. Compare with BM_BufferFresh below for the saved cost.
void BM_BufferPoolAcquire(benchmark::State& state) {
  const std::size_t n = state.range(0);
  BufferPool pool;
  pool.release(pool.acquire(n));  // warm the size class
  for (auto _ : state) {
    Bytes b = pool.acquire(n);
    benchmark::DoNotOptimize(b.data());
    pool.release(std::move(b));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BufferPoolAcquire)->Arg(128)->Arg(4096);

// What each packet used to cost: a fresh heap vector, zero-filled, freed at
// end of scope.
void BM_BufferFresh(benchmark::State& state) {
  const std::size_t n = state.range(0);
  for (auto _ : state) {
    Bytes b(n);
    benchmark::DoNotOptimize(b.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BufferFresh)->Arg(128)->Arg(4096);

// Cost of spawning a root coroutine and driving it to completion — the
// per-message overhead of handler dispatch (frames come from the pool after
// the first iteration).
void BM_SpawnDrive(benchmark::State& state) {
  sim::Engine eng;
  for (auto _ : state) {
    int side_effect = 0;
    eng.spawn([](int& out) -> sim::Task<void> {
      out = 1;
      co_return;
    }(side_effect));
    eng.run();
    benchmark::DoNotOptimize(side_effect);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpawnDrive);

void BM_PatternBytes(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(pattern_bytes(7, state.range(0)));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PatternBytes)->Arg(1024)->Arg(65536);

// Real time per fully-simulated FM 2.x message (the cost of running one
// end-to-end experiment data point).
void BM_Fm2EndToEnd(benchmark::State& state) {
  const std::size_t msg = state.range(0);
  for (auto _ : state) {
    sim::Engine eng;
    net::Cluster cluster(eng, net::ppro_fm2_cluster(2));
    fm2::Endpoint tx(cluster, 0), rx(cluster, 1);
    int got = 0;
    Bytes sink(msg);
    rx.register_handler(0, [&](fm2::RecvStream& s, int) -> fm2::HandlerTask {
      co_await s.receive(sink.data(), s.msg_bytes());
      ++got;
    });
    eng.spawn([](fm2::Endpoint& ep, std::size_t sz) -> sim::Task<void> {
      Bytes m(sz);
      for (int i = 0; i < 10; ++i) co_await ep.send(1, 0, ByteSpan{m});
    }(tx, msg));
    eng.spawn([](fm2::Endpoint& ep, int& g) -> sim::Task<void> {
      co_await ep.poll_until([&] { return g == 10; });
    }(rx, got));
    eng.run();
    benchmark::DoNotOptimize(got);
  }
  state.SetItemsProcessed(state.iterations() * 10);
}
BENCHMARK(BM_Fm2EndToEnd)->Arg(64)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
