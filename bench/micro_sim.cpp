// google-benchmark microbenchmarks of the simulator machinery itself: how
// much real (wall-clock) time the framework costs per simulated event,
// message, and checksum. These guard against accidental slowdowns in the
// substrate every experiment runs on.
#include <benchmark/benchmark.h>

#include "common/crc32.hpp"
#include "fm2/fm2.hpp"
#include "sim/channel.hpp"
#include "sim/engine.hpp"

using namespace fmx;

namespace {

void BM_EngineScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    for (int i = 0; i < 1000; ++i) {
      eng.schedule_at(sim::us(i), [] {});
    }
    eng.run();
    benchmark::DoNotOptimize(eng.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EngineScheduleRun);

void BM_CoroutinePingPong(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    sim::Channel<int> a(eng, 1), b(eng, 1);
    eng.spawn([](sim::Channel<int>& in, sim::Channel<int>& out)
                  -> sim::Task<void> {
      for (int i = 0; i < 500; ++i) {
        co_await out.push(i);
        (void)co_await in.pop();
      }
    }(a, b));
    eng.spawn([](sim::Channel<int>& in, sim::Channel<int>& out)
                  -> sim::Task<void> {
      for (int i = 0; i < 500; ++i) {
        int v = co_await in.pop();
        co_await out.push(v);
      }
    }(b, a));
    eng.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_CoroutinePingPong);

void BM_Crc32(benchmark::State& state) {
  Bytes data = pattern_bytes(1, state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32(ByteSpan{data}));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32)->Arg(64)->Arg(1024)->Arg(16384);

void BM_PatternBytes(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(pattern_bytes(7, state.range(0)));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PatternBytes)->Arg(1024)->Arg(65536);

// Real time per fully-simulated FM 2.x message (the cost of running one
// end-to-end experiment data point).
void BM_Fm2EndToEnd(benchmark::State& state) {
  const std::size_t msg = state.range(0);
  for (auto _ : state) {
    sim::Engine eng;
    net::Cluster cluster(eng, net::ppro_fm2_cluster(2));
    fm2::Endpoint tx(cluster, 0), rx(cluster, 1);
    int got = 0;
    Bytes sink(msg);
    rx.register_handler(0, [&](fm2::RecvStream& s, int) -> fm2::HandlerTask {
      co_await s.receive(sink.data(), s.msg_bytes());
      ++got;
    });
    eng.spawn([](fm2::Endpoint& ep, std::size_t sz) -> sim::Task<void> {
      Bytes m(sz);
      for (int i = 0; i < 10; ++i) co_await ep.send(1, 0, ByteSpan{m});
    }(tx, msg));
    eng.spawn([](fm2::Endpoint& ep, int& g) -> sim::Task<void> {
      co_await ep.poll_until([&] { return g == 10; });
    }(rx, got));
    eng.run();
    benchmark::DoNotOptimize(got);
  }
  state.SetItemsProcessed(state.iterations() * 10);
}
BENCHMARK(BM_Fm2EndToEnd)->Arg(64)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
