// Figure 3: FM 1.x overhead on the Sparc/SBus/Myrinet platform.
//  (a) build-up of the send path: link management only, + I/O bus
//      management, + flow control — measured with a raw rig driving the
//      NIC directly, one packet per message (as in the paper's staged
//      experiment);
//  (b) the complete FM 1.1 (with buffer management, 128 B packets):
//      bandwidth curve plus the headline latency / N1/2 numbers
//      (paper: 14 us, 17.6 MB/s peak, N1/2 = 54 B).
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "sim/sync.hpp"

using namespace fmx;
using namespace fmx::bench;
using sim::Engine;
using sim::Task;

namespace {

enum class Stage { kLinkOnly, kPlusIoBus, kPlusFlowControl };

// Raw-rig bandwidth: the "simplest code needed to operate the link DMAs",
// then with the I/O bus on the critical path, then with a credit protocol.
double raw_stage_bandwidth(Stage stage, std::size_t msg, int n_msgs = 300) {
  net::ClusterParams p = net::sparc_fm1_cluster(2);
  p.nic.mtu_payload = 2048;  // the staged rig sends message-sized packets
  if (stage == Stage::kLinkOnly) {
    // Pretend the data is already in NIC SRAM: free bus.
    p.bus.dma_setup = 0;
    p.bus.dma_ps_per_byte = 0;
  }
  Engine eng;
  net::Cluster cluster(eng, p);

  constexpr int kCredits = 8;
  constexpr int kCreditBatch = 4;
  auto credits = std::make_shared<sim::Semaphore>(
      eng, stage == Stage::kPlusFlowControl ? kCredits : 1 << 20);

  sim::Ps t_end = 0;
  eng.spawn([](net::Cluster& c, std::size_t sz, int n, Stage st,
               std::shared_ptr<sim::Semaphore> cr) -> Task<void> {
    (void)sz;
    auto& node = c.node(0);
    for (int i = 0; i < n; ++i) {
      co_await cr->acquire();
      Bytes pkt(sz);
      if (st != Stage::kLinkOnly) {
        // FM 1.x moves send data with programmed I/O across the SBus.
        co_await node.bus().pio(pkt.size());
        co_await node.nic().enqueue(
            net::SendDescriptor(1, std::move(pkt), /*fetch_dma=*/false));
      } else {
        co_await node.nic().enqueue(
            net::SendDescriptor(1, std::move(pkt), /*fetch_dma=*/false));
      }
    }
  }(cluster, msg, n_msgs, stage, credits));
  eng.spawn([](Engine& e, net::Cluster& c, int n, Stage st,
               std::shared_ptr<sim::Semaphore> cr,
               sim::Ps& end) -> Task<void> {
    (void)cr;
    auto& node = c.node(1);
    int freed = 0;
    for (int i = 0; i < n; ++i) {
      (void)co_await node.nic().host_ring().pop();
      if (st == Stage::kPlusFlowControl && ++freed == 4) {
        freed = 0;
        // Return a batch of credits with a small control packet.
        co_await node.nic().enqueue(net::SendDescriptor(0, Bytes(16), false));
      }
    }
    end = e.now();
  }(eng, cluster, n_msgs, stage, credits, t_end));
  // Credit packets arriving back at node 0 top the semaphore up.
  eng.spawn_daemon([](net::Cluster& c,
                      std::shared_ptr<sim::Semaphore> cr) -> Task<void> {
    for (;;) {
      (void)co_await c.node(0).nic().host_ring().pop();
      cr->release(kCreditBatch);
    }
  }(cluster, credits));
  eng.run();
  return static_cast<double>(msg) * n_msgs / sim::to_seconds(t_end) / 1e6;
}

}  // namespace

int main() {
  auto sizes = paper_sizes(16, 512);
  std::puts("=== Figure 3a: FM 1.x overhead breakdown (MB/s) ===\n");
  std::printf("%10s %12s %14s %14s\n", "msg bytes", "link mgmt",
              "+ I/O bus", "+ flow ctl");
  for (auto s : sizes) {
    std::printf("%10zu %12.2f %14.2f %14.2f\n", s,
                raw_stage_bandwidth(Stage::kLinkOnly, s),
                raw_stage_bandwidth(Stage::kPlusIoBus, s),
                raw_stage_bandwidth(Stage::kPlusFlowControl, s));
  }

  std::puts("\n=== Figure 3b: complete FM 1.1 (with buffer management) ===\n");
  auto platform = net::sparc_fm1_cluster(2);
  std::printf("%10s %12s\n", "msg bytes", "FM 1.1 MB/s");
  for (auto s : sizes) {
    std::printf("%10zu %12.2f\n", s, fm1_bandwidth(platform, s).bandwidth_mbs);
  }
  double peak = fm1_bandwidth(platform, 2048).bandwidth_mbs;
  double lat = fm1_latency_us(platform, 16);
  double nhalf = half_power_point(
      [&](std::size_t s) { return fm1_bandwidth(platform, s).bandwidth_mbs; },
      peak);
  std::printf("\nheadline   measured: latency %.1f us, peak %.1f MB/s, "
              "N1/2 = %.0f B\n", lat, peak, nhalf);
  std::puts("headline paper (§3):  latency 14 us,  peak 17.6 MB/s, "
            "N1/2 = 54 B");
  return 0;
}
