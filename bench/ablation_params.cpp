// Parameter sweeps for the design constants DESIGN.md calls out:
//   * packet size (MTU): small packets pay per-packet cost, huge packets
//     hurt small-message latency and pipelining granularity;
//   * credits per peer: too few credits stall the sender before the
//     bandwidth-delay product is covered.
#include <cstdio>

#include "bench_util.hpp"

using namespace fmx;
using namespace fmx::bench;

int main() {
  std::puts("=== Ablation: FM 2.x packet size (MTU payload) ===\n");
  std::printf("%10s %14s %14s %14s\n", "MTU bytes", "BW@16KB MB/s",
              "BW@256B MB/s", "latency16B us");
  for (std::size_t mtu : {128UL, 256UL, 512UL, 1024UL, 2048UL, 4096UL}) {
    auto p = net::ppro_fm2_cluster(2);
    p.nic.mtu_payload = mtu;
    std::printf("%10zu %14.2f %14.2f %14.2f\n", mtu,
                fm2_bandwidth(p, 16 * 1024, 50).bandwidth_mbs,
                fm2_bandwidth(p, 256).bandwidth_mbs,
                fm2_latency_us(p, 16));
  }

  std::puts("\n=== Ablation: sender credits per peer (flow-control window) "
            "===\n");
  std::printf("%10s %14s %14s\n", "credits", "BW@1KB MB/s", "BW@16KB MB/s");
  for (int credits : {2, 3, 4, 6, 8, 16, 32, 64}) {
    auto p = net::ppro_fm2_cluster(2);
    fm2::Config cfg;
    cfg.credits_per_peer = credits;
    std::printf("%10d %14.2f %14.2f\n", credits,
                fm2_bandwidth(p, 1024, 100, cfg).bandwidth_mbs,
                fm2_bandwidth(p, 16 * 1024, 50, cfg).bandwidth_mbs);
  }
  std::puts("\nthe knee sits where credits cover the round-trip "
            "bandwidth-delay product — below it the sender idles waiting "
            "for credit returns.");
  return 0;
}
