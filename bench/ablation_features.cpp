// Ablation: what is each FM 2.x interface feature worth? MPI-FM 2.0
// bandwidth with features disabled one at a time (the design choices of
// §4.1 that DESIGN.md calls out):
//   * staged send     — contiguous assembly instead of gather pieces
//   * whole-message   — handler starts only after the full message arrived
//                       (no layer interleaving / handler multithreading)
//   * PIO send        — programmed I/O instead of DMA from pinned buffers
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "mpi/mpi_fm2.hpp"

using namespace fmx;
using namespace fmx::bench;
using sim::Engine;
using sim::Task;

namespace {

double bw(const net::ClusterParams& cp, std::size_t msg, fm2::Config fcfg,
          mpi::MpiFm2Options opt, int n_msgs = 100) {
  Engine eng;
  net::Cluster cluster(eng, cp);
  mpi::MpiFm2 tx(cluster, 0, fcfg, opt), rx(cluster, 1, fcfg, opt);
  sim::Ps t_end = 0;
  eng.spawn([](mpi::Comm& c, std::size_t sz, int n) -> Task<void> {
    Bytes m(sz);
    for (int i = 0; i < n; ++i) co_await c.send(ByteSpan{m}, 1, 0);
  }(tx, msg, n_msgs));
  eng.spawn([](Engine& e, mpi::Comm& c, std::size_t sz, int n,
               sim::Ps& end) -> Task<void> {
    std::vector<Bytes> bufs(n, Bytes(sz));
    std::vector<mpi::Request> reqs;
    for (int i = 0; i < n; ++i) {
      reqs.push_back(co_await c.irecv(MutByteSpan{bufs[i]}, 0, 0));
    }
    for (auto& r : reqs) co_await c.wait(r);
    end = e.now();
  }(eng, rx, msg, n_msgs, t_end));
  eng.run();
  return static_cast<double>(msg) * n_msgs / sim::to_seconds(t_end) / 1e6;
}

}  // namespace

int main() {
  auto platform = net::ppro_fm2_cluster(2);
  std::puts("=== Ablation: MPI-FM 2.0 bandwidth with FM 2.x interface "
            "features disabled (MB/s) ===\n");
  std::printf("%10s %10s %12s %14s %10s\n", "msg bytes", "baseline",
              "staged send", "whole-message", "PIO send");
  for (std::size_t s : {16UL, 64UL, 256UL, 1024UL, 4096UL, 16384UL}) {
    fm2::Config base{};
    fm2::Config whole{};
    whole.whole_message_handlers = true;
    fm2::Config pio{};
    pio.pio_send = true;
    mpi::MpiFm2Options none{};
    mpi::MpiFm2Options staged{};
    staged.staged_send = true;
    std::printf("%10zu %10.2f %12.2f %14.2f %10.2f\n", s,
                bw(platform, s, base, none),
                bw(platform, s, base, staged),
                bw(platform, s, whole, none),
                bw(platform, s, pio, none));
  }
  std::puts("\nreading the table:");
  std::puts(" * staged send pays one extra full-message copy -> large "
            "messages lose the most;");
  std::puts(" * whole-message delivery costs little in a STREAMING test "
            "(cross-message pipelining hides it) — see below for where it "
            "hurts;");
  std::puts(" * PIO puts the host CPU on the critical path for every "
            "byte crossing the bus.");

  // Layer interleaving's real payoff: within-message overlap of reception
  // and consumption, i.e. the completion time of ONE large message.
  std::puts("\n=== Single-message completion time (one-way, us): layer "
            "interleaving on vs off ===\n");
  std::printf("%12s %14s %16s\n", "msg bytes", "interleaved", "whole-message");
  for (std::size_t s : {4096UL, 16384UL, 65536UL}) {
    fm2::Config base{};
    fm2::Config whole{};
    whole.whole_message_handlers = true;
    double t_base = fm2_latency_us(platform, s, 10, base);
    double t_whole = fm2_latency_us(platform, s, 10, whole);
    std::printf("%12zu %14.1f %16.1f\n", s, t_base, t_whole);
  }
  std::puts("\nwith handler multithreading the handler consumes each packet "
            "as it lands;\nwhole-message delivery serializes the final copy "
            "after the last packet arrives.");
  std::puts("\nnote: with whole-message delivery and consumption-based "
            "credits, messages larger\nthan the credit window DEADLOCK "
            "(nothing is consumed until everything arrives,\nnothing more "
            "can arrive until something is consumed) — FM 1.x escapes only "
            "by\npaying the staging copy; FM 2.x's interleaving dissolves "
            "the cycle. The deadlock\nitself is demonstrated in "
            "tests/fm2/fm2_test.cpp.");
  return 0;
}
