// Figure 6: MPI-FM 2.0 compared to FM 2.0 — (a) absolute bandwidth,
// (b) % efficiency. Paper: over 70% even at 16 bytes, rising rapidly to
// ~90%; 70 MB/s of FM's 77 MB/s; MPI-FM latency 17 us.
#include <cstdio>

#include "bench_util.hpp"

using namespace fmx;
using namespace fmx::bench;

int main() {
  auto platform = net::ppro_fm2_cluster(2);
  auto sizes = paper_sizes(16, 2048);

  std::puts("=== Figure 6: MPI-FM 2.0 vs FM 2.0 ===\n");
  std::printf("%10s %12s %12s %14s\n", "msg bytes", "FM MB/s", "MPI MB/s",
              "efficiency %");
  double eff16 = 0, eff_top = 0, fm_top = 0, mpi_top = 0;
  for (auto s : sizes) {
    double f = fm2_bandwidth(platform, s).bandwidth_mbs;
    double m = mpi_bandwidth(MpiGen::kFm2, platform, s).bandwidth_mbs;
    double eff = 100.0 * m / f;
    if (s == 16) eff16 = eff;
    if (s == 2048) {
      eff_top = eff;
      fm_top = f;
      mpi_top = m;
    }
    std::printf("%10zu %12.2f %12.2f %14.1f\n", s, f, m, eff);
  }
  double lat = mpi_latency_us(MpiGen::kFm2, platform, 16);
  std::printf("\nmeasured: %.0f%% at 16 B rising to %.0f%% at 2 KB; "
              "%.1f of %.1f MB/s; MPI latency %.1f us\n",
              eff16, eff_top, mpi_top, fm_top, lat);
  std::puts("paper:    over 70% at 16 B rising to ~90%; 70 of 77 MB/s; "
            "MPI latency 17 us");
  std::puts("\nthe gather/scatter + layer interleaving + receiver flow\n"
            "control interface delivers nearly all of FM's bandwidth to\n"
            "MPI — the paper's central result.");
  return 0;
}
