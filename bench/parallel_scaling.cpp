// Wall-clock scaling of the sharded parallel engine on two 32-node FM 2.x
// workloads — dense all-to-all streaming and a sparse ring
// neighbor-exchange (each node streams to its right neighbor only) — vs
// the single-engine serial simulator on the identical all-to-all workload.
// 32 hosts on 8 shards (4 per shard, aligned with the switch chain): with
// one host per shard there is no local work at all and every shard's event
// density is capped by a single simulated CPU, which measures the
// degenerate worst case rather than the regime sharding is for.
// Writes BENCH_parallel.json:
//   - serial_events_per_sec:  legacy single-Engine Cluster (the PR-2 path)
//   - per-thread-count events/sec for ParallelCluster at 1/2/4/8 threads,
//     with a determinism digest that must be identical across all of them,
//     plus the two synchronization meters of the published-horizon
//     scheduler: events_per_window (events executed across the cluster per
//     window-equivalent of simulated progress — events * n_shards divided
//     by the count of non-empty per-shard advance quanta; the same units
//     as the retired barrier scheme's events-per-global-window, which sat
//     around 10) and barrier_crossings (condvar parks — the only
//     remaining mutex crossings)
//   - shard_tax_pct: how much the sharded model at 1 thread gives up vs
//     the single-engine serial path (horizon publishes + cross-shard
//     copies)
//   - allocs_per_event per thread count (steady state; per-shard pools and
//     the persistent worker pool keep this at exactly 0)
//   - ring: the same sweep on the neighbor-exchange workload, where the
//     per-pair lookahead matrix lets distant shards synchronize loosely
//   - cpus / cpu_model: speedup is only meaningful when the machine
//     actually has the cores; scripts/bench_check.py gates on this.
//
// Every wall-clock figure is the median of `repetitions` (default 5)
// measured waves per configuration; alloc counts are maxima across waves.
//
// Usage: parallel_scaling [msg_size] [msgs_per_pair] [out.json] [repetitions]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "alloc_hook.hpp"
#include "bench_util.hpp"
#include "fm2/fm2.hpp"
#include "myrinet/parallel_cluster.hpp"
#include "trace/trace.hpp"

using namespace fmx;
using Clock = std::chrono::steady_clock;

namespace {

constexpr int kHosts = 32;
constexpr int kShards = 8;

struct Digest {
  std::uint64_t h = 14695981039346656037ull;
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 1099511628211ull;
    }
  }
};

// All-to-all stream: every node sends `per_pair` messages to every peer;
// receivers poll until they saw them all. Works identically on the serial
// Cluster and on a ParallelCluster shard set, since endpoints only touch
// node-local state. Returns events processed by the run.
template <typename SpawnFn, typename RunFn>
std::uint64_t all_to_all(std::vector<std::unique_ptr<fm2::Endpoint>>& eps,
                         std::vector<int>& got, const Bytes& payload,
                         int per_pair, SpawnFn&& spawn_on, RunFn&& run) {
  std::fill(got.begin(), got.end(), 0);
  for (int i = 0; i < kHosts; ++i) {
    spawn_on(i, [](fm2::Endpoint& ep, ByteSpan msg, int self,
                   int n) -> sim::Task<void> {
      for (int m = 0; m < n; ++m) {
        for (int j = 0; j < kHosts; ++j) {
          if (j != self) co_await ep.send(j, 0, msg);
        }
      }
    }(*eps[i], ByteSpan{payload}, i, per_pair));
    spawn_on(i, [](fm2::Endpoint& ep, int& g, int want) -> sim::Task<void> {
      co_await ep.poll_until([&g, want] { return g == want; });
    }(*eps[i], got[i], per_pair * (kHosts - 1)));
  }
  return run();
}

void make_handlers(std::vector<std::unique_ptr<fm2::Endpoint>>& eps,
                   std::vector<int>& got, std::vector<Digest>& rx,
                   std::vector<Bytes>& sink) {
  for (int i = 0; i < kHosts; ++i) {
    eps[i]->register_handler(
        0, [&got, &rx, &sink, i](fm2::RecvStream& s,
                                 int src) -> fm2::HandlerTask {
          const std::size_t n = s.msg_bytes();
          if (n > 0) co_await s.receive(sink[i].data(), n);
          rx[i].mix(static_cast<std::uint64_t>(src) ^ n);
          ++got[i];
        });
  }
}

// Sparse counterpart to all_to_all: every node streams `per_pair` messages
// to its right neighbor only, so each shard talks to two others. With the
// per-pair lookahead matrix, non-adjacent shards synchronize loosely; under
// a single global lookahead this workload paid the same tight windows as
// the dense one.
template <typename SpawnFn, typename RunFn>
std::uint64_t ring_exchange(std::vector<std::unique_ptr<fm2::Endpoint>>& eps,
                            std::vector<int>& got, const Bytes& payload,
                            int per_pair, SpawnFn&& spawn_on, RunFn&& run) {
  std::fill(got.begin(), got.end(), 0);
  for (int i = 0; i < kHosts; ++i) {
    spawn_on(i, [](fm2::Endpoint& ep, ByteSpan msg, int dst,
                   int n) -> sim::Task<void> {
      for (int m = 0; m < n; ++m) co_await ep.send(dst, 0, msg);
    }(*eps[i], ByteSpan{payload}, (i + 1) % kHosts, per_pair));
    spawn_on(i, [](fm2::Endpoint& ep, int& g, int want) -> sim::Task<void> {
      co_await ep.poll_until([&g, want] { return g == want; });
    }(*eps[i], got[i], per_pair));
  }
  return run();
}

struct Measured {
  double wall_s = 0;  // median across repetitions
  std::uint64_t events = 0;
  std::uint64_t allocs = 0;  // max across repetitions
  std::uint64_t digest = 0;
  std::uint64_t windows = 0;
  std::uint64_t barrier_crossings = 0;
};

Measured run_parallel(int threads, std::size_t msg_size, int per_pair,
                      int warmup_pairs, int reps, bool ring) {
  auto params = net::ppro_fm2_cluster(kHosts);
  // Deep host receive region (FM 2.x keeps flow-control state in host
  // memory precisely so the receive window can be large): the default 64
  // slots split across 31 peers would leave each flow 2 credits and every
  // sender idle for most of the round trip. 512 slots keep all flows
  // streaming, which is the regime the scaling bench is about.
  params.nic.host_ring_slots = 512;
  net::ParallelCluster cl(params, kShards);
  std::vector<std::unique_ptr<fm2::Endpoint>> eps;
  for (int i = 0; i < kHosts; ++i) {
    eps.push_back(
        std::make_unique<fm2::Endpoint>(cl.node(i), cl.fabric_of(i)));
  }
  std::vector<int> got(kHosts, 0);
  std::vector<Digest> rx(kHosts);
  std::vector<Bytes> sink(kHosts, Bytes(msg_size));
  make_handlers(eps, got, rx, sink);
  const Bytes payload = pattern_bytes(3, msg_size);

  auto spawn = [&cl](int node, sim::Task<void> t) {
    cl.spawn_on(node, std::move(t));
  };
  Measured m;
  auto run = [&cl, &m, threads] {
    auto r = cl.run(threads);
    m.windows = r.windows;
    m.barrier_crossings = r.barrier_crossings;
    return r.events;
  };
  auto wave = [&](int pairs) {
    return ring ? ring_exchange(eps, got, payload, pairs, spawn, run)
                : all_to_all(eps, got, payload, pairs, spawn, run);
  };

  wave(warmup_pairs);  // warm pools and spawn the persistent worker pool
  std::vector<double> walls;
  for (int r = 0; r < reps; ++r) {
    bench::alloc_hook_reset();
    const auto t0 = Clock::now();
    m.events = wave(per_pair);
    const auto t1 = Clock::now();
    m.allocs = std::max(m.allocs, bench::alloc_hook_count());
    walls.push_back(std::chrono::duration<double>(t1 - t0).count());
  }
  m.wall_s = bench::median(walls);

  // Window and park counts stay out of the digest: they are scheduling
  // meters, thread-timing-dependent by design under the published-horizon
  // scheduler. Only simulated results must be bit-identical.
  Digest d;
  d.mix(m.events);
  for (int i = 0; i < kHosts; ++i) {
    d.mix(rx[i].h);
    d.mix(eps[i]->stats().packets_sent);
    d.mix(eps[i]->stats().bytes_received);
  }
  m.digest = d.h;
  return m;
}

Measured run_serial(std::size_t msg_size, int per_pair, int warmup_pairs,
                    int reps) {
  sim::Engine eng;
  auto params = net::ppro_fm2_cluster(kHosts);
  params.nic.host_ring_slots = 512;  // match run_parallel (same workload)
  net::Cluster cluster(eng, params);
  std::vector<std::unique_ptr<fm2::Endpoint>> eps;
  for (int i = 0; i < kHosts; ++i) {
    eps.push_back(std::make_unique<fm2::Endpoint>(cluster, i));
  }
  std::vector<int> got(kHosts, 0);
  std::vector<Digest> rx(kHosts);
  std::vector<Bytes> sink(kHosts, Bytes(msg_size));
  make_handlers(eps, got, rx, sink);
  const Bytes payload = pattern_bytes(3, msg_size);

  auto spawn = [&eng](int, sim::Task<void> t) { eng.spawn(std::move(t)); };
  auto run = [&eng] { return eng.run(); };

  all_to_all(eps, got, payload, warmup_pairs, spawn, run);
  Measured m;
  std::vector<double> walls;
  for (int r = 0; r < reps; ++r) {
    bench::alloc_hook_reset();
    const auto t0 = Clock::now();
    m.events = all_to_all(eps, got, payload, per_pair, spawn, run);
    const auto t1 = Clock::now();
    m.allocs = std::max(m.allocs, bench::alloc_hook_count());
    walls.push_back(std::chrono::duration<double>(t1 - t0).count());
  }
  m.wall_s = bench::median(walls);
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t msg_size =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1024;
  const int per_pair = argc > 2 ? std::atoi(argv[2]) : 100;
  const char* out_path = argc > 3 ? argv[3] : "BENCH_parallel.json";
  const int reps = std::max(argc > 4 ? std::atoi(argv[4]) : 5, 1);
  const int warmup_pairs = std::max(1, per_pair / 8);
  const int thread_counts[] = {1, 2, 4, 8};
  const unsigned cpus = std::thread::hardware_concurrency();
  const sim::Ps lookahead =
      net::Fabric::cross_lookahead(net::ppro_fm2_cluster(kHosts).fabric);

  std::printf("parallel_scaling: %d-node all-to-all, %d msgs/pair x %zu B, "
              "%d reps (medians), %u cpu(s), lookahead %.0f ns\n",
              kHosts, per_pair, msg_size, reps, cpus, sim::to_ns(lookahead));

  const Measured serial = run_serial(msg_size, per_pair, warmup_pairs, reps);
  const double serial_eps = serial.events / serial.wall_s;
  std::printf("  serial engine      %9.3g events/sec (%llu events, %.3f s)\n",
              serial_eps, static_cast<unsigned long long>(serial.events),
              serial.wall_s);

  // Events per cluster window-equivalent: windows counts non-empty
  // per-shard quanta, so one "every shard stepped once" stretch
  // contributes n_shards of them.
  auto epw = [](const Measured& m) {
    return static_cast<double>(m.events) * kShards / m.windows;
  };

  auto sweep = [&](const char* name, bool ring, Measured (&out)[4],
                   double (&eps)[4]) {
    bool ok = true;
    for (int k = 0; k < 4; ++k) {
      out[k] = run_parallel(thread_counts[k], msg_size, per_pair,
                            warmup_pairs, reps, ring);
      eps[k] = out[k].events / out[k].wall_s;
      if (out[k].digest != out[0].digest || out[k].events != out[0].events) {
        ok = false;
      }
      std::printf("  %s %d thread  %9.3g events/sec (digest %016llx, "
                  "%.4f allocs/event, %.0f events/window, %llu parks)\n",
                  name, thread_counts[k], eps[k],
                  static_cast<unsigned long long>(out[k].digest),
                  static_cast<double>(out[k].allocs) / out[k].events,
                  epw(out[k]),
                  static_cast<unsigned long long>(out[k].barrier_crossings));
    }
    return ok;
  };

  Measured par[4], rng[4];
  double par_eps[4], rng_eps[4];
  const bool a2a_ok = sweep("alltoall", false, par, par_eps);
  const bool ring_ok = sweep("ring    ", true, rng, rng_eps);
  const bool digest_ok = a2a_ok && ring_ok;

  const double speedup_4t = par_eps[2] / par_eps[0];
  const double ring_speedup_4t = rng_eps[2] / rng_eps[0];
  const double shard_tax_pct = 100.0 * (serial_eps - par_eps[0]) / serial_eps;
  std::printf("  speedup at 4 threads: %.2fx alltoall, %.2fx ring; shard "
              "tax %.1f%%; digests %s\n",
              speedup_4t, ring_speedup_4t, shard_tax_pct,
              digest_ok ? "identical" : "DIVERGED");

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::perror("fopen");
    return 1;
  }
  auto emit_rows = [&](const Measured (&m)[4], const double (&eps)[4]) {
    for (int k = 0; k < 4; ++k) {
      std::fprintf(
          f,
          "    {\"threads\": %d, \"events_per_sec\": %.1f, "
          "\"allocs_per_event\": %.6f, \"windows\": %llu, "
          "\"events_per_window\": %.2f, \"barrier_crossings\": %llu, "
          "\"digest\": \"%016llx\"}%s\n",
          thread_counts[k], eps[k],
          static_cast<double>(m[k].allocs) / m[k].events,
          static_cast<unsigned long long>(m[k].windows), epw(m[k]),
          static_cast<unsigned long long>(m[k].barrier_crossings),
          static_cast<unsigned long long>(m[k].digest), k < 3 ? "," : "");
    }
  };
  std::fprintf(f,
               "{\n"
               "  \"workload\": \"fm2_alltoall_stream\",\n"
               "  \"n_hosts\": %d,\n"
               "  \"msg_size\": %zu,\n"
               "  \"msgs_per_pair\": %d,\n"
               "  \"repetitions\": %d,\n"
               "  \"cpus\": %u,\n"
               "  \"cpu_model\": \"%s\",\n"
               "  \"lookahead_ps\": %llu,\n"
               "  \"serial_events_per_sec\": %.1f,\n"
               "  \"serial_events\": %llu,\n"
               "  \"threads\": [\n",
               kHosts, msg_size, per_pair, reps, cpus,
               bench::cpu_model().c_str(),
               static_cast<unsigned long long>(lookahead), serial_eps,
               static_cast<unsigned long long>(serial.events));
  emit_rows(par, par_eps);
  std::fprintf(f,
               "  ],\n"
               "  \"events_per_window\": %.2f,\n"
               "  \"speedup_4t_vs_1t\": %.3f,\n"
               "  \"shard_tax_pct\": %.2f,\n"
               "  \"ring\": {\n"
               "    \"workload\": \"fm2_ring_exchange\",\n"
               "    \"speedup_4t_vs_1t\": %.3f,\n"
               "    \"threads\": [\n",
               epw(par[0]), speedup_4t, shard_tax_pct, ring_speedup_4t);
  emit_rows(rng, rng_eps);
  std::fprintf(f,
               "    ]\n"
               "  },\n"
               "  \"digest_ok\": %s\n"
               "}\n",
               digest_ok ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return digest_ok ? 0 : 1;
}
