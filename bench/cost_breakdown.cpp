// "Software overhead in messaging layers: where does the time go?" — the
// question of the ASPLOS'94 study behind §2.3, asked of our own stacks.
// Per-category host-time breakdown (from the cost ledger every layer
// charges) for a 2 KB-message streaming workload, sender and receiver.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "mpi/mpi_fm1.hpp"
#include "mpi/mpi_fm2.hpp"

using namespace fmx;
using sim::Cost;
using sim::CostLedger;
using sim::Engine;
using sim::Task;

namespace {

struct Ledgers {
  CostLedger tx, rx;
};

void print_breakdown(const char* name, const Ledgers& l) {
  auto pct = [](const CostLedger& led, Cost c) {
    return led.total() == 0
               ? 0.0
               : 100.0 * static_cast<double>(led.of(c)) /
                     static_cast<double>(led.total());
  };
  const Cost cats[] = {Cost::kCall,   Cost::kCopy,       Cost::kHeader,
                       Cost::kPio,    Cost::kDispatch,   Cost::kMatch,
                       Cost::kBufferMgmt, Cost::kFlowCtl};
  std::printf("%-14s", name);
  for (Cost c : cats) std::printf(" %6.1f", pct(l.tx, c));
  std::printf("   | copies/msg %.1f\n",
              static_cast<double>(l.tx.copies()) / 100.0);
  std::printf("%-14s", "  (receiver)");
  for (Cost c : cats) std::printf(" %6.1f", pct(l.rx, c));
  std::printf("   | copies/msg %.1f\n",
              static_cast<double>(l.rx.copies()) / 100.0);
}

constexpr int kMsgs = 100;
constexpr std::size_t kSize = 2048;

Ledgers fm1_run() {
  Engine eng;
  net::Cluster cluster(eng, net::sparc_fm1_cluster(2));
  fm1::Endpoint tx(cluster, 0), rx(cluster, 1);
  int got = 0;
  rx.register_handler(0, [&](int, ByteSpan) { ++got; });
  eng.spawn([](fm1::Endpoint& ep) -> Task<void> {
    Bytes m(kSize);
    for (int i = 0; i < kMsgs; ++i) co_await ep.send(1, 0, ByteSpan{m});
  }(tx));
  eng.spawn([](fm1::Endpoint& ep, int& g) -> Task<void> {
    co_await ep.poll_until([&] { return g == kMsgs; });
  }(rx, got));
  eng.run();
  return Ledgers{tx.host().ledger(), rx.host().ledger()};
}

Ledgers fm2_run() {
  Engine eng;
  net::Cluster cluster(eng, net::ppro_fm2_cluster(2));
  fm2::Endpoint tx(cluster, 0), rx(cluster, 1);
  int got = 0;
  Bytes sink(kSize);
  rx.register_handler(0, [&](fm2::RecvStream& s, int) -> fm2::HandlerTask {
    co_await s.receive(sink.data(), s.msg_bytes());
    ++got;
  });
  eng.spawn([](fm2::Endpoint& ep) -> Task<void> {
    Bytes m(kSize);
    for (int i = 0; i < kMsgs; ++i) co_await ep.send(1, 0, ByteSpan{m});
  }(tx));
  eng.spawn([](fm2::Endpoint& ep, int& g) -> Task<void> {
    co_await ep.poll_until([&] { return g == kMsgs; });
  }(rx, got));
  eng.run();
  return Ledgers{tx.host().ledger(), rx.host().ledger()};
}

template <typename MpiT>
Ledgers mpi_run(const net::ClusterParams& cp) {
  Engine eng;
  net::Cluster cluster(eng, cp);
  MpiT tx(cluster, 0), rx(cluster, 1);
  eng.spawn([](mpi::Comm& c) -> Task<void> {
    Bytes m(kSize);
    for (int i = 0; i < kMsgs; ++i) co_await c.send(ByteSpan{m}, 1, 0);
  }(tx));
  eng.spawn([](mpi::Comm& c) -> Task<void> {
    std::vector<Bytes> bufs(kMsgs, Bytes(kSize));
    std::vector<mpi::Request> reqs;
    for (int i = 0; i < kMsgs; ++i) {
      reqs.push_back(co_await c.irecv(MutByteSpan{bufs[i]}, 0, 0));
    }
    for (auto& r : reqs) co_await c.wait(r);
  }(rx));
  eng.run();
  return Ledgers{tx.fm().host().ledger(), rx.fm().host().ledger()};
}

}  // namespace

int main() {
  std::puts("=== Where does the (host) time go? — % of charged host time "
            "per category,\n    100 x 2 KB messages, sender row then "
            "receiver row ===\n");
  std::printf("%-14s %6s %6s %6s %6s %6s %6s %6s %6s\n", "stack", "call",
              "copy", "header", "pio", "dispat", "match", "bufmgm", "flow");
  print_breakdown("FM 1.x", fm1_run());
  print_breakdown("MPI-FM 1.x",
                  mpi_run<mpi::MpiFm1>(net::sparc_fm1_cluster(2)));
  print_breakdown("FM 2.x", fm2_run());
  print_breakdown("MPI-FM 2.0",
                  mpi_run<mpi::MpiFm2>(net::ppro_fm2_cluster(2)));
  std::puts("\nreading: FM 1.x sender time is PIO; MPI-FM 1.x drowns in "
            "copy + buffer management\n(the paper's diagnosis); FM 2.x / "
            "MPI-FM 2.0 receivers spend their time on the single\n"
            "stream->user copy, with matching a thin layer on top.");

  // The same question asked of *elapsed* time instead of charged host time:
  // the tracer splits each message's lifetime into pipeline stages.
  std::puts("\n=== Where does the (elapsed) time go? — per-message latency "
            "breakdown,\n    traced 2 KB streams, mean over 100 messages "
            "===");
  bench::print_breakdown_rows(
      "",
      {{"FM 1.x", bench::fm1_breakdown(net::sparc_fm1_cluster(2), kSize,
                                       kMsgs)},
       {"FM 2.x", bench::fm2_breakdown(net::ppro_fm2_cluster(2), kSize,
                                       kMsgs)}});
  std::puts("\nreading: FM 1.x 'queue' includes waiting for full reassembly "
            "(the handler only\nruns after the last packet); FM 2.x hides "
            "that wait inside 'handler' by streaming\npackets into the "
            "running handler as they arrive.");
  return 0;
}
