#!/usr/bin/env python3
"""Benchmark smoke check: catch large substrate performance regressions.

Runs `substrate_throughput` briefly and compares wall-clock events/sec
against the committed baseline (BENCH_substrate.json at the repo root).
Fails if throughput dropped by more than --factor (default 2x), or if the
steady-state allocation count per event regressed above --max-allocs
(default 0.01 — the whole point of the pooled hot path is ~0).

Wall-clock numbers are machine-dependent, so the gate is deliberately
loose: it catches "someone reintroduced a per-event allocation or an
accidental O(n) queue", not single-digit-percent noise.

Usage:
  scripts/bench_check.py --binary build/bench/substrate_throughput \
      [--baseline BENCH_substrate.json] [--factor 2.0] [--max-allocs 0.01]

Exit status: 0 ok, 1 regression, 2 usage/environment error.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--binary", required=True,
                    help="path to the substrate_throughput executable")
    ap.add_argument("--baseline", default="BENCH_substrate.json",
                    help="committed baseline JSON (default: %(default)s)")
    ap.add_argument("--factor", type=float, default=2.0,
                    help="max tolerated slowdown vs baseline "
                         "(default: %(default)s)")
    ap.add_argument("--max-allocs", type=float, default=0.01,
                    help="max allocs/event before failing "
                         "(default: %(default)s)")
    ap.add_argument("--msgs", type=int, default=500,
                    help="messages to stream (kept short for the smoke "
                         "gate; default: %(default)s)")
    args = ap.parse_args()

    if not os.path.exists(args.baseline):
        print(f"bench_check: baseline {args.baseline!r} not found",
              file=sys.stderr)
        return 2
    with open(args.baseline) as f:
        base = json.load(f)

    out_json = os.path.join(tempfile.mkdtemp(prefix="bench_check_"),
                            "current.json")
    cmd = [args.binary, str(base.get("msg_size", 4096)), str(args.msgs),
           out_json]
    try:
        subprocess.run(cmd, check=True, stdout=subprocess.PIPE)
    except (OSError, subprocess.CalledProcessError) as e:
        print(f"bench_check: failed to run {cmd}: {e}", file=sys.stderr)
        return 2
    with open(out_json) as f:
        cur = json.load(f)

    base_eps = base["events_per_sec"]
    cur_eps = cur["events_per_sec"]
    allocs = cur["allocs_per_event"]
    floor = base_eps / args.factor

    print(f"bench_check: events/sec {cur_eps:,.0f} "
          f"(baseline {base_eps:,.0f}, floor {floor:,.0f}); "
          f"allocs/event {allocs:.6f} (max {args.max_allocs})")

    ok = True
    if cur_eps < floor:
        print(f"bench_check: REGRESSION: events/sec below "
              f"baseline/{args.factor:g}", file=sys.stderr)
        ok = False
    if allocs > args.max_allocs:
        print("bench_check: REGRESSION: steady-state allocations returned "
              "to the event/packet hot path", file=sys.stderr)
        ok = False

    # Tracing tax (keys absent from pre-tracing baselines — skip then).
    traced_eps = cur.get("traced_events_per_sec")
    traced_allocs = cur.get("traced_allocs_per_event")
    if traced_eps is not None and traced_allocs is not None:
        pct = 100.0 * (cur_eps - traced_eps) / cur_eps
        print(f"bench_check: tracing on/off {traced_eps:,.0f} / "
              f"{cur_eps:,.0f} events/sec ({pct:+.1f}% overhead); "
              f"traced allocs/event {traced_allocs:.6f}")
        if traced_allocs > args.max_allocs:
            print("bench_check: REGRESSION: tracing allocates in the "
                  "steady state (the ring must be preallocated at "
                  "enable())", file=sys.stderr)
            ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
