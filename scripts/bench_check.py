#!/usr/bin/env python3
"""Benchmark smoke check: catch large substrate performance regressions.

Substrate gate (--binary): runs `substrate_throughput` briefly and compares
wall-clock events/sec against the committed baseline (BENCH_substrate.json
at the repo root). Fails if throughput dropped by more than --factor
(default 2x), or if the steady-state allocation count per event regressed
above --max-allocs (default 0.01 — the whole point of the pooled hot path
is ~0).

Parallel gate (--parallel-binary): runs `parallel_scaling` briefly and
checks the sharded engine against BENCH_parallel.json:
  - the determinism digest must be identical at every thread count and on
    both workloads (dense all-to-all and the sparse ring exchange),
  - steady-state allocs/event per thread count is pinned at exactly
    --parallel-max-allocs (default 0 — the persistent worker pool and the
    per-shard pools leave nothing to allocate),
  - events_per_window on the all-to-all workload must reach
    --min-events-per-window (default 50) at every thread count: batched
    windows are the whole point of the published-horizon scheduler, and a
    regression to ~lookahead-sized quanta shows up here first,
  - "serial-mode regression": the sharded cluster at 1 thread must stay
    within --max-shard-tax percent (default 5) of the single-engine serial
    simulator measured in the SAME run — a machine-independent ratio,
  - speedup at 4 threads must reach --min-speedup (default 1.5x), enforced
    only when the machine actually has >= 4 CPUs; on smaller machines the
    check is reported and skipped (a worker pool cannot speed up a
    1-core box, and failing there would only test the container size).

Rendezvous gate (--rendezvous-binary): runs `rendezvous_crossover` and
checks the eager vs rendezvous/RDMA protocol sweep. Everything in that
bench is *simulated* time, so unlike the wall-clock gates the comparisons
are exact:
  - zero-copy proof: the RDMA streaming run must report 0 per-hop
    simulator copies, every payload byte placed exactly once by the
    modeled DMA engine, and endpoint (host CPU) copies below one
    payload's worth (control traffic only),
  - crossover monotonicity: the eager/rdma latency advantage must flip
    exactly once across the size sweep (a clean protocol crossover),
  - the crossover size must equal the committed baseline exactly —
    simulated time is machine-independent, so any drift is a real
    protocol-cost change that needs a deliberate baseline update.

Fabric gate (--fabric-binary): runs `fabric_scale` on a reduced fat-tree
(default 128 hosts, 64 flows/host, 1 and 2 worker threads) and checks the
datacenter-scale traffic engine invariants:
  - the completion digest must be identical at every thread count and the
    wave must complete every scheduled flow,
  - steady-state allocs/event is pinned at exactly --fabric-max-allocs
    (default 0): the measured wave replays a schedule the warmup wave
    already sized every pool for,
  - every reported latency layer (src_queue/transit/deliver/handler/e2e)
    must carry observations and finite p50/p99/p999 — a NaN/missing tail
    means the histogram plumbing broke, which digests alone cannot see.

Collectives gate (--collectives-binary): runs `scaling_collectives` on a
reduced rank sweep (default up to --collectives-ranks = 128) and checks
the NIC-offloaded collective engine against the host-level ablation.
Everything in that bench is simulated time, so the checks are exact:
  - offload proof: every NIC-phase row must report 0 FM handler starts
    (interior tree steps run NIC-to-NIC; completion is polled) and 0
    cluster-wide heap allocations (warmed pools),
  - the bench's own single-interrupt accounting (completions_ok) must
    hold: summed NIC completions == one host interruption per operation,
  - the NIC barrier must beat the host dissemination barrier by
    --min-coll-speedup (default 1.5x) at 64 ranks and beyond, with the
    absolute saving per barrier (host - nic us) non-decreasing in rank
    count on each preset,
  - host latency must grow monotonically with ranks for every op (more
    ranks can't be free), and every overlapping (preset, ranks, op) row
    must match the committed BENCH_collectives.json exactly — each
    configuration is an independent engine, so a reduced sweep reproduces
    the committed rows verbatim and any drift is a real protocol-cost
    change that needs a deliberate baseline update.

Wall-clock numbers are machine-dependent, so the absolute gates are
deliberately loose: they catch "someone reintroduced a per-event
allocation or an accidental O(n) queue", not single-digit-percent noise.

Usage:
  scripts/bench_check.py --binary build/bench/substrate_throughput \
      [--baseline BENCH_substrate.json] [--factor 2.0] [--max-allocs 0.01]
  scripts/bench_check.py --parallel-binary build/bench/parallel_scaling \
      [--parallel-baseline BENCH_parallel.json] [--min-speedup 1.5] \
      [--max-shard-tax 5.0]
  scripts/bench_check.py --rendezvous-binary build/bench/rendezvous_crossover \
      [--rendezvous-baseline BENCH_rendezvous.json]
  scripts/bench_check.py --fabric-binary build/bench/fabric_scale \
      [--fabric-hosts 128] [--fabric-flows 64] [--fabric-max-allocs 0]
  scripts/bench_check.py --collectives-binary build/bench/scaling_collectives \
      [--collectives-baseline BENCH_collectives.json] \
      [--collectives-ranks 128] [--min-coll-speedup 1.5]

Exit status: 0 ok, 1 regression, 2 usage/environment error.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile


def _run_to_json(cmd):
    """Run a bench writing its JSON artifact; return the parsed dict."""
    subprocess.run(cmd, check=True, stdout=subprocess.PIPE)
    with open(cmd[-1]) as f:
        return json.load(f)


def check_substrate(args) -> bool:
    with open(args.baseline) as f:
        base = json.load(f)
    out_json = os.path.join(tempfile.mkdtemp(prefix="bench_check_"),
                            "current.json")
    cmd = [args.binary, str(base.get("msg_size", 4096)), str(args.msgs),
           out_json]
    cur = _run_to_json(cmd)

    base_eps = base["events_per_sec"]
    cur_eps = cur["events_per_sec"]
    allocs = cur["allocs_per_event"]
    floor = base_eps / args.factor

    print(f"bench_check: events/sec {cur_eps:,.0f} "
          f"(baseline {base_eps:,.0f}, floor {floor:,.0f}); "
          f"allocs/event {allocs:.6f} (max {args.max_allocs})")

    ok = True
    if cur_eps < floor:
        print(f"bench_check: REGRESSION: events/sec below "
              f"baseline/{args.factor:g}", file=sys.stderr)
        ok = False
    if allocs > args.max_allocs:
        print("bench_check: REGRESSION: steady-state allocations returned "
              "to the event/packet hot path", file=sys.stderr)
        ok = False

    # Tracing tax (keys absent from pre-tracing baselines — skip then).
    traced_eps = cur.get("traced_events_per_sec")
    traced_allocs = cur.get("traced_allocs_per_event")
    if traced_eps is not None and traced_allocs is not None:
        pct = 100.0 * (cur_eps - traced_eps) / cur_eps
        print(f"bench_check: tracing on/off {traced_eps:,.0f} / "
              f"{cur_eps:,.0f} events/sec ({pct:+.1f}% overhead); "
              f"traced allocs/event {traced_allocs:.6f}")
        if traced_allocs > args.max_allocs:
            print("bench_check: REGRESSION: tracing allocates in the "
                  "steady state (the ring must be preallocated at "
                  "enable())", file=sys.stderr)
            ok = False

    # Zero-copy data-plane gates (keys absent from pre-zero-copy baselines
    # and binaries — skip then). Serial steady state must do no physical
    # per-hop payload copies, and the *modeled* copy count per message must
    # not drift: zero-copy is a simulator optimisation, not a change to
    # what the simulated machine is charged.
    hop_copies = cur.get("real_hop_copies")
    if hop_copies is not None:
        print(f"bench_check: real copies/msg "
              f"{cur['real_copies'] / cur['n_msgs']:.1f} endpoint, "
              f"{hop_copies} per-hop total; modeled copies/msg "
              f"{cur['modeled_copies'] / cur['n_msgs']:.1f}")
        if hop_copies != 0:
            print("bench_check: REGRESSION: physical per-hop payload "
                  "copies returned to the serial wire path (NIC "
                  "retention, staging or COW is copying again)",
                  file=sys.stderr)
            ok = False
        base_mod = base.get("modeled_copies")
        if base_mod is not None:
            # Exact rational compare of copies-per-message: run lengths
            # differ between the gate and the committed baseline.
            if cur["modeled_copies"] * base["n_msgs"] != \
                    base_mod * cur["n_msgs"]:
                print("bench_check: REGRESSION: modeled copies per message "
                      f"changed ({cur['modeled_copies']}/{cur['n_msgs']} "
                      f"msgs vs baseline {base_mod}/{base['n_msgs']})",
                      file=sys.stderr)
                ok = False
    return ok


def check_parallel(args) -> bool:
    with open(args.parallel_baseline) as f:
        base = json.load(f)
    out_json = os.path.join(tempfile.mkdtemp(prefix="bench_check_par_"),
                            "parallel.json")
    cmd = [args.parallel_binary, str(base.get("msg_size", 1024)),
           str(args.parallel_msgs), out_json]
    cur = _run_to_json(cmd)

    ok = True
    if not cur.get("digest_ok", False):
        print("bench_check: REGRESSION: parallel determinism digest "
              "diverged across thread counts", file=sys.stderr)
        ok = False

    per_thread = {t["threads"]: t for t in cur.get("threads", [])}
    for n, row in sorted(per_thread.items()):
        allocs = row["allocs_per_event"]
        epw = row.get("events_per_window")
        epw_txt = f", {epw:,.0f} events/window" if epw is not None else ""
        print(f"bench_check: parallel {n}t {row['events_per_sec']:,.0f} "
              f"events/sec, allocs/event {allocs:.6f}{epw_txt}")
        if allocs > args.parallel_max_allocs:
            print(f"bench_check: REGRESSION: steady-state allocations in "
                  f"the sharded hot path at {n} threads (must be exactly "
                  f"{args.parallel_max_allocs:g})", file=sys.stderr)
            ok = False
        # Batching-quality gate (key absent from pre-batching baselines and
        # binaries — skip then). Dense all-to-all must run hundreds of
        # events per non-empty quantum; a collapse back to one-lookahead
        # windows is a scheduler regression even when digests still match.
        if epw is not None and epw < args.min_events_per_window:
            print(f"bench_check: REGRESSION: all-to-all events/window "
                  f"{epw:,.1f} at {n} threads below "
                  f"{args.min_events_per_window:g} — window batching "
                  f"collapsed", file=sys.stderr)
            ok = False

    # Ring neighbor-exchange sweep (absent from older binaries — skip
    # then). Digest identity is already folded into top-level digest_ok;
    # the alloc gate applies here too: the sparse workload is where the
    # cross-thread frame drain used to surface a stray slab carve.
    ring = cur.get("ring")
    if ring:
        for row in ring.get("threads", []):
            allocs = row.get("allocs_per_event", 0.0)
            print(f"bench_check: ring {row['threads']}t "
                  f"{row['events_per_sec']:,.0f} events/sec, "
                  f"allocs/event {allocs:.6f}, "
                  f"{row['events_per_window']:,.0f} events/window")
            if allocs > args.parallel_max_allocs:
                print(f"bench_check: REGRESSION: steady-state allocations "
                      f"in the ring workload at {row['threads']} threads "
                      f"(must be exactly {args.parallel_max_allocs:g})",
                      file=sys.stderr)
                ok = False

    # Serial-mode regression: same run, same machine, so the tolerance can
    # be tight. shard_tax is (serial - parallel@1t)/serial; negative means
    # the sharded path is faster than the single heap, which is fine.
    tax = cur.get("shard_tax_pct", 0.0)
    print(f"bench_check: shard tax at 1 thread {tax:+.1f}% "
          f"(max {args.max_shard_tax:g}%)")
    if tax > args.max_shard_tax:
        print("bench_check: REGRESSION: 1-thread sharded run fell more "
              f"than {args.max_shard_tax:g}% behind the serial engine",
              file=sys.stderr)
        ok = False

    # Loose cross-commit wall-clock gate, like the substrate one.
    base_1t = next((t for t in base.get("threads", [])
                    if t["threads"] == 1), None)
    cur_1t = per_thread.get(1)
    if base_1t and cur_1t:
        floor = base_1t["events_per_sec"] / args.factor
        if cur_1t["events_per_sec"] < floor:
            print(f"bench_check: REGRESSION: parallel 1t events/sec below "
                  f"baseline/{args.factor:g} ({floor:,.0f})",
                  file=sys.stderr)
            ok = False

    cpus = cur.get("cpus", 0)
    speedup = cur.get("speedup_4t_vs_1t", 0.0)
    if cpus >= 4:
        print(f"bench_check: speedup at 4 threads {speedup:.2f}x "
              f"(min {args.min_speedup:g}x, {cpus} cpus)")
        if speedup < args.min_speedup:
            print("bench_check: REGRESSION: parallel speedup at 4 threads "
                  f"below {args.min_speedup:g}x", file=sys.stderr)
            ok = False
    else:
        print(f"bench_check: speedup at 4 threads {speedup:.2f}x — gate "
              f"SKIPPED: machine has {cpus} cpu(s), need >= 4 for the "
              f"{args.min_speedup:g}x check to be meaningful")
    return ok


def check_rendezvous(args) -> bool:
    with open(args.rendezvous_baseline) as f:
        base = json.load(f)
    out_json = os.path.join(tempfile.mkdtemp(prefix="bench_check_rdzv_"),
                            "rendezvous.json")
    cur = _run_to_json([args.rendezvous_binary, out_json])

    ok = True
    zc = cur["zero_copy"]
    print(f"bench_check: rendezvous zero-copy: {zc['hop_copies']} hop "
          f"copies, {zc['rdma_bytes']}/{zc['payload_bytes']} rdma bytes "
          f"placed, {zc['endpoint_bytes']} endpoint bytes (control)")
    if zc["hop_copies"] != 0:
        print("bench_check: REGRESSION: the rendezvous/RDMA path performs "
              "per-hop simulator copies (COW clone or cross-shard copy on "
              "the remote-write data plane)", file=sys.stderr)
        ok = False
    if zc["rdma_bytes"] != zc["payload_bytes"]:
        print("bench_check: REGRESSION: RDMA placement bytes != payload "
              "bytes — chunks are being dropped, duplicated, or staged "
              "through the endpoint path", file=sys.stderr)
        ok = False
    if zc["endpoint_bytes"] >= max(s["bytes"] for s in cur["sizes"]):
        print("bench_check: REGRESSION: rendezvous endpoint (host CPU) "
              "copies exceed control-traffic volume — a payload is being "
              "staged through host memory again", file=sys.stderr)
        ok = False

    flips = cur.get("advantage_flips")
    crossover = cur.get("crossover_bytes")
    print(f"bench_check: rendezvous crossover {crossover} bytes, "
          f"{flips} advantage flip(s) (baseline "
          f"{base.get('crossover_bytes')})")
    if flips != 1:
        print("bench_check: REGRESSION: eager/rdma latency advantage "
              f"flipped {flips} times across the sweep — the protocol "
              "crossover is no longer monotone", file=sys.stderr)
        ok = False
    # Simulated time: exact compare, not a tolerance band.
    if crossover != base.get("crossover_bytes"):
        print("bench_check: REGRESSION: crossover size moved from "
              f"{base.get('crossover_bytes')} to {crossover} bytes — "
              "protocol costs changed; update BENCH_rendezvous.json "
              "deliberately if intended", file=sys.stderr)
        ok = False
    return ok


def check_fabric(args) -> bool:
    import math
    out_json = os.path.join(tempfile.mkdtemp(prefix="bench_check_fab_"),
                            "fabric.json")
    cmd = [args.fabric_binary, "--hosts", str(args.fabric_hosts),
           "--flows-per-host", str(args.fabric_flows),
           "--shards", "4", "--threads", "1,2", "--out", out_json]
    # The bench itself exits non-zero on digest divergence; capture that as
    # a regression rather than a harness error.
    proc = subprocess.run(cmd, stdout=subprocess.PIPE)
    with open(out_json) as f:
        cur = json.load(f)

    ok = True
    if proc.returncode != 0 or not cur.get("digest_ok", False):
        print("bench_check: REGRESSION: fabric traffic digest diverged "
              "across thread counts (or a wave left flows incomplete)",
              file=sys.stderr)
        ok = False

    for row in cur.get("threads", []):
        allocs = row["allocs_per_event"]
        print(f"bench_check: fabric {row['threads']}t "
              f"{row['events_per_sec']:,.0f} events/sec, "
              f"allocs/event {allocs:.6f}, digest {row['digest']}")
        if allocs > args.fabric_max_allocs:
            print(f"bench_check: REGRESSION: steady-state allocations in "
                  f"the fabric traffic wave at {row['threads']} threads "
                  f"(must be exactly {args.fabric_max_allocs:g})",
                  file=sys.stderr)
            ok = False

    total = cur.get("total_flows", 0)
    layers = {l["layer"]: l for l in cur.get("layers", [])}
    for name in ("src_queue", "transit", "deliver", "handler", "e2e"):
        lay = layers.get(name)
        if lay is None:
            print(f"bench_check: REGRESSION: fabric layer {name!r} missing "
                  f"from the quantile report", file=sys.stderr)
            ok = False
            continue
        p50, p99, p999 = lay["p50_us"], lay["p99_us"], lay["p999_us"]
        print(f"bench_check: fabric {name:9s} n={lay['count']} "
              f"p50 {p50:.3f} us, p99 {p99:.3f} us, p999 {p999:.3f} us")
        if lay["count"] != total or total == 0:
            print(f"bench_check: REGRESSION: fabric layer {name!r} saw "
                  f"{lay['count']} observations, expected {total}",
                  file=sys.stderr)
            ok = False
        if not all(math.isfinite(v) for v in (p50, p99, p999)) \
                or p999 < p99 or p99 < p50 or p50 < 0:
            print(f"bench_check: REGRESSION: fabric layer {name!r} "
                  f"quantiles are non-finite or non-monotone",
                  file=sys.stderr)
            ok = False
    return ok


def check_collectives(args) -> bool:
    with open(args.collectives_baseline) as f:
        base = json.load(f)
    out_json = os.path.join(tempfile.mkdtemp(prefix="bench_check_coll_"),
                            "collectives.json")
    cmd = [args.collectives_binary, "--max-ranks",
           str(args.collectives_ranks), "--out", out_json]
    # The bench exits non-zero when its own single-interrupt or
    # quiet-NIC-phase accounting fails; fold that into the row checks
    # below instead of treating it as a harness error.
    subprocess.run(cmd, stdout=subprocess.PIPE)
    with open(out_json) as f:
        cur = json.load(f)

    ok = True
    if not cur.get("completions_ok", False):
        print("bench_check: REGRESSION: NIC collective completions != one "
              "host interruption per operation", file=sys.stderr)
        ok = False

    rows = cur.get("results", [])
    by_key = {(r["preset"], r["ranks"], r["op"]): r for r in rows}
    presets = sorted({r["preset"] for r in rows})
    ops = sorted({r["op"] for r in rows})

    for r in rows:
        # Offload proof: interior steps never start a host handler, and
        # the warmed NIC phases are allocation-free cluster-wide.
        if r["nic_handler_starts"] != 0:
            print(f"bench_check: REGRESSION: {r['preset']}/{r['ranks']} "
                  f"{r['op']}: NIC phase started "
                  f"{r['nic_handler_starts']} host handlers (must be 0 — "
                  f"the host is only interrupted at completion)",
                  file=sys.stderr)
            ok = False
        if r["nic_allocs"] != 0:
            print(f"bench_check: REGRESSION: {r['preset']}/{r['ranks']} "
                  f"{r['op']}: {r['nic_allocs']} heap allocations in the "
                  f"NIC phase (must be 0 after warmup)", file=sys.stderr)
            ok = False

    for preset in presets:
        for op in ops:
            series = sorted((r["ranks"], r) for k, r in by_key.items()
                            if k[0] == preset and k[2] == op)
            # Host latency monotone in ranks: more ranks can't be free.
            for (_, a), (_, b) in zip(series, series[1:]):
                if b["host_us"] < a["host_us"]:
                    print(f"bench_check: REGRESSION: {preset} {op} host "
                          f"latency fell from {a['host_us']:.1f} us at "
                          f"{a['ranks']} ranks to {b['host_us']:.1f} us "
                          f"at {b['ranks']} ranks", file=sys.stderr)
                    ok = False
            if op != "barrier":
                continue
            # Offload payoff: speedup floor at 64+ ranks, and the absolute
            # saving per barrier (host - nic us) non-decreasing with rank
            # count. The saving is the gated "gap": the ratio wobbles by a
            # few percent when the leader heap gains a level while the
            # host's dissemination rounds grow smoothly, but every host
            # round the tree avoids is time saved, and that saving must
            # grow with scale.
            gated = [r for _, r in series if r["ranks"] >= 64]
            for r in gated:
                print(f"bench_check: {preset} barrier {r['ranks']} ranks: "
                      f"host {r['host_us']:.1f} us, nic "
                      f"{r['nic_us']:.1f} us, speedup "
                      f"{r['speedup']:.2f}x, saved "
                      f"{r['host_us'] - r['nic_us']:.1f} us")
                if r["speedup"] < args.min_coll_speedup:
                    print(f"bench_check: REGRESSION: NIC barrier speedup "
                          f"{r['speedup']:.2f}x at {r['ranks']} ranks "
                          f"below {args.min_coll_speedup:g}x",
                          file=sys.stderr)
                    ok = False
            for a, b in zip(gated, gated[1:]):
                gap_a = a["host_us"] - a["nic_us"]
                gap_b = b["host_us"] - b["nic_us"]
                if gap_b < gap_a:
                    print(f"bench_check: REGRESSION: {preset} barrier "
                          f"offload saving shrank from {gap_a:.1f} us at "
                          f"{a['ranks']} ranks to {gap_b:.1f} us at "
                          f"{b['ranks']} ranks — the offload gap must "
                          f"grow with scale", file=sys.stderr)
                    ok = False

    # Simulated time: every overlapping row must match the committed
    # baseline bit-for-bit (independent engines per configuration, so a
    # reduced sweep reproduces the full-sweep rows).
    base_by_key = {(r["preset"], r["ranks"], r["op"]): r
                   for r in base.get("results", [])}
    compared = 0
    for key, r in by_key.items():
        b = base_by_key.get(key)
        if b is None:
            continue
        compared += 1
        if r["host_us"] != b["host_us"] or r["nic_us"] != b["nic_us"]:
            print(f"bench_check: REGRESSION: {key[0]}/{key[1]} {key[2]} "
                  f"moved: host {b['host_us']} -> {r['host_us']} us, nic "
                  f"{b['nic_us']} -> {r['nic_us']} us; update "
                  f"BENCH_collectives.json deliberately if intended",
                  file=sys.stderr)
            ok = False
    print(f"bench_check: collectives: {len(rows)} rows, {compared} "
          f"compared exactly against baseline")
    if compared == 0:
        print("bench_check: REGRESSION: no overlap with the committed "
              "collectives baseline", file=sys.stderr)
        ok = False
    return ok


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--binary",
                    help="path to the substrate_throughput executable")
    ap.add_argument("--baseline", default="BENCH_substrate.json",
                    help="committed substrate baseline JSON "
                         "(default: %(default)s)")
    ap.add_argument("--parallel-binary",
                    help="path to the parallel_scaling executable")
    ap.add_argument("--parallel-baseline", default="BENCH_parallel.json",
                    help="committed parallel baseline JSON "
                         "(default: %(default)s)")
    ap.add_argument("--rendezvous-binary",
                    help="path to the rendezvous_crossover executable")
    ap.add_argument("--rendezvous-baseline", default="BENCH_rendezvous.json",
                    help="committed rendezvous baseline JSON "
                         "(default: %(default)s)")
    ap.add_argument("--fabric-binary",
                    help="path to the fabric_scale executable")
    ap.add_argument("--fabric-hosts", type=int, default=128,
                    help="fat-tree size for the fabric gate "
                         "(default: %(default)s)")
    ap.add_argument("--fabric-flows", type=int, default=64,
                    help="flows per host in the fabric gate "
                         "(default: %(default)s)")
    ap.add_argument("--fabric-max-allocs", type=float, default=0.0,
                    help="max allocs/event in the fabric gate — the "
                         "measured wave is allocation-free after warmup, "
                         "so the pin is exact (default: %(default)s)")
    ap.add_argument("--collectives-binary",
                    help="path to the scaling_collectives executable")
    ap.add_argument("--collectives-baseline",
                    default="BENCH_collectives.json",
                    help="committed collectives baseline JSON "
                         "(default: %(default)s)")
    ap.add_argument("--collectives-ranks", type=int, default=128,
                    help="largest cluster size in the collectives gate "
                         "(default: %(default)s)")
    ap.add_argument("--min-coll-speedup", type=float, default=1.5,
                    help="min NIC-vs-host barrier speedup at 64+ ranks "
                         "(default: %(default)s)")
    ap.add_argument("--factor", type=float, default=2.0,
                    help="max tolerated slowdown vs baseline "
                         "(default: %(default)s)")
    ap.add_argument("--max-allocs", type=float, default=0.01,
                    help="max allocs/event in the substrate gate "
                         "(default: %(default)s)")
    ap.add_argument("--parallel-max-allocs", type=float, default=0.0,
                    help="max allocs/event in the parallel gate — the "
                         "sharded steady state is allocation-free, so the "
                         "pin is exact (default: %(default)s)")
    ap.add_argument("--min-events-per-window", type=float, default=50.0,
                    help="min events per non-empty quantum on the "
                         "all-to-all parallel workload (default: "
                         "%(default)s)")
    ap.add_argument("--min-speedup", type=float, default=1.5,
                    help="min 4-thread speedup, enforced when cpus >= 4 "
                         "(default: %(default)s)")
    ap.add_argument("--max-shard-tax", type=float, default=5.0,
                    help="max %% the 1-thread sharded run may trail the "
                         "serial engine (default: %(default)s)")
    ap.add_argument("--msgs", type=int, default=500,
                    help="messages to stream in the substrate gate "
                         "(default: %(default)s)")
    ap.add_argument("--parallel-msgs", type=int, default=100,
                    help="msgs per node pair in the parallel gate "
                         "(default: %(default)s)")
    args = ap.parse_args()

    if not args.binary and not args.parallel_binary \
            and not args.rendezvous_binary and not args.fabric_binary \
            and not args.collectives_binary:
        print("bench_check: need --binary, --parallel-binary, "
              "--rendezvous-binary, --fabric-binary and/or "
              "--collectives-binary", file=sys.stderr)
        return 2

    ok = True
    try:
        if args.binary:
            if not os.path.exists(args.baseline):
                print(f"bench_check: baseline {args.baseline!r} not found",
                      file=sys.stderr)
                return 2
            ok = check_substrate(args) and ok
        if args.parallel_binary:
            if not os.path.exists(args.parallel_baseline):
                print(f"bench_check: baseline "
                      f"{args.parallel_baseline!r} not found",
                      file=sys.stderr)
                return 2
            ok = check_parallel(args) and ok
        if args.rendezvous_binary:
            if not os.path.exists(args.rendezvous_baseline):
                print(f"bench_check: baseline "
                      f"{args.rendezvous_baseline!r} not found",
                      file=sys.stderr)
                return 2
            ok = check_rendezvous(args) and ok
        if args.fabric_binary:
            ok = check_fabric(args) and ok
        if args.collectives_binary:
            if not os.path.exists(args.collectives_baseline):
                print(f"bench_check: baseline "
                      f"{args.collectives_baseline!r} not found",
                      file=sys.stderr)
                return 2
            ok = check_collectives(args) and ok
    except (OSError, subprocess.CalledProcessError, json.JSONDecodeError,
            KeyError) as e:
        print(f"bench_check: failed: {e}", file=sys.stderr)
        return 2
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
