#!/usr/bin/env python3
"""Validate an exported Chrome-tracing JSON file.

Checks that a trace produced by trace::write_chrome_trace (or the
FMX_TRACE environment hook in examples/benches) is something the Chrome
tracing UI / Perfetto will actually load:

  - the file parses and has a `traceEvents` array;
  - every event carries the required keys (name, ph, pid, tid, and ts for
    non-metadata phases) with sane types;
  - only the phases the exporter emits appear (M, i, X, b, e);
  - timestamps are non-decreasing in file order (the exporter sorts);
  - complete slices ("X") have a non-negative duration;
  - async begin/end pairs ("b"/"e") balance per (category, id) and never
    end before they begin.

Usage:
  scripts/trace_check.py trace.json [trace2.json ...]
  scripts/trace_check.py --run BINARY   # run BINARY with FMX_TRACE set to
                                        # a temp path, then validate that

Exit status: 0 ok, 1 validation failure, 2 usage/environment error.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

REQUIRED_KEYS = {"name", "ph", "pid", "tid"}
KNOWN_PHASES = {"M", "i", "X", "b", "e"}


def check_trace(path):
    """Returns a list of problem strings (empty = valid)."""
    problems = []
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"cannot load {path!r}: {e}"]

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return [f"{path}: no traceEvents array"]
    if not events:
        return [f"{path}: traceEvents is empty"]

    last_ts = None
    open_async = {}  # (cat, id) -> (begin_ts, event index)
    n_timed = 0
    for i, ev in enumerate(events):
        where = f"{path}: event {i}"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        missing = REQUIRED_KEYS - ev.keys()
        if missing:
            problems.append(f"{where}: missing keys {sorted(missing)}")
            continue
        ph = ev["ph"]
        if ph not in KNOWN_PHASES:
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        if ph == "M":
            continue  # metadata has no timestamp

        ts = ev.get("ts")
        if not isinstance(ts, (int, float)):
            problems.append(f"{where}: phase {ph!r} has no numeric ts")
            continue
        n_timed += 1
        if last_ts is not None and ts < last_ts:
            problems.append(f"{where}: ts {ts} < previous {last_ts} "
                            "(exporter must sort)")
        last_ts = ts

        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: X slice with bad dur {dur!r}")
        elif ph in ("b", "e"):
            key = (ev.get("cat"), ev.get("id"))
            if key[1] is None:
                problems.append(f"{where}: async event without id")
                continue
            if ph == "b":
                if key in open_async:
                    problems.append(f"{where}: async {key} begun twice")
                open_async[key] = (ts, i)
            else:
                begun = open_async.pop(key, None)
                if begun is None:
                    problems.append(f"{where}: async end {key} without "
                                    "begin")
                elif ts < begun[0]:
                    problems.append(f"{where}: async {key} ends at {ts} "
                                    f"before begin at {begun[0]}")
    for key, (ts, i) in open_async.items():
        problems.append(f"{path}: async {key} begun at event {i} never "
                        "ends")
    if n_timed == 0:
        problems.append(f"{path}: only metadata events, nothing traced")
    return problems


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("traces", nargs="*", help="trace JSON files to check")
    ap.add_argument("--run", metavar="BINARY",
                    help="run BINARY with FMX_TRACE pointing at a temp "
                         "file, then validate what it wrote")
    args = ap.parse_args()
    if not args.traces and not args.run:
        ap.error("need trace files and/or --run BINARY")

    paths = list(args.traces)
    if args.run:
        out = os.path.join(tempfile.mkdtemp(prefix="trace_check_"),
                           "trace.json")
        env = dict(os.environ, FMX_TRACE=out)
        try:
            subprocess.run([args.run], check=True, env=env,
                           stdout=subprocess.DEVNULL)
        except (OSError, subprocess.CalledProcessError) as e:
            print(f"trace_check: failed to run {args.run!r}: {e}",
                  file=sys.stderr)
            return 2
        if not os.path.exists(out):
            print(f"trace_check: {args.run!r} did not write {out}",
                  file=sys.stderr)
            return 2
        paths.append(out)

    ok = True
    for path in paths:
        problems = check_trace(path)
        if problems:
            ok = False
            for p in problems:
                print(f"trace_check: FAIL: {p}", file=sys.stderr)
        else:
            print(f"trace_check: {path}: ok")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
