#include "sockets/socket_fm.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace fmx::sock {
namespace {

using sim::Engine;
using sim::Task;

struct World {
  explicit World(int n, Config cfg = {}) : cluster(eng,
                                                   net::ppro_fm2_cluster(n)) {
    for (int i = 0; i < n; ++i) {
      stacks.push_back(std::make_unique<SocketFm>(cluster, i, cfg));
    }
  }
  SocketFm& at(int i) { return *stacks[i]; }

  Engine eng;
  net::Cluster cluster;
  std::vector<std::unique_ptr<SocketFm>> stacks;
};

TEST(SocketFm, ConnectAcceptEstablishes) {
  World w(2);
  w.at(1).listen(80);
  bool client_ok = false, server_ok = false;
  w.eng.spawn([](SocketFm& s, bool& ok) -> Task<void> {
    Socket* c = co_await s.connect(1, 80);
    EXPECT_EQ(c->peer_node(), 1);
    ok = true;
  }(w.at(0), client_ok));
  w.eng.spawn([](SocketFm& s, bool& ok) -> Task<void> {
    Socket* c = co_await s.accept(80);
    EXPECT_EQ(c->peer_node(), 0);
    ok = true;
  }(w.at(1), server_ok));
  w.eng.run();
  EXPECT_TRUE(client_ok);
  EXPECT_TRUE(server_ok);
  EXPECT_EQ(w.eng.pending_roots(), 0);
}

TEST(SocketFm, EchoRoundTrip) {
  World w(2);
  w.at(1).listen(7);
  bool done = false;
  w.eng.spawn([](SocketFm& s, bool& d) -> Task<void> {
    Socket* c = co_await s.connect(1, 7);
    Bytes msg = pattern_bytes(1, 300);
    co_await c->send(ByteSpan{msg});
    Bytes back(300);
    co_await c->recv_exact(MutByteSpan{back});
    EXPECT_EQ(back, msg);
    d = true;
  }(w.at(0), done));
  w.eng.spawn([](SocketFm& s) -> Task<void> {
    Socket* c = co_await s.accept(7);
    Bytes buf(300);
    co_await c->recv_exact(MutByteSpan{buf});
    co_await c->send(ByteSpan{buf});
  }(w.at(1)));
  w.eng.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(w.eng.pending_roots(), 0);
}

TEST(SocketFm, LargeTransferIntegrityAndFragmentation) {
  World w(2);
  w.at(1).listen(9);
  constexpr std::size_t kBig = 256 * 1024;  // 32 fragments of 8 KB
  bool done = false;
  w.eng.spawn([](SocketFm& s) -> Task<void> {
    Socket* c = co_await s.connect(1, 9);
    Bytes msg = pattern_bytes(5, kBig);
    co_await c->send(ByteSpan{msg});
    co_await c->close();
  }(w.at(0)));
  w.eng.spawn([](SocketFm& s, bool& d) -> Task<void> {
    Socket* c = co_await s.accept(9);
    Bytes buf(kBig);
    co_await c->recv_exact(MutByteSpan{buf});
    EXPECT_EQ(pattern_mismatch(5, 0, ByteSpan{buf}), -1);
    // Next recv: EOF.
    Bytes extra(16);
    EXPECT_EQ(co_await c->recv(MutByteSpan{extra}), 0u);
    d = true;
  }(w.at(1), done));
  w.eng.run();
  EXPECT_TRUE(done);
}

TEST(SocketFm, StreamHasNoMessageBoundaries) {
  World w(2);
  w.at(1).listen(5);
  bool done = false;
  w.eng.spawn([](SocketFm& s) -> Task<void> {
    Socket* c = co_await s.connect(1, 5);
    // Three sends...
    Bytes all = pattern_bytes(2, 90);
    co_await c->send(ByteSpan{all}.subspan(0, 30));
    co_await c->send(ByteSpan{all}.subspan(30, 30));
    co_await c->send(ByteSpan{all}.subspan(60, 30));
  }(w.at(0)));
  w.eng.spawn([](SocketFm& s, bool& d) -> Task<void> {
    Socket* c = co_await s.accept(5);
    // ...read back in two odd-sized pieces.
    Bytes buf(90);
    co_await c->recv_exact(MutByteSpan{buf}.subspan(0, 77));
    co_await c->recv_exact(MutByteSpan{buf}.subspan(77, 13));
    EXPECT_EQ(pattern_mismatch(2, 0, ByteSpan{buf}), -1);
    d = true;
  }(w.at(1), done));
  w.eng.run();
  EXPECT_TRUE(done);
}

TEST(SocketFm, PendingRecvTakesZeroCopyPath) {
  World w(2);
  w.at(1).listen(4);
  bool done = false;
  Socket* srv = nullptr;
  w.eng.spawn([](SocketFm& s, Socket*& out, bool& d) -> Task<void> {
    Socket* c = co_await s.accept(4);
    out = c;
    Bytes buf(64 * 1024);
    co_await c->recv_exact(MutByteSpan{buf});  // posted before data arrives
    d = true;
  }(w.at(1), srv, done));
  w.eng.spawn([](Engine& e, SocketFm& s) -> Task<void> {
    Socket* c = co_await s.connect(1, 4);
    co_await e.delay(sim::us(100));  // let the server's recv get posted
    Bytes msg(64 * 1024);
    co_await c->send(ByteSpan{msg});
  }(w.eng, w.at(0)));
  w.eng.run();
  ASSERT_TRUE(done);
  // The bulk of the data went straight into the user buffer.
  EXPECT_GT(w.at(1).stats().zero_copy_bytes, 60 * 1024u);
}

TEST(SocketFm, UnreadDataIsBuffered) {
  World w(2);
  w.at(1).listen(4);
  bool sent = false;
  w.eng.spawn([](SocketFm& s, bool& f) -> Task<void> {
    Socket* c = co_await s.connect(1, 4);
    Bytes msg(1024);
    co_await c->send(ByteSpan{msg});
    f = true;
  }(w.at(0), sent));
  Socket* srv = nullptr;
  w.eng.spawn([](SocketFm& s, Socket*& out, bool& f) -> Task<void> {
    Socket* c = co_await s.accept(4);
    out = c;
    // Extract without a posted recv: data must be buffered.
    co_await s.fm().poll_until([&] { return f && c->buffered() >= 1024; });
  }(w.at(1), srv, sent));
  w.eng.run();
  ASSERT_NE(srv, nullptr);
  EXPECT_EQ(srv->buffered(), 1024u);
  EXPECT_GE(w.at(1).stats().buffered_bytes, 1024u);
  // A later recv drains the buffer.
  bool got = false;
  w.eng.spawn([](Socket* c, bool& g) -> Task<void> {
    Bytes buf(1024);
    co_await c->recv_exact(MutByteSpan{buf});
    g = true;
  }(srv, got));
  w.eng.run();
  EXPECT_TRUE(got);
}

TEST(SocketFm, TwoConnectionsMultiplexOneNode) {
  World w(3);
  w.at(2).listen(8);
  int done = 0;
  for (int client = 0; client < 2; ++client) {
    w.eng.spawn([](SocketFm& s, int me) -> Task<void> {
      Socket* c = co_await s.connect(2, 8);
      Bytes msg = pattern_bytes(me, 5000);
      co_await c->send(ByteSpan{msg});
    }(w.at(client), client));
  }
  for (int k = 0; k < 2; ++k) {
    w.eng.spawn([](SocketFm& s, int& d) -> Task<void> {
      Socket* c = co_await s.accept(8);
      Bytes buf(5000);
      co_await c->recv_exact(MutByteSpan{buf});
      EXPECT_EQ(pattern_mismatch(c->peer_node(), 0, ByteSpan{buf}), -1);
      ++d;
    }(w.at(2), done));
  }
  w.eng.run();
  EXPECT_EQ(done, 2);
  EXPECT_EQ(w.eng.pending_roots(), 0);
}

TEST(SocketFm, SendAfterCloseThrows) {
  World w(2);
  w.at(1).listen(1);
  w.eng.spawn([](SocketFm& s) -> Task<void> {
    Socket* c = co_await s.connect(1, 1);
    co_await c->close();
    Bytes b(8);
    EXPECT_THROW(co_await c->send(ByteSpan{b}), std::logic_error);
  }(w.at(0)));
  w.eng.spawn([](SocketFm& s) -> Task<void> {
    (void)co_await s.accept(1);
  }(w.at(1)));
  w.eng.run();
}

TEST(SocketFm, ReceiverPacingStallsSender) {
  Config cfg;
  cfg.fm.credits_per_peer = 4;
  World w(2, cfg);
  w.at(1).listen(2);
  int fragments_sent = 0;
  w.eng.spawn([](SocketFm& s, int& sent) -> Task<void> {
    Socket* c = co_await s.connect(1, 2);
    Bytes chunk(8 * 1024);
    for (int i = 0; i < 32; ++i) {
      co_await c->send(ByteSpan{chunk});
      ++sent;
    }
  }(w.at(0), fragments_sent));
  w.eng.spawn([](SocketFm& s) -> Task<void> {
    (void)co_await s.accept(2);
    // Accept but never recv: stop extracting.
  }(w.at(1)));
  w.eng.run();
  // The sender must be stalled well short of 32 fragments: the receiver
  // withheld credits by not extracting.
  EXPECT_LT(fragments_sent, 16);
  EXPECT_EQ(w.eng.pending_roots(), 1);
}

}  // namespace
}  // namespace fmx::sock
