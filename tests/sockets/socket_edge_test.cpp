// Socket-FM edge cases: bidirectional streams, interleaved tiny writes,
// EOF orderings, zero-size operations.
#include <gtest/gtest.h>

#include <memory>

#include "sockets/socket_fm.hpp"

namespace fmx::sock {
namespace {

using sim::Engine;
using sim::Task;

struct World {
  explicit World(int n, Config cfg = {})
      : cluster(eng, net::ppro_fm2_cluster(n)) {
    for (int i = 0; i < n; ++i) {
      stacks.push_back(std::make_unique<SocketFm>(cluster, i, cfg));
    }
  }
  SocketFm& at(int i) { return *stacks[i]; }
  Engine eng;
  net::Cluster cluster;
  std::vector<std::unique_ptr<SocketFm>> stacks;
};

TEST(SocketEdge, FullDuplexSimultaneousTransfer) {
  World w(2);
  w.at(1).listen(1);
  constexpr std::size_t kBytes = 100'000;
  int done = 0;
  w.eng.spawn([](SocketFm& s, int& d) -> Task<void> {
    Socket* c = co_await s.connect(1, 1);
    Bytes mine = pattern_bytes(10, kBytes);
    Bytes theirs(kBytes);
    // Interleave send and recv chunks to force true duplex operation.
    for (std::size_t off = 0; off < kBytes; off += 10'000) {
      co_await c->send(ByteSpan{mine}.subspan(off, 10'000));
      co_await c->recv_exact(MutByteSpan{theirs}.subspan(off, 10'000));
    }
    EXPECT_EQ(pattern_mismatch(11, 0, ByteSpan{theirs}), -1);
    ++d;
  }(w.at(0), done));
  w.eng.spawn([](SocketFm& s, int& d) -> Task<void> {
    Socket* c = co_await s.accept(1);
    Bytes mine = pattern_bytes(11, kBytes);
    Bytes theirs(kBytes);
    for (std::size_t off = 0; off < kBytes; off += 10'000) {
      co_await c->recv_exact(MutByteSpan{theirs}.subspan(off, 10'000));
      co_await c->send(ByteSpan{mine}.subspan(off, 10'000));
    }
    EXPECT_EQ(pattern_mismatch(10, 0, ByteSpan{theirs}), -1);
    ++d;
  }(w.at(1), done));
  w.eng.run();
  EXPECT_EQ(done, 2);
  EXPECT_EQ(w.eng.pending_roots(), 0);
}

TEST(SocketEdge, ManyTinyWritesOneBigRead) {
  World w(2);
  w.at(1).listen(2);
  bool done = false;
  w.eng.spawn([](SocketFm& s) -> Task<void> {
    Socket* c = co_await s.connect(1, 2);
    Bytes all = pattern_bytes(4, 500);
    for (std::size_t i = 0; i < 500; ++i) {
      co_await c->send(ByteSpan{all}.subspan(i, 1));  // 1-byte writes
    }
  }(w.at(0)));
  w.eng.spawn([](SocketFm& s, bool& d) -> Task<void> {
    Socket* c = co_await s.accept(2);
    Bytes buf(500);
    co_await c->recv_exact(MutByteSpan{buf});
    EXPECT_EQ(pattern_mismatch(4, 0, ByteSpan{buf}), -1);
    d = true;
  }(w.at(1), done));
  w.eng.run();
  EXPECT_TRUE(done);
}

TEST(SocketEdge, EofAfterBufferedDataIsDrainedLast) {
  World w(2);
  w.at(1).listen(3);
  bool done = false;
  w.eng.spawn([](SocketFm& s) -> Task<void> {
    Socket* c = co_await s.connect(1, 3);
    Bytes m(100);
    co_await c->send(ByteSpan{m});
    co_await c->close();  // FIN chases the data
  }(w.at(0)));
  w.eng.spawn([](Engine& e, SocketFm& s, bool& d) -> Task<void> {
    Socket* c = co_await s.accept(3);
    co_await e.delay(sim::ms(1));  // FIN and data both arrived
    co_await s.fm().poll_until([&] { return c->buffered() == 100; });
    EXPECT_FALSE(c->eof());  // buffered data must be readable first
    Bytes buf(100);
    EXPECT_EQ(co_await c->recv(MutByteSpan{buf}), 100u);
    EXPECT_TRUE(c->eof());
    Bytes more(10);
    EXPECT_EQ(co_await c->recv(MutByteSpan{more}), 0u);
    d = true;
  }(w.eng, w.at(1), done));
  w.eng.run();
  EXPECT_TRUE(done);
}

TEST(SocketEdge, ZeroByteRecvReturnsImmediately) {
  World w(2);
  w.at(1).listen(4);
  bool done = false;
  w.eng.spawn([](SocketFm& s) -> Task<void> {
    (void)co_await s.connect(1, 4);
  }(w.at(0)));
  w.eng.spawn([](SocketFm& s, bool& d) -> Task<void> {
    Socket* c = co_await s.accept(4);
    EXPECT_EQ(co_await c->recv({}), 0u);  // empty buffer: no blocking
    d = true;
  }(w.at(1), done));
  w.eng.run();
  EXPECT_TRUE(done);
}

TEST(SocketEdge, PartialReadLeavesRemainderBuffered) {
  World w(2);
  w.at(1).listen(5);
  bool done = false;
  w.eng.spawn([](SocketFm& s) -> Task<void> {
    Socket* c = co_await s.connect(1, 5);
    Bytes m = pattern_bytes(8, 1000);
    co_await c->send(ByteSpan{m});
  }(w.at(0)));
  w.eng.spawn([](Engine& e, SocketFm& s, bool& d) -> Task<void> {
    Socket* c = co_await s.accept(5);
    co_await e.delay(sim::ms(1));
    co_await s.fm().poll_until([&] { return c->buffered() == 1000; });
    Bytes first(300);
    EXPECT_EQ(co_await c->recv(MutByteSpan{first}), 300u);
    EXPECT_EQ(c->buffered(), 700u);
    Bytes rest(700);
    co_await c->recv_exact(MutByteSpan{rest});
    EXPECT_EQ(pattern_mismatch(8, 0, ByteSpan{first}), -1);
    EXPECT_EQ(pattern_mismatch(8, 300, ByteSpan{rest}), -1);
    d = true;
  }(w.eng, w.at(1), done));
  w.eng.run();
  EXPECT_TRUE(done);
}

TEST(SocketEdge, AcceptBeforeConnectAlsoWorks) {
  World w(2);
  w.at(1).listen(6);
  bool done = false;
  // Accept is issued first and blocks until the SYN arrives.
  w.eng.spawn([](SocketFm& s, bool& d) -> Task<void> {
    Socket* c = co_await s.accept(6);
    EXPECT_EQ(c->peer_node(), 0);
    d = true;
  }(w.at(1), done));
  w.eng.spawn([](Engine& e, SocketFm& s) -> Task<void> {
    co_await e.delay(sim::us(500));
    (void)co_await s.connect(1, 6);
  }(w.eng, w.at(0)));
  w.eng.run();
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace fmx::sock
