#include "sockets/overlapped.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace fmx::sock {
namespace {

using sim::Engine;
using sim::Task;

struct World {
  World() : cluster(eng, net::ppro_fm2_cluster(2)) {
    for (int i = 0; i < 2; ++i) {
      stacks.push_back(std::make_unique<SocketFm>(cluster, i));
    }
    stacks[1]->listen(9);
  }
  Engine eng;
  net::Cluster cluster;
  std::vector<std::unique_ptr<SocketFm>> stacks;
};

TEST(Overlapped, PostedBuffersCompleteInOrder) {
  World w;
  bool done = false;
  w.eng.spawn([](Engine& e, SocketFm& s, bool& d) -> Task<void> {
    Socket* c = co_await s.accept(9);
    Overlapped ov(e, s, *c);
    // Post three buffers BEFORE any data exists.
    Bytes b1(100), b2(100), b3(100);
    IoRequest r1 = ov.async_recv(MutByteSpan{b1});
    IoRequest r2 = ov.async_recv(MutByteSpan{b2});
    IoRequest r3 = ov.async_recv(MutByteSpan{b3});
    EXPECT_FALSE(r1.done());
    EXPECT_EQ(co_await ov.wait(r1), 100u);
    EXPECT_EQ(co_await ov.wait(r2), 100u);
    EXPECT_EQ(co_await ov.wait(r3), 100u);
    EXPECT_EQ(pattern_mismatch(6, 0, ByteSpan{b1}), -1);
    EXPECT_EQ(pattern_mismatch(6, 100, ByteSpan{b2}), -1);
    EXPECT_EQ(pattern_mismatch(6, 200, ByteSpan{b3}), -1);
    d = true;
  }(w.eng, *w.stacks[1], done));
  w.eng.spawn([](Engine& e, SocketFm& s) -> Task<void> {
    Socket* c = co_await s.connect(1, 9);
    co_await e.delay(sim::us(300));  // let the buffers get posted
    Bytes m = pattern_bytes(6, 300);
    co_await c->send(ByteSpan{m});
  }(w.eng, *w.stacks[0]));
  w.eng.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(w.eng.pending_roots(), 0);
}

TEST(Overlapped, WaitAnyPicksTheCompletedOne) {
  World w;
  bool done = false;
  w.eng.spawn([](Engine& e, SocketFm& s, bool& d) -> Task<void> {
    Socket* c = co_await s.accept(9);
    Overlapped ov(e, s, *c);
    Bytes b1(64), b2(64);
    IoRequest reqs[2] = {ov.async_recv(MutByteSpan{b1}),
                         ov.async_recv(MutByteSpan{b2})};
    int idx = co_await ov.wait_any(reqs);
    EXPECT_EQ(idx, 0);  // in-order completion: the first posted wins
    EXPECT_EQ(reqs[0].bytes(), 64u);
    d = true;
  }(w.eng, *w.stacks[1], done));
  w.eng.spawn([](SocketFm& s) -> Task<void> {
    Socket* c = co_await s.connect(1, 9);
    Bytes m(64);
    co_await c->send(ByteSpan{m});
  }(*w.stacks[0]));
  w.eng.run();
  EXPECT_TRUE(done);
}

TEST(Overlapped, SendAndRecvOverlap) {
  World w;
  int done = 0;
  w.eng.spawn([](Engine& e, SocketFm& s, int& d) -> Task<void> {
    Socket* c = co_await s.accept(9);
    Overlapped ov(e, s, *c);
    Bytes in(5000);
    IoRequest r = ov.async_recv(MutByteSpan{in});
    Bytes out = pattern_bytes(2, 5000);
    IoRequest sr = co_await ov.async_send(ByteSpan{out});
    EXPECT_TRUE(sr.done());
    std::size_t got = co_await ov.wait(r);
    EXPECT_GT(got, 0u);
    ++d;
  }(w.eng, *w.stacks[1], done));
  w.eng.spawn([](Engine& e, SocketFm& s, int& d) -> Task<void> {
    Socket* c = co_await s.connect(1, 9);
    Overlapped ov(e, s, *c);
    Bytes out = pattern_bytes(3, 5000);
    (void)co_await ov.async_send(ByteSpan{out});
    Bytes in(5000);
    IoRequest r = ov.async_recv(MutByteSpan{in});
    co_await ov.wait(r);
    ++d;
  }(w.eng, *w.stacks[0], done));
  w.eng.run();
  EXPECT_EQ(done, 2);
}

TEST(Overlapped, EofCompletesPostedRecvWithZero) {
  World w;
  bool done = false;
  w.eng.spawn([](Engine& e, SocketFm& s, bool& d) -> Task<void> {
    Socket* c = co_await s.accept(9);
    Overlapped ov(e, s, *c);
    Bytes b(64);
    IoRequest r = ov.async_recv(MutByteSpan{b});
    EXPECT_EQ(co_await ov.wait(r), 0u);
    EXPECT_TRUE(r.eof());
    d = true;
  }(w.eng, *w.stacks[1], done));
  w.eng.spawn([](SocketFm& s) -> Task<void> {
    Socket* c = co_await s.connect(1, 9);
    co_await c->close();  // no data, straight to FIN
  }(*w.stacks[0]));
  w.eng.run();
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace fmx::sock
