#include "common/buffer.hpp"

#include <gtest/gtest.h>

namespace fmx {
namespace {

TEST(PatternBytes, DeterministicPerSeed) {
  auto a = pattern_bytes(1, 128);
  auto b = pattern_bytes(1, 128);
  auto c = pattern_bytes(2, 128);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(PatternBytes, SliceValidation) {
  auto whole = pattern_bytes(55, 1024);
  // Any slice validates against the same pattern at its offset.
  EXPECT_EQ(pattern_mismatch(55, 0, ByteSpan{whole}), -1);
  EXPECT_EQ(pattern_mismatch(55, 100, ByteSpan{whole}.subspan(100, 200)), -1);
  EXPECT_EQ(pattern_mismatch(55, 1000, ByteSpan{whole}.subspan(1000)), -1);
}

TEST(PatternBytes, MismatchReportsFirstBadIndex) {
  auto data = pattern_bytes(9, 64);
  data[17] ^= std::byte{0xFF};
  EXPECT_EQ(pattern_mismatch(9, 0, ByteSpan{data}), 17);
}

TEST(PatternBytes, WrongSeedMismatches) {
  auto data = pattern_bytes(3, 64);
  EXPECT_NE(pattern_mismatch(4, 0, ByteSpan{data}), -1);
}

TEST(FormatMbps, Formats) {
  EXPECT_EQ(format_mbps(17.6e6), "17.60 MB/s");
  EXPECT_EQ(format_mbps(0.0), "0.00 MB/s");
}

}  // namespace
}  // namespace fmx
