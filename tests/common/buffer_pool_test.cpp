#include "common/buffer_pool.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace fmx {
namespace {

TEST(BufferPool, FirstAcquireIsFresh) {
  BufferPool pool;
  bool fresh = false;
  Bytes b = pool.acquire(100, &fresh);
  EXPECT_TRUE(fresh);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_GE(b.capacity(), 128u);  // rounded up to the 2^7 class
  EXPECT_EQ(pool.stats().fresh_allocs, 1u);
  EXPECT_EQ(pool.stats().pool_hits, 0u);
  EXPECT_EQ(pool.stats().outstanding, 1u);
}

TEST(BufferPool, ReleaseThenAcquireHitsPool) {
  BufferPool pool;
  Bytes b = pool.acquire(100);
  const std::byte* data = b.data();
  pool.release(std::move(b));
  EXPECT_EQ(pool.stats().free_buffers, 1u);

  bool fresh = true;
  Bytes again = pool.acquire(90, &fresh);  // same 128-B class
  EXPECT_FALSE(fresh);
  EXPECT_EQ(again.data(), data);  // literally the same storage
  EXPECT_EQ(again.size(), 90u);
  EXPECT_EQ(pool.stats().pool_hits, 1u);
  EXPECT_EQ(pool.stats().free_buffers, 0u);
}

TEST(BufferPool, DistinctClassesDoNotMix) {
  BufferPool pool;
  pool.release(pool.acquire(64));   // 2^6 class
  bool fresh = false;
  Bytes big = pool.acquire(4096, &fresh);  // 2^12 class: must be fresh
  EXPECT_TRUE(fresh);
  EXPECT_GE(big.capacity(), 4096u);
}

TEST(BufferPool, AcquiredSizeIsExactAcrossReuse) {
  BufferPool pool;
  pool.release(pool.acquire(1024));
  for (std::size_t n : {513u, 1024u, 600u}) {
    Bytes b = pool.acquire(n);  // all land in the 1-KiB class
    EXPECT_EQ(b.size(), n);
    pool.release(std::move(b));
  }
}

TEST(BufferPool, OutstandingHighWaterTracksPeak) {
  BufferPool pool;
  std::vector<Bytes> held;
  for (int i = 0; i < 5; ++i) held.push_back(pool.acquire(256));
  EXPECT_EQ(pool.stats().outstanding, 5u);
  EXPECT_EQ(pool.stats().outstanding_high, 5u);
  for (auto& b : held) pool.release(std::move(b));
  held.clear();
  EXPECT_EQ(pool.stats().outstanding, 0u);
  EXPECT_EQ(pool.stats().outstanding_high, 5u);  // peak sticks
  (void)pool.acquire(256);
  EXPECT_EQ(pool.stats().outstanding_high, 5u);
}

TEST(BufferPool, RetentionCapDropsBurstExcess) {
  // Retention is byte-budgeted per class (kDefaultRetainBytesPerClass,
  // floored at kRetainPerClass buffers): a small-class burst parks entirely,
  // while a large-class burst is trimmed so it can't pin memory forever.
  BufferPool pool;
  std::vector<Bytes> held;
  for (int i = 0; i < 80; ++i) held.push_back(pool.acquire(512));
  for (auto& b : held) pool.release(std::move(b));
  // 80 x 512 B = 40 KiB, far under the 4 MiB class budget: all parked.
  EXPECT_EQ(pool.stats().free_buffers, 80u);

  BufferPool big;
  std::vector<Bytes> burst;
  // 64 KiB class: 4 MiB / 64 KiB = 64 buffers is exactly the floor, so
  // releasing 72 must drop the 8 beyond the cap back to the allocator.
  for (int i = 0; i < 72; ++i) burst.push_back(big.acquire(64u << 10));
  for (auto& b : burst) big.release(std::move(b));
  EXPECT_EQ(big.stats().free_buffers, 64u);
}

TEST(BufferPool, OversizeRequestsBypassRetention) {
  BufferPool pool;
  Bytes huge = pool.acquire(2u << 20);  // 2 MiB: above the top class
  EXPECT_EQ(huge.size(), 2u << 20);
  pool.release(std::move(huge));
  bool fresh = false;
  Bytes again = pool.acquire(2u << 20, &fresh);
  EXPECT_TRUE(fresh);  // not recycled: out-of-class buffers are dropped
}

TEST(BufferPool, EmptyBuffersIgnoredOnRelease) {
  BufferPool pool;
  pool.release(Bytes{});  // capacity 0: no-op, no underflow
  EXPECT_EQ(pool.stats().free_buffers, 0u);
  EXPECT_EQ(pool.stats().outstanding, 0u);
}

TEST(BufferPool, ZeroSizeAcquireWorks) {
  BufferPool pool;
  Bytes b = pool.acquire(0);
  EXPECT_EQ(b.size(), 0u);
  EXPECT_GE(b.capacity(), 64u);  // still a pooled 64-B-class buffer
  pool.release(std::move(b));
  bool fresh = true;
  (void)pool.acquire(1, &fresh);
  EXPECT_FALSE(fresh);
}

}  // namespace
}  // namespace fmx
