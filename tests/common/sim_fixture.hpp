// Shared test plumbing for discrete-event simulations. The core helper runs
// an engine to event-queue exhaustion and turns "root tasks still
// suspended" — the engine's deadlock signal — into a readable failure
// instead of a bare EXPECT_EQ(pending_roots(), 0).
#pragma once

#include <gtest/gtest.h>

#include "sim/engine.hpp"

namespace fmx::test {

/// Drain the engine's event queue; succeed iff every root task finished.
/// Use as: ASSERT_TRUE(run_to_exhaustion(eng)) or EXPECT_TRUE(...).
inline ::testing::AssertionResult run_to_exhaustion(sim::Engine& eng) {
  eng.run();
  if (eng.pending_roots() == 0) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "DEADLOCK: event queue drained but " << eng.pending_roots()
         << " root task(s) are still suspended on conditions that will "
            "never fire (t=" << sim::to_us(eng.now()) << " us, "
         << eng.events_processed()
         << " events processed). A coroutine is waiting on a channel, "
            "semaphore, or credit that nothing will ever provide.";
}

/// Fixture base: an engine plus the quiescent-run helper as a member so
/// simulation tests share one spelling.
class SimTest : public ::testing::Test {
 protected:
  ::testing::AssertionResult run_to_exhaustion() {
    return fmx::test::run_to_exhaustion(eng_);
  }

  sim::Engine eng_;
};

}  // namespace fmx::test
