// BufferRef: the refcounted slice type the zero-copy data plane is built
// on. These tests pin its sharing semantics — aliasing sub-slices, the
// copy-on-write clone boundary, pool round-trips on last release, and the
// CRC memo (sealed once per block, invalidated by any write).
#include <gtest/gtest.h>

#include <cstring>

#include "common/buffer_pool.hpp"
#include "common/buffer_ref.hpp"
#include "common/copy_stats.hpp"
#include "common/crc32.hpp"

namespace fmx {
namespace {

Bytes seq_bytes(std::size_t n) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = static_cast<std::byte>(i & 0xff);
  return b;
}

TEST(BufferRef, DefaultIsEmpty) {
  BufferRef r;
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.size(), 0u);
  EXPECT_EQ(r.use_count(), 0u);
  EXPECT_EQ(r.data(), nullptr);
  EXPECT_EQ(r.crc(), crc32(ByteSpan{}));
  EXPECT_TRUE(r.mutable_bytes().empty());  // no-op, no crash
}

TEST(BufferRef, CopyOfIsDeepAndFreeStanding) {
  Bytes src = seq_bytes(100);
  BufferRef r = BufferRef::copy_of(ByteSpan{src});
  ASSERT_EQ(r.size(), 100u);
  EXPECT_EQ(r.use_count(), 1u);
  EXPECT_EQ(std::memcmp(r.data(), src.data(), 100), 0);
  EXPECT_NE(static_cast<const void*>(r.data()),
            static_cast<const void*>(src.data()));
  src[0] = std::byte{0xff};  // the original does not alias the ref
  EXPECT_EQ(r.span()[0], std::byte{0});
}

TEST(BufferRef, CopyAndMoveTrackRefcount) {
  BufferRef a = BufferRef::copy_of(seq_bytes(32));
  EXPECT_EQ(a.use_count(), 1u);
  BufferRef b = a;  // copy: shares
  EXPECT_EQ(a.use_count(), 2u);
  EXPECT_EQ(a.data(), b.data());
  BufferRef c = std::move(b);  // move: transfers, count unchanged
  EXPECT_EQ(a.use_count(), 2u);
  EXPECT_TRUE(b.empty());  // NOLINT(bugprone-use-after-move)
  c.reset();
  EXPECT_EQ(a.use_count(), 1u);
  a = a;  // self-assignment must not free the block
  EXPECT_EQ(a.use_count(), 1u);
  EXPECT_EQ(a.size(), 32u);
}

TEST(BufferRef, SubsliceAliasesTheSameBlock) {
  BufferRef whole = BufferRef::copy_of(seq_bytes(64));
  BufferRef mid = whole.subslice(16, 32);
  EXPECT_EQ(whole.use_count(), 2u);
  EXPECT_EQ(mid.size(), 32u);
  EXPECT_EQ(mid.data(), whole.data() + 16);  // same bytes, no copy
  EXPECT_EQ(mid.span()[0], std::byte{16});
  // Sub-slice of a sub-slice composes offsets.
  BufferRef tail = mid.subslice(24, 8);
  EXPECT_EQ(tail.data(), whole.data() + 40);
  EXPECT_EQ(whole.use_count(), 3u);
}

TEST(BufferRef, PoolBlockComesBackOnLastRelease) {
  BufferPool pool;
  BufferRef a = pool.acquire_ref(200);
  EXPECT_EQ(pool.stats().outstanding, 1u);
  const void* block = a.data();
  BufferRef slice = a.subslice(10, 50);
  a.reset();  // a sibling still holds the block: not released yet
  EXPECT_EQ(pool.stats().releases, 0u);
  slice.reset();  // last reference: block parks in the free list
  EXPECT_EQ(pool.stats().releases, 1u);
  EXPECT_EQ(pool.stats().outstanding, 0u);
  EXPECT_EQ(pool.stats().free_buffers, 1u);
  bool fresh = true;
  BufferRef b = pool.acquire_ref(180, &fresh);  // same 256 B class
  EXPECT_FALSE(fresh);
  EXPECT_EQ(static_cast<const void*>(b.data()), block);  // recycled
  EXPECT_EQ(b.use_count(), 1u);
  EXPECT_EQ(b.size(), 180u);
}

TEST(BufferRef, MutableBytesOnUniqueRefDoesNotClone) {
  CopyStats::instance().reset();
  BufferRef r = BufferRef::copy_of(seq_bytes(48));
  const void* before = r.data();
  r.mutable_bytes()[0] = std::byte{0xaa};
  EXPECT_EQ(static_cast<const void*>(r.data()), before);  // wrote in place
  EXPECT_EQ(CopyStats::instance().snapshot().hop_copies, 0u);
}

TEST(BufferRef, MutableBytesOnSharedRefClonesAndIsolates) {
  CopyStats::instance().reset();
  BufferRef a = BufferRef::copy_of(seq_bytes(48));
  BufferRef b = a;
  b.mutable_bytes()[5] = std::byte{0xee};
  // b got its own block; a keeps the original bytes.
  EXPECT_NE(a.data(), b.data());
  EXPECT_EQ(a.use_count(), 1u);
  EXPECT_EQ(b.use_count(), 1u);
  EXPECT_EQ(a.span()[5], std::byte{5});
  EXPECT_EQ(b.span()[5], std::byte{0xee});
  // The clone is a real (uncharged, per-hop) copy and is counted as one.
  EXPECT_EQ(CopyStats::instance().snapshot().hop_copies, 1u);
}

TEST(BufferRef, CowCloneOfSubsliceCopiesOnlyTheView) {
  BufferRef whole = BufferRef::copy_of(seq_bytes(64));
  BufferRef mid = whole.subslice(16, 8);
  MutByteSpan w = mid.mutable_bytes();  // shared -> clones the 8-byte view
  ASSERT_EQ(w.size(), 8u);
  EXPECT_EQ(w[0], std::byte{16});  // clone preserved the visible bytes
  w[0] = std::byte{0x7f};
  EXPECT_EQ(whole.use_count(), 1u);      // mid detached
  EXPECT_EQ(whole.span()[16], std::byte{16});  // original untouched
  EXPECT_EQ(mid.span()[0], std::byte{0x7f});
}

TEST(BufferRef, SetSizeShrinksUniqueWholeBlockView) {
  BufferPool pool;
  BufferRef r = pool.acquire_ref(256);
  std::memset(r.mutable_bytes().data(), 0x5c, 256);
  r.set_size(100);
  EXPECT_EQ(r.size(), 100u);
  EXPECT_EQ(r.crc(), crc32(r.span()));
}

TEST(BufferRef, CrcMemoMatchesRecomputeAndSurvivesSharing) {
  BufferRef a = BufferRef::copy_of(seq_bytes(512));
  const std::uint32_t sealed = a.crc();  // seals the memo
  EXPECT_EQ(sealed, crc32(a.span()));
  BufferRef b = a;          // sharing does not disturb the memo
  EXPECT_EQ(b.crc(), sealed);
  // Sub-slices never use the whole-block memo.
  BufferRef part = a.subslice(1, 100);
  EXPECT_EQ(part.crc(), crc32(part.span()));
  EXPECT_NE(part.crc(), sealed);
  EXPECT_EQ(a.crc(), sealed);  // ...and did not corrupt it
}

TEST(BufferRef, CrcMemoInvalidatedByWrite) {
  BufferRef a = BufferRef::copy_of(seq_bytes(128));
  const std::uint32_t before = a.crc();
  a.mutable_bytes()[3] ^= std::byte{0x01};
  const std::uint32_t after = a.crc();
  EXPECT_NE(after, before);
  EXPECT_EQ(after, crc32(a.span()));
}

TEST(BufferRef, CrcAcrossCowCloneIsPerCopy) {
  BufferRef a = BufferRef::copy_of(seq_bytes(128));
  const std::uint32_t sealed = a.crc();
  BufferRef b = a;
  b.mutable_bytes()[0] ^= std::byte{0x80};  // COW: b detaches
  EXPECT_EQ(a.crc(), sealed);               // a's memo still valid
  EXPECT_EQ(b.crc(), crc32(b.span()));
  EXPECT_NE(b.crc(), sealed);
}

TEST(BufferRef, SetSizeRemeasuresCrc) {
  BufferRef r = BufferRef::copy_of(seq_bytes(64));
  const std::uint32_t full = r.crc();
  // A same-length view sealed at a different size must re-hash, not reuse
  // the stale memo.
  BufferPool pool;
  BufferRef s = pool.acquire_ref(64);
  std::memcpy(s.mutable_bytes().data(), r.data(), 64);
  EXPECT_EQ(s.crc(), full);
  s.set_size(32);
  EXPECT_EQ(s.crc(), crc32(s.span()));
  EXPECT_NE(s.crc(), full);
}

}  // namespace
}  // namespace fmx
