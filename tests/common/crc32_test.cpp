#include "common/crc32.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string_view>

#include "common/buffer.hpp"

namespace fmx {
namespace {

ByteSpan span_of(std::string_view s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

TEST(Crc32, KnownVectors) {
  // Standard CRC-32 (IEEE) check values.
  EXPECT_EQ(crc32(span_of("")), 0x00000000u);
  EXPECT_EQ(crc32(span_of("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc32(span_of("The quick brown fox jumps over the lazy dog")),
            0x414FA339u);
}

TEST(Crc32, RocksoftModelVectors) {
  // The classic Rocksoft/zlib test battery for CRC-32/ISO-HDLC.
  EXPECT_EQ(crc32(span_of("a")), 0xE8B7BE43u);
  EXPECT_EQ(crc32(span_of("abc")), 0x352441C2u);
  EXPECT_EQ(crc32(span_of("message digest")), 0x20159D7Fu);
  EXPECT_EQ(crc32(span_of("abcdefghijklmnopqrstuvwxyz")), 0x4C2750BDu);
  EXPECT_EQ(crc32(span_of("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuv"
                          "wxyz0123456789")),
            0x1FC2E6D2u);
  EXPECT_EQ(crc32(span_of("1234567890123456789012345678901234567890123456789"
                          "0123456789012345678901234567890")),
            0x7CA94A72u);
}

TEST(Crc32, NonAsciiVectors) {
  // Zero bytes and 0xFF runs are degenerate inputs where table-lookup or
  // reflection bugs show: known values from the reference implementation.
  const std::byte zeros[4] = {};
  EXPECT_EQ(crc32(ByteSpan{zeros}), 0x2144DF1Cu);
  std::byte ffs[4];
  std::memset(ffs, 0xFF, sizeof(ffs));
  EXPECT_EQ(crc32(ByteSpan{ffs}), 0xFFFFFFFFu);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  Bytes data = pattern_bytes(7, 1000);
  auto whole = crc32(data);
  std::uint32_t st = crc32_init();
  st = crc32_update(st, ByteSpan{data}.subspan(0, 137));
  st = crc32_update(st, ByteSpan{data}.subspan(137, 600));
  st = crc32_update(st, ByteSpan{data}.subspan(737));
  EXPECT_EQ(crc32_final(st), whole);
}

TEST(Crc32, ByteAtATimeMatchesOneShot) {
  // The finest-grained chunking possible must agree with the one-shot CRC
  // (this is how the NIC model could stream a packet through the checker).
  Bytes data = pattern_bytes(13, 300);
  std::uint32_t st = crc32_init();
  for (std::size_t i = 0; i < data.size(); ++i) {
    st = crc32_update(st, ByteSpan{data}.subspan(i, 1));
  }
  EXPECT_EQ(crc32_final(st), crc32(data));
}

TEST(Crc32, EmptyUpdateIsIdentity) {
  Bytes data = pattern_bytes(21, 64);
  std::uint32_t st = crc32_init();
  st = crc32_update(st, ByteSpan{data});
  st = crc32_update(st, ByteSpan{});  // zero-length chunk changes nothing
  EXPECT_EQ(crc32_final(st), crc32(data));
}

TEST(Crc32, DetectsSingleBitFlip) {
  Bytes data = pattern_bytes(42, 256);
  auto good = crc32(data);
  for (std::size_t pos : {std::size_t{0}, std::size_t{100}, std::size_t{255}}) {
    Bytes bad = data;
    bad[pos] ^= std::byte{0x10};
    EXPECT_NE(crc32(bad), good) << "flip at " << pos;
  }
}

class Crc32Param : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Crc32Param, SplitInvariance) {
  // Property: CRC is invariant under any chunking of the input.
  const std::size_t len = 512;
  Bytes data = pattern_bytes(99, len);
  auto whole = crc32(data);
  std::size_t split = GetParam();
  std::uint32_t st = crc32_init();
  st = crc32_update(st, ByteSpan{data}.subspan(0, split));
  st = crc32_update(st, ByteSpan{data}.subspan(split));
  EXPECT_EQ(crc32_final(st), whole);
}

INSTANTIATE_TEST_SUITE_P(Splits, Crc32Param,
                         ::testing::Values(0, 1, 7, 64, 255, 256, 511, 512));

}  // namespace
}  // namespace fmx
