// Fabric topology and contention behaviour: multi-switch routing costs,
// shared-link congestion, incast back-pressure, and simulation determinism.
#include <gtest/gtest.h>

#include "fm2/fm2.hpp"
#include "myrinet/node.hpp"

namespace fmx::net {
namespace {

using sim::Engine;
using sim::Task;

TEST(Topology, LatencyGrowsWithHopCount) {
  Engine eng;
  ClusterParams p = ppro_fm2_cluster(24);  // 3 switches of 8
  Cluster cl(eng, p);
  auto lat = [&](int dst) {
    return cl.fabric().zero_load_latency(0, dst, 128);
  };
  // Same switch < one chain hop < two chain hops.
  EXPECT_LT(lat(7), lat(8));
  EXPECT_LT(lat(15), lat(16));
  sim::Ps per_hop = lat(16) - lat(8);
  EXPECT_EQ(per_hop, p.fabric.link_latency + p.fabric.switch_latency);
}

TEST(Topology, InterSwitchLinkIsSharedBottleneck) {
  // Four flows all crossing the same inter-switch link split its capacity;
  // four intra-switch flows do not contend.
  auto run = [](bool cross_switch) {
    Engine eng;
    ClusterParams p = ppro_fm2_cluster(16);
    // Make endpoints fast so the wire is the bottleneck.
    p.bus.dma_setup = 0;
    p.bus.dma_ps_per_byte = 1'000;
    p.nic.per_packet_tx = sim::ns(100);
    p.nic.per_packet_rx = sim::ns(100);
    p.nic.sram_rx_slots = 64;
    Cluster cl(eng, p);
    constexpr int kN = 100;
    constexpr std::size_t kSize = 1024;
    int flows = 4;
    int done = 0;
    for (int f = 0; f < flows; ++f) {
      int src = f;                            // switch 0
      int dst = cross_switch ? 8 + f : 4 + f; // switch 1 vs switch 0
      eng.spawn([](Cluster& c, int s, int d) -> Task<void> {
        for (int i = 0; i < kN; ++i) {
          co_await c.node(s).nic().enqueue(
              SendDescriptor(d, Bytes(kSize), true));
        }
      }(cl, src, dst));
      eng.spawn([](Cluster& c, int d, int& dn) -> Task<void> {
        for (int i = 0; i < kN; ++i) {
          (void)co_await c.node(d).nic().host_ring().pop();
        }
        ++dn;
      }(cl, dst, done));
    }
    eng.run();
    EXPECT_EQ(done, flows);
    return flows * kN * kSize / sim::to_seconds(eng.now());
  };
  double intra = run(false);
  double inter = run(true);
  // All four cross-switch flows share one 160 MB/s chain link.
  EXPECT_LT(inter, 180e6);
  EXPECT_GT(intra, inter * 2.5);
}

TEST(Topology, IncastBackPressurePacesAllSenders) {
  // 7-to-1 incast over FM 2.x: credits divide the receiver ring, everyone
  // completes, and nothing overflows (no drops exist by construction —
  // what's checked is completion and bounded ring occupancy).
  Engine eng;
  ClusterParams p = ppro_fm2_cluster(8);
  Cluster cl(eng, p);
  std::vector<std::unique_ptr<fm2::Endpoint>> eps;
  for (int i = 0; i < 8; ++i) {
    eps.push_back(std::make_unique<fm2::Endpoint>(cl, i));
  }
  constexpr int kMsgs = 30;
  int got = 0;
  eps[7]->register_handler(0, [&](fm2::RecvStream& s,
                                  int src) -> fm2::HandlerTask {
    Bytes buf(s.msg_bytes());
    co_await s.receive(MutByteSpan{buf});
    EXPECT_EQ(pattern_mismatch(src, 0, ByteSpan{buf}), -1);
    ++got;
  });
  for (int srcn = 0; srcn < 7; ++srcn) {
    eng.spawn([](fm2::Endpoint& ep, int me) -> Task<void> {
      Bytes m = pattern_bytes(me, 2000);
      for (int i = 0; i < kMsgs; ++i) co_await ep.send(7, 0, ByteSpan{m});
    }(*eps[srcn], srcn));
  }
  eng.spawn([](fm2::Endpoint& ep, int& g) -> Task<void> {
    co_await ep.poll_until([&] { return g == 7 * kMsgs; });
  }(*eps[7], got));
  eng.run();
  EXPECT_EQ(got, 7 * kMsgs);
  EXPECT_EQ(eng.pending_roots(), 0);
}

TEST(Determinism, IdenticalRunsBitForBit) {
  auto run_fingerprint = [] {
    Engine eng;
    ClusterParams p = ppro_fm2_cluster(4);
    p.fabric.bit_error_rate = 1e-5;
    p.nic.reliable_link = true;
    Cluster cl(eng, p);
    std::vector<std::unique_ptr<fm2::Endpoint>> eps;
    for (int i = 0; i < 4; ++i) {
      eps.push_back(std::make_unique<fm2::Endpoint>(cl, i));
    }
    std::uint64_t order_hash = 0;
    int total = 0;
    for (int i = 0; i < 4; ++i) {
      eps[i]->register_handler(
          0, [&order_hash, &total, i](fm2::RecvStream& s,
                                      int src) -> fm2::HandlerTask {
            co_await s.skip(s.remaining());
            order_hash = order_hash * 1099511628211ull ^
                         (static_cast<std::uint64_t>(i) << 8 ^ src);
            ++total;
          });
    }
    for (int i = 0; i < 4; ++i) {
      eng.spawn([](fm2::Endpoint& ep, int me) -> Task<void> {
        for (int k = 0; k < 10; ++k) {
          Bytes m(64 + 100 * me);
          co_await ep.send((me + 1 + k) % 4, 0, ByteSpan{m});
        }
        co_await ep.poll_until([] { return false; });  // serve until kicked
      }(*eps[i], i));
    }
    eng.spawn([](Engine& e,
                 std::vector<std::unique_ptr<fm2::Endpoint>>& es,
                 int& t) -> Task<void> {
      while (t < 40) {
        co_await e.delay(sim::us(100));
      }
      for (auto& ep : es) ep->kick();  // release the serving loops
    }(eng, eps, total));
    eng.run(eng.now() + sim::seconds(1));  // bounded; quiesces far earlier
    return std::tuple{total, eng.events_processed(), order_hash};
  };
  auto a = run_fingerprint();
  auto b = run_fingerprint();
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace fmx::net
