// Unit tests for the NIC collective tree builder (myrinet/coll.hpp):
// structural validity (single root, parent/child consistency, acyclicity,
// full coverage), the radix knob, topology-derived clustering (members on
// one crossbar/edge switch stay under one leader), fat-tree vs chain
// divergence, and determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "myrinet/coll.hpp"
#include "myrinet/topo.hpp"

namespace fmx::net {
namespace {

FabricParams chain_params(int hosts_per_switch = 8) {
  FabricParams p;
  p.topology = TopologyKind::kChain;
  p.hosts_per_switch = hosts_per_switch;
  return p;
}

FabricParams fat_tree_params(int radix, int oversub = 1) {
  FabricParams p;
  p.topology = TopologyKind::kFatTree;
  p.fat_tree_radix = radix;
  p.oversubscription = oversub;
  return p;
}

// Build every member's tree slice and cross-check the whole structure.
std::map<int, CollTree> build_all(const Topo& topo,
                                  const std::vector<int>& members,
                                  int radix) {
  std::map<int, CollTree> t;
  for (int m : members) t[m] = coll_tree(topo, members, radix, m);
  return t;
}

void expect_valid_tree(const Topo& topo, const std::vector<int>& members,
                       int radix) {
  auto trees = build_all(topo, members, radix);
  // Exactly one root: members[0].
  for (int m : members) {
    if (m == members[0]) {
      EXPECT_EQ(trees[m].parent, -1) << "root " << m << " has a parent";
    } else {
      EXPECT_NE(trees[m].parent, -1) << m << " is a second root";
    }
  }
  // Parent/child agreement: m's parent lists m as a child, exactly once.
  for (int m : members) {
    const int p = trees[m].parent;
    if (p < 0) continue;
    ASSERT_TRUE(trees.count(p)) << "parent " << p << " not a member";
    EXPECT_EQ(std::count(trees[p].children.begin(), trees[p].children.end(),
                         m),
              1)
        << p << " does not list child " << m << " exactly once";
  }
  // Every child edge has a matching parent pointer.
  for (int m : members) {
    for (int c : trees[m].children) {
      ASSERT_TRUE(trees.count(c));
      EXPECT_EQ(trees[c].parent, m);
    }
  }
  // Acyclic and fully covered: every member reaches the root.
  for (int m : members) {
    std::set<int> seen;
    int cur = m;
    while (trees[cur].parent >= 0) {
      ASSERT_TRUE(seen.insert(cur).second) << "cycle through " << cur;
      cur = trees[cur].parent;
    }
    EXPECT_EQ(cur, members[0]);
  }
  // Fan-out bound: a node leads at most `radix` members of its own
  // cluster plus `coll_leader_radix` subordinate cluster leaders (the
  // leader level widens to stay at depth <= 2).
  std::set<int> switches;
  for (int m : members) switches.insert(topo.first_switch(m));
  const unsigned leader_radix = static_cast<unsigned>(
      coll_leader_radix(radix, static_cast<int>(switches.size())));
  for (int m : members) {
    EXPECT_LE(trees[m].children.size(),
              leader_radix + static_cast<unsigned>(radix))
        << "node " << m;
  }
}

TEST(CollTree, ChainStructureAcrossRadixes) {
  Topo topo(chain_params(8), 32);
  std::vector<int> all(32);
  for (int i = 0; i < 32; ++i) all[i] = i;
  for (int radix : {1, 2, 4, 8}) expect_valid_tree(topo, all, radix);
}

TEST(CollTree, FatTreeStructure) {
  Topo topo(fat_tree_params(4), 16);
  std::vector<int> all(16);
  for (int i = 0; i < 16; ++i) all[i] = i;
  for (int radix : {1, 2, 4}) expect_valid_tree(topo, all, radix);
}

TEST(CollTree, SparseMembershipAndNonZeroRoot) {
  Topo topo(chain_params(4), 24);
  // Root 13 leads; members scattered across switches, unsorted on purpose.
  std::vector<int> members = {13, 2, 21, 7, 0, 18, 5, 11};
  expect_valid_tree(topo, members, 2);
  auto trees = build_all(topo, members, 2);
  EXPECT_EQ(trees[13].parent, -1);
}

TEST(CollTree, RadixKnobChangesArity) {
  Topo topo(chain_params(64), 64);  // one switch: pure radix-ary tree
  std::vector<int> all(64);
  for (int i = 0; i < 64; ++i) all[i] = i;
  // Single cluster, so the root's children count == min(radix, n-1).
  for (int radix : {1, 2, 4, 16}) {
    CollTree root = coll_tree(topo, all, radix, 0);
    EXPECT_EQ(root.children.size(), static_cast<std::size_t>(radix))
        << "radix " << radix;
  }
  // Depth shrinks as radix grows: radix-1 is a 63-deep list.
  CollTree leaf = coll_tree(topo, all, 1, 63);
  EXPECT_EQ(leaf.parent, 62);
}

TEST(CollTree, ClusteringKeepsSwitchLocalMembersUnderTheirLeader) {
  Topo topo(chain_params(8), 32);
  std::vector<int> all(32);
  for (int i = 0; i < 32; ++i) all[i] = i;
  auto trees = build_all(topo, all, 4);
  std::set<int> leaders;
  for (int m : all) {
    const int p = trees[m].parent;
    if (p < 0) continue;
    if (topo.first_switch(p) == topo.first_switch(m)) continue;
    // Cross-switch edge: only a cluster leader (lowest id on its switch,
    // or the root) may hang off another switch.
    leaders.insert(m);
    EXPECT_EQ(m % 8, 0) << "non-leader " << m << " crosses switches";
  }
  EXPECT_FALSE(leaders.empty());
}

TEST(CollTree, FatTreeAndChainDisagree) {
  // Same member list, different physical clustering (8 per chain crossbar
  // vs 2 per fat-tree edge switch) must yield different trees for at
  // least one member.
  Topo chain(chain_params(8), 16);
  Topo ft(fat_tree_params(4), 16);
  std::vector<int> all(16);
  for (int i = 0; i < 16; ++i) all[i] = i;
  bool differs = false;
  for (int m : all) {
    CollTree a = coll_tree(chain, all, 2, m);
    CollTree b = coll_tree(ft, all, 2, m);
    if (a.parent != b.parent || a.children != b.children) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(CollTree, LeaderRadixCapsHeapDepth) {
  // Never narrower than the configured radix...
  EXPECT_EQ(coll_leader_radix(4, 1), 4);
  EXPECT_EQ(coll_leader_radix(4, 21), 4);  // 1 + 4 + 16 = 21 fits
  // ...and widens just enough to keep 1 + r + r^2 >= n_clusters.
  EXPECT_EQ(coll_leader_radix(4, 22), 5);
  EXPECT_EQ(coll_leader_radix(6, 43), 6);
  EXPECT_EQ(coll_leader_radix(6, 74), 9);   // 1 + 9 + 81 >= 74
  EXPECT_EQ(coll_leader_radix(1, 3), 1);    // 1 + 1 + 1 = 3 fits at r=1
  // The depth-<=2 invariant itself, across a sweep.
  for (int n = 1; n <= 500; ++n) {
    const int r = coll_leader_radix(2, n);
    EXPECT_GE(1 + r + r * r, n) << n;
  }
}

TEST(CollTree, Deterministic) {
  Topo topo(fat_tree_params(4, 2), 20);
  std::vector<int> members = {3, 0, 7, 12, 19, 9, 14};
  for (int m : members) {
    CollTree a = coll_tree(topo, members, 3, m);
    CollTree b = coll_tree(topo, members, 3, m);
    EXPECT_EQ(a.parent, b.parent);
    EXPECT_EQ(a.children, b.children);
  }
}

}  // namespace
}  // namespace fmx::net
