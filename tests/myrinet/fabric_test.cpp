#include "myrinet/fabric.hpp"

#include <gtest/gtest.h>

#include "myrinet/node.hpp"
#include "sim/sync.hpp"

namespace fmx::net {
namespace {

using sim::Engine;
using sim::Task;

ClusterParams tiny(int n = 2) {
  ClusterParams p = ppro_fm2_cluster(n);
  return p;
}

// Drives the fabric directly through NICs (no FM layer yet).
TEST(Fabric, DeliversPayloadIntact) {
  Engine eng;
  Cluster cl(eng, tiny());
  Bytes data = pattern_bytes(1, 300);
  eng.spawn([](Cluster& c, Bytes d) -> Task<void> {
    co_await c.node(0).nic().enqueue(SendDescriptor{1, d, true, {}});
  }(cl, data));
  bool got = false;
  eng.spawn([](Cluster& c, bool& g) -> Task<void> {
    RxPacket p = co_await c.node(1).nic().host_ring().pop();
    EXPECT_EQ(p.src, 0);
    EXPECT_EQ(pattern_mismatch(1, 0, p.payload), -1);
    EXPECT_EQ(p.payload.size(), 300u);
    g = true;
  }(cl, got));
  eng.run();
  EXPECT_TRUE(got);
  EXPECT_EQ(eng.pending_roots(), 0);
  EXPECT_EQ(cl.node(1).nic().stats().rx_packets, 1u);
  EXPECT_EQ(cl.node(1).nic().stats().crc_dropped, 0u);
}

TEST(Fabric, InOrderDeliveryPerSourceDest) {
  Engine eng;
  Cluster cl(eng, tiny());
  constexpr int kN = 50;
  eng.spawn([](Cluster& c) -> Task<void> {
    for (int i = 0; i < kN; ++i) {
      Bytes b(4);
      std::memcpy(b.data(), &i, 4);
      co_await c.node(0).nic().enqueue(SendDescriptor{1, std::move(b), true, {}});
    }
  }(cl));
  int received = 0;
  eng.spawn([](Cluster& c, int& r) -> Task<void> {
    for (int i = 0; i < kN; ++i) {
      RxPacket p = co_await c.node(1).nic().host_ring().pop();
      int v;
      std::memcpy(&v, p.payload.data(), 4);
      EXPECT_EQ(v, i);  // network preserves order
      ++r;
    }
  }(cl, received));
  eng.run();
  EXPECT_EQ(received, kN);
}

TEST(Fabric, LatencyMatchesZeroLoadModel) {
  Engine eng;
  ClusterParams p = tiny();
  Cluster cl(eng, p);
  sim::Ps arrival = 0;
  eng.spawn([](Cluster& c) -> Task<void> {
    co_await c.node(0).nic().enqueue(
        SendDescriptor{1, Bytes(64), true, {}});
  }(cl));
  eng.spawn([](Cluster& c, sim::Ps& t) -> Task<void> {
    RxPacket pk = co_await c.node(1).nic().host_ring().pop();
    t = pk.arrived;
  }(cl, arrival));
  eng.run();
  // Expected: DMA fetch + NIC tx + wire (zero-load) + NIC rx + DMA to host.
  sim::Ps wire = cl.fabric().zero_load_latency(0, 1, 64);
  sim::Ps dma = cl.node(0).bus().dma_time(64);
  sim::Ps expect =
      dma + p.nic.per_packet_tx + wire + p.nic.per_packet_rx + dma;
  EXPECT_EQ(arrival, expect);
}

TEST(Fabric, BandwidthBoundedByBottleneckStage) {
  Engine eng;
  ClusterParams p = tiny();
  Cluster cl(eng, p);
  constexpr int kN = 200;
  constexpr std::size_t kSize = 1024;
  sim::Ps done = 0;
  eng.spawn([](Cluster& c) -> Task<void> {
    for (int i = 0; i < kN; ++i) {
      co_await c.node(0).nic().enqueue(
          SendDescriptor{1, Bytes(kSize), true, {}});
    }
  }(cl));
  eng.spawn([](Cluster& c, sim::Ps& d) -> Task<void> {
    for (int i = 0; i < kN; ++i) {
      (void)co_await c.node(1).nic().host_ring().pop();
    }
    d = c.engine().now();
  }(cl, done));
  eng.run();
  double secs = sim::to_seconds(done);
  double bw = kN * kSize / secs;
  // Bottleneck is the PCI DMA stage: setup + per-byte, one DMA per side of
  // two different buses, so each node's bus does one DMA per packet.
  double per_pkt_us = sim::to_us(cl.node(0).bus().dma_time(kSize));
  double bound = kSize / (per_pkt_us * 1e-6);
  EXPECT_LT(bw, bound * 1.01);
  EXPECT_GT(bw, bound * 0.85);  // pipeline should approach the bound
}

TEST(Fabric, BitErrorsDetectedAndDropped) {
  Engine eng;
  ClusterParams p = tiny();
  p.fabric.bit_error_rate = 1e-4;  // absurdly noisy, to force corruption
  Cluster cl(eng, p);
  constexpr int kN = 100;
  eng.spawn([](Cluster& c) -> Task<void> {
    for (int i = 0; i < kN; ++i) {
      co_await c.node(0).nic().enqueue(
          SendDescriptor{1, pattern_bytes(i, 512), true, {}});
    }
  }(cl));
  int received = 0;
  eng.spawn_daemon([](Cluster& c, int& r) -> Task<void> {
    for (;;) {
      RxPacket pk = co_await c.node(1).nic().host_ring().pop();
      (void)pk;
      ++r;
    }
  }(cl, received));
  eng.run();
  const auto& nic = cl.node(1).nic().stats();
  const auto& fab = cl.fabric().stats();
  EXPECT_GT(fab.corrupted, 0u);
  EXPECT_EQ(nic.crc_dropped, fab.corrupted);
  EXPECT_EQ(received + static_cast<int>(nic.crc_dropped), kN);
}

TEST(Fabric, CorruptedPayloadNeverReachesHost) {
  Engine eng;
  ClusterParams p = tiny();
  p.fabric.bit_error_rate = 1e-4;
  Cluster cl(eng, p);
  eng.spawn([](Cluster& c) -> Task<void> {
    for (int i = 0; i < 200; ++i) {
      co_await c.node(0).nic().enqueue(
          SendDescriptor{1, pattern_bytes(7, 256), true, {}});
    }
  }(cl));
  eng.spawn_daemon([](Cluster& c) -> Task<void> {
    for (;;) {
      RxPacket pk = co_await c.node(1).nic().host_ring().pop();
      // Every packet that reaches the host passed CRC => intact bytes.
      EXPECT_EQ(pattern_mismatch(7, 0, pk.payload), -1);
    }
  }(cl));
  eng.run();
  EXPECT_GT(cl.node(1).nic().stats().crc_dropped, 0u);
}

TEST(Fabric, MultiSwitchRouting) {
  Engine eng;
  ClusterParams p = tiny(20);  // hosts_per_switch=8 -> 3 switches
  Cluster cl(eng, p);
  EXPECT_EQ(cl.fabric().hops(0, 7), 1);
  EXPECT_EQ(cl.fabric().hops(0, 8), 2);
  EXPECT_EQ(cl.fabric().hops(0, 19), 3);
  EXPECT_EQ(cl.fabric().hops(5, 5), 0);
  // Cross-switch send works end to end.
  bool got = false;
  eng.spawn([](Cluster& c) -> Task<void> {
    co_await c.node(0).nic().enqueue(
        SendDescriptor{19, pattern_bytes(3, 100), true, {}});
  }(cl));
  eng.spawn([](Cluster& c, bool& g) -> Task<void> {
    RxPacket pk = co_await c.node(19).nic().host_ring().pop();
    EXPECT_EQ(pk.src, 0);
    EXPECT_EQ(pattern_mismatch(3, 0, pk.payload), -1);
    g = true;
  }(cl, got));
  eng.run();
  EXPECT_TRUE(got);
  // Longer routes cost more zero-load latency.
  EXPECT_GT(cl.fabric().zero_load_latency(0, 19, 64),
            cl.fabric().zero_load_latency(0, 7, 64));
}

TEST(Fabric, LoopbackDelivery) {
  Engine eng;
  Cluster cl(eng, tiny());
  bool got = false;
  eng.spawn([](Cluster& c, bool& g) -> Task<void> {
    co_await c.node(0).nic().enqueue(
        SendDescriptor{0, pattern_bytes(9, 40), true, {}});
    RxPacket pk = co_await c.node(0).nic().host_ring().pop();
    EXPECT_EQ(pk.src, 0);
    EXPECT_EQ(pattern_mismatch(9, 0, pk.payload), -1);
    g = true;
  }(cl, got));
  eng.run();
  EXPECT_TRUE(got);
}

TEST(Fabric, ContentionTwoSendersOneReceiver) {
  Engine eng;
  ClusterParams p = tiny(3);
  Cluster cl(eng, p);
  constexpr int kN = 100;
  constexpr std::size_t kSize = 1024;
  for (int s = 0; s < 2; ++s) {
    eng.spawn([](Cluster& c, int src) -> Task<void> {
      for (int i = 0; i < kN; ++i) {
        co_await c.node(src).nic().enqueue(
            SendDescriptor{2, Bytes(kSize), true, {}});
      }
    }(cl, s));
  }
  sim::Ps done = 0;
  eng.spawn([](Cluster& c, sim::Ps& d) -> Task<void> {
    for (int i = 0; i < 2 * kN; ++i) {
      (void)co_await c.node(2).nic().host_ring().pop();
    }
    d = c.engine().now();
  }(cl, done));
  eng.run();
  // Receiver's bus is now the shared bottleneck: aggregate bandwidth is
  // capped near the single-stream bound, not doubled.
  double bw = 2.0 * kN * kSize / sim::to_seconds(done);
  double per_pkt = sim::to_seconds(cl.node(2).bus().dma_time(kSize));
  double bound = kSize / per_pkt;
  EXPECT_LT(bw, bound * 1.02);
}

TEST(Fabric, BackPressureLimitsInFlight) {
  Engine eng;
  ClusterParams p = tiny();
  p.nic.sram_rx_slots = 2;
  p.nic.host_ring_slots = 2;
  Cluster cl(eng, p);
  int sent = 0;
  // Receiver never drains: sender must stall after filling
  // ring (2) + SRAM slack (2) + tx queue (16) + 1 in the NIC's hands.
  eng.spawn([](Cluster& c, int& s) -> Task<void> {
    for (int i = 0; i < 100; ++i) {
      co_await c.node(0).nic().enqueue(SendDescriptor{1, Bytes(64), true, {}});
      ++s;
    }
  }(cl, sent));
  eng.run();
  EXPECT_LT(sent, 30);
  EXPECT_EQ(eng.pending_roots(), 1);  // sender is rightly stuck
}

}  // namespace
}  // namespace fmx::net
