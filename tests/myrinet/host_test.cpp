#include "myrinet/host.hpp"

#include <gtest/gtest.h>

#include "myrinet/iobus.hpp"

namespace fmx::net {
namespace {

using sim::Cost;
using sim::Engine;
using sim::Task;

HostParams simple_host() {
  HostParams p;
  p.cpu_hz = 100e6;  // 10 ns per cycle
  p.memcpy_setup = sim::ns(100);
  p.memcpy_ps_per_byte = 10'000;
  p.memcpy_ps_per_byte_uncached = 20'000;
  p.memcpy_cache_threshold = 1024;
  return p;
}

TEST(Host, ChargesAccumulateAndSyncPays) {
  Engine eng;
  Host h(eng, 0, simple_host());
  h.charge(Cost::kCall, sim::ns(500));
  h.charge(Cost::kMatch, sim::ns(300));
  EXPECT_EQ(h.pending(), sim::ns(800));
  eng.spawn([](Engine& e, Host& host) -> Task<void> {
    co_await host.sync();
    EXPECT_EQ(e.now(), sim::ns(800));
    co_await host.sync();  // nothing pending: no time passes
    EXPECT_EQ(e.now(), sim::ns(800));
  }(eng, h));
  eng.run();
  EXPECT_EQ(h.pending(), 0u);
  EXPECT_EQ(h.ledger().of(Cost::kCall), sim::ns(500));
  EXPECT_EQ(h.ledger().of(Cost::kMatch), sim::ns(300));
}

TEST(Host, ChargeCyclesConverts) {
  Engine eng;
  Host h(eng, 0, simple_host());
  h.charge_cycles(Cost::kOther, 100);  // 100 cycles at 100 MHz = 1 us
  EXPECT_EQ(h.pending(), sim::us(1));
}

TEST(Host, CopyMovesBytesAndCharges) {
  Engine eng;
  Host h(eng, 0, simple_host());
  Bytes src = pattern_bytes(5, 256);
  Bytes dst(256);
  h.copy(MutByteSpan{dst}, ByteSpan{src});
  EXPECT_EQ(dst, src);
  EXPECT_EQ(h.ledger().copies(), 1u);
  EXPECT_EQ(h.ledger().copied_bytes(), 256u);
  EXPECT_EQ(h.pending(), sim::ns(100) + 256 * sim::ns(10));
}

TEST(Host, MemcpyTwoRegimes) {
  Engine eng;
  Host h(eng, 0, simple_host());
  // Below threshold: 10 ns/B. Above: 20 ns/B.
  EXPECT_EQ(h.memcpy_cost(100), sim::ns(100) + 100 * sim::ns(10));
  EXPECT_EQ(h.memcpy_cost(2048), sim::ns(100) + 2048 * sim::ns(20));
}

TEST(Host, NoteLedgersWithoutDelay) {
  Engine eng;
  Host h(eng, 0, simple_host());
  h.note(Cost::kPio, sim::us(3));
  EXPECT_EQ(h.pending(), 0u);
  EXPECT_EQ(h.ledger().of(Cost::kPio), sim::us(3));
}

TEST(IoBus, TransferTimes) {
  Engine eng;
  IoBusParams p;
  p.dma_setup = sim::ns(500);
  p.dma_ps_per_byte = 10'000;
  p.pio_setup = sim::ns(200);
  p.pio_ps_per_byte = 20'000;
  IoBus bus(eng, p);
  EXPECT_EQ(bus.dma_time(100), sim::ns(500) + sim::ns(1000));
  EXPECT_EQ(bus.pio_time(100), sim::ns(200) + sim::ns(2000));
}

TEST(IoBus, DmaAndPioContend) {
  Engine eng;
  IoBusParams p;
  p.dma_setup = 0;
  p.dma_ps_per_byte = 10'000;
  p.pio_setup = 0;
  p.pio_ps_per_byte = 10'000;
  IoBus bus(eng, p);
  sim::Ps t_dma = 0, t_pio = 0;
  eng.spawn([](Engine& e, IoBus& b, sim::Ps& t) -> Task<void> {
    co_await b.dma(1000);  // 10 us
    t = e.now();
  }(eng, bus, t_dma));
  eng.spawn([](Engine& e, IoBus& b, sim::Ps& t) -> Task<void> {
    co_await b.pio(1000);  // queued behind the DMA
    t = e.now();
  }(eng, bus, t_pio));
  eng.run();
  EXPECT_EQ(t_dma, sim::us(10));
  EXPECT_EQ(t_pio, sim::us(20));
  EXPECT_EQ(bus.busy_time(), sim::us(20));
}

TEST(Presets, SparcAndPProDiffer) {
  auto sparc = sparc_fm1_cluster();
  auto ppro = ppro_fm2_cluster();
  EXPECT_LT(sparc.host.cpu_hz, ppro.host.cpu_hz);
  EXPECT_LT(sparc.nic.mtu_payload, ppro.nic.mtu_payload);
  EXPECT_GT(sparc.bus.pio_ps_per_byte, 0.0);
  EXPECT_GT(sparc.fabric.link_ps_per_byte, ppro.fabric.link_ps_per_byte);
  EXPECT_EQ(sparc.fabric.bit_error_rate, 0.0);
}

}  // namespace
}  // namespace fmx::net
