// Properties of the per-pair parallel lookahead matrix (ParallelCluster ->
// ParallelEngine): for every topology preset, host count, and shard count,
//   (1) conservatism — each entry is bounded by the true minimum
//       source-side head latency of any cross-shard path between the two
//       shards, derived independently from Fabric::zero_load_latency by
//       stripping the one end-to-end serialization (cut-through) and the
//       destination downlink (reserved by the destination replica);
//   (2) positivity — conservative parallel execution cannot make progress
//       with a zero bound;
//   (3) metric closure — no direct entry exceeds any relay chain, the
//       property the published-horizon soundness induction leans on.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "myrinet/parallel_cluster.hpp"
#include "myrinet/params.hpp"

namespace fmx {
namespace {

constexpr sim::Ps kNever = std::numeric_limits<sim::Ps>::max();

void check_matrix(net::ClusterParams params, int n_shards) {
  net::ParallelCluster cl(params, n_shards);
  const int k = cl.n_shards();
  if (k < 2) return;
  net::Fabric& f = cl.shard_fabric(0);  // full topology in every replica
  const sim::Ps ser0 = static_cast<sim::Ps>(
      params.fabric.link_ps_per_byte * static_cast<double>(f.wire_bytes(0)));

  // True minimum head latency shard s -> shard d: over all host pairs, the
  // zero-load latency minus the cut-through serialization and the final
  // downlink hop (the destination shard's replica arbitrates that link and
  // re-adds it on delivery).
  std::vector<sim::Ps> ref(static_cast<std::size_t>(k) * k, kNever);
  for (int a = 0; a < params.n_hosts; ++a) {
    for (int b = 0; b < params.n_hosts; ++b) {
      const int sa = cl.shard_of(a);
      const int sb = cl.shard_of(b);
      if (sa == sb) continue;
      const sim::Ps head =
          f.zero_load_latency(a, b, 0) - ser0 - params.fabric.link_latency;
      sim::Ps& cell = ref[static_cast<std::size_t>(sa) * k + sb];
      cell = std::min(cell, head);
    }
  }

  for (int s = 0; s < k; ++s) {
    for (int d = 0; d < k; ++d) {
      if (s == d) continue;
      const sim::Ps la = cl.lookahead(s, d);
      EXPECT_GE(la, 1u) << "zero lookahead cannot make progress "
                        << s << "->" << d;
      EXPECT_LE(la, ref[static_cast<std::size_t>(s) * k + d])
          << "lookahead " << s << "->" << d
          << " exceeds the true minimum head latency (unsound)";
    }
  }

  for (int a = 0; a < k; ++a) {
    for (int b = 0; b < k; ++b) {
      for (int c = 0; c < k; ++c) {
        if (a == b || b == c || a == c) continue;
        EXPECT_LE(cl.lookahead(a, c),
                  cl.lookahead(a, b) + cl.lookahead(b, c))
            << "matrix not metric-closed at " << a << "->" << b << "->" << c;
      }
    }
  }
}

TEST(LookaheadMatrix, ConservativeAndClosedAcrossTopologies) {
  for (const int n_hosts : {4, 8, 16, 24}) {
    for (const int n_shards : {2, 3, 0 /* one shard per node */}) {
      SCOPED_TRACE("ppro n_hosts=" + std::to_string(n_hosts) +
                   " n_shards=" + std::to_string(n_shards));
      check_matrix(net::ppro_fm2_cluster(n_hosts), n_shards);
    }
    SCOPED_TRACE("sparc n_hosts=" + std::to_string(n_hosts));
    check_matrix(net::sparc_fm1_cluster(n_hosts), 0);
  }
}

// Distant shards must synchronize more loosely than adjacent ones when the
// topology has multiple switches: the per-pair matrix is the whole point
// over a single global lookahead.
TEST(LookaheadMatrix, MultiSwitchPairsScaleWithDistance) {
  auto params = net::ppro_fm2_cluster(24);  // 3 switches at 8 hosts each
  net::ParallelCluster cl(params, 3);       // one shard per switch
  ASSERT_EQ(cl.n_shards(), 3);
  const sim::Ps unit =
      params.fabric.link_latency + params.fabric.switch_latency;
  EXPECT_GT(cl.lookahead(0, 2), cl.lookahead(0, 1));
  EXPECT_EQ(cl.lookahead(0, 1), 2 * unit);  // uplink + one inter-switch hop
  EXPECT_EQ(cl.lookahead(0, 2), 3 * unit);
}

}  // namespace
}  // namespace fmx
