// The link-level go-back-N extension: FM's "Myrinet is reliable" assumption
// made explicit and removable. With reliable_link on, the NIC recovers from
// injected bit errors transparently; everything above (FM 2.x, MPI) keeps
// its guarantees over a lossy fabric.
#include <gtest/gtest.h>

#include "common/crc32.hpp"
#include "fault/injector.hpp"
#include "fm2/fm2.hpp"
#include "myrinet/node.hpp"
#include "tests/common/sim_fixture.hpp"

namespace fmx::net {
namespace {

using sim::Engine;
using sim::Task;

ClusterParams lossy_reliable(double ber, int n = 2) {
  ClusterParams p = ppro_fm2_cluster(n);
  p.fabric.bit_error_rate = ber;
  p.nic.reliable_link = true;
  return p;
}

TEST(ReliableLink, RecoversFromInjectedErrors) {
  Engine eng;
  Cluster cl(eng, lossy_reliable(2e-5));
  constexpr int kN = 300;
  eng.spawn([](Cluster& c) -> Task<void> {
    for (int i = 0; i < kN; ++i) {
      co_await c.node(0).nic().enqueue(
          SendDescriptor(1, pattern_bytes(i, 512), true));
    }
  }(cl));
  int got = 0;
  eng.spawn([](Cluster& c, int& g) -> Task<void> {
    for (int i = 0; i < kN; ++i) {
      RxPacket p = co_await c.node(1).nic().host_ring().pop();
      // Reliable AND in order AND intact.
      EXPECT_EQ(pattern_mismatch(g, 0, p.payload), -1) << "packet " << g;
      ++g;
    }
  }(cl, got));
  ASSERT_TRUE(fmx::test::run_to_exhaustion(eng));
  EXPECT_EQ(got, kN);
  EXPECT_GT(cl.fabric().stats().corrupted, 0u);           // errors happened
  EXPECT_GT(cl.node(0).nic().stats().retransmissions, 0u); // and were fixed
  EXPECT_EQ(cl.node(0).nic().unacked(), 0u);               // fully acked
}

TEST(ReliableLink, RecoversFromInjectedDrops) {
  // Whole packets evaporating (plus gratuitous duplicates) rather than bit
  // errors: go-back-N must fill every gap, discard every duplicate, and
  // deliver the byte-exact payload — re-verified here with an independent
  // CRC over what actually landed in host memory.
  Engine eng;
  Cluster cl(eng, lossy_reliable(0.0));  // clean wire; faults are injected
  fault::FaultPlan plan = fault::FaultPlan::clean(17);
  plan.wire.drop = 0.05;
  plan.wire.duplicate = 0.05;
  fault::PlanInjector inj(eng, plan);
  fault::arm(cl, inj);
  constexpr int kN = 300;
  std::vector<std::uint32_t> sent_crc(kN);
  eng.spawn([](Cluster& c, std::vector<std::uint32_t>& crcs) -> Task<void> {
    for (int i = 0; i < kN; ++i) {
      Bytes m = pattern_bytes(i, 512);
      crcs[static_cast<std::size_t>(i)] = crc32(m);
      co_await c.node(0).nic().enqueue(SendDescriptor(1, std::move(m), true));
    }
  }(cl, sent_crc));
  int got = 0;
  eng.spawn([](Cluster& c, const std::vector<std::uint32_t>& crcs,
               int& g) -> Task<void> {
    for (int i = 0; i < kN; ++i) {
      RxPacket p = co_await c.node(1).nic().host_ring().pop();
      // In order, exactly once, and the host-side CRC matches what the
      // sender computed before the packet ever touched the NIC.
      EXPECT_EQ(crc32(p.payload), crcs[static_cast<std::size_t>(g)])
          << "packet " << g;
      EXPECT_EQ(pattern_mismatch(g, 0, p.payload), -1) << "packet " << g;
      ++g;
    }
  }(cl, sent_crc, got));
  ASSERT_TRUE(fmx::test::run_to_exhaustion(eng));
  EXPECT_EQ(got, kN);
  EXPECT_GT(inj.stats().drops, 0u);                         // drops happened
  EXPECT_GT(cl.node(0).nic().stats().retransmissions, 0u);  // and were fixed
  // Injected duplicates (and go-back-N's own re-sends of packets that did
  // arrive) were discarded by the sequence check, not delivered twice.
  EXPECT_GT(cl.node(1).nic().stats().seq_dropped, 0u);
  EXPECT_EQ(cl.node(0).nic().unacked(), 0u);
}

TEST(ReliableLink, WithoutItErrorsLoseData) {
  Engine eng;
  ClusterParams p = ppro_fm2_cluster(2);
  p.fabric.bit_error_rate = 2e-5;  // reliable_link stays OFF
  Cluster cl(eng, p);
  constexpr int kN = 300;
  eng.spawn([](Cluster& c) -> Task<void> {
    for (int i = 0; i < kN; ++i) {
      co_await c.node(0).nic().enqueue(SendDescriptor(1, Bytes(512), true));
    }
  }(cl));
  int got = 0;
  eng.spawn_daemon([](Cluster& c, int& g) -> Task<void> {
    for (;;) {
      (void)co_await c.node(1).nic().host_ring().pop();
      ++g;
    }
  }(cl, got));
  eng.run();
  EXPECT_LT(got, kN);  // some packets were silently lost
  EXPECT_GT(cl.node(1).nic().stats().crc_dropped, 0u);
}

TEST(ReliableLink, NoLossFastPathOverheadIsSmall) {
  // With zero error rate the protocol costs only acks: bandwidth within a
  // few percent of the baseline.
  auto run = [](bool reliable) {
    Engine eng;
    ClusterParams p = ppro_fm2_cluster(2);
    p.nic.reliable_link = reliable;
    Cluster cl(eng, p);
    constexpr int kN = 200;
    sim::Ps t_end = 0;
    eng.spawn([](Cluster& c) -> Task<void> {
      for (int i = 0; i < kN; ++i) {
        co_await c.node(0).nic().enqueue(SendDescriptor(1, Bytes(1024), true));
      }
    }(cl));
    eng.spawn([](Engine& e, Cluster& c, sim::Ps& end) -> Task<void> {
      for (int i = 0; i < kN; ++i) {
        (void)co_await c.node(1).nic().host_ring().pop();
      }
      end = e.now();
    }(eng, cl, t_end));
    eng.run();
    return 1024.0 * kN / sim::to_seconds(t_end);
  };
  double base = run(false);
  double rel = run(true);
  EXPECT_GT(rel, base * 0.93);
}

TEST(ReliableLink, SurvivesAckLoss) {
  // Acks are packets too and get corrupted; duplicates must be discarded
  // by sequence checks and re-acked.
  Engine eng;
  Cluster cl(eng, lossy_reliable(8e-5));
  constexpr int kN = 150;
  eng.spawn([](Cluster& c) -> Task<void> {
    for (int i = 0; i < kN; ++i) {
      co_await c.node(0).nic().enqueue(
          SendDescriptor(1, pattern_bytes(i, 256), true));
    }
  }(cl));
  int got = 0;
  eng.spawn([](Cluster& c, int& g) -> Task<void> {
    for (int i = 0; i < kN; ++i) {
      RxPacket p = co_await c.node(1).nic().host_ring().pop();
      EXPECT_EQ(pattern_mismatch(g, 0, p.payload), -1);
      ++g;
    }
  }(cl, got));
  eng.run();
  EXPECT_EQ(got, kN);
  // Retransmissions of already-delivered packets were dropped as dups.
  EXPECT_GT(cl.node(1).nic().stats().seq_dropped, 0u);
}

TEST(ReliableLink, BidirectionalTrafficPiggybacksAcks) {
  Engine eng;
  Cluster cl(eng, lossy_reliable(0.0));
  constexpr int kN = 100;
  for (int dir = 0; dir < 2; ++dir) {
    eng.spawn([](Cluster& c, int from) -> Task<void> {
      for (int i = 0; i < kN; ++i) {
        co_await c.node(from).nic().enqueue(
            SendDescriptor(1 - from, Bytes(256), true));
      }
    }(cl, dir));
    eng.spawn([](Cluster& c, int at) -> Task<void> {
      for (int i = 0; i < kN; ++i) {
        (void)co_await c.node(at).nic().host_ring().pop();
      }
    }(cl, dir));
  }
  ASSERT_TRUE(fmx::test::run_to_exhaustion(eng));
  // With reverse data flowing, most acks ride piggyback: far fewer
  // explicit ack packets than data packets.
  EXPECT_LT(cl.node(0).nic().stats().acks_sent, kN);
}

TEST(ReliableLink, Fm2StackRunsIntactOverLossyFabric) {
  // The full FM 2.x protocol (credits, streams, handlers) on top of the
  // reliable-link extension, over a genuinely lossy wire.
  Engine eng;
  Cluster cl(eng, lossy_reliable(2e-5));
  fm2::Endpoint tx(cl, 0), rx(cl, 1);
  constexpr int kMsgs = 20;
  int seen = 0;
  rx.register_handler(0, [&](fm2::RecvStream& s, int) -> fm2::HandlerTask {
    Bytes buf(s.msg_bytes());
    co_await s.receive(MutByteSpan{buf});
    EXPECT_EQ(pattern_mismatch(seen, 0, ByteSpan{buf}), -1);
    ++seen;
  });
  eng.spawn([](fm2::Endpoint& ep) -> Task<void> {
    for (std::size_t i = 0; i < kMsgs; ++i) {
      Bytes m = pattern_bytes(i, 3000);
      co_await ep.send(1, 0, ByteSpan{m});
    }
  }(tx));
  eng.spawn([](fm2::Endpoint& ep, int& n) -> Task<void> {
    co_await ep.poll_until([&] { return n == kMsgs; });
  }(rx, seen));
  ASSERT_TRUE(fmx::test::run_to_exhaustion(eng));
  EXPECT_EQ(seen, kMsgs);
  EXPECT_GT(cl.fabric().stats().corrupted, 0u);
}

}  // namespace
}  // namespace fmx::net
