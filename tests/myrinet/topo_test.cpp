// Topology invariants for the route-table layer (myrinet/topo.hpp):
// up*/down* route validity (deadlock freedom), hop symmetry, ECMP path
// counts and distribution, chain equivalence with the original walk, and
// the route-aliasing regression the O(1) tables exist to prevent.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "myrinet/fabric.hpp"
#include "myrinet/topo.hpp"
#include "sim/engine.hpp"

namespace fmx::net {
namespace {

FabricParams fat_tree_params(int radix, int oversub = 1) {
  FabricParams p;
  p.topology = TopologyKind::kFatTree;
  p.fat_tree_radix = radix;
  p.oversubscription = oversub;
  return p;
}

// Every (src, dst, flow) path must be a connected up*/down* walk: it
// leaves the source host, levels rise monotonically to a single apex,
// then fall monotonically into the destination host. Valley-free routing
// is the standard fat-tree deadlock-freedom argument: no cyclic channel
// dependency can form when no packet ever goes up after coming down.
void expect_valid_updown(const Topo& t, int src, int dst,
                         std::uint32_t flow) {
  const int len = t.path_len(src, dst);
  ASSERT_GE(len, 2);
  ASSERT_EQ(len, t.hops(src, dst) + 1);
  EXPECT_EQ(t.link_at(src, dst, flow, 0), t.uplink(src));
  EXPECT_EQ(t.link_at(src, dst, flow, len - 1), t.downlink(dst));
  bool descending = false;
  for (int i = 0; i < len; ++i) {
    const int l = t.link_at(src, dst, flow, i);
    ASSERT_GE(l, 0);
    ASSERT_LT(l, t.n_links());
    if (i > 0) {
      // Connected: this link leaves the level the previous one entered.
      EXPECT_EQ(t.level_from(l), t.level_to(t.link_at(src, dst, flow, i - 1)))
          << "disconnected at hop " << i << " for " << src << "->" << dst;
    }
    const bool up = t.level_to(l) > t.level_from(l);
    if (up) {
      EXPECT_FALSE(descending)
          << "up after down at hop " << i << " for " << src << "->" << dst;
    } else {
      descending = true;
    }
  }
}

TEST(Topo, FatTreeCapacityAndCounts) {
  EXPECT_EQ(Topo::fat_tree_capacity(4, 1), 16);
  EXPECT_EQ(Topo::fat_tree_capacity(8, 1), 128);
  EXPECT_EQ(Topo::fat_tree_capacity(16, 1), 1024);
  EXPECT_EQ(Topo::fat_tree_capacity(8, 4), 512);

  Topo t(fat_tree_params(4), 16);
  // k=4: 4 pods x (2 edge + 2 agg) + 4 cores.
  EXPECT_EQ(t.n_switches(), 20);
  EXPECT_EQ(t.n_hosts(), 16);
  // 16 up + 16 down + per pod (2*2 ea + 2*2 ae) + per pod (2*2 ac + 2*2 ca).
  EXPECT_EQ(t.n_links(), 16 + 16 + 4 * 8 + 4 * 8);
  EXPECT_EQ(t.max_path_len(), 6);
}

TEST(Topo, FatTreeHopCountsByDistance) {
  // radix 4, oversub 1: 2 hosts per edge, 4 per pod.
  Topo t(fat_tree_params(4), 16);
  EXPECT_EQ(t.hops(0, 0), 0);
  EXPECT_EQ(t.hops(0, 1), 1);   // same edge switch
  EXPECT_EQ(t.hops(0, 2), 3);   // same pod, different edge
  EXPECT_EQ(t.hops(0, 4), 5);   // different pod
  EXPECT_EQ(t.hops(0, 15), 5);
}

TEST(Topo, HopSymmetryAllPairs) {
  for (int oversub : {1, 2}) {
    Topo t(fat_tree_params(4, oversub), 16);
    for (int a = 0; a < 16; ++a) {
      for (int b = 0; b < 16; ++b) {
        EXPECT_EQ(t.hops(a, b), t.hops(b, a)) << a << "," << b;
      }
    }
  }
}

TEST(Topo, UpDownValidityExhaustive) {
  Topo t(fat_tree_params(4), 16);
  for (int a = 0; a < 16; ++a) {
    for (int b = 0; b < 16; ++b) {
      if (a == b) continue;
      for (std::uint32_t flow : {0u, 1u, 7u, 1234567u}) {
        expect_valid_updown(t, a, b, flow);
      }
    }
  }
  // A partially-populated larger tree, including the radix used at scale.
  Topo big(fat_tree_params(8), 100);
  for (int a = 0; a < 100; a += 7) {
    for (int b = 0; b < 100; b += 11) {
      if (a == b) continue;
      expect_valid_updown(big, a, b, 3u);
    }
  }
}

TEST(Topo, EcmpPathCountsMatchTheory) {
  Topo t(fat_tree_params(4), 16);
  EXPECT_EQ(t.ecmp_paths(0, 1), 1);   // same edge: single path
  EXPECT_EQ(t.ecmp_paths(0, 2), 2);   // same pod: k/2 aggs
  EXPECT_EQ(t.ecmp_paths(0, 4), 4);   // cross pod: (k/2)^2 cores
  Topo t8(fat_tree_params(8), 128);
  EXPECT_EQ(t8.ecmp_paths(0, 127), 16);

  // Sweeping the flow id must exercise every distinct equal-cost path and
  // nothing else: collect the realized paths for a cross-pod pair.
  std::set<std::vector<int>> seen;
  for (std::uint32_t flow = 0; flow < 256; ++flow) {
    seen.insert(t.path(0, 4, flow));
  }
  EXPECT_EQ(static_cast<int>(seen.size()), t.ecmp_paths(0, 4));
  // All realized paths are valid and equal-cost by construction (checked
  // above); they must also be link-disjoint in the middle for this radix.
  for (const auto& p : seen) EXPECT_EQ(p.size(), 6u);
}

TEST(Topo, EcmpIsDeterministicAndPerPairStableAtFlowZero) {
  Topo t(fat_tree_params(8), 128);
  for (int dst : {2, 17, 64, 127}) {
    const auto p1 = t.path(0, dst, 0);
    const auto p2 = t.path(0, dst, 0);
    EXPECT_EQ(p1, p2);  // same triple -> same path, always
  }
  // Distinct flows from one pair spread over the core: at least two
  // different paths among a handful of flows (probabilistically certain
  // with 16 paths; deterministic given the fixed hash).
  std::set<std::vector<int>> seen;
  for (std::uint32_t flow = 0; flow < 8; ++flow) {
    seen.insert(t.path(0, 127, flow));
  }
  EXPECT_GT(seen.size(), 1u);
}

TEST(Topo, ChainMatchesLegacyGeometry) {
  FabricParams p;  // defaults: chain, hosts_per_switch 8
  Topo t(p, 24);
  EXPECT_EQ(t.n_switches(), 3);
  EXPECT_EQ(t.hops(0, 7), 1);
  EXPECT_EQ(t.hops(0, 8), 2);
  EXPECT_EQ(t.hops(0, 23), 3);
  EXPECT_EQ(t.hops(23, 0), 3);
  EXPECT_EQ(t.ecmp_paths(0, 23), 1);
  // Exact link sequence of the old route(): uplink, rightward transit
  // links, downlink.
  const auto path = t.path(1, 17, 0);
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(path[0], t.uplink(1));
  EXPECT_EQ(path[3], t.downlink(17));
  // And leftward:
  const auto back = t.path(17, 1, 0);
  ASSERT_EQ(back.size(), 4u);
  EXPECT_EQ(back[0], t.uplink(17));
  EXPECT_EQ(back[3], t.downlink(1));
  // Up/down validity holds for chains too (level 1 plateau is neither up
  // nor down once at the crossbar row).
  for (int a : {0, 5, 9, 23}) {
    for (int b : {0, 5, 9, 23}) {
      if (a != b) expect_valid_updown(t, a, b, 0);
    }
  }
}

// Regression for the old Fabric::route() footgun: the returned span was
// backed by a member scratch vector, valid only until the next call. The
// topology layer must hand out paths that stay stable while other path
// queries run interleaved.
TEST(Topo, InterleavedRoutesDoNotAlias) {
  Topo t(fat_tree_params(4), 16);
  const std::vector<int> first = t.path(0, 9, 5);
  const std::vector<int> snapshot = first;
  // Interleave: a different pair, a different flow, the reverse pair.
  (void)t.path(3, 12, 1);
  (void)t.path(9, 0, 5);
  for (int i = 0; i < t.path_len(0, 9); ++i) {
    EXPECT_EQ(t.link_at(0, 9, 5, i), snapshot[i]);
  }
  EXPECT_EQ(first, snapshot);

  // Same property through the Fabric wrapper benches/tests use.
  sim::Engine eng;
  FabricParams fp = fat_tree_params(4);
  Fabric fab(eng, fp, 16);
  const auto a = fab.path_of(0, 9, 5);
  const auto b = fab.path_of(3, 12, 1);
  EXPECT_EQ(a, fab.path_of(0, 9, 5));
  EXPECT_EQ(b, fab.path_of(3, 12, 1));
}

TEST(Topo, LinkMetadataPartitionsIdSpace) {
  Topo t(fat_tree_params(4, 2), 32);
  std::map<int, int> level_pairs;
  for (int l = 0; l < t.n_links(); ++l) {
    const int from = t.level_from(l);
    const int to = t.level_to(l);
    EXPECT_TRUE(from != to) << "link " << l;
    EXPECT_EQ(t.is_uplink(l), from == 0);
    EXPECT_EQ(t.is_downlink(l), to == 0);
    ++level_pairs[from * 10 + to];
  }
  // 32 hosts on a k=4, 2:1 tree: 32 uplinks (0->1), 32 downlinks (1->0),
  // and matching counts of edge<->agg and agg<->core transit links.
  EXPECT_EQ(level_pairs[0 * 10 + 1], 32);
  EXPECT_EQ(level_pairs[1 * 10 + 0], 32);
  EXPECT_EQ(level_pairs[1 * 10 + 2], level_pairs[2 * 10 + 1]);
  EXPECT_EQ(level_pairs[2 * 10 + 3], level_pairs[3 * 10 + 2]);
}

}  // namespace
}  // namespace fmx::net
