// Unit tests for the registration (pin-down) cache. The cache is pure
// bookkeeping over addresses — it never dereferences them — so the tests
// drive it with synthetic page-aligned addresses and assert the exact
// hit/miss/evict/coalesce sequences and the modeled costs.
#include "myrinet/reg_cache.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace fmx::net {
namespace {

constexpr std::size_t kPage = 4096;

const void* at(std::uintptr_t a) { return reinterpret_cast<const void*>(a); }

RegCacheParams params(std::size_t capacity_pages) {
  RegCacheParams p;
  p.capacity_bytes = capacity_pages * kPage;
  p.page_bytes = kPage;
  return p;
}

TEST(RegCache, MissPinsThenHitIsLookupOnly) {
  RegCache rc(params(64));
  const auto& p = rc.params();

  auto a = rc.acquire(at(0x10000), kPage);
  EXPECT_FALSE(a.hit);
  EXPECT_EQ(a.cost, p.lookup + p.pin_base + p.pin_per_page);
  EXPECT_EQ(rc.stats().misses, 1u);
  EXPECT_EQ(rc.stats().pinned_bytes, kPage);

  auto b = rc.acquire(at(0x10000), kPage);
  EXPECT_TRUE(b.hit);
  EXPECT_EQ(b.cost, p.lookup);  // no pin work on a covering hit
  EXPECT_EQ(rc.stats().hits, 1u);
  EXPECT_EQ(rc.active_uses(), 2u);

  rc.release(a.handle);
  rc.release(b.handle);
  EXPECT_EQ(rc.active_uses(), 0u);
  // Entry stays cached (and pinned) at zero uses — that is the point.
  EXPECT_EQ(rc.stats().regions, 1u);
  EXPECT_EQ(rc.stats().pinned_bytes, kPage);
}

TEST(RegCache, RangesRoundOutToPageBoundaries) {
  RegCache rc(params(64));
  // 0x20 bytes straddling a page boundary pins both pages.
  auto a = rc.acquire(at(0x10000 + kPage - 0x10), 0x20);
  EXPECT_EQ(rc.stats().pinned_bytes, 2 * kPage);
  // A zero-length acquire still registers (one page).
  auto b = rc.acquire(at(0x40000), 0);
  EXPECT_FALSE(b.hit);
  EXPECT_EQ(rc.stats().pinned_bytes, 3 * kPage);
  // Any sub-range of an already-pinned page is a hit.
  auto c = rc.acquire(at(0x10000 + kPage + 1), 4);
  EXPECT_TRUE(c.hit);
  rc.release(a.handle);
  rc.release(b.handle);
  rc.release(c.handle);
}

TEST(RegCache, BufferReuseMissesOnceAcrossMessageStream) {
  // The large-message pattern the cache exists for: a small set of user
  // buffers cycles through many rendezvous sends. Each buffer pays its pin
  // exactly once; every later message is a lookup.
  RegCache rc(params(64));
  constexpr std::size_t kBuf = 8 * kPage;
  constexpr int kBuffers = 4;
  constexpr int kRounds = 25;
  for (int r = 0; r < kRounds; ++r) {
    for (int b = 0; b < kBuffers; ++b) {
      auto h = rc.acquire(at(0x100000 + b * 0x100000), kBuf);
      EXPECT_EQ(h.hit, r != 0) << "round " << r << " buffer " << b;
      rc.release(h.handle);
    }
  }
  EXPECT_EQ(rc.stats().misses, static_cast<std::uint64_t>(kBuffers));
  EXPECT_EQ(rc.stats().hits,
            static_cast<std::uint64_t>(kBuffers * (kRounds - 1)));
  EXPECT_EQ(rc.stats().evictions, 0u);
  EXPECT_EQ(rc.stats().pinned_bytes, kBuffers * kBuf);
  EXPECT_EQ(rc.active_uses(), 0u);
}

TEST(RegCache, LruEvictionUnderCapacityPressure) {
  RegCache rc(params(2));  // room for two one-page regions

  auto a = rc.acquire(at(0x10000), kPage);
  rc.release(a.handle);
  auto b = rc.acquire(at(0x20000), kPage);
  rc.release(b.handle);
  // Touch A so B becomes the LRU idle region.
  auto a2 = rc.acquire(at(0x10000), kPage);
  rc.release(a2.handle);

  auto c = rc.acquire(at(0x30000), kPage);
  EXPECT_EQ(rc.stats().evictions, 1u);
  EXPECT_EQ(rc.stats().regions, 2u);
  EXPECT_EQ(rc.stats().pinned_bytes, 2 * kPage);
  const auto& p = rc.params();
  EXPECT_EQ(c.cost, p.lookup + p.pin_base + p.pin_per_page + p.unpin_per_page);

  // A survived (recently touched) ...
  EXPECT_TRUE(rc.acquire(at(0x10000), kPage).hit);
  // ... B was the victim: re-registering it is a fresh miss.
  EXPECT_FALSE(rc.acquire(at(0x20000), kPage).hit);
}

TEST(RegCache, InUseRegionsAreNeverEvicted) {
  RegCache rc(params(1));
  auto a = rc.acquire(at(0x10000), kPage);
  auto b = rc.acquire(at(0x20000), kPage);  // over budget, but both in use
  EXPECT_EQ(rc.stats().evictions, 0u);
  EXPECT_EQ(rc.stats().pinned_bytes, 2 * kPage);
  EXPECT_EQ(rc.stats().regions, 2u);

  // Once idle, capacity pressure from the next acquire reclaims them.
  rc.release(a.handle);
  rc.release(b.handle);
  auto c = rc.acquire(at(0x30000), kPage);
  EXPECT_EQ(rc.stats().evictions, 2u);
  EXPECT_EQ(rc.stats().pinned_bytes, kPage);
  rc.release(c.handle);
}

TEST(RegCache, OverlappingAcquireCoalescesAndOldHandlesStayValid) {
  RegCache rc(params(64));
  auto a = rc.acquire(at(0x10000), kPage);            // [0x10000, 0x11000)
  auto b = rc.acquire(at(0x12000), kPage);            // [0x12000, 0x13000)
  EXPECT_EQ(rc.stats().regions, 2u);

  // Spans the gap: absorbs both neighbours into one region, pinning only
  // the one uncovered page in the middle.
  const auto& p = rc.params();
  auto c = rc.acquire(at(0x10800), 0x2000);           // [0x10800, 0x12800)
  EXPECT_FALSE(c.hit);
  EXPECT_EQ(c.cost, p.lookup + p.pin_base + p.pin_per_page);
  EXPECT_EQ(rc.stats().coalesces, 2u);
  EXPECT_EQ(rc.stats().regions, 1u);
  EXPECT_EQ(rc.stats().pinned_bytes, 3 * kPage);
  EXPECT_EQ(rc.active_uses(), 3u);

  // The merged region covers everything the originals did.
  auto probe = rc.acquire(at(0x10000), 3 * kPage);
  EXPECT_TRUE(probe.hit);
  rc.release(probe.handle);

  // Handles issued before the merge release against the surviving region.
  rc.release(a.handle);
  rc.release(b.handle);
  rc.release(c.handle);
  EXPECT_EQ(rc.active_uses(), 0u);
}

TEST(RegCache, AbuttingRegionsMergeOnRegistration) {
  RegCache rc(params(64));
  auto a = rc.acquire(at(0x10000), kPage);
  auto b = rc.acquire(at(0x11000), kPage);  // abuts, does not overlap
  EXPECT_EQ(rc.stats().coalesces, 1u);
  EXPECT_EQ(rc.stats().regions, 1u);
  EXPECT_EQ(rc.stats().pinned_bytes, 2 * kPage);
  EXPECT_TRUE(rc.acquire(at(0x10000), 2 * kPage).hit);
  rc.release(a.handle);
  rc.release(b.handle);
}

TEST(RegCache, EvictionCostScalesWithUnpinnedPages) {
  RegCache rc(params(4));
  auto a = rc.acquire(at(0x10000), 4 * kPage);
  rc.release(a.handle);
  const auto& p = rc.params();
  // Next registration must unpin all four pages of the idle victim.
  auto b = rc.acquire(at(0x80000), kPage);
  EXPECT_EQ(b.cost,
            p.lookup + p.pin_base + p.pin_per_page + 4 * p.unpin_per_page);
  EXPECT_EQ(rc.stats().evictions, 1u);
  rc.release(b.handle);
}

}  // namespace
}  // namespace fmx::net
