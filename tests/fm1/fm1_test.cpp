#include "fm1/fm1.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace fmx::fm1 {
namespace {

using sim::Engine;
using sim::Task;

struct World {
  explicit World(net::ClusterParams p, Config cfg = {})
      : cluster(eng, p) {
    for (int i = 0; i < p.n_hosts; ++i) {
      eps.push_back(std::make_unique<Endpoint>(cluster, i, cfg));
    }
  }
  Endpoint& ep(int i) { return *eps[i]; }

  Engine eng;
  net::Cluster cluster;
  std::vector<std::unique_ptr<Endpoint>> eps;
};

TEST(Fm1, SingleShortMessageDelivered) {
  World w(net::sparc_fm1_cluster(2));
  Bytes msg = pattern_bytes(1, 64);
  bool got = false;
  w.ep(1).register_handler(7, [&](int src, ByteSpan data) {
    EXPECT_EQ(src, 0);
    EXPECT_EQ(data.size(), 64u);
    EXPECT_EQ(pattern_mismatch(1, 0, data), -1);
    got = true;
  });
  w.eng.spawn([](Endpoint& ep, ByteSpan m) -> Task<void> {
    co_await ep.send(1, 7, m);
  }(w.ep(0), ByteSpan{msg}));
  w.eng.spawn([](Endpoint& ep, bool& g) -> Task<void> {
    co_await ep.poll_until([&] { return g; });
  }(w.ep(1), got));
  w.eng.run();
  EXPECT_TRUE(got);
  EXPECT_EQ(w.eng.pending_roots(), 0);
  EXPECT_EQ(w.ep(0).stats().msgs_sent, 1u);
  EXPECT_EQ(w.ep(1).stats().msgs_received, 1u);
}

TEST(Fm1, Send4FastPath) {
  World w(net::sparc_fm1_cluster(2));
  std::uint32_t seen[4] = {};
  bool got = false;
  w.ep(1).register_handler(3, [&](int, ByteSpan data) {
    ASSERT_EQ(data.size(), 16u);
    std::memcpy(seen, data.data(), 16);
    got = true;
  });
  w.eng.spawn([](Endpoint& ep) -> Task<void> {
    co_await ep.send4(1, 3, 10, 20, 30, 40);
  }(w.ep(0)));
  w.eng.spawn([](Endpoint& ep, bool& g) -> Task<void> {
    co_await ep.poll_until([&] { return g; });
  }(w.ep(1), got));
  w.eng.run();
  ASSERT_TRUE(got);
  EXPECT_EQ(seen[0], 10u);
  EXPECT_EQ(seen[1], 20u);
  EXPECT_EQ(seen[2], 30u);
  EXPECT_EQ(seen[3], 40u);
}

TEST(Fm1, MultiPacketMessageReassembled) {
  World w(net::sparc_fm1_cluster(2));
  // 128 B MTU - 16 B header = 112 B segments; 1000 B spans 9 packets.
  Bytes msg = pattern_bytes(5, 1000);
  bool got = false;
  w.ep(1).register_handler(0, [&](int, ByteSpan data) {
    EXPECT_EQ(data.size(), 1000u);
    EXPECT_EQ(pattern_mismatch(5, 0, data), -1);
    got = true;
  });
  w.eng.spawn([](Endpoint& ep, ByteSpan m) -> Task<void> {
    co_await ep.send(1, 0, m);
  }(w.ep(0), ByteSpan{msg}));
  w.eng.spawn([](Endpoint& ep, bool& g) -> Task<void> {
    co_await ep.poll_until([&] { return g; });
  }(w.ep(1), got));
  w.eng.run();
  EXPECT_TRUE(got);
  EXPECT_GE(w.ep(0).stats().packets_sent, 9u);
  // Reassembly really copied packets into the staging buffer.
  EXPECT_GT(w.ep(1).host().ledger().copies(), 0u);
}

TEST(Fm1, EmptyMessageInvokesHandler) {
  World w(net::sparc_fm1_cluster(2));
  bool got = false;
  w.ep(1).register_handler(1, [&](int, ByteSpan data) {
    EXPECT_EQ(data.size(), 0u);
    got = true;
  });
  w.eng.spawn([](Endpoint& ep) -> Task<void> {
    co_await ep.send(1, 1, {});
  }(w.ep(0)));
  w.eng.spawn([](Endpoint& ep, bool& g) -> Task<void> {
    co_await ep.poll_until([&] { return g; });
  }(w.ep(1), got));
  w.eng.run();
  EXPECT_TRUE(got);
}

TEST(Fm1, InOrderDeliveryAcrossManyMessages) {
  World w(net::sparc_fm1_cluster(2));
  constexpr int kN = 100;
  std::vector<int> order;
  w.ep(1).register_handler(0, [&](int, ByteSpan data) {
    int v;
    std::memcpy(&v, data.data(), 4);
    order.push_back(v);
  });
  w.eng.spawn([](Endpoint& ep) -> Task<void> {
    for (int i = 0; i < kN; ++i) {
      Bytes b(4);
      std::memcpy(b.data(), &i, 4);
      co_await ep.send(1, 0, ByteSpan{b});
    }
  }(w.ep(0)));
  w.eng.spawn([](Endpoint& ep, std::vector<int>& o) -> Task<void> {
    co_await ep.poll_until([&] { return o.size() == kN; });
  }(w.ep(1), order));
  w.eng.run();
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kN));
  for (int i = 0; i < kN; ++i) EXPECT_EQ(order[i], i);
}

TEST(Fm1, MixedSizesInterleavedStayOrderedAndIntact) {
  World w(net::sparc_fm1_cluster(2));
  // Alternating short and long messages stress reassembly bookkeeping.
  const std::vector<std::size_t> sizes = {16, 500, 112, 113, 1, 2048, 64, 300};
  std::size_t next = 0;
  w.ep(1).register_handler(0, [&](int, ByteSpan data) {
    ASSERT_LT(next, sizes.size());
    EXPECT_EQ(data.size(), sizes[next]);
    EXPECT_EQ(pattern_mismatch(next, 0, data), -1);
    ++next;
  });
  w.eng.spawn([](Endpoint& ep, const std::vector<std::size_t>& sz)
                  -> Task<void> {
    for (std::size_t i = 0; i < sz.size(); ++i) {
      Bytes b = pattern_bytes(i, sz[i]);
      co_await ep.send(1, 0, ByteSpan{b});
    }
  }(w.ep(0), sizes));
  w.eng.spawn([](Endpoint& ep, std::size_t& n, std::size_t want)
                  -> Task<void> {
    co_await ep.poll_until([&] { return n == want; });
  }(w.ep(1), next, sizes.size()));
  w.eng.run();
  EXPECT_EQ(next, sizes.size());
}

TEST(Fm1, FlowControlStallsSenderUntilReceiverExtracts) {
  Config cfg;
  cfg.credits_per_peer = 4;
  World w(net::sparc_fm1_cluster(2), cfg);
  w.ep(1).register_handler(0, [](int, ByteSpan) {});
  int sent = 0;
  w.eng.spawn([](Endpoint& ep, int& s) -> Task<void> {
    for (int i = 0; i < 20; ++i) {
      Bytes b(32);
      co_await ep.send(1, 0, ByteSpan{b});
      ++s;
    }
  }(w.ep(0), sent));
  w.eng.run();
  // Receiver never extracted: sender used its 4 credits then stalled.
  EXPECT_EQ(sent, 4);
  EXPECT_GT(w.ep(0).stats().credit_stall_events, 0u);
  EXPECT_EQ(w.eng.pending_roots(), 1);
  // Receiver starts extracting: sender finishes.
  int got = 0;
  w.ep(1).register_handler(0, [&](int, ByteSpan) { ++got; });
  w.eng.spawn([](Endpoint& ep, int& g) -> Task<void> {
    co_await ep.poll_until([&] { return g == 20; });
  }(w.ep(1), got));
  w.eng.run();
  EXPECT_EQ(sent, 20);
  EXPECT_EQ(got, 20);
  EXPECT_EQ(w.eng.pending_roots(), 0);
}

TEST(Fm1, CreditsPiggybackOnReverseTraffic) {
  Config cfg;
  cfg.credits_per_peer = 8;
  World w(net::sparc_fm1_cluster(2), cfg);
  int got0 = 0, got1 = 0;
  w.ep(0).register_handler(0, [&](int, ByteSpan) { ++got0; });
  w.ep(1).register_handler(0, [&](int, ByteSpan) { ++got1; });
  constexpr int kN = 50;
  // Ping-pong: each side's data packets carry credit returns, so explicit
  // credit packets should be rare or absent.
  w.eng.spawn([](Endpoint& ep, int& got) -> Task<void> {
    for (int i = 0; i < kN; ++i) {
      Bytes b(32);
      co_await ep.send(1, 0, ByteSpan{b});
      co_await ep.poll_until([&, i] { return got > i; });
    }
  }(w.ep(0), got0));
  w.eng.spawn([](Endpoint& ep, int& got) -> Task<void> {
    for (int i = 0; i < kN; ++i) {
      co_await ep.poll_until([&, i] { return got > i; });
      Bytes b(32);
      co_await ep.send(0, 0, ByteSpan{b});
    }
  }(w.ep(1), got1));
  w.eng.run();
  EXPECT_EQ(got0, kN);
  EXPECT_EQ(got1, kN);
  EXPECT_EQ(w.ep(0).stats().credit_stall_events, 0u);
  EXPECT_EQ(w.ep(1).stats().credit_stall_events, 0u);
}

TEST(Fm1, ExplicitCreditPacketsFlowOnOneWayTraffic) {
  Config cfg;
  cfg.credits_per_peer = 8;
  World w(net::sparc_fm1_cluster(2), cfg);
  int got = 0;
  w.ep(1).register_handler(0, [&](int, ByteSpan) { ++got; });
  constexpr int kN = 100;  // far more than the credit allowance
  w.eng.spawn([](Endpoint& ep) -> Task<void> {
    for (int i = 0; i < kN; ++i) {
      Bytes b(32);
      co_await ep.send(1, 0, ByteSpan{b});
    }
  }(w.ep(0)));
  w.eng.spawn([](Endpoint& ep, int& g) -> Task<void> {
    co_await ep.poll_until([&] { return g == kN; });
  }(w.ep(1), got));
  w.eng.run();
  EXPECT_EQ(got, kN);
  // One-way traffic has nothing to piggyback on: explicit credit packets
  // must have been sent.
  EXPECT_GT(w.ep(1).stats().credit_packets_sent, 0u);
}

TEST(Fm1, MultipleHandlersDispatchById) {
  World w(net::sparc_fm1_cluster(2));
  int a = 0, b = 0;
  w.ep(1).register_handler(10, [&](int, ByteSpan) { ++a; });
  w.ep(1).register_handler(20, [&](int, ByteSpan) { ++b; });
  w.eng.spawn([](Endpoint& ep) -> Task<void> {
    Bytes m(8);
    co_await ep.send(1, 10, ByteSpan{m});
    co_await ep.send(1, 20, ByteSpan{m});
    co_await ep.send(1, 10, ByteSpan{m});
  }(w.ep(0)));
  w.eng.spawn([](Endpoint& ep, int& a_, int& b_) -> Task<void> {
    co_await ep.poll_until([&] { return a_ + b_ == 3; });
  }(w.ep(1), a, b));
  w.eng.run();
  EXPECT_EQ(a, 2);
  EXPECT_EQ(b, 1);
}

TEST(Fm1, ManyToOneDelivery) {
  World w(net::sparc_fm1_cluster(4));
  int got = 0;
  std::vector<int> per_src(4, 0);
  w.ep(3).register_handler(0, [&](int src, ByteSpan data) {
    EXPECT_EQ(pattern_mismatch(src, 0, data), -1);
    ++per_src[src];
    ++got;
  });
  for (int s = 0; s < 3; ++s) {
    w.eng.spawn([](Endpoint& ep, int src) -> Task<void> {
      for (int i = 0; i < 10; ++i) {
        Bytes b = pattern_bytes(src, 200);
        co_await ep.send(3, 0, ByteSpan{b});
      }
    }(w.ep(s), s));
  }
  w.eng.spawn([](Endpoint& ep, int& g) -> Task<void> {
    co_await ep.poll_until([&] { return g == 30; });
  }(w.ep(3), got));
  w.eng.run();
  EXPECT_EQ(per_src[0], 10);
  EXPECT_EQ(per_src[1], 10);
  EXPECT_EQ(per_src[2], 10);
}

TEST(Fm1, SelfSendDelivered) {
  World w(net::sparc_fm1_cluster(2));
  bool got = false;
  w.ep(0).register_handler(0, [&](int src, ByteSpan data) {
    EXPECT_EQ(src, 0);
    EXPECT_EQ(data.size(), 24u);
    got = true;
  });
  w.eng.spawn([](Endpoint& ep, bool& g) -> Task<void> {
    Bytes b(24);
    co_await ep.send(0, 0, ByteSpan{b});
    co_await ep.poll_until([&] { return g; });
  }(w.ep(0), got));
  w.eng.run();
  EXPECT_TRUE(got);
}

TEST(Fm1, SingletonPacketIsZeroCopyOnReceive) {
  World w(net::sparc_fm1_cluster(2));
  bool got = false;
  w.ep(1).register_handler(0, [&](int, ByteSpan) { got = true; });
  w.eng.spawn([](Endpoint& ep) -> Task<void> {
    Bytes b(64);
    co_await ep.send(1, 0, ByteSpan{b});
  }(w.ep(0)));
  w.eng.spawn([](Endpoint& ep, bool& g) -> Task<void> {
    co_await ep.poll_until([&] { return g; });
  }(w.ep(1), got));
  w.eng.run();
  // The receiving host performed no payload copies: the handler saw the
  // packet in the ring (FM 1.x's short-message fast path).
  EXPECT_EQ(w.ep(1).host().ledger().copies(), 0u);
}

class Fm1PropertyTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(Fm1PropertyTest, RandomTrafficIntegrityAndOrder) {
  auto [max_size, seed] = GetParam();
  World w(net::sparc_fm1_cluster(2));
  sim::Rng rng(seed);
  constexpr int kMsgs = 40;
  std::vector<std::size_t> sizes;
  for (int i = 0; i < kMsgs; ++i) sizes.push_back(rng.uniform(0, max_size));
  std::size_t next = 0;
  w.ep(1).register_handler(0, [&](int, ByteSpan data) {
    ASSERT_LT(next, sizes.size());
    EXPECT_EQ(data.size(), sizes[next]);
    EXPECT_EQ(pattern_mismatch(1000 + next, 0, data), -1);
    ++next;
  });
  w.eng.spawn([](Endpoint& ep, const std::vector<std::size_t>& sz)
                  -> Task<void> {
    for (std::size_t i = 0; i < sz.size(); ++i) {
      Bytes b = pattern_bytes(1000 + i, sz[i]);
      co_await ep.send(1, 0, ByteSpan{b});
    }
  }(w.ep(0), sizes));
  w.eng.spawn([](Endpoint& ep, std::size_t& n) -> Task<void> {
    co_await ep.poll_until([&] { return n == kMsgs; });
  }(w.ep(1), next));
  w.eng.run();
  EXPECT_EQ(next, static_cast<std::size_t>(kMsgs));
  EXPECT_EQ(w.eng.pending_roots(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Fm1PropertyTest,
    ::testing::Combine(::testing::Values(64, 500, 4000),
                       ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace fmx::fm1
