// ParallelEngine in isolation: two shards exchanging timed messages through
// SpscSlotRings, exactly the machinery the sharded cluster uses, with the
// cross-band ordering rule checked directly against the scheduler contract.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "sim/engine.hpp"
#include "sim/parallel.hpp"
#include "sim/spsc.hpp"

namespace fmx::sim {
namespace {

struct Msg {
  Ps at;
  std::uint64_t key;
  std::uint64_t val;
};

// A ping-pong generator: shard 0 emits values to shard 1 and vice versa,
// each arrival scheduling the next send one lookahead later, recording
// (shard, time, value) into per-shard logs.
struct Harness {
  static constexpr Ps kLookahead = 100;
  static constexpr int kRounds = 50;

  ParallelEngine par{2, kLookahead};
  SpscSlotRing ring01{8, sizeof(Msg)};  // shard 0 -> shard 1
  SpscSlotRing ring10{8, sizeof(Msg)};
  std::vector<std::uint64_t> log[2];
  std::uint64_t key[2] = {0, 0};

  void send(int from, Ps at, std::uint64_t val) {
    SpscSlotRing& r = from == 0 ? ring01 : ring10;
    Msg m{at, key[from]++, val};
    std::byte* slot = r.try_push_slot();
    ASSERT_NE(slot, nullptr);
    std::memcpy(slot, &m, sizeof(m));
    r.commit_push();
    // The other shard reacts to every arrival, so the scheduler must learn
    // about each in-flight message (self-echo / relay coverage).
    par.note_emission(from, 1 - from, at);
  }

  void drain(int shard) {
    SpscSlotRing& r = shard == 0 ? ring10 : ring01;
    std::uint64_t n = 0;
    while (const std::byte* slot = r.front()) {
      Msg m;
      std::memcpy(&m, slot, sizeof(m));
      r.pop();
      ++n;
      par.shard(shard).schedule_cross(m.at, m.key, [this, shard, m] {
        Engine& e = par.shard(shard);
        log[shard].push_back((e.now() << 16) | m.val);
        if (m.val < kRounds) {
          send(shard, e.now() + kLookahead, m.val + 1);
        }
      });
    }
    if (n != 0) par.note_drained(shard, 1 - shard, n);
  }

  struct RunStats {
    std::uint64_t events;
    std::uint64_t windows;
    std::vector<std::uint64_t> log0, log1;
  };

  RunStats run(int threads) {
    par.set_drain(0, [this] { drain(0); });
    par.set_drain(1, [this] { drain(1); });
    // Kick off: shard 0 sends value 0 arriving at t=1000 on shard 1, via a
    // local event so the first window has work.
    par.shard(0).schedule_at(0, [this] { send(0, 1000, 0); });
    auto r = par.run(threads);
    return RunStats{r.events, r.windows, log[0], log[1]};
  }
};

TEST(ParallelEngine, PingPongIdenticalAt1And2Threads) {
  Harness a, b;
  auto r1 = a.run(1);
  auto r2 = b.run(2);
  EXPECT_EQ(r1.events, r2.events);
  // Quantum boundaries depend on thread timing (windows is a meter, not a
  // simulated quantity) — only the simulated results must match.
  EXPECT_EQ(r1.log0, r2.log0);
  EXPECT_EQ(r1.log1, r2.log1);
  // 51 arrivals alternate between the shards, shard 1 first.
  EXPECT_EQ(r1.log0.size() + r1.log1.size(),
            static_cast<std::size_t>(Harness::kRounds + 1));
  EXPECT_EQ(r1.log1.front() & 0xFFFF, 0u);
}

TEST(ParallelEngine, IdleGapsAreSkipped) {
  ParallelEngine par(2, 10);
  std::vector<Ps> fired;
  // Events ten million ps apart: window-by-window stepping would need ~1e6
  // windows; idle-skip must land one window per event cluster.
  for (Ps t = 0; t < 5; ++t) {
    par.shard(t % 2 ? 1 : 0).schedule_at(t * 10'000'000,
                                         [&fired, &par, t] {
                                           fired.push_back(
                                               par.shard(t % 2 ? 1 : 0).now());
                                         });
  }
  auto r = par.run(1);
  EXPECT_EQ(fired.size(), 5u);
  EXPECT_LE(r.windows, 5u);
}

TEST(ParallelEngine, CrossBandOrdersAfterLocalEventsAtSameTime) {
  Engine eng;
  std::vector<int> order;
  eng.schedule_cross(50, 7, [&order] { order.push_back(3); });
  eng.schedule_cross(50, 2, [&order] { order.push_back(2); });
  eng.schedule_at(50, SmallFn{[&order] { order.push_back(1); }});
  eng.run();
  // Local events first (counter band), then cross events by key.
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(ParallelEngine, SpawnedRootsAndPendingRootsAggregate) {
  ParallelEngine par(3, 1000);
  // Atomic: the three roots live on different shards, so with 2 worker
  // threads two of them can retire this counter concurrently.
  std::atomic<int> done{0};
  for (int s = 0; s < 3; ++s) {
    par.shard(s).spawn([](Engine& e, std::atomic<int>& d) -> Task<void> {
      co_await e.delay(500);
      co_await e.delay(1500);
      d.fetch_add(1, std::memory_order_relaxed);
    }(par.shard(s), done));
  }
  auto r = par.run(2);
  EXPECT_EQ(done.load(), 3);
  EXPECT_EQ(r.pending_roots, 0);
  EXPECT_GE(r.events, 6u);
}

TEST(SpscSlotRing, FillDrainWrap) {
  SpscSlotRing r(4, 8);
  EXPECT_EQ(r.capacity(), 4u);
  for (int round = 0; round < 3; ++round) {
    for (std::uint64_t i = 0; i < 4; ++i) {
      std::byte* s = r.try_push_slot();
      ASSERT_NE(s, nullptr);
      std::memcpy(s, &i, sizeof(i));
      r.commit_push();
    }
    EXPECT_EQ(r.try_push_slot(), nullptr);  // full
    for (std::uint64_t i = 0; i < 4; ++i) {
      const std::byte* s = r.front();
      ASSERT_NE(s, nullptr);
      std::uint64_t v;
      std::memcpy(&v, s, sizeof(v));
      EXPECT_EQ(v, i);
      r.pop();
    }
    EXPECT_TRUE(r.empty());
  }
}

}  // namespace
}  // namespace fmx::sim
