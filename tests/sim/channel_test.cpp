#include "sim/channel.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace fmx::sim {
namespace {

TEST(Channel, FifoOrderPreserved) {
  Engine eng;
  Channel<int> ch(eng, 4);
  std::vector<int> got;
  eng.spawn([](Channel<int>& c) -> Task<void> {
    for (int i = 0; i < 10; ++i) co_await c.push(i);
  }(ch));
  eng.spawn([](Channel<int>& c, std::vector<int>& g) -> Task<void> {
    for (int i = 0; i < 10; ++i) g.push_back(co_await c.pop());
  }(ch, got));
  eng.run();
  ASSERT_EQ(got.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(got[i], i);
  EXPECT_EQ(eng.pending_roots(), 0);
}

TEST(Channel, PushBlocksWhenFull) {
  Engine eng;
  Channel<int> ch(eng, 2);
  int pushed = 0;
  eng.spawn([](Channel<int>& c, int& p) -> Task<void> {
    for (int i = 0; i < 5; ++i) {
      co_await c.push(i);
      ++p;
    }
  }(ch, pushed));
  eng.run();
  EXPECT_EQ(pushed, 2);  // back-pressure: producer stuck on the 3rd push
  EXPECT_EQ(eng.pending_roots(), 1);
  // Draining unblocks it.
  eng.spawn([](Channel<int>& c) -> Task<void> {
    for (int i = 0; i < 5; ++i) EXPECT_EQ(co_await c.pop(), i);
  }(ch));
  eng.run();
  EXPECT_EQ(pushed, 5);
  EXPECT_EQ(eng.pending_roots(), 0);
}

TEST(Channel, PopBlocksWhenEmpty) {
  Engine eng;
  Channel<int> ch(eng, 2);
  bool got = false;
  eng.spawn([](Channel<int>& c, bool& g) -> Task<void> {
    EXPECT_EQ(co_await c.pop(), 42);
    g = true;
  }(ch, got));
  eng.run();
  EXPECT_FALSE(got);
  EXPECT_TRUE(ch.try_push(42));
  eng.run();
  EXPECT_TRUE(got);
}

TEST(Channel, TryOperations) {
  Engine eng;
  Channel<int> ch(eng, 1);
  EXPECT_FALSE(ch.try_pop().has_value());
  EXPECT_TRUE(ch.try_push(1));
  EXPECT_FALSE(ch.try_push(2));  // full
  EXPECT_TRUE(ch.full());
  auto v = ch.try_pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 1);
  EXPECT_TRUE(ch.empty());
}

TEST(Channel, MultipleProducersSingleConsumer) {
  Engine eng;
  Channel<int> ch(eng, 3);
  for (int p = 0; p < 4; ++p) {
    eng.spawn([](Engine& e, Channel<int>& c, int id) -> Task<void> {
      for (int i = 0; i < 5; ++i) {
        co_await e.delay(us(1));
        co_await c.push(id * 100 + i);
      }
    }(eng, ch, p));
  }
  std::vector<int> got;
  eng.spawn([](Channel<int>& c, std::vector<int>& g) -> Task<void> {
    for (int i = 0; i < 20; ++i) g.push_back(co_await c.pop());
  }(ch, got));
  eng.run();
  EXPECT_EQ(got.size(), 20u);
  // Per-producer order is preserved even though producers interleave.
  for (int p = 0; p < 4; ++p) {
    int last = -1;
    for (int v : got) {
      if (v / 100 == p) {
        EXPECT_GT(v % 100, last);
        last = v % 100;
      }
    }
    EXPECT_EQ(last, 4);
  }
  EXPECT_EQ(eng.pending_roots(), 0);
}

TEST(Channel, PokeWakesAllSleepersOnce) {
  Engine eng;
  Channel<int> ch(eng, 4);
  int wakeups = 0;
  for (int i = 0; i < 3; ++i) {
    eng.spawn([](Channel<int>& c, int& w) -> Task<void> {
      co_await c.wait_nonempty();  // returns on data OR poke
      ++w;
    }(ch, wakeups));
  }
  eng.run();
  EXPECT_EQ(wakeups, 0);
  ch.poke();
  eng.run();
  EXPECT_EQ(wakeups, 3);  // ALL sleepers re-check, not just one
  EXPECT_EQ(eng.pending_roots(), 0);
  // A sleeper arriving after the poke is not woken by it.
  eng.spawn([](Channel<int>& c, int& w) -> Task<void> {
    co_await c.wait_nonempty();
    ++w;
  }(ch, wakeups));
  eng.run();
  EXPECT_EQ(wakeups, 3);
  EXPECT_EQ(eng.pending_roots(), 1);
  EXPECT_TRUE(ch.try_push(1));
  eng.run();
  EXPECT_EQ(wakeups, 4);
}

TEST(Channel, UnboundedNeverBlocksPush) {
  Engine eng;
  Channel<int> ch(eng, Channel<int>::kUnbounded);
  eng.spawn([](Channel<int>& c) -> Task<void> {
    for (int i = 0; i < 1000; ++i) co_await c.push(i);
  }(ch));
  eng.run();
  EXPECT_EQ(ch.size(), 1000u);
  EXPECT_EQ(eng.pending_roots(), 0);
}

}  // namespace
}  // namespace fmx::sim
