#include "sim/resource.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/ledger.hpp"

namespace fmx::sim {
namespace {

TEST(SerialResource, SerializesOverlappingRequests) {
  Engine eng;
  SerialResource bus(eng);
  std::vector<Ps> done;
  for (int i = 0; i < 3; ++i) {
    eng.spawn([](Engine& e, SerialResource& b, std::vector<Ps>& d)
                  -> Task<void> {
      co_await b.occupy(us(10));
      d.push_back(e.now());
    }(eng, bus, done));
  }
  eng.run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0], us(10));
  EXPECT_EQ(done[1], us(20));
  EXPECT_EQ(done[2], us(30));
  EXPECT_EQ(bus.busy_time(), us(30));
}

TEST(SerialResource, IdleGapsAreNotCharged) {
  Engine eng;
  SerialResource bus(eng);
  eng.spawn([](Engine& e, SerialResource& b) -> Task<void> {
    co_await b.occupy(us(5));
    co_await e.delay(us(100));  // idle gap
    co_await b.occupy(us(5));
    EXPECT_EQ(e.now(), us(110));
  }(eng, bus));
  eng.run();
  EXPECT_EQ(bus.busy_time(), us(10));
  EXPECT_EQ(eng.pending_roots(), 0);
}

TEST(SerialResource, ReservePipelines) {
  Engine eng;
  SerialResource link(eng);
  // reserve() lets a sender queue several transfers without waiting.
  eng.spawn([](Engine& e, SerialResource& l) -> Task<void> {
    Ps t1 = l.reserve(us(3));
    Ps t2 = l.reserve(us(3));
    EXPECT_EQ(t1, us(3));
    EXPECT_EQ(t2, us(6));
    co_await e.sleep_until(t2);
  }(eng, link));
  eng.run();
  EXPECT_EQ(eng.now(), us(6));
}

TEST(SerialResource, BacklogReflectsQueue) {
  Engine eng;
  SerialResource bus(eng);
  EXPECT_EQ(bus.backlog(), 0u);
  bus.reserve(us(7));
  EXPECT_EQ(bus.backlog(), us(7));
}

TEST(CostLedger, AccumulatesAndDiffs) {
  CostLedger l;
  l.add(Cost::kCopy, ns(100));
  l.add(Cost::kCopy, ns(50));
  l.add(Cost::kCall, ns(10));
  l.note_copy(256);
  EXPECT_EQ(l.of(Cost::kCopy), ns(150));
  EXPECT_EQ(l.total(), ns(160));
  EXPECT_EQ(l.copies(), 1u);
  EXPECT_EQ(l.copied_bytes(), 256u);

  CostLedger snapshot = l;
  l.add(Cost::kMatch, ns(5));
  l.note_copy(10);
  auto d = l.diff(snapshot);
  EXPECT_EQ(d.of(Cost::kMatch), ns(5));
  EXPECT_EQ(d.of(Cost::kCopy), 0u);
  EXPECT_EQ(d.copies(), 1u);
  EXPECT_EQ(d.copied_bytes(), 10u);
}

TEST(CostLedger, CategoryNames) {
  EXPECT_EQ(cost_name(Cost::kBufferMgmt), "buffer_mgmt");
  EXPECT_EQ(cost_name(Cost::kOrder), "in_order");
  EXPECT_EQ(cost_name(Cost::kFaultTol), "fault_tol");
}

}  // namespace
}  // namespace fmx::sim
