#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/task.hpp"
#include "sim/time.hpp"

namespace fmx::sim {
namespace {

TEST(Engine, StartsAtZero) {
  Engine eng;
  EXPECT_EQ(eng.now(), 0u);
  EXPECT_TRUE(eng.idle());
  EXPECT_EQ(eng.pending_roots(), 0);
}

TEST(Engine, CallbacksRunInTimeOrder) {
  Engine eng;
  std::vector<int> order;
  eng.schedule_at(us(3), [&] { order.push_back(3); });
  eng.schedule_at(us(1), [&] { order.push_back(1); });
  eng.schedule_at(us(2), [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eng.now(), us(3));
}

TEST(Engine, EqualTimestampsRunFifo) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    eng.schedule_at(us(5), [&order, i] { order.push_back(i); });
  }
  eng.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Engine, RunUntilStopsAndAdvancesClock) {
  Engine eng;
  int fired = 0;
  eng.schedule_at(us(1), [&] { ++fired; });
  eng.schedule_at(us(10), [&] { ++fired; });
  eng.run(us(5));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(eng.now(), us(5));
  eng.run();
  EXPECT_EQ(fired, 2);
}

TEST(Engine, SpawnedTaskRunsAndCompletes) {
  Engine eng;
  bool done = false;
  eng.spawn([](Engine& e, bool& d) -> Task<void> {
    co_await e.delay(us(7));
    d = true;
  }(eng, done));
  EXPECT_EQ(eng.pending_roots(), 1);
  eng.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(eng.pending_roots(), 0);
  EXPECT_EQ(eng.now(), us(7));
}

TEST(Engine, NestedTasksComposeAndAccumulateTime) {
  Engine eng;
  auto inner = [](Engine& e) -> Task<int> {
    co_await e.delay(us(2));
    co_return 21;
  };
  Ps end = 0;
  eng.spawn([](Engine& e, auto in, Ps& out) -> Task<void> {
    int a = co_await in(e);
    int b = co_await in(e);
    EXPECT_EQ(a + b, 42);
    out = e.now();
  }(eng, inner, end));
  eng.run();
  EXPECT_EQ(end, us(4));
}

TEST(Engine, ZeroDelayDoesNotSuspendPast) {
  Engine eng;
  eng.spawn([](Engine& e) -> Task<void> {
    Ps t0 = e.now();
    co_await e.delay(0);
    EXPECT_EQ(e.now(), t0);
  }(eng));
  eng.run();
  EXPECT_EQ(eng.pending_roots(), 0);
}

TEST(Engine, ExceptionInChildPropagatesToParent) {
  Engine eng;
  bool caught = false;
  auto thrower = [](Engine& e) -> Task<void> {
    co_await e.delay(us(1));
    throw std::runtime_error("boom");
  };
  eng.spawn([](Engine& e, auto th, bool& c) -> Task<void> {
    try {
      co_await th(e);
    } catch (const std::runtime_error&) {
      c = true;
    }
  }(eng, thrower, caught));
  eng.run();
  EXPECT_TRUE(caught);
  EXPECT_EQ(eng.pending_roots(), 0);
}

TEST(Engine, UncaughtRootExceptionEscapesRun) {
  Engine eng;
  eng.spawn([](Engine& e) -> Task<void> {
    co_await e.delay(us(1));
    throw std::logic_error("unhandled");
  }(eng));
  EXPECT_THROW(eng.run(), std::logic_error);
}

TEST(Engine, ManyInterleavedTasksDeterministic) {
  auto run_once = [] {
    Engine eng;
    std::vector<int> log;
    for (int i = 0; i < 5; ++i) {
      eng.spawn([](Engine& e, std::vector<int>& lg, int id) -> Task<void> {
        for (int k = 0; k < 3; ++k) {
          co_await e.delay(us(id + 1));
          lg.push_back(id * 10 + k);
        }
      }(eng, log, i));
    }
    eng.run();
    return log;
  };
  auto a = run_once();
  auto b = run_once();
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 15u);
}

TEST(Engine, RunReturnsEventsDelta) {
  Engine eng;
  for (int i = 0; i < 5; ++i) eng.schedule_at(us(i), [] {});
  std::uint64_t first = eng.run(us(2));  // events at 0, 1, 2 us
  EXPECT_EQ(first, 3u);
  EXPECT_EQ(eng.events_processed(), 3u);
  std::uint64_t rest = eng.run();
  EXPECT_EQ(rest, 2u);  // delta, not cumulative
  EXPECT_EQ(eng.events_processed(), 5u);
  EXPECT_EQ(eng.run(), 0u);  // idle run processes nothing
}

// Awaitable that parks its coroutine directly in the event queue via the
// raw-handle schedule_in overload (no callable wrapper at all).
struct ResumeIn {
  Engine& e;
  Ps d;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) { e.schedule_in(d, h); }
  void await_resume() const noexcept {}
};

TEST(Engine, ScheduleInResumesRawCoroutineHandle) {
  Engine eng;
  Ps resumed_at = 0;
  eng.spawn([](Engine& e, Ps& out) -> Task<void> {
    co_await ResumeIn{e, us(9)};
    out = e.now();
  }(eng, resumed_at));
  eng.run();
  EXPECT_EQ(resumed_at, us(9));
  EXPECT_EQ(eng.pending_roots(), 0);
}

TEST(Engine, HandleAndCallableEventsInterleaveFifo) {
  // Handle-carrying and callable-carrying events at the same timestamp keep
  // schedule order — the tagged-event encoding must not perturb the FIFO
  // tie-break between the two kinds.
  Engine eng;
  std::vector<int> order;
  eng.schedule_at(us(1), [&] { order.push_back(0); });
  eng.spawn([](Engine& e, std::vector<int>& lg) -> Task<void> {
    co_await ResumeIn{e, us(1)};
    lg.push_back(1);
  }(eng, order));
  eng.schedule_at(us(1), [&] { order.push_back(2); });
  eng.run();
  // The root task starts at t=0 and only THEN parks its handle at us(1),
  // so the handle event carries the latest sequence number of the three.
  EXPECT_EQ(order, (std::vector<int>{0, 2, 1}));
}

TEST(Engine, SleepUntilClampsToNow) {
  Engine eng;
  eng.schedule_at(us(10), [] {});
  eng.run();
  eng.spawn([](Engine& e) -> Task<void> {
    co_await e.sleep_until(us(3));  // in the past: resume immediately
    EXPECT_EQ(e.now(), us(10));
  }(eng));
  eng.run();
  EXPECT_EQ(eng.pending_roots(), 0);
}

}  // namespace
}  // namespace fmx::sim
