#include "sim/sync.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace fmx::sim {
namespace {

TEST(CondVar, NotifyOneWakesInFifoOrder) {
  Engine eng;
  CondVar cv(eng);
  std::vector<int> woke;
  for (int i = 0; i < 3; ++i) {
    eng.spawn([](CondVar& c, std::vector<int>& w, int id) -> Task<void> {
      co_await c.wait();
      w.push_back(id);
    }(cv, woke, i));
  }
  eng.run();
  EXPECT_EQ(cv.waiting(), 3u);
  cv.notify_one();
  eng.run();
  EXPECT_EQ(woke, (std::vector<int>{0}));
  cv.notify_all();
  eng.run();
  EXPECT_EQ(woke, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(eng.pending_roots(), 0);
}

TEST(CondVar, WaiterBlocksUntilNotified) {
  Engine eng;
  CondVar cv(eng);
  bool flag = false;
  eng.spawn([](CondVar& c, bool& f) -> Task<void> {
    while (!f) co_await c.wait();
  }(cv, flag));
  eng.run();
  EXPECT_EQ(eng.pending_roots(), 1);  // deadlocked on purpose
  flag = true;
  cv.notify_all();
  eng.run();
  EXPECT_EQ(eng.pending_roots(), 0);
}

TEST(Semaphore, CountsAndBlocks) {
  Engine eng;
  Semaphore sem(eng, 2);
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    eng.spawn([](Engine& e, Semaphore& s, std::vector<int>& o,
                 int id) -> Task<void> {
      co_await s.acquire();
      o.push_back(id);
      co_await e.delay(us(10));
      s.release();
    }(eng, sem, order, i));
  }
  eng.run();
  // 0 and 1 enter immediately; 2 and 3 at t=10us in FIFO order.
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(sem.available(), 2);
  EXPECT_EQ(eng.pending_roots(), 0);
}

TEST(Semaphore, TryAcquire) {
  Engine eng;
  Semaphore sem(eng, 1);
  EXPECT_TRUE(sem.try_acquire());
  EXPECT_FALSE(sem.try_acquire());
  sem.release();
  EXPECT_TRUE(sem.try_acquire());
}

TEST(Semaphore, ReleaseHandsTokenDirectlyToWaiter) {
  Engine eng;
  Semaphore sem(eng, 0);
  bool got = false;
  eng.spawn([](Semaphore& s, bool& g) -> Task<void> {
    co_await s.acquire();
    g = true;
  }(sem, got));
  eng.run();
  EXPECT_FALSE(got);
  sem.release();
  eng.run();
  EXPECT_TRUE(got);
  EXPECT_EQ(sem.available(), 0);  // token was consumed by the waiter
}

TEST(Gate, WaitBeforeAndAfterOpen) {
  Engine eng;
  Gate gate(eng);
  int done = 0;
  eng.spawn([](Gate& g, int& d) -> Task<void> {
    co_await g.wait();
    ++d;
  }(gate, done));
  eng.run();
  EXPECT_EQ(done, 0);
  gate.open();
  eng.run();
  EXPECT_EQ(done, 1);
  // A late waiter passes straight through.
  eng.spawn([](Gate& g, int& d) -> Task<void> {
    co_await g.wait();
    ++d;
  }(gate, done));
  eng.run();
  EXPECT_EQ(done, 2);
}

TEST(JoinSet, JoinsAllSpawnedWork) {
  Engine eng;
  JoinSet js(eng);
  int completed = 0;
  for (int i = 1; i <= 3; ++i) {
    js.spawn([](Engine& e, int& c, int ticks) -> Task<void> {
      co_await e.delay(us(ticks));
      ++c;
    }(eng, completed, i));
  }
  Ps join_time = 0;
  eng.spawn([](Engine& e, JoinSet& j, Ps& t) -> Task<void> {
    co_await j.join();
    t = e.now();
  }(eng, js, join_time));
  eng.run();
  EXPECT_EQ(completed, 3);
  EXPECT_EQ(join_time, us(3));
  EXPECT_EQ(eng.pending_roots(), 0);
}

TEST(JoinSet, JoinWithNothingSpawnedReturnsImmediately) {
  Engine eng;
  JoinSet js(eng);
  bool done = false;
  eng.spawn([](JoinSet& j, bool& d) -> Task<void> {
    co_await j.join();
    d = true;
  }(js, done));
  eng.run();
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace fmx::sim
