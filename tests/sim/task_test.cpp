// Direct semantics of the coroutine Task type: laziness, value/exception
// transport, cancellation-by-destruction, move-only ownership.
#include "sim/task.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace fmx::sim {
namespace {

TEST(Task, LazyUntilAwaited) {
  bool started = false;
  auto t = [](bool& s) -> Task<int> {
    s = true;
    co_return 1;
  }(started);
  EXPECT_FALSE(started);  // creating the task must not run the body
  EXPECT_TRUE(t.valid());
  // Destroy without awaiting: body never runs.
}

TEST(Task, DestructionWithoutAwaitIsCancellation) {
  auto flag = std::make_shared<bool>(false);
  {
    auto t = [](std::shared_ptr<bool> f) -> Task<void> {
      *f = true;
      co_return;
    }(flag);
    (void)t;
  }
  EXPECT_FALSE(*flag);
}

TEST(Task, ValueTransport) {
  Engine eng;
  int got = 0;
  eng.spawn([](Engine& e, int& out) -> Task<void> {
    auto child = [](Engine& en) -> Task<int> {
      co_await en.delay(us(1));
      co_return 41;
    };
    out = 1 + co_await child(e);
  }(eng, got));
  eng.run();
  EXPECT_EQ(got, 42);
}

TEST(Task, MoveTransfersOwnership) {
  bool done = false;
  auto t1 = [](bool& d) -> Task<void> {
    d = true;
    co_return;
  }(done);
  Task<void> t2 = std::move(t1);
  EXPECT_FALSE(t1.valid());
  EXPECT_TRUE(t2.valid());
  Engine eng;
  eng.spawn(std::move(t2));
  eng.run();
  EXPECT_TRUE(done);
}

TEST(Task, MoveAssignDestroysPrevious) {
  auto flag = std::make_shared<int>(0);
  auto make = [](std::shared_ptr<int> f) -> Task<void> {
    ++*f;
    co_return;
  };
  Task<void> a = make(flag);
  a = make(flag);  // first frame destroyed unrun
  Engine eng;
  eng.spawn(std::move(a));
  eng.run();
  EXPECT_EQ(*flag, 1);
}

TEST(Task, ExceptionWithValueType) {
  Engine eng;
  bool caught = false;
  eng.spawn([](Engine& e, bool& c) -> Task<void> {
    auto thrower = [](Engine& en) -> Task<int> {
      co_await en.delay(us(1));
      throw std::runtime_error("nope");
      co_return 0;
    };
    try {
      (void)co_await thrower(e);
    } catch (const std::runtime_error&) {
      c = true;
    }
  }(eng, caught));
  eng.run();
  EXPECT_TRUE(caught);
}

TEST(Task, DeepCompositionChain) {
  // 200-deep co_await chain: symmetric transfer must not blow the stack.
  Engine eng;
  int result = 0;
  struct Rec {
    static Task<int> down(Engine& e, int depth) {
      if (depth == 0) {
        co_await e.delay(ns(1));
        co_return 0;
      }
      int below = co_await down(e, depth - 1);
      co_return below + 1;
    }
  };
  eng.spawn([](Engine& e, int& out) -> Task<void> {
    out = co_await Rec::down(e, 200);
  }(eng, result));
  eng.run();
  EXPECT_EQ(result, 200);
}

TEST(Task, MoveOnlyResultType) {
  Engine eng;
  std::unique_ptr<int> got;
  eng.spawn([](Engine& e, std::unique_ptr<int>& out) -> Task<void> {
    auto maker = [](Engine& en) -> Task<std::unique_ptr<int>> {
      co_await en.delay(us(1));
      co_return std::make_unique<int>(7);
    };
    out = co_await maker(e);
  }(eng, got));
  eng.run();
  ASSERT_TRUE(got);
  EXPECT_EQ(*got, 7);
}

}  // namespace
}  // namespace fmx::sim
