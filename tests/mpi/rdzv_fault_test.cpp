// Fault sweep targeted at the rendezvous/RDMA large-message protocol. A
// kind-filtering injector classifies every wire packet as one of the four
// protocol phases — RTS, CTS, RDMA data, completion — and unleashes a
// seeded drop/duplicate/corrupt plan on exactly ONE phase per run, so each
// leg of the state machine is torn at individually rather than hoping a
// blanket lossy profile happens to hit it. Over a reliable link the stack
// must still deliver exactly-once, in-order, byte-exact, leave no pinned
// registrations behind, and replay the identical simulation for the same
// (seed, target).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <optional>
#include <tuple>
#include <vector>

#include "common/buffer.hpp"
#include "common/fmwire.hpp"
#include "fault/injector.hpp"
#include "fault/invariants.hpp"
#include "mpi/mpi_fm2.hpp"
#include "myrinet/node.hpp"
#include "myrinet/packet.hpp"

namespace fmx::mpi {
namespace {

using sim::Engine;
using sim::Task;

/// Which rendezvous leg this run's faults are aimed at.
enum class FaultTarget : int {
  kRts,   ///< request-to-send control messages (sender -> receiver)
  kCts,   ///< clear-to-send grants (receiver -> sender)
  kData,  ///< kRdmaWrite payload chunks (sender -> receiver)
  kDone,  ///< completion notifications (sender -> receiver)
};

const char* target_name(FaultTarget t) {
  switch (t) {
    case FaultTarget::kRts:
      return "Rts";
    case FaultTarget::kCts:
      return "Cts";
    case FaultTarget::kData:
      return "Data";
    case FaultTarget::kDone:
      return "Done";
  }
  return "?";
}

/// FaultInjector that classifies each delivered packet by protocol phase
/// and forwards only the targeted phase to an inner PlanInjector. RDMA
/// writes are identified by their out-of-band packet kind; control
/// messages are identified by cracking the FM wire header (first packet of
/// a data message) and reading the MpiHeader kind that rides at the front
/// of the message payload. Everything else — eager traffic, credit
/// returns, ack-only link packets, trailing packet fragments — passes
/// untouched, so the injector's RNG draws (and therefore the whole fault
/// schedule) depend only on the targeted phase's packet stream.
class KindFilterInjector final : public net::FaultInjector {
 public:
  KindFilterInjector(Engine& eng, fault::FaultPlan plan, FaultTarget target)
      : inner_(eng, std::move(plan)), target_(target) {}

  net::WireFault on_deliver(const net::WirePacket& pkt) override {
    if (classify(pkt) != target_) return {};
    return inner_.on_deliver(pkt);
  }

  const fault::PlanInjector::Stats& stats() const noexcept {
    return inner_.stats();
  }

 private:
  static std::optional<FaultTarget> classify(const net::WirePacket& pkt) {
    if (pkt.kind == net::PacketKind::kRdmaWrite) return FaultTarget::kData;
    ByteSpan bytes = pkt.payload.span();
    if (bytes.size() < sizeof(wire::PacketHeader) + sizeof(MpiHeader)) {
      return std::nullopt;  // ack-only / credit-only / bare fragments
    }
    const wire::PacketHeader h = wire::parse_header(bytes);
    if (h.type != static_cast<std::uint16_t>(wire::PacketType::kData) ||
        h.pkt_index != 0) {
      return std::nullopt;  // only a message's first packet carries MpiHeader
    }
    MpiHeader mh;
    std::memcpy(&mh, bytes.data() + sizeof(wire::PacketHeader), sizeof(mh));
    switch (mh.kind) {
      case 1:
        return FaultTarget::kRts;
      case 2:
        return FaultTarget::kCts;
      case 4:
        return FaultTarget::kDone;
      default:
        return std::nullopt;  // eager (0) / host-staged rendezvous data (3)
    }
  }

  fault::PlanInjector inner_;
  FaultTarget target_;
};

/// Aggressive per-packet rates are safe here: they only ever apply to the
/// one targeted phase, and the reliable link must recover everything. The
/// seed rotates duplication and reordering on top of the drop+corrupt base
/// so each recovery mechanism gets hit on each phase across the sweep.
fault::FaultPlan profile_for(std::uint64_t seed) {
  fault::FaultPlan p = fault::FaultPlan::lossy(0.10, seed);
  switch (seed % 3) {
    case 0:
      break;  // drops + corruption only
    case 1:
      p.wire.duplicate = 0.08;
      break;
    case 2:
      p.wire.reorder = 0.08;
      p.wire.reorder_delay = sim::us(60);
      break;
  }
  return p;
}

struct SweepResult {
  std::uint64_t events = 0;
  std::uint64_t delivered = 0;
  net::Fabric::Stats fabric;
  net::Nic::Stats nic0, nic1;
  fault::PlanInjector::Stats inj;
  net::RegCache::Stats reg0, reg1;
  std::vector<std::string> violations;
  std::string report;
};

/// One experiment: a 2-node reliable-link cluster, an MPI-FM2 pair with a
/// 4 KiB eager threshold and the RDMA data path on, and a mixed workload —
/// three rendezvous messages straddling different sizes plus one eager
/// message so untargeted traffic interleaves with the targeted phase. Odd
/// seeds delay the receiver so every RTS lands unexpected (the
/// post-after-arrival path); even seeds pre-post.
SweepResult run_sweep(std::uint64_t seed, FaultTarget target) {
  Engine eng;
  auto params = net::ppro_fm2_cluster(2);
  params.nic.reliable_link = true;
  net::Cluster cl(eng, params);
  KindFilterInjector inj(eng, profile_for(seed), target);
  cl.fabric().set_fault(&inj);

  MpiFm2Options opt;
  opt.eager_threshold = 4096;
  MpiFm2 tx(cl, 0, {}, opt), rx(cl, 1, {}, opt);
  fault::InvariantLedger led;

  const std::vector<std::size_t> sizes = {8 * 1024 + 1, 16 * 1024, 512,
                                          24 * 1024 + 7};

  eng.spawn([](Comm& c, fault::InvariantLedger& ledger,
               const std::vector<std::size_t>& szs,
               std::uint64_t sd) -> Task<void> {
    for (int k = 0; k < static_cast<int>(szs.size()); ++k) {
      Bytes m = pattern_bytes(sd * 100 + k, szs[k]);
      ledger.note_sent(0, 1, ByteSpan{m});
      co_await c.send(ByteSpan{m}, 1, k);
    }
  }(tx, led, sizes, seed));

  int got = 0;
  eng.spawn([](Engine& e, MpiFm2& c, fault::InvariantLedger& ledger,
               const std::vector<std::size_t>& szs, std::uint64_t sd,
               int& g) -> Task<void> {
    if (sd % 2 == 1) {
      // Let the first RTS packets land before anything is posted: the
      // rendezvous envelopes must queue as unexpected and the late posts
      // must claim those exact messages.
      co_await e.delay(sim::us(300));
      (void)co_await c.fm().extract();
    }
    const int n = static_cast<int>(szs.size());
    std::vector<Bytes> bufs;
    std::vector<Request> reqs;
    bufs.reserve(n);
    for (int k = 0; k < n; ++k) {
      bufs.emplace_back(szs[k]);
      reqs.push_back(co_await c.irecv(MutByteSpan{bufs[k]}, 0, k));
    }
    for (int k = 0; k < n; ++k) {
      co_await c.wait(reqs[k]);
      ledger.note_delivered(0, 1, ByteSpan{bufs[k]});
      EXPECT_EQ(pattern_mismatch(sd * 100 + k, 0, ByteSpan{bufs[k]}), -1)
          << "payload damaged: seed " << sd << " msg " << k;
      ++g;
    }
  }(eng, rx, led, sizes, seed, got));
  eng.run();

  // Settle phase: absorb credit returns that landed after the last wait
  // (same convergence argument as the generic fault sweep: extracting a
  // drained ring is a no-op and creates no new data traffic).
  for (int round = 0; round < 4; ++round) {
    if (cl.node(0).nic().host_ring_depth() == 0 &&
        cl.node(1).nic().host_ring_depth() == 0) {
      break;
    }
    eng.spawn([](fm2::Endpoint& ep) -> Task<void> {
      (void)co_await ep.extract();
    }(tx.fm()));
    eng.spawn([](fm2::Endpoint& ep) -> Task<void> {
      (void)co_await ep.extract();
    }(rx.fm()));
    eng.run();
  }

  led.check_streams();
  led.check_engine(eng);
  led.check_cluster(cl);
  led.check_fm2_pair(tx.fm(), rx.fm());
  led.check_fm2_pair(rx.fm(), tx.fm());
  for (int i = 0; i < 2; ++i) {
    const auto& rc = cl.node(i).host().reg_cache();
    if (rc.active_uses() != 0) {
      led.violation("node " + std::to_string(i) + ": " +
                    std::to_string(rc.active_uses()) +
                    " registration uses still pinned after quiesce");
    }
  }

  SweepResult r;
  r.events = eng.events_processed();
  r.delivered = led.messages_delivered();
  r.fabric = cl.fabric().stats();
  r.nic0 = cl.node(0).nic().stats();
  r.nic1 = cl.node(1).nic().stats();
  r.inj = inj.stats();
  r.reg0 = cl.node(0).host().reg_cache().stats();
  r.reg1 = cl.node(1).host().reg_cache().stats();
  r.violations = led.violations();
  r.report = led.report();
  return r;
}

class RdzvFaultSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, FaultTarget>> {
};

TEST_P(RdzvFaultSweep, InvariantsHoldWithPhaseTargetedFaults) {
  const auto [seed, target] = GetParam();
  SweepResult r = run_sweep(seed, target);
  EXPECT_TRUE(r.violations.empty())
      << "seed " << seed << " target " << target_name(target) << ":\n"
      << r.report << "reproduce with run_sweep(" << seed << ", FaultTarget::k"
      << target_name(target) << ")";
  EXPECT_EQ(r.delivered, 4u) << "seed " << seed;
  // The targeted phase actually produced traffic for the injector to see
  // (three rendezvous per run: at least three RTS/CTS/DONE packets, many
  // RDMA chunks). A single seed may roll zero faults on a three-packet
  // phase; the "faults fired" floor is asserted over the whole sweep below.
  EXPECT_GT(r.inj.packets_seen, 0u)
      << "classifier never matched target " << target_name(target);
  // The RDMA path was really taken: the receiver pinned its user buffers.
  EXPECT_GT(r.reg1.hits + r.reg1.misses, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, RdzvFaultSweep,
    ::testing::Combine(::testing::Range<std::uint64_t>(1, 21),
                       ::testing::Values(FaultTarget::kRts, FaultTarget::kCts,
                                         FaultTarget::kData,
                                         FaultTarget::kDone)),
    [](const auto& pinfo) {
      return std::string(target_name(std::get<1>(pinfo.param))) + "Seed" +
             std::to_string(std::get<0>(pinfo.param));
    });

TEST(RdzvFaultSweepSummary, EveryPhaseTookRealFaults) {
  // Summed across the seed range, every protocol phase must have absorbed
  // injected faults — otherwise the sweep proved nothing about that leg of
  // the state machine. Also pin the phase traffic floors: >= 3 control
  // packets per run per phase (3 rendezvous messages), and RDMA chunks
  // outnumbering control packets by the payload/MTU ratio.
  for (FaultTarget target : {FaultTarget::kRts, FaultTarget::kCts,
                             FaultTarget::kData, FaultTarget::kDone}) {
    std::uint64_t seen = 0, injected = 0;
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
      SweepResult r = run_sweep(seed, target);
      seen += r.inj.packets_seen;
      injected += r.inj.injected();
    }
    EXPECT_GE(seen, 3u * 20u) << "target " << target_name(target);
    EXPECT_GT(injected, 0u)
        << "no faults ever hit target " << target_name(target);
    if (target == FaultTarget::kData) {
      // ~48 KiB of rendezvous payload per run in MTU-sized RDMA chunks.
      EXPECT_GT(seen, 20u * 20u) << "suspiciously few RDMA data packets";
    }
  }
}

TEST(RdzvFaultDeterminism, SameSeedAndTargetReplayExactly) {
  // Exact-replay bar: (seed, target) fully determines the simulation —
  // event count, delivery, every fabric/NIC/injector/pin-down counter.
  const std::pair<std::uint64_t, FaultTarget> combos[] = {
      {1, FaultTarget::kRts},  {2, FaultTarget::kCts},
      {3, FaultTarget::kData}, {4, FaultTarget::kDone},
      {7, FaultTarget::kData},
  };
  for (const auto& [seed, target] : combos) {
    SweepResult a = run_sweep(seed, target);
    SweepResult b = run_sweep(seed, target);
    const std::string tag =
        "seed " + std::to_string(seed) + " target " + target_name(target);
    EXPECT_EQ(a.events, b.events) << tag;
    EXPECT_EQ(a.delivered, b.delivered) << tag;
    EXPECT_EQ(a.fabric.packets, b.fabric.packets) << tag;
    EXPECT_EQ(a.fabric.dropped, b.fabric.dropped) << tag;
    EXPECT_EQ(a.fabric.corrupted, b.fabric.corrupted) << tag;
    EXPECT_EQ(a.fabric.duplicated, b.fabric.duplicated) << tag;
    EXPECT_EQ(a.nic0.tx_packets, b.nic0.tx_packets) << tag;
    EXPECT_EQ(a.nic0.retransmissions, b.nic0.retransmissions) << tag;
    EXPECT_EQ(a.nic1.seq_dropped, b.nic1.seq_dropped) << tag;
    EXPECT_EQ(a.nic1.crc_dropped, b.nic1.crc_dropped) << tag;
    EXPECT_EQ(a.inj.packets_seen, b.inj.packets_seen) << tag;
    EXPECT_EQ(a.inj.injected(), b.inj.injected()) << tag;
    EXPECT_EQ(a.reg0.hits, b.reg0.hits) << tag;
    EXPECT_EQ(a.reg0.misses, b.reg0.misses) << tag;
    EXPECT_EQ(a.reg1.hits, b.reg1.hits) << tag;
    EXPECT_EQ(a.reg1.misses, b.reg1.misses) << tag;
    EXPECT_EQ(a.reg1.evictions, b.reg1.evictions) << tag;
  }
}

}  // namespace
}  // namespace fmx::mpi
