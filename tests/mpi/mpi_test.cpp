// MPI-FM behaviour tests, run against BOTH generations (FM 1.x and FM 2.x
// backends) through the shared Comm interface.
#include "mpi/mpi.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <vector>

#include "mpi/mpi_fm1.hpp"
#include "mpi/mpi_fm2.hpp"

namespace fmx::mpi {
namespace {

using sim::Engine;
using sim::Task;

enum class Backend { kFm1, kFm2 };

struct World {
  World(Backend be, int n) {
    params = be == Backend::kFm1 ? net::sparc_fm1_cluster(n)
                                 : net::ppro_fm2_cluster(n);
    cluster = std::make_unique<net::Cluster>(eng, params);
    for (int i = 0; i < n; ++i) {
      if (be == Backend::kFm1) {
        comms.push_back(std::make_unique<MpiFm1>(*cluster, i));
      } else {
        comms.push_back(std::make_unique<MpiFm2>(*cluster, i));
      }
    }
  }
  Comm& c(int i) { return *comms[i]; }

  Engine eng;
  net::ClusterParams params;
  std::unique_ptr<net::Cluster> cluster;
  std::vector<std::unique_ptr<Comm>> comms;
};

class MpiBothBackends : public ::testing::TestWithParam<Backend> {};

TEST_P(MpiBothBackends, BasicSendRecv) {
  World w(GetParam(), 2);
  Bytes msg = pattern_bytes(1, 1000);
  Bytes out(1000);
  bool done = false;
  w.eng.spawn([](Comm& c, ByteSpan m) -> Task<void> {
    co_await c.send(m, 1, 42);
  }(w.c(0), ByteSpan{msg}));
  w.eng.spawn([](Comm& c, MutByteSpan o, bool& d) -> Task<void> {
    Status st;
    co_await c.recv(o, 0, 42, &st);
    EXPECT_EQ(st.source, 0);
    EXPECT_EQ(st.tag, 42);
    EXPECT_EQ(st.count, 1000u);
    d = true;
  }(w.c(1), MutByteSpan{out}, done));
  w.eng.run();
  ASSERT_TRUE(done);
  EXPECT_EQ(out, msg);
  EXPECT_EQ(w.eng.pending_roots(), 0);
}

TEST_P(MpiBothBackends, TagSelectsMessage) {
  World w(GetParam(), 2);
  bool done = false;
  w.eng.spawn([](Comm& c) -> Task<void> {
    Bytes a(8, std::byte{1});
    Bytes b(8, std::byte{2});
    co_await c.send(ByteSpan{a}, 1, 10);
    co_await c.send(ByteSpan{b}, 1, 20);
  }(w.c(0)));
  w.eng.spawn([](Comm& c, bool& d) -> Task<void> {
    Bytes got(8);
    // Receive tag 20 first, then tag 10: matching is by tag, not arrival.
    co_await c.recv(MutByteSpan{got}, 0, 20);
    EXPECT_EQ(got[0], std::byte{2});
    co_await c.recv(MutByteSpan{got}, 0, 10);
    EXPECT_EQ(got[0], std::byte{1});
    d = true;
  }(w.c(1), done));
  w.eng.run();
  EXPECT_TRUE(done);
}

TEST_P(MpiBothBackends, WildcardsMatchAnything) {
  World w(GetParam(), 3);
  bool done = false;
  w.eng.spawn([](Comm& c) -> Task<void> {
    Bytes m(16, std::byte{7});
    co_await c.send(ByteSpan{m}, 2, 5);
  }(w.c(0)));
  w.eng.spawn([](Comm& c) -> Task<void> {
    Bytes m(16, std::byte{9});
    co_await c.send(ByteSpan{m}, 2, 6);
  }(w.c(1)));
  w.eng.spawn([](Comm& c, bool& d) -> Task<void> {
    Bytes got(16);
    Status st1, st2;
    co_await c.recv(MutByteSpan{got}, kAnySource, kAnyTag, &st1);
    co_await c.recv(MutByteSpan{got}, kAnySource, kAnyTag, &st2);
    // Both messages arrived, once each, from distinct sources.
    EXPECT_NE(st1.source, st2.source);
    d = true;
  }(w.c(2), done));
  w.eng.run();
  EXPECT_TRUE(done);
}

TEST_P(MpiBothBackends, FifoOrderSameSourceAndTag) {
  World w(GetParam(), 2);
  constexpr int kN = 20;
  bool done = false;
  w.eng.spawn([](Comm& c) -> Task<void> {
    for (std::uint32_t i = 0; i < kN; ++i) {
      co_await c.send(as_bytes_of(i), 1, 0);
    }
  }(w.c(0)));
  w.eng.spawn([](Comm& c, bool& d) -> Task<void> {
    for (std::uint32_t i = 0; i < kN; ++i) {
      std::uint32_t v;
      co_await c.recv(as_writable_bytes_of(v), 0, 0);
      EXPECT_EQ(v, i);
    }
    d = true;
  }(w.c(1), done));
  w.eng.run();
  EXPECT_TRUE(done);
}

TEST_P(MpiBothBackends, IrecvWaitAndTest) {
  World w(GetParam(), 2);
  bool done = false;
  w.eng.spawn([](Comm& c, bool& d) -> Task<void> {
    Bytes buf(64);
    Request r = co_await c.irecv(MutByteSpan{buf}, 0, 3);
    EXPECT_FALSE(r.done());
    bool finished = co_await c.test(r);
    (void)finished;  // may or may not have arrived yet
    co_await c.wait(r);
    EXPECT_TRUE(r.done());
    EXPECT_EQ(pattern_mismatch(4, 0, ByteSpan{buf}), -1);
    d = true;
  }(w.c(1), done));
  w.eng.spawn([](Comm& c) -> Task<void> {
    Bytes m = pattern_bytes(4, 64);
    co_await c.send(ByteSpan{m}, 1, 3);
  }(w.c(0)));
  w.eng.run();
  EXPECT_TRUE(done);
}

TEST_P(MpiBothBackends, SendrecvExchangeNoDeadlock) {
  World w(GetParam(), 2);
  int done = 0;
  for (int me = 0; me < 2; ++me) {
    w.eng.spawn([](Comm& c, int my, int& d) -> Task<void> {
      Bytes mine = pattern_bytes(my, 512);
      Bytes theirs(512);
      co_await c.sendrecv(ByteSpan{mine}, 1 - my, 0, MutByteSpan{theirs},
                          1 - my, 0);
      EXPECT_EQ(pattern_mismatch(1 - my, 0, ByteSpan{theirs}), -1);
      ++d;
    }(w.c(me), me, done));
  }
  w.eng.run();
  EXPECT_EQ(done, 2);
  EXPECT_EQ(w.eng.pending_roots(), 0);
}

TEST_P(MpiBothBackends, UnexpectedMessagesBufferedUntilPosted) {
  World w(GetParam(), 2);
  bool done = false;
  w.eng.spawn([](Comm& c) -> Task<void> {
    for (std::uint32_t i = 0; i < 5; ++i) {
      co_await c.send(as_bytes_of(i), 1, 9);
    }
  }(w.c(0)));
  w.eng.spawn([](Engine& e, Comm& c, bool& d) -> Task<void> {
    // Wait long enough that all messages are already on the receiver side.
    co_await e.delay(sim::ms(2));
    for (std::uint32_t i = 0; i < 5; ++i) {
      std::uint32_t v;
      co_await c.recv(as_writable_bytes_of(v), 0, 9);
      EXPECT_EQ(v, i);
    }
    d = true;
  }(w.eng, w.c(1), done));
  w.eng.run();
  EXPECT_TRUE(done);
  EXPECT_GT(w.c(1).stats().unexpected, 0u);
}

TEST_P(MpiBothBackends, TruncationThrows) {
  World w(GetParam(), 2);
  bool threw = false;
  w.eng.spawn([](Comm& c) -> Task<void> {
    Bytes big(256);
    co_await c.send(ByteSpan{big}, 1, 0);
  }(w.c(0)));
  w.eng.spawn([](Comm& c, bool& t) -> Task<void> {
    Bytes small(16);
    try {
      co_await c.recv(MutByteSpan{small}, 0, 0);
    } catch (const std::runtime_error&) {
      t = true;
    }
  }(w.c(1), threw));
  try {
    w.eng.run();
  } catch (const std::runtime_error&) {
    threw = true;  // FM2 raises inside the sender-side driver loop
  }
  EXPECT_TRUE(threw);
}

TEST_P(MpiBothBackends, ZeroByteMessage) {
  World w(GetParam(), 2);
  bool done = false;
  w.eng.spawn([](Comm& c) -> Task<void> { co_await c.send({}, 1, 1); }(w.c(0)));
  w.eng.spawn([](Comm& c, bool& d) -> Task<void> {
    Status st;
    co_await c.recv({}, 0, 1, &st);
    EXPECT_EQ(st.count, 0u);
    d = true;
  }(w.c(1), done));
  w.eng.run();
  EXPECT_TRUE(done);
}

TEST_P(MpiBothBackends, LargeMessageIntegrity) {
  World w(GetParam(), 2);
  constexpr std::size_t kBig = 100'000;
  Bytes out(kBig);
  bool done = false;
  w.eng.spawn([](Comm& c) -> Task<void> {
    Bytes m = pattern_bytes(11, kBig);
    co_await c.send(ByteSpan{m}, 1, 0);
  }(w.c(0)));
  w.eng.spawn([](Comm& c, MutByteSpan o, bool& d) -> Task<void> {
    co_await c.recv(o, 0, 0);
    d = true;
  }(w.c(1), MutByteSpan{out}, done));
  w.eng.run();
  ASSERT_TRUE(done);
  EXPECT_EQ(pattern_mismatch(11, 0, ByteSpan{out}), -1);
}

TEST_P(MpiBothBackends, Barrier) {
  const int n = 5;
  World w(GetParam(), n);
  std::vector<int> phase(n, 0);
  for (int me = 0; me < n; ++me) {
    w.eng.spawn([](Engine& e, Comm& c, std::vector<int>& ph, int my,
                   int nn) -> Task<void> {
      // Stagger arrival; after the barrier everyone must see all at 1.
      co_await e.delay(sim::us(10 * (my + 1)));
      ph[my] = 1;
      co_await c.barrier();
      // Everyone must have arrived (phase >= 1); ranks that already left
      // the barrier may legitimately be at phase 2.
      for (int i = 0; i < nn; ++i) EXPECT_GE(ph[i], 1) << "rank " << my;
      ph[my] = 2;
    }(w.eng, w.c(me), phase, me, n));
  }
  w.eng.run();
  for (int i = 0; i < n; ++i) EXPECT_EQ(phase[i], 2);
  EXPECT_EQ(w.eng.pending_roots(), 0);
}

TEST_P(MpiBothBackends, BcastFromEveryRoot) {
  const int n = 4;
  for (int root = 0; root < n; ++root) {
    World w(GetParam(), n);
    int done = 0;
    for (int me = 0; me < n; ++me) {
      w.eng.spawn([](Comm& c, int my, int rt, int& d) -> Task<void> {
        Bytes buf(200);
        if (my == rt) buf = pattern_bytes(rt, 200);
        co_await c.bcast(MutByteSpan{buf}, rt);
        EXPECT_EQ(pattern_mismatch(rt, 0, ByteSpan{buf}), -1)
            << "rank " << my << " root " << rt;
        ++d;
      }(w.c(me), me, root, done));
    }
    w.eng.run();
    EXPECT_EQ(done, n);
  }
}

TEST_P(MpiBothBackends, ReduceAndAllreduce) {
  const int n = 6;
  World w(GetParam(), n);
  int done = 0;
  for (int me = 0; me < n; ++me) {
    w.eng.spawn([](Comm& c, int my, int nn, int& d) -> Task<void> {
      std::vector<double> v(8);
      for (std::size_t i = 0; i < v.size(); ++i) {
        v[i] = my + static_cast<double>(i);
      }
      co_await c.reduce_sum(std::span<double>{v}, 0);
      if (my == 0) {
        double base = nn * (nn - 1) / 2.0;
        for (std::size_t i = 0; i < v.size(); ++i) {
          EXPECT_DOUBLE_EQ(v[i], base + nn * static_cast<double>(i));
        }
      }
      std::vector<double> a(4, 1.0);
      co_await c.allreduce_sum(std::span<double>{a});
      for (double x : a) EXPECT_DOUBLE_EQ(x, nn);
      ++d;
    }(w.c(me), me, n, done));
  }
  w.eng.run();
  EXPECT_EQ(done, n);
}

TEST_P(MpiBothBackends, Gather) {
  const int n = 4;
  World w(GetParam(), n);
  Bytes all(n * 32);
  int done = 0;
  for (int me = 0; me < n; ++me) {
    w.eng.spawn([](Comm& c, int my, MutByteSpan out, int& d) -> Task<void> {
      Bytes block = pattern_bytes(my, 32);
      co_await c.gather(ByteSpan{block}, out, 0);
      ++d;
    }(w.c(me), me, MutByteSpan{all}, done));
  }
  w.eng.run();
  EXPECT_EQ(done, n);
  for (int r = 0; r < n; ++r) {
    EXPECT_EQ(pattern_mismatch(r, 0, ByteSpan{all}.subspan(r * 32, 32)), -1);
  }
}

TEST_P(MpiBothBackends, Scatter) {
  const int n = 4;
  World w(GetParam(), n);
  Bytes all(n * 16);
  for (int r = 0; r < n; ++r) {
    auto b = pattern_bytes(r, 16);
    std::memcpy(all.data() + r * 16, b.data(), 16);
  }
  int done = 0;
  for (int me = 0; me < n; ++me) {
    w.eng.spawn([](Comm& c, int my, ByteSpan src, int& d) -> Task<void> {
      Bytes block(16);
      co_await c.scatter(src, MutByteSpan{block}, 1);
      EXPECT_EQ(pattern_mismatch(my, 0, ByteSpan{block}), -1);
      ++d;
    }(w.c(me), me, ByteSpan{all}, done));
  }
  w.eng.run();
  EXPECT_EQ(done, n);
}

TEST_P(MpiBothBackends, Allgather) {
  const int n = 5;  // deliberately not a power of two
  World w(GetParam(), n);
  int done = 0;
  for (int me = 0; me < n; ++me) {
    w.eng.spawn([](Comm& c, int my, int nn, int& d) -> Task<void> {
      Bytes block = pattern_bytes(my, 24);
      Bytes all(nn * 24);
      co_await c.allgather(ByteSpan{block}, MutByteSpan{all});
      for (int r = 0; r < nn; ++r) {
        EXPECT_EQ(pattern_mismatch(r, 0, ByteSpan{all}.subspan(r * 24, 24)),
                  -1)
            << "rank " << my << " block " << r;
      }
      ++d;
    }(w.c(me), me, n, done));
  }
  w.eng.run();
  EXPECT_EQ(done, n);
  EXPECT_EQ(w.eng.pending_roots(), 0);
}

TEST_P(MpiBothBackends, Alltoall) {
  const int n = 4;
  World w(GetParam(), n);
  int done = 0;
  for (int me = 0; me < n; ++me) {
    w.eng.spawn([](Comm& c, int my, int nn, int& d) -> Task<void> {
      // Block for rank r carries pattern seed my*100+r.
      Bytes sendbuf(nn * 32);
      for (int r = 0; r < nn; ++r) {
        auto b = pattern_bytes(my * 100 + r, 32);
        std::memcpy(sendbuf.data() + r * 32, b.data(), 32);
      }
      Bytes recvbuf(nn * 32);
      co_await c.alltoall(ByteSpan{sendbuf}, MutByteSpan{recvbuf});
      for (int r = 0; r < nn; ++r) {
        EXPECT_EQ(pattern_mismatch(r * 100 + my, 0,
                                   ByteSpan{recvbuf}.subspan(r * 32, 32)),
                  -1)
            << "rank " << my << " from " << r;
      }
      ++d;
    }(w.c(me), me, n, done));
  }
  w.eng.run();
  EXPECT_EQ(done, n);
  EXPECT_EQ(w.eng.pending_roots(), 0);
}

INSTANTIATE_TEST_SUITE_P(Backends, MpiBothBackends,
                         ::testing::Values(Backend::kFm1, Backend::kFm2),
                         [](const auto& pinfo) {
                           return pinfo.param == Backend::kFm1 ? "Fm1" : "Fm2";
                         });

TEST_P(MpiBothBackends, WaitallCompletesAWindow) {
  World w(GetParam(), 2);
  constexpr int kN = 8;
  bool done = false;
  w.eng.spawn([](Comm& c, bool& d) -> Task<void> {
    std::vector<Bytes> bufs(kN, Bytes(256));
    std::vector<Request> reqs;
    for (int i = 0; i < kN; ++i) {
      reqs.push_back(co_await c.irecv(MutByteSpan{bufs[i]}, 0, i));
    }
    co_await c.waitall(std::span<Request>{reqs});
    for (int i = 0; i < kN; ++i) {
      EXPECT_TRUE(reqs[i].done());
      EXPECT_EQ(pattern_mismatch(i, 0, ByteSpan{bufs[i]}), -1);
    }
    d = true;
  }(w.c(1), done));
  w.eng.spawn([](Comm& c) -> Task<void> {
    for (int i = kN - 1; i >= 0; --i) {  // reverse tag order
      Bytes m = pattern_bytes(i, 256);
      co_await c.send(ByteSpan{m}, 1, i);
    }
  }(w.c(0)));
  w.eng.run();
  EXPECT_TRUE(done);
}

TEST_P(MpiBothBackends, ProbeSeesEnvelopeWithoutConsuming) {
  World w(GetParam(), 2);
  bool done = false;
  w.eng.spawn([](Comm& c) -> Task<void> {
    Bytes m = pattern_bytes(1, 300);
    co_await c.send(ByteSpan{m}, 1, 8);
  }(w.c(0)));
  w.eng.spawn([](Comm& c, bool& d) -> Task<void> {
    Status st;
    co_await c.probe(0, 8, &st);  // blocks until the envelope is visible
    EXPECT_EQ(st.source, 0);
    EXPECT_EQ(st.tag, 8);
    EXPECT_EQ(st.count, 300u);
    // Probe again: still there (nothing consumed).
    EXPECT_TRUE(co_await c.iprobe(0, 8));
    // Size the buffer from the probed count, the classic probe pattern.
    Bytes buf(st.count);
    co_await c.recv(MutByteSpan{buf}, 0, 8);
    EXPECT_EQ(pattern_mismatch(1, 0, ByteSpan{buf}), -1);
    EXPECT_FALSE(co_await c.iprobe(0, 8));  // consumed now
    d = true;
  }(w.c(1), done));
  w.eng.run();
  EXPECT_TRUE(done);
}

TEST_P(MpiBothBackends, IprobeFalseWhenNothingMatches) {
  World w(GetParam(), 2);
  bool done = false;
  w.eng.spawn([](Comm& c) -> Task<void> {
    Bytes m(8);
    co_await c.send(ByteSpan{m}, 1, 5);
  }(w.c(0)));
  w.eng.spawn([](Engine& e, Comm& c, bool& d) -> Task<void> {
    co_await e.delay(sim::ms(1));
    EXPECT_TRUE(co_await c.iprobe(0, 5));
    EXPECT_FALSE(co_await c.iprobe(0, 6));   // wrong tag
    EXPECT_FALSE(co_await c.iprobe(1, 5));   // wrong source
    Bytes buf(8);
    co_await c.recv(MutByteSpan{buf}, 0, 5);
    d = true;
  }(w.eng, w.c(1), done));
  w.eng.run();
  EXPECT_TRUE(done);
}

// --- Property sweep: random traffic through the full MPI stack -------------

class MpiPropertyTest
    : public ::testing::TestWithParam<std::tuple<Backend, int>> {};

TEST_P(MpiPropertyTest, RandomSizesTagsOrderAndIntegrity) {
  auto [backend, seed] = GetParam();
  World w(backend, 2);
  sim::Rng rng(seed);
  constexpr int kMsgs = 30;
  std::vector<std::size_t> sizes;
  std::vector<int> tags;
  for (int i = 0; i < kMsgs; ++i) {
    sizes.push_back(rng.uniform(0, 6000));
    tags.push_back(static_cast<int>(rng.uniform(0, 2)));
  }
  bool done = false;
  w.eng.spawn([](Comm& c, const std::vector<std::size_t>& sz,
                 const std::vector<int>& tg) -> Task<void> {
    for (int i = 0; i < kMsgs; ++i) {
      Bytes m = pattern_bytes(3000 + i, sz[i]);
      co_await c.send(ByteSpan{m}, 1, tg[i]);
    }
  }(w.c(0), sizes, tags));
  w.eng.spawn([](Comm& c, const std::vector<std::size_t>& sz,
                 const std::vector<int>& tg, bool& d) -> Task<void> {
    // Per-tag FIFO: receive tag-by-tag in the per-tag send order.
    for (int tag = 0; tag < 3; ++tag) {
      for (int i = 0; i < kMsgs; ++i) {
        if (tg[i] != tag) continue;
        Bytes buf(sz[i]);
        Status st;
        co_await c.recv(MutByteSpan{buf}, 0, tag, &st);
        EXPECT_EQ(st.count, sz[i]) << "msg " << i;
        EXPECT_EQ(pattern_mismatch(3000 + i, 0, ByteSpan{buf}), -1)
            << "msg " << i << " tag " << tag;
      }
    }
    d = true;
  }(w.c(1), sizes, tags, done));
  w.eng.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(w.eng.pending_roots(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MpiPropertyTest,
    ::testing::Combine(::testing::Values(Backend::kFm1, Backend::kFm2),
                       ::testing::Values(11, 12, 13)),
    [](const auto& pinfo) {
      return std::string(std::get<0>(pinfo.param) == Backend::kFm1 ? "Fm1"
                                                                  : "Fm2") +
             "_seed" + std::to_string(std::get<1>(pinfo.param));
    });

// --- Generation-specific structural properties ----------------------------

TEST(MpiFm2Specific, PrePostedWindowIsZeroStaging) {
  // With receives pre-posted, MPI-FM 2.x must take the posted path for every
  // message (layer interleaving) — no unexpected buffering at all.
  World w(Backend::kFm2, 2);
  constexpr int kN = 20;
  constexpr std::size_t kSize = 4096;
  bool done = false;
  w.eng.spawn([](Comm& c, bool& d) -> Task<void> {
    std::vector<Bytes> bufs(kN, Bytes(kSize));
    std::vector<Request> reqs;
    for (int i = 0; i < kN; ++i) {
      reqs.push_back(co_await c.irecv(MutByteSpan{bufs[i]}, 0, 0));
    }
    for (auto& r : reqs) co_await c.wait(r);
    d = true;
  }(w.c(1), done));
  w.eng.spawn([](Comm& c) -> Task<void> {
    Bytes m(kSize);
    for (int i = 0; i < kN; ++i) co_await c.send(ByteSpan{m}, 1, 0);
  }(w.c(0)));
  w.eng.run();
  ASSERT_TRUE(done);
  EXPECT_EQ(w.c(1).stats().posted_hits, static_cast<std::uint64_t>(kN));
  EXPECT_EQ(w.c(1).stats().unexpected, 0u);
}

TEST(MpiFm1Specific, EvenPrePostedPathCopiesThroughTemp) {
  // The FM 1.x interface denies the handler the posted buffer: every byte
  // goes user <- temp <- FM buffer. Observable as >= 2 receiver copies per
  // message even with the receive posted in advance.
  World w(Backend::kFm1, 2);
  constexpr std::size_t kSize = 2048;
  auto& mpi1 = static_cast<MpiFm1&>(w.c(1));
  bool done = false;
  w.eng.spawn([](Comm& c, bool& d) -> Task<void> {
    Bytes buf(kSize);
    Request r = co_await c.irecv(MutByteSpan{buf}, 0, 0);
    co_await c.wait(r);
    d = true;
  }(w.c(1), done));
  auto before = mpi1.fm().host().ledger();
  w.eng.spawn([](Comm& c) -> Task<void> {
    Bytes m(kSize);
    co_await c.send(ByteSpan{m}, 1, 0);
  }(w.c(0)));
  w.eng.run();
  ASSERT_TRUE(done);
  auto delta = mpi1.fm().host().ledger().diff(before);
  // FM reassembly copies (per packet) + temp copy + temp->user copy.
  EXPECT_GE(delta.copied_bytes(), 3 * kSize);
}

TEST(MpiFm2Specific, RecvPostedDuringInFlightUnexpectedMatchesCorrectly) {
  // Regression: FM 2.x handlers interleave with reception, so a message can
  // be known (header read) but still streaming when the application posts
  // its receive. The posted receive must claim THAT message, not the next
  // one. (Found by the traffic_replay example.)
  World w(Backend::kFm2, 2);
  auto& mpi2 = static_cast<MpiFm2&>(w.c(1));
  constexpr std::size_t kBig = 32 * 1024;
  bool done = false;
  w.eng.spawn([](Comm& c) -> Task<void> {
    Bytes a = pattern_bytes(100, kBig);
    Bytes b = pattern_bytes(101, 64);
    co_await c.send(ByteSpan{a}, 1, 0);
    co_await c.send(ByteSpan{b}, 1, 0);
  }(w.c(0)));
  w.eng.spawn([](Engine& e, MpiFm2& c, bool& d) -> Task<void> {
    // Let a few packets of the big message arrive, then extract a little:
    // its handler starts, finds no posted recv, and goes "unexpected"
    // while most of its payload is still in flight.
    co_await e.delay(sim::us(200));
    (void)co_await c.fm().extract(4096);
    // Now post the receive mid-arrival.
    Bytes big(kBig);
    Request r1 = co_await c.irecv(MutByteSpan{big}, 0, 0);
    co_await c.wait(r1);
    EXPECT_EQ(pattern_mismatch(100, 0, ByteSpan{big}), -1);
    // The second message must pair with the second receive.
    Bytes small(64);
    co_await c.recv(MutByteSpan{small}, 0, 0);
    EXPECT_EQ(pattern_mismatch(101, 0, ByteSpan{small}), -1);
    d = true;
  }(w.eng, mpi2, done));
  w.eng.run();
  EXPECT_TRUE(done);
  EXPECT_GE(w.c(1).stats().unexpected, 1u);
  EXPECT_EQ(w.eng.pending_roots(), 0);
}

TEST(MpiFm2Specific, PostedPayloadBytesCopiedExactlyOnce) {
  World w(Backend::kFm2, 2);
  constexpr std::size_t kSize = 8192;
  auto& mpi2 = static_cast<MpiFm2&>(w.c(1));
  bool done = false;
  w.eng.spawn([](Comm& c, bool& d) -> Task<void> {
    Bytes buf(kSize);
    Request r = co_await c.irecv(MutByteSpan{buf}, 0, 0);
    co_await c.wait(r);
    d = true;
  }(w.c(1), done));
  auto before = mpi2.fm().host().ledger();
  w.eng.spawn([](Comm& c) -> Task<void> {
    Bytes m(kSize);
    co_await c.send(ByteSpan{m}, 1, 0);
  }(w.c(0)));
  w.eng.run();
  ASSERT_TRUE(done);
  auto delta = mpi2.fm().host().ledger().diff(before);
  // Payload + 24-byte header, each byte moved host-side exactly once.
  EXPECT_LT(delta.copied_bytes(), kSize + 256);
  EXPECT_GE(delta.copied_bytes(), kSize);
}

// --- Rendezvous protocol (MPI-FM 2 extension) -------------------------------

TEST(MpiFm2Rendezvous, LargeMessageRoundTrip) {
  Engine eng;
  auto params = net::ppro_fm2_cluster(2);
  net::Cluster cluster(eng, params);
  MpiFm2Options opt;
  opt.eager_threshold = 4096;
  MpiFm2 tx(cluster, 0, {}, opt), rx(cluster, 1, {}, opt);
  constexpr std::size_t kBig = 64 * 1024;
  bool done = false;
  eng.spawn([](Comm& c, bool& d) -> Task<void> {
    Bytes buf(kBig);
    Request r = co_await c.irecv(MutByteSpan{buf}, 0, 0);
    co_await c.wait(r);
    EXPECT_EQ(pattern_mismatch(42, 0, ByteSpan{buf}), -1);
    d = true;
  }(rx, done));
  eng.spawn([](Comm& c) -> Task<void> {
    Bytes m = pattern_bytes(42, kBig);
    co_await c.send(ByteSpan{m}, 1, 0);
  }(tx));
  eng.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(eng.pending_roots(), 0);
}

TEST(MpiFm2Rendezvous, UnexpectedRtsWaitsForPostedBuffer) {
  Engine eng;
  net::Cluster cluster(eng, net::ppro_fm2_cluster(2));
  MpiFm2Options opt;
  opt.eager_threshold = 1024;
  MpiFm2 tx(cluster, 0, {}, opt), rx(cluster, 1, {}, opt);
  constexpr std::size_t kBig = 32 * 1024;
  bool done = false;
  // Sender goes first: the RTS arrives before any receive is posted.
  eng.spawn([](Comm& c) -> Task<void> {
    Bytes m = pattern_bytes(7, kBig);
    co_await c.send(ByteSpan{m}, 1, 3);
  }(tx));
  eng.spawn([](Engine& e, MpiFm2& c, bool& d) -> Task<void> {
    co_await e.delay(sim::us(300));
    (void)co_await c.fm().extract();  // ingest the RTS -> unexpected queue
    EXPECT_GE(c.stats().unexpected, 1u);
    Bytes buf(kBig);
    co_await c.recv(MutByteSpan{buf}, 0, 3);
    EXPECT_EQ(pattern_mismatch(7, 0, ByteSpan{buf}), -1);
    d = true;
  }(eng, rx, done));
  eng.run();
  EXPECT_TRUE(done);
  // The payload was never staged: each byte was copied host-side exactly
  // once (stream -> user buffer) despite being "unexpected".
  EXPECT_EQ(eng.pending_roots(), 0);
}

TEST(MpiFm2Rendezvous, UnexpectedLargeMessageIsNotStaged) {
  // Eager: a 32 KB unexpected message costs a 32 KB staging copy.
  // Rendezvous: only the 24 B envelope queues; zero payload staging.
  auto staged_bytes = [](std::size_t threshold) {
    Engine eng;
    net::Cluster cluster(eng, net::ppro_fm2_cluster(2));
    MpiFm2Options opt;
    opt.eager_threshold = threshold;
    MpiFm2 tx(cluster, 0, {}, opt), rx(cluster, 1, {}, opt);
    constexpr std::size_t kBig = 32 * 1024;
    bool done = false;
    eng.spawn([](Comm& c) -> Task<void> {
      Bytes m = pattern_bytes(1, kBig);
      co_await c.send(ByteSpan{m}, 1, 0);
    }(tx));
    eng.spawn([](Engine& e, MpiFm2& c, bool& d) -> Task<void> {
      co_await e.delay(sim::ms(3));     // message fully arrives first
      (void)co_await c.fm().extract();  // unexpected path taken
      Bytes buf(kBig);
      co_await c.recv(MutByteSpan{buf}, 0, 0);
      EXPECT_EQ(pattern_mismatch(1, 0, ByteSpan{buf}), -1);
      d = true;
    }(eng, rx, done));
    auto before = rx.fm().host().ledger();
    eng.run();
    EXPECT_TRUE(done);
    return rx.fm().host().ledger().diff(before).copied_bytes();
  };
  auto eager_copied = staged_bytes(~std::size_t{0});
  auto rdzv_copied = staged_bytes(1024);
  // Eager: stream->staging + staging->user = 2x payload. Rendezvous: 1x.
  EXPECT_GT(eager_copied, 60'000u);
  EXPECT_LT(rdzv_copied, 36'000u);
}

TEST(MpiFm2Rendezvous, MixedEagerAndRendezvousStayOrdered) {
  Engine eng;
  net::Cluster cluster(eng, net::ppro_fm2_cluster(2));
  MpiFm2Options opt;
  opt.eager_threshold = 1000;
  MpiFm2 tx(cluster, 0, {}, opt), rx(cluster, 1, {}, opt);
  const std::vector<std::size_t> sizes = {64, 8000, 128, 12000, 16};
  bool done = false;
  eng.spawn([](Comm& c, const std::vector<std::size_t>& sz) -> Task<void> {
    for (std::size_t i = 0; i < sz.size(); ++i) {
      Bytes m = pattern_bytes(i, sz[i]);
      co_await c.send(ByteSpan{m}, 1, 0);
    }
  }(tx, sizes));
  eng.spawn([](Comm& c, const std::vector<std::size_t>& sz,
               bool& d) -> Task<void> {
    for (std::size_t i = 0; i < sz.size(); ++i) {
      Bytes buf(sz[i]);
      Status st;
      co_await c.recv(MutByteSpan{buf}, 0, 0, &st);
      EXPECT_EQ(st.count, sz[i]) << "message " << i;
      EXPECT_EQ(pattern_mismatch(i, 0, ByteSpan{buf}), -1) << "msg " << i;
    }
    d = true;
  }(rx, sizes, done));
  eng.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(eng.pending_roots(), 0);
}

TEST(MpiFm2Rendezvous, SendrecvExchangeOfLargeMessages) {
  Engine eng;
  net::Cluster cluster(eng, net::ppro_fm2_cluster(2));
  MpiFm2Options opt;
  opt.eager_threshold = 2048;
  MpiFm2 a(cluster, 0, {}, opt), b(cluster, 1, {}, opt);
  constexpr std::size_t kBig = 20'000;
  int done = 0;
  Comm* comms[2] = {&a, &b};
  for (int me = 0; me < 2; ++me) {
    eng.spawn([](Comm& c, int my, int& d) -> Task<void> {
      Bytes mine = pattern_bytes(my, kBig);
      Bytes theirs(kBig);
      co_await c.sendrecv(ByteSpan{mine}, 1 - my, 0, MutByteSpan{theirs},
                          1 - my, 0);
      EXPECT_EQ(pattern_mismatch(1 - my, 0, ByteSpan{theirs}), -1);
      ++d;
    }(*comms[me], me, done));
  }
  eng.run();
  EXPECT_EQ(done, 2);  // both rendezvous complete, no deadlock
  EXPECT_EQ(eng.pending_roots(), 0);
}

}  // namespace
}  // namespace fmx::mpi
