// Unit tests for the MPI matching engine (posted + unexpected queues,
// wildcards, FIFO ordering rules).
#include "mpi/match.hpp"

#include <gtest/gtest.h>

namespace fmx::mpi {
namespace {

std::shared_ptr<RequestState> req() {
  return std::make_shared<RequestState>();
}

TEST(Matches, ExactAndWildcards) {
  EXPECT_TRUE(matches(3, 7, 3, 7));
  EXPECT_FALSE(matches(3, 7, 3, 8));
  EXPECT_FALSE(matches(3, 7, 4, 7));
  EXPECT_TRUE(matches(kAnySource, 7, 99, 7));
  EXPECT_TRUE(matches(3, kAnyTag, 3, 42));
  EXPECT_TRUE(matches(kAnySource, kAnyTag, 1, 2));
}

TEST(Matcher, PostWithNoUnexpectedQueues) {
  Matcher m;
  auto r = req();
  EXPECT_FALSE(m.post(PostedRecv(nullptr, 0, 1, 2, r)).has_value());
  EXPECT_EQ(m.posted_count(), 1u);
}

TEST(Matcher, PostConsumesMatchingUnexpectedFifo) {
  Matcher m;
  m.add_unexpected(UnexpectedMsg(0, 5, pattern_bytes(1, 8)));
  m.add_unexpected(UnexpectedMsg(0, 5, pattern_bytes(2, 8)));
  auto hit = m.post(PostedRecv(nullptr, 8, 0, 5, req()));
  ASSERT_TRUE(hit.has_value());
  // FIFO: the FIRST queued message matches.
  EXPECT_EQ(pattern_mismatch(1, 0, ByteSpan{hit->data}), -1);
  EXPECT_EQ(m.unexpected_count(), 1u);
  EXPECT_EQ(m.posted_count(), 0u);
}

TEST(Matcher, PostSkipsNonMatchingUnexpected) {
  Matcher m;
  m.add_unexpected(UnexpectedMsg(0, 9, Bytes(4)));
  auto hit = m.post(PostedRecv(nullptr, 4, 0, 5, req()));
  EXPECT_FALSE(hit.has_value());
  EXPECT_EQ(m.unexpected_count(), 1u);
  EXPECT_EQ(m.posted_count(), 1u);
}

TEST(Matcher, ClaimPostedFifoAmongMatches) {
  Matcher m;
  auto r1 = req(), r2 = req(), r3 = req();
  m.post(PostedRecv(nullptr, 0, kAnySource, kAnyTag, r1));
  m.post(PostedRecv(nullptr, 0, 2, 7, r2));
  m.post(PostedRecv(nullptr, 0, kAnySource, 7, r3));
  // Arrival (2,7): the wildcard posted FIRST wins (MPI ordering rule).
  auto pr = m.claim_posted(2, 7);
  ASSERT_TRUE(pr.has_value());
  EXPECT_EQ(pr->req.get(), r1.get());
  // Next arrival claims the exact match posted second.
  auto pr2 = m.claim_posted(2, 7);
  ASSERT_TRUE(pr2.has_value());
  EXPECT_EQ(pr2->req.get(), r2.get());
  EXPECT_EQ(m.posted_count(), 1u);
}

TEST(Matcher, ClaimPostedNoMatch) {
  Matcher m;
  m.post(PostedRecv(nullptr, 0, 1, 1, req()));
  EXPECT_FALSE(m.claim_posted(2, 2).has_value());
  EXPECT_EQ(m.posted_count(), 1u);
}

TEST(Matcher, WildcardUnexpectedConsumption) {
  Matcher m;
  m.add_unexpected(UnexpectedMsg(3, 1, Bytes(1)));
  m.add_unexpected(UnexpectedMsg(4, 2, Bytes(2)));
  auto hit = m.post(PostedRecv(nullptr, 8, kAnySource, 2, req()));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->src, 4);
  EXPECT_EQ(hit->tag, 2);
}

TEST(Request, StateLifecycle) {
  Request empty;
  EXPECT_FALSE(empty.valid());
  auto st = req();
  Request r(st);
  EXPECT_TRUE(r.valid());
  EXPECT_FALSE(r.done());
  st->done = true;
  st->status = Status{5, 6, 7};
  EXPECT_TRUE(r.done());
  EXPECT_EQ(r.status().source, 5);
  EXPECT_EQ(r.status().tag, 6);
  EXPECT_EQ(r.status().count, 7u);
}

}  // namespace
}  // namespace fmx::mpi
