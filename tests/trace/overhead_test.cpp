// Zero-overhead guarantee for the tracer, enforced with the same
// operator-new hook the substrate benchmark uses (linked into this test
// binary only — see tests/CMakeLists.txt):
//   - tracing DISABLED: a warmed-up FM 2.x stream performs zero heap
//     allocations, i.e. the disabled record() branch costs nothing the
//     allocator can see;
//   - tracing ENABLED: still zero steady-state allocations, because the
//     chunked event ring is preallocated at enable() and full chunks are
//     recycled, never grown.
#include <gtest/gtest.h>

#include <cstdint>

#include "bench/common/alloc_hook.hpp"
#include "fm2/fm2.hpp"
#include "myrinet/node.hpp"
#include "tests/common/sim_fixture.hpp"
#include "trace/trace.hpp"

namespace fmx {
namespace {

using sim::Engine;
using sim::Task;

constexpr std::size_t kMsgSize = 4096;

// Streams `n` messages tx -> rx and drains the engine.
void stream(Engine& eng, fm2::Endpoint& tx, fm2::Endpoint& rx, int& got,
            Bytes& msg, int n) {
  got = 0;
  eng.spawn([](fm2::Endpoint& ep, ByteSpan m, int count) -> Task<void> {
    for (int i = 0; i < count; ++i) co_await ep.send(1, 0, m);
  }(tx, ByteSpan{msg}, n));
  eng.spawn([](fm2::Endpoint& ep, int& g, int count) -> Task<void> {
    co_await ep.poll_until([&] { return g == count; });
  }(rx, got, n));
  ASSERT_TRUE(test::run_to_exhaustion(eng));
}

TEST(TraceOverhead, SteadyStateAllocationFree) {
  Engine eng;
  net::Cluster cluster(eng, net::ppro_fm2_cluster(2));
  fm2::Endpoint tx(cluster, 0), rx(cluster, 1);
  int got = 0;
  Bytes sink(kMsgSize);
  rx.register_handler(0, [&](fm2::RecvStream& s, int) -> fm2::HandlerTask {
    co_await s.receive(sink.data(), s.msg_bytes());
    ++got;
  });
  Bytes msg = pattern_bytes(7, kMsgSize);

  // Warm every pool (event queue, frame pool, buffer pool, rings).
  stream(eng, tx, rx, got, msg, 50);

  // Tracing off: the gate is a single branch; zero allocations.
  bench::alloc_hook_reset();
  stream(eng, tx, rx, got, msg, 200);
  EXPECT_EQ(bench::alloc_hook_count(), 0u)
      << "disabled tracer allocated on the hot path";

  // Tracing on: enable() preallocates the ring; the steady state must not
  // allocate either, even when the ring wraps and recycles chunks.
  trace::Tracer& tracer = cluster.fabric().tracer();
  tracer.enable(/*capacity=*/8192);  // small: forces wraparound recycling
  stream(eng, tx, rx, got, msg, 50);  // warm the traced path
  bench::alloc_hook_reset();
  stream(eng, tx, rx, got, msg, 200);
  EXPECT_EQ(bench::alloc_hook_count(), 0u)
      << "enabled tracer allocated in steady state; the ring must be "
         "preallocated at enable() and recycled on wrap";
  EXPECT_GT(tracer.size(), 0u);
  EXPECT_GT(tracer.dropped_events(), 0u);  // proves the ring wrapped
}

}  // namespace
}  // namespace fmx
