// Golden-trace determinism tests for the cross-layer tracer. A fixed
// MPI-FM2 exchange is traced end to end and reduced to the tracer's
// order-sensitive FNV-1a digest. The digest must be identical run to run —
// with and without a seeded fault plan — because the simulation is
// deterministic and the hooks are synchronous (no events of their own).
//
// The happens-before test checks the pipeline invariant the event types
// encode: for every message, send_enqueue precedes the (optional) fetch
// DMA, which precedes the wire hop, which precedes delivery, which
// precedes the first handler run, which precedes message completion.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "fault/injector.hpp"
#include "fm2/fm2.hpp"
#include "mpi/mpi_fm2.hpp"
#include "myrinet/node.hpp"
#include "tests/common/sim_fixture.hpp"
#include "trace/export.hpp"
#include "trace/trace.hpp"

namespace fmx {
namespace {

using sim::Engine;
using sim::Task;

constexpr std::size_t kSizes[] = {64, 512, 2048, 6000};
constexpr int kMsgs = 8;

struct RunResult {
  std::uint64_t digest = 0;
  std::vector<trace::Event> events;
  std::uint64_t injected_drops = 0;
  std::uint64_t trace_dropped = 0;  // ring evictions (should be none here)
};

RunResult run_exchange(bool faulty) {
  Engine eng;
  auto params = net::ppro_fm2_cluster(2);
  params.nic.reliable_link = true;  // losses recovered by go-back-N
  net::Cluster cluster(eng, params);
  std::optional<fault::PlanInjector> inj;
  if (faulty) {
    inj.emplace(eng, fault::FaultPlan::lossy(0.15, /*seed=*/23));
    fault::arm(cluster, *inj);
  }
  fm2::Endpoint ep0(cluster, 0), ep1(cluster, 1);
  mpi::MpiFm2 mpi0(ep0), mpi1(ep1);
  cluster.fabric().tracer().enable();

  eng.spawn([](mpi::Comm& c) -> Task<void> {
    for (int i = 0; i < kMsgs; ++i) {
      Bytes m = pattern_bytes(i, kSizes[i % 4]);
      co_await c.send(ByteSpan{m}, 1, 5);
    }
  }(mpi0));
  eng.spawn([](mpi::Comm& c) -> Task<void> {
    for (int i = 0; i < kMsgs; ++i) {
      Bytes buf(kSizes[i % 4]);
      co_await c.recv(MutByteSpan{buf}, 0, 5);
    }
  }(mpi1));
  EXPECT_TRUE(test::run_to_exhaustion(eng));

  RunResult r;
  const trace::Tracer& t = cluster.fabric().tracer();
  r.digest = trace::trace_digest(t);
  r.events = t.events();
  r.trace_dropped = t.dropped_events();
  if (inj) r.injected_drops = inj->stats().drops;
  return r;
}

TEST(GoldenTrace, DigestStableAcrossRuns) {
  RunResult a = run_exchange(false);
  RunResult b = run_exchange(false);
  ASSERT_GT(a.events.size(), 0u);
  EXPECT_EQ(a.trace_dropped, 0u);
  EXPECT_EQ(a.events.size(), b.events.size());
  EXPECT_EQ(a.digest, b.digest);
}

TEST(GoldenTrace, DigestStableUnderSeededFaults) {
  RunResult a = run_exchange(true);
  RunResult b = run_exchange(true);
  // The plan must actually bite, and recovery must be visible in the trace.
  ASSERT_GT(a.injected_drops, 0u);
  bool saw_drop = false, saw_retransmit = false;
  for (const trace::Event& e : a.events) {
    saw_drop |= e.type == trace::EventType::kDrop;
    saw_retransmit |= e.type == trace::EventType::kRetransmit;
  }
  EXPECT_TRUE(saw_drop);
  EXPECT_TRUE(saw_retransmit);
  EXPECT_EQ(a.digest, b.digest);
  // And the faulty timeline is a different timeline.
  EXPECT_NE(a.digest, run_exchange(false).digest);
}

TEST(GoldenTrace, HappensBeforePerMessage) {
  RunResult r = run_exchange(false);

  // First timestamp of each event type per FM2-level message id.
  struct Firsts {
    std::map<trace::EventType, sim::Ps> first;
    void see(const trace::Event& e) {
      auto [it, inserted] = first.try_emplace(e.type, e.t);
      if (!inserted && e.t < it->second) it->second = e.t;
    }
  };
  std::map<std::uint64_t, Firsts> msgs;
  for (const trace::Event& e : r.events) {
    if (e.msg_id != 0) msgs[e.msg_id].see(e);
  }

  int checked = 0;
  for (const auto& [id, f] : msgs) {
    using ET = trace::EventType;
    if (!f.first.count(ET::kSendEnqueue) || !f.first.count(ET::kMsgDone)) {
      continue;  // control traffic (credits, acks) has no send_enqueue
    }
    ++checked;
    ASSERT_TRUE(f.first.count(ET::kWireHop)) << "msg " << std::hex << id;
    ASSERT_TRUE(f.first.count(ET::kDeliver)) << "msg " << std::hex << id;
    ASSERT_TRUE(f.first.count(ET::kHandlerRun)) << "msg " << std::hex << id;
    const sim::Ps se = f.first.at(ET::kSendEnqueue);
    const sim::Ps wh = f.first.at(ET::kWireHop);
    const sim::Ps dl = f.first.at(ET::kDeliver);
    const sim::Ps hr = f.first.at(ET::kHandlerRun);
    const sim::Ps md = f.first.at(ET::kMsgDone);
    EXPECT_LT(se, wh) << "msg " << std::hex << id;
    if (f.first.count(ET::kDmaStart)) {
      EXPECT_GE(f.first.at(ET::kDmaStart), se) << "msg " << std::hex << id;
      EXPECT_LT(f.first.at(ET::kDmaStart), wh) << "msg " << std::hex << id;
    }
    EXPECT_LT(wh, dl) << "msg " << std::hex << id;
    EXPECT_LE(dl, hr) << "msg " << std::hex << id;
    EXPECT_LE(hr, md) << "msg " << std::hex << id;
  }
  EXPECT_GE(checked, kMsgs);  // every MPI payload message was validated
}

}  // namespace
}  // namespace fmx
