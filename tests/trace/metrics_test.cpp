// MetricsRegistry behavior plus the cross-layer wiring: every layer
// exposes its stats cells into the fabric tracer's registry at cluster
// construction, so one snapshot answers "what did the whole cluster do"
// by name — without tests reaching into per-object Stats structs.
#include <gtest/gtest.h>

#include <cstdint>

#include "fm2/fm2.hpp"
#include "myrinet/node.hpp"
#include "tests/common/sim_fixture.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"

namespace fmx {
namespace {

using sim::Engine;
using sim::Task;

TEST(Metrics, CountersAndHistograms) {
  trace::MetricsRegistry m;
  trace::Counter& c = m.counter("x.count");
  c.add();
  c.add(41);
  EXPECT_EQ(m.value("x.count"), 42u);
  EXPECT_EQ(m.value("nope"), std::nullopt);
  EXPECT_EQ(&m.counter("x.count"), &c);  // stable on re-lookup

  std::uint64_t external = 7;
  m.expose("x.view", &external);
  external = 9;
  EXPECT_EQ(m.value("x.view"), 9u);  // a view, not a copy

  trace::Histogram& h = m.histogram("x.lat", {10, 100, 1000});
  h.observe(5);
  h.observe(50);
  h.observe(5000);  // overflow bucket
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 5055u);
  ASSERT_NE(m.find_histogram("x.lat"), nullptr);
  EXPECT_EQ(m.find_histogram("x.lat")->count(), 3u);
}

TEST(Metrics, HistogramQuantilesOnKnownInputs) {
  // 100 observations 1..100 in buckets {10, 20, ..., 100}: every bucket
  // holds exactly 10 and interpolation is linear, so quantiles land where
  // arithmetic says.
  std::vector<std::uint64_t> bounds;
  for (std::uint64_t b = 10; b <= 100; b += 10) bounds.push_back(b);
  trace::Histogram h(bounds);
  for (std::uint64_t v = 1; v <= 100; ++v) h.observe(v);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);
  // p50: rank 50 = end of bucket (40,50]; interpolation gives its upper
  // edge exactly.
  EXPECT_DOUBLE_EQ(h.quantile(0.50), 50.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 99.0);
  EXPECT_NEAR(h.quantile(0.999), 100.0, 0.2);
  // Monotone in q.
  for (double q = 0.1; q < 1.0; q += 0.1) {
    EXPECT_LE(h.quantile(q - 0.05), h.quantile(q));
  }
}

TEST(Metrics, HistogramQuantileEdgesClampToObservedSupport) {
  trace::Histogram h({100, 1000, 10000});
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // empty histogram
  // A single value: every quantile is that value (bucket interpolation
  // must not leak the bucket's full [lower, upper] width).
  h.observe(500);
  for (double q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.quantile(q), 500.0);
  }
  // Overflow bucket: estimates stay within [min, max], never run off to
  // infinity even though the last bucket has no upper bound.
  h.observe(50000);
  h.observe(70000);
  EXPECT_LE(h.quantile(0.999), 70000.0);
  EXPECT_GE(h.quantile(0.001), 500.0);
}

TEST(Metrics, HistogramMergeAndReset) {
  trace::Histogram a({10, 100}), b({10, 100});
  a.observe(5);
  a.observe(50);
  b.observe(7);
  b.observe(500);
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.sum(), 562u);
  EXPECT_EQ(a.min(), 5u);
  EXPECT_EQ(a.max(), 500u);
  // Merging an empty histogram leaves min/max untouched.
  trace::Histogram empty({10, 100});
  a.merge(empty);
  EXPECT_EQ(a.min(), 5u);
  EXPECT_EQ(a.max(), 500u);

  a.reset();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.sum(), 0u);
  EXPECT_DOUBLE_EQ(a.quantile(0.5), 0.0);
  a.observe(42);  // usable again, with fresh min/max tracking
  EXPECT_EQ(a.min(), 42u);
  EXPECT_EQ(a.max(), 42u);
}

TEST(Metrics, LatencyBoundsCoverTheSimRange) {
  const auto bounds = trace::latency_bounds_ps();
  ASSERT_GT(bounds.size(), 80u);
  EXPECT_EQ(bounds.front(), 1000u);           // 1 ns
  EXPECT_GT(bounds.back(), 100'000'000'000u);  // > 100 ms
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_GT(bounds[i], bounds[i - 1]);
    // 2^(1/4) spacing bounds the worst-case interpolation error.
    EXPECT_LT(static_cast<double>(bounds[i]) / bounds[i - 1], 1.20);
  }
}

TEST(Metrics, ClusterExposesEveryLayerByName) {
  Engine eng;
  net::Cluster cluster(eng, net::ppro_fm2_cluster(2));
  fm2::Endpoint tx(cluster, 0), rx(cluster, 1);
  int got = 0;
  Bytes sink(4096);
  rx.register_handler(0, [&](fm2::RecvStream& s, int) -> fm2::HandlerTask {
    co_await s.receive(sink.data(), s.msg_bytes());
    ++got;
  });
  eng.spawn([](fm2::Endpoint& ep) -> Task<void> {
    Bytes m(4096);
    for (int i = 0; i < 20; ++i) co_await ep.send(1, 0, ByteSpan{m});
  }(tx));
  eng.spawn([](fm2::Endpoint& ep, int& g) -> Task<void> {
    co_await ep.poll_until([&] { return g == 20; });
  }(rx, got));
  ASSERT_TRUE(test::run_to_exhaustion(eng));

  const trace::MetricsRegistry& m = cluster.fabric().tracer().metrics();
  // One registry sees the fabric, the NICs, the hosts' cost ledgers, the
  // buffer pool, and both endpoints — all live views of the run above.
  EXPECT_GT(m.value("fabric.packets").value(), 0u);
  EXPECT_EQ(m.value("fm2.node0.msgs_sent").value(), 20u);
  EXPECT_EQ(m.value("fm2.node1.msgs_received").value(), 20u);
  EXPECT_EQ(m.value("fm2.node1.bytes_received").value(), 20u * 4096);
  EXPECT_GT(m.value("node0.nic.tx_packets").value(), 0u);
  EXPECT_GT(m.value("node1.nic.rx_packets").value(), 0u);
  EXPECT_GT(m.value("node1.host.copies").value(), 0u);
  EXPECT_GT(m.value("pool.acquires").value(), 0u);
  EXPECT_EQ(m.value("fabric.dropped").value(), 0u);

  // Event-type counters appear once tracing is on (bound at enable()).
  EXPECT_EQ(m.value("trace.events.send_enqueue"), std::nullopt);
  cluster.fabric().tracer().enable();
  ASSERT_TRUE(m.value("trace.events.send_enqueue").has_value());
}

}  // namespace
}  // namespace fmx
