// MetricsRegistry behavior plus the cross-layer wiring: every layer
// exposes its stats cells into the fabric tracer's registry at cluster
// construction, so one snapshot answers "what did the whole cluster do"
// by name — without tests reaching into per-object Stats structs.
#include <gtest/gtest.h>

#include <cstdint>

#include "fm2/fm2.hpp"
#include "myrinet/node.hpp"
#include "tests/common/sim_fixture.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"

namespace fmx {
namespace {

using sim::Engine;
using sim::Task;

TEST(Metrics, CountersAndHistograms) {
  trace::MetricsRegistry m;
  trace::Counter& c = m.counter("x.count");
  c.add();
  c.add(41);
  EXPECT_EQ(m.value("x.count"), 42u);
  EXPECT_EQ(m.value("nope"), std::nullopt);
  EXPECT_EQ(&m.counter("x.count"), &c);  // stable on re-lookup

  std::uint64_t external = 7;
  m.expose("x.view", &external);
  external = 9;
  EXPECT_EQ(m.value("x.view"), 9u);  // a view, not a copy

  trace::Histogram& h = m.histogram("x.lat", {10, 100, 1000});
  h.observe(5);
  h.observe(50);
  h.observe(5000);  // overflow bucket
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 5055u);
  ASSERT_NE(m.find_histogram("x.lat"), nullptr);
  EXPECT_EQ(m.find_histogram("x.lat")->count(), 3u);
}

TEST(Metrics, ClusterExposesEveryLayerByName) {
  Engine eng;
  net::Cluster cluster(eng, net::ppro_fm2_cluster(2));
  fm2::Endpoint tx(cluster, 0), rx(cluster, 1);
  int got = 0;
  Bytes sink(4096);
  rx.register_handler(0, [&](fm2::RecvStream& s, int) -> fm2::HandlerTask {
    co_await s.receive(sink.data(), s.msg_bytes());
    ++got;
  });
  eng.spawn([](fm2::Endpoint& ep) -> Task<void> {
    Bytes m(4096);
    for (int i = 0; i < 20; ++i) co_await ep.send(1, 0, ByteSpan{m});
  }(tx));
  eng.spawn([](fm2::Endpoint& ep, int& g) -> Task<void> {
    co_await ep.poll_until([&] { return g == 20; });
  }(rx, got));
  ASSERT_TRUE(test::run_to_exhaustion(eng));

  const trace::MetricsRegistry& m = cluster.fabric().tracer().metrics();
  // One registry sees the fabric, the NICs, the hosts' cost ledgers, the
  // buffer pool, and both endpoints — all live views of the run above.
  EXPECT_GT(m.value("fabric.packets").value(), 0u);
  EXPECT_EQ(m.value("fm2.node0.msgs_sent").value(), 20u);
  EXPECT_EQ(m.value("fm2.node1.msgs_received").value(), 20u);
  EXPECT_EQ(m.value("fm2.node1.bytes_received").value(), 20u * 4096);
  EXPECT_GT(m.value("node0.nic.tx_packets").value(), 0u);
  EXPECT_GT(m.value("node1.nic.rx_packets").value(), 0u);
  EXPECT_GT(m.value("node1.host.copies").value(), 0u);
  EXPECT_GT(m.value("pool.acquires").value(), 0u);
  EXPECT_EQ(m.value("fabric.dropped").value(), 0u);

  // Event-type counters appear once tracing is on (bound at enable()).
  EXPECT_EQ(m.value("trace.events.send_enqueue"), std::nullopt);
  cluster.fabric().tracer().enable();
  ASSERT_TRUE(m.value("trace.events.send_enqueue").has_value());
}

}  // namespace
}  // namespace fmx
