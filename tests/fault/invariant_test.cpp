// Unit tests for the invariant checker and the fault-plan interpreter
// themselves: the ledger must flag each class of protocol violation with a
// readable message (and stay silent on clean runs), and PlanInjector must
// be a pure function of (plan, seed, consultation order).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/buffer.hpp"
#include "fault/injector.hpp"
#include "fault/invariants.hpp"
#include "sim/sync.hpp"
#include "tests/common/sim_fixture.hpp"

namespace fmx::fault {
namespace {

using sim::Engine;
using sim::Task;

bool any_violation_contains(const InvariantLedger& led,
                            const std::string& needle) {
  for (const std::string& v : led.violations()) {
    if (v.find(needle) != std::string::npos) return true;
  }
  return false;
}

TEST(InvariantLedger, CleanStreamPasses) {
  InvariantLedger led;
  for (int i = 0; i < 5; ++i) {
    Bytes m = pattern_bytes(i, 100 + i);
    led.note_sent(0, 1, ByteSpan{m});
    led.note_delivered(0, 1, ByteSpan{m});
  }
  led.check_streams();
  EXPECT_TRUE(led.ok()) << led.report();
  EXPECT_EQ(led.messages_sent(), 5u);
  EXPECT_EQ(led.messages_delivered(), 5u);
}

TEST(InvariantLedger, LostMessageFlaggedOnce) {
  // Deliver #0 and #2 but never #1: the #2 delivery is flagged as
  // out-of-order/lost, and the resync means check_streams stays quiet.
  InvariantLedger led;
  Bytes m0 = pattern_bytes(10, 64), m1 = pattern_bytes(11, 64),
        m2 = pattern_bytes(12, 64);
  led.note_sent(0, 1, ByteSpan{m0});
  led.note_sent(0, 1, ByteSpan{m1});
  led.note_sent(0, 1, ByteSpan{m2});
  led.note_delivered(0, 1, ByteSpan{m0});
  led.note_delivered(0, 1, ByteSpan{m2});
  led.check_streams();
  EXPECT_FALSE(led.ok());
  EXPECT_EQ(led.violations().size(), 1u) << led.report();
  EXPECT_TRUE(any_violation_contains(led, "out-of-order or lost"))
      << led.report();
}

TEST(InvariantLedger, UndeliveredMessagesFlagged) {
  InvariantLedger led;
  Bytes m = pattern_bytes(20, 256);
  led.note_sent(0, 1, ByteSpan{m});
  led.note_sent(0, 1, ByteSpan{m});
  led.check_streams();
  EXPECT_FALSE(led.ok());
  EXPECT_TRUE(any_violation_contains(led, "never delivered")) << led.report();
}

TEST(InvariantLedger, DuplicateDeliveryFlagged) {
  InvariantLedger led;
  Bytes m = pattern_bytes(30, 128);
  led.note_sent(0, 1, ByteSpan{m});
  led.note_delivered(0, 1, ByteSpan{m});
  led.note_delivered(0, 1, ByteSpan{m});
  EXPECT_FALSE(led.ok());
  EXPECT_TRUE(any_violation_contains(led, "duplicate or phantom"))
      << led.report();
}

TEST(InvariantLedger, CorruptedPayloadFlagged) {
  InvariantLedger led;
  Bytes m = pattern_bytes(40, 128);
  led.note_sent(0, 1, ByteSpan{m});
  Bytes bad = m;
  bad[17] ^= std::byte{0x20};  // same size, different bytes
  led.note_delivered(0, 1, ByteSpan{bad});
  EXPECT_FALSE(led.ok());
  EXPECT_TRUE(any_violation_contains(led, "corrupted in transit"))
      << led.report();
}

TEST(InvariantLedger, StreamsAreIndependent) {
  // A violation on 0->1 must not contaminate 1->0 bookkeeping.
  InvariantLedger led;
  Bytes a = pattern_bytes(50, 64), b = pattern_bytes(51, 64);
  led.note_sent(0, 1, ByteSpan{a});
  led.note_sent(1, 0, ByteSpan{b});
  led.note_delivered(1, 0, ByteSpan{b});
  led.check_streams();
  EXPECT_EQ(led.violations().size(), 1u) << led.report();
  EXPECT_TRUE(any_violation_contains(led, "stream 0->1")) << led.report();
}

TEST(InvariantLedger, DeadlockDetectedViaEngine) {
  Engine eng;
  sim::CondVar never(eng);
  eng.spawn([](sim::CondVar& cv) -> Task<void> { co_await cv.wait(); }(never));
  eng.run();
  InvariantLedger led;
  led.check_engine(eng);
  EXPECT_FALSE(led.ok());
  EXPECT_TRUE(any_violation_contains(led, "deadlock")) << led.report();
  // Unstick the waiter so the coroutine frame is reclaimed cleanly.
  never.notify_all();
  eng.run();
}

TEST(InvariantLedger, ReportListsEveryViolation) {
  InvariantLedger led;
  EXPECT_EQ(led.report(), "all invariants hold");
  led.violation("first");
  led.violation("second");
  const std::string rep = led.report();
  EXPECT_NE(rep.find("2 invariant violation(s)"), std::string::npos) << rep;
  EXPECT_NE(rep.find("first"), std::string::npos);
  EXPECT_NE(rep.find("second"), std::string::npos);
}

// --- PlanInjector ----------------------------------------------------------

struct Decision {
  bool drop, dup, corrupt;
  sim::Ps delay;
  bool operator==(const Decision&) const = default;
};

std::vector<Decision> consult(PlanInjector& inj, int n) {
  std::vector<Decision> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    net::WirePacket pkt =
        net::WirePacket::make(0, 1, pattern_bytes(static_cast<unsigned>(i),
                                                  64));
    net::WireFault f = inj.on_deliver(pkt);
    out.push_back({f.drop, f.duplicate, f.corrupt, f.extra_delay});
  }
  return out;
}

TEST(PlanInjector, SameSeedSameDecisionSequence) {
  Engine eng;
  PlanInjector a(eng, FaultPlan::chaos(99));
  PlanInjector b(eng, FaultPlan::chaos(99));
  EXPECT_EQ(consult(a, 500), consult(b, 500));
  EXPECT_EQ(a.stats().injected(), b.stats().injected());
  EXPECT_GT(a.stats().injected(), 0u);  // chaos at 2% over 500 draws fires
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.rx_pacing(0), b.rx_pacing(0)) << "call " << i;
  }
}

TEST(PlanInjector, DifferentSeedsDifferentDecisions) {
  Engine eng;
  PlanInjector a(eng, FaultPlan::chaos(1));
  PlanInjector b(eng, FaultPlan::chaos(2));
  EXPECT_NE(consult(a, 500), consult(b, 500));
}

TEST(PlanInjector, CleanPlanInjectsNothing) {
  Engine eng;
  PlanInjector inj(eng, FaultPlan::clean(7));
  for (const Decision& d : consult(inj, 100)) {
    EXPECT_EQ(d, (Decision{false, false, false, 0}));
  }
  EXPECT_EQ(inj.stats().injected(), 0u);
  EXPECT_EQ(inj.stats().packets_seen, 100u);
  EXPECT_EQ(inj.bus_stall(4096), 0);
  EXPECT_EQ(inj.tx_pacing(0), 0);
  EXPECT_EQ(inj.rx_pacing(0), 0);
}

TEST(PlanInjector, LinkOverrideMatchesDirectedPair) {
  Engine eng;
  FaultPlan plan = FaultPlan::clean(5);
  LinkOverride kill;
  kill.src = 0;
  kill.dst = 1;
  kill.rates.drop = 1.0;
  plan.links.push_back(kill);
  PlanInjector inj(eng, plan);
  net::WirePacket fwd = net::WirePacket::make(0, 1, Bytes(8));
  net::WirePacket rev = net::WirePacket::make(1, 0, Bytes(8));
  EXPECT_TRUE(inj.on_deliver(fwd).drop);
  EXPECT_FALSE(inj.on_deliver(rev).drop);
}

TEST(PlanInjector, WildcardOverrideMatchesAnyEndpoint) {
  Engine eng;
  FaultPlan plan = FaultPlan::clean(5);
  LinkOverride all_into_2;
  all_into_2.dst = 2;  // src stays -1 = any
  all_into_2.rates.drop = 1.0;
  plan.links.push_back(all_into_2);
  PlanInjector inj(eng, plan);
  EXPECT_TRUE(inj.on_deliver(net::WirePacket::make(0, 2, Bytes(8))).drop);
  EXPECT_TRUE(inj.on_deliver(net::WirePacket::make(1, 2, Bytes(8))).drop);
  EXPECT_FALSE(inj.on_deliver(net::WirePacket::make(2, 0, Bytes(8))).drop);
}

TEST(PlanInjector, EmptyPayloadIsNeverCorrupted) {
  // Ack-only packets carry no payload; a corrupt draw must skip them
  // rather than index into an empty buffer.
  Engine eng;
  FaultPlan plan = FaultPlan::clean(9);
  plan.wire.corrupt = 1.0;
  PlanInjector inj(eng, plan);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(inj.on_deliver(net::WirePacket::make(0, 1, Bytes{})).corrupt);
  }
  EXPECT_EQ(inj.stats().corruptions, 0u);
}

TEST(PlanInjector, BusStallOnlyInsideTheWindow) {
  Engine eng;
  FaultPlan plan = FaultPlan::clean(3);
  plan.bus = {sim::us(100), sim::us(50), sim::us(5)};
  PlanInjector inj(eng, plan);
  EXPECT_EQ(inj.bus_stall(1024), sim::us(5));  // t=0: inside the window
  sim::Ps outside = -1, inside = -1;
  eng.spawn([](Engine& en, PlanInjector& in, sim::Ps& out,
               sim::Ps& in_again) -> Task<void> {
    co_await en.delay(sim::us(60));  // 60 % 100 >= 50: clean half
    out = in.bus_stall(1024);
    co_await en.delay(sim::us(50));  // t=110: 110 % 100 < 50 again
    in_again = in.bus_stall(1024);
  }(eng, inj, outside, inside));
  ASSERT_TRUE(test::run_to_exhaustion(eng));
  EXPECT_EQ(outside, 0);
  EXPECT_EQ(inside, sim::us(5));
  EXPECT_EQ(inj.stats().bus_stalls, 2u);
}

}  // namespace
}  // namespace fmx::fault
