// Fault sweep targeted at the NIC-offloaded collective protocol. A
// kind-filtering injector cracks every kColl wire packet's CollHeader and
// unleashes a seeded drop/duplicate/corrupt plan on exactly ONE packet
// class per run — join (up), combine (up), fanout (down), done (down) — so
// each leg of the tree state machine is torn at individually. Over the
// reliable link every operation must still complete with exact values, the
// NICs must quiesce (no parked orphans, no queued partials), and the same
// (seed, class) must replay the identical simulation.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "common/buffer.hpp"
#include "fault/injector.hpp"
#include "fault/invariants.hpp"
#include "fm2/fm2.hpp"
#include "myrinet/coll.hpp"
#include "myrinet/node.hpp"
#include "myrinet/packet.hpp"

namespace fmx::fault {
namespace {

using sim::Engine;
using sim::Task;

const char* class_name(net::CollClass c) {
  switch (c) {
    case net::CollClass::kJoin:
      return "Join";
    case net::CollClass::kCombine:
      return "Combine";
    case net::CollClass::kFanout:
      return "Fanout";
    case net::CollClass::kDone:
      return "Done";
  }
  return "?";
}

/// Forwards only kColl packets of the targeted class to an inner
/// PlanInjector; all other traffic (data, acks, other collective legs)
/// passes untouched, so the fault schedule depends only on the targeted
/// class's packet stream.
class CollClassInjector final : public net::FaultInjector {
 public:
  CollClassInjector(Engine& eng, FaultPlan plan, net::CollClass target)
      : inner_(eng, std::move(plan)), target_(target) {}

  net::WireFault on_deliver(const net::WirePacket& pkt) override {
    if (pkt.kind != net::PacketKind::kColl) return {};
    net::CollHeader h;
    if (!net::coll_parse(pkt.payload.span(), h)) return {};
    if (static_cast<net::CollClass>(h.cls) != target_) return {};
    return inner_.on_deliver(pkt);
  }

  const PlanInjector::Stats& stats() const noexcept { return inner_.stats(); }

 private:
  PlanInjector inner_;
  net::CollClass target_;
};

/// Same rotation as the rendezvous sweep: drop+corrupt base, with
/// duplication or reordering layered on by seed so each link-recovery
/// mechanism gets exercised against each collective leg.
FaultPlan profile_for(std::uint64_t seed) {
  FaultPlan p = FaultPlan::lossy(0.10, seed);
  switch (seed % 3) {
    case 0:
      break;
    case 1:
      p.wire.duplicate = 0.08;
      break;
    case 2:
      p.wire.reorder = 0.08;
      p.wire.reorder_delay = sim::us(60);
      break;
  }
  return p;
}

struct SweepResult {
  std::uint64_t events = 0;
  int completed_ranks = 0;
  std::vector<double> allreduce;   // per-rank result (must all agree)
  std::vector<double> subreduce;   // odd-rank subgroup allreduce results
  std::vector<double> reduce_root; // root's reduce output
  bool bcast_ok = true;
  net::Fabric::Stats fabric;
  std::uint64_t coll_rx = 0, coll_combines = 0, coll_forwards = 0;
  std::uint64_t coll_completions = 0, coll_orphaned = 0, coll_stale = 0;
  std::uint64_t retransmissions = 0, crc_dropped = 0, seq_dropped = 0;
  PlanInjector::Stats inj;
  std::vector<std::string> violations;
  std::string report;
};

/// One experiment: a 12-node reliable-link chain cluster (two crossbars, so
/// the tree has cross-switch edges), joins staggered by seed and rank (early
/// join packets land on NICs that have not installed the group yet — the
/// orphan-parking path), then barrier -> allreduce -> bcast -> reduce ->
/// barrier under class-targeted faults.
SweepResult run_sweep(std::uint64_t seed, net::CollClass target) {
  constexpr int kN = 12;
  constexpr std::size_t kBcastBytes = 64;
  Engine eng;
  auto params = net::ppro_fm2_cluster(kN);
  params.nic.reliable_link = true;
  net::Cluster cl(eng, params);
  CollClassInjector inj(eng, profile_for(seed), target);
  cl.fabric().set_fault(&inj);

  std::vector<std::unique_ptr<fm2::Endpoint>> eps;
  for (int i = 0; i < kN; ++i) {
    eps.push_back(std::make_unique<fm2::Endpoint>(cl, i));
  }
  net::CollGroupSpec spec;
  spec.id = 7;
  for (int i = 0; i < kN; ++i) spec.members.push_back(i);
  spec.radix = 3;

  // Second group over the odd ranks, rooted at 3, joined mid-run with
  // per-rank stagger: its join packets land on NICs whose collective
  // engine is already live for group 7 but have not installed group 8 yet
  // — the orphan-parking/replay path.
  net::CollGroupSpec sub;
  sub.id = 8;
  sub.members = {3, 1, 5, 7, 9, 11};
  sub.radix = 2;

  SweepResult r;
  r.allreduce.assign(kN, 0.0);
  r.subreduce.assign(kN, 0.0);
  r.reduce_root.assign(2, 0.0);
  Bytes bcast_src = pattern_bytes(seed, kBcastBytes);

  for (int i = 0; i < kN; ++i) {
    eng.spawn([](Engine& e, fm2::Endpoint& ep, net::CollGroupSpec sp,
                 net::CollGroupSpec sb, int rank, std::uint64_t sd,
                 SweepResult& out, ByteSpan golden) -> Task<void> {
      // Stagger installs so some join traffic beats coll_create.
      co_await e.delay(sim::us(((sd + rank) % 5) * 40));
      co_await ep.coll_join(sp);
      co_await ep.coll_barrier(sp.id);
      double v = 1.0 + rank;
      co_await ep.coll_allreduce(sp.id, std::span<double>{&v, 1},
                                 fm2::Endpoint::CollRed::kSum);
      out.allreduce[rank] = v;
      if (rank % 2 == 1) {
        co_await e.delay(sim::us(((sd * (rank + 1)) % 7) * 30));
        co_await ep.coll_join(sb);
        double s = rank;
        co_await ep.coll_allreduce(sb.id, std::span<double>{&s, 1},
                                   fm2::Endpoint::CollRed::kSum);
        out.subreduce[rank] = s;
      }
      Bytes b(golden.size());
      if (rank == 0) std::copy(golden.begin(), golden.end(), b.begin());
      co_await ep.coll_bcast(sp.id, MutByteSpan{b});
      if (pattern_mismatch(sd, 0, ByteSpan{b}) != -1) out.bcast_ok = false;
      double red[2] = {double(rank), rank == 3 ? 100.0 : 0.0};
      co_await ep.coll_reduce(sp.id, std::span<double>{red, 2},
                              fm2::Endpoint::CollRed::kMax);
      if (rank == 0) {
        out.reduce_root[0] = red[0];
        out.reduce_root[1] = red[1];
      }
      co_await ep.coll_barrier(sp.id);
      ++out.completed_ranks;
    }(eng, *eps[i], spec, sub, i, seed, r, ByteSpan{bcast_src}));
  }
  eng.run();

  InvariantLedger led;
  led.check_engine(eng);
  led.check_cluster(cl);
  for (int i = 0; i < kN; ++i) {
    const auto& ns = cl.node(i).nic().stats();
    r.coll_rx += ns.coll_rx_packets;
    r.coll_combines += ns.coll_combines;
    r.coll_forwards += ns.coll_forwards;
    r.coll_completions += ns.coll_completions;
    r.coll_orphaned += ns.coll_orphaned;
    r.coll_stale += ns.coll_stale;
    r.retransmissions += ns.retransmissions;
    r.crc_dropped += ns.crc_dropped;
    r.seq_dropped += ns.seq_dropped;
    if (cl.node(i).nic().coll_pending() != 0) {
      led.violation("node " + std::to_string(i) + ": " +
                    std::to_string(cl.node(i).nic().coll_pending()) +
                    " collective items still queued after quiesce");
    }
  }
  r.events = eng.events_processed();
  r.fabric = cl.fabric().stats();
  r.inj = inj.stats();
  r.violations = led.violations();
  r.report = led.report();
  return r;
}

class CollFaultSweep
    : public ::testing::TestWithParam<
          std::tuple<std::uint64_t, net::CollClass>> {};

TEST_P(CollFaultSweep, OperationsCompleteExactlyUnderClassTargetedFaults) {
  const auto [seed, target] = GetParam();
  SweepResult r = run_sweep(seed, target);
  const std::string tag = std::string("seed ") + std::to_string(seed) +
                          " class " + class_name(target);
  EXPECT_TRUE(r.violations.empty())
      << tag << ":\n"
      << r.report << "reproduce with run_sweep(" << seed
      << ", net::CollClass::k" << class_name(target) << ")";
  EXPECT_EQ(r.completed_ranks, 12) << tag;
  // Exactly-once semantics: values exact on every rank, every time.
  for (int i = 0; i < 12; ++i) {
    EXPECT_DOUBLE_EQ(r.allreduce[i], 78.0) << tag << " rank " << i;
  }
  EXPECT_DOUBLE_EQ(r.reduce_root[0], 11.0) << tag;
  EXPECT_DOUBLE_EQ(r.reduce_root[1], 100.0) << tag;
  EXPECT_TRUE(r.bcast_ok) << tag;
  for (int i = 1; i < 12; i += 2) {
    EXPECT_DOUBLE_EQ(r.subreduce[i], 1 + 3 + 5 + 7 + 9 + 11)
        << tag << " rank " << i;
  }
  // join + 2 barriers + allreduce + bcast + reduce on all 12 NICs, plus
  // the subgroup's join + allreduce on the 6 odd ranks.
  EXPECT_EQ(r.coll_completions, 6u * 12u + 2u * 6u) << tag;
  EXPECT_GT(r.inj.packets_seen, 0u)
      << "classifier never matched class " << class_name(target);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, CollFaultSweep,
    ::testing::Combine(::testing::Range<std::uint64_t>(1, 21),
                       ::testing::Values(net::CollClass::kJoin,
                                         net::CollClass::kCombine,
                                         net::CollClass::kFanout,
                                         net::CollClass::kDone)),
    [](const auto& pinfo) {
      return std::string(class_name(std::get<1>(pinfo.param))) + "Seed" +
             std::to_string(std::get<0>(pinfo.param));
    });

TEST(CollFaultSweepSummary, EveryClassTookRealFaultsAndOrphansWerePark) {
  // Across the sweep every packet class must have absorbed injected
  // faults, and the staggered installs must have exercised the
  // orphan-parking path at least once.
  std::uint64_t orphaned = 0;
  for (net::CollClass target :
       {net::CollClass::kJoin, net::CollClass::kCombine,
        net::CollClass::kFanout, net::CollClass::kDone}) {
    std::uint64_t seen = 0, injected = 0;
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
      SweepResult r = run_sweep(seed, target);
      seen += r.inj.packets_seen;
      injected += r.inj.injected();
      orphaned += r.coll_orphaned;
    }
    EXPECT_GE(seen, 20u) << "class " << class_name(target);
    EXPECT_GT(injected, 0u)
        << "no faults ever hit class " << class_name(target);
  }
  EXPECT_GT(orphaned, 0u) << "orphan replay path never exercised";
}

TEST(CollFaultDeterminism, SameSeedAndClassReplayExactly) {
  const std::pair<std::uint64_t, net::CollClass> combos[] = {
      {1, net::CollClass::kJoin},
      {2, net::CollClass::kCombine},
      {3, net::CollClass::kFanout},
      {4, net::CollClass::kDone},
      {8, net::CollClass::kCombine},
  };
  for (const auto& [seed, target] : combos) {
    SweepResult a = run_sweep(seed, target);
    SweepResult b = run_sweep(seed, target);
    const std::string tag = std::string("seed ") + std::to_string(seed) +
                            " class " + class_name(target);
    EXPECT_EQ(a.events, b.events) << tag;
    EXPECT_EQ(a.fabric.packets, b.fabric.packets) << tag;
    EXPECT_EQ(a.fabric.dropped, b.fabric.dropped) << tag;
    EXPECT_EQ(a.fabric.corrupted, b.fabric.corrupted) << tag;
    EXPECT_EQ(a.fabric.duplicated, b.fabric.duplicated) << tag;
    EXPECT_EQ(a.coll_rx, b.coll_rx) << tag;
    EXPECT_EQ(a.coll_combines, b.coll_combines) << tag;
    EXPECT_EQ(a.coll_forwards, b.coll_forwards) << tag;
    EXPECT_EQ(a.coll_orphaned, b.coll_orphaned) << tag;
    EXPECT_EQ(a.coll_stale, b.coll_stale) << tag;
    EXPECT_EQ(a.retransmissions, b.retransmissions) << tag;
    EXPECT_EQ(a.crc_dropped, b.crc_dropped) << tag;
    EXPECT_EQ(a.seq_dropped, b.seq_dropped) << tag;
    EXPECT_EQ(a.inj.packets_seen, b.inj.packets_seen) << tag;
    EXPECT_EQ(a.inj.injected(), b.inj.injected()) << tag;
    EXPECT_EQ(a.allreduce, b.allreduce) << tag;
    EXPECT_EQ(a.subreduce, b.subreduce) << tag;
  }
}

}  // namespace
}  // namespace fmx::fault
