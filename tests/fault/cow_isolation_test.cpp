// Copy-on-write isolation property sweep. The zero-copy data plane shares
// one payload block between the NIC's go-back-N retention queue, in-flight
// wire packets, and fault-injected duplicates; a corrupted bit on one hop
// must flip exactly one reference's view and never bleed into a sibling.
// Two angles:
//  - a randomized slice/mutate torture on BufferRef itself, checked
//    against shadow copies (pure unit property, no simulator), and
//  - end-to-end: a duplicating + corrupting lossy fabric under go-back-N,
//    where a poisoned retention copy would retransmit garbage — so
//    exactly-once, byte-exact delivery across 20 seeds IS the isolation
//    proof.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <random>
#include <vector>

#include "common/buffer_pool.hpp"
#include "common/buffer_ref.hpp"
#include "common/crc32.hpp"
#include "fault/injector.hpp"
#include "fm2/fm2.hpp"
#include "myrinet/node.hpp"
#include "tests/common/sim_fixture.hpp"

namespace fmx {
namespace {

using sim::Engine;
using sim::Task;

class CowSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CowSeeds, RandomSliceMutationsNeverLeakIntoSiblings) {
  std::mt19937_64 rng(GetParam());
  BufferPool pool;

  // Live references plus a byte-for-byte shadow of what each must read.
  struct Tracked {
    BufferRef ref;
    Bytes shadow;
  };
  std::vector<Tracked> live;

  auto fill = [&rng](MutByteSpan out) {
    for (std::byte& b : out) b = static_cast<std::byte>(rng() & 0xff);
  };
  auto check_all = [&live] {
    for (std::size_t i = 0; i < live.size(); ++i) {
      const Tracked& t = live[i];
      ASSERT_EQ(t.ref.size(), t.shadow.size()) << "ref " << i;
      ASSERT_EQ(std::memcmp(t.ref.data(), t.shadow.data(), t.shadow.size()),
                0)
          << "ref " << i << " diverged from its shadow";
      ASSERT_EQ(t.ref.crc(), crc32(ByteSpan{t.shadow})) << "ref " << i;
    }
  };

  for (int step = 0; step < 400; ++step) {
    const int op = static_cast<int>(rng() % 5);
    if (live.empty() || op == 0) {
      // Fresh pooled block with random content.
      const std::size_t n = 1 + rng() % 300;
      Tracked t;
      t.ref = pool.acquire_ref(n);
      fill(t.ref.mutable_bytes());
      t.shadow.assign(t.ref.span().begin(), t.ref.span().end());
      live.push_back(std::move(t));
    } else if (op == 1) {
      // Alias: share a whole view.
      const Tracked& src = live[rng() % live.size()];
      live.push_back({src.ref, src.shadow});
    } else if (op == 2) {
      // Sub-slice an existing view.
      const Tracked& src = live[rng() % live.size()];
      const std::size_t off = rng() % src.ref.size();
      const std::size_t n = 1 + rng() % (src.ref.size() - off);
      Tracked t;
      t.ref = src.ref.subslice(off, n);
      t.shadow.assign(src.shadow.begin() + static_cast<std::ptrdiff_t>(off),
                      src.shadow.begin() + static_cast<std::ptrdiff_t>(off + n));
      live.push_back(std::move(t));
    } else if (op == 3) {
      // Corrupt one byte through the COW seam — only this ref's shadow
      // changes; every sibling must keep reading its own bytes.
      Tracked& t = live[rng() % live.size()];
      const std::size_t pos = rng() % t.ref.size();
      const std::byte v = static_cast<std::byte>(rng() & 0xff);
      t.ref.mutable_bytes()[pos] = v;
      t.shadow[pos] = v;
    } else {
      // Drop a reference (last one out returns the block to the pool).
      const std::size_t victim = rng() % live.size();
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
    }
    check_all();
  }
  live.clear();
  EXPECT_EQ(pool.stats().outstanding, 0u);
}

// End-to-end: duplicates + corruption + drops over go-back-N. Every
// duplicated WirePacket shares its payload block with the original and the
// sender's retention queue; corruption COWs the damaged copy off. If
// isolation ever broke, either the receiver would accept a corrupted
// payload (pattern mismatch) or a poisoned retention copy would
// retransmit garbage forever (the run would not deliver exactly kMsgs).
TEST_P(CowSeeds, CorruptedDuplicatesNeverPoisonRetransmission) {
  const std::uint64_t seed = GetParam();
  Engine eng;
  auto params = net::ppro_fm2_cluster(2);
  params.nic.reliable_link = true;
  net::Cluster cl(eng, params);
  fault::FaultPlan plan = fault::FaultPlan::lossy(0.05, seed);
  plan.wire.duplicate = 0.10;  // lots of shared-block siblings in flight
  fault::PlanInjector inj(eng, plan);
  fault::arm(cl, inj);

  fm2::Endpoint tx(cl, 0), rx(cl, 1);
  constexpr int kMsgs = 60;
  const std::size_t seg = tx.max_payload_per_packet();
  int got = 0;
  int mismatches = 0;
  rx.register_handler(0, [&](fm2::RecvStream& s, int) -> fm2::HandlerTask {
    Bytes buf(s.msg_bytes());
    co_await s.receive(MutByteSpan{buf});
    if (pattern_mismatch(seed + static_cast<std::uint64_t>(got), 0,
                         ByteSpan{buf}) != -1) {
      ++mismatches;
    }
    ++got;
  });
  eng.spawn([](fm2::Endpoint& ep, std::uint64_t sd,
               std::size_t sg) -> Task<void> {
    for (int i = 0; i < kMsgs; ++i) {
      // Straddle the segment boundary so single- and multi-packet messages
      // both ride the lossy fabric.
      const std::size_t n = 1 + (i % (2 * sg + 2));
      Bytes m = pattern_bytes(sd + static_cast<std::uint64_t>(i), n);
      co_await ep.send(1, 0, ByteSpan{m});
    }
  }(tx, seed, seg));
  eng.spawn([](fm2::Endpoint& ep, int& g) -> Task<void> {
    co_await ep.poll_until([&] { return g == kMsgs; });
  }(rx, got));
  eng.run();

  EXPECT_EQ(got, kMsgs) << "seed " << seed;
  EXPECT_EQ(mismatches, 0) << "seed " << seed
                           << ": corrupted payload reached a handler";
  EXPECT_GT(inj.stats().corruptions + inj.stats().duplicates, 0u)
      << "seed " << seed << ": sweep did not exercise the COW seam";
}

INSTANTIATE_TEST_SUITE_P(Seeds, CowSeeds,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace fmx
