// Property sweep for the fault-injection subsystem: the full FM 2.x stack
// over a reliable link must deliver exactly-once, in-order, byte-exact and
// leave no orphaned resources under every fault profile, across many seeds
// and message sizes straddling the MTU boundaries; the same seed must
// reproduce the identical simulation event-for-event. With the reliable
// link OFF, the same faults must be *detected* (CRC drops, missing
// packets), never silently masked.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "common/buffer.hpp"
#include "fault/injector.hpp"
#include "fault/invariants.hpp"
#include "fm2/fm2.hpp"
#include "myrinet/node.hpp"
#include "tests/common/sim_fixture.hpp"

namespace fmx::fault {
namespace {

using sim::Engine;
using sim::Task;

constexpr int kRounds = 3;  // size-grid repetitions per active direction

// Every profile injects >= 3% packet drops AND >= 3% corruption; the seed
// rotates extra stressors on top so the sweep covers duplication,
// reordering, bus stalls, and slow receivers.
FaultPlan profile_for(std::uint64_t seed) {
  FaultPlan p = FaultPlan::lossy(0.03, seed);
  switch (seed % 4) {
    case 0:
      break;  // drops + corruption only
    case 1:
      p.wire.duplicate = 0.02;
      p.wire.reorder = 0.02;
      p.wire.reorder_delay = sim::us(60);
      break;
    case 2:
      p.bus = {sim::us(150), sim::us(40), sim::us(4)};
      break;
    case 3:
      p.pacing.rx = sim::ns(500);
      p.pacing.rx_jitter = sim::us(2);
      break;
  }
  return p;
}

struct SweepResult {
  std::uint64_t events = 0;
  std::uint64_t delivered = 0;
  net::Fabric::Stats fabric;
  net::Nic::Stats nic0, nic1;
  PlanInjector::Stats inj;
  std::vector<std::string> violations;
  std::string report;
};

// One complete experiment: 2-node cluster with go-back-N link reliability,
// a seeded fault plan armed through every seam, and an FM2 message-size
// grid hitting the MTU±1 boundaries in each active direction. Returns the
// full observable state so callers can assert determinism field-by-field.
SweepResult run_sweep(std::uint64_t seed) {
  Engine eng;
  auto params = net::ppro_fm2_cluster(2);
  params.nic.reliable_link = true;
  if (seed % 3 == 0) {
    // Host-ring overflow pressure: a tiny ring + little SRAM slack forces
    // back-pressure through every buffering layer.
    params.nic.host_ring_slots = 8;
    params.nic.sram_rx_slots = 4;
  }
  net::Cluster cl(eng, params);
  PlanInjector inj(eng, profile_for(seed));
  arm(cl, inj);
  fm2::Endpoint ep0(cl, 0), ep1(cl, 1);
  InvariantLedger led;

  const std::size_t mtu = params.nic.mtu_payload;
  const std::size_t seg = ep0.max_payload_per_packet();
  const std::vector<std::size_t> sizes = {
      1,           seg - 1, seg, seg + 1, 2 * seg - 1,
      2 * seg + 1, mtu - 1, mtu, mtu + 1, 2 * mtu + 1};
  const bool bidirectional = (seed % 2 == 1);

  int got_at_1 = 0, got_at_0 = 0;
  ep1.register_handler(0, [&](fm2::RecvStream& s, int src) -> fm2::HandlerTask {
    Bytes buf(s.msg_bytes());
    co_await s.receive(MutByteSpan{buf});
    led.note_delivered(src, 1, ByteSpan{buf});
    ++got_at_1;
  });
  ep0.register_handler(0, [&](fm2::RecvStream& s, int src) -> fm2::HandlerTask {
    Bytes buf(s.msg_bytes());
    co_await s.receive(MutByteSpan{buf});
    led.note_delivered(src, 0, ByteSpan{buf});
    ++got_at_0;
  });

  auto sender = [&led, &sizes](fm2::Endpoint& ep, int dst,
                               std::uint64_t tag) -> Task<void> {
    for (int k = 0; k < kRounds * static_cast<int>(sizes.size()); ++k) {
      Bytes m = pattern_bytes(tag + k, sizes[k % sizes.size()]);
      led.note_sent(ep.id(), dst, ByteSpan{m});
      co_await ep.send(dst, 0, ByteSpan{m});
    }
  };
  const int want = kRounds * static_cast<int>(sizes.size());
  eng.spawn(sender(ep0, 1, 1000 * seed));
  eng.spawn([](fm2::Endpoint& ep, int& got, int n) -> Task<void> {
    co_await ep.poll_until([&] { return got == n; });
  }(ep1, got_at_1, want));
  if (bidirectional) {
    eng.spawn(sender(ep1, 0, 1000 * seed + 500));
    eng.spawn([](fm2::Endpoint& ep, int& got, int n) -> Task<void> {
      co_await ep.poll_until([&] { return got == n; });
    }(ep0, got_at_0, want));
  }
  eng.run();

  // Settle phase: absorb credit-return packets that landed after the last
  // extract (a send-only endpoint has no reason to keep polling). Extract
  // on a drained ring returns immediately and extraction itself cannot
  // create new data traffic, so this converges; the bound only guards a
  // checker-visible regression.
  for (int round = 0; round < 4; ++round) {
    if (cl.node(0).nic().host_ring_depth() == 0 &&
        cl.node(1).nic().host_ring_depth() == 0) {
      break;
    }
    eng.spawn([](fm2::Endpoint& ep) -> Task<void> {
      (void)co_await ep.extract();
    }(ep0));
    eng.spawn([](fm2::Endpoint& ep) -> Task<void> {
      (void)co_await ep.extract();
    }(ep1));
    eng.run();
  }

  led.check_streams();
  led.check_engine(eng);
  led.check_cluster(cl);
  led.check_fm2_pair(ep0, ep1);
  led.check_fm2_pair(ep1, ep0);

  SweepResult r;
  r.events = eng.events_processed();
  r.delivered = led.messages_delivered();
  r.fabric = cl.fabric().stats();
  r.nic0 = cl.node(0).nic().stats();
  r.nic1 = cl.node(1).nic().stats();
  r.inj = inj.stats();
  r.violations = led.violations();
  r.report = led.report();
  return r;
}

class FaultSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FaultSweep, InvariantsHoldOverLossyFabric) {
  const std::uint64_t seed = GetParam();
  SweepResult r = run_sweep(seed);
  EXPECT_TRUE(r.violations.empty())
      << "seed " << seed << ":\n"
      << r.report << "reproduce with run_sweep(" << seed << ")";
  // The run was a real torture test, not a no-op: faults fired. (A single
  // seed may still see zero retransmissions — a dropped ack-only packet is
  // covered by the next cumulative ack — so the "protocol actually worked"
  // assertion lives in RecoveryMachineryExercisedAcrossSeeds.)
  EXPECT_GT(r.inj.drops + r.inj.corruptions, 0u) << "seed " << seed;
  const std::uint64_t want = kRounds * 10u * ((seed % 2 == 1) ? 2 : 1);
  EXPECT_EQ(r.delivered, want) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultSweep,
                         ::testing::Range<std::uint64_t>(1, 21));

TEST(FaultSweep, RecoveryMachineryExercisedAcrossSeeds) {
  // Summed over the whole seed range, every recovery path must have fired:
  // go-back-N retransmissions, duplicate/out-of-order discards, and CRC
  // rejections of corrupted packets. Any individual seed may dodge one
  // mechanism; the sweep as a whole may not.
  std::uint64_t retransmissions = 0, seq_dropped = 0, crc_dropped = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    SweepResult r = run_sweep(seed);
    retransmissions += r.nic0.retransmissions + r.nic1.retransmissions;
    seq_dropped += r.nic0.seq_dropped + r.nic1.seq_dropped;
    crc_dropped += r.nic0.crc_dropped + r.nic1.crc_dropped;
  }
  EXPECT_GT(retransmissions, 0u);
  EXPECT_GT(seq_dropped, 0u);
  EXPECT_GT(crc_dropped, 0u);
}

TEST(FaultDeterminism, SameSeedSameSimulation) {
  // The acceptance bar: same seed => identical event count and stats.
  // Seeds cover each profile family and both traffic shapes.
  for (std::uint64_t seed : {1, 2, 3, 4, 6}) {
    SweepResult a = run_sweep(seed);
    SweepResult b = run_sweep(seed);
    EXPECT_EQ(a.events, b.events) << "seed " << seed;
    EXPECT_EQ(a.delivered, b.delivered) << "seed " << seed;
    EXPECT_EQ(a.fabric.packets, b.fabric.packets) << "seed " << seed;
    EXPECT_EQ(a.fabric.corrupted, b.fabric.corrupted) << "seed " << seed;
    EXPECT_EQ(a.fabric.dropped, b.fabric.dropped) << "seed " << seed;
    EXPECT_EQ(a.fabric.duplicated, b.fabric.duplicated) << "seed " << seed;
    EXPECT_EQ(a.nic0.tx_packets, b.nic0.tx_packets) << "seed " << seed;
    EXPECT_EQ(a.nic0.retransmissions, b.nic0.retransmissions)
        << "seed " << seed;
    EXPECT_EQ(a.nic1.seq_dropped, b.nic1.seq_dropped) << "seed " << seed;
    EXPECT_EQ(a.nic1.crc_dropped, b.nic1.crc_dropped) << "seed " << seed;
    EXPECT_EQ(a.inj.packets_seen, b.inj.packets_seen) << "seed " << seed;
    EXPECT_EQ(a.inj.injected(), b.inj.injected()) << "seed " << seed;
  }
}

TEST(FaultDeterminism, DifferentSeedsDiverge) {
  // Sanity check that the seed actually steers the injection schedule:
  // same profile family (seed % 4 == 0), same traffic shape, different
  // seed must not replay the identical fault sequence.
  SweepResult a = run_sweep(4);
  SweepResult b = run_sweep(8);
  EXPECT_TRUE(a.events != b.events || a.inj.injected() != b.inj.injected());
}

TEST(FaultDetection, UnreliableLinkDropsAreObservedNotMasked) {
  // reliable_link OFF, same lossy profile: the stack above must be able to
  // SEE the damage — CRC drops counted, packets missing — rather than have
  // it silently corrupt data. Every payload that DOES arrive is intact.
  Engine eng;
  net::Cluster cl(eng, net::ppro_fm2_cluster(2));  // reliable_link off
  PlanInjector inj(eng, FaultPlan::lossy(0.03, 7));
  arm(cl, inj);
  constexpr int kN = 400;
  constexpr std::uint64_t kPattern = 42;
  eng.spawn([](net::Cluster& c) -> Task<void> {
    for (int i = 0; i < kN; ++i) {
      co_await c.node(0).nic().enqueue(
          net::SendDescriptor(1, pattern_bytes(kPattern, 512), true));
    }
  }(cl));
  int got = 0;
  eng.spawn_daemon([](net::Cluster& c, int& g) -> Task<void> {
    for (;;) {
      net::RxPacket p = co_await c.node(1).nic().host_ring().pop();
      EXPECT_EQ(p.payload.size(), 512u);
      EXPECT_EQ(pattern_mismatch(kPattern, 0, ByteSpan{p.payload}), -1);
      ++g;
    }
  }(cl, got));
  ASSERT_TRUE(test::run_to_exhaustion(eng));
  EXPECT_GT(inj.stats().drops, 0u);
  EXPECT_GT(inj.stats().corruptions, 0u);
  EXPECT_LT(got, kN);  // losses are visible as missing packets...
  EXPECT_GT(cl.node(1).nic().stats().crc_dropped, 0u);  // ...and CRC counts
  EXPECT_EQ(cl.node(1).nic().stats().seq_dropped, 0u);  // seq layer off
}

TEST(FaultInjection, BusStallsSlowTheRunDeterministically) {
  // Same workload with and without bus-stall windows: the degraded run
  // finishes strictly later and the injector counts the stalls.
  auto run = [](bool degraded) {
    Engine eng;
    net::Cluster cl(eng, net::ppro_fm2_cluster(2));
    auto plan = degraded ? FaultPlan::degraded_bus(11) : FaultPlan::clean(11);
    PlanInjector inj(eng, plan);
    arm(cl, inj);
    eng.spawn([](net::Cluster& c) -> Task<void> {
      for (int i = 0; i < 50; ++i) {
        co_await c.node(0).nic().enqueue(
            net::SendDescriptor(1, Bytes(1024), true));
      }
    }(cl));
    sim::Ps end = 0;
    eng.spawn(
        [](net::Cluster& c, sim::Ps& e, Engine& en) -> Task<void> {
          for (int i = 0; i < 50; ++i) {
            (void)co_await c.node(1).nic().host_ring().pop();
          }
          e = en.now();
        }(cl, end, eng));
    EXPECT_TRUE(test::run_to_exhaustion(eng));
    return std::pair<sim::Ps, std::uint64_t>{end, inj.stats().bus_stalls};
  };
  auto [t_clean, stalls_clean] = run(false);
  auto [t_degraded, stalls_degraded] = run(true);
  EXPECT_EQ(stalls_clean, 0u);
  EXPECT_GT(stalls_degraded, 0u);
  EXPECT_GT(t_degraded, t_clean);
}

TEST(FaultInjection, SlowReceiverPacingBuildsBackPressure) {
  // rx pacing delays the NIC receive control program; with little SRAM
  // slack the whole transfer must observably take longer — the STOP/GO
  // back-pressure path from receive pacing to sender stalls.
  auto run = [](bool slow) {
    Engine eng;
    auto params = net::ppro_fm2_cluster(2);
    params.nic.sram_rx_slots = 2;
    net::Cluster cl(eng, params);
    auto plan = slow ? FaultPlan::slow_receiver(3) : FaultPlan::clean(3);
    PlanInjector inj(eng, plan);
    arm(cl, inj);
    eng.spawn([](net::Cluster& c) -> Task<void> {
      for (int i = 0; i < 60; ++i) {
        co_await c.node(0).nic().enqueue(
            net::SendDescriptor(1, Bytes(512), true));
      }
    }(cl));
    sim::Ps end = 0;
    eng.spawn(
        [](net::Cluster& c, sim::Ps& e, Engine& en) -> Task<void> {
          for (int i = 0; i < 60; ++i) {
            (void)co_await c.node(1).nic().host_ring().pop();
          }
          e = en.now();
        }(cl, end, eng));
    EXPECT_TRUE(test::run_to_exhaustion(eng));
    return end;
  };
  EXPECT_GT(run(true), run(false));
}

TEST(FaultInjection, PerLinkOverridesTargetOneDirection) {
  // Drop every packet 0->1 but none 1->0: node 1 starves while node 1's
  // own sends sail through — per-link schedules really are per-link.
  // Unreliable link so the drops stay visible.
  Engine eng;
  net::Cluster cl(eng, net::ppro_fm2_cluster(2));
  FaultPlan plan = FaultPlan::clean(5);
  LinkOverride kill;
  kill.src = 0;
  kill.dst = 1;
  kill.rates.drop = 1.0;
  plan.links.push_back(kill);
  PlanInjector inj(eng, plan);
  arm(cl, inj);
  constexpr int kN = 20;
  for (int dir = 0; dir < 2; ++dir) {
    eng.spawn([](net::Cluster& c, int from) -> Task<void> {
      for (int i = 0; i < kN; ++i) {
        co_await c.node(from).nic().enqueue(
            net::SendDescriptor(1 - from, Bytes(128), true));
      }
    }(cl, dir));
  }
  int got0 = 0, got1 = 0;
  eng.spawn_daemon([](net::Cluster& c, int& g) -> Task<void> {
    for (;;) {
      (void)co_await c.node(1).nic().host_ring().pop();
      ++g;
    }
  }(cl, got1));
  eng.spawn_daemon([](net::Cluster& c, int& g) -> Task<void> {
    for (;;) {
      (void)co_await c.node(0).nic().host_ring().pop();
      ++g;
    }
  }(cl, got0));
  ASSERT_TRUE(test::run_to_exhaustion(eng));
  EXPECT_EQ(got1, 0);   // the killed direction delivered nothing
  EXPECT_EQ(got0, kN);  // the clean direction delivered everything
  EXPECT_EQ(inj.stats().drops, static_cast<std::uint64_t>(kN));
}

}  // namespace
}  // namespace fmx::fault
