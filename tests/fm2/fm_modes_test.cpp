// Alternate data-movement modes: FM 1.x with DMA send (instead of its
// native PIO) and FM 2.x with PIO send (instead of its native DMA) — the
// cross-generation ablation axes must stay functionally correct.
#include <gtest/gtest.h>

#include "fm1/fm1.hpp"
#include "fm2/fm2.hpp"

namespace fmx {
namespace {

using sim::Engine;
using sim::Task;

TEST(FmModes, Fm1DmaSendCorrect) {
  Engine eng;
  net::Cluster cl(eng, net::sparc_fm1_cluster(2));
  fm1::Config cfg;
  cfg.pio_send = false;  // DMA fetch from host memory instead of PIO
  fm1::Endpoint tx(cl, 0, cfg), rx(cl, 1, cfg);
  int got = 0;
  rx.register_handler(0, [&](int, ByteSpan data) {
    EXPECT_EQ(pattern_mismatch(got, 0, data), -1);
    ++got;
  });
  eng.spawn([](fm1::Endpoint& ep) -> Task<void> {
    for (std::size_t i = 0; i < 10; ++i) {
      Bytes m = pattern_bytes(i, 300 + 50 * i);
      co_await ep.send(1, 0, ByteSpan{m});
    }
  }(tx));
  eng.spawn([](fm1::Endpoint& ep, int& g) -> Task<void> {
    co_await ep.poll_until([&] { return g == 10; });
  }(rx, got));
  eng.run();
  EXPECT_EQ(got, 10);
  EXPECT_EQ(eng.pending_roots(), 0);
}

TEST(FmModes, Fm2PioSendCorrect) {
  Engine eng;
  net::Cluster cl(eng, net::ppro_fm2_cluster(2));
  fm2::Config cfg;
  cfg.pio_send = true;
  fm2::Endpoint tx(cl, 0, cfg), rx(cl, 1, cfg);
  int got = 0;
  rx.register_handler(0, [&](fm2::RecvStream& s, int) -> fm2::HandlerTask {
    Bytes buf(s.msg_bytes());
    co_await s.receive(MutByteSpan{buf});
    EXPECT_EQ(pattern_mismatch(got, 0, ByteSpan{buf}), -1);
    ++got;
  });
  eng.spawn([](fm2::Endpoint& ep) -> Task<void> {
    for (std::size_t i = 0; i < 10; ++i) {
      Bytes m = pattern_bytes(i, 2000);
      co_await ep.send(1, 0, ByteSpan{m});
    }
  }(tx));
  eng.spawn([](fm2::Endpoint& ep, int& g) -> Task<void> {
    co_await ep.poll_until([&] { return g == 10; });
  }(rx, got));
  eng.run();
  EXPECT_EQ(got, 10);
}

TEST(FmModes, Fm1PioBeatsDmaOnTheSparcPlatform) {
  // Why did FM 1.x use programmed I/O at all? Because on the Sparc, DMA
  // send requires first copying into a pinned buffer at ~50 ns/B, which
  // costs more than pushing the bytes over the SBus directly at ~16 ns/B.
  // The simulation reproduces the design rationale.
  auto bw = [](bool pio) {
    Engine eng;
    net::Cluster cl(eng, net::sparc_fm1_cluster(2));
    fm1::Config cfg;
    cfg.pio_send = pio;
    fm1::Endpoint tx(cl, 0, cfg), rx(cl, 1, cfg);
    int got = 0;
    rx.register_handler(0, [&](int, ByteSpan) { ++got; });
    constexpr int kN = 60;
    sim::Ps t_end = 0;
    eng.spawn([](fm1::Endpoint& ep) -> Task<void> {
      Bytes m(2048);
      for (int i = 0; i < kN; ++i) co_await ep.send(1, 0, ByteSpan{m});
    }(tx));
    eng.spawn([](Engine& e, fm1::Endpoint& ep, int& g,
                 sim::Ps& end) -> Task<void> {
      co_await ep.poll_until([&] { return g == kN; });
      end = e.now();
    }(eng, rx, got, t_end));
    eng.run();
    return 2048.0 * kN / sim::to_seconds(t_end);
  };
  double with_pio = bw(true);
  double with_dma = bw(false);
  EXPECT_GT(with_pio, with_dma);
}

TEST(FmModes, Fm2ExtractUnlimitedEqualsTable1Semantics) {
  // extract() with no budget behaves like FM 1.x's drain-everything.
  Engine eng;
  net::Cluster cl(eng, net::ppro_fm2_cluster(2));
  fm2::Endpoint tx(cl, 0), rx(cl, 1);
  int got = 0;
  rx.register_handler(0, [&](fm2::RecvStream& s, int) -> fm2::HandlerTask {
    co_await s.skip(s.remaining());
    ++got;
  });
  eng.spawn([](fm2::Endpoint& ep) -> Task<void> {
    for (int i = 0; i < 12; ++i) {
      Bytes m(100);
      co_await ep.send(1, 0, ByteSpan{m});
    }
  }(tx));
  eng.spawn([](Engine& e, fm2::Endpoint& ep, int& g) -> Task<void> {
    co_await e.delay(sim::ms(1));  // let everything land
    int n = co_await ep.extract();  // one unlimited extract
    EXPECT_EQ(n, 12);
    EXPECT_EQ(g, 12);
  }(eng, rx, got));
  eng.run();
  EXPECT_EQ(got, 12);
}

}  // namespace
}  // namespace fmx
