// Trace-level proof of §4.1's interleaving claim: an FM 2.x handler starts
// consuming a multi-packet message while its later packets are still on
// the wire. The tracer makes the overlap directly observable — the first
// handler_run for a message precedes the last packet delivery — whereas
// under the FM 1.x whole-message discipline (whole_message_handlers=true)
// the handler only runs after every packet has arrived.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "fm2/fm2.hpp"
#include "myrinet/node.hpp"
#include "tests/common/sim_fixture.hpp"
#include "trace/trace.hpp"

namespace fmx {
namespace {

using sim::Engine;
using sim::Task;

constexpr std::size_t kBulk = 32 * 1024;  // many packets

struct Timeline {
  sim::Ps first_handler_run = 0;
  sim::Ps last_deliver = 0;
  int delivers = 0;
};

// Streams one bulk message and reads its timeline back out of the trace.
Timeline run_bulk(bool whole_message) {
  Engine eng;
  auto params = net::ppro_fm2_cluster(2);
  params.nic.host_ring_slots = 512;  // credits must cover the bulk message
  net::Cluster cluster(eng, params);
  fm2::Config cfg;
  cfg.credits_per_peer = 192;
  cfg.whole_message_handlers = whole_message;
  fm2::Endpoint tx(cluster, 0, cfg), rx(cluster, 1, cfg);
  int got = 0;
  Bytes sink(kBulk);
  rx.register_handler(0, [&](fm2::RecvStream& s, int) -> fm2::HandlerTask {
    co_await s.receive(sink.data(), s.msg_bytes());
    ++got;
  });
  cluster.fabric().tracer().enable();
  eng.spawn([](fm2::Endpoint& ep) -> Task<void> {
    Bytes m(kBulk);
    co_await ep.send(1, 0, ByteSpan{m});
  }(tx));
  eng.spawn([](fm2::Endpoint& ep, int& g) -> Task<void> {
    co_await ep.poll_until([&] { return g == 1; });
  }(rx, got));
  EXPECT_TRUE(test::run_to_exhaustion(eng));
  EXPECT_EQ(got, 1);

  // The bulk message id, as both sides computed it independently.
  const trace::Tracer& t = cluster.fabric().tracer();
  std::uint64_t bulk_id = 0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    const trace::Event& e = t.at(i);
    if (e.type == trace::EventType::kHandlerRun &&
        e.layer == trace::Layer::kFm2) {
      bulk_id = e.msg_id;
      break;
    }
  }
  EXPECT_NE(bulk_id, 0u);

  Timeline tl;
  for (std::size_t i = 0; i < t.size(); ++i) {
    const trace::Event& e = t.at(i);
    if (e.msg_id != bulk_id) continue;
    if (e.type == trace::EventType::kHandlerRun &&
        tl.first_handler_run == 0) {
      tl.first_handler_run = e.t;
    }
    if (e.type == trace::EventType::kDeliver) {
      tl.last_deliver = e.t;
      ++tl.delivers;
    }
  }
  return tl;
}

TEST(InterleavingTrace, HandlerOverlapsArrival) {
  Timeline tl = run_bulk(/*whole_message=*/false);
  ASSERT_GT(tl.delivers, 1) << "bulk message must span multiple packets";
  ASSERT_NE(tl.first_handler_run, 0u);
  // The streaming handler started while later packets were still in
  // flight: extraction overlaps arrival, no head-of-line stall.
  EXPECT_LT(tl.first_handler_run, tl.last_deliver);
}

TEST(InterleavingTrace, WholeMessageModeStallsUntilLastPacket) {
  Timeline tl = run_bulk(/*whole_message=*/true);
  ASSERT_GT(tl.delivers, 1);
  ASSERT_NE(tl.first_handler_run, 0u);
  // FM 1.x discipline: the handler cannot start before the final packet
  // has been delivered — the stall the streaming interface removes.
  EXPECT_GE(tl.first_handler_run, tl.last_deliver);
}

}  // namespace
}  // namespace fmx
