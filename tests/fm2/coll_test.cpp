// NIC-offloaded collectives, end to end over fm2::Endpoint: join/barrier/
// bcast/reduce/allreduce semantics, the one-host-interrupt contract
// (handler_starts stays 0 — completion is polled, interior tree steps run
// NIC-to-NIC), epoch pipelining of back-to-back operations, and NIC-state
// quiescence.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "fm2/fm2.hpp"
#include "myrinet/node.hpp"
#include "tests/common/sim_fixture.hpp"

namespace fmx::fm2 {
namespace {

using sim::Engine;
using sim::Task;

struct World {
  explicit World(net::ClusterParams p, Config cfg = {}) : cluster(eng, p) {
    for (int i = 0; i < p.n_hosts; ++i) {
      eps.push_back(std::make_unique<Endpoint>(cluster, i, cfg));
    }
  }
  Endpoint& ep(int i) { return *eps[i]; }
  net::Nic& nic(int i) { return cluster.node(i).nic(); }

  Engine eng;
  net::Cluster cluster;
  std::vector<std::unique_ptr<Endpoint>> eps;
};

net::CollGroupSpec everyone(int n, int radix = 2) {
  net::CollGroupSpec spec;
  spec.id = 1;
  for (int i = 0; i < n; ++i) spec.members.push_back(i);
  spec.radix = radix;
  return spec;
}

TEST(Coll, BarrierCompletesOnEveryMember) {
  constexpr int kN = 8;
  World w(net::ppro_fm2_cluster(kN));
  int done = 0;
  for (int i = 0; i < kN; ++i) {
    w.eng.spawn([](Endpoint& ep, net::CollGroupSpec spec,
                   int& d) -> Task<void> {
      co_await ep.coll_join(spec);
      co_await ep.coll_barrier(spec.id);
      ++d;
    }(w.ep(i), everyone(kN), done));
  }
  ASSERT_TRUE(test::run_to_exhaustion(w.eng));
  EXPECT_EQ(done, kN);
  for (int i = 0; i < kN; ++i) {
    // join + barrier: exactly two host interruptions, zero handler starts
    // (completion is polled; no interior step touches the host).
    EXPECT_EQ(w.nic(i).stats().coll_completions, 2u) << "node " << i;
    EXPECT_EQ(w.ep(i).stats().handler_starts, 0u) << "node " << i;
    EXPECT_EQ(w.nic(i).coll_pending(), 0u) << "node " << i;
  }
}

TEST(Coll, BarrierHoldsBackEarlyArrivers) {
  // Last joiner delays; nobody may pass the barrier before it enters.
  constexpr int kN = 4;
  World w(net::ppro_fm2_cluster(kN));
  sim::Ps straggler_entry = 0;
  for (int i = 0; i < kN; ++i) {
    w.eng.spawn([](Engine& eng, Endpoint& ep, net::CollGroupSpec spec,
                   int rank, sim::Ps& entry) -> Task<void> {
      co_await ep.coll_join(spec);
      if (rank == 3) {
        co_await eng.delay(sim::us(300));
        entry = eng.now();
      }
      co_await ep.coll_barrier(spec.id);
      EXPECT_GE(eng.now(), entry);
    }(w.eng, w.ep(i), everyone(kN), i, straggler_entry));
  }
  ASSERT_TRUE(test::run_to_exhaustion(w.eng));
  EXPECT_GT(straggler_entry, 0);
}

TEST(Coll, BcastDeliversRootBytes) {
  constexpr int kN = 6;
  constexpr std::size_t kBytes = 96;
  World w(net::ppro_fm2_cluster(kN));
  Bytes src = pattern_bytes(5, kBytes);
  std::vector<Bytes> dst(kN, Bytes(kBytes));
  dst[0] = src;  // root broadcasts its own buffer
  for (int i = 0; i < kN; ++i) {
    w.eng.spawn([](Endpoint& ep, net::CollGroupSpec spec,
                   MutByteSpan buf) -> Task<void> {
      co_await ep.coll_join(spec);
      co_await ep.coll_bcast(spec.id, buf);
    }(w.ep(i), everyone(kN), MutByteSpan{dst[i]}));
  }
  ASSERT_TRUE(test::run_to_exhaustion(w.eng));
  for (int i = 0; i < kN; ++i) EXPECT_EQ(dst[i], src) << "node " << i;
}

TEST(Coll, ReduceSumLandsAtRootOnly) {
  constexpr int kN = 5;
  World w(net::ppro_fm2_cluster(kN));
  std::vector<std::vector<double>> data(kN);
  for (int i = 0; i < kN; ++i) data[i] = {double(i + 1), 10.0 * (i + 1)};
  for (int i = 0; i < kN; ++i) {
    w.eng.spawn([](Endpoint& ep, net::CollGroupSpec spec,
                   std::span<double> d) -> Task<void> {
      co_await ep.coll_join(spec);
      co_await ep.coll_reduce(spec.id, d, Endpoint::CollRed::kSum);
    }(w.ep(i), everyone(kN), std::span<double>{data[i]}));
  }
  ASSERT_TRUE(test::run_to_exhaustion(w.eng));
  EXPECT_DOUBLE_EQ(data[0][0], 1 + 2 + 3 + 4 + 5);
  EXPECT_DOUBLE_EQ(data[0][1], 10 + 20 + 30 + 40 + 50);
  for (int i = 1; i < kN; ++i) {
    EXPECT_DOUBLE_EQ(data[i][0], i + 1) << "non-root " << i << " written";
  }
}

TEST(Coll, AllreduceSumAndMaxEverywhere) {
  constexpr int kN = 7;
  World w(net::ppro_fm2_cluster(kN));
  std::vector<std::vector<double>> s(kN), m(kN);
  for (int i = 0; i < kN; ++i) {
    s[i] = {double(i), 1.0};
    m[i] = {double((i * 3) % kN), -double(i)};
  }
  for (int i = 0; i < kN; ++i) {
    w.eng.spawn([](Endpoint& ep, net::CollGroupSpec spec,
                   std::span<double> sum,
                   std::span<double> mx) -> Task<void> {
      co_await ep.coll_join(spec);
      co_await ep.coll_allreduce(spec.id, sum, Endpoint::CollRed::kSum);
      co_await ep.coll_allreduce(spec.id, mx, Endpoint::CollRed::kMax);
    }(w.ep(i), everyone(kN, 3), std::span<double>{s[i]},
      std::span<double>{m[i]}));
  }
  ASSERT_TRUE(test::run_to_exhaustion(w.eng));
  for (int i = 0; i < kN; ++i) {
    EXPECT_DOUBLE_EQ(s[i][0], 0 + 1 + 2 + 3 + 4 + 5 + 6) << i;
    EXPECT_DOUBLE_EQ(s[i][1], kN) << i;
    EXPECT_DOUBLE_EQ(m[i][0], 6) << i;  // max over (i*3) % 7
    EXPECT_DOUBLE_EQ(m[i][1], 0) << i;  // max over -i
  }
}

TEST(Coll, PipelinedEpochsStayOrdered) {
  // Back-to-back barriers and reductions; epochs must retire in order on
  // every member, and per-epoch sums must not bleed into each other.
  constexpr int kN = 4;
  constexpr int kRounds = 5;
  World w(net::ppro_fm2_cluster(kN));
  std::vector<std::vector<double>> got(kN,
                                       std::vector<double>(kRounds, 0));
  for (int i = 0; i < kN; ++i) {
    w.eng.spawn([](Endpoint& ep, net::CollGroupSpec spec, int rank,
                   std::span<double> out) -> Task<void> {
      co_await ep.coll_join(spec);
      for (int r = 0; r < int(out.size()); ++r) {
        double v = rank + 100.0 * r;
        co_await ep.coll_allreduce(spec.id, std::span<double>{&v, 1},
                                   Endpoint::CollRed::kSum);
        out[r] = v;
        co_await ep.coll_barrier(spec.id);
      }
    }(w.ep(i), everyone(kN), i, std::span<double>{got[i]}));
  }
  ASSERT_TRUE(test::run_to_exhaustion(w.eng));
  for (int i = 0; i < kN; ++i) {
    for (int r = 0; r < kRounds; ++r) {
      EXPECT_DOUBLE_EQ(got[i][r], (0 + 1 + 2 + 3) + 400.0 * r)
          << "node " << i << " round " << r;
    }
  }
  // join + kRounds * (allreduce + barrier) completions each.
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(w.nic(i).stats().coll_completions, 1u + 2u * kRounds);
  }
}

TEST(Coll, SubgroupWithNonZeroRootCoexists) {
  // A second group over a strict subset, rooted off node 0, running
  // concurrently with full-group traffic on group 1.
  constexpr int kN = 6;
  World w(net::ppro_fm2_cluster(kN));
  net::CollGroupSpec sub;
  sub.id = 2;
  sub.members = {3, 1, 5};  // root 3
  sub.radix = 2;
  std::vector<double> subsum = {0, 0, 0, 3.0, 0, 5.0};
  subsum[1] = 1.0;
  for (int i = 0; i < kN; ++i) {
    const bool in_sub = i == 1 || i == 3 || i == 5;
    w.eng.spawn([](Endpoint& ep, net::CollGroupSpec g1,
                   net::CollGroupSpec g2, bool sub_member,
                   double* v) -> Task<void> {
      co_await ep.coll_join(g1);
      if (sub_member) co_await ep.coll_join(g2);
      co_await ep.coll_barrier(g1.id);
      if (sub_member)
        co_await ep.coll_allreduce(g2.id, std::span<double>{v, 1},
                                   Endpoint::CollRed::kSum);
      co_await ep.coll_barrier(g1.id);
    }(w.ep(i), everyone(kN), sub, in_sub, &subsum[i]));
  }
  ASSERT_TRUE(test::run_to_exhaustion(w.eng));
  EXPECT_DOUBLE_EQ(subsum[1], 9.0);
  EXPECT_DOUBLE_EQ(subsum[3], 9.0);
  EXPECT_DOUBLE_EQ(subsum[5], 9.0);
  EXPECT_DOUBLE_EQ(subsum[0], 0.0);  // outsiders untouched
}

TEST(Coll, InteriorStepsRecordNicTraceNotHostHandlers) {
  constexpr int kN = 8;
  World w(net::ppro_fm2_cluster(kN));
  int done = 0;
  for (int i = 0; i < kN; ++i) {
    w.eng.spawn([](Endpoint& ep, net::CollGroupSpec spec,
                   int& d) -> Task<void> {
      co_await ep.coll_join(spec);
      double v = 1.0;
      co_await ep.coll_allreduce(spec.id, std::span<double>{&v, 1},
                                 Endpoint::CollRed::kSum);
      EXPECT_DOUBLE_EQ(v, 8.0);
      ++d;
    }(w.ep(i), everyone(kN), done));
  }
  ASSERT_TRUE(test::run_to_exhaustion(w.eng));
  EXPECT_EQ(done, kN);
  std::uint64_t combines = 0, forwards = 0;
  for (int i = 0; i < kN; ++i) {
    combines += w.nic(i).stats().coll_combines;
    forwards += w.nic(i).stats().coll_forwards;
    EXPECT_EQ(w.ep(i).stats().handler_starts, 0u);
    EXPECT_EQ(w.ep(i).stats().msgs_received, 0u);
  }
  // Up-sweep folds one arrival per tree edge per op (join's fold is
  // empty but still an arrival); down-sweep forwards once per edge.
  EXPECT_EQ(combines, 2u * (kN - 1));
  // join: up (n-1) + down (n-1); allreduce: up (n-1) + down (n-1).
  EXPECT_EQ(forwards, 4u * (kN - 1));
}

}  // namespace
}  // namespace fmx::fm2
