// Gather/scatter boundary properties: message sizes straddling the packet
// segmentation limits — both the FM segment payload (mtu_payload minus the
// FM packet header) and the raw NIC MTU — must reassemble byte-exact, use
// exactly ceil(size / seg) packets, and work for any gather/scatter piece
// split. These are the off-by-one edges where packetization bugs live.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "fm2/fm2.hpp"
#include "tests/common/sim_fixture.hpp"

namespace fmx::fm2 {
namespace {

using sim::Engine;
using sim::Task;

struct World {
  explicit World(net::ClusterParams p, Config cfg = {}) : cluster(eng, p) {
    for (int i = 0; i < p.n_hosts; ++i) {
      eps.push_back(std::make_unique<Endpoint>(cluster, i, cfg));
    }
  }
  Endpoint& ep(int i) { return *eps[i]; }

  Engine eng;
  net::Cluster cluster;
  std::vector<std::unique_ptr<Endpoint>> eps;
};

// One message of exactly `size` bytes, sent as gather pieces of `piece`
// bytes and scattered on receive in `chunk`-byte reads; verified byte-exact
// against the out-of-band pattern.
void round_trip(std::size_t size, std::size_t piece, std::size_t chunk) {
  World w(net::ppro_fm2_cluster(2));
  const std::size_t seg = w.ep(0).max_payload_per_packet();
  const std::uint64_t tag = 7700 + size;
  bool done = false;
  w.ep(1).register_handler(0, [&](RecvStream& s, int) -> HandlerTask {
    EXPECT_EQ(s.msg_bytes(), size);
    Bytes buf(size);
    std::size_t off = 0;
    while (off < size) {
      std::size_t n = std::min(chunk, size - off);
      co_await s.receive(buf.data() + off, n);
      off += n;
    }
    EXPECT_EQ(s.remaining(), 0u);
    EXPECT_EQ(pattern_mismatch(tag, 0, ByteSpan{buf}), -1)
        << "size " << size << " piece " << piece << " chunk " << chunk;
    done = true;
  });
  w.eng.spawn([](Endpoint& ep, std::uint64_t t, std::size_t sz,
                 std::size_t pc) -> Task<void> {
    Bytes m = pattern_bytes(t, sz);
    SendStream s = co_await ep.begin_message(1, sz, 0);
    std::size_t off = 0;
    while (off < sz) {
      std::size_t n = std::min(pc, sz - off);
      co_await ep.send_piece(s, ByteSpan{m}.subspan(off, n));
      off += n;
    }
    co_await ep.end_message(s);
  }(w.ep(0), tag, size, piece));
  w.eng.spawn([](Endpoint& ep, bool& d) -> Task<void> {
    co_await ep.poll_until([&] { return d; });
  }(w.ep(1), done));
  ASSERT_TRUE(fmx::test::run_to_exhaustion(w.eng));
  ASSERT_TRUE(done) << "size " << size;
  // Packetization is exact: ceil(size / seg) data packets, no padding
  // packet, no missing tail.
  const std::uint64_t want_pkts = size == 0 ? 1 : (size + seg - 1) / seg;
  EXPECT_EQ(w.ep(0).stats().packets_sent, want_pkts) << "size " << size;
  EXPECT_EQ(w.ep(1).stats().bytes_received, size);
}

// (base, multiplier, delta): size = multiplier * base + delta, where base
// selects the FM segment payload or the raw NIC MTU.
enum class Base { kSegment, kMtu };
using BoundaryCase = std::tuple<Base, int, int>;

class Fm2Boundary : public ::testing::TestWithParam<BoundaryCase> {};

TEST_P(Fm2Boundary, ReassemblesByteExact) {
  auto [base, mult, delta] = GetParam();
  const auto params = net::ppro_fm2_cluster(2);
  std::size_t b;
  if (base == Base::kSegment) {
    World probe(params);  // seg depends on header size; read it off the API
    b = probe.ep(0).max_payload_per_packet();
  } else {
    b = params.nic.mtu_payload;
  }
  const std::size_t size =
      static_cast<std::size_t>(static_cast<int>(b) * mult + delta);
  // One awkward prime-ish piece/chunk split, plus a whole-message send with
  // reads that creep one byte relative to each packet boundary — two very
  // different composition shapes over the same boundary size.
  round_trip(size, 617, 389);
  round_trip(size, size, std::max<std::size_t>(1, b - 1));
}

INSTANTIATE_TEST_SUITE_P(
    MtuEdges, Fm2Boundary,
    ::testing::Combine(::testing::Values(Base::kSegment, Base::kMtu),
                       ::testing::Values(1, 2),
                       ::testing::Values(-1, 0, 1)));

TEST(Fm2Boundary2, SegmentSizedPiecesLandOnPacketBoundaries) {
  // Pieces of exactly seg bytes: every flush is a full packet and the
  // last piece exactly fills the final one.
  World w(net::ppro_fm2_cluster(2));
  const std::size_t seg = w.ep(0).max_payload_per_packet();
  round_trip(4 * seg, seg, seg);
}

TEST(Fm2Boundary2, OneByteMessage) { round_trip(1, 1, 1); }

TEST(Fm2Boundary2, BoundarySweepBackToBack) {
  // All boundary sizes through ONE endpoint pair back-to-back, so a
  // packetization bug in message N corrupts the framing of message N+1
  // instead of hiding in a fresh world.
  World w(net::ppro_fm2_cluster(2));
  const std::size_t seg = w.ep(0).max_payload_per_packet();
  const std::size_t mtu = w.cluster.params().nic.mtu_payload;
  std::vector<std::size_t> sizes = {1,       seg - 1,     seg,
                                    seg + 1, 2 * seg - 1, 2 * seg,
                                    2 * seg + 1, mtu - 1, mtu,
                                    mtu + 1, 2 * mtu - 1, 2 * mtu + 1};
  std::size_t seen = 0;
  w.ep(1).register_handler(0, [&](RecvStream& s, int) -> HandlerTask {
    EXPECT_LT(seen, sizes.size());
    EXPECT_EQ(s.msg_bytes(), sizes[seen % sizes.size()]);
    Bytes buf(s.msg_bytes());
    co_await s.receive(MutByteSpan{buf});
    EXPECT_EQ(pattern_mismatch(9000 + seen, 0, ByteSpan{buf}), -1)
        << "message " << seen << " (" << buf.size() << " B)";
    ++seen;
  });
  w.eng.spawn([](Endpoint& ep,
                 const std::vector<std::size_t>& sz) -> Task<void> {
    for (std::size_t i = 0; i < sz.size(); ++i) {
      Bytes m = pattern_bytes(9000 + i, sz[i]);
      co_await ep.send(1, 0, ByteSpan{m});
    }
  }(w.ep(0), sizes));
  w.eng.spawn([](Endpoint& ep, std::size_t& n, std::size_t want)
                  -> Task<void> {
    co_await ep.poll_until([&] { return n == want; });
  }(w.ep(1), seen, sizes.size()));
  ASSERT_TRUE(fmx::test::run_to_exhaustion(w.eng));
  EXPECT_EQ(seen, sizes.size());
}

}  // namespace
}  // namespace fmx::fm2
