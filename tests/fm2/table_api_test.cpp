// The paper-fidelity spellings: Table 1 (FM_send_4 / FM_send / FM_extract)
// and Table 2 (FM_begin_message / FM_send_piece / FM_end_message /
// FM_receive / FM_extract(bytes)) free functions, used exactly as the
// paper writes them (modulo the explicit endpoint argument).
#include <gtest/gtest.h>

#include "fm1/fm1.hpp"
#include "fm2/fm2.hpp"

namespace fmx {
namespace {

using sim::Engine;
using sim::Task;

TEST(Table1Api, SendSend4Extract) {
  Engine eng;
  net::Cluster cl(eng, net::sparc_fm1_cluster(2));
  fm1::Endpoint node0(cl, 0), node1(cl, 1);
  int got_long = 0, got_quad = 0;
  node1.register_handler(1, [&](int, ByteSpan d) {
    EXPECT_EQ(pattern_mismatch(9, 0, d), -1);
    ++got_long;
  });
  node1.register_handler(2, [&](int, ByteSpan d) {
    ASSERT_EQ(d.size(), 16u);
    std::uint32_t w[4];
    std::memcpy(w, d.data(), 16);
    EXPECT_EQ(w[0] + w[1] + w[2] + w[3], 10u);
    ++got_quad;
  });
  eng.spawn([](fm1::Endpoint& ep) -> Task<void> {
    Bytes buf = pattern_bytes(9, 400);
    co_await fm1::FM_send(ep, 1, 1, ByteSpan{buf});   // Table 1 row 2
    co_await fm1::FM_send_4(ep, 1, 2, 1, 2, 3, 4);    // Table 1 row 1
  }(node0));
  eng.spawn([](fm1::Endpoint& ep, int& a, int& b) -> Task<void> {
    while (a + b < 2) {
      (void)co_await fm1::FM_extract(ep);              // Table 1 row 3
      if (a + b >= 2) break;
      co_await ep.host().compute(sim::us(2));
    }
  }(node1, got_long, got_quad));
  eng.run();
  EXPECT_EQ(got_long, 1);
  EXPECT_EQ(got_quad, 1);
}

TEST(Table2Api, BeginPieceEndReceiveExtract) {
  Engine eng;
  net::Cluster cl(eng, net::ppro_fm2_cluster(2));
  fm2::Endpoint node0(cl, 0), node1(cl, 1);
  bool got = false;
  node1.register_handler(5, [&](fm2::RecvStream& stream,
                                int) -> fm2::HandlerTask {
    Bytes head(8), tail(92);
    co_await stream.receive(MutByteSpan{head});   // Table 2: FM_receive
    co_await stream.receive(MutByteSpan{tail});
    EXPECT_EQ(pattern_mismatch(3, 0, ByteSpan{head}), -1);
    EXPECT_EQ(pattern_mismatch(3, 8, ByteSpan{tail}), -1);
    got = true;
  });
  eng.spawn([](fm2::Endpoint& ep) -> Task<void> {
    Bytes msg = pattern_bytes(3, 100);
    // Table 2 rows 1-3.
    fm2::SendStream s = co_await fm2::FM_begin_message(ep, 1, 100, 5);
    co_await fm2::FM_send_piece(ep, s, ByteSpan{msg}.subspan(0, 60));
    co_await fm2::FM_send_piece(ep, s, ByteSpan{msg}.subspan(60));
    co_await fm2::FM_end_message(ep, s);
  }(node0));
  eng.spawn([](fm2::Endpoint& ep, bool& g) -> Task<void> {
    while (!g) {
      (void)co_await fm2::FM_extract(ep, 512);  // Table 2 row 5, budgeted
      if (g) break;
      co_await ep.host().compute(sim::us(2));
      co_await ep.wait_for_traffic();
    }
  }(node1, got));
  eng.run();
  EXPECT_TRUE(got);
  EXPECT_EQ(eng.pending_roots(), 0);
}

}  // namespace
}  // namespace fmx
